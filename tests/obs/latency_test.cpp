// LatencyRecorder: histogram registration, observe plumbing, test hook.
#include "obs/latency.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace epto::obs {
namespace {

TEST(LatencyRecorderTest, RegistersFourHistograms) {
  Registry registry;
  LatencyRecorder recorder(registry);
  const auto snapshot = registry.snapshot();
  std::vector<std::string> names;
  names.reserve(snapshot.size());
  for (const auto& sample : snapshot) names.push_back(sample.name);
  const std::vector<std::string> expected{
      "epto_latency_end_to_end", "epto_latency_dissemination",
      "epto_latency_stability_wait", "epto_latency_ordering_wait"};
  EXPECT_EQ(names, expected);
  for (const auto& sample : snapshot) EXPECT_EQ(sample.kind, Kind::Histogram);
}

TEST(LatencyRecorderTest, ObserveFeedsEveryPhaseHistogram) {
  Registry registry;
  LatencyRecorder recorder(registry);
  LatencySample sample;
  sample.dissemination = 3;
  sample.stabilityWait = 10;
  sample.orderingWait = 2;
  sample.endToEnd = 15;
  recorder.observe(1, EventId{.source = 1, .sequence = 0}, sample);
  recorder.observe(2, EventId{.source = 1, .sequence = 1}, sample);
  EXPECT_EQ(recorder.observed(), 2u);
  for (const auto& histogram : registry.snapshot()) {
    EXPECT_EQ(histogram.count, 2u) << histogram.name;
  }
  // Sums identify which histogram got which phase.
  const auto snapshot = registry.snapshot();
  EXPECT_DOUBLE_EQ(snapshot[0].sum, 30.0);  // end to end
  EXPECT_DOUBLE_EQ(snapshot[1].sum, 6.0);   // dissemination
  EXPECT_DOUBLE_EQ(snapshot[2].sum, 20.0);  // stability wait
  EXPECT_DOUBLE_EQ(snapshot[3].sum, 4.0);   // ordering wait
}

TEST(LatencyRecorderTest, HookSeesNodeIdAndSample) {
  Registry registry;
  LatencyRecorder recorder(registry);
  ProcessId seenNode = 0;
  EventId seenId{};
  LatencySample seenSample;
  recorder.setHook([&](ProcessId node, const EventId& id, const LatencySample& s) {
    seenNode = node;
    seenId = id;
    seenSample = s;
  });
  LatencySample sample;
  sample.dissemination = 1;
  sample.stabilityWait = 2;
  sample.orderingWait = 3;
  sample.endToEnd = 6;
  recorder.observe(7, EventId{.source = 4, .sequence = 9}, sample);
  EXPECT_EQ(seenNode, 7u);
  EXPECT_EQ(seenId, (EventId{.source = 4, .sequence = 9}));
  EXPECT_EQ(seenSample.endToEnd, 6u);
  EXPECT_EQ(seenSample.dissemination + seenSample.stabilityWait + seenSample.orderingWait,
            seenSample.endToEnd);
}

}  // namespace
}  // namespace epto::obs

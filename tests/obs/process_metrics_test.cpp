// Process::MetricsSnapshot — the per-node unified observability surface:
// values mirror the component stats, and recordTo() publishes every
// counter/gauge into a Registry under the node label.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/process.h"
#include "obs/registry.h"

namespace epto {
namespace {

class RoundRobinSampler final : public PeerSampler {
 public:
  explicit RoundRobinSampler(std::vector<ProcessId> peers) : peers_(std::move(peers)) {}
  std::vector<ProcessId> samplePeers(std::size_t k) override {
    std::vector<ProcessId> out;
    for (std::size_t i = 0; i < k && i < peers_.size(); ++i) {
      out.push_back(peers_[(next_ + i) % peers_.size()]);
    }
    next_ = (next_ + 1) % std::max<std::size_t>(1, peers_.size());
    return out;
  }

 private:
  std::vector<ProcessId> peers_;
  std::size_t next_ = 0;
};

Config tinyConfig() {
  Config config;
  config.fanout = 1;
  config.ttl = 3;
  config.clockMode = ClockMode::Logical;
  return config;
}

TEST(ProcessMetrics, SnapshotMirrorsComponentStats) {
  auto sampler = std::make_shared<RoundRobinSampler>(std::vector<ProcessId>{1});
  std::size_t delivered = 0;
  Process p(7, tinyConfig(), sampler,
            [&](const Event&, DeliveryTag) { ++delivered; });

  p.broadcast();
  auto snap = p.metricsSnapshot();
  EXPECT_EQ(snap.node, 7u);
  EXPECT_EQ(snap.dissemination.broadcasts, 1u);
  EXPECT_EQ(snap.receivedSetSize, 0u);    // ordering sees it on the next round
  EXPECT_EQ(snap.pendingRelayCount, 1u);  // queued for the next ball

  for (int i = 0; i < 6; ++i) p.onRound();
  snap = p.metricsSnapshot();
  ASSERT_EQ(delivered, 1u);
  EXPECT_EQ(snap.ordering.deliveredOrdered, 1u);
  EXPECT_EQ(snap.receivedSetSize, 0u);
  EXPECT_EQ(snap.pendingRelayCount, 0u);
  EXPECT_GE(snap.ordering.rounds, 6u);
  EXPECT_EQ(snap.lastDeliveredTs, snap.clock - snap.lastDeliveredLag);
  EXPECT_GE(snap.clock, snap.lastDeliveredTs);
}

TEST(ProcessMetrics, SnapshotDoesNotAdvanceTheLogicalClock) {
  auto sampler = std::make_shared<RoundRobinSampler>(std::vector<ProcessId>{1});
  Process p(0, tinyConfig(), sampler, [](const Event&, DeliveryTag) {});
  const auto before = p.metricsSnapshot().clock;
  for (int i = 0; i < 10; ++i) (void)p.metricsSnapshot();
  EXPECT_EQ(p.metricsSnapshot().clock, before);
}

TEST(ProcessMetrics, RecordToPublishesEveryStatUnderNodeLabel) {
  auto sampler = std::make_shared<RoundRobinSampler>(std::vector<ProcessId>{1});
  Process p(3, tinyConfig(), sampler, [](const Event&, DeliveryTag) {});
  p.broadcast();
  for (int i = 0; i < 6; ++i) p.onRound();

  obs::Registry registry;
  p.metricsSnapshot().recordTo(registry);

  const auto snapshot = registry.snapshot();
  const auto has = [&](const std::string& name) {
    return std::any_of(snapshot.begin(), snapshot.end(), [&](const obs::Sample& s) {
      return s.name == name && s.labels == obs::Labels{{"node", "3"}};
    });
  };
  // Every OrderingStats counter...
  EXPECT_TRUE(has("epto_ordering_rounds_total"));
  EXPECT_TRUE(has("epto_ordering_delivered_ordered_total"));
  EXPECT_TRUE(has("epto_ordering_delivered_out_of_order_total"));
  EXPECT_TRUE(has("epto_ordering_dropped_out_of_order_total"));
  EXPECT_TRUE(has("epto_ordering_dropped_duplicates_total"));
  EXPECT_TRUE(has("epto_ordering_ttl_merges_total"));
  EXPECT_TRUE(has("epto_ordering_received_high_water"));
  // ...every DisseminationStats counter...
  EXPECT_TRUE(has("epto_dissemination_broadcasts_total"));
  EXPECT_TRUE(has("epto_dissemination_balls_received_total"));
  EXPECT_TRUE(has("epto_dissemination_balls_sent_total"));
  EXPECT_TRUE(has("epto_dissemination_events_relayed_total"));
  EXPECT_TRUE(has("epto_dissemination_events_expired_total"));
  EXPECT_TRUE(has("epto_dissemination_rounds_total"));
  EXPECT_TRUE(has("epto_dissemination_max_ball_size"));
  // ...and the live gauges.
  EXPECT_TRUE(has("epto_received_set_size"));
  EXPECT_TRUE(has("epto_pending_relay_count"));
  EXPECT_TRUE(has("epto_last_delivered_ts"));
  EXPECT_TRUE(has("epto_last_delivered_lag"));

  // Values flow through: one broadcast delivered.
  for (const auto& sample : snapshot) {
    if (sample.name == "epto_ordering_delivered_ordered_total") {
      EXPECT_EQ(sample.counter, 1u);
    }
    if (sample.name == "epto_dissemination_broadcasts_total") {
      EXPECT_EQ(sample.counter, 1u);
    }
  }

  // Repeated recordTo reuses the same instruments (mirror pattern).
  const auto instruments = registry.instrumentCount();
  p.metricsSnapshot().recordTo(registry);
  EXPECT_EQ(registry.instrumentCount(), instruments);
}

}  // namespace
}  // namespace epto

// Exporter golden output: Prometheus text exposition and JSONL records,
// plus the JsonlWriter file round-trip.
#include "obs/exporters.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/registry.h"

namespace epto::obs {
namespace {

TEST(EscapeTest, EscapesQuotesBackslashesAndNewlines) {
  EXPECT_EQ(escape("plain"), "plain");
  EXPECT_EQ(escape("a\"b"), "a\\\"b");
  EXPECT_EQ(escape("a\\b"), "a\\\\b");
  EXPECT_EQ(escape("a\nb"), "a\\nb");
}

TEST(PrometheusTextTest, GoldenCounterGaugeHistogram) {
  Registry registry;
  registry.counter("epto_delivered_total", {{"node", "0"}}).inc(5);
  registry.gauge("epto_buffer_size").set(17);
  Histogram& h = registry.histogram("epto_ball_size", {}, {1.0, 4.0});
  h.observe(1.0);
  h.observe(3.0);
  h.observe(9.0);

  const std::string text = prometheusText(registry.snapshot());
  const std::string expected =
      "# TYPE epto_delivered_total counter\n"
      "epto_delivered_total{node=\"0\"} 5\n"
      "# TYPE epto_buffer_size gauge\n"
      "epto_buffer_size 17\n"
      "# TYPE epto_ball_size histogram\n"
      "epto_ball_size_bucket{le=\"1\"} 1\n"
      "epto_ball_size_bucket{le=\"4\"} 2\n"
      "epto_ball_size_bucket{le=\"+Inf\"} 3\n"
      "epto_ball_size_sum 13\n"
      "epto_ball_size_count 3\n";
  EXPECT_EQ(text, expected);
}

TEST(PrometheusTextTest, GroupsFamiliesAcrossInterleavedRegistration) {
  Registry registry;
  registry.counter("epto_a_total", {{"node", "0"}}).inc(1);
  registry.counter("epto_b_total").inc(2);
  registry.counter("epto_a_total", {{"node", "1"}}).inc(3);

  const std::string text = prometheusText(registry.snapshot());
  // One TYPE line per family; both epto_a samples under the first.
  const std::string expected =
      "# TYPE epto_a_total counter\n"
      "epto_a_total{node=\"0\"} 1\n"
      "epto_a_total{node=\"1\"} 3\n"
      "# TYPE epto_b_total counter\n"
      "epto_b_total 2\n";
  EXPECT_EQ(text, expected);
}

TEST(JsonLineTest, GoldenRecord) {
  Registry registry;
  registry.counter("epto_x_total", {{"node", "3"}}).inc(7);
  registry.gauge("epto_lag").set(-4);

  const std::string line = jsonLine(registry.snapshot(), 1234);
  const std::string expected =
      "{\"ts\":1234,\"samples\":["
      "{\"name\":\"epto_x_total\",\"labels\":{\"node\":\"3\"},\"kind\":\"counter\","
      "\"value\":7},"
      "{\"name\":\"epto_lag\",\"kind\":\"gauge\",\"value\":-4}"
      "]}";
  EXPECT_EQ(line, expected);
}

TEST(JsonLineTest, HistogramSample) {
  Registry registry;
  Histogram& h = registry.histogram("epto_h", {}, {2.0});
  h.observe(1.0);
  h.observe(5.0);
  const std::string json = sampleJson(registry.snapshot()[0]);
  EXPECT_EQ(json,
            "{\"name\":\"epto_h\",\"kind\":\"histogram\","
            "\"bounds\":[2],\"buckets\":[1,1],\"count\":2,\"sum\":6}");
}

TEST(JsonlWriterTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "epto_jsonl_writer_test.jsonl";
  std::remove(path.c_str());
  {
    Registry registry;
    registry.counter("epto_x_total").inc(1);
    JsonlWriter writer(path);
    ASSERT_TRUE(writer.ok());
    writer.write(registry.snapshot(), 10);
    registry.counter("epto_x_total").inc(1);
    writer.write(registry.snapshot(), 20);
    writer.writeRaw("{\"type\":\"custom\"}");
    writer.flush();
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("\"ts\":10"), std::string::npos);
  EXPECT_NE(lines[0].find("\"value\":1"), std::string::npos);
  EXPECT_NE(lines[1].find("\"ts\":20"), std::string::npos);
  EXPECT_NE(lines[1].find("\"value\":2"), std::string::npos);
  EXPECT_EQ(lines[2], "{\"type\":\"custom\"}");
  std::remove(path.c_str());
}

TEST(JsonlWriterTest, UnwritablePathReportsNotOk) {
  JsonlWriter writer("/nonexistent-dir-zzz/out.jsonl");
  EXPECT_FALSE(writer.ok());
}

}  // namespace
}  // namespace epto::obs

// Tracer semantics: ring wraparound, sinks, runtime enable gate, and the
// EPTO_TRACE_EVENT macro integration (compile-time gated).
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "obs/flight_recorder.h"

namespace epto::obs {
namespace {

TraceEvent eventWithSeq(std::uint32_t seq) {
  TraceEvent event;
  event.type = TraceType::Deliver;
  event.event = EventId{.source = 1, .sequence = seq};
  return event;
}

TEST(TracerTest, RecordAndDrainOldestFirst) {
  Tracer tracer(Tracer::Options{.capacity = 8});
  for (std::uint32_t i = 0; i < 3; ++i) tracer.record(eventWithSeq(i));
  EXPECT_EQ(tracer.buffered(), 3u);
  EXPECT_EQ(tracer.recorded(), 3u);
  EXPECT_EQ(tracer.dropped(), 0u);
  const auto events = tracer.drain();
  ASSERT_EQ(events.size(), 3u);
  for (std::uint64_t i = 0; i < 3; ++i) EXPECT_EQ(events[i].event.sequence, i);
  EXPECT_EQ(tracer.buffered(), 0u);
}

TEST(TracerTest, RingWrapsOverwritingOldest) {
  Tracer tracer(Tracer::Options{.capacity = 4});
  for (std::uint32_t i = 0; i < 10; ++i) tracer.record(eventWithSeq(i));
  EXPECT_EQ(tracer.buffered(), 4u);
  EXPECT_EQ(tracer.recorded(), 10u);
  EXPECT_EQ(tracer.dropped(), 6u);  // the six oldest were overwritten
  const auto events = tracer.drain();
  ASSERT_EQ(events.size(), 4u);
  // Survivors are the newest four, still oldest-first.
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(events[i].event.sequence, 6 + i);
}

TEST(TracerTest, FlushPushesToSinkAndClears) {
  Tracer tracer(Tracer::Options{.capacity = 8});
  auto sink = std::make_shared<InMemorySink>();
  tracer.setSink(sink);
  tracer.record(eventWithSeq(0));
  tracer.record(eventWithSeq(1));
  EXPECT_EQ(tracer.flush(), 2u);
  EXPECT_EQ(tracer.buffered(), 0u);
  const auto events = sink->events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].event.sequence, 0u);
  EXPECT_EQ(events[1].event.sequence, 1u);
  EXPECT_EQ(tracer.flush(), 0u);  // nothing left
}

TEST(TracerTest, ConfigureResetsRingAndCounts) {
  Tracer tracer(Tracer::Options{.capacity = 2});
  tracer.record(eventWithSeq(0));
  tracer.record(eventWithSeq(1));
  tracer.record(eventWithSeq(2));
  EXPECT_GT(tracer.dropped(), 0u);
  tracer.configure(Tracer::Options{.capacity = 16});
  EXPECT_EQ(tracer.buffered(), 0u);
  EXPECT_EQ(tracer.recorded(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(TracerTest, EnabledFlagDefaultsOff) {
  Tracer tracer;
  EXPECT_FALSE(tracer.enabled());
  tracer.setEnabled(true);
  EXPECT_TRUE(tracer.enabled());
  tracer.setEnabled(false);
  EXPECT_FALSE(tracer.enabled());
}

TEST(TraceEventTest, NamesAndJson) {
  EXPECT_STREQ(traceTypeName(TraceType::Broadcast), "broadcast");
  EXPECT_STREQ(traceTypeName(TraceType::StabilityDecision), "stability_decision");
  EXPECT_STREQ(dropReasonName(DropReason::Expired), "expired");

  TraceEvent event;
  event.type = TraceType::Deliver;
  event.node = 3;
  event.round = 7;
  event.event = EventId{.source = 2, .sequence = 9};
  event.ts = 1000;
  event.ttl = 5;
  event.size = 1;
  const std::string json = traceEventJson(event);
  EXPECT_NE(json.find("\"type\":\"deliver\""), std::string::npos);
  EXPECT_NE(json.find("\"node\":3"), std::string::npos);
  EXPECT_NE(json.find("\"source\":2"), std::string::npos);
  EXPECT_NE(json.find("\"seq\":9"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1000"), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos);  // single line
}

TEST(TraceEventTest, NoteIsEscapedAndRoundTrips) {
  TraceEvent event;
  event.type = TraceType::Fault;
  event.note = "quote:\" backslash:\\ newline:\n tab:\t ctrl:\x01 end";
  const std::string json = traceEventJson(event);
  EXPECT_EQ(json.find('\n'), std::string::npos);  // still a single line
  EXPECT_NE(json.find("\\\""), std::string::npos);
  EXPECT_NE(json.find("\\\\"), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_NE(json.find("\\t"), std::string::npos);
  EXPECT_NE(json.find("\\u0001"), std::string::npos);
  // Round trip through a minimal JSON string unescape: the encoded note
  // must decode back to exactly the original bytes.
  const auto key = json.find("\"note\":\"");
  ASSERT_NE(key, std::string::npos);
  std::string decoded;
  for (std::size_t i = key + 8; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"') break;
    if (c != '\\') {
      decoded.push_back(c);
      continue;
    }
    ASSERT_LT(i + 1, json.size());
    const char esc = json[++i];
    switch (esc) {
      case 'n': decoded.push_back('\n'); break;
      case 't': decoded.push_back('\t'); break;
      case 'r': decoded.push_back('\r'); break;
      case '"': decoded.push_back('"'); break;
      case '\\': decoded.push_back('\\'); break;
      case 'u': {
        ASSERT_LE(i + 4, json.size() - 1);
        decoded.push_back(static_cast<char>(
            std::stoi(json.substr(i + 1, 4), nullptr, 16)));
        i += 4;
        break;
      }
      default: FAIL() << "unexpected escape " << esc;
    }
  }
  EXPECT_EQ(decoded, event.note);
}

TEST(TraceEventTest, EmptyNoteOmitted) {
  TraceEvent event;
  event.type = TraceType::Broadcast;
  EXPECT_EQ(traceEventJson(event).find("\"note\""), std::string::npos);
}

TEST(JsonlTraceSinkTest, WritesWholeLinesImmediately) {
  const std::string path = ::testing::TempDir() + "trace_sink_test.jsonl";
  std::remove(path.c_str());
  JsonlTraceSink sink(path);
  ASSERT_TRUE(sink.ok());
  sink.consume(eventWithSeq(7));
  sink.writeLine(R"({"type":"label","label":"section"})");
  // Line-buffered: both lines are on disk before the sink is destroyed
  // (a crashed run loses at most the line being written).
  std::ifstream in(path);
  std::string line1;
  std::string line2;
  ASSERT_TRUE(std::getline(in, line1));
  ASSERT_TRUE(std::getline(in, line2));
  EXPECT_NE(line1.find("\"seq\":7"), std::string::npos);
  EXPECT_NE(line2.find("\"label\":\"section\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(TracerTest, FlushOnFullSpillsToSinkInsteadOfDropping) {
  Tracer tracer(Tracer::Options{.capacity = 4, .flushOnFull = true});
  auto sink = std::make_shared<InMemorySink>();
  tracer.setSink(sink);
  for (std::uint32_t i = 0; i < 10; ++i) tracer.record(eventWithSeq(i));
  EXPECT_EQ(tracer.dropped(), 0u);
  (void)tracer.flush();
  const auto events = sink->events();
  ASSERT_EQ(events.size(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(events[i].event.sequence, i);
}

#if defined(EPTO_TRACE_ENABLED)
// With tracing compiled in, the macro records into the global tracer only
// while it is enabled. (With EPTO_TRACE=OFF this whole test compiles away,
// mirroring the zero-overhead guarantee.)
TEST(TraceMacroTest, RecordsOnlyWhileEnabled) {
  auto& tracer = Tracer::global();
  tracer.configure(Tracer::Options{.capacity = 64});
  tracer.setEnabled(false);

  EPTO_TRACE_EVENT(Broadcast, .node = 1);
  EXPECT_EQ(tracer.buffered(), 0u);

  tracer.setEnabled(true);
  EPTO_TRACE_EVENT(Broadcast, .node = 1, .size = 2);
  tracer.setEnabled(false);

  const auto events = tracer.drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, TraceType::Broadcast);
  EXPECT_EQ(events[0].node, 1u);
  EXPECT_EQ(events[0].size, 2u);
}

// The macro's second consumer: the flight recorder receives subscribed
// types even while the tracer is disabled, and unsubscribed types cost
// nothing (the initializer expressions are not evaluated).
TEST(TraceMacroTest, FeedsFlightRecorderBySubscription) {
  auto& flight = FlightRecorder::global();
  auto& tracer = Tracer::global();
  tracer.setEnabled(false);
  flight.reset();
  flight.setTypeMask(traceTypeBit(TraceType::Fault));
  flight.setEnabled(true);

  int evaluations = 0;
  const auto touch = [&evaluations]() -> std::uint64_t {
    ++evaluations;
    return 9;
  };
  EPTO_TRACE_EVENT(Fault, .node = 4, .aux = touch());
  EPTO_TRACE_EVENT(Deliver, .node = 5, .aux = touch());  // unsubscribed
  EXPECT_EQ(evaluations, 1);
  EXPECT_EQ(flight.recorded(), 1u);
  const auto records = flight.snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].event.type, TraceType::Fault);
  EXPECT_EQ(records[0].event.node, 4u);
  EXPECT_EQ(records[0].event.aux, 9u);

  flight.reset();
  flight.setTypeMask(FlightRecorder::kDefaultMask);  // restore for other tests
}
#endif

}  // namespace
}  // namespace epto::obs

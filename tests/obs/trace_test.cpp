// Tracer semantics: ring wraparound, sinks, runtime enable gate, and the
// EPTO_TRACE_EVENT macro integration (compile-time gated).
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <memory>

namespace epto::obs {
namespace {

TraceEvent eventWithSeq(std::uint32_t seq) {
  TraceEvent event;
  event.type = TraceType::Deliver;
  event.event = EventId{.source = 1, .sequence = seq};
  return event;
}

TEST(TracerTest, RecordAndDrainOldestFirst) {
  Tracer tracer(Tracer::Options{.capacity = 8});
  for (std::uint32_t i = 0; i < 3; ++i) tracer.record(eventWithSeq(i));
  EXPECT_EQ(tracer.buffered(), 3u);
  EXPECT_EQ(tracer.recorded(), 3u);
  EXPECT_EQ(tracer.dropped(), 0u);
  const auto events = tracer.drain();
  ASSERT_EQ(events.size(), 3u);
  for (std::uint64_t i = 0; i < 3; ++i) EXPECT_EQ(events[i].event.sequence, i);
  EXPECT_EQ(tracer.buffered(), 0u);
}

TEST(TracerTest, RingWrapsOverwritingOldest) {
  Tracer tracer(Tracer::Options{.capacity = 4});
  for (std::uint32_t i = 0; i < 10; ++i) tracer.record(eventWithSeq(i));
  EXPECT_EQ(tracer.buffered(), 4u);
  EXPECT_EQ(tracer.recorded(), 10u);
  EXPECT_EQ(tracer.dropped(), 6u);  // the six oldest were overwritten
  const auto events = tracer.drain();
  ASSERT_EQ(events.size(), 4u);
  // Survivors are the newest four, still oldest-first.
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(events[i].event.sequence, 6 + i);
}

TEST(TracerTest, FlushPushesToSinkAndClears) {
  Tracer tracer(Tracer::Options{.capacity = 8});
  auto sink = std::make_shared<InMemorySink>();
  tracer.setSink(sink);
  tracer.record(eventWithSeq(0));
  tracer.record(eventWithSeq(1));
  EXPECT_EQ(tracer.flush(), 2u);
  EXPECT_EQ(tracer.buffered(), 0u);
  const auto events = sink->events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].event.sequence, 0u);
  EXPECT_EQ(events[1].event.sequence, 1u);
  EXPECT_EQ(tracer.flush(), 0u);  // nothing left
}

TEST(TracerTest, ConfigureResetsRingAndCounts) {
  Tracer tracer(Tracer::Options{.capacity = 2});
  tracer.record(eventWithSeq(0));
  tracer.record(eventWithSeq(1));
  tracer.record(eventWithSeq(2));
  EXPECT_GT(tracer.dropped(), 0u);
  tracer.configure(Tracer::Options{.capacity = 16});
  EXPECT_EQ(tracer.buffered(), 0u);
  EXPECT_EQ(tracer.recorded(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(TracerTest, EnabledFlagDefaultsOff) {
  Tracer tracer;
  EXPECT_FALSE(tracer.enabled());
  tracer.setEnabled(true);
  EXPECT_TRUE(tracer.enabled());
  tracer.setEnabled(false);
  EXPECT_FALSE(tracer.enabled());
}

TEST(TraceEventTest, NamesAndJson) {
  EXPECT_STREQ(traceTypeName(TraceType::Broadcast), "broadcast");
  EXPECT_STREQ(traceTypeName(TraceType::StabilityDecision), "stability_decision");
  EXPECT_STREQ(dropReasonName(DropReason::Expired), "expired");

  TraceEvent event;
  event.type = TraceType::Deliver;
  event.node = 3;
  event.round = 7;
  event.event = EventId{.source = 2, .sequence = 9};
  event.ts = 1000;
  event.ttl = 5;
  event.size = 1;
  const std::string json = traceEventJson(event);
  EXPECT_NE(json.find("\"type\":\"deliver\""), std::string::npos);
  EXPECT_NE(json.find("\"node\":3"), std::string::npos);
  EXPECT_NE(json.find("\"source\":2"), std::string::npos);
  EXPECT_NE(json.find("\"seq\":9"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1000"), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos);  // single line
}

#if defined(EPTO_TRACE_ENABLED)
// With tracing compiled in, the macro records into the global tracer only
// while it is enabled. (With EPTO_TRACE=OFF this whole test compiles away,
// mirroring the zero-overhead guarantee.)
TEST(TraceMacroTest, RecordsOnlyWhileEnabled) {
  auto& tracer = Tracer::global();
  tracer.configure(Tracer::Options{.capacity = 64});
  tracer.setEnabled(false);

  EPTO_TRACE_EVENT(.type = TraceType::Broadcast, .node = 1);
  EXPECT_EQ(tracer.buffered(), 0u);

  tracer.setEnabled(true);
  EPTO_TRACE_EVENT(.type = TraceType::Broadcast, .node = 1, .size = 2);
  tracer.setEnabled(false);

  const auto events = tracer.drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, TraceType::Broadcast);
  EXPECT_EQ(events[0].node, 1u);
  EXPECT_EQ(events[0].size, 2u);
}
#endif

}  // namespace
}  // namespace epto::obs

// Registry semantics: identity, instrument arithmetic, bounds helpers,
// and snapshot consistency under concurrent writers.
#include "obs/registry.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace epto::obs {
namespace {

TEST(CounterTest, IncAndSet) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.set(7);  // mirror pattern: publish an externally maintained total
  EXPECT_EQ(c.value(), 7u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
  g.set(-5);
  EXPECT_EQ(g.value(), -5);
}

TEST(HistogramTest, BucketsAreInclusiveUpperEdges) {
  Histogram h({1.0, 2.0, 4.0});
  h.observe(0.5);  // bucket 0 (<= 1)
  h.observe(1.0);  // bucket 0 (inclusive edge)
  h.observe(1.5);  // bucket 1
  h.observe(4.0);  // bucket 2
  h.observe(100);  // +Inf overflow
  const auto counts = h.bucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 4.0 + 100.0);
}

TEST(RegistryTest, SameIdentityReturnsSameInstrument) {
  Registry registry;
  Counter& a = registry.counter("epto_x_total");
  Counter& b = registry.counter("epto_x_total");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(b.value(), 1u);
  EXPECT_EQ(registry.instrumentCount(), 1u);
}

TEST(RegistryTest, LabelsAreIdentity) {
  Registry registry;
  Counter& a = registry.counter("epto_x_total", {{"node", "0"}});
  Counter& b = registry.counter("epto_x_total", {{"node", "1"}});
  EXPECT_NE(&a, &b);
  EXPECT_EQ(registry.instrumentCount(), 2u);
}

TEST(RegistryTest, HistogramBoundsFixedAtRegistration) {
  Registry registry;
  Histogram& h = registry.histogram("epto_h", {}, {1.0, 10.0});
  // Second request ignores the new bounds and returns the same cell.
  Histogram& again = registry.histogram("epto_h", {}, {99.0});
  EXPECT_EQ(&h, &again);
  EXPECT_EQ(h.bounds(), (std::vector<double>{1.0, 10.0}));
  // Empty bounds mean defaultBounds().
  Histogram& dflt = registry.histogram("epto_dflt");
  EXPECT_EQ(dflt.bounds(), Registry::defaultBounds());
}

TEST(RegistryTest, SnapshotPreservesRegistrationOrder) {
  Registry registry;
  registry.counter("epto_a_total").inc(3);
  registry.gauge("epto_b").set(-2);
  registry.histogram("epto_c", {}, {1.0}).observe(0.5);
  const Snapshot snap = registry.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "epto_a_total");
  EXPECT_EQ(snap[0].kind, Kind::Counter);
  EXPECT_EQ(snap[0].counter, 3u);
  EXPECT_EQ(snap[1].name, "epto_b");
  EXPECT_EQ(snap[1].kind, Kind::Gauge);
  EXPECT_EQ(snap[1].gauge, -2);
  EXPECT_EQ(snap[2].name, "epto_c");
  EXPECT_EQ(snap[2].kind, Kind::Histogram);
  ASSERT_EQ(snap[2].buckets.size(), 2u);
  EXPECT_EQ(snap[2].buckets[0], 1u);
  EXPECT_EQ(snap[2].count, 1u);
}

TEST(RegistryTest, ExponentialBounds) {
  const auto bounds = Registry::exponentialBounds(1.0, 2.0, 4);
  EXPECT_EQ(bounds, (std::vector<double>{1.0, 2.0, 4.0, 8.0}));
  const auto dflt = Registry::defaultBounds();
  ASSERT_FALSE(dflt.empty());
  EXPECT_DOUBLE_EQ(dflt.front(), 1.0);
  EXPECT_DOUBLE_EQ(dflt.back(), 4096.0);
}

// Many writer threads against one registry; snapshots taken mid-flight
// must be internally consistent and the final totals exact. This is the
// RuntimeCluster scrape-thread contract.
TEST(RegistryTest, SnapshotUnderConcurrentWriters) {
  Registry registry;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kIncrements = 20000;
  Counter& counter = registry.counter("epto_ops_total");
  Histogram& hist = registry.histogram("epto_vals", {}, {0.5});

  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&] {
      while (!go.load()) {
      }
      for (std::uint64_t i = 0; i < kIncrements; ++i) {
        counter.inc();
        hist.observe(1.0);
      }
    });
  }
  go = true;
  // Scrape concurrently: totals must be monotone and histogram count must
  // never exceed its bucket sum's plausible range.
  std::uint64_t lastSeen = 0;
  for (int s = 0; s < 50; ++s) {
    const Snapshot snap = registry.snapshot();
    ASSERT_EQ(snap.size(), 2u);
    EXPECT_GE(snap[0].counter, lastSeen);
    lastSeen = snap[0].counter;
  }
  for (auto& w : writers) w.join();

  EXPECT_EQ(counter.value(), kThreads * kIncrements);
  EXPECT_EQ(hist.count(), kThreads * kIncrements);
  const auto counts = hist.bucketCounts();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[1], kThreads * kIncrements);  // all in +Inf (1.0 > 0.5)
  EXPECT_DOUBLE_EQ(hist.sum(), static_cast<double>(kThreads * kIncrements));
}

}  // namespace
}  // namespace epto::obs

// FlightRecorder semantics: lock-free record/snapshot, ring lapping,
// subscription masks, the macro gate mirror, and JSONL dumps.
#include "obs/flight_recorder.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

namespace epto::obs {
namespace {

TraceEvent eventWithSeq(std::uint32_t seq, TraceType type = TraceType::Broadcast) {
  TraceEvent event;
  event.type = type;
  event.node = 3;
  event.round = 40 + seq;
  event.event = EventId{.source = 2, .sequence = seq};
  event.ts = 1000 + seq;
  event.ttl = 5;
  event.size = seq;
  event.aux = 77;
  event.detail = 1;
  return event;
}

TEST(FlightRecorderTest, RecordsAndSnapshotsOldestFirst) {
  FlightRecorder recorder(8);
  for (std::uint32_t i = 0; i < 3; ++i) recorder.record(eventWithSeq(i));
  EXPECT_EQ(recorder.recorded(), 3u);
  EXPECT_EQ(recorder.dropped(), 0u);
  const auto records = recorder.snapshot();
  ASSERT_EQ(records.size(), 3u);
  for (std::uint64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(records[i].claim, i);
    EXPECT_EQ(records[i].event.event.sequence, i);
    EXPECT_EQ(records[i].event.type, TraceType::Broadcast);
    EXPECT_EQ(records[i].event.node, 3u);
    EXPECT_EQ(records[i].event.round, 40 + i);
    EXPECT_EQ(records[i].event.ts, 1000 + i);
    EXPECT_EQ(records[i].event.ttl, 5u);
    EXPECT_EQ(records[i].event.aux, 77u);
    EXPECT_EQ(records[i].event.detail, 1u);
  }
}

TEST(FlightRecorderTest, RingLapsKeepingNewest) {
  FlightRecorder recorder(4);
  for (std::uint32_t i = 0; i < 11; ++i) recorder.record(eventWithSeq(i));
  EXPECT_EQ(recorder.recorded(), 11u);
  EXPECT_EQ(recorder.dropped(), 7u);
  const auto records = recorder.snapshot();
  ASSERT_EQ(records.size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(records[i].event.event.sequence, 7 + i);
  }
}

TEST(FlightRecorderTest, CapacityRoundsUpToPowerOfTwo) {
  FlightRecorder recorder(5);  // rounds to 8
  for (std::uint32_t i = 0; i < 8; ++i) recorder.record(eventWithSeq(i));
  EXPECT_EQ(recorder.dropped(), 0u);
  EXPECT_EQ(recorder.snapshot().size(), 8u);
}

TEST(FlightRecorderTest, MaskAndEnableGateWants) {
  FlightRecorder recorder(8);
  EXPECT_TRUE(recorder.enabled());
  EXPECT_EQ(recorder.typeMask(), FlightRecorder::kDefaultMask);
  EXPECT_TRUE(recorder.wants(TraceType::Broadcast));
  EXPECT_FALSE(recorder.wants(TraceType::FirstSeen));  // per-event, off by default

  recorder.setTypeMask(FlightRecorder::bitOf(TraceType::FirstSeen));
  EXPECT_TRUE(recorder.wants(TraceType::FirstSeen));
  EXPECT_FALSE(recorder.wants(TraceType::Broadcast));

  recorder.setEnabled(false);
  EXPECT_FALSE(recorder.wants(TraceType::FirstSeen));
  recorder.setEnabled(true);
  EXPECT_TRUE(recorder.wants(TraceType::FirstSeen));
}

TEST(FlightRecorderTest, GlobalGateMirrorsIntoMacroWord) {
  auto& recorder = FlightRecorder::global();
  const auto savedMask = recorder.typeMask();
  const bool savedEnabled = recorder.enabled();

  recorder.setEnabled(true);
  recorder.setTypeMask(FlightRecorder::bitOf(TraceType::Fault));
  EXPECT_TRUE(detail::flightWants(TraceType::Fault));
  EXPECT_FALSE(detail::flightWants(TraceType::Broadcast));
  recorder.setEnabled(false);
  EXPECT_FALSE(detail::flightWants(TraceType::Fault));

  recorder.setTypeMask(savedMask);
  recorder.setEnabled(savedEnabled);
}

TEST(FlightRecorderTest, ResetClearsRingAndCounters) {
  FlightRecorder recorder(8);
  for (std::uint32_t i = 0; i < 20; ++i) recorder.record(eventWithSeq(i));
  recorder.reset();
  EXPECT_EQ(recorder.recorded(), 0u);
  EXPECT_EQ(recorder.dropped(), 0u);
  EXPECT_TRUE(recorder.snapshot().empty());
}

TEST(FlightRecorderTest, DumpToWritesHeaderAndRecords) {
  const std::string path = ::testing::TempDir() + "flight_dump_test.jsonl";
  std::remove(path.c_str());
  FlightRecorder recorder(8);
  recorder.record(eventWithSeq(0, TraceType::Fault));
  recorder.record(eventWithSeq(1, TraceType::Drop));
  EXPECT_EQ(recorder.dumpTo(path, "unit test"), 2u);
  // Append mode: a second dump extends the same file.
  EXPECT_EQ(recorder.dumpTo(path, "again"), 2u);

  std::ifstream in(path);
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 6u);
  EXPECT_NE(lines[0].find("\"type\":\"flight_dump\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"reason\":\"unit test\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"records\":2"), std::string::npos);
  EXPECT_NE(lines[1].find("\"type\":\"fault\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"type\":\"drop\""), std::string::npos);
  EXPECT_NE(lines[3].find("\"reason\":\"again\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(FlightRecorderTest, DumpToUnwritablePathReturnsZero) {
  FlightRecorder recorder(8);
  recorder.record(eventWithSeq(0));
  EXPECT_EQ(recorder.dumpTo("/nonexistent-dir/flight.jsonl", "x"), 0u);
}

TEST(FlightRecorderTest, ConcurrentWritersNeverTearRecords) {
  // 4 writers lapping a small ring while a reader snapshots: every
  // consistent record must be bit-exact (ts == 1000 + seq, aux == 77).
  FlightRecorder recorder(16);
  constexpr int kWriters = 4;
  constexpr std::uint32_t kPerWriter = 5000;
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&recorder] {
      for (std::uint32_t i = 0; i < kPerWriter; ++i) recorder.record(eventWithSeq(i));
    });
  }
  for (int pass = 0; pass < 50; ++pass) {
    for (const auto& record : recorder.snapshot()) {
      ASSERT_EQ(record.event.ts, 1000 + record.event.event.sequence);
      ASSERT_EQ(record.event.aux, 77u);
    }
  }
  for (auto& t : writers) t.join();
  EXPECT_EQ(recorder.recorded(), kWriters * kPerWriter);
  const auto records = recorder.snapshot();
  ASSERT_EQ(records.size(), 16u);
  // Claims of the final snapshot are contiguous and strictly increasing.
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_EQ(records[i].claim, records[i - 1].claim + 1);
  }
}

}  // namespace
}  // namespace epto::obs

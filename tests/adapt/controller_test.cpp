// Unit tests of the adaptive TTL/K feedback controller (DESIGN.md §15):
// determinism, Lemma-safe bounds, hysteresis, step size, the shortfall
// loss estimator and its guards.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "adapt/controller.h"
#include "analysis/parameters.h"
#include "util/ensure.h"

namespace epto::adapt {
namespace {

ControllerConfig makeConfig(double worstLoss = 0.15, double initialLoss = 0.0) {
  ControllerConfig config;
  config.worstCase = {.systemSize = 40, .c = 2.0, .messageLossRate = worstLoss};
  config.initialLossRate = initialLoss;
  return config;
}

/// A round with `received` ball arrivals.
RoundSignals balls(double received) {
  RoundSignals signals;
  signals.ballsReceived = received;
  return signals;
}

/// A round with a direct substrate loss measurement.
RoundSignals hint(double loss) {
  RoundSignals signals;
  signals.ballsReceived = 1.0;  // non-idle; the hint takes precedence
  signals.lossHint = loss;
  return signals;
}

TEST(Controller, BoundsRoundTripThroughLemmaSafeEnvelope) {
  // The controller folds the worst-case loss into drift (Lemma 5
  // equivalence) before asking the analysis for its envelope; the
  // resulting bounds must agree with lemmaSafeBounds on those inputs.
  const ControllerConfig config = makeConfig();
  const FeedbackController controller(config);
  analysis::ParameterInputs effective = config.worstCase;
  effective.driftRatio =
      config.worstCase.driftRatio / (1.0 - config.worstCase.messageLossRate);
  const analysis::ParameterBounds expected = analysis::lemmaSafeBounds(effective);
  EXPECT_EQ(controller.bounds().lower.ttl, expected.lower.ttl);
  EXPECT_EQ(controller.bounds().lower.fanout, expected.lower.fanout);
  EXPECT_EQ(controller.bounds().upper.ttl, expected.upper.ttl);
  EXPECT_EQ(controller.bounds().upper.fanout, expected.upper.fanout);
  EXPECT_LE(controller.bounds().lower.ttl, controller.bounds().upper.ttl);
  EXPECT_LE(controller.bounds().lower.fanout, controller.bounds().upper.fanout);
}

TEST(Controller, StartsAtTheInitialLossTarget) {
  const FeedbackController healthy(makeConfig(0.15, 0.0));
  EXPECT_EQ(healthy.ttl(), healthy.targetFor(0.0).ttl);
  EXPECT_EQ(healthy.fanout(), healthy.targetFor(0.0).fanout);
  const FeedbackController provisioned(makeConfig(0.15, 0.15));
  EXPECT_EQ(provisioned.ttl(), provisioned.targetFor(0.15).ttl);
  EXPECT_EQ(provisioned.fanout(), provisioned.targetFor(0.15).fanout);
  EXPECT_GE(provisioned.ttl(), healthy.ttl());
  EXPECT_GE(provisioned.fanout(), healthy.fanout());
}

TEST(Controller, ManualStartingPointClampedIntoBounds) {
  ControllerConfig config = makeConfig();
  config.initialTtl = 1;
  config.initialFanout = 1;
  const FeedbackController low(config);
  EXPECT_EQ(low.ttl(), low.bounds().lower.ttl);
  EXPECT_EQ(low.fanout(), low.bounds().lower.fanout);
  config.initialTtl = 1000;
  config.initialFanout = 1000;
  const FeedbackController high(config);
  EXPECT_EQ(high.ttl(), high.bounds().upper.ttl);
  EXPECT_EQ(high.fanout(), high.bounds().upper.fanout);
}

TEST(Controller, TargetForIsClampedAndMonotoneInLoss) {
  const FeedbackController controller(makeConfig());
  analysis::Parameters previous = controller.targetFor(0.0);
  for (const double loss : {0.0, 0.03, 0.06, 0.09, 0.12, 0.15, 0.5, 2.0}) {
    const analysis::Parameters target = controller.targetFor(loss);
    EXPECT_GE(target.ttl, controller.bounds().lower.ttl) << "loss=" << loss;
    EXPECT_LE(target.ttl, controller.bounds().upper.ttl) << "loss=" << loss;
    EXPECT_GE(target.fanout, controller.bounds().lower.fanout) << "loss=" << loss;
    EXPECT_LE(target.fanout, controller.bounds().upper.fanout) << "loss=" << loss;
    EXPECT_GE(target.ttl, previous.ttl) << "loss=" << loss;
    EXPECT_GE(target.fanout, previous.fanout) << "loss=" << loss;
    previous = target;
  }
  // Beyond the provisioned worst case the target saturates — the
  // controller never chases loss it was not provisioned for.
  EXPECT_EQ(controller.targetFor(0.5).ttl, controller.targetFor(0.15).ttl);
  EXPECT_EQ(controller.targetFor(2.0).fanout, controller.targetFor(0.15).fanout);
}

TEST(Controller, DeterministicAcrossInstances) {
  FeedbackController a(makeConfig());
  FeedbackController b(makeConfig());
  for (int round = 0; round < 200; ++round) {
    const double received = (round % 7 == 0) ? 3.0 : 15.0 + (round % 5);
    const Decision da = a.onRound(balls(received));
    const Decision db = b.onRound(balls(received));
    EXPECT_EQ(da.ttl, db.ttl) << "round " << round;
    EXPECT_EQ(da.fanout, db.fanout) << "round " << round;
    EXPECT_EQ(da.changed, db.changed) << "round " << round;
  }
  EXPECT_EQ(a.retunes(), b.retunes());
}

TEST(Controller, IdleRoundsLeaveTheEstimateAlone) {
  FeedbackController controller(makeConfig());
  const double before = controller.lossEstimate();
  for (int round = 0; round < 100; ++round) {
    const Decision decision = controller.onRound(balls(0.0));
    EXPECT_FALSE(decision.changed);
  }
  EXPECT_EQ(controller.lossEstimate(), before);
  EXPECT_EQ(controller.retunes(), 0u);
}

TEST(Controller, HysteresisDelaysTheFirstStep) {
  ControllerConfig config = makeConfig();
  config.hysteresisRounds = 4;
  config.smoothing = 1.0;  // the estimate follows the hint immediately
  FeedbackController controller(config);
  const std::uint32_t startTtl = controller.ttl();
  for (int round = 1; round <= 3; ++round) {
    EXPECT_FALSE(controller.onRound(hint(0.15)).changed) << "round " << round;
    EXPECT_EQ(controller.ttl(), startTtl);
  }
  EXPECT_TRUE(controller.onRound(hint(0.15)).changed);
  EXPECT_EQ(controller.ttl(), startTtl + 1);
}

TEST(Controller, StepsAreBoundedToOnePerKnobPerRound) {
  FeedbackController controller(makeConfig());
  std::uint32_t ttl = controller.ttl();
  std::size_t fanout = controller.fanout();
  for (int round = 0; round < 300; ++round) {
    // Alternate violent signals to provoke the widest swings.
    const Decision decision =
        controller.onRound(round % 2 == 0 ? hint(0.95) : hint(0.0));
    EXPECT_LE(decision.ttl > ttl ? decision.ttl - ttl : ttl - decision.ttl, 1u);
    EXPECT_LE(decision.fanout > fanout ? decision.fanout - fanout
                                       : fanout - decision.fanout,
              1u);
    ttl = decision.ttl;
    fanout = decision.fanout;
  }
}

TEST(Controller, NeverLeavesTheLemmaSafeEnvelope) {
  FeedbackController controller(makeConfig());
  const analysis::ParameterBounds& bounds = controller.bounds();
  for (int round = 0; round < 500; ++round) {
    const Decision decision =
        controller.onRound(round < 250 ? hint(0.95) : hint(0.0));
    EXPECT_GE(decision.ttl, bounds.lower.ttl);
    EXPECT_LE(decision.ttl, bounds.upper.ttl);
    EXPECT_GE(decision.fanout, bounds.lower.fanout);
    EXPECT_LE(decision.fanout, bounds.upper.fanout);
  }
}

TEST(Controller, ConvergesUpUnderLossAndBackDownWhenItClears) {
  FeedbackController controller(makeConfig());
  for (int round = 0; round < 200; ++round) {
    (void)controller.onRound(hint(0.15));
  }
  EXPECT_EQ(controller.ttl(), controller.bounds().upper.ttl);
  EXPECT_EQ(controller.fanout(), controller.bounds().upper.fanout);
  for (int round = 0; round < 400; ++round) {
    (void)controller.onRound(hint(0.0));
  }
  // Shrinking is reluctant (a knob rests one notch above its target
  // rather than oscillating), so "back down" means within one step of
  // the healthy floor, not exactly on it.
  EXPECT_LE(controller.ttl(), controller.bounds().lower.ttl + 1);
  EXPECT_LE(controller.fanout(), controller.bounds().lower.fanout + 1);
  EXPECT_GT(controller.retunes(), 0u);
}

TEST(Controller, ShortfallEstimatorIsUnbiasedAroundTheMean) {
  // Arrivals oscillating symmetrically around K must not wind the
  // estimate up: surplus rounds pull the EWMA down as hard as shortfall
  // rounds pull it up.
  FeedbackController controller(makeConfig());
  const double k = static_cast<double>(controller.fanout());
  for (int round = 0; round < 400; ++round) {
    (void)controller.onRound(balls(round % 2 == 0 ? 0.8 * k : 1.2 * k));
  }
  EXPECT_LT(controller.lossEstimate(), 0.05);
  EXPECT_EQ(controller.ttl(), controller.targetFor(0.0).ttl);
}

TEST(Controller, StarvationShortfallRejectedAsLossSample) {
  // 1 ball against K expected is a drain tail or a quiescent workload,
  // not 90+% link loss; the sample must be rejected, not folded in.
  FeedbackController controller(makeConfig());
  const std::uint32_t startTtl = controller.ttl();
  for (int round = 0; round < 200; ++round) {
    (void)controller.onRound(balls(1.0));
  }
  EXPECT_EQ(controller.ttl(), startTtl);
  EXPECT_LT(controller.lossEstimate(), 0.01);
}

TEST(Controller, ModerateShortfallIsAccepted) {
  // A shortfall inside 3x the provisioned worst case is credible loss.
  FeedbackController controller(makeConfig());
  for (int round = 0; round < 200; ++round) {
    // Track the live K so the shortfall stays at 15% as the controller
    // raises its fanout.
    (void)controller.onRound(balls(0.85 * static_cast<double>(controller.fanout())));
  }
  EXPECT_NEAR(controller.lossEstimate(), 0.15, 0.03);
  EXPECT_GT(controller.ttl(), controller.targetFor(0.0).ttl);
}

TEST(Controller, RejectsInvalidConfiguration) {
  ControllerConfig config = makeConfig();
  config.hysteresisRounds = 0;
  EXPECT_THROW((void)FeedbackController(config), util::ContractViolation);
  config = makeConfig();
  config.smoothing = 0.0;
  EXPECT_THROW((void)FeedbackController(config), util::ContractViolation);
  config = makeConfig();
  config.smoothing = 1.5;
  EXPECT_THROW((void)FeedbackController(config), util::ContractViolation);
  config = makeConfig(0.15, 0.5);  // initial loss outside the envelope
  EXPECT_THROW((void)FeedbackController(config), util::ContractViolation);
}

}  // namespace
}  // namespace epto::adapt

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "baselines/balls_bins_broadcast.h"
#include "util/ensure.h"

namespace epto::baselines {
namespace {

class FixedSampler final : public PeerSampler {
 public:
  explicit FixedSampler(std::vector<ProcessId> peers) : peers_(std::move(peers)) {}
  std::vector<ProcessId> samplePeers(std::size_t k) override {
    auto out = peers_;
    if (out.size() > k) out.resize(k);
    return out;
  }

 private:
  std::vector<ProcessId> peers_;
};

Event remoteEvent(ProcessId source, std::uint32_t seq, std::uint32_t ttl) {
  Event e;
  e.id = EventId{source, seq};
  e.ttl = ttl;
  return e;
}

class BallsBinsTest : public ::testing::Test {
 protected:
  void build(std::size_t fanout = 2, std::uint32_t ttl = 3) {
    sampler_ = std::make_unique<FixedSampler>(std::vector<ProcessId>{10, 11});
    baseline_ = std::make_unique<BallsBinsBroadcast>(
        ProcessId{7}, BallsBinsBroadcast::Options{fanout, ttl}, *sampler_,
        [this](const Event& e, DeliveryTag) { delivered_.push_back(e); });
  }

  std::unique_ptr<FixedSampler> sampler_;
  std::unique_ptr<BallsBinsBroadcast> baseline_;
  std::vector<Event> delivered_;
};

TEST_F(BallsBinsTest, BroadcastDeliversLocallyImmediately) {
  build();
  const Event event = baseline_->broadcast(nullptr);
  ASSERT_EQ(delivered_.size(), 1u);
  EXPECT_EQ(delivered_[0].id, event.id);
}

TEST_F(BallsBinsTest, FirstReceptionDelivers) {
  build();
  baseline_->onBall({remoteEvent(1, 0, 1)});
  ASSERT_EQ(delivered_.size(), 1u);
  EXPECT_EQ(delivered_[0].id, (EventId{1, 0}));
}

TEST_F(BallsBinsTest, DuplicatesNeverRedeliver) {
  build();
  for (int i = 0; i < 5; ++i) baseline_->onBall({remoteEvent(1, 0, 1)});
  EXPECT_EQ(delivered_.size(), 1u);
  EXPECT_EQ(baseline_->stats().duplicatesIgnored, 4u);
}

TEST_F(BallsBinsTest, ExpiredCopiesStillDeliverButAreNotRelayed) {
  build(2, 3);
  baseline_->onBall({remoteEvent(1, 0, 3)});  // ttl == TTL
  EXPECT_EQ(delivered_.size(), 1u);           // infection counts
  EXPECT_EQ(baseline_->onRound().ball, nullptr);  // but no relay
}

TEST_F(BallsBinsTest, FreshCopiesAreRelayedWithIncrementedTtl) {
  build(2, 3);
  baseline_->onBall({remoteEvent(1, 0, 1)});
  const auto out = baseline_->onRound();
  ASSERT_NE(out.ball, nullptr);
  ASSERT_EQ(out.ball->size(), 1u);
  EXPECT_EQ((*out.ball)[0].ttl, 2u);
  EXPECT_EQ(out.targets, (std::vector<ProcessId>{10, 11}));
}

TEST_F(BallsBinsTest, NextBallClearedAfterRound) {
  build();
  baseline_->broadcast(nullptr);
  EXPECT_NE(baseline_->onRound().ball, nullptr);
  EXPECT_EQ(baseline_->onRound().ball, nullptr);
}

TEST_F(BallsBinsTest, SequencesIncrease) {
  build();
  EXPECT_EQ(baseline_->nextSequence(), 0u);
  baseline_->broadcast(nullptr);
  EXPECT_EQ(baseline_->nextSequence(), 1u);
  EXPECT_EQ(baseline_->broadcast(nullptr).id.sequence, 1u);
}

TEST_F(BallsBinsTest, RejectsDegenerateOptions) {
  FixedSampler sampler({1});
  const auto deliver = [](const Event&, DeliveryTag) {};
  EXPECT_THROW(
      BallsBinsBroadcast(0, {.fanout = 0, .ttl = 3}, sampler, deliver),
      util::ContractViolation);
  EXPECT_THROW(
      BallsBinsBroadcast(0, {.fanout = 2, .ttl = 0}, sampler, deliver),
      util::ContractViolation);
}

}  // namespace
}  // namespace epto::baselines

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "baselines/pbcast.h"
#include "util/ensure.h"

namespace epto::baselines {
namespace {

class FixedSampler final : public PeerSampler {
 public:
  explicit FixedSampler(std::vector<ProcessId> peers) : peers_(std::move(peers)) {}
  std::vector<ProcessId> samplePeers(std::size_t k) override {
    auto out = peers_;
    if (out.size() > k) out.resize(k);
    return out;
  }

 private:
  std::vector<ProcessId> peers_;
};

Event remoteEvent(ProcessId source, std::uint32_t seq, Timestamp originRound,
                  std::uint32_t ttl) {
  Event e;
  e.id = EventId{source, seq};
  e.ts = originRound;
  e.ttl = ttl;
  return e;
}

class PbcastTest : public ::testing::Test {
 protected:
  void build(std::size_t fanout = 2, std::uint32_t relay = 3, std::uint32_t stability = 5) {
    sampler_ = std::make_unique<FixedSampler>(std::vector<ProcessId>{10, 11});
    pbcast_ = std::make_unique<PbcastProcess>(
        ProcessId{7}, PbcastProcess::Options{fanout, relay, stability}, *sampler_,
        [this](const Event& e, DeliveryTag) { delivered_.push_back(e); });
  }

  std::unique_ptr<FixedSampler> sampler_;
  std::unique_ptr<PbcastProcess> pbcast_;
  std::vector<Event> delivered_;
};

TEST_F(PbcastTest, DeliversOwnBroadcastAfterStabilityRounds) {
  build(2, 3, 5);
  pbcast_->broadcast(nullptr);  // origin round 0
  for (int round = 1; round <= 5; ++round) {
    (void)pbcast_->onRound();
    if (round < 5) {
      EXPECT_TRUE(delivered_.empty()) << "round " << round;
    }
  }
  ASSERT_EQ(delivered_.size(), 1u);
  EXPECT_EQ(delivered_[0].id, (EventId{7, 0}));
}

TEST_F(PbcastTest, BatchesDeliverInDeterministicOrder) {
  build(2, 3, 5);
  pbcast_->onGossip({remoteEvent(9, 0, 0, 1), remoteEvent(2, 0, 0, 1)});
  pbcast_->broadcast(nullptr);  // also origin round 0, source 7
  for (int round = 1; round <= 5; ++round) (void)pbcast_->onRound();
  ASSERT_EQ(delivered_.size(), 3u);
  EXPECT_EQ(delivered_[0].id.source, 2u);  // (round 0, src 2) first
  EXPECT_EQ(delivered_[1].id.source, 7u);
  EXPECT_EQ(delivered_[2].id.source, 9u);
}

TEST_F(PbcastTest, BatchesFromDifferentRoundsStayOrdered) {
  build(2, 3, 5);
  pbcast_->broadcast(nullptr);          // round 0
  (void)pbcast_->onRound();             // round 1
  pbcast_->broadcast(nullptr);          // round 1
  for (int i = 0; i < 6; ++i) (void)pbcast_->onRound();
  ASSERT_EQ(delivered_.size(), 2u);
  EXPECT_LT(delivered_[0].orderKey(), delivered_[1].orderKey());
}

TEST_F(PbcastTest, LateCopyIsDroppedForever) {
  // The synchronous-model fragility EpTO fixes: a copy arriving after
  // its batch shipped is useless.
  build(2, 3, 5);
  for (int i = 0; i < 10; ++i) (void)pbcast_->onRound();  // round 10
  pbcast_->onGossip({remoteEvent(9, 0, /*originRound=*/2, 1)});
  for (int i = 0; i < 10; ++i) (void)pbcast_->onRound();
  EXPECT_TRUE(delivered_.empty());
  EXPECT_EQ(pbcast_->stats().lateDrops, 1u);
}

TEST_F(PbcastTest, DuplicatesIgnored) {
  build();
  pbcast_->onGossip({remoteEvent(9, 0, 0, 1)});
  pbcast_->onGossip({remoteEvent(9, 0, 0, 2)});
  EXPECT_EQ(pbcast_->stats().duplicates, 1u);
  for (int i = 0; i < 6; ++i) (void)pbcast_->onRound();
  EXPECT_EQ(delivered_.size(), 1u);
}

TEST_F(PbcastTest, RelaysForConfiguredRoundsOnly) {
  build(2, /*relay=*/2, /*stability=*/5);
  pbcast_->broadcast(nullptr);
  EXPECT_NE(pbcast_->onRound().ball, nullptr);  // relay 1
  EXPECT_NE(pbcast_->onRound().ball, nullptr);  // relay 2
  EXPECT_EQ(pbcast_->onRound().ball, nullptr);  // done relaying
}

TEST_F(PbcastTest, GossipCarriesIncrementedTtl) {
  build(2, 3, 5);
  pbcast_->onGossip({remoteEvent(9, 0, 0, 1)});
  const auto out = pbcast_->onRound();
  ASSERT_NE(out.ball, nullptr);
  EXPECT_EQ((*out.ball)[0].ttl, 2u);
}

TEST_F(PbcastTest, RejectsDegenerateOptions) {
  FixedSampler sampler({1});
  const auto deliver = [](const Event&, DeliveryTag) {};
  EXPECT_THROW(PbcastProcess(0, {0, 3, 5}, sampler, deliver), util::ContractViolation);
  EXPECT_THROW(PbcastProcess(0, {2, 0, 5}, sampler, deliver), util::ContractViolation);
  EXPECT_THROW(PbcastProcess(0, {2, 5, 3}, sampler, deliver), util::ContractViolation);
}

}  // namespace
}  // namespace epto::baselines

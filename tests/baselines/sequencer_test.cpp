#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "baselines/sequencer.h"
#include "util/ensure.h"

namespace epto::baselines {
namespace {

/// A hand-driven trio: process 0 is the sequencer.
class SequencerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::vector<ProcessId> members{0, 1, 2};
    for (const ProcessId id : members) {
      nodes_[id] = std::make_unique<SequencerProcess>(
          id, /*sequencerId=*/0, members,
          [this, id](const Event& e, DeliveryTag) { logs_[id].push_back(e); });
    }
  }

  /// Route outgoing unicasts, optionally dropping stamped message #drop.
  void route(const std::vector<SequencerProcess::Outgoing>& outs, int dropStamp = -1) {
    for (const auto& out : outs) {
      if (out.submit.has_value()) {
        route(nodes_[0]->onSubmit(*out.submit), dropStamp);
      } else if (out.stamped.has_value()) {
        if (dropStamp >= 0 &&
            out.stamped->sequence == static_cast<std::uint64_t>(dropStamp)) {
          continue;  // simulated loss
        }
        nodes_[out.to]->onStamped(*out.stamped);
      }
    }
  }

  std::map<ProcessId, std::unique_ptr<SequencerProcess>> nodes_;
  std::map<ProcessId, std::vector<Event>> logs_;
};

TEST_F(SequencerTest, MemberBroadcastGoesThroughTheSequencer) {
  route(nodes_[1]->broadcast(nullptr));
  for (const auto& [id, log] : logs_) {
    ASSERT_EQ(log.size(), 1u) << "process " << id;
    EXPECT_EQ(log[0].id, (EventId{1, 0}));
  }
}

TEST_F(SequencerTest, SequencerBroadcastsDirectly) {
  route(nodes_[0]->broadcast(nullptr));
  for (const auto& [id, log] : logs_) ASSERT_EQ(log.size(), 1u);
}

TEST_F(SequencerTest, AllMembersDeliverInStampOrder) {
  route(nodes_[1]->broadcast(nullptr));
  route(nodes_[2]->broadcast(nullptr));
  route(nodes_[0]->broadcast(nullptr));
  route(nodes_[2]->broadcast(nullptr));
  for (const auto& [id, log] : logs_) {
    ASSERT_EQ(log.size(), 4u) << "process " << id;
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_EQ(log[i].id, logs_[0][i].id) << "divergence at " << i;
    }
  }
}

TEST_F(SequencerTest, OutOfOrderStampsAreBufferedNotDropped) {
  SequencerProcess& node = *nodes_[1];
  Event e1;
  e1.id = EventId{2, 0};
  Event e2;
  e2.id = EventId{2, 1};
  node.onStamped(StampedMessage{1, e2});  // stamp 1 arrives before stamp 0
  EXPECT_TRUE(logs_[1].empty());
  node.onStamped(StampedMessage{0, e1});
  ASSERT_EQ(logs_[1].size(), 2u);
  EXPECT_EQ(logs_[1][0].id, e1.id);
  EXPECT_EQ(logs_[1][1].id, e2.id);
}

TEST_F(SequencerTest, LostStampStallsTheMemberForever) {
  // The fragility the ablation highlights: drop stamp 0 towards everyone,
  // every later event stays buffered at non-sequencer members.
  route(nodes_[1]->broadcast(nullptr), /*dropStamp=*/0);
  route(nodes_[1]->broadcast(nullptr));
  route(nodes_[1]->broadcast(nullptr));
  EXPECT_EQ(logs_[0].size(), 3u);  // the sequencer itself is fine
  EXPECT_TRUE(logs_[1].empty());
  EXPECT_TRUE(logs_[2].empty());
  EXPECT_EQ(nodes_[1]->expectedSequence(), 0u);
  EXPECT_GE(nodes_[1]->stats().stalled, 2u);  // stamps 1 and 2 buffered
}

TEST_F(SequencerTest, StaleDuplicateStampIsIgnored) {
  route(nodes_[1]->broadcast(nullptr));
  Event e;
  e.id = EventId{1, 0};
  nodes_[2]->onStamped(StampedMessage{0, e});  // replay of stamp 0
  EXPECT_EQ(logs_[2].size(), 1u);
}

TEST_F(SequencerTest, SequencerSendsOneUnicastPerMemberPerEvent) {
  route(nodes_[1]->broadcast(nullptr));
  // Member 1: one submit. Sequencer: two stamped unicasts (members 1, 2).
  EXPECT_EQ(nodes_[1]->stats().unicastsSent, 1u);
  EXPECT_EQ(nodes_[0]->stats().unicastsSent, 2u);
  EXPECT_EQ(nodes_[0]->stats().stamped, 1u);
}

TEST_F(SequencerTest, NonSequencerRejectsSubmissions) {
  SubmitMessage submit;
  EXPECT_THROW((void)nodes_[1]->onSubmit(submit), util::ContractViolation);
}

TEST(SequencerProcess, SequencerMustBeAMember) {
  EXPECT_THROW(SequencerProcess(1, 9, {0, 1, 2}, [](const Event&, DeliveryTag) {}),
               util::ContractViolation);
}

}  // namespace
}  // namespace epto::baselines

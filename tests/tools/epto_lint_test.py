#!/usr/bin/env python3
"""Unit tests for tools/epto_lint.py — every rule fires on a minimal
positive fixture, every suppression mechanism suppresses, the scrubber
never matches prose, and the real tree is clean."""

from __future__ import annotations

import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import epto_lint  # noqa: E402


def rule_ids(findings):
    return sorted({f.rule_id for f in findings})


class RuleFixtureTest(unittest.TestCase):
    """Each rule must fire on code that violates it."""

    def assert_fires(self, rule_id: str, rel_path: str, code: str):
        findings = epto_lint.lint_text(rel_path, code)
        self.assertIn(rule_id, rule_ids(findings),
                      f"{rule_id} did not fire on: {code!r}")

    def test_nondeterminism_random_device(self):
        self.assert_fires("nondeterminism", "src/x.cpp",
                          "std::random_device rd;\n")

    def test_nondeterminism_rand(self):
        self.assert_fires("nondeterminism", "src/x.cpp", "int r = rand();\n")
        self.assert_fires("nondeterminism", "src/x.cpp", "srand(42);\n")

    def test_nondeterminism_time(self):
        self.assert_fires("nondeterminism", "src/x.cpp",
                          "auto t = time(nullptr);\n")

    def test_nondeterminism_wall_clocks(self):
        self.assert_fires("nondeterminism", "src/x.cpp",
                          "auto n = std::chrono::system_clock::now();\n")
        self.assert_fires("nondeterminism", "src/x.cpp",
                          "auto n = std::chrono::high_resolution_clock::now();\n")

    def test_stdout(self):
        self.assert_fires("stdout", "src/x.cpp", 'std::cout << done;\n')
        self.assert_fires("stdout", "src/x.cpp", 'printf(fmt, 1);\n')

    def test_raw_mutex(self):
        self.assert_fires("raw-mutex", "src/x.h", "std::mutex m_;\n")
        self.assert_fires("raw-mutex", "src/x.cpp",
                          "const std::scoped_lock lock(m_);\n")
        self.assert_fires("raw-mutex", "src/x.cpp",
                          "std::lock_guard<std::mutex> g(m_);\n")

    def test_naked_lock(self):
        self.assert_fires("naked-lock", "src/x.cpp", "mutex_.lock();\n")
        self.assert_fires("naked-lock", "src/x.cpp", "mutex_.unlock();\n")

    def test_iostream_header(self):
        self.assert_fires("iostream-header", "src/x.h",
                          "#include <iostream>\n")

    def test_iostream_allowed_in_cpp(self):
        findings = epto_lint.lint_text("src/x.cpp", "#include <iostream>\n")
        self.assertNotIn("iostream-header", rule_ids(findings))

    def test_eventid_order(self):
        self.assert_fires("eventid-order", "src/x.cpp",
                          "if (a.id < b.id) deliver(a);\n")
        self.assert_fires("eventid-order", "src/x.cpp",
                          "return lhs.id >= rhs.id;\n")

    def test_eventid_equality_allowed(self):
        code = "if (a.id == b.id || a.id != c.id) merge();\n"
        self.assertEqual([], epto_lint.lint_text("src/x.cpp", code))

    def test_eventid_stream_insert_allowed(self):
        code = "log << e.id << later;\n"
        findings = epto_lint.lint_text("src/x.cpp", code)
        self.assertNotIn("eventid-order", rule_ids(findings))

    def test_decoded_ball_trust(self):
        self.assert_fires("decoded-ball-trust", "src/x.cpp",
                          "auto decoded = codec::decodeBall(frame);\n")
        self.assert_fires("decoded-ball-trust", "src/x.cpp",
                          "if (decodeBall(datagram.bytes).ok) relay();\n")

    def test_decoded_ball_trust_sanctioned_ingress_suppressed(self):
        code = "auto decoded = codec::decodeBall(frame);\n"
        allow = {("decoded-ball-trust", "src/runtime/udp_cluster.cpp")}
        self.assertEqual([], epto_lint.lint_text(
            "src/runtime/udp_cluster.cpp", code, allow))

    def test_decoded_ball_trust_other_words_allowed(self):
        code = "auto frame = codec::encodeBall(ball); decodeBallast();\n"
        findings = epto_lint.lint_text("src/x.cpp", code)
        self.assertNotIn("decoded-ball-trust", rule_ids(findings))

    def test_speculative_frontier_write_assignment(self):
        self.assert_fires("speculative-frontier-write", "src/core/speculation.cpp",
                          "lastDelivered_ = slot.key;\n")

    def test_speculative_frontier_write_container_mutation(self):
        self.assert_fires("speculative-frontier-write", "src/core/speculation.cpp",
                          "received_.erase(it);\n")
        self.assert_fires("speculative-frontier-write", "src/core/speculation.cpp",
                          "receivedIndex_.emplace(id.packed(), &entry);\n")
        self.assert_fires("speculative-frontier-write", "src/core/speculation.cpp",
                          "received_.clear();\n")

    def test_speculative_frontier_read_allowed(self):
        code = ("auto it = received_.upper_bound(*frontier);\n"
                "if (lastDelivered_.has_value() && key <= *lastDelivered_) hold();\n"
                "if (lastDelivered_ == key) confirm();\n")
        findings = epto_lint.lint_text("src/core/speculation.cpp", code)
        self.assertNotIn("speculative-frontier-write", rule_ids(findings))

    def test_speculative_frontier_write_committed_path_suppressed(self):
        code = "lastDelivered_ = event.orderKey();\n"
        allow = {("speculative-frontier-write", "src/core/ordering.cpp")}
        self.assertEqual([], epto_lint.lint_text(
            "src/core/ordering.cpp", code, allow))

    def test_shard_affinity_write_dispatch(self):
        self.assert_fires("shard-affinity-write", "src/runtime/transport.cpp",
                          "node.process->onBall(*ball);\n")
        self.assert_fires("shard-affinity-write", "src/runtime/transport.cpp",
                          "const auto out = node.process->onRound();\n")
        self.assert_fires("shard-affinity-write", "src/runtime/transport.cpp",
                          "node.ingress.push(std::move(decoded.ball));\n")

    def test_shard_affinity_write_lifecycle(self):
        self.assert_fires("shard-affinity-write", "src/runtime/transport.cpp",
                          "node.process.reset();\n")
        self.assert_fires("shard-affinity-write", "src/runtime/transport.cpp",
                          "node.process = makeProcess(node.id, node.incarnation);\n")
        self.assert_fires("shard-affinity-write", "src/runtime/transport.cpp",
                          "node.reassembler.clear();\n")

    def test_shard_affinity_read_allowed(self):
        code = ("auto n = node.process->disseminationStats().ballsReceived;\n"
                "node.process->metricsSnapshot().recordTo(registry_);\n"
                "storeMax(highWater_, node.ingress.highWater());\n"
                "const auto& stats = node.reassembler.stats();\n"
                "if (node.process == nullptr) return;\n")
        findings = epto_lint.lint_text("src/runtime/sharded_executor.cpp", code)
        self.assertNotIn("shard-affinity-write", rule_ids(findings))

    def test_shard_affinity_write_owning_loop_suppressed(self):
        code = "while (auto ball = node.ingress.pop()) node.process->onBall(*ball);\n"
        allow = {("shard-affinity-write", "src/runtime/udp_cluster.cpp")}
        self.assertEqual([], epto_lint.lint_text(
            "src/runtime/udp_cluster.cpp", code, allow))


class ScrubberTest(unittest.TestCase):
    """Comments and literals must never produce findings."""

    def test_line_comment(self):
        code = "// std::mutex and rand() and std::cout in prose\nint x = 0;\n"
        self.assertEqual([], epto_lint.lint_text("src/x.cpp", code))

    def test_block_comment_keeps_line_numbers(self):
        code = "/* std::random_device\n spans lines */\nstd::mutex m;\n"
        findings = epto_lint.lint_text("src/x.cpp", code)
        self.assertEqual([("raw-mutex", 3)],
                         [(f.rule_id, f.line) for f in findings])

    def test_string_literal(self):
        code = 'const char* s = "calls rand() and time(nullptr)";\n'
        self.assertEqual([], epto_lint.lint_text("src/x.cpp", code))

    def test_raw_string_literal(self):
        code = 'const char* s = R"(std::cout << rand())";\nint y = 0;\n'
        self.assertEqual([], epto_lint.lint_text("src/x.cpp", code))

    def test_escaped_quote_in_string(self):
        code = 'const char* s = "quote \\" then rand()";\n'
        self.assertEqual([], epto_lint.lint_text("src/x.cpp", code))


class AllowlistTest(unittest.TestCase):
    """Each allowlist entry must suppress exactly its (rule, file) pair."""

    def test_entry_suppresses(self):
        code = "if (a.id < b.id) keepSorted();\n"
        allow = {("eventid-order", "src/core/merge.cpp")}
        self.assertEqual([], epto_lint.lint_text("src/core/merge.cpp", code, allow))

    def test_entry_is_per_file(self):
        code = "if (a.id < b.id) keepSorted();\n"
        allow = {("eventid-order", "src/core/merge.cpp")}
        findings = epto_lint.lint_text("src/core/other.cpp", code, allow)
        self.assertIn("eventid-order", rule_ids(findings))

    def test_entry_is_per_rule(self):
        code = "std::mutex m;\n"
        allow = {("eventid-order", "src/x.cpp")}
        findings = epto_lint.lint_text("src/x.cpp", code, allow)
        self.assertIn("raw-mutex", rule_ids(findings))

    def test_checked_in_allowlist_parses(self):
        entries = epto_lint.parse_allowlist(
            REPO_ROOT / "tools" / "epto_lint_allowlist.txt")
        self.assertIn(("raw-mutex", "src/util/mutex.h"), entries)
        self.assertIn(("eventid-order", "src/core/dissemination.cpp"), entries)
        self.assertIn(("decoded-ball-trust", "src/runtime/udp_cluster.cpp"), entries)
        self.assertIn(("speculative-frontier-write", "src/core/ordering.cpp"), entries)
        self.assertIn(("shard-affinity-write", "src/runtime/udp_cluster.cpp"), entries)
        self.assertIn(("shard-affinity-write", "src/runtime/runtime_cluster.cpp"), entries)

    def test_every_checked_in_entry_is_load_bearing(self):
        """Dropping any allowlist entry must surface at least one finding —
        a stale entry would silently widen the suppression surface."""
        entries = epto_lint.parse_allowlist(
            REPO_ROOT / "tools" / "epto_lint_allowlist.txt")
        for rule_id, rel in sorted(entries):
            remaining = entries - {(rule_id, rel)}
            text = (REPO_ROOT / rel).read_text()
            findings = epto_lint.lint_text(rel, text, remaining)
            self.assertIn(rule_id, rule_ids(findings),
                          f"allowlist entry '{rule_id} {rel}' is stale")

    def test_stale_entry_missing_file_reported(self):
        with tempfile.TemporaryDirectory() as tmp:
            stale = epto_lint.stale_allowlist_entries(
                Path(tmp), {("raw-mutex", "src/gone.cpp")})
            self.assertEqual(
                [("raw-mutex", "src/gone.cpp", "file no longer exists")], stale)

    def test_stale_entry_no_matching_line_reported(self):
        with tempfile.TemporaryDirectory() as tmp:
            src = Path(tmp) / "src" / "clean.cpp"
            src.parent.mkdir(parents=True)
            src.write_text("int f() { return 0; }\n")
            stale = epto_lint.stale_allowlist_entries(
                Path(tmp), {("raw-mutex", "src/clean.cpp")})
            self.assertEqual(
                [("raw-mutex", "src/clean.cpp", "rule no longer matches any line")],
                stale)

    def test_live_entry_not_reported(self):
        with tempfile.TemporaryDirectory() as tmp:
            src = Path(tmp) / "src" / "locky.cpp"
            src.parent.mkdir(parents=True)
            src.write_text("std::mutex m_;\n")
            self.assertEqual([], epto_lint.stale_allowlist_entries(
                Path(tmp), {("raw-mutex", "src/locky.cpp")}))

    def test_comment_only_match_is_stale(self):
        """The audit must scrub like the linter does: a rule string living
        only in a comment keeps suppressing nothing."""
        with tempfile.TemporaryDirectory() as tmp:
            src = Path(tmp) / "src" / "prose.cpp"
            src.parent.mkdir(parents=True)
            src.write_text("// std::mutex discussed in prose only\nint x;\n")
            stale = epto_lint.stale_allowlist_entries(
                Path(tmp), {("raw-mutex", "src/prose.cpp")})
            self.assertEqual(1, len(stale))

    def test_headers_only_rule_on_source_is_stale(self):
        with tempfile.TemporaryDirectory() as tmp:
            src = Path(tmp) / "src" / "impl.cpp"
            src.parent.mkdir(parents=True)
            src.write_text("#include <iostream>\n")
            stale = epto_lint.stale_allowlist_entries(
                Path(tmp), {("iostream-header", "src/impl.cpp")})
            self.assertEqual(
                [("iostream-header", "src/impl.cpp", "rule applies only to headers")],
                stale)

    def test_checked_in_allowlist_has_no_stale_entries(self):
        entries = epto_lint.parse_allowlist(
            REPO_ROOT / "tools" / "epto_lint_allowlist.txt")
        self.assertEqual([], epto_lint.stale_allowlist_entries(REPO_ROOT, entries))

    def test_cli_warns_on_stale_entry_but_stays_clean(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            (root / "src").mkdir()
            (root / "src" / "ok.cpp").write_text("int f() { return 0; }\n")
            allow = root / "allow.txt"
            allow.write_text("raw-mutex src/vanished.cpp\n")
            proc = subprocess.run(
                [sys.executable, str(REPO_ROOT / "tools" / "epto_lint.py"),
                 "--root", str(root), "--allowlist", str(allow)],
                capture_output=True, text=True)
            self.assertEqual(0, proc.returncode, proc.stdout + proc.stderr)
            self.assertIn("stale allowlist entry", proc.stderr)
            self.assertIn("src/vanished.cpp", proc.stderr)

    def test_malformed_allowlist_rejected(self):
        with tempfile.NamedTemporaryFile("w", suffix=".txt") as f:
            f.write("raw-mutex too many fields\n")
            f.flush()
            with self.assertRaises(ValueError):
                epto_lint.parse_allowlist(Path(f.name))

    def test_unknown_rule_rejected(self):
        with tempfile.NamedTemporaryFile("w", suffix=".txt") as f:
            f.write("no-such-rule src/x.cpp\n")
            f.flush()
            with self.assertRaises(ValueError):
                epto_lint.parse_allowlist(Path(f.name))


class CliTest(unittest.TestCase):
    """End-to-end: the committed tree is clean, a seeded violation fails."""

    SCRIPT = REPO_ROOT / "tools" / "epto_lint.py"

    def test_repo_is_clean(self):
        proc = subprocess.run([sys.executable, str(self.SCRIPT)],
                              capture_output=True, text=True)
        self.assertEqual(0, proc.returncode, proc.stdout + proc.stderr)
        self.assertIn("OK", proc.stdout)

    def test_seeded_violation_fails(self):
        with tempfile.TemporaryDirectory() as tmp:
            bad = Path(tmp) / "src" / "bad.cpp"
            bad.parent.mkdir(parents=True)
            bad.write_text("#include <cstdlib>\nint f() { return rand(); }\n")
            proc = subprocess.run(
                [sys.executable, str(self.SCRIPT), "--root", tmp],
                capture_output=True, text=True)
            self.assertEqual(1, proc.returncode, proc.stdout + proc.stderr)
            self.assertIn("nondeterminism", proc.stdout)


if __name__ == "__main__":
    unittest.main()

#!/usr/bin/env python3
"""Tests for tools/epto_trace.py: the golden multi-node fixture plus
invariant detection, flight-dump handling and CLI behaviour."""

import json
import os
import subprocess
import sys
import tempfile
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
TOOL = os.path.join(REPO, "tools", "epto_trace.py")
FIXTURES = os.path.join(HERE, "fixtures")


def run_tool(*argv):
    return subprocess.run(
        [sys.executable, TOOL] + list(argv), capture_output=True, text=True
    )


def run_summary(*argv):
    result = run_tool(*argv)
    if result.stdout == "":
        raise AssertionError("no stdout; stderr: %s" % result.stderr)
    return result, json.loads(result.stdout)


def write_trace(lines):
    handle = tempfile.NamedTemporaryFile(
        "w", suffix=".jsonl", delete=False, encoding="utf-8"
    )
    with handle:
        for line in lines:
            handle.write(json.dumps(line) + "\n")
    return handle.name


BROADCAST = {
    "type": "broadcast", "node": 0, "round": 1, "source": 0, "seq": 0, "ts": 10,
}
FIRST_SEEN = {
    "type": "first_seen", "node": 1, "round": 2, "source": 0, "seq": 0, "ts": 10,
    "ttl": 1, "size": 14, "aux": 1,
}
DELIVERABLE = {
    "type": "became_deliverable", "node": 1, "round": 6, "source": 0, "seq": 0,
    "ts": 30, "ttl": 4, "size": 14, "aux": 6,
}
DELIVER = {
    "type": "deliver", "node": 1, "round": 7, "source": 0, "seq": 0, "ts": 10,
    "ttl": 4, "size": 38, "aux": 0, "detail": 0,
}
SPECULATE = {
    "type": "speculate", "node": 1, "round": 5, "source": 0, "seq": 0, "ts": 10,
    "ttl": 3, "size": 940000, "aux": 2, "detail": 0,
}
SPEC_CONFIRM = {
    "type": "spec_confirm", "node": 1, "round": 7, "source": 0, "seq": 0, "ts": 10,
}
SPEC_REVOKE = {
    "type": "spec_revoke", "node": 1, "round": 8, "source": 0, "seq": 0, "ts": 10,
}
RETUNE = {  # ttl 13 in [12, 15], K 17 in [16, 19]
    "type": "retune", "node": 0, "round": 4, "source": 0, "seq": 0, "ts": 0,
    "ttl": 13, "size": (15 << 32) | 12, "aux": (19 << 32) | 16, "detail": 17,
}


class GoldenTrace(unittest.TestCase):
    def test_multi_node_fixture_matches_expected_summary(self):
        result, summary = run_summary(
            os.path.join(FIXTURES, "trace_node0.jsonl"),
            os.path.join(FIXTURES, "trace_node1_node2.jsonl"),
        )
        self.assertEqual(result.returncode, 0, result.stderr)
        with open(os.path.join(FIXTURES, "expected_summary.json")) as handle:
            expected = json.load(handle)
        del summary["files"]  # the only environment-dependent field
        self.assertEqual(summary, expected)

    def test_golden_fixture_passes_invariants(self):
        result = run_tool(
            "--check-invariants",
            os.path.join(FIXTURES, "trace_node0.jsonl"),
            os.path.join(FIXTURES, "trace_node1_node2.jsonl"),
        )
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_phases_sum_to_end_to_end(self):
        _, summary = run_summary(
            os.path.join(FIXTURES, "trace_node0.jsonl"),
            os.path.join(FIXTURES, "trace_node1_node2.jsonl"),
        )
        phases = summary["segments"]["golden"]["phases"]
        self.assertEqual(
            phases["dissemination"]["mean"]
            + phases["stability_wait"]["mean"]
            + phases["ordering_wait"]["mean"],
            phases["end_to_end"]["mean"],
        )


class Invariants(unittest.TestCase):
    def test_delivery_without_broadcast_detected(self):
        path = write_trace([FIRST_SEEN, DELIVERABLE, DELIVER])
        try:
            result, summary = run_summary("--check-invariants", path)
            self.assertEqual(result.returncode, 1)
            violations = summary["segments"]["(unlabeled)"]["invariant_violations"]
            self.assertEqual(violations.get("delivered_without_broadcast"), 1)
        finally:
            os.unlink(path)

    def test_hop_exceeding_ttl_detected(self):
        bad = dict(FIRST_SEEN, aux=9)  # hop 9 on a ttl-1 event
        path = write_trace([BROADCAST, bad])
        try:
            result, summary = run_summary("--check-invariants", path)
            self.assertEqual(result.returncode, 1)
            violations = summary["segments"]["(unlabeled)"]["invariant_violations"]
            self.assertEqual(violations.get("hop_exceeds_ttl"), 1)
        finally:
            os.unlink(path)

    def test_zero_hop_away_from_origin_detected(self):
        bad = dict(FIRST_SEEN, aux=0)
        path = write_trace([BROADCAST, bad])
        try:
            result, _ = run_summary("--check-invariants", path)
            self.assertEqual(result.returncode, 1)
        finally:
            os.unlink(path)

    def test_delivery_before_deliverable_detected(self):
        early = dict(DELIVERABLE, round=9)  # became deliverable after delivery
        path = write_trace([BROADCAST, FIRST_SEEN, early, DELIVER])
        try:
            result, summary = run_summary("--check-invariants", path)
            self.assertEqual(result.returncode, 1)
            violations = summary["segments"]["(unlabeled)"]["invariant_violations"]
            self.assertEqual(violations.get("deliver_before_deliverable"), 1)
        finally:
            os.unlink(path)

    def test_revoke_after_confirm_detected(self):
        path = write_trace(
            [BROADCAST, FIRST_SEEN, SPECULATE, SPEC_CONFIRM, SPEC_REVOKE]
        )
        try:
            result, summary = run_summary("--check-invariants", path)
            self.assertEqual(result.returncode, 1)
            violations = summary["segments"]["(unlabeled)"]["invariant_violations"]
            self.assertEqual(violations.get("spec_revoke_after_confirm"), 1)
        finally:
            os.unlink(path)

    def test_respeculation_lifecycle_passes(self):
        # speculate -> revoke -> speculate again -> confirm is the
        # legitimate lifecycle (a straggler displaced the preview, the
        # event re-qualified later and the committed path agreed).
        # Confirm is terminal; only a revoke strictly AFTER it violates.
        early_revoke = dict(SPEC_REVOKE, round=6)
        respeculate = dict(SPECULATE, round=6)
        path = write_trace(
            [BROADCAST, FIRST_SEEN, SPECULATE, early_revoke, respeculate, SPEC_CONFIRM]
        )
        try:
            result, summary = run_summary("--check-invariants", path)
            self.assertEqual(result.returncode, 0, result.stderr)
            spec = summary["segments"]["(unlabeled)"]["speculation"]
            self.assertEqual(spec["confirmed"], 1)
            self.assertEqual(spec["revoked"], 1)
        finally:
            os.unlink(path)

    def test_resolution_without_speculate_detected(self):
        path = write_trace([BROADCAST, FIRST_SEEN, SPEC_CONFIRM])
        try:
            result, summary = run_summary("--check-invariants", path)
            self.assertEqual(result.returncode, 1)
            violations = summary["segments"]["(unlabeled)"]["invariant_violations"]
            self.assertEqual(violations.get("spec_resolution_without_speculate"), 1)
        finally:
            os.unlink(path)

    def test_clean_speculation_passes_and_is_counted(self):
        path = write_trace([BROADCAST, FIRST_SEEN, SPECULATE, SPEC_CONFIRM])
        try:
            result, summary = run_summary("--check-invariants", path)
            self.assertEqual(result.returncode, 0, result.stderr)
            spec = summary["segments"]["(unlabeled)"]["speculation"]
            self.assertEqual(spec["speculated"], 1)
            self.assertEqual(spec["confirmed"], 1)
            self.assertEqual(spec["revoked"], 0)
            self.assertEqual(spec["mistake_rate"], 0.0)
            self.assertEqual(spec["confidence"]["max"], 0.94)
        finally:
            os.unlink(path)

    def test_retune_within_bounds_passes(self):
        path = write_trace([RETUNE])
        try:
            result, summary = run_summary("--check-invariants", path)
            self.assertEqual(result.returncode, 0, result.stderr)
            self.assertEqual(
                summary["segments"]["(unlabeled)"]["retunes"]["count"], 1
            )
        finally:
            os.unlink(path)

    def test_retune_out_of_bounds_detected(self):
        bad_ttl = dict(RETUNE, ttl=16)  # above the packed [12, 15]
        bad_k = dict(RETUNE, detail=15)  # below the packed [16, 19]
        path = write_trace([bad_ttl, bad_k])
        try:
            result, summary = run_summary("--check-invariants", path)
            self.assertEqual(result.returncode, 1)
            violations = summary["segments"]["(unlabeled)"]["invariant_violations"]
            self.assertEqual(violations.get("retune_out_of_bounds"), 2)
        finally:
            os.unlink(path)

    def test_clean_trace_passes(self):
        path = write_trace([BROADCAST, FIRST_SEEN, DELIVERABLE, DELIVER])
        try:
            result, summary = run_summary("--check-invariants", path)
            self.assertEqual(result.returncode, 0, result.stderr)
            self.assertTrue(summary["invariants_ok"])
        finally:
            os.unlink(path)


class FlightDumps(unittest.TestCase):
    def test_flight_records_do_not_trip_completeness_invariants(self):
        # A flight ring holds only the newest window: a deliver without its
        # broadcast is expected there, not a violation.
        path = write_trace(
            [
                {"type": "flight_dump", "reason": "crash node=1", "records": 2,
                 "recorded": 10, "dropped": 8},
                FIRST_SEEN,
                DELIVER,
            ]
        )
        try:
            result, summary = run_summary("--check-invariants", path)
            self.assertEqual(result.returncode, 0, result.stderr)
            self.assertEqual(len(summary["flight_dumps"]), 1)
            self.assertEqual(summary["flight_dumps"][0]["reason"], "crash node=1")
            segment = summary["segments"]["(unlabeled)"]
            self.assertEqual(segment["flight_records"], 2)
        finally:
            os.unlink(path)


class Cli(unittest.TestCase):
    def test_malformed_lines_counted_not_fatal(self):
        handle = tempfile.NamedTemporaryFile("w", suffix=".jsonl", delete=False)
        with handle:
            handle.write("not json\n")
            handle.write(json.dumps(BROADCAST) + "\n")
        try:
            result, summary = run_summary(handle.name)
            self.assertEqual(result.returncode, 0)
            self.assertEqual(summary["malformed_lines"], 1)
            self.assertEqual(summary["total_records"], 1)
        finally:
            os.unlink(handle.name)

    def test_segment_filter(self):
        path = write_trace(
            [
                {"type": "label", "label": "a"},
                BROADCAST,
                {"type": "label", "label": "b"},
                dict(BROADCAST, seq=1),
            ]
        )
        try:
            _, summary = run_summary("--segment=b", path)
            self.assertEqual(list(summary["segments"]), ["b"])
            result = run_tool("--segment=missing", path)
            self.assertEqual(result.returncode, 2)
        finally:
            os.unlink(path)

    def test_summary_out_writes_file(self):
        path = write_trace([BROADCAST])
        out = tempfile.NamedTemporaryFile(suffix=".json", delete=False)
        out.close()
        try:
            result = run_tool("--summary-out=" + out.name, path)
            self.assertEqual(result.returncode, 0)
            with open(out.name) as handle:
                summary = json.load(handle)
            self.assertEqual(summary["total_records"], 1)
        finally:
            os.unlink(path)
            os.unlink(out.name)

    def test_usage_errors(self):
        self.assertEqual(run_tool().returncode, 2)
        self.assertEqual(run_tool("--bogus").returncode, 2)
        self.assertEqual(run_tool("/nonexistent/trace.jsonl").returncode, 2)


if __name__ == "__main__":
    unittest.main()

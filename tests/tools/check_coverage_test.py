#!/usr/bin/env python3
"""Tests for tools/check_coverage.py — llvm-cov summary parsing, the
per-directory aggregation, and the ratcheted floor verdicts."""

from __future__ import annotations

import json
import sys
import tempfile
import unittest
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_coverage  # noqa: E402


def export_json(files):
    return {"data": [{"files": [
        {"filename": name, "summary": {"lines": {"count": count, "covered": covered}}}
        for name, count, covered in files
    ]}]}


class DirectoryMappingTest(unittest.TestCase):
    def test_absolute_build_path_maps_to_src_directory(self):
        self.assertEqual("src/codec",
                         check_coverage.directory_of("/home/ci/repo/src/codec/ball_codec.cpp"))

    def test_relative_path_maps_too(self):
        self.assertEqual("src/core", check_coverage.directory_of("src/core/ordering.cpp"))

    def test_last_src_component_wins(self):
        self.assertEqual("src/codec",
                         check_coverage.directory_of("/mnt/src/work/repo/src/codec/varint.h"))


class AggregationTest(unittest.TestCase):
    def test_files_sum_per_directory(self):
        export = export_json([
            ("/r/src/codec/a.cpp", 100, 90),
            ("/r/src/codec/b.cpp", 50, 40),
            ("/r/src/core/c.cpp", 200, 150),
        ])
        totals = check_coverage.aggregate(export)
        self.assertEqual((130, 150), totals["src/codec"])
        self.assertEqual((150, 200), totals["src/core"])

    def test_zero_line_files_ignored(self):
        export = export_json([("/r/src/codec/empty.h", 0, 0)])
        self.assertEqual({}, check_coverage.aggregate(export))


class FloorTest(unittest.TestCase):
    def test_above_floor_passes(self):
        totals = {"src/codec": (95, 100), "src/core": (80, 100)}
        self.assertEqual(0, check_coverage.check(
            totals, {"src/codec": 90.0, "src/core": 70.0}))

    def test_below_floor_fails(self):
        totals = {"src/codec": (80, 100), "src/core": (80, 100)}
        self.assertEqual(1, check_coverage.check(
            totals, {"src/codec": 90.0, "src/core": 70.0}))

    def test_floored_directory_missing_from_export_fails(self):
        # Wrong binaries profiled → the gate must not silently pass.
        self.assertEqual(1, check_coverage.check(
            {"src/core": (80, 100)}, {"src/codec": 90.0}))

    def test_unfloored_directory_is_informational(self):
        totals = {"src/pss": (1, 100), "src/codec": (95, 100)}
        self.assertEqual(0, check_coverage.check(totals, {"src/codec": 90.0}))


class CliTest(unittest.TestCase):
    def run_main(self, argv):
        return check_coverage.main(["check_coverage.py", *argv])

    def test_missing_export_is_a_clear_failure(self):
        with self.assertRaises(SystemExit) as ctx:
            self.run_main(["/nonexistent/export.json"])
        self.assertEqual(2, ctx.exception.code)

    def test_unparseable_export_is_a_clear_failure(self):
        with tempfile.NamedTemporaryFile("w", suffix=".json") as f:
            f.write("{not json")
            f.flush()
            with self.assertRaises(SystemExit) as ctx:
                self.run_main([f.name])
            self.assertEqual(2, ctx.exception.code)

    def test_floor_override_applies(self):
        with tempfile.NamedTemporaryFile("w", suffix=".json") as f:
            json.dump(export_json([("/r/src/codec/a.cpp", 100, 75),
                                   ("/r/src/core/b.cpp", 100, 75)]), f)
            f.flush()
            # Default codec floor (90) would fail; overriding both below
            # the measured 75% must pass.
            self.assertEqual(0, self.run_main(
                [f.name, "--floor=src/codec=50", "--floor=src/core=50"]))
            self.assertEqual(1, self.run_main([f.name, "--floor=src/core=50"]))

    def test_bad_floor_argument_rejected(self):
        with self.assertRaises(SystemExit) as ctx:
            self.run_main(["export.json", "--floor=oops"])
        self.assertEqual(2, ctx.exception.code)


if __name__ == "__main__":
    unittest.main()

#!/usr/bin/env python3
"""Tests for bench/perf/check_regression.py error handling and gating.

The comparison logic is exercised by the perf-smoke CI job on real bench
records; these tests pin down the CLI contract — above all that a
missing or unparseable BENCH_*.json fails with a clear actionable
message (exit via SystemExit), never a stack trace."""

from __future__ import annotations

import json
import sys
import tempfile
import unittest
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
sys.path.insert(0, str(REPO_ROOT / "bench" / "perf"))

import check_regression  # noqa: E402


def write_jsonl(path: Path, records) -> None:
    path.write_text("".join(json.dumps(r) + "\n" for r in records))


def core_record(ns_per_op: float) -> dict:
    return {
        "schema": "epto.bench.core/1",
        "benchmarks": [{"name": "BM_OrderingRound/64", "ns_per_op": ns_per_op}],
    }


class LastRecordErrorTest(unittest.TestCase):
    def test_missing_file_is_a_clear_failure(self):
        with self.assertRaises(SystemExit) as ctx:
            check_regression.last_record("/nonexistent/BENCH_core.json")
        message = str(ctx.exception)
        self.assertIn("cannot read", message)
        self.assertIn("BENCH_core.json", message)
        self.assertIn("regenerate", message)

    def test_unparseable_line_is_a_clear_failure(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "BENCH_core.json"
            path.write_text('{"schema": "epto.bench.core/1"}\n{truncated\n')
            with self.assertRaises(SystemExit) as ctx:
                check_regression.last_record(path)
            message = str(ctx.exception)
            self.assertIn("not valid JSON", message)
            self.assertIn(":2:", message)  # the offending line number

    def test_non_object_line_is_a_clear_failure(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "BENCH_core.json"
            path.write_text("[1, 2, 3]\n")
            with self.assertRaises(SystemExit) as ctx:
                check_regression.last_record(path)
            self.assertIn("expected a JSON object", str(ctx.exception))

    def test_wrong_schema_names_the_expectation(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "BENCH_core.json"
            write_jsonl(path, [{"schema": "something.else/9"}])
            with self.assertRaises(SystemExit) as ctx:
                check_regression.last_record(path)
            self.assertIn("no record with schema", str(ctx.exception))

    def test_last_matching_record_wins(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "BENCH_core.json"
            write_jsonl(path, [core_record(100.0), core_record(200.0)])
            record = check_regression.last_record(path)
            self.assertEqual(200.0, record["benchmarks"][0]["ns_per_op"])


class GatingTest(unittest.TestCase):
    def run_main(self, current: Path, baseline: Path, threshold: str | None = None):
        argv = ["check_regression.py", str(current), str(baseline)]
        if threshold:
            argv.append(f"--threshold={threshold}")
        return check_regression.main(argv)

    def test_regression_beyond_threshold_fails(self):
        with tempfile.TemporaryDirectory() as tmp:
            current, baseline = Path(tmp) / "cur.json", Path(tmp) / "base.json"
            write_jsonl(current, [core_record(200.0)])
            write_jsonl(baseline, [core_record(100.0)])
            self.assertEqual(1, self.run_main(current, baseline))

    def test_within_threshold_passes(self):
        with tempfile.TemporaryDirectory() as tmp:
            current, baseline = Path(tmp) / "cur.json", Path(tmp) / "base.json"
            write_jsonl(current, [core_record(110.0)])
            write_jsonl(baseline, [core_record(100.0)])
            self.assertEqual(0, self.run_main(current, baseline))

    def test_missing_baseline_path_is_a_clear_failure(self):
        with tempfile.TemporaryDirectory() as tmp:
            current = Path(tmp) / "cur.json"
            write_jsonl(current, [core_record(100.0)])
            with self.assertRaises(SystemExit) as ctx:
                self.run_main(current, Path(tmp) / "absent.json")
            self.assertIn("cannot read", str(ctx.exception))

    def test_figs_schema_without_baseline_argument_is_rejected(self):
        with tempfile.TemporaryDirectory() as tmp:
            current = Path(tmp) / "cur.json"
            write_jsonl(current, [{"schema": "epto.bench.figs/1", "conditions": []}])
            with self.assertRaises(SystemExit) as ctx:
                check_regression.main(["check_regression.py", str(current)])
            self.assertIn("no default baseline", str(ctx.exception))


if __name__ == "__main__":
    unittest.main()

// Adversarial fuzz of the ordering component: random balls with random
// timestamps, ttls, duplicate ids and replayed events — the component
// must never crash, never break its internal invariant, never deliver a
// duplicate and never deliver out of order, regardless of input.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/ordering.h"
#include "core/stability_oracle.h"
#include "util/rng.h"

namespace epto {
namespace {

class OrderingFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OrderingFuzz, SafetyUnderArbitraryBallStreams) {
  util::Rng rng(GetParam());
  const std::uint32_t ttl = 1 + static_cast<std::uint32_t>(rng.below(8));

  LogicalClockOracle oracle(ttl);
  std::vector<Event> delivered;
  std::set<EventId> deliveredIds;
  OrderingComponent ordering(
      {.ttl = ttl}, oracle, [&](const Event& e, DeliveryTag tag) {
        ASSERT_EQ(tag, DeliveryTag::Ordered);
        // Integrity: never the same event twice.
        ASSERT_TRUE(deliveredIds.insert(e.id).second) << "duplicate delivery";
        // Total order: strictly increasing keys.
        if (!delivered.empty()) {
          ASSERT_LT(delivered.back().orderKey(), e.orderKey()) << "order violation";
        }
        delivered.push_back(e);
      });

  for (int round = 0; round < 400; ++round) {
    Ball ball;
    const std::size_t events = rng.below(6);
    for (std::size_t i = 0; i < events; ++i) {
      Event e;
      // Small domains maximize collisions: the same event reappears in
      // many balls, long after delivery, with varying ttls. The
      // timestamp is a pure function of the id — EpTO's fault model
      // (§2, non-Byzantine) guarantees an event's content never varies
      // between copies.
      e.id = EventId{static_cast<ProcessId>(rng.below(5)),
                     static_cast<std::uint32_t>(rng.below(40))};
      e.ts = util::mix64(e.id.packed()) % 60;
      e.ttl = static_cast<std::uint32_t>(rng.below(ttl + 3));
      ball.push_back(e);
    }
    ordering.orderEvents(ball);
    ASSERT_TRUE(ordering.checkInvariants()) << "round " << round;
  }

  // Sanity: the fuzz actually exercised deliveries and drops.
  EXPECT_GT(delivered.size(), 0u);
  EXPECT_GT(ordering.stats().droppedOutOfOrder + ordering.stats().droppedDuplicates, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrderingFuzz,
                         ::testing::Values(1, 7, 42, 99, 123, 777, 2024, 31337),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

class TaggedOrderingFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TaggedOrderingFuzz, TaggingNeverDuplicatesAcrossTagKinds) {
  util::Rng rng(GetParam());
  const std::uint32_t ttl = 2 + static_cast<std::uint32_t>(rng.below(4));

  LogicalClockOracle oracle(ttl);
  std::set<EventId> seen;
  OrderingComponent ordering(
      {.ttl = ttl, .tagOutOfOrder = true}, oracle,
      [&](const Event& e, DeliveryTag) {
        ASSERT_TRUE(seen.insert(e.id).second)
            << "event surfaced twice across ordered+tagged paths";
      });

  for (int round = 0; round < 300; ++round) {
    Ball ball;
    for (std::size_t i = 0; i < rng.below(5); ++i) {
      Event e;
      e.id = EventId{static_cast<ProcessId>(rng.below(4)),
                     static_cast<std::uint32_t>(rng.below(30))};
      e.ts = util::mix64(e.id.packed()) % 40;  // id-consistent content
      e.ttl = static_cast<std::uint32_t>(rng.below(ttl + 2));
      ball.push_back(e);
    }
    ordering.orderEvents(ball);
    ASSERT_TRUE(ordering.checkInvariants());
  }
  EXPECT_GT(ordering.stats().deliveredOutOfOrder, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TaggedOrderingFuzz, ::testing::Values(3, 33, 333, 3333),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace epto

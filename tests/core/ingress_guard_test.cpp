#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/ingress_guard.h"
#include "obs/registry.h"
#include "util/ensure.h"

namespace epto::core {
namespace {

PayloadPtr payloadOf(const std::string& text) {
  PayloadBytes bytes;
  for (const char c : text) bytes.push_back(static_cast<std::byte>(c));
  return std::make_shared<const PayloadBytes>(std::move(bytes));
}

Event makeEvent(ProcessId source, std::uint32_t sequence, Timestamp ts,
                std::uint32_t ttl, std::uint16_t hop,
                const std::string& payload = "p") {
  Event event;
  event.id = {source, sequence};
  event.ts = ts;
  event.ttl = ttl;
  event.hop = hop;
  event.originRound = 1;
  event.payload = payloadOf(payload);
  return event;
}

TEST(IngressGuard, RejectsZeroFingerprintCapacity) {
  EXPECT_THROW(IngressGuard({.fingerprintCapacity = 0}),
               util::ContractViolation);
}

TEST(IngressGuard, CleanBallIsAdmittedZeroCopy) {
  IngressGuard guard({.maxTtl = 8});
  const Ball ball{makeEvent(1, 0, 10, 3, 2), makeEvent(2, 0, 11, 1, 0)};
  const auto verdict = guard.inspect(/*senderKey=*/1, ball);
  EXPECT_TRUE(verdict.admitted);
  EXPECT_EQ(verdict.cause, IngressCause::None);
  EXPECT_EQ(verdict.filtered, 0u);
  // Clean path: `kept` stays disengaged so the caller reuses the original.
  EXPECT_FALSE(verdict.kept.has_value());
  EXPECT_EQ(guard.stats().ballsInspected, 1u);
  EXPECT_EQ(guard.stats().ballsRejected(), 0u);
}

TEST(IngressGuard, RejectsHopExceedingTtl) {
  IngressGuard guard({});
  const Ball ball{makeEvent(1, 0, 10, 3, 4)};  // hop 4 > ttl 3: impossible
  const auto verdict = guard.inspect(1, ball);
  EXPECT_FALSE(verdict.admitted);
  EXPECT_EQ(verdict.cause, IngressCause::Lineage);
  EXPECT_EQ(guard.stats().ballsRejectedLineage, 1u);
}

TEST(IngressGuard, RejectsTtlBeyondProtocolCeilingOnlyWhenConfigured) {
  IngressGuard unbounded({.maxTtl = 0});
  const Ball tall{makeEvent(1, 0, 10, 1'000, 2)};
  EXPECT_TRUE(unbounded.inspect(1, tall).admitted);

  IngressGuard bounded({.maxTtl = 12});
  const auto verdict = bounded.inspect(1, tall);
  EXPECT_FALSE(verdict.admitted);
  EXPECT_EQ(verdict.cause, IngressCause::Lineage);
}

TEST(IngressGuard, RejectsImplausibleOriginRound) {
  IngressGuard guard({.maxOriginRound = 100});
  Event event = makeEvent(1, 0, 10, 3, 1);
  event.originRound = 101;
  const auto verdict = guard.inspect(1, Ball{event});
  EXPECT_FALSE(verdict.admitted);
  EXPECT_EQ(verdict.cause, IngressCause::OriginRound);
  EXPECT_EQ(guard.stats().ballsRejectedOriginRound, 1u);
}

TEST(IngressGuard, RejectsUnknownSourceOnlyWithStaticMembership) {
  IngressGuard dynamic({.knownSources = 0});
  const Ball ball{makeEvent(/*source=*/500, 0, 10, 3, 1)};
  EXPECT_TRUE(dynamic.inspect(1, ball).admitted);

  IngressGuard fixed({.knownSources = 16});
  const auto verdict = fixed.inspect(1, ball);
  EXPECT_FALSE(verdict.admitted);
  EXPECT_EQ(verdict.cause, IngressCause::UnknownSource);
}

TEST(IngressGuard, RateCapTripsPerSenderAndResetsEachRound) {
  IngressGuard guard({.maxBallsPerSenderPerRound = 2});
  const Ball ball{makeEvent(1, 0, 10, 3, 1)};
  EXPECT_TRUE(guard.inspect(7, ball).admitted);
  EXPECT_TRUE(guard.inspect(7, ball).admitted);
  const auto third = guard.inspect(7, ball);
  EXPECT_FALSE(third.admitted);
  EXPECT_EQ(third.cause, IngressCause::Rate);
  // Another sender has its own budget.
  EXPECT_TRUE(guard.inspect(8, ball).admitted);
  // A new round wipes the window.
  guard.onRound();
  EXPECT_TRUE(guard.inspect(7, ball).admitted);
  EXPECT_EQ(guard.stats().ballsRejectedRate, 1u);
}

TEST(IngressGuard, FirstEquivocationVariantWinsLaterDivergentsDrop) {
  IngressGuard guard({});
  const Event honest = makeEvent(1, 0, /*ts=*/10, 3, 1, "original");
  EXPECT_TRUE(guard.inspect(1, Ball{honest}).admitted);

  // Same EventId + incarnation, different payload: equivocation.
  Event forged = makeEvent(1, 0, 10, 3, 1, "tampered");
  const Event bystander = makeEvent(2, 0, 11, 3, 1);
  const auto verdict = guard.inspect(2, Ball{forged, bystander});
  EXPECT_TRUE(verdict.admitted);  // ball survives — event-level filtering
  EXPECT_EQ(verdict.cause, IngressCause::Equivocation);
  EXPECT_EQ(verdict.filtered, 1u);
  ASSERT_TRUE(verdict.kept.has_value());
  ASSERT_EQ(verdict.kept->size(), 1u);
  EXPECT_EQ((*verdict.kept)[0].id, bystander.id);
  EXPECT_EQ(guard.stats().eventsFilteredEquivocation, 1u);

  // A divergent timestamp with identical payload is equally an
  // equivocation: the fingerprint folds both.
  Event shifted = makeEvent(1, 0, /*ts=*/99, 3, 1, "original");
  const auto again = guard.inspect(3, Ball{shifted});
  EXPECT_EQ(again.filtered, 1u);
  ASSERT_TRUE(again.kept.has_value());
  EXPECT_TRUE(again.kept->empty());

  // The honest first variant keeps flowing (honest relays carry it).
  EXPECT_EQ(guard.inspect(4, Ball{honest}).filtered, 0u);
}

TEST(IngressGuard, IncarnationRegressionFiltersButRestartSupersedes) {
  IngressGuard guard({});
  Event current = makeEvent(1, 0, 10, 3, 1, "post-restart");
  current.incarnation = 2;
  EXPECT_EQ(guard.inspect(1, Ball{current}).filtered, 0u);

  // A replayed pre-restart copy regresses the incarnation: filtered.
  Event stale = makeEvent(1, 0, 10, 3, 1, "pre-restart");
  stale.incarnation = 1;
  const auto verdict = guard.inspect(2, Ball{stale});
  EXPECT_EQ(verdict.cause, IngressCause::Incarnation);
  EXPECT_EQ(verdict.filtered, 1u);
  EXPECT_EQ(guard.stats().eventsFilteredIncarnation, 1u);

  // A higher incarnation supersedes the record instead of equivocating.
  Event newer = makeEvent(1, 0, 12, 3, 1, "post-second-restart");
  newer.incarnation = 3;
  EXPECT_EQ(guard.inspect(3, Ball{newer}).filtered, 0u);
  // ...and the superseded fingerprint governs from now on.
  EXPECT_EQ(guard.inspect(4, Ball{current}).cause, IngressCause::Incarnation);
}

TEST(IngressGuard, KeptBallPreservesSurvivorsAroundMultipleFilteredEvents) {
  IngressGuard guard({});
  const Event a = makeEvent(1, 0, 10, 3, 1, "a");
  const Event b = makeEvent(2, 0, 11, 3, 1, "b");
  EXPECT_TRUE(guard.inspect(1, Ball{a, b}).admitted);

  Event aForged = makeEvent(1, 0, 10, 3, 1, "a'");
  Event bForged = makeEvent(2, 0, 11, 3, 1, "b'");
  const Event fresh = makeEvent(3, 0, 12, 3, 1, "c");
  const auto verdict = guard.inspect(2, Ball{aForged, fresh, bForged});
  EXPECT_TRUE(verdict.admitted);
  EXPECT_EQ(verdict.filtered, 2u);
  ASSERT_TRUE(verdict.kept.has_value());
  ASSERT_EQ(verdict.kept->size(), 1u);
  EXPECT_EQ((*verdict.kept)[0].id, fresh.id);
}

TEST(IngressGuard, FingerprintGenerationsRotateAndHotIdsSurvive) {
  IngressGuard guard({.fingerprintCapacity = 4});
  const Event hot = makeEvent(1, 0, 10, 3, 1, "hot");
  EXPECT_EQ(guard.inspect(1, Ball{hot}).filtered, 0u);
  // Fill well past one generation; touch `hot` along the way so lookups
  // keep promoting it into the current generation.
  for (std::uint32_t seq = 1; seq <= 20; ++seq) {
    EXPECT_EQ(guard.inspect(1, Ball{makeEvent(2, seq, 20 + seq, 3, 1)}).filtered,
              0u);
    EXPECT_EQ(guard.inspect(1, Ball{hot}).filtered, 0u);
  }
  EXPECT_GT(guard.stats().fingerprintRotations, 0u);
  // Despite many rotations, the hot id's fingerprint is still live and a
  // divergent variant is still caught.
  Event hotForged = makeEvent(1, 0, 10, 3, 1, "hot'");
  EXPECT_EQ(guard.inspect(2, Ball{hotForged}).cause, IngressCause::Equivocation);
}

TEST(IngressGuard, PayloadDigestIsNullSafeAndContentSensitive) {
  EXPECT_EQ(payloadDigest(nullptr), payloadDigest(nullptr));
  EXPECT_EQ(payloadDigest(nullptr),
            payloadDigest(std::make_shared<const PayloadBytes>()));
  EXPECT_NE(payloadDigest(payloadOf("a")), payloadDigest(payloadOf("b")));
  EXPECT_EQ(payloadDigest(payloadOf("same")), payloadDigest(payloadOf("same")));
}

TEST(IngressGuard, PublishesLabeledRejectionCounters) {
  IngressGuard guard({.maxTtl = 4, .maxBallsPerSenderPerRound = 1});
  (void)guard.inspect(1, Ball{makeEvent(1, 0, 10, 3, 4)});  // lineage
  (void)guard.inspect(2, Ball{makeEvent(2, 0, 10, 3, 1)});  // clean
  (void)guard.inspect(2, Ball{makeEvent(2, 1, 11, 3, 1)});  // rate

  obs::Registry registry;
  guard.recordTo(registry);
  std::uint64_t lineage = 0;
  std::uint64_t rate = 0;
  std::uint64_t inspected = 0;
  for (const obs::Sample& sample : registry.snapshot()) {
    if (sample.name == "epto_ingress_rejected_total") {
      ASSERT_EQ(sample.labels.size(), 1u);
      EXPECT_EQ(sample.labels[0].first, "cause");
      if (sample.labels[0].second == "lineage") lineage = sample.counter;
      if (sample.labels[0].second == "rate") rate = sample.counter;
    }
    if (sample.name == "epto_ingress_inspected_total") {
      inspected = sample.counter;
    }
  }
  EXPECT_EQ(lineage, 1u);
  EXPECT_EQ(rate, 1u);
  EXPECT_EQ(inspected, 3u);
}

}  // namespace
}  // namespace epto::core

// Tests of the Process facade: oracle selection, wiring and the
// public-API contract, including a miniature hand-driven network of
// processes exchanging balls without any simulator.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "core/process.h"
#include "util/ensure.h"

namespace epto {
namespace {

class RoundRobinSampler final : public PeerSampler {
 public:
  explicit RoundRobinSampler(std::vector<ProcessId> peers) : peers_(std::move(peers)) {}
  std::vector<ProcessId> samplePeers(std::size_t k) override {
    std::vector<ProcessId> out;
    for (std::size_t i = 0; i < k && i < peers_.size(); ++i) {
      out.push_back(peers_[(next_ + i) % peers_.size()]);
    }
    next_ = (next_ + 1) % std::max<std::size_t>(1, peers_.size());
    return out;
  }

 private:
  std::vector<ProcessId> peers_;
  std::size_t next_ = 0;
};

Config tinyConfig(ClockMode mode, std::uint32_t ttl = 3, std::size_t fanout = 2) {
  Config config;
  config.fanout = fanout;
  config.ttl = ttl;
  config.clockMode = mode;
  return config;
}

TEST(Process, GlobalModeRequiresTimeSource) {
  auto sampler = std::make_shared<RoundRobinSampler>(std::vector<ProcessId>{1});
  EXPECT_THROW(Process(0, tinyConfig(ClockMode::Global), sampler,
                       [](const Event&, DeliveryTag) {}),
               util::ContractViolation);
}

TEST(Process, LogicalModeNeedsNoTimeSource) {
  auto sampler = std::make_shared<RoundRobinSampler>(std::vector<ProcessId>{1});
  EXPECT_NO_THROW(Process(0, tinyConfig(ClockMode::Logical), sampler,
                          [](const Event&, DeliveryTag) {}));
}

TEST(Process, RequiresSampler) {
  EXPECT_THROW(Process(0, tinyConfig(ClockMode::Logical), nullptr,
                       [](const Event&, DeliveryTag) {}),
               util::ContractViolation);
}

TEST(Process, GlobalClockStampsFromTimeSource) {
  auto sampler = std::make_shared<RoundRobinSampler>(std::vector<ProcessId>{1});
  Timestamp now = 4200;
  Process p(0, tinyConfig(ClockMode::Global), sampler, [](const Event&, DeliveryTag) {},
            [&now] { return now; });
  EXPECT_EQ(p.broadcast().ts, 4200u);
  now = 4300;
  EXPECT_EQ(p.broadcast().ts, 4300u);
}

TEST(Process, PayloadTravelsWithTheEvent) {
  auto sampler = std::make_shared<RoundRobinSampler>(std::vector<ProcessId>{1});
  std::vector<Event> delivered;
  Process p(0, tinyConfig(ClockMode::Logical), sampler,
            [&](const Event& e, DeliveryTag) { delivered.push_back(e); });
  auto payload = std::make_shared<PayloadBytes>(PayloadBytes{std::byte{0xAB}});
  p.broadcast(payload);
  for (int i = 0; i < 6; ++i) p.onRound();
  ASSERT_EQ(delivered.size(), 1u);
  ASSERT_NE(delivered[0].payload, nullptr);
  EXPECT_EQ((*delivered[0].payload)[0], std::byte{0xAB});
}

TEST(Process, SelfBroadcastIsEventuallySelfDelivered) {
  // Validity on a single process: no network needed.
  auto sampler = std::make_shared<RoundRobinSampler>(std::vector<ProcessId>{});
  std::vector<Event> delivered;
  Process p(0, tinyConfig(ClockMode::Logical, /*ttl=*/4), sampler,
            [&](const Event& e, DeliveryTag) { delivered.push_back(e); });
  const Event event = p.broadcast();
  for (int i = 0; i < 10 && delivered.empty(); ++i) p.onRound();
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].id, event.id);
}

/// Drive a 4-process "network" by hand: every RoundOutput ball is handed
/// to its targets synchronously. Verifies agreement and total order with
/// zero randomness in the transport.
TEST(Process, HandDrivenQuartetAgreesInOrder) {
  constexpr std::size_t kN = 4;
  std::map<ProcessId, std::vector<Event>> logs;
  std::vector<std::unique_ptr<Process>> processes;
  for (ProcessId id = 0; id < kN; ++id) {
    std::vector<ProcessId> others;
    for (ProcessId peer = 0; peer < kN; ++peer) {
      if (peer != id) others.push_back(peer);
    }
    processes.push_back(std::make_unique<Process>(
        id, tinyConfig(ClockMode::Logical, /*ttl=*/4, /*fanout=*/3),
        std::make_shared<RoundRobinSampler>(others),
        [&logs, id](const Event& e, DeliveryTag) { logs[id].push_back(e); }));
  }

  processes[0]->broadcast();
  processes[2]->broadcast();
  for (int round = 0; round < 12; ++round) {
    // Collect all round outputs first (synchronous rounds), then deliver.
    std::vector<std::pair<ProcessId, Process::RoundOutput>> outputs;
    for (auto& p : processes) outputs.emplace_back(p->id(), p->onRound());
    if (round == 2) processes[1]->broadcast();  // concurrent late broadcast
    for (auto& [from, out] : outputs) {
      if (out.ball == nullptr) continue;
      for (const ProcessId target : out.targets) processes[target]->onBall(*out.ball);
    }
  }

  ASSERT_EQ(logs.size(), kN);
  for (const auto& [id, log] : logs) {
    ASSERT_EQ(log.size(), 3u) << "process " << id << " missed events";
    EXPECT_EQ(log.size(), logs.at(0).size());
  }
  // Identical delivery order everywhere.
  for (ProcessId id = 1; id < kN; ++id) {
    for (std::size_t i = 0; i < logs.at(0).size(); ++i) {
      EXPECT_EQ(logs.at(id)[i].id, logs.at(0)[i].id) << "divergence at " << i;
    }
  }
  // And the order is the (ts, source, seq) total order.
  for (std::size_t i = 1; i < logs.at(0).size(); ++i) {
    EXPECT_LT(logs.at(0)[i - 1].orderKey(), logs.at(0)[i].orderKey());
  }
  for (const auto& p : processes) EXPECT_TRUE(p->checkInvariants());
}

TEST(Process, StatsAccessorsWork) {
  auto sampler = std::make_shared<RoundRobinSampler>(std::vector<ProcessId>{1});
  Process p(0, tinyConfig(ClockMode::Logical), sampler, [](const Event&, DeliveryTag) {});
  p.broadcast();
  p.onRound();
  EXPECT_EQ(p.disseminationStats().broadcasts, 1u);
  EXPECT_EQ(p.orderingStats().rounds, 1u);
  EXPECT_EQ(p.id(), 0u);
  EXPECT_FALSE(p.lastDelivered().has_value());
  EXPECT_EQ(p.pendingEvents().size(), 1u);
}

}  // namespace
}  // namespace epto

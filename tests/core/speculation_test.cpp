// Unit tests of the speculative delivery channel (§8.4, DESIGN.md §15):
// the offer/confirm/revoke protocol, key-order discipline, window
// capacity and exactly-once resolution.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/speculation.h"

namespace epto {
namespace {

Event makeEvent(ProcessId source, std::uint32_t seq, Timestamp ts) {
  Event e;
  e.id = EventId{source, seq};
  e.ts = ts;
  e.qos = QosClass::Fast;
  return e;
}

/// Records every callback invocation in order, as readable strings.
class ChannelTest : public ::testing::Test {
 protected:
  SpeculationChannel build(double threshold = 0.5, std::size_t maxWindow = 64) {
    SpeculationCallbacks callbacks;
    callbacks.onSpeculate = [this](const Event& e, double confidence) {
      log_.push_back("spec " + key(e.id) + " @" + std::to_string(confidence));
    };
    callbacks.onConfirm = [this](const EventId& id) {
      log_.push_back("confirm " + key(id));
    };
    callbacks.onRevoke = [this](const EventId& id) {
      log_.push_back("revoke " + key(id));
    };
    return SpeculationChannel({threshold, maxWindow, /*self=*/7},
                              std::move(callbacks));
  }

  static std::string key(const EventId& id) {
    return std::to_string(id.source) + ":" + std::to_string(id.sequence);
  }

  std::vector<std::string> log_;
};

TEST_F(ChannelTest, OfferBelowThresholdRefusedWithoutEmission) {
  auto channel = build(0.9);
  EXPECT_FALSE(channel.offer(makeEvent(1, 0, 10), 0.5, 0, 1));
  EXPECT_TRUE(log_.empty());
  EXPECT_EQ(channel.windowSize(), 0u);
  EXPECT_EQ(channel.stats().speculated, 0u);
}

TEST_F(ChannelTest, OfferAboveThresholdEmitsWithConfidence) {
  auto channel = build(0.5);
  EXPECT_TRUE(channel.offer(makeEvent(1, 0, 10), 0.75, 2, 1));
  ASSERT_EQ(log_.size(), 1u);
  EXPECT_EQ(log_[0], "spec 1:0 @" + std::to_string(0.75));
  EXPECT_EQ(channel.windowSize(), 1u);
  EXPECT_EQ(channel.stats().speculated, 1u);
}

TEST_F(ChannelTest, CommitOfHeadConfirmsExactlyOnce) {
  auto channel = build();
  const Event e = makeEvent(1, 0, 10);
  ASSERT_TRUE(channel.offer(e, 0.9, 0, 1));
  channel.onCommit(e.orderKey(), 2);
  channel.onCommit(e.orderKey(), 3);  // repeat commit of the same key
  ASSERT_EQ(log_.size(), 2u);
  EXPECT_EQ(log_[1], "confirm 1:0");
  EXPECT_EQ(channel.stats().confirmed, 1u);
  EXPECT_EQ(channel.windowSize(), 0u);
  EXPECT_FALSE(channel.frontier().has_value());
}

TEST_F(ChannelTest, CommitOfUnspeculatedKeyLeavesWindowUntouched) {
  auto channel = build();
  ASSERT_TRUE(channel.offer(makeEvent(5, 0, 50), 0.9, 0, 1));
  // A smaller-keyed event the channel never speculated commits first.
  channel.onCommit(makeEvent(1, 0, 10).orderKey(), 2);
  EXPECT_EQ(channel.windowSize(), 1u);
  EXPECT_EQ(channel.stats().confirmed, 0u);
  EXPECT_EQ(channel.stats().revoked, 0u);
}

TEST_F(ChannelTest, FreshSmallerKeyRevokesDisplacedSuffixDeepestFirst) {
  auto channel = build();
  ASSERT_TRUE(channel.offer(makeEvent(1, 0, 10), 0.9, 0, 1));
  ASSERT_TRUE(channel.offer(makeEvent(2, 0, 20), 0.9, 0, 1));
  ASSERT_TRUE(channel.offer(makeEvent(3, 0, 30), 0.9, 0, 1));
  // A straggler with ts 15 lands between the first and second slots:
  // the suffix {2:0, 3:0} was emitted too early, deepest revoked first.
  channel.onFreshEvent(makeEvent(9, 0, 15).orderKey(), 2);
  ASSERT_EQ(log_.size(), 5u);
  EXPECT_EQ(log_[3], "revoke 3:0");
  EXPECT_EQ(log_[4], "revoke 2:0");
  EXPECT_EQ(channel.stats().revoked, 2u);
  EXPECT_EQ(channel.windowSize(), 1u);  // 1:0 survives
  ASSERT_TRUE(channel.frontier().has_value());
  EXPECT_EQ(channel.frontier()->ts, 10u);
}

TEST_F(ChannelTest, FreshLargerKeyRevokesNothing) {
  auto channel = build();
  ASSERT_TRUE(channel.offer(makeEvent(1, 0, 10), 0.9, 0, 1));
  channel.onFreshEvent(makeEvent(9, 0, 99).orderKey(), 2);
  EXPECT_EQ(channel.stats().revoked, 0u);
  EXPECT_EQ(channel.windowSize(), 1u);
}

TEST_F(ChannelTest, WindowCapacityEndsTheScan) {
  auto channel = build(0.5, /*maxWindow=*/2);
  EXPECT_TRUE(channel.offer(makeEvent(1, 0, 10), 0.9, 0, 1));
  EXPECT_TRUE(channel.offer(makeEvent(2, 0, 20), 0.9, 0, 1));
  EXPECT_FALSE(channel.hasCapacity());
  EXPECT_FALSE(channel.offer(makeEvent(3, 0, 30), 0.9, 0, 1));
  EXPECT_EQ(channel.stats().speculated, 2u);
  // Resolving the head frees a slot.
  channel.onCommit(makeEvent(1, 0, 10).orderKey(), 2);
  EXPECT_TRUE(channel.hasCapacity());
  EXPECT_TRUE(channel.offer(makeEvent(3, 0, 30), 0.9, 0, 1));
}

TEST_F(ChannelTest, FrontierTracksTheDeepestUnresolvedKey) {
  auto channel = build();
  EXPECT_FALSE(channel.frontier().has_value());
  ASSERT_TRUE(channel.offer(makeEvent(1, 0, 10), 0.9, 0, 1));
  ASSERT_TRUE(channel.offer(makeEvent(2, 0, 20), 0.9, 0, 1));
  ASSERT_TRUE(channel.frontier().has_value());
  EXPECT_EQ(channel.frontier()->ts, 20u);
}

TEST_F(ChannelTest, EverySpeculationResolvesExactlyOnce) {
  // Drive a mixed confirm/revoke sequence and check the books balance:
  // confirmed + revoked + still-windowed == speculated, and no id is
  // resolved twice.
  auto channel = build();
  for (std::uint32_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(channel.offer(makeEvent(1, i, 100 + 10 * i), 0.9, 0, i));
  }
  channel.onCommit(makeEvent(1, 0, 100).orderKey(), 11);   // confirm 1:0
  channel.onFreshEvent(makeEvent(9, 0, 145).orderKey(), 12);  // revoke 1:5..1:9
  channel.onCommit(makeEvent(1, 1, 110).orderKey(), 13);   // confirm 1:1
  const auto& stats = channel.stats();
  EXPECT_EQ(stats.speculated, 10u);
  EXPECT_EQ(stats.confirmed, 2u);
  EXPECT_EQ(stats.revoked, 5u);
  EXPECT_EQ(channel.windowSize(), 3u);
  EXPECT_EQ(stats.confirmed + stats.revoked + channel.windowSize(),
            stats.speculated);
}

}  // namespace
}  // namespace epto

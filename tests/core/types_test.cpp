#include <gtest/gtest.h>

#include <unordered_set>

#include "core/types.h"

namespace epto {
namespace {

TEST(EventId, OrderingAndEquality) {
  constexpr EventId a{1, 0};
  constexpr EventId b{1, 1};
  constexpr EventId c{2, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, (EventId{1, 0}));
  EXPECT_NE(a, b);
}

TEST(EventId, PackedIsInjective) {
  EXPECT_NE((EventId{1, 0}).packed(), (EventId{0, 1}).packed());
  EXPECT_EQ((EventId{3, 7}).packed(), (3ULL << 32) | 7ULL);
}

TEST(EventId, HashSpreads) {
  std::unordered_set<std::size_t> hashes;
  EventIdHash hash;
  for (ProcessId s = 0; s < 30; ++s) {
    for (std::uint32_t q = 0; q < 30; ++q) hashes.insert(hash(EventId{s, q}));
  }
  EXPECT_EQ(hashes.size(), 900u);  // no collision in a tiny dense grid
}

TEST(OrderKey, LexicographicTotalOrder) {
  // Timestamp dominates, then source, then sequence (paper §2 plus the
  // sequence strengthening of DESIGN.md §3.1).
  EXPECT_LT((OrderKey{1, 9, 9}), (OrderKey{2, 0, 0}));
  EXPECT_LT((OrderKey{5, 1, 9}), (OrderKey{5, 2, 0}));
  EXPECT_LT((OrderKey{5, 1, 1}), (OrderKey{5, 1, 2}));
  EXPECT_EQ((OrderKey{5, 1, 1}), (OrderKey{5, 1, 1}));
}

TEST(Event, OrderKeyDerivedFromFields) {
  Event e;
  e.id = EventId{4, 2};
  e.ts = 77;
  EXPECT_EQ(e.orderKey(), (OrderKey{77, 4, 2}));
}

TEST(Event, PayloadSharingDoesNotCopyBytes) {
  Event e;
  e.payload = std::make_shared<PayloadBytes>(PayloadBytes{std::byte{1}, std::byte{2}});
  const Event copy = e;
  EXPECT_EQ(copy.payload.get(), e.payload.get());
  EXPECT_EQ(e.payload.use_count(), 2);
}

}  // namespace
}  // namespace epto

// Differential test: the optimized OrderingComponent (epoch-based aging,
// order-statistics index, duplicate hash index — DESIGN.md §11) against
// a straight transliteration of paper Algorithm 2 (reference_ordering.h).
// On identical randomized input streams both must produce identical
// delivery sequences, identical counters and identical buffer sizes,
// round by round — any divergence is an optimization bug.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/ordering.h"
#include "core/stability_oracle.h"
#include "reference_ordering.h"
#include "util/rng.h"

namespace epto {
namespace {

struct Delivery {
  EventId id;
  Timestamp ts = 0;
  std::uint32_t ttl = 0;
  DeliveryTag tag = DeliveryTag::Ordered;

  bool operator==(const Delivery&) const = default;
};

struct TraceParams {
  std::uint64_t seed = 0;
  bool tagOutOfOrder = false;
  std::uint32_t retention = 0;  // only meaningful when tagging
};

std::string paramName(const ::testing::TestParamInfo<TraceParams>& info) {
  std::string name = "seed" + std::to_string(info.param.seed);
  if (info.param.tagOutOfOrder) {
    name += "_tagged";
    name += info.param.retention == 0 ? "_keepAll"
                                      : "_retain" + std::to_string(info.param.retention);
  }
  return name;
}

class OrderingDifferential : public ::testing::TestWithParam<TraceParams> {};

TEST_P(OrderingDifferential, MatchesAlgorithmTwoTransliteration) {
  const TraceParams params = GetParam();
  util::Rng rng(params.seed);
  const std::uint32_t ttl = 2 + static_cast<std::uint32_t>(rng.below(10));
  const OrderingComponent::Options options{.ttl = ttl,
                                           .tagOutOfOrder = params.tagOutOfOrder,
                                           .deliveredRetentionRounds = params.retention};

  // Both sides age on the same horizon but own their oracle (the logical
  // clock advances on updateClock; neither side calls it here, so a
  // shared one would also work — separate ones keep the test honest).
  LogicalClockOracle optimizedOracle(ttl);
  LogicalClockOracle referenceOracle(ttl);

  std::vector<Delivery> optimizedLog;
  std::vector<Delivery> referenceLog;
  OrderingComponent optimized(options, optimizedOracle,
                              [&](const Event& e, DeliveryTag tag) {
                                optimizedLog.push_back({e.id, e.ts, e.ttl, tag});
                              });
  epto::testing::ReferenceOrdering reference(options, referenceOracle,
                                             [&](const Event& e, DeliveryTag tag) {
                                               referenceLog.push_back(
                                                   {e.id, e.ts, e.ttl, tag});
                                             });

  for (int round = 0; round < 600; ++round) {
    Ball ball;
    const std::size_t events = rng.below(8);
    for (std::size_t i = 0; i < events; ++i) {
      Event e;
      // Small id domains force heavy duplication: the same event shows
      // up in many balls, with varying ttls, long after delivery. The
      // timestamp is a pure function of the id — the §2 non-Byzantine
      // fault model guarantees an event's content never varies between
      // copies, and both implementations index on that.
      e.id = EventId{static_cast<ProcessId>(rng.below(6)),
                     static_cast<std::uint32_t>(rng.below(50))};
      e.ts = 1 + util::mix64(e.id.packed()) % 80;
      e.ttl = static_cast<std::uint32_t>(rng.below(ttl + 3));
      ball.push_back(e);
      if (rng.below(4) == 0) {
        // An immediate extra copy with a different age exercises the
        // ttl max-merge on both sides.
        e.ttl = static_cast<std::uint32_t>(rng.below(ttl + 3));
        ball.push_back(e);
      }
    }
    optimized.orderEvents(ball);
    reference.orderEvents(ball);

    ASSERT_TRUE(optimized.checkInvariants()) << "round " << round;
    ASSERT_EQ(optimized.receivedSize(), reference.receivedSize()) << "round " << round;
    ASSERT_EQ(optimizedLog.size(), referenceLog.size()) << "round " << round;
    ASSERT_EQ(optimized.lastDelivered().has_value(),
              reference.lastDelivered().has_value())
        << "round " << round;
    if (optimized.lastDelivered().has_value()) {
      ASSERT_EQ(*optimized.lastDelivered(), *reference.lastDelivered())
          << "round " << round;
    }
  }

  ASSERT_EQ(optimizedLog, referenceLog);

  const OrderingStats& a = optimized.stats();
  const OrderingStats& b = reference.stats();
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.deliveredOrdered, b.deliveredOrdered);
  EXPECT_EQ(a.deliveredOutOfOrder, b.deliveredOutOfOrder);
  EXPECT_EQ(a.droppedOutOfOrder, b.droppedOutOfOrder);
  EXPECT_EQ(a.droppedDuplicates, b.droppedDuplicates);
  EXPECT_EQ(a.ttlMerges, b.ttlMerges);
  EXPECT_EQ(a.maxReceivedSize, b.maxReceivedSize);

  // Sanity: the stream actually exercised deliveries and late copies.
  EXPECT_GT(a.deliveredOrdered, 0u);
  EXPECT_GT(a.ttlMerges, 0u);
  EXPECT_GT(a.droppedOutOfOrder + a.droppedDuplicates + a.deliveredOutOfOrder, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Traces, OrderingDifferential,
    ::testing::Values(TraceParams{.seed = 1}, TraceParams{.seed = 7},
                      TraceParams{.seed = 42}, TraceParams{.seed = 99},
                      TraceParams{.seed = 1234}, TraceParams{.seed = 31337},
                      TraceParams{.seed = 11, .tagOutOfOrder = true},
                      TraceParams{.seed = 77, .tagOutOfOrder = true},
                      TraceParams{.seed = 5, .tagOutOfOrder = true, .retention = 8},
                      TraceParams{.seed = 55, .tagOutOfOrder = true, .retention = 20}),
    paramName);

}  // namespace
}  // namespace epto

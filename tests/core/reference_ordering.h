// Straight transliteration of paper Algorithm 2 — the O(n)-per-round
// formulation with explicit aging loops, a full deliverability scan and
// a sort of the deliverable set. It exists only as a differential-test
// oracle for the optimized OrderingComponent (epoch-based aging +
// order-statistics index + duplicate hash index): both must produce the
// same delivery sequence and the same counters on any input stream.
//
// Kept deliberately naive — clarity over speed; do not optimize.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/ordering.h"
#include "core/stability_oracle.h"
#include "core/types.h"

namespace epto::testing {

class ReferenceOrdering {
 public:
  ReferenceOrdering(OrderingComponent::Options options, const StabilityOracle& oracle,
                    DeliverFn deliver)
      : options_(options), oracle_(oracle), deliver_(std::move(deliver)) {}

  void orderEvents(const Ball& ball) {
    // Alg. 2 lines 6-7: age every received event by one round.
    ++stats_.rounds;
    for (auto& [id, event] : received_) ++event.ttl;

    // Alg. 2 lines 8-14: absorb the ball.
    for (const Event& incoming : ball) {
      const OrderKey key = incoming.orderKey();
      if (lastDelivered_.has_value() && key <= *lastDelivered_) {
        if (options_.tagOutOfOrder && deliveredMemory_.contains(incoming.id)) {
          ++stats_.droppedDuplicates;
        } else if (options_.tagOutOfOrder) {
          deliveredMemory_.emplace(incoming.id, stats_.rounds);
          ++stats_.deliveredOutOfOrder;
          deliver_(incoming, DeliveryTag::OutOfOrder);
        } else {
          ++stats_.droppedOutOfOrder;
        }
        continue;
      }
      if (const auto it = received_.find(incoming.id); it != received_.end()) {
        if (incoming.ttl > it->second.ttl) {
          it->second.ttl = incoming.ttl;
          ++stats_.ttlMerges;
        }
      } else {
        received_.emplace(incoming.id, incoming);
      }
    }
    stats_.maxReceivedSize = std::max(stats_.maxReceivedSize, received_.size());

    // Alg. 2 lines 15-21: the deliverable set and the minQueued bound
    // (strengthened from bare timestamps to full order keys, matching
    // the production component).
    std::vector<Event> deliverable;
    std::optional<OrderKey> minQueued;
    for (const auto& [id, event] : received_) {
      if (oracle_.isDeliverable(event)) {
        deliverable.push_back(event);
      } else if (!minQueued.has_value() || event.orderKey() < *minQueued) {
        minQueued = event.orderKey();
      }
    }

    // Alg. 2 lines 22-26: discard deliverable events an unstable event
    // could still precede.
    std::erase_if(deliverable, [&](const Event& event) {
      return minQueued.has_value() && minQueued.value() < event.orderKey();
    });

    // Alg. 2 lines 27-30: deliver in total order.
    std::sort(deliverable.begin(), deliverable.end(),
              [](const Event& a, const Event& b) { return a.orderKey() < b.orderKey(); });
    for (const Event& event : deliverable) {
      received_.erase(event.id);
      lastDelivered_ = event.orderKey();
      if (options_.tagOutOfOrder) deliveredMemory_.emplace(event.id, stats_.rounds);
      ++stats_.deliveredOrdered;
      deliver_(event, DeliveryTag::Ordered);
    }

    if (options_.tagOutOfOrder && options_.deliveredRetentionRounds != 0 &&
        stats_.rounds >= options_.deliveredRetentionRounds) {
      const std::uint64_t horizon = stats_.rounds - options_.deliveredRetentionRounds;
      std::erase_if(deliveredMemory_,
                    [&](const auto& entry) { return entry.second < horizon; });
    }
  }

  [[nodiscard]] const OrderingStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t receivedSize() const noexcept { return received_.size(); }
  [[nodiscard]] std::optional<OrderKey> lastDelivered() const noexcept {
    return lastDelivered_;
  }

 private:
  OrderingComponent::Options options_;
  const StabilityOracle& oracle_;
  DeliverFn deliver_;

  std::unordered_map<EventId, Event, EventIdHash> received_;
  std::optional<OrderKey> lastDelivered_;
  std::unordered_map<EventId, std::uint64_t, EventIdHash> deliveredMemory_;

  OrderingStats stats_;
};

}  // namespace epto::testing

// Reconstructions of the paper's illustrative scenarios:
//   * Figure 4 — the concurrency hole with logical time that motivates
//     Lemma 4's TTL doubling: with the undoubled TTL the hole happens
//     exactly as the paper describes; with the doubled TTL it does not.
//   * The §5.1 claim that network activity keeps logical clocks tight.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/process.h"

namespace epto {
namespace {

/// Sampler always pointing at the single peer.
class PeerSamplerTo final : public PeerSampler {
 public:
  explicit PeerSamplerTo(ProcessId target) : target_(target) {}
  std::vector<ProcessId> samplePeers(std::size_t) override { return {target_}; }

 private:
  ProcessId target_;
};

struct Delivered {
  std::vector<Event> ordered;
  std::vector<Event> tagged;
};

std::unique_ptr<Process> makeProcess(ProcessId id, ProcessId peer, std::uint32_t ttl,
                                     Delivered& log, bool tag = false) {
  Config config;
  config.fanout = 1;
  config.ttl = ttl;
  config.clockMode = ClockMode::Logical;
  config.tagOutOfOrder = tag;
  return std::make_unique<Process>(
      id, config, std::make_shared<PeerSamplerTo>(peer),
      [&log](const Event& e, DeliveryTag t) {
        (t == DeliveryTag::Ordered ? log.ordered : log.tagged).push_back(e);
      });
}

/// Drive the Figure 4 schedule: q broadcasts e at round 0; the ball takes
/// until round 2 to reach p; p broadcasts e' just before receiving it.
/// p.id (0) precedes q.id (1), so e' (ts 1, src 0) precedes e (ts 1,
/// src 1) in the total order. Returns what q delivered.
Delivered runFigure4(std::uint32_t ttl, bool tag = false) {
  Delivered atP;
  Delivered atQ;
  auto p = makeProcess(0, 1, ttl, atP, tag);
  auto q = makeProcess(1, 0, ttl, atQ, tag);

  // Round 0: q broadcasts e (logical ts 1).
  const Event e = q->broadcast();
  EXPECT_EQ(e.ts, 1u);
  auto qOut = q->onRound();  // ball carrying e, in flight for two rounds
  p->onRound();

  // Round 1: the ball is still in flight (large latency).
  q->onRound();
  p->onRound();

  // Round 2: p broadcasts e' *just before* receiving e, so e' also has
  // logical ts 1 (p's clock never saw e).
  const Event ePrime = p->broadcast();
  EXPECT_EQ(ePrime.ts, 1u);
  EXPECT_NE(qOut.ball, nullptr);
  if (qOut.ball == nullptr) return atQ;
  p->onBall(*qOut.ball);

  // Let both processes run long enough for every TTL to expire, shipping
  // every ball with one-round latency from here on.
  for (int round = 0; round < 2 * static_cast<int>(ttl) + 6; ++round) {
    auto fromP = p->onRound();
    auto fromQ = q->onRound();
    if (fromP.ball != nullptr) q->onBall(*fromP.ball);
    if (fromQ.ball != nullptr) p->onBall(*fromQ.ball);
  }
  return atQ;
}

TEST(PaperFigure4, UndoubledTtlCreatesTheConcurrencyHole) {
  // With TTL = 2 (the figure's value), e stabilizes at q before e'
  // arrives; delivering e makes e' undeliverable — the hole.
  const Delivered atQ = runFigure4(/*ttl=*/2);
  ASSERT_EQ(atQ.ordered.size(), 1u);
  EXPECT_EQ(atQ.ordered[0].id, (EventId{1, 0}));  // e only; e' is the hole
}

TEST(PaperFigure4, DoubledTtlDeliversBothInOrder) {
  // Lemma 4: doubling TTL gives e' time to reach q before e is delivered.
  const Delivered atQ = runFigure4(/*ttl=*/4);
  ASSERT_EQ(atQ.ordered.size(), 2u);
  EXPECT_EQ(atQ.ordered[0].id, (EventId{0, 0}));  // e' first (smaller source id)
  EXPECT_EQ(atQ.ordered[1].id, (EventId{1, 0}));
}

TEST(PaperFigure4, TaggedDeliveryConvertsTheHoleIntoAnOutOfOrderEvent) {
  // §8.2: with tagged delivery the dropped e' is surfaced to the
  // application instead of silently disappearing.
  const Delivered atQ = runFigure4(/*ttl=*/2, /*tag=*/true);
  ASSERT_EQ(atQ.ordered.size(), 1u);
  ASSERT_EQ(atQ.tagged.size(), 1u);
  EXPECT_EQ(atQ.tagged[0].id, (EventId{0, 0}));
}

TEST(PaperSection51, NetworkActivityKeepsLogicalClocksTight) {
  // "processes update their logical clocks every time they receive a
  // ball" — with traffic flowing, two logical clocks stay within one
  // ball-exchange of each other.
  Delivered atP;
  Delivered atQ;
  auto p = makeProcess(0, 1, /*ttl=*/4, atP);
  auto q = makeProcess(1, 0, /*ttl=*/4, atQ);
  for (int round = 0; round < 30; ++round) {
    if (round % 3 == 0) p->broadcast();
    if (round % 5 == 0) q->broadcast();
    auto fromP = p->onRound();
    auto fromQ = q->onRound();
    if (fromP.ball != nullptr) q->onBall(*fromP.ball);
    if (fromQ.ball != nullptr) p->onBall(*fromQ.ball);
  }
  const auto& clockP = dynamic_cast<const LogicalClockOracle&>(p->oracle());
  const auto& clockQ = dynamic_cast<const LogicalClockOracle&>(q->oracle());
  EXPECT_LE(clockP.current() > clockQ.current() ? clockP.current() - clockQ.current()
                                                : clockQ.current() - clockP.current(),
            2u);
}

}  // namespace
}  // namespace epto

// Unit tests of the dissemination component (paper Algorithm 1).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/dissemination.h"
#include "core/ordering.h"
#include "core/stability_oracle.h"

namespace epto {
namespace {

/// Sampler returning a scripted peer set.
class ScriptedSampler final : public PeerSampler {
 public:
  explicit ScriptedSampler(std::vector<ProcessId> peers) : peers_(std::move(peers)) {}
  std::vector<ProcessId> samplePeers(std::size_t k) override {
    ++calls_;
    lastK_ = k;
    std::vector<ProcessId> out = peers_;
    if (out.size() > k) out.resize(k);
    return out;
  }
  std::size_t calls_ = 0;
  std::size_t lastK_ = 0;

 private:
  std::vector<ProcessId> peers_;
};

class DisseminationTest : public ::testing::Test {
 protected:
  void build(std::size_t fanout, std::uint32_t ttl,
             std::vector<ProcessId> peers = {10, 11, 12}) {
    oracle_ = std::make_unique<LogicalClockOracle>(ttl);
    ordering_ = std::make_unique<OrderingComponent>(
        OrderingComponent::Options{.ttl = ttl}, *oracle_,
        [this](const Event& e, DeliveryTag) { delivered_.push_back(e); });
    sampler_ = std::make_unique<ScriptedSampler>(std::move(peers));
    dissemination_ = std::make_unique<DisseminationComponent>(
        ProcessId{7}, DisseminationComponent::Options{fanout, ttl}, *oracle_, *sampler_,
        *ordering_);
  }

  std::unique_ptr<LogicalClockOracle> oracle_;
  std::unique_ptr<OrderingComponent> ordering_;
  std::unique_ptr<ScriptedSampler> sampler_;
  std::unique_ptr<DisseminationComponent> dissemination_;
  std::vector<Event> delivered_;
};

Event remoteEvent(ProcessId source, std::uint32_t seq, Timestamp ts, std::uint32_t ttl) {
  Event e;
  e.id = EventId{source, seq};
  e.ts = ts;
  e.ttl = ttl;
  return e;
}

TEST_F(DisseminationTest, BroadcastStampsAndQueues) {
  build(3, 5);
  const Event event = dissemination_->broadcast(nullptr);
  EXPECT_EQ(event.id.source, 7u);
  EXPECT_EQ(event.id.sequence, 0u);
  EXPECT_EQ(event.ts, 1u);  // logical clock first tick
  EXPECT_EQ(event.ttl, 0u);
  EXPECT_EQ(dissemination_->pendingRelayCount(), 1u);
}

TEST_F(DisseminationTest, SequenceNumbersIncrease) {
  build(3, 5);
  EXPECT_EQ(dissemination_->broadcast(nullptr).id.sequence, 0u);
  EXPECT_EQ(dissemination_->broadcast(nullptr).id.sequence, 1u);
  EXPECT_EQ(dissemination_->broadcast(nullptr).id.sequence, 2u);
}

TEST_F(DisseminationTest, RoundIncrementsTtlBeforeSending) {
  build(3, 5);
  dissemination_->broadcast(nullptr);
  const auto out = dissemination_->onRound();
  ASSERT_NE(out.ball, nullptr);
  ASSERT_EQ(out.ball->size(), 1u);
  EXPECT_EQ((*out.ball)[0].ttl, 1u);  // Alg. 1 line 22
  EXPECT_EQ(out.targets, (std::vector<ProcessId>{10, 11, 12}));
}

TEST_F(DisseminationTest, EmptyRoundSendsNothingButAgesOrdering) {
  build(3, 2);
  // Seed the ordering component directly, then verify an empty
  // dissemination round still ages it (the liveness fix — see DESIGN.md).
  ordering_->orderEvents({remoteEvent(1, 0, 5, 0)});
  for (int i = 0; i < 3; ++i) {
    const auto out = dissemination_->onRound();
    EXPECT_EQ(out.ball, nullptr);
    EXPECT_TRUE(out.targets.empty());
  }
  EXPECT_EQ(delivered_.size(), 1u);
}

TEST_F(DisseminationTest, ReceivedEventsAreRelayedOnce) {
  build(2, 5);
  dissemination_->onBall({remoteEvent(1, 0, 5, 2)});
  EXPECT_EQ(dissemination_->pendingRelayCount(), 1u);
  const auto out = dissemination_->onRound();
  ASSERT_NE(out.ball, nullptr);
  EXPECT_EQ((*out.ball)[0].ttl, 3u);  // received at 2, incremented
  // nextBall cleared: a second round is idle.
  EXPECT_EQ(dissemination_->onRound().ball, nullptr);
}

TEST_F(DisseminationTest, ExpiredEventsAreNotRelayedNorOrdered) {
  build(2, 5);
  dissemination_->onBall({remoteEvent(1, 0, 5, 5)});  // ttl == TTL: dead on arrival
  EXPECT_EQ(dissemination_->pendingRelayCount(), 0u);
  EXPECT_EQ(dissemination_->stats().eventsExpired, 1u);
  for (int i = 0; i < 10; ++i) dissemination_->onRound();
  EXPECT_TRUE(delivered_.empty());
}

TEST_F(DisseminationTest, TtlMaxMergeKeepsOldestCopy) {
  build(2, 9);
  dissemination_->onBall({remoteEvent(1, 0, 5, 2)});
  dissemination_->onBall({remoteEvent(1, 0, 5, 7)});
  dissemination_->onBall({remoteEvent(1, 0, 5, 4)});
  const auto out = dissemination_->onRound();
  ASSERT_NE(out.ball, nullptr);
  ASSERT_EQ(out.ball->size(), 1u);
  EXPECT_EQ((*out.ball)[0].ttl, 8u);  // max(2,7,4) + 1
}

TEST_F(DisseminationTest, BallGroupsAllPendingEvents) {
  // "each process groups all the received events per round in the same
  // ball" (§4.2) — the traffic saver.
  build(2, 9);
  dissemination_->broadcast(nullptr);
  dissemination_->onBall({remoteEvent(1, 0, 5, 2), remoteEvent(2, 0, 6, 1)});
  const auto out = dissemination_->onRound();
  ASSERT_NE(out.ball, nullptr);
  EXPECT_EQ(out.ball->size(), 3u);
  EXPECT_EQ(dissemination_->stats().maxBallSize, 3u);
}

TEST_F(DisseminationTest, BallContentsAreSortedById) {
  build(2, 9);
  dissemination_->onBall({remoteEvent(5, 0, 5, 2), remoteEvent(1, 0, 6, 1),
                          remoteEvent(3, 0, 7, 1)});
  const auto out = dissemination_->onRound();
  ASSERT_NE(out.ball, nullptr);
  EXPECT_TRUE(std::is_sorted(out.ball->begin(), out.ball->end(),
                             [](const Event& a, const Event& b) { return a.id < b.id; }));
}

TEST_F(DisseminationTest, ReceptionUpdatesLogicalClock) {
  build(2, 5);
  dissemination_->onBall({remoteEvent(1, 0, 100, 1)});
  EXPECT_EQ(oracle_->current(), 100u);
  // Next broadcast is ordered after everything seen.
  EXPECT_EQ(dissemination_->broadcast(nullptr).ts, 101u);
}

TEST_F(DisseminationTest, RoundHandsBallToOrdering) {
  build(2, 1);
  dissemination_->onBall({remoteEvent(1, 0, 5, 0)});
  dissemination_->onRound();  // relays and orders (ttl 1)
  dissemination_->onRound();  // ages to 2 > 1: delivered
  ASSERT_EQ(delivered_.size(), 1u);
  EXPECT_EQ(delivered_[0].id, (EventId{1, 0}));
}

TEST_F(DisseminationTest, FanoutPassedToSampler) {
  build(2, 5, {10, 11, 12, 13});
  dissemination_->broadcast(nullptr);
  const auto out = dissemination_->onRound();
  EXPECT_EQ(sampler_->lastK_, 2u);
  EXPECT_EQ(out.targets.size(), 2u);
  EXPECT_EQ(dissemination_->stats().ballsSent, 2u);
}

TEST_F(DisseminationTest, StatsCountRelayedCopies) {
  build(3, 5);
  dissemination_->broadcast(nullptr);
  dissemination_->broadcast(nullptr);
  dissemination_->onRound();
  EXPECT_EQ(dissemination_->stats().eventsRelayed, 6u);  // 2 events x 3 targets
  EXPECT_EQ(dissemination_->stats().broadcasts, 2u);
  EXPECT_EQ(dissemination_->stats().rounds, 1u);
}

TEST_F(DisseminationTest, BroadcastStampsLineage) {
  build(3, 5);
  dissemination_->setIncarnation(4);
  dissemination_->onRound();  // advance to round 1 before broadcasting
  const Event event = dissemination_->broadcast(nullptr);
  EXPECT_EQ(event.originRound, 1u);
  EXPECT_EQ(event.hop, 0u);
  EXPECT_EQ(event.incarnation, 4u);
}

TEST_F(DisseminationTest, IncarnationOnlySettableBeforeFirstBroadcast) {
  build(3, 5);
  dissemination_->broadcast(nullptr);
  EXPECT_THROW(dissemination_->setIncarnation(1), util::ContractViolation);
}

TEST_F(DisseminationTest, HopCountsRelayEmissions) {
  build(2, 9);
  Event remote = remoteEvent(1, 0, 5, 2);
  remote.hop = 3;
  dissemination_->onBall({remote});
  const auto out = dissemination_->onRound();
  ASSERT_NE(out.ball, nullptr);
  EXPECT_EQ((*out.ball)[0].hop, 4u);  // incremented beside ttl
  EXPECT_EQ((*out.ball)[0].ttl, 3u);
}

TEST_F(DisseminationTest, HopIsNeverMaxMergedAcrossCopies) {
  // ttl max-merges (oldest copy wins) but hop keeps the first-arrival
  // path length — merging hops would inflate it past the true relay
  // distance and break the hop <= ttl invariant the analyzer checks.
  build(2, 9);
  Event first = remoteEvent(1, 0, 5, 2);
  first.hop = 1;
  Event later = remoteEvent(1, 0, 5, 7);
  later.hop = 7;
  dissemination_->onBall({first});
  dissemination_->onBall({later});
  const auto out = dissemination_->onRound();
  ASSERT_NE(out.ball, nullptr);
  EXPECT_EQ((*out.ball)[0].ttl, 8u);  // max(2,7) + 1
  EXPECT_EQ((*out.ball)[0].hop, 2u);  // first arrival's hop + 1
}

TEST_F(DisseminationTest, LineageSurvivesRelayUnchangedOtherwise) {
  build(2, 9);
  Event remote = remoteEvent(1, 0, 5, 2);
  remote.originRound = 17;
  remote.incarnation = 3;
  dissemination_->onBall({remote});
  const auto out = dissemination_->onRound();
  ASSERT_NE(out.ball, nullptr);
  EXPECT_EQ((*out.ball)[0].originRound, 17u);
  EXPECT_EQ((*out.ball)[0].incarnation, 3u);
}

TEST_F(DisseminationTest, RejectsDegenerateOptions) {
  LogicalClockOracle oracle(5);
  OrderingComponent ordering({.ttl = 5}, oracle, [](const Event&, DeliveryTag) {});
  ScriptedSampler sampler({1});
  EXPECT_THROW(DisseminationComponent(0, {.fanout = 0, .ttl = 5}, oracle, sampler, ordering),
               util::ContractViolation);
  EXPECT_THROW(DisseminationComponent(0, {.fanout = 1, .ttl = 0}, oracle, sampler, ordering),
               util::ContractViolation);
}

}  // namespace
}  // namespace epto

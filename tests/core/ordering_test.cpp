// Unit tests of the ordering component (paper Algorithm 2), including the
// paper's own illustrative scenarios (Figure 1) and the §8.2 tagged
// delivery extension.
#include <gtest/gtest.h>

#include <vector>

#include "core/ordering.h"
#include "core/stability_oracle.h"

namespace epto {
namespace {

Event makeEvent(ProcessId source, std::uint32_t seq, Timestamp ts, std::uint32_t ttl = 0) {
  Event e;
  e.id = EventId{source, seq};
  e.ts = ts;
  e.ttl = ttl;
  return e;
}

/// Test fixture owning an oracle, a component and the delivery log.
class OrderingTest : public ::testing::Test {
 protected:
  void build(std::uint32_t ttl, bool tag = false, std::uint32_t retention = 0) {
    oracle_ = std::make_unique<LogicalClockOracle>(ttl);
    ordering_ = std::make_unique<OrderingComponent>(
        OrderingComponent::Options{ttl, tag, retention}, *oracle_,
        [this](const Event& e, DeliveryTag t) { log_.emplace_back(e, t); });
  }

  /// Run `rounds` empty rounds (pure aging).
  void age(int rounds) {
    for (int i = 0; i < rounds; ++i) ordering_->orderEvents({});
  }

  [[nodiscard]] std::vector<EventId> orderedIds() const {
    std::vector<EventId> ids;
    for (const auto& [e, t] : log_) {
      if (t == DeliveryTag::Ordered) ids.push_back(e.id);
    }
    return ids;
  }

  std::unique_ptr<LogicalClockOracle> oracle_;
  std::unique_ptr<OrderingComponent> ordering_;
  std::vector<std::pair<Event, DeliveryTag>> log_;
};

TEST_F(OrderingTest, DeliversAfterTtlRounds) {
  build(3);
  ordering_->orderEvents({makeEvent(1, 0, 10)});  // absorbed with ttl 0
  EXPECT_TRUE(log_.empty());
  age(3);
  EXPECT_TRUE(log_.empty());  // ttl now 3, needs > 3
  age(1);
  ASSERT_EQ(log_.size(), 1u);
  EXPECT_EQ(log_[0].first.id, (EventId{1, 0}));
  EXPECT_EQ(log_[0].second, DeliveryTag::Ordered);
}

TEST_F(OrderingTest, DeliversInTimestampOrder) {
  build(2);
  // Arrive out of timestamp order within one ball.
  ordering_->orderEvents({makeEvent(2, 0, 30), makeEvent(1, 0, 10), makeEvent(3, 0, 20)});
  age(3);
  const auto ids = orderedIds();
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[0], (EventId{1, 0}));
  EXPECT_EQ(ids[1], (EventId{3, 0}));
  EXPECT_EQ(ids[2], (EventId{2, 0}));
}

TEST_F(OrderingTest, TimestampTiesBrokenBySourceId) {
  build(2);
  ordering_->orderEvents({makeEvent(9, 0, 10), makeEvent(2, 0, 10), makeEvent(5, 0, 10)});
  age(3);
  const auto ids = orderedIds();
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[0].source, 2u);
  EXPECT_EQ(ids[1].source, 5u);
  EXPECT_EQ(ids[2].source, 9u);
}

TEST_F(OrderingTest, FullTieBrokenBySequence) {
  build(2);
  // Same source, same timestamp (possible with a global clock): sequence
  // disambiguates deterministically.
  ordering_->orderEvents({makeEvent(1, 5, 10), makeEvent(1, 2, 10)});
  age(3);
  const auto ids = orderedIds();
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0].sequence, 2u);
  EXPECT_EQ(ids[1].sequence, 5u);
}

TEST_F(OrderingTest, StableEventWaitsForSmallerUnstableEvent) {
  // Alg. 2 lines 22-26: a deliverable event with a timestamp above the
  // minimum queued timestamp must wait.
  build(3);
  ordering_->orderEvents({makeEvent(2, 0, 20)});
  age(2);  // (2,0) aged to ttl 2
  // A younger event with a *smaller* timestamp shows up; this round also
  // ages (2,0) to ttl 3 — one short of deliverable.
  ordering_->orderEvents({makeEvent(1, 0, 10)});
  EXPECT_TRUE(log_.empty());
  // Next round (2,0) is deliverable (ttl 4 > 3) but (1,0) blocks it until
  // it stabilizes too.
  age(1);
  EXPECT_TRUE(log_.empty());
  age(3);  // (1,0) reaches ttl 4: both deliver, in key order
  const auto ids = orderedIds();
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], (EventId{1, 0}));
  EXPECT_EQ(ids[1], (EventId{2, 0}));
}

TEST_F(OrderingTest, LateEventSortingBeforeFrontierIsDropped) {
  build(2);
  ordering_->orderEvents({makeEvent(2, 0, 20)});
  age(3);
  ASSERT_EQ(log_.size(), 1u);
  // A latecomer with a smaller timestamp can no longer be delivered.
  ordering_->orderEvents({makeEvent(1, 0, 10)});
  age(3);
  EXPECT_EQ(log_.size(), 1u);
  EXPECT_EQ(ordering_->stats().droppedOutOfOrder, 1u);
}

TEST_F(OrderingTest, DuplicateOfPendingEventMergesTtl) {
  build(5);
  ordering_->orderEvents({makeEvent(1, 0, 10, 0)});
  // The same event arrives again with a larger ttl (it aged elsewhere).
  ordering_->orderEvents({makeEvent(1, 0, 10, 5)});
  EXPECT_EQ(ordering_->stats().ttlMerges, 1u);
  // ttl is now 5; one more aging round makes it 6 > 5 -> deliverable.
  age(1);
  ASSERT_EQ(log_.size(), 1u);
}

TEST_F(OrderingTest, DuplicateWithSmallerTtlIsIgnored) {
  build(5);
  ordering_->orderEvents({makeEvent(1, 0, 10, 4)});
  ordering_->orderEvents({makeEvent(1, 0, 10, 1)});
  EXPECT_EQ(ordering_->stats().ttlMerges, 0u);
  // Aged to 5 then 6 after two more rounds: exactly one delivery.
  age(2);
  EXPECT_EQ(log_.size(), 1u);
}

TEST_F(OrderingTest, DuplicateOfDeliveredEventNeverRedelivers) {
  build(2);
  ordering_->orderEvents({makeEvent(1, 0, 10)});
  age(3);
  ASSERT_EQ(log_.size(), 1u);
  for (int i = 0; i < 5; ++i) ordering_->orderEvents({makeEvent(1, 0, 10)});
  age(5);
  EXPECT_EQ(log_.size(), 1u);  // integrity
}

TEST_F(OrderingTest, PaperFigure1RunA_HolesAllowedOrderKept) {
  // Run A: r misses e but delivers e' and e'' in order — a valid EpTO run.
  build(2);
  // Process r receives only e' (ts 20) and e'' (ts 30); e (ts 10) is lost.
  ordering_->orderEvents({makeEvent(2, 0, 20), makeEvent(3, 0, 30)});
  age(3);
  const auto ids = orderedIds();
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], (EventId{2, 0}));  // e' before e''
  EXPECT_EQ(ids[1], (EventId{3, 0}));
}

TEST_F(OrderingTest, PaperFigure1RunB_OrderViolationImpossible) {
  // Run B: r would deliver e'' then e, e' — EpTO must never do that.
  // Feed r all three events; regardless of arrival order the delivery
  // order must be (e, e', e'').
  build(2);
  ordering_->orderEvents({makeEvent(3, 0, 30)});  // e'' first
  ordering_->orderEvents({makeEvent(1, 0, 10), makeEvent(2, 0, 20)});
  age(4);
  const auto ids = orderedIds();
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[0], (EventId{1, 0}));
  EXPECT_EQ(ids[1], (EventId{2, 0}));
  EXPECT_EQ(ids[2], (EventId{3, 0}));
}

TEST_F(OrderingTest, TaggedDeliverySurfacesLateEvents) {
  // §8.2: instead of dropping, deliver tagged as out-of-order.
  build(2, /*tag=*/true);
  ordering_->orderEvents({makeEvent(2, 0, 20)});
  age(3);
  ASSERT_EQ(log_.size(), 1u);
  ordering_->orderEvents({makeEvent(1, 0, 10)});  // too late
  ASSERT_EQ(log_.size(), 2u);
  EXPECT_EQ(log_[1].second, DeliveryTag::OutOfOrder);
  EXPECT_EQ(log_[1].first.id, (EventId{1, 0}));
  EXPECT_EQ(ordering_->stats().deliveredOutOfOrder, 1u);
}

TEST_F(OrderingTest, TaggedDeliveryDeduplicates) {
  build(2, /*tag=*/true);
  ordering_->orderEvents({makeEvent(2, 0, 20)});
  age(3);
  for (int i = 0; i < 4; ++i) ordering_->orderEvents({makeEvent(1, 0, 10)});
  EXPECT_EQ(ordering_->stats().deliveredOutOfOrder, 1u);
  EXPECT_EQ(ordering_->stats().droppedDuplicates, 3u);
}

TEST_F(OrderingTest, TaggedDeliveryNeverDuplicatesOrderedDelivery) {
  build(2, /*tag=*/true);
  ordering_->orderEvents({makeEvent(1, 0, 10)});
  age(3);
  ASSERT_EQ(log_.size(), 1u);
  // The same event arrives again after delivery: must be recognized as a
  // duplicate, not tagged.
  ordering_->orderEvents({makeEvent(1, 0, 10)});
  EXPECT_EQ(log_.size(), 1u);
  EXPECT_EQ(ordering_->stats().droppedDuplicates, 1u);
}

TEST_F(OrderingTest, RetentionWindowPrunesDeliveredMemory) {
  build(2, /*tag=*/true, /*retention=*/4);
  ordering_->orderEvents({makeEvent(1, 0, 10)});
  age(3);
  ASSERT_EQ(log_.size(), 1u);
  // Long after the retention window, a replayed copy is no longer
  // recognized — it is tagged once more. This documents the bounded-
  // memory trade-off: replay protection only inside the window (real
  // dissemination stops after ~TTL rounds, so the window suffices).
  age(10);
  ordering_->orderEvents({makeEvent(1, 0, 10)});
  EXPECT_EQ(ordering_->stats().deliveredOutOfOrder, 1u);
}

TEST_F(OrderingTest, PendingEventsSortedAndAging) {
  build(10);
  ordering_->orderEvents({makeEvent(2, 0, 20), makeEvent(1, 0, 10)});
  age(2);
  const auto pending = ordering_->pendingEvents();
  ASSERT_EQ(pending.size(), 2u);
  EXPECT_EQ(pending[0].id, (EventId{1, 0}));
  EXPECT_EQ(pending[1].id, (EventId{2, 0}));
  EXPECT_EQ(pending[0].ttl, 2u);  // absorbed with ttl 0, aged twice
}

TEST_F(OrderingTest, InvariantHoldsThroughRandomishWorkload) {
  build(3);
  Timestamp ts = 1;
  for (std::uint32_t round = 0; round < 50; ++round) {
    Ball ball;
    for (std::uint32_t i = 0; i < 3; ++i) {
      ball.push_back(makeEvent(i + 1, round, ts + (i * 7 + round * 3) % 20));
    }
    ts += 5;
    ordering_->orderEvents(ball);
    ASSERT_TRUE(ordering_->checkInvariants()) << "round " << round;
  }
}

TEST_F(OrderingTest, StatsTrackRoundsAndHighWaterMark) {
  build(5);
  ordering_->orderEvents({makeEvent(1, 0, 10), makeEvent(2, 0, 11)});
  age(2);
  EXPECT_EQ(ordering_->stats().rounds, 3u);
  EXPECT_EQ(ordering_->stats().maxReceivedSize, 2u);
}

TEST(OrderingComponent, RequiresDeliverCallback) {
  LogicalClockOracle oracle(3);
  EXPECT_THROW(OrderingComponent({.ttl = 3}, oracle, nullptr), util::ContractViolation);
}

}  // namespace
}  // namespace epto

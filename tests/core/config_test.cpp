#include <gtest/gtest.h>

#include "analysis/parameters.h"
#include "core/config.h"
#include "util/ensure.h"

namespace epto {
namespace {

TEST(Config, ForSystemSizeGlobalMatchesLemma3) {
  const auto config = Config::forSystemSize(100, ClockMode::Global, Robustness{.c = 2.0});
  EXPECT_EQ(config.fanout, analysis::baseFanout(100));
  EXPECT_EQ(config.ttl, analysis::baseTtl(100, 2.0));
  EXPECT_EQ(config.clockMode, ClockMode::Global);
}

TEST(Config, ForSystemSizeLogicalDoublesTtl) {
  const auto global = Config::forSystemSize(100, ClockMode::Global, Robustness{.c = 2.0});
  const auto logical = Config::forSystemSize(100, ClockMode::Logical, Robustness{.c = 2.0});
  EXPECT_EQ(logical.ttl, 2 * global.ttl);
}

TEST(Config, PaperEvaluationTtl) {
  // The paper's n=100 evaluation uses "the TTL given by the theoretical
  // analysis (TTL=15)".
  const auto config =
      Config::forSystemSize(100, ClockMode::Global, Robustness{.c = 1.25});
  EXPECT_EQ(config.ttl, 15u);
  EXPECT_EQ(config.fanout, 17u);
}

TEST(Config, RobustnessFlowsThrough) {
  const auto base = Config::forSystemSize(1000, ClockMode::Global, Robustness{.c = 2.0});
  const auto hard = Config::forSystemSize(
      1000, ClockMode::Global,
      Robustness{.c = 2.0, .churnPerRound = 100.0, .messageLossRate = 0.1});
  EXPECT_GT(hard.fanout, base.fanout);
  EXPECT_EQ(hard.ttl, base.ttl);
}

TEST(Config, ValidateRejectsZeroParameters) {
  Config config;
  config.fanout = 0;
  config.ttl = 5;
  EXPECT_THROW(config.validate(), util::ContractViolation);
  config.fanout = 3;
  config.ttl = 0;
  EXPECT_THROW(config.validate(), util::ContractViolation);
  config.ttl = 5;
  EXPECT_NO_THROW(config.validate());
}

TEST(Config, DefaultsAreConservative) {
  Config config;
  EXPECT_EQ(config.clockMode, ClockMode::Logical);
  EXPECT_FALSE(config.tagOutOfOrder);
}

}  // namespace
}  // namespace epto

#include <gtest/gtest.h>

#include "core/stability_oracle.h"
#include "util/ensure.h"

namespace epto {
namespace {

Event eventWithTtl(std::uint32_t ttl) {
  Event e;
  e.id = EventId{1, 0};
  e.ts = 5;
  e.ttl = ttl;
  return e;
}

TEST(GlobalClockOracle, DeliverableStrictlyAboveTtl) {
  Timestamp now = 0;
  GlobalClockOracle oracle(10, [&now] { return now; });
  EXPECT_FALSE(oracle.isDeliverable(eventWithTtl(9)));
  EXPECT_FALSE(oracle.isDeliverable(eventWithTtl(10)));  // Alg. 3: strict >
  EXPECT_TRUE(oracle.isDeliverable(eventWithTtl(11)));
}

TEST(GlobalClockOracle, ReadsTheInjectedTimeSource) {
  Timestamp now = 100;
  GlobalClockOracle oracle(10, [&now] { return now; });
  EXPECT_EQ(oracle.getClock(), 100u);
  now = 250;
  EXPECT_EQ(oracle.getClock(), 250u);
}

TEST(GlobalClockOracle, UpdateClockIsANoop) {
  Timestamp now = 100;
  GlobalClockOracle oracle(10, [&now] { return now; });
  oracle.updateClock(9999);
  EXPECT_EQ(oracle.getClock(), 100u);
}

TEST(GlobalClockOracle, RequiresTimeSource) {
  EXPECT_THROW(GlobalClockOracle(10, nullptr), util::ContractViolation);
}

TEST(LogicalClockOracle, GetClockIncrements) {
  // Alg. 4: the clock advances on every broadcast.
  LogicalClockOracle oracle(10);
  EXPECT_EQ(oracle.getClock(), 1u);
  EXPECT_EQ(oracle.getClock(), 2u);
  EXPECT_EQ(oracle.getClock(), 3u);
  EXPECT_EQ(oracle.current(), 3u);
}

TEST(LogicalClockOracle, UpdateClockTakesMaximum) {
  LogicalClockOracle oracle(10);
  oracle.updateClock(7);
  EXPECT_EQ(oracle.current(), 7u);
  oracle.updateClock(3);  // older timestamp must not move the clock back
  EXPECT_EQ(oracle.current(), 7u);
  EXPECT_EQ(oracle.getClock(), 8u);
}

TEST(LogicalClockOracle, InitialClockConfigurable) {
  LogicalClockOracle oracle(10, /*initialClock=*/100);
  EXPECT_EQ(oracle.getClock(), 101u);
}

TEST(LogicalClockOracle, DeliverabilityMatchesGlobal) {
  LogicalClockOracle oracle(4);
  EXPECT_FALSE(oracle.isDeliverable(eventWithTtl(4)));
  EXPECT_TRUE(oracle.isDeliverable(eventWithTtl(5)));
}

TEST(LogicalClockOracle, LamportHappensBeforeAcrossTwoProcesses) {
  // p broadcasts, q receives, q's next broadcast must be timestamped
  // after p's event.
  LogicalClockOracle p(10);
  LogicalClockOracle q(10);
  const Timestamp tsP = p.getClock();
  q.updateClock(tsP);
  const Timestamp tsQ = q.getClock();
  EXPECT_GT(tsQ, tsP);
}

}  // namespace
}  // namespace epto

#include <gtest/gtest.h>

#include <cstring>
#include <string_view>
#include <vector>

#include "codec/checksum.h"

namespace epto::codec {
namespace {

std::vector<std::byte> bytesOf(std::string_view text) {
  std::vector<std::byte> out(text.size());
  std::memcpy(out.data(), text.data(), text.size());
  return out;
}

TEST(Crc32c, KnownVectors) {
  // Published CRC32C test vectors.
  EXPECT_EQ(crc32c({}), 0x00000000u);
  EXPECT_EQ(crc32c(bytesOf("123456789")), 0xE3069283u);
  const std::vector<std::byte> zeros(32, std::byte{0});
  EXPECT_EQ(crc32c(zeros), 0x8A9136AAu);
  const std::vector<std::byte> ones(32, std::byte{0xFF});
  EXPECT_EQ(crc32c(ones), 0x62A8AB43u);
}

TEST(Crc32c, SensitiveToEveryBit) {
  auto data = bytesOf("the quick brown fox jumps over the lazy dog");
  const std::uint32_t reference = crc32c(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      data[i] ^= static_cast<std::byte>(1 << bit);
      EXPECT_NE(crc32c(data), reference) << "byte " << i << " bit " << bit;
      data[i] ^= static_cast<std::byte>(1 << bit);
    }
  }
  EXPECT_EQ(crc32c(data), reference);  // restored
}

TEST(Crc32c, Deterministic) {
  const auto data = bytesOf("epto");
  EXPECT_EQ(crc32c(data), crc32c(data));
}

}  // namespace
}  // namespace epto::codec

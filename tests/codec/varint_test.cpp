#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "codec/varint.h"
#include "util/rng.h"

namespace epto::codec {
namespace {

std::vector<std::byte> encode(std::uint64_t value) {
  std::vector<std::byte> out;
  putVarint(out, value);
  return out;
}

TEST(Varint, KnownEncodings) {
  EXPECT_EQ(encode(0).size(), 1u);
  EXPECT_EQ(encode(0)[0], std::byte{0});
  EXPECT_EQ(encode(127).size(), 1u);
  EXPECT_EQ(encode(128).size(), 2u);
  EXPECT_EQ(encode(128)[0], std::byte{0x80});
  EXPECT_EQ(encode(128)[1], std::byte{0x01});
  EXPECT_EQ(encode(300), (std::vector<std::byte>{std::byte{0xAC}, std::byte{0x02}}));
  EXPECT_EQ(encode(std::numeric_limits<std::uint64_t>::max()).size(), 10u);
}

TEST(Varint, RoundTripBoundaries) {
  const std::vector<std::uint64_t> boundaries{
      0, 1, 127, 128, 16383, 16384, 2097151, 2097152,
      0xFFFFFFFFULL, 0x100000000ULL, std::numeric_limits<std::uint64_t>::max()};
  for (const std::uint64_t value : boundaries) {
    const auto bytes = encode(value);
    ByteReader reader(bytes);
    const auto decoded = reader.readVarint();
    ASSERT_TRUE(decoded.has_value()) << value;
    EXPECT_EQ(*decoded, value);
    EXPECT_TRUE(reader.exhausted());
  }
}

TEST(Varint, RoundTripRandom) {
  util::Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    // Mix of magnitudes: shift a full-width draw by a random amount.
    const std::uint64_t value = rng() >> (rng.below(64));
    const auto bytes = encode(value);
    ByteReader reader(bytes);
    const auto decoded = reader.readVarint();
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, value);
  }
}

TEST(Varint, TruncatedRejected) {
  auto bytes = encode(std::numeric_limits<std::uint64_t>::max());
  for (std::size_t keep = 0; keep < bytes.size(); ++keep) {
    ByteReader reader(std::span(bytes.data(), keep));
    EXPECT_FALSE(reader.readVarint().has_value()) << "kept " << keep;
  }
}

TEST(Varint, OverlongContinuationRejected) {
  // Eleven continuation bytes: the continuation bit never clears within
  // the 64-bit budget.
  std::vector<std::byte> bytes(11, std::byte{0x80});
  ByteReader reader(bytes);
  EXPECT_FALSE(reader.readVarint().has_value());
}

TEST(Varint, OverflowingFinalChunkRejected) {
  // Nine 0x80 bytes then 0x7F: the last chunk shifts past bit 63.
  std::vector<std::byte> bytes(9, std::byte{0x80});
  bytes.push_back(std::byte{0x7F});
  ByteReader reader(bytes);
  EXPECT_FALSE(reader.readVarint().has_value());
}

TEST(ByteReader, BytesAndBounds) {
  const std::vector<std::byte> data{std::byte{1}, std::byte{2}, std::byte{3}};
  ByteReader reader(data);
  EXPECT_EQ(reader.remaining(), 3u);
  const auto two = reader.readBytes(2);
  ASSERT_TRUE(two.has_value());
  EXPECT_EQ((*two)[1], std::byte{2});
  EXPECT_FALSE(reader.readBytes(2).has_value());  // only 1 left
  EXPECT_TRUE(reader.readBytes(1).has_value());
  EXPECT_TRUE(reader.exhausted());
  EXPECT_FALSE(reader.readByte().has_value());
}

}  // namespace
}  // namespace epto::codec

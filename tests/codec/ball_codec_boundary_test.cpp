// Boundary coverage for the v2 ball frame (codec/ball_codec.cpp):
// maximum varint widths on the lineage block, every unknown flag bit,
// and one-byte truncations at each header offset. Mirrors the fuzz seed
// corpus (fuzz/seed_gen.cpp) so each boundary is pinned both as a unit
// test and as a coverage seed.
//
// The CRC trailer is verified before any parsing, so reaching the deep
// Truncated/BadVarint/LengthOverflow branches requires frames whose
// trailer matches their (deliberately malformed) body — hand-assembled
// here with the encoder's own layout plus a recomputed crc32c.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "codec/ball_codec.h"
#include "codec/checksum.h"
#include "codec/varint.h"

namespace epto::codec {
namespace {

Event lineageEvent(std::uint16_t hop, std::uint32_t originRound, std::uint16_t incarnation) {
  Event event;
  event.id = EventId{7, 11};
  event.ts = 1234;
  event.ttl = 20;
  event.hop = hop;
  event.originRound = originRound;
  event.incarnation = incarnation;
  return event;
}

std::vector<std::byte> encodeLineage(const Ball& ball) {
  EncodeOptions options;
  options.lineage = true;
  return encodeBall(ball, options);
}

/// Append a CRC32C trailer over `body` — the step that separates "the
/// decoder rejected my bytes" from "the decoder rejected my checksum".
std::vector<std::byte> sealed(std::vector<std::byte> body) {
  const std::uint32_t crc = crc32c(body);
  for (int i = 0; i < 4; ++i) {
    body.push_back(static_cast<std::byte>((crc >> (8 * i)) & 0xFFU));
  }
  return body;
}

/// Hand-assemble a v2 lineage frame for one payload-less event with raw
/// (unclamped) lineage varint values — the encoder cannot produce
/// out-of-range fields, so the overflow branches need this.
std::vector<std::byte> rawLineageFrame(std::uint64_t hop, std::uint64_t originRound,
                                       std::uint64_t incarnation) {
  std::vector<std::byte> body;
  body.push_back(static_cast<std::byte>(kMagic & 0xFFU));
  body.push_back(static_cast<std::byte>(kMagic >> 8U));
  body.push_back(static_cast<std::byte>(kVersionLineage));
  body.push_back(static_cast<std::byte>(kFlagLineage));
  putVarint(body, 1);   // event count
  putVarint(body, 7);   // source
  putVarint(body, 11);  // sequence
  putVarint(body, 1234);  // ts
  putVarint(body, 20);    // ttl
  putVarint(body, hop);
  putVarint(body, originRound);
  putVarint(body, incarnation);
  putVarint(body, 0);  // payloadLen
  return sealed(std::move(body));
}

TEST(BallCodecBoundary, MaxWidthLineageFieldsRoundTrip) {
  const Ball ball{lineageEvent(std::numeric_limits<std::uint16_t>::max(),
                               std::numeric_limits<std::uint32_t>::max(),
                               std::numeric_limits<std::uint16_t>::max())};
  const auto decoded = decodeBall(encodeLineage(ball));
  ASSERT_TRUE(decoded.ok()) << toString(decoded.error);
  ASSERT_EQ(decoded.ball.size(), 1U);
  EXPECT_EQ(decoded.ball[0].hop, std::numeric_limits<std::uint16_t>::max());
  EXPECT_EQ(decoded.ball[0].originRound, std::numeric_limits<std::uint32_t>::max());
  EXPECT_EQ(decoded.ball[0].incarnation, std::numeric_limits<std::uint16_t>::max());
}

TEST(BallCodecBoundary, EachLineageFieldAtItsIndividualMax) {
  // One field maxed at a time: a cap applied to the wrong field would
  // pass the all-max test but fail one of these.
  const std::uint64_t hopMax = std::numeric_limits<std::uint16_t>::max();
  const std::uint64_t roundMax = std::numeric_limits<std::uint32_t>::max();
  const std::uint64_t incMax = std::numeric_limits<std::uint16_t>::max();
  for (int which = 0; which < 3; ++which) {
    const auto frame = rawLineageFrame(which == 0 ? hopMax : 1, which == 1 ? roundMax : 2,
                                       which == 2 ? incMax : 3);
    const auto decoded = decodeBall(frame);
    ASSERT_TRUE(decoded.ok()) << "field " << which << ": " << toString(decoded.error);
  }
}

TEST(BallCodecBoundary, LineageFieldOnePastItsMaxOverflows) {
  const std::uint64_t hopOver = std::uint64_t{std::numeric_limits<std::uint16_t>::max()} + 1;
  const std::uint64_t roundOver = std::uint64_t{std::numeric_limits<std::uint32_t>::max()} + 1;
  const std::uint64_t incOver = std::uint64_t{std::numeric_limits<std::uint16_t>::max()} + 1;
  EXPECT_EQ(decodeBall(rawLineageFrame(hopOver, 2, 3)).error, DecodeError::LengthOverflow);
  EXPECT_EQ(decodeBall(rawLineageFrame(1, roundOver, 3)).error, DecodeError::LengthOverflow);
  EXPECT_EQ(decodeBall(rawLineageFrame(1, 2, incOver)).error, DecodeError::LengthOverflow);
}

TEST(BallCodecBoundary, EveryUnknownFlagBitRejectsAsBadVersion) {
  // Bits 2..7 are reserved. Each one set individually (known bits kept
  // valid, CRC resealed) must reject as BadVersion — the forward-compat
  // contract that lets a future flag change the layout safely.
  const auto frame = encodeLineage({lineageEvent(3, 40, 1)});
  for (unsigned bit = 2; bit < 8; ++bit) {
    std::vector<std::byte> body(frame.begin(), frame.end() - 4);
    body[3] = static_cast<std::byte>(std::to_integer<unsigned>(body[3]) | (1U << bit));
    const auto decoded = decodeBall(sealed(std::move(body)));
    EXPECT_EQ(decoded.error, DecodeError::BadVersion) << "flag bit " << bit;
  }
}

TEST(BallCodecBoundary, KnownFlagBitsAloneStayDecodable) {
  const auto frame = encodeLineage({lineageEvent(3, 40, 1)});
  ASSERT_TRUE(decodeBall(frame).ok());
}

TEST(BallCodecBoundary, OneByteTruncationAtEveryHeaderOffsetWithResealedCrc) {
  // Truncate the body after `keep` bytes and reseal, so the checksum
  // gate passes and the decoder's own header walk must catch the cut:
  // magic (0,1) and empty bodies → Truncated/BadMagic, version → the
  // Truncated version read, flags/count → Truncated, mid-event →
  // Truncated or BadVarint depending on where the cut lands. Never ok,
  // never a crash — the exact per-offset errors are asserted below.
  const auto full = encodeLineage({lineageEvent(3, 40, 1)});
  const std::vector<std::byte> body(full.begin(), full.end() - 4);
  for (std::size_t keep = 0; keep + 1 < body.size(); ++keep) {
    const auto truncated =
        sealed(std::vector<std::byte>(body.begin(), body.begin() + static_cast<std::ptrdiff_t>(keep)));
    const auto decoded = decodeBall(truncated);
    ASSERT_FALSE(decoded.ok()) << "decoded a frame truncated to " << keep << " body bytes";
    EXPECT_TRUE(decoded.error == DecodeError::Truncated || decoded.error == DecodeError::BadMagic ||
                decoded.error == DecodeError::BadVarint ||
                decoded.error == DecodeError::LengthOverflow)
        << "offset " << keep << ": " << toString(decoded.error);
  }
  // The first offsets are pinned exactly: 0..1 cut the magic, 2 cuts the
  // version byte, 3 the flags byte, 4 the event count.
  EXPECT_EQ(decodeBall(sealed({})).error, DecodeError::Truncated);
  EXPECT_EQ(decodeBall(sealed({body[0]})).error, DecodeError::Truncated);
  EXPECT_EQ(decodeBall(sealed({body[0], body[1]})).error, DecodeError::Truncated);
  EXPECT_EQ(decodeBall(sealed({body[0], body[1], body[2]})).error, DecodeError::Truncated);
}

TEST(BallCodecBoundary, RawTruncationWithoutResealHitsTheChecksumFirst) {
  // The production failure shape (a datagram cut in flight): without a
  // matching trailer the checksum gate rejects before any parsing.
  const auto full = encodeLineage({lineageEvent(3, 40, 1)});
  const std::span<const std::byte> cut(full.data(), full.size() - 1);
  EXPECT_EQ(decodeBall(cut).error, DecodeError::ChecksumMismatch);
  EXPECT_EQ(decodeBall(std::span<const std::byte>(full.data(), 3)).error, DecodeError::Truncated);
}

TEST(BallCodecBoundary, TrailingBytesInsideAValidChecksumReject) {
  // Garbage between the last event and the trailer, CRC resealed over
  // it: the decoder must notice the unconsumed bytes, not silently
  // accept a frame longer than its content.
  const auto full = encodeLineage({lineageEvent(3, 40, 1)});
  std::vector<std::byte> body(full.begin(), full.end() - 4);
  body.push_back(std::byte{0x5A});
  EXPECT_EQ(decodeBall(sealed(std::move(body))).error, DecodeError::TrailingGarbage);
}

}  // namespace
}  // namespace epto::codec

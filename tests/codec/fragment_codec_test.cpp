// Tests of the fragmentation layer of the wire format (DESIGN.md §10).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "codec/checksum.h"
#include "codec/fragment_codec.h"
#include "codec/varint.h"
#include "util/ensure.h"
#include "util/rng.h"

namespace epto::codec {
namespace {

std::vector<std::byte> randomFrame(std::size_t size, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::byte> frame(size);
  for (auto& b : frame) b = static_cast<std::byte>(rng.below(256));
  return frame;
}

/// Hand-build a fragment datagram with arbitrary header values and a
/// valid CRC, so header-consistency checks can be probed past the
/// checksum (tampering with an encoder-produced fragment only ever
/// yields ChecksumMismatch).
std::vector<std::byte> craftFragment(std::uint64_t ballId, std::uint64_t index,
                                     std::uint64_t count, std::uint64_t totalLength,
                                     std::uint64_t offset, std::uint64_t chunkLength,
                                     std::size_t payloadBytes) {
  std::vector<std::byte> datagram;
  datagram.push_back(static_cast<std::byte>(kFragmentMagic & 0xFF));
  datagram.push_back(static_cast<std::byte>(kFragmentMagic >> 8));
  datagram.push_back(static_cast<std::byte>(kFragmentVersion));
  putVarint(datagram, ballId);
  putVarint(datagram, index);
  putVarint(datagram, count);
  putVarint(datagram, totalLength);
  putVarint(datagram, offset);
  putVarint(datagram, chunkLength);
  datagram.insert(datagram.end(), payloadBytes, std::byte{0xAB});
  const std::uint32_t crc = crc32c(datagram);
  for (int shift = 0; shift < 32; shift += 8) {
    datagram.push_back(static_cast<std::byte>((crc >> shift) & 0xFF));
  }
  return datagram;
}

TEST(FragmentCodec, SmallFramePassesThroughUnfragmented) {
  const auto frame = randomFrame(600, 1);
  const auto datagrams = fragmentFrame(frame, /*mtu=*/1400, /*ballId=*/9);
  ASSERT_EQ(datagrams.size(), 1u);
  EXPECT_EQ(datagrams[0], frame);
  EXPECT_FALSE(isFragmentFrame(datagrams[0]));
}

TEST(FragmentCodec, LargeFrameRoundTripsThroughFragments) {
  const auto frame = randomFrame(10'000, 2);
  const std::size_t mtu = 512;
  const auto datagrams = fragmentFrame(frame, mtu, /*ballId=*/77);
  ASSERT_GT(datagrams.size(), 1u);

  std::vector<std::byte> rebuilt(frame.size());
  std::uint64_t seenBytes = 0;
  for (std::size_t i = 0; i < datagrams.size(); ++i) {
    EXPECT_LE(datagrams[i].size(), mtu);
    ASSERT_TRUE(isFragmentFrame(datagrams[i]));
    const auto decoded = decodeFragment(datagrams[i]);
    ASSERT_TRUE(decoded.ok()) << toString(decoded.error);
    EXPECT_EQ(decoded.fragment.ballId, 77u);
    EXPECT_EQ(decoded.fragment.index, i);
    EXPECT_EQ(decoded.fragment.count, datagrams.size());
    EXPECT_EQ(decoded.fragment.totalLength, frame.size());
    std::copy(decoded.fragment.payload.begin(), decoded.fragment.payload.end(),
              rebuilt.begin() + static_cast<std::ptrdiff_t>(decoded.fragment.offset));
    seenBytes += decoded.fragment.payload.size();
  }
  EXPECT_EQ(seenBytes, frame.size());
  EXPECT_EQ(rebuilt, frame);
}

TEST(FragmentCodec, FragmentsOfJumboFrameAllFitTheMtu) {
  const auto frame = randomFrame(100'000, 3);
  const auto datagrams = fragmentFrame(frame, 1400, 1);
  ASSERT_GT(datagrams.size(), 70u);  // 100000 / 1400 at the very least
  for (const auto& d : datagrams) EXPECT_LE(d.size(), 1400u);
}

TEST(FragmentCodec, BallFrameIsNotAFragmentFrame) {
  Ball ball;
  Event e;
  e.id = EventId{3, 4};
  e.ts = 12;
  ball.push_back(e);
  const auto frame = encodeBall(ball);
  EXPECT_FALSE(isFragmentFrame(frame));
  // Ball frames share the CRC trailer convention, so the checksum holds
  // and the decoder rejects on the magic.
  EXPECT_EQ(decodeFragment(frame).error, DecodeError::BadMagic);
}

TEST(FragmentCodec, CorruptedFragmentFailsChecksum) {
  const auto frame = randomFrame(4'000, 4);
  auto datagrams = fragmentFrame(frame, 512, 5);
  ASSERT_GT(datagrams.size(), 1u);
  datagrams[0][10] ^= std::byte{0x01};
  EXPECT_EQ(decodeFragment(datagrams[0]).error, DecodeError::ChecksumMismatch);
}

TEST(FragmentCodec, TruncatedFragmentRejected) {
  const auto frame = randomFrame(4'000, 5);
  auto datagrams = fragmentFrame(frame, 512, 6);
  ASSERT_FALSE(datagrams.empty());
  auto& d = datagrams[0];
  d.resize(d.size() / 2);
  EXPECT_FALSE(decodeFragment(d).ok());
  d.resize(2);
  EXPECT_EQ(decodeFragment(d).error, DecodeError::Truncated);
}

TEST(FragmentCodec, IndexBeyondCountRejected) {
  const auto d = craftFragment(/*ballId=*/1, /*index=*/3, /*count=*/3,
                               /*totalLength=*/100, /*offset=*/0,
                               /*chunkLength=*/10, /*payloadBytes=*/10);
  EXPECT_EQ(decodeFragment(d).error, DecodeError::LengthOverflow);
}

TEST(FragmentCodec, ZeroCountRejected) {
  const auto d = craftFragment(1, 0, /*count=*/0, 100, 0, 10, 10);
  EXPECT_EQ(decodeFragment(d).error, DecodeError::LengthOverflow);
}

TEST(FragmentCodec, ChunkBeyondDeclaredTotalRejected) {
  // offset + chunkLength would overrun the declared frame.
  const auto d = craftFragment(1, 0, 2, /*totalLength=*/100, /*offset=*/95,
                               /*chunkLength=*/10, /*payloadBytes=*/10);
  EXPECT_EQ(decodeFragment(d).error, DecodeError::LengthOverflow);
}

TEST(FragmentCodec, ChunkLengthMustMatchCarriedPayload) {
  // Header claims 10 payload bytes; frame carries 12.
  const auto d = craftFragment(1, 0, 2, 100, 0, /*chunkLength=*/10,
                               /*payloadBytes=*/12);
  EXPECT_EQ(decodeFragment(d).error, DecodeError::LengthOverflow);
}

TEST(FragmentCodec, WrongVersionRejected) {
  std::vector<std::byte> d;
  d.push_back(static_cast<std::byte>(kFragmentMagic & 0xFF));
  d.push_back(static_cast<std::byte>(kFragmentMagic >> 8));
  d.push_back(std::byte{99});  // unsupported version
  const std::uint32_t crc = crc32c(d);
  for (int shift = 0; shift < 32; shift += 8) {
    d.push_back(static_cast<std::byte>((crc >> shift) & 0xFF));
  }
  EXPECT_EQ(decodeFragment(d).error, DecodeError::BadVersion);
}

TEST(FragmentCodec, RejectsDegenerateMtu) {
  const auto frame = randomFrame(1'000, 6);
  EXPECT_THROW(fragmentFrame(frame, kMinFragmentMtu - 1, 1), util::ContractViolation);
}

}  // namespace
}  // namespace epto::codec

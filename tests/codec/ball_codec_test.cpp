#include <gtest/gtest.h>

#include <vector>

#include "codec/ball_codec.h"
#include "codec/checksum.h"
#include "codec/varint.h"
#include "util/rng.h"

namespace epto::codec {
namespace {

Event makeEvent(ProcessId source, std::uint32_t seq, Timestamp ts, std::uint32_t ttl,
                std::size_t payloadBytes = 0) {
  Event e;
  e.id = EventId{source, seq};
  e.ts = ts;
  e.ttl = ttl;
  if (payloadBytes > 0) {
    auto payload = std::make_shared<PayloadBytes>();
    for (std::size_t i = 0; i < payloadBytes; ++i) {
      payload->push_back(static_cast<std::byte>(i * 31 + source));
    }
    e.payload = std::move(payload);
  }
  return e;
}

void expectSameBall(const Ball& a, const Ball& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].ts, b[i].ts);
    EXPECT_EQ(a[i].ttl, b[i].ttl);
    EXPECT_EQ(a[i].hop, b[i].hop);
    EXPECT_EQ(a[i].originRound, b[i].originRound);
    EXPECT_EQ(a[i].incarnation, b[i].incarnation);
    EXPECT_EQ(a[i].qos, b[i].qos);
    const bool aHas = a[i].payload != nullptr && !a[i].payload->empty();
    const bool bHas = b[i].payload != nullptr && !b[i].payload->empty();
    ASSERT_EQ(aHas, bHas);
    if (aHas) {
      EXPECT_EQ(*a[i].payload, *b[i].payload);
    }
  }
}

TEST(BallCodec, EmptyBallRoundTrips) {
  const auto frame = encodeBall({});
  const auto decoded = decodeBall(frame);
  ASSERT_TRUE(decoded.ok()) << toString(decoded.error);
  EXPECT_TRUE(decoded.ball.empty());
}

TEST(BallCodec, TypicalBallRoundTrips) {
  Ball ball{makeEvent(1, 0, 100, 3), makeEvent(2, 7, 101, 15, 32),
            makeEvent(0xFFFFFFFF, 0xFFFFFFFF, 0xFFFFFFFFFFFFFFFFULL, 0xFFFFFFFF),
            makeEvent(3, 1, 0, 0, 1)};
  const auto frame = encodeBall(ball);
  const auto decoded = decodeBall(frame);
  ASSERT_TRUE(decoded.ok()) << toString(decoded.error);
  expectSameBall(ball, decoded.ball);
}

TEST(BallCodec, RandomBallsRoundTrip) {
  util::Rng rng(2718);
  for (int trial = 0; trial < 300; ++trial) {
    Ball ball;
    const std::size_t count = rng.below(40);
    for (std::size_t i = 0; i < count; ++i) {
      ball.push_back(makeEvent(static_cast<ProcessId>(rng()),
                               static_cast<std::uint32_t>(rng()), rng(),
                               static_cast<std::uint32_t>(rng()), rng.below(64)));
    }
    const auto frame = encodeBall(ball);
    const auto decoded = decodeBall(frame);
    ASSERT_TRUE(decoded.ok()) << toString(decoded.error);
    expectSameBall(ball, decoded.ball);
  }
}

TEST(BallCodec, EveryTruncationRejected) {
  const auto frame = encodeBall({makeEvent(1, 2, 3, 4, 10), makeEvent(5, 6, 7, 8)});
  for (std::size_t keep = 0; keep < frame.size(); ++keep) {
    const auto decoded = decodeBall(std::span(frame.data(), keep));
    EXPECT_FALSE(decoded.ok()) << "kept " << keep << " bytes";
  }
}

TEST(BallCodec, EverySingleBitFlipRejected) {
  // The CRC32C trailer guarantees any single-bit corruption is caught.
  auto frame = encodeBall({makeEvent(1, 2, 3, 4, 8)});
  for (std::size_t i = 0; i < frame.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      frame[i] ^= static_cast<std::byte>(1 << bit);
      const auto decoded = decodeBall(frame);
      EXPECT_FALSE(decoded.ok()) << "byte " << i << " bit " << bit;
      frame[i] ^= static_cast<std::byte>(1 << bit);
    }
  }
  EXPECT_TRUE(decodeBall(frame).ok());  // restored frame is fine again
}

TEST(BallCodec, BadMagicReported) {
  auto frame = encodeBall({});
  frame[0] = std::byte{0x00};
  // Re-stamp the CRC so the specific error is BadMagic, not checksum.
  const auto body = std::span(frame.data(), frame.size() - 4);
  const std::uint32_t crc = crc32c(body);
  for (int i = 0; i < 4; ++i) {
    frame[frame.size() - 4 + static_cast<std::size_t>(i)] =
        static_cast<std::byte>((crc >> (8 * i)) & 0xFF);
  }
  EXPECT_EQ(decodeBall(frame).error, DecodeError::BadMagic);
}

TEST(BallCodec, BadVersionReported) {
  auto frame = encodeBall({});
  frame[2] = std::byte{99};
  const std::uint32_t crc = crc32c(std::span(frame.data(), frame.size() - 4));
  for (int i = 0; i < 4; ++i) {
    frame[frame.size() - 4 + static_cast<std::size_t>(i)] =
        static_cast<std::byte>((crc >> (8 * i)) & 0xFF);
  }
  EXPECT_EQ(decodeBall(frame).error, DecodeError::BadVersion);
}

TEST(BallCodec, LyingEventCountRejectedWithoutHugeAllocation) {
  // Hand-craft a frame declaring 2^40 events in a 20-byte body.
  std::vector<std::byte> frame;
  frame.push_back(std::byte{0x70});
  frame.push_back(std::byte{0xE9});
  frame.push_back(std::byte{1});
  putVarint(frame, 1ULL << 40);
  const std::uint32_t crc = crc32c(frame);
  for (int i = 0; i < 4; ++i) {
    frame.push_back(static_cast<std::byte>((crc >> (8 * i)) & 0xFF));
  }
  EXPECT_EQ(decodeBall(frame).error, DecodeError::LengthOverflow);
}

TEST(BallCodec, LyingPayloadLengthRejected) {
  std::vector<std::byte> frame;
  frame.push_back(std::byte{0x70});
  frame.push_back(std::byte{0xE9});
  frame.push_back(std::byte{1});
  putVarint(frame, 1);   // one event
  putVarint(frame, 1);   // source
  putVarint(frame, 0);   // sequence
  putVarint(frame, 10);  // ts
  putVarint(frame, 2);   // ttl
  putVarint(frame, 1000);  // payload length: lies
  const std::uint32_t crc = crc32c(frame);
  for (int i = 0; i < 4; ++i) {
    frame.push_back(static_cast<std::byte>((crc >> (8 * i)) & 0xFF));
  }
  EXPECT_EQ(decodeBall(frame).error, DecodeError::LengthOverflow);
}

TEST(BallCodec, TrailingGarbageRejected) {
  std::vector<std::byte> frame;
  frame.push_back(std::byte{0x70});
  frame.push_back(std::byte{0xE9});
  frame.push_back(std::byte{1});
  putVarint(frame, 0);               // zero events
  frame.push_back(std::byte{0xAB});  // stray byte
  const std::uint32_t crc = crc32c(frame);
  for (int i = 0; i < 4; ++i) {
    frame.push_back(static_cast<std::byte>((crc >> (8 * i)) & 0xFF));
  }
  EXPECT_EQ(decodeBall(frame).error, DecodeError::TrailingGarbage);
}

TEST(BallCodec, RandomGarbageNeverCrashesOrSucceeds) {
  util::Rng rng(777);
  int accepted = 0;
  for (int trial = 0; trial < 20000; ++trial) {
    std::vector<std::byte> junk(rng.below(64));
    for (auto& b : junk) b = static_cast<std::byte>(rng());
    if (decodeBall(junk).ok()) ++accepted;
  }
  // 32-bit CRC + magic: the odds of random junk validating are ~2^-48.
  EXPECT_EQ(accepted, 0);
}

TEST(BallCodec, OversizedFieldsInValidFrameRejected) {
  // A frame can be internally consistent (CRC fine) yet declare a source
  // id beyond 32 bits — the decoder must range-check.
  std::vector<std::byte> frame;
  frame.push_back(std::byte{0x70});
  frame.push_back(std::byte{0xE9});
  frame.push_back(std::byte{1});
  putVarint(frame, 1);
  putVarint(frame, 1ULL << 40);  // source exceeds ProcessId
  putVarint(frame, 0);
  putVarint(frame, 1);
  putVarint(frame, 1);
  putVarint(frame, 0);
  const std::uint32_t crc = crc32c(frame);
  for (int i = 0; i < 4; ++i) {
    frame.push_back(static_cast<std::byte>((crc >> (8 * i)) & 0xFF));
  }
  EXPECT_EQ(decodeBall(frame).error, DecodeError::LengthOverflow);
}

TEST(BallCodec, WireSizeIsCompact) {
  // 100 payload-free events with small ts/ttl must encode well under the
  // 24-byte in-memory footprint per event.
  Ball ball;
  for (std::uint32_t i = 0; i < 100; ++i) ball.push_back(makeEvent(i, i, 1000 + i, 5));
  const auto frame = encodeBall(ball);
  EXPECT_LT(frame.size(), 100 * 10 + 16);
}

// ---- version 2: per-event lineage ----------------------------------------

Event makeLineageEvent(ProcessId source, std::uint32_t seq, std::uint16_t hop,
                       std::uint32_t originRound, std::uint16_t incarnation) {
  Event e = makeEvent(source, seq, 100 + seq, 3, seq % 7);
  e.hop = hop;
  e.originRound = originRound;
  e.incarnation = incarnation;
  return e;
}

void restampCrc(std::vector<std::byte>& frame) {
  const std::uint32_t crc = crc32c(std::span(frame.data(), frame.size()));
  for (int i = 0; i < 4; ++i) {
    frame.push_back(static_cast<std::byte>((crc >> (8 * i)) & 0xFF));
  }
}

TEST(BallCodecV2, LineageRoundTrips) {
  Ball ball{makeLineageEvent(1, 0, 0, 0, 0), makeLineageEvent(2, 7, 3, 41, 2),
            makeLineageEvent(9, 5, 0xFFFF, 0xFFFFFFFF, 0xFFFF)};
  const auto frame = encodeBall(ball, EncodeOptions{.lineage = true});
  EXPECT_EQ(frame[2], std::byte{kVersionLineage});
  EXPECT_EQ(frame[3], std::byte{kFlagLineage});
  const auto decoded = decodeBall(frame);
  ASSERT_TRUE(decoded.ok()) << toString(decoded.error);
  expectSameBall(ball, decoded.ball);
}

TEST(BallCodecV2, RandomLineageBallsRoundTrip) {
  util::Rng rng(424242);
  for (int trial = 0; trial < 200; ++trial) {
    Ball ball;
    const std::size_t count = rng.below(20);
    for (std::size_t i = 0; i < count; ++i) {
      ball.push_back(makeLineageEvent(
          static_cast<ProcessId>(rng()), static_cast<std::uint32_t>(rng()),
          static_cast<std::uint16_t>(rng()), static_cast<std::uint32_t>(rng()),
          static_cast<std::uint16_t>(rng())));
    }
    const auto decoded = decodeBall(encodeBall(ball, EncodeOptions{.lineage = true}));
    ASSERT_TRUE(decoded.ok()) << toString(decoded.error);
    expectSameBall(ball, decoded.ball);
  }
}

TEST(BallCodecV2, LegacyEncoderStaysByteIdentical) {
  // A node that never opts into lineage must keep emitting the exact v1
  // frame — the mixed-fleet interop guarantee.
  Ball ball{makeLineageEvent(3, 1, 5, 99, 1)};
  EXPECT_EQ(encodeBall(ball), encodeBall(ball, EncodeOptions{.lineage = false}));
  EXPECT_EQ(encodeBall(ball)[2], std::byte{kVersion});
}

TEST(BallCodecV2, V1FrameDecodesWithZeroedLineage) {
  // Old sender -> new decoder: lineage silently defaults to zero.
  Ball ball{makeLineageEvent(4, 2, 7, 123, 3)};
  const auto decoded = decodeBall(encodeBall(ball));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.ball[0].hop, 0u);
  EXPECT_EQ(decoded.ball[0].originRound, 0u);
  EXPECT_EQ(decoded.ball[0].incarnation, 0u);
  EXPECT_EQ(decoded.ball[0].id, ball[0].id);
}

TEST(BallCodecV2, UnknownFlagBitsRejected) {
  // Unknown flags change the per-event layout, so they must not be
  // silently ignored.
  std::vector<std::byte> frame;
  frame.push_back(std::byte{0x70});
  frame.push_back(std::byte{0xE9});
  frame.push_back(std::byte{kVersionLineage});
  frame.push_back(std::byte{0x04});  // neither kFlagLineage nor kFlagQos
  putVarint(frame, 0);
  restampCrc(frame);
  EXPECT_EQ(decodeBall(frame).error, DecodeError::BadVersion);
}

TEST(BallCodecV2, OversizedLineageFieldsRejected) {
  const auto craft = [](std::uint64_t hop, std::uint64_t origin,
                        std::uint64_t incarnation) {
    std::vector<std::byte> frame;
    frame.push_back(std::byte{0x70});
    frame.push_back(std::byte{0xE9});
    frame.push_back(std::byte{kVersionLineage});
    frame.push_back(std::byte{kFlagLineage});
    putVarint(frame, 1);   // one event
    putVarint(frame, 1);   // source
    putVarint(frame, 0);   // sequence
    putVarint(frame, 10);  // ts
    putVarint(frame, 2);   // ttl
    putVarint(frame, hop);
    putVarint(frame, origin);
    putVarint(frame, incarnation);
    putVarint(frame, 0);  // payload length
    restampCrc(frame);
    return frame;
  };
  EXPECT_TRUE(decodeBall(craft(1, 2, 3)).ok());
  EXPECT_EQ(decodeBall(craft(1ULL << 20, 2, 3)).error, DecodeError::LengthOverflow);
  EXPECT_EQ(decodeBall(craft(1, 1ULL << 40, 3)).error, DecodeError::LengthOverflow);
  EXPECT_EQ(decodeBall(craft(1, 2, 1ULL << 20)).error, DecodeError::LengthOverflow);
}

TEST(BallCodecV2, EveryTruncationRejected) {
  const auto frame =
      encodeBall({makeLineageEvent(1, 2, 3, 400, 5), makeLineageEvent(6, 7, 8, 900, 1)},
                 EncodeOptions{.lineage = true});
  for (std::size_t keep = 0; keep < frame.size(); ++keep) {
    EXPECT_FALSE(decodeBall(std::span(frame.data(), keep)).ok())
        << "kept " << keep << " bytes";
  }
}

// ---- version 2: per-event QoS class --------------------------------------

Event makeFastEvent(ProcessId source, std::uint32_t seq, std::size_t payloadBytes = 0) {
  Event e = makeEvent(source, seq, 200 + seq, 4, payloadBytes);
  e.qos = QosClass::Fast;
  return e;
}

TEST(BallCodecQos, MixedClassesRoundTrip) {
  Ball ball{makeEvent(1, 0, 100, 3), makeFastEvent(2, 7, 16), makeEvent(3, 1, 101, 5),
            makeFastEvent(4, 9)};
  const auto frame = encodeBall(ball, EncodeOptions{.qos = true});
  EXPECT_EQ(frame[2], std::byte{kVersionLineage});
  EXPECT_EQ(frame[3], std::byte{kFlagQos});
  const auto decoded = decodeBall(frame);
  ASSERT_TRUE(decoded.ok()) << toString(decoded.error);
  expectSameBall(ball, decoded.ball);
  EXPECT_EQ(decoded.ball[1].qos, QosClass::Fast);
  EXPECT_EQ(decoded.ball[2].qos, QosClass::Safe);
}

TEST(BallCodecQos, SafeOnlyBallStaysByteIdenticalWithQosEnabled) {
  // The flag bit is demand-driven: a fleet that never tags anything Fast
  // keeps emitting the exact v1 frame even with the option on — the
  // speculation-off identity guarantee at the wire layer.
  Ball ball{makeEvent(1, 0, 100, 3), makeEvent(2, 7, 101, 15, 32)};
  EXPECT_EQ(encodeBall(ball, EncodeOptions{.qos = true}), encodeBall(ball));
  EXPECT_EQ(encodeBall(ball, EncodeOptions{.qos = true})[2], std::byte{kVersion});
}

TEST(BallCodecQos, EncoderWithoutTheOptionDropsTheClass) {
  // A legacy encoder flattens Fast to the wire default; the receiver
  // treats the event as Safe (never speculates) — the conservative side.
  Ball ball{makeFastEvent(5, 3, 8)};
  const auto decoded = decodeBall(encodeBall(ball));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.ball[0].qos, QosClass::Safe);
}

TEST(BallCodecQos, ComposesWithLineage) {
  Ball ball{makeLineageEvent(1, 0, 3, 41, 2), makeFastEvent(2, 7, 16)};
  ball[1].hop = 9;
  const auto frame =
      encodeBall(ball, EncodeOptions{.lineage = true, .qos = true});
  EXPECT_EQ(frame[3], std::byte{kFlagLineage | kFlagQos});
  const auto decoded = decodeBall(frame);
  ASSERT_TRUE(decoded.ok()) << toString(decoded.error);
  expectSameBall(ball, decoded.ball);
}

TEST(BallCodecQos, InvalidClassByteRejected) {
  const auto craft = [](std::uint8_t qosByte) {
    std::vector<std::byte> frame;
    frame.push_back(std::byte{0x70});
    frame.push_back(std::byte{0xE9});
    frame.push_back(std::byte{kVersionLineage});
    frame.push_back(std::byte{kFlagQos});
    putVarint(frame, 1);   // one event
    putVarint(frame, 1);   // source
    putVarint(frame, 0);   // sequence
    putVarint(frame, 10);  // ts
    putVarint(frame, 2);   // ttl
    frame.push_back(std::byte{qosByte});
    putVarint(frame, 0);   // payload length
    restampCrc(frame);
    return frame;
  };
  EXPECT_TRUE(decodeBall(craft(0)).ok());
  EXPECT_TRUE(decodeBall(craft(1)).ok());
  // Beyond the two defined classes the per-event layout is unknowable.
  EXPECT_EQ(decodeBall(craft(2)).error, DecodeError::BadVersion);
  EXPECT_EQ(decodeBall(craft(0xFF)).error, DecodeError::BadVersion);
}

TEST(BallCodecQos, EveryTruncationRejected) {
  const auto frame = encodeBall({makeFastEvent(1, 2, 10), makeFastEvent(3, 4)},
                                EncodeOptions{.qos = true});
  for (std::size_t keep = 0; keep < frame.size(); ++keep) {
    EXPECT_FALSE(decodeBall(std::span(frame.data(), keep)).ok())
        << "kept " << keep << " bytes";
  }
}

TEST(BallCodec, ErrorStringsAreHuman) {
  EXPECT_EQ(toString(DecodeError::None), "none");
  EXPECT_EQ(toString(DecodeError::ChecksumMismatch), "checksum mismatch");
  EXPECT_EQ(toString(DecodeError::Truncated), "truncated frame");
}

}  // namespace
}  // namespace epto::codec

// Fault injection in the simulated deployment: crash/restart, partition
// with a scheduled heal, GC-pause stalls, and determinism of a faulted
// run. The Table 1 verdicts are judged over the correct (surviving)
// processes, per the paper's Properties 2 and 4.
#include <gtest/gtest.h>

#include "fault/fault_plan.h"
#include "workload/experiment.h"

namespace epto::workload {
namespace {

ExperimentConfig baseConfig() {
  ExperimentConfig config;
  config.systemSize = 40;
  config.broadcastProbability = 0.05;
  config.broadcastRounds = 15;  // window [0, 1875) at delta = 125
  config.seed = 7;
  return config;
}

TEST(FaultSim, CrashAndRestartReconverges) {
  fault::FaultPlan plan;
  plan.crash(600, 3, /*restartAt=*/1400);  // down ~6 rounds, rejoins
  plan.crash(800, 7);                      // down forever

  ExperimentConfig config = baseConfig();
  config.faultPlan = &plan;
  const ExperimentResult result = runExperiment(config);

  EXPECT_EQ(result.faultStats.crashes, 2u);
  EXPECT_EQ(result.faultStats.restarts, 1u);
  // Sim crash victims leave the membership at kill time (like churn), so
  // no further balls are addressed at them; in-flight ones are silently
  // dropped at arrival. crashDrops is a runtime-transport statistic.
  EXPECT_EQ(result.faultStats.crashDrops, 0u);
  // Two victims killed, one replacement spawned.
  EXPECT_EQ(result.finalSystemSize, config.systemSize - 1);
  // The rejoined node and every survivor still agree on one total order.
  EXPECT_TRUE(result.report.allPropertiesHold())
      << "order=" << result.report.orderViolations
      << " integrity=" << result.report.integrityViolations
      << " validity=" << result.report.validityViolations
      << " holes=" << result.report.holes;
}

TEST(FaultSim, PartitionHealsAndReconverges) {
  // Acceptance scenario: a clean split for ~4 round periods in the middle
  // of the broadcast window, healed well before the drain. Events born on
  // both sides must still reach every correct process in one total order.
  fault::FaultPlan plan;
  plan.partition(600, 1100, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9});

  ExperimentConfig config = baseConfig();
  config.faultPlan = &plan;
  const ExperimentResult result = runExperiment(config);

  EXPECT_GT(result.faultStats.partitionDrops, 0u);  // the split was real
  EXPECT_EQ(result.finalSystemSize, config.systemSize);
  EXPECT_EQ(result.report.orderViolations, 0u);
  EXPECT_EQ(result.report.holes, 0u) << "partition did not re-converge";
  EXPECT_TRUE(result.report.allPropertiesHold());
}

TEST(FaultSim, StalledProcessCatchesUp) {
  fault::FaultPlan plan;
  plan.stall(600, 1500, 2).stall(700, 1400, 5);

  ExperimentConfig config = baseConfig();
  config.faultPlan = &plan;
  const ExperimentResult result = runExperiment(config);

  EXPECT_EQ(result.faultStats.stalls, 2u);
  EXPECT_EQ(result.faultStats.crashes, 0u);
  EXPECT_TRUE(result.report.allPropertiesHold())
      << "holes=" << result.report.holes;
}

TEST(FaultSim, BurstLossAndDelaySpikesAreAbsorbed) {
  fault::FaultPlan plan;
  plan.burstLoss(600, 1400, 0.3).delaySpike(600, 1400, 200);

  ExperimentConfig config = baseConfig();
  config.faultPlan = &plan;
  const ExperimentResult result = runExperiment(config);

  EXPECT_GT(result.faultStats.burstDrops, 0u);
  EXPECT_GT(result.faultStats.delayedMessages, 0u);
  EXPECT_TRUE(result.report.allPropertiesHold());
}

TEST(FaultSim, SameSeedAndPlanReproduceTheRunExactly) {
  fault::FaultPlan plan;
  plan.crash(600, 4, 1400).burstLoss(700, 1300, 0.25).stall(800, 1200, 9);

  ExperimentConfig config = baseConfig();
  config.faultPlan = &plan;
  const ExperimentResult a = runExperiment(config);
  const ExperimentResult b = runExperiment(config);

  EXPECT_EQ(a.report.broadcasts, b.report.broadcasts);
  EXPECT_EQ(a.report.deliveries, b.report.deliveries);
  EXPECT_EQ(a.report.eventsMeasured, b.report.eventsMeasured);
  EXPECT_EQ(a.report.delays.total(), b.report.delays.total());
  if (!a.report.delays.empty()) {
    EXPECT_EQ(a.report.delays.percentile(1.0), b.report.delays.percentile(1.0));
  }
  EXPECT_EQ(a.roundsExecuted, b.roundsExecuted);
  EXPECT_EQ(a.finalSystemSize, b.finalSystemSize);
  EXPECT_EQ(a.faultStats.crashes, b.faultStats.crashes);
  EXPECT_EQ(a.faultStats.restarts, b.faultStats.restarts);
  EXPECT_EQ(a.faultStats.stalls, b.faultStats.stalls);
  EXPECT_EQ(a.faultStats.crashDrops, b.faultStats.crashDrops);
  EXPECT_EQ(a.faultStats.burstDrops, b.faultStats.burstDrops);
  EXPECT_EQ(a.faultStats.delayedMessages, b.faultStats.delayedMessages);
}

TEST(FaultSim, ChurnRemovesNodesWithInFlightBalls) {
  // Every churn pulse kills nodes while balls addressed to them are still
  // in the network (one-way latency ~ a round period). The cluster must
  // drop those messages on the floor without tripping any verdict over
  // the survivors.
  ExperimentConfig config = baseConfig();
  config.churnRate = 0.05;  // 2 of 40 replaced per round period
  const ExperimentResult result = runExperiment(config);

  EXPECT_EQ(result.finalSystemSize, config.systemSize);  // churn replaces 1:1
  EXPECT_EQ(result.report.orderViolations, 0u);
  EXPECT_EQ(result.report.integrityViolations, 0u);
}

}  // namespace
}  // namespace epto::workload

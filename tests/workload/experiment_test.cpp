// Integration tests: full simulated runs asserting the Table 1
// specification (integrity, validity, total order, probabilistic
// agreement) under the paper's §6 conditions.
#include <gtest/gtest.h>

#include "workload/experiment.h"

namespace epto::workload {
namespace {

ExperimentConfig smallConfig() {
  ExperimentConfig config;
  config.systemSize = 60;
  config.broadcastRounds = 12;
  config.broadcastProbability = 0.05;
  config.seed = 7;
  return config;
}

void expectTable1(const ExperimentResult& result) {
  EXPECT_EQ(result.report.integrityViolations, 0u);
  EXPECT_EQ(result.report.orderViolations, 0u);
  EXPECT_EQ(result.report.validityViolations, 0u);
  EXPECT_EQ(result.report.holes, 0u);
  EXPECT_GT(result.report.broadcasts, 0u);
  EXPECT_GT(result.report.deliveries, 0u);
}

TEST(ExperimentIntegration, GlobalClockIdealNetwork) {
  auto config = smallConfig();
  config.clockMode = ClockMode::Global;
  const auto result = runExperiment(config);
  expectTable1(result);
  // Agreement means everyone delivered everything: deliveries = events * n.
  EXPECT_EQ(result.report.deliveries,
            result.report.eventsMeasured * config.systemSize);
}

TEST(ExperimentIntegration, LogicalClockIdealNetwork) {
  auto config = smallConfig();
  config.clockMode = ClockMode::Logical;
  const auto result = runExperiment(config);
  expectTable1(result);
}

TEST(ExperimentIntegration, GlobalClockWithMessageLoss) {
  auto config = smallConfig();
  config.messageLossRate = 0.10;
  const auto result = runExperiment(config);
  expectTable1(result);
}

TEST(ExperimentIntegration, GlobalClockWithChurn) {
  auto config = smallConfig();
  config.churnRate = 0.05;
  const auto result = runExperiment(config);
  EXPECT_EQ(result.report.integrityViolations, 0u);
  EXPECT_EQ(result.report.orderViolations, 0u);
  EXPECT_EQ(result.report.holes, 0u);
}

TEST(ExperimentIntegration, CyclonPss) {
  auto config = smallConfig();
  config.pss = PssKind::Cyclon;
  const auto result = runExperiment(config);
  expectTable1(result);
}

TEST(ExperimentIntegration, BaselineDeliversEverythingUnordered) {
  auto config = smallConfig();
  config.protocol = Protocol::BallsBinsBaseline;
  const auto result = runExperiment(config);
  EXPECT_EQ(result.report.integrityViolations, 0u);
  EXPECT_EQ(result.report.holes, 0u);
  EXPECT_GT(result.report.deliveries, 0u);
}

TEST(ExperimentIntegration, DeterministicInSeedWithCyclon) {
  // The real PSS threads extra randomness through shuffles; determinism
  // must survive it.
  auto config = smallConfig();
  config.pss = PssKind::Cyclon;
  config.churnRate = 0.02;
  const auto a = runExperiment(config);
  const auto b = runExperiment(config);
  EXPECT_EQ(a.report.broadcasts, b.report.broadcasts);
  EXPECT_EQ(a.report.deliveries, b.report.deliveries);
  EXPECT_EQ(a.network.sent, b.network.sent);
}

TEST(ExperimentIntegration, DeterministicInSeedWithGenericPss) {
  auto config = smallConfig();
  config.pss = PssKind::Generic;
  const auto a = runExperiment(config);
  const auto b = runExperiment(config);
  EXPECT_EQ(a.report.deliveries, b.report.deliveries);
  EXPECT_EQ(a.network.sent, b.network.sent);
}

TEST(ExperimentIntegration, DifferentSeedsProduceDifferentRuns) {
  auto config = smallConfig();
  config.seed = 1;
  const auto a = runExperiment(config);
  config.seed = 2;
  const auto b = runExperiment(config);
  // Workload draws differ, so the traffic pattern must differ.
  EXPECT_NE(a.network.sent, b.network.sent);
}

TEST(ExperimentIntegration, DeterministicInSeed) {
  const auto a = runExperiment(smallConfig());
  const auto b = runExperiment(smallConfig());
  EXPECT_EQ(a.report.broadcasts, b.report.broadcasts);
  EXPECT_EQ(a.report.deliveries, b.report.deliveries);
  EXPECT_EQ(a.network.sent, b.network.sent);
  EXPECT_EQ(a.report.delays.total(), b.report.delays.total());
  if (!a.report.delays.empty() && !b.report.delays.empty()) {
    EXPECT_EQ(a.report.delays.percentile(0.5), b.report.delays.percentile(0.5));
  }
}

TEST(ExperimentIntegration, MetricsSnapshotAndRoundSamples) {
  auto config = smallConfig();
  config.metricsSampleEvery = 10;
  const auto result = runExperiment(config);
  expectTable1(result);

  // Per-round samples were captured every 10th executed round, each
  // attributable to a node at a simulated time inside the run.
  ASSERT_FALSE(result.roundSamples.empty());
  EXPECT_GE(result.roundSamples.size(), result.roundsExecuted / 10 - 1);
  for (const auto& sample : result.roundSamples) {
    EXPECT_EQ(sample.round % 10, 0u);
    EXPECT_LE(sample.simTime, result.simulatedTicks);
  }

  // The final registry snapshot carries the always-on distribution
  // histograms plus the aggregate protocol counters.
  const auto find = [&](const std::string& name) -> const obs::Sample* {
    for (const auto& sample : result.metrics) {
      if (sample.name == name) return &sample;
    }
    return nullptr;
  };
  const obs::Sample* ballSize = find("epto_sim_ball_size");
  ASSERT_NE(ballSize, nullptr);
  EXPECT_EQ(ballSize->kind, obs::Kind::Histogram);
  EXPECT_EQ(ballSize->count, result.roundsExecuted);  // one observation per round
  ASSERT_NE(find("epto_sim_fanout_targets"), nullptr);
  ASSERT_NE(find("epto_sim_buffer_occupancy"), nullptr);

  const obs::Sample* delivered = find("epto_sim_delivered_ordered_total");
  ASSERT_NE(delivered, nullptr);
  EXPECT_GT(delivered->counter, 0u);
  const obs::Sample* relayed = find("epto_sim_events_relayed_total");
  ASSERT_NE(relayed, nullptr);
  EXPECT_GT(relayed->counter, 0u);
}

TEST(ExperimentIntegration, RoundSamplingDisabledByDefault) {
  const auto result = runExperiment(smallConfig());
  EXPECT_TRUE(result.roundSamples.empty());
  EXPECT_FALSE(result.metrics.empty());  // histograms are always-on
}

}  // namespace
}  // namespace epto::workload

// Integration tests: full simulated runs asserting the Table 1
// specification (integrity, validity, total order, probabilistic
// agreement) under the paper's §6 conditions.
#include <gtest/gtest.h>

#include "workload/experiment.h"

namespace epto::workload {
namespace {

ExperimentConfig smallConfig() {
  ExperimentConfig config;
  config.systemSize = 60;
  config.broadcastRounds = 12;
  config.broadcastProbability = 0.05;
  config.seed = 7;
  return config;
}

void expectTable1(const ExperimentResult& result) {
  EXPECT_EQ(result.report.integrityViolations, 0u);
  EXPECT_EQ(result.report.orderViolations, 0u);
  EXPECT_EQ(result.report.validityViolations, 0u);
  EXPECT_EQ(result.report.holes, 0u);
  EXPECT_GT(result.report.broadcasts, 0u);
  EXPECT_GT(result.report.deliveries, 0u);
}

TEST(ExperimentIntegration, GlobalClockIdealNetwork) {
  auto config = smallConfig();
  config.clockMode = ClockMode::Global;
  const auto result = runExperiment(config);
  expectTable1(result);
  // Agreement means everyone delivered everything: deliveries = events * n.
  EXPECT_EQ(result.report.deliveries,
            result.report.eventsMeasured * config.systemSize);
}

TEST(ExperimentIntegration, LogicalClockIdealNetwork) {
  auto config = smallConfig();
  config.clockMode = ClockMode::Logical;
  const auto result = runExperiment(config);
  expectTable1(result);
}

TEST(ExperimentIntegration, GlobalClockWithMessageLoss) {
  auto config = smallConfig();
  config.messageLossRate = 0.10;
  const auto result = runExperiment(config);
  expectTable1(result);
}

TEST(ExperimentIntegration, GlobalClockWithChurn) {
  auto config = smallConfig();
  config.churnRate = 0.05;
  const auto result = runExperiment(config);
  EXPECT_EQ(result.report.integrityViolations, 0u);
  EXPECT_EQ(result.report.orderViolations, 0u);
  EXPECT_EQ(result.report.holes, 0u);
}

TEST(ExperimentIntegration, CyclonPss) {
  auto config = smallConfig();
  config.pss = PssKind::Cyclon;
  const auto result = runExperiment(config);
  expectTable1(result);
}

TEST(ExperimentIntegration, BaselineDeliversEverythingUnordered) {
  auto config = smallConfig();
  config.protocol = Protocol::BallsBinsBaseline;
  const auto result = runExperiment(config);
  EXPECT_EQ(result.report.integrityViolations, 0u);
  EXPECT_EQ(result.report.holes, 0u);
  EXPECT_GT(result.report.deliveries, 0u);
}

TEST(ExperimentIntegration, DeterministicInSeedWithCyclon) {
  // The real PSS threads extra randomness through shuffles; determinism
  // must survive it.
  auto config = smallConfig();
  config.pss = PssKind::Cyclon;
  config.churnRate = 0.02;
  const auto a = runExperiment(config);
  const auto b = runExperiment(config);
  EXPECT_EQ(a.report.broadcasts, b.report.broadcasts);
  EXPECT_EQ(a.report.deliveries, b.report.deliveries);
  EXPECT_EQ(a.network.sent, b.network.sent);
}

TEST(ExperimentIntegration, DeterministicInSeedWithGenericPss) {
  auto config = smallConfig();
  config.pss = PssKind::Generic;
  const auto a = runExperiment(config);
  const auto b = runExperiment(config);
  EXPECT_EQ(a.report.deliveries, b.report.deliveries);
  EXPECT_EQ(a.network.sent, b.network.sent);
}

TEST(ExperimentIntegration, DifferentSeedsProduceDifferentRuns) {
  auto config = smallConfig();
  config.seed = 1;
  const auto a = runExperiment(config);
  config.seed = 2;
  const auto b = runExperiment(config);
  // Workload draws differ, so the traffic pattern must differ.
  EXPECT_NE(a.network.sent, b.network.sent);
}

TEST(ExperimentIntegration, DeterministicInSeed) {
  const auto a = runExperiment(smallConfig());
  const auto b = runExperiment(smallConfig());
  EXPECT_EQ(a.report.broadcasts, b.report.broadcasts);
  EXPECT_EQ(a.report.deliveries, b.report.deliveries);
  EXPECT_EQ(a.network.sent, b.network.sent);
  EXPECT_EQ(a.report.delays.total(), b.report.delays.total());
  if (!a.report.delays.empty() && !b.report.delays.empty()) {
    EXPECT_EQ(a.report.delays.percentile(0.5), b.report.delays.percentile(0.5));
  }
}

}  // namespace
}  // namespace epto::workload

// Tests of the SimCluster harness itself: phase schedule, churn wiring,
// per-protocol behaviour and the introspection hooks used by examples.
#include <gtest/gtest.h>

#include "util/empirical_distribution.h"
#include "workload/cluster.h"

namespace epto::workload {
namespace {

ExperimentConfig tinyConfig() {
  ExperimentConfig config;
  config.systemSize = 40;
  config.broadcastRounds = 8;
  config.seed = 5;
  return config;
}

TEST(SimCluster, SpawnsInitialMembership) {
  SimCluster cluster(tinyConfig());
  EXPECT_EQ(cluster.liveNodeCount(), 40u);
  EXPECT_EQ(cluster.membership().size(), 40u);
}

TEST(SimCluster, BroadcastWindowMatchesConfig) {
  auto config = tinyConfig();
  config.roundInterval = 100;
  config.warmupRounds = 3;
  SimCluster cluster(config);
  EXPECT_EQ(cluster.broadcastWindowEnd(), (3 + 8) * 100u);
}

TEST(SimCluster, ChurnKeepsSystemSizeConstant) {
  auto config = tinyConfig();
  config.churnRate = 0.1;
  SimCluster cluster(config);
  cluster.run();
  EXPECT_EQ(cluster.membership().size(), 40u);
  // Churned-out ids are gone, replacements have fresh ids.
  const auto result = cluster.result();
  EXPECT_EQ(result.finalSystemSize, 40u);
}

TEST(SimCluster, StepwiseRunExposesPendingEvents) {
  auto config = tinyConfig();
  config.warmupRounds = 0;
  SimCluster cluster(config);
  // Run into the middle of the broadcast window: some events must be
  // known-but-undelivered at some process (§8.4 surface).
  cluster.simulator().runUntil(config.roundInterval * 6);
  std::size_t pendingTotal = 0;
  for (const ProcessId id : cluster.membership().aliveIds()) {
    pendingTotal += cluster.pendingEventsOf(id).size();
  }
  EXPECT_GT(pendingTotal, 0u);
  cluster.run();
  EXPECT_TRUE(cluster.result().report.allPropertiesHold());
}

TEST(SimCluster, SequencerProtocolRunsCleanOnReliableNetwork) {
  auto config = tinyConfig();
  config.protocol = Protocol::FixedSequencer;
  config.messageLossRate = 0.0;
  const auto result = runExperiment(config);
  EXPECT_EQ(result.report.integrityViolations, 0u);
  EXPECT_EQ(result.report.holes, 0u);
  EXPECT_EQ(result.report.validityViolations, 0u);
  EXPECT_GT(result.report.deliveries, 0u);
}

TEST(SimCluster, SequencerStallsUnderLossWhereEptoDoesNot) {
  auto config = tinyConfig();
  config.messageLossRate = 0.05;
  config.broadcastRounds = 10;

  config.protocol = Protocol::FixedSequencer;
  const auto sequencer = runExperiment(config);
  config.protocol = Protocol::Epto;
  const auto epto = runExperiment(config);

  EXPECT_EQ(epto.report.holes, 0u);
  EXPECT_GT(sequencer.report.holes, 0u);  // one lost stamp stalls a member
}

TEST(SimCluster, SequencerRejectsChurn) {
  auto config = tinyConfig();
  config.protocol = Protocol::FixedSequencer;
  config.churnRate = 0.05;
  EXPECT_THROW(SimCluster{config}, util::ContractViolation);
}

TEST(SimCluster, PbcastCleanWhenSynchronized) {
  auto config = tinyConfig();
  config.protocol = Protocol::Pbcast;
  config.roundJitter = 0.01;
  const auto result = runExperiment(config);
  EXPECT_TRUE(result.report.allPropertiesHold());
  EXPECT_EQ(result.report.deliveries,
            result.report.eventsMeasured * config.systemSize);
}

TEST(SimCluster, GenericPssDeliversEverything) {
  auto config = tinyConfig();
  config.pss = PssKind::Generic;
  const auto result = runExperiment(config);
  EXPECT_TRUE(result.report.allPropertiesHold());
}

TEST(SimCluster, FanoutAndTtlOverridesAreHonoured) {
  auto config = tinyConfig();
  config.fanoutOverride = 5;
  config.ttlOverride = 9;
  const auto result = runExperiment(config);
  EXPECT_EQ(result.fanoutUsed, 5u);
  EXPECT_EQ(result.ttlUsed, 9u);
}

TEST(SimCluster, RejectsDegenerateConfigs) {
  auto config = tinyConfig();
  config.systemSize = 1;
  EXPECT_THROW(SimCluster{config}, util::ContractViolation);
  config = tinyConfig();
  config.broadcastProbability = 1.5;
  EXPECT_THROW(SimCluster{config}, util::ContractViolation);
  config = tinyConfig();
  config.roundInterval = 0;
  EXPECT_THROW(SimCluster{config}, util::ContractViolation);
}

TEST(SimCluster, NetworkStatsAccountForEveryTransmission) {
  auto config = tinyConfig();
  config.messageLossRate = 0.2;
  SimCluster cluster(config);
  cluster.run();
  const auto stats = cluster.result().network;
  EXPECT_EQ(stats.sent, stats.dropped + stats.delivered);
  EXPECT_GT(stats.dropped, 0u);
}

TEST(SimCluster, PausedProcessesCatchUpWithoutHoles) {
  // §5.3/§5.4: a stalled minority resumes and recovers the full ordered
  // sequence; the well-behaving majority never notices. The stall begins
  // with the broadcast window (startRound = 0) so the paused processes
  // never broadcast just before stalling — that scenario is the §5.3
  // degenerate case tested separately below.
  auto config = tinyConfig();
  config.broadcastRounds = 10;
  config.pause.fraction = 0.25;
  config.pause.startRound = 0;
  config.pause.durationRounds = 20;
  const auto result = runExperiment(config);
  EXPECT_TRUE(result.report.allPropertiesHold());
  EXPECT_EQ(result.report.deliveries,
            result.report.eventsMeasured * config.systemSize);
  // The paused quarter's deliveries form a long tail beyond the unpaused
  // p50. (The tail is much shorter than the pause itself: buffered copies
  // carry their merged ttl, so a resumed process needs only a couple of
  // rounds — not a fresh TTL horizon — to stabilize its backlog.)
  EXPECT_GT(result.report.delays.percentile(0.99),
            result.report.delays.percentile(0.50) + 6 * config.roundInterval);
}

TEST(SimCluster, StalledBroadcasterEventsAreTheSection53DegenerateCase) {
  // Paper §5.3, first degenerate case: a process that stalls right after
  // broadcasting injects its event so late that "newer events will
  // already have been delivered by other processes, precluding the
  // delivery of p's events". Those per-event losses are holes — safety
  // (order, integrity) must still hold everywhere.
  auto config = tinyConfig();
  config.broadcastRounds = 10;
  config.pause.fraction = 0.25;
  config.pause.startRound = 2;  // stall begins mid-window: stale broadcasts
  config.pause.durationRounds = 20;
  const auto result = runExperiment(config);
  EXPECT_EQ(result.report.orderViolations, 0u);
  EXPECT_EQ(result.report.integrityViolations, 0u);
  EXPECT_GT(result.report.holes, 0u);  // the inherent §5.3 loss
}

TEST(SimCluster, PausingEveryoneIsRejected) {
  auto config = tinyConfig();
  config.pause.fraction = 1.0;
  config.pause.durationRounds = 5;
  EXPECT_THROW(SimCluster{config}, util::ContractViolation);
}

TEST(SimCluster, TaggedDeliveriesSurfaceLateEvents) {
  // Lateness needs copies that arrive AFTER a later-keyed event was
  // already delivered: starve TTL (fast deliveries) while giving the
  // network a latency tail several times the delivery horizon.
  const auto slowNetwork = util::uniformDistribution(10.0, 2500.0);
  auto config = tinyConfig();
  config.latency = &slowNetwork;
  config.ttlOverride = 3;
  config.tagOutOfOrder = true;
  config.broadcastRounds = 12;
  const auto result = runExperiment(config);
  EXPECT_EQ(result.report.integrityViolations, 0u);
  EXPECT_EQ(result.report.orderViolations, 0u);
  // Tagging turns would-be silent drops into explicit out-of-order
  // deliveries (§8.2).
  EXPECT_GT(result.report.taggedDeliveries, 0u);
}

}  // namespace
}  // namespace epto::workload

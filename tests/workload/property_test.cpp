// Property-based sweeps: the Table 1 deterministic-safety properties
// (integrity, total order, validity) must hold for EVERY combination of
// seed, clock mode and adversity — they are invariants, not statistics.
// Probabilistic agreement is asserted as "zero holes" at the theoretical
// parameters, matching the paper's §6 observation ("in all the
// experiments that follow, we have not observed a single hole").
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "workload/experiment.h"

namespace epto::workload {
namespace {

// ---------------------------------------------------------------------------
// Sweep 1: seeds x clock modes on a clean network.
// ---------------------------------------------------------------------------
class CleanNetworkSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, ClockMode>> {};

TEST_P(CleanNetworkSweep, Table1Holds) {
  const auto [seed, mode] = GetParam();
  ExperimentConfig config;
  config.systemSize = 50;
  config.clockMode = mode;
  config.broadcastRounds = 10;
  config.seed = seed;
  const auto result = runExperiment(config);
  EXPECT_EQ(result.report.integrityViolations, 0u);
  EXPECT_EQ(result.report.orderViolations, 0u);
  EXPECT_EQ(result.report.validityViolations, 0u);
  EXPECT_EQ(result.report.holes, 0u);
  EXPECT_GT(result.report.eventsMeasured, 0u);
  // Agreement at theoretical parameters: everyone got everything.
  EXPECT_EQ(result.report.deliveries,
            result.report.eventsMeasured * config.systemSize);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndClocks, CleanNetworkSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8, 13, 21, 34),
                       ::testing::Values(ClockMode::Global, ClockMode::Logical)),
    [](const auto& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) == ClockMode::Global ? "_global" : "_logical");
    });

// ---------------------------------------------------------------------------
// Sweep 2: adversity grid — loss x churn, global clock.
// Safety must hold unconditionally; holes must stay zero at the derived
// parameters for these (paper-scale) adversity levels.
// ---------------------------------------------------------------------------
class AdversitySweep
    : public ::testing::TestWithParam<std::tuple<double, double, std::uint64_t>> {};

TEST_P(AdversitySweep, SafetyUnconditionalAgreementAtTheoreticalParams) {
  const auto [loss, churn, seed] = GetParam();
  ExperimentConfig config;
  config.systemSize = 50;
  config.messageLossRate = loss;
  config.churnRate = churn;
  config.broadcastRounds = 10;
  config.seed = seed;
  // Lemma 7: compensate the fanout for the adversity, and give the
  // hole-probability bound headroom (small n makes c=1.25 marginal when
  // churn and loss combine).
  config.compensateFanout = true;
  config.c = 2.0;
  const auto result = runExperiment(config);
  EXPECT_EQ(result.report.integrityViolations, 0u);
  EXPECT_EQ(result.report.orderViolations, 0u);
  EXPECT_EQ(result.report.holes, 0u);
  if (churn == 0.0) {
    EXPECT_EQ(result.report.validityViolations, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    LossChurnGrid, AdversitySweep,
    ::testing::Combine(::testing::Values(0.0, 0.05, 0.10),
                       ::testing::Values(0.0, 0.02, 0.05),
                       ::testing::Values(11, 22)),
    [](const auto& info) {
      return "loss" + std::to_string(static_cast<int>(std::get<0>(info.param) * 100)) +
             "_churn" + std::to_string(static_cast<int>(std::get<1>(info.param) * 100)) +
             "_seed" + std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------------
// Sweep 3: drift — large per-round jitter and systematic speed spread
// (paper §5.3: "we also tested large random drifts numerically, and EpTO
// performed very well").
// ---------------------------------------------------------------------------
class DriftSweep : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(DriftSweep, SafetyHoldsUnderDesynchronizedRounds) {
  const auto [jitter, spread] = GetParam();
  ExperimentConfig config;
  config.systemSize = 50;
  config.roundJitter = jitter;
  config.processSpeedSpread = spread;
  config.clockMode = ClockMode::Logical;  // the harder mode
  config.broadcastRounds = 10;
  config.seed = 31;
  // Lemma 5 headroom for the systematic spread.
  if (spread > 0.0) {
    const double ratio = (1.0 + spread) / (1.0 - spread);
    config.ttlOverride = static_cast<std::uint32_t>(
        std::ceil(2.0 * 2.25 * std::log2(50.0) * ratio));
  }
  const auto result = runExperiment(config);
  EXPECT_EQ(result.report.integrityViolations, 0u);
  EXPECT_EQ(result.report.orderViolations, 0u);
  EXPECT_EQ(result.report.holes, 0u);
  EXPECT_EQ(result.report.validityViolations, 0u);
}

INSTANTIATE_TEST_SUITE_P(JitterSpreadGrid, DriftSweep,
                         ::testing::Combine(::testing::Values(0.0, 0.1, 0.3),
                                            ::testing::Values(0.0, 0.15)),
                         [](const auto& info) {
                           return "jitter" +
                                  std::to_string(static_cast<int>(
                                      std::get<0>(info.param) * 100)) +
                                  "_spread" +
                                  std::to_string(static_cast<int>(
                                      std::get<1>(info.param) * 100));
                         });

// ---------------------------------------------------------------------------
// Sweep 4: under-provisioned TTL. Safety must STILL hold (holes are
// allowed, order violations are not) — the protocol degrades by dropping,
// never by disordering. This is the deterministic-safety/probabilistic-
// liveness split that distinguishes EpTO from PABCast (paper §7).
// ---------------------------------------------------------------------------
class StarvedTtlSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint64_t>> {};

TEST_P(StarvedTtlSweep, SafetyHoldsEvenWhenAgreementFails) {
  const auto [ttl, seed] = GetParam();
  ExperimentConfig config;
  config.systemSize = 50;
  config.ttlOverride = ttl;
  config.fanoutOverride = 2;  // also starve the fanout
  config.broadcastRounds = 10;
  config.seed = seed;
  const auto result = runExperiment(config);
  EXPECT_EQ(result.report.integrityViolations, 0u);
  EXPECT_EQ(result.report.orderViolations, 0u);
  // holes may or may not appear — no assertion on them.
}

INSTANTIATE_TEST_SUITE_P(TtlGrid, StarvedTtlSweep,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(7, 77, 777)),
                         [](const auto& info) {
                           return "ttl" + std::to_string(std::get<0>(info.param)) +
                                  "_seed" + std::to_string(std::get<1>(info.param));
                         });

// ---------------------------------------------------------------------------
// Sweep 5: tagged delivery (§8.2) — tagging must never break integrity
// (no event reaches the application twice in any combination of tags).
// ---------------------------------------------------------------------------
class TaggedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TaggedSweep, TaggingPreservesIntegrity) {
  ExperimentConfig config;
  config.systemSize = 50;
  config.ttlOverride = 2;  // force drops so tagging has work to do
  config.fanoutOverride = 3;
  config.tagOutOfOrder = true;
  config.broadcastRounds = 10;
  config.seed = GetParam();
  const auto result = runExperiment(config);
  EXPECT_EQ(result.report.integrityViolations, 0u);
  EXPECT_EQ(result.report.orderViolations, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TaggedSweep, ::testing::Values(3, 14, 159, 2653),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Sweep 6: Cyclon PSS under churn — the Fig. 9 regime as a test.
// ---------------------------------------------------------------------------
class CyclonSweep : public ::testing::TestWithParam<double> {};

TEST_P(CyclonSweep, SafetyHoldsOnARealOverlay) {
  ExperimentConfig config;
  config.systemSize = 60;
  config.pss = PssKind::Cyclon;
  config.churnRate = GetParam();
  config.broadcastRounds = 10;
  config.seed = 41;
  const auto result = runExperiment(config);
  EXPECT_EQ(result.report.integrityViolations, 0u);
  EXPECT_EQ(result.report.orderViolations, 0u);
  if (GetParam() == 0.0) {
    EXPECT_EQ(result.report.holes, 0u);
    EXPECT_EQ(result.report.validityViolations, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(ChurnLevels, CyclonSweep, ::testing::Values(0.0, 0.02, 0.05),
                         [](const auto& info) {
                           return "churn" +
                                  std::to_string(static_cast<int>(info.param * 100));
                         });

}  // namespace
}  // namespace epto::workload

// runExperiments (parallel sweep driver): the job count must never
// change results — only wall-clock time. Each experiment owns all its
// mutable state, so running the same config list with 1 worker and with
// many workers must produce field-identical results in submission order,
// and a worker's exception must surface on the calling thread.
#include <gtest/gtest.h>

#include <vector>

#include "util/ensure.h"
#include "workload/sweep.h"

namespace epto::workload {
namespace {

ExperimentConfig smallConfig(std::uint64_t seed, std::size_t systemSize) {
  ExperimentConfig config;
  config.systemSize = systemSize;
  config.broadcastProbability = 0.05;
  config.broadcastRounds = 6;
  config.seed = seed;
  return config;
}

void expectSameResult(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.report.deliveries, b.report.deliveries);
  EXPECT_EQ(a.report.eventsMeasured, b.report.eventsMeasured);
  EXPECT_EQ(a.report.holes, b.report.holes);
  EXPECT_EQ(a.report.orderViolations, b.report.orderViolations);
  EXPECT_EQ(a.report.integrityViolations, b.report.integrityViolations);
  EXPECT_EQ(a.report.validityViolations, b.report.validityViolations);
  EXPECT_EQ(a.network.sent, b.network.sent);
  EXPECT_EQ(a.fanoutUsed, b.fanoutUsed);
  EXPECT_EQ(a.ttlUsed, b.ttlUsed);
  EXPECT_EQ(a.roundsExecuted, b.roundsExecuted);
  EXPECT_EQ(a.eventsRelayed, b.eventsRelayed);
  EXPECT_EQ(a.maxBallSize, b.maxBallSize);
  EXPECT_EQ(a.simulatedTicks, b.simulatedTicks);
  EXPECT_EQ(a.finalSystemSize, b.finalSystemSize);
  EXPECT_EQ(a.report.delays.total(), b.report.delays.total());
  EXPECT_EQ(a.report.delays.percentile(0.50), b.report.delays.percentile(0.50));
  EXPECT_EQ(a.report.delays.percentile(0.99), b.report.delays.percentile(0.99));
}

TEST(SweepTest, JobCountDoesNotChangeResults) {
  std::vector<ExperimentConfig> configs;
  for (std::uint64_t seed : {1ull, 7ull, 42ull, 99ull}) {
    configs.push_back(smallConfig(seed, 40 + 10 * (seed % 4)));
  }

  const auto sequential = runExperiments(configs, 1);
  const auto parallel = runExperiments(configs, 4);

  ASSERT_EQ(sequential.size(), configs.size());
  ASSERT_EQ(parallel.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    SCOPED_TRACE("config " + std::to_string(i));
    expectSameResult(sequential[i], parallel[i]);
  }
}

TEST(SweepTest, ResultsArriveInSubmissionOrder) {
  // Distinct system sizes make the pairing observable: results[i] must
  // belong to configs[i] even when workers finish out of order.
  std::vector<ExperimentConfig> configs;
  const std::vector<std::size_t> sizes{30, 80, 45, 60, 35, 70};
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    configs.push_back(smallConfig(/*seed=*/100 + i, sizes[i]));
  }
  const auto results = runExperiments(configs, 3);
  ASSERT_EQ(results.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    EXPECT_EQ(results[i].finalSystemSize, sizes[i]) << "result " << i;
  }
}

TEST(SweepTest, MoreJobsThanConfigsIsFine) {
  std::vector<ExperimentConfig> configs{smallConfig(5, 40), smallConfig(6, 40)};
  const auto results = runExperiments(configs, 16);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_GT(results[0].report.deliveries, 0u);
  EXPECT_GT(results[1].report.deliveries, 0u);
}

TEST(SweepTest, WorkerExceptionPropagatesToCaller) {
  std::vector<ExperimentConfig> configs{smallConfig(1, 40), smallConfig(2, 40)};
  configs[1].fanoutOverride = 0;  // violates the fanout >= 1 contract
  EXPECT_THROW({ auto results = runExperiments(configs, 2); (void)results; },
               util::ContractViolation);
  EXPECT_THROW({ auto results = runExperiments(configs, 1); (void)results; },
               util::ContractViolation);
}

}  // namespace
}  // namespace epto::workload

// End-to-end coverage of DESIGN.md §15 in the simulated deployment:
// speculative delivery resolving cleanly under loss, the committed order
// staying untouched by speculation, QoS classes gating the channel, and
// the adaptive controller retuning through a mid-run loss ramp.
#include <gtest/gtest.h>

#include "fault/fault_plan.h"
#include "workload/experiment.h"

namespace epto::workload {
namespace {

ExperimentConfig baseConfig() {
  ExperimentConfig config;
  config.systemSize = 40;
  config.broadcastProbability = 0.05;
  config.broadcastRounds = 15;  // window [0, 1875) at delta = 125
  config.seed = 7;
  return config;
}

TEST(AdaptiveSim, SpeculationUnderLossResolvesEveryEmission) {
  ExperimentConfig config = baseConfig();
  config.messageLossRate = 0.05;
  config.speculation.enabled = true;
  config.speculation.confidenceThreshold = 0.5;
  const ExperimentResult result = runExperiment(config);

  // The channel actually fired, and the books balance: at drain end no
  // speculation is left unresolved (the window flushes with the buffer).
  EXPECT_GT(result.speculated, 0u);
  EXPECT_GT(result.specConfirmed, 0u);
  EXPECT_EQ(result.specConfirmed + result.specRevoked, result.speculated);
  EXPECT_EQ(result.speculativeDelays.size(), result.speculated);
  // Speculation is an extra channel, not a reordering of the committed
  // one — Table 1 must still hold in full.
  EXPECT_TRUE(result.report.allPropertiesHold())
      << "order=" << result.report.orderViolations
      << " holes=" << result.report.holes;
}

TEST(AdaptiveSim, CommittedOutputIdenticalWithSpeculationOnAndOff) {
  // The tentpole's identity requirement, at sim scale: the committed
  // delivery stream (counts, verdicts and the full delay distribution)
  // must not move when the speculative channel is switched on.
  ExperimentConfig config = baseConfig();
  config.messageLossRate = 0.05;
  const ExperimentResult off = runExperiment(config);
  config.speculation.enabled = true;
  config.speculation.confidenceThreshold = 0.5;
  const ExperimentResult on = runExperiment(config);

  EXPECT_EQ(off.report.broadcasts, on.report.broadcasts);
  EXPECT_EQ(off.report.deliveries, on.report.deliveries);
  EXPECT_EQ(off.report.eventsMeasured, on.report.eventsMeasured);
  EXPECT_EQ(off.report.orderViolations, on.report.orderViolations);
  EXPECT_EQ(off.report.holes, on.report.holes);
  EXPECT_EQ(off.report.delays.total(), on.report.delays.total());
  if (!off.report.delays.empty()) {
    for (const double q : {0.1, 0.5, 0.9, 1.0}) {
      EXPECT_EQ(off.report.delays.percentile(q), on.report.delays.percentile(q))
          << "q=" << q;
    }
  }
  EXPECT_EQ(off.roundsExecuted, on.roundsExecuted);
  EXPECT_EQ(off.eventsRelayed, on.eventsRelayed);
  // And the speculative run really did speculate — the identity above is
  // not vacuous.
  EXPECT_EQ(off.speculated, 0u);
  EXPECT_GT(on.speculated, 0u);
}

TEST(AdaptiveSim, SafeOnlyWorkloadNeverSpeculates) {
  // QoS threading: with the channel armed but every broadcast tagged
  // Safe, nothing may cross the speculative channel.
  ExperimentConfig config = baseConfig();
  config.speculation.enabled = true;
  config.speculation.confidenceThreshold = 0.5;
  config.speculation.fastFraction = 0.0;
  const ExperimentResult result = runExperiment(config);

  EXPECT_EQ(result.speculated, 0u);
  EXPECT_TRUE(result.speculativeDelays.empty());
  EXPECT_TRUE(result.report.allPropertiesHold());
}

TEST(AdaptiveSim, ControllerRetunesThroughALossRampAndHoldsTable1) {
  // Graceful degradation: loss appears mid-window; adaptive nodes must
  // observe it, step their knobs up inside the envelope and still land
  // every Table 1 verdict.
  fault::FaultPlan plan;
  plan.burstLoss(400, 1800, 0.1);  // ~11 of the 15 broadcast rounds

  ExperimentConfig config = baseConfig();
  config.faultPlan = &plan;
  config.adaptive.enabled = true;
  config.adaptive.worstCaseLossRate = 0.15;
  const ExperimentResult result = runExperiment(config);

  EXPECT_GT(result.faultStats.burstDrops, 0u);  // the ramp was real
  EXPECT_GT(result.retunes, 0u);
  // Surviving controllers sit above the healthy floor they started at.
  EXPECT_GT(result.finalTtl, result.ttlUsed);
  EXPECT_TRUE(result.report.allPropertiesHold())
      << "order=" << result.report.orderViolations
      << " holes=" << result.report.holes;
}

TEST(AdaptiveSim, AdaptiveRunIsDeterministicInTheSeed) {
  fault::FaultPlan plan;
  plan.burstLoss(400, 1800, 0.1);

  ExperimentConfig config = baseConfig();
  config.faultPlan = &plan;
  config.adaptive.enabled = true;
  config.speculation.enabled = true;
  config.speculation.confidenceThreshold = 0.5;
  config.speculation.fastFraction = 0.5;
  const ExperimentResult a = runExperiment(config);
  const ExperimentResult b = runExperiment(config);

  EXPECT_EQ(a.report.broadcasts, b.report.broadcasts);
  EXPECT_EQ(a.report.deliveries, b.report.deliveries);
  EXPECT_EQ(a.speculated, b.speculated);
  EXPECT_EQ(a.specConfirmed, b.specConfirmed);
  EXPECT_EQ(a.specRevoked, b.specRevoked);
  EXPECT_EQ(a.retunes, b.retunes);
  EXPECT_EQ(a.finalTtl, b.finalTtl);
  EXPECT_EQ(a.finalFanout, b.finalFanout);
  EXPECT_EQ(a.speculativeDelays, b.speculativeDelays);
}

}  // namespace
}  // namespace epto::workload

// Latency decomposition at the sim level: the three phases recorded for
// every ordered delivery must sum exactly to the end-to-end latency, and
// the histograms must surface in ExperimentResult::metrics.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/latency.h"
#include "util/mutex.h"
#include "workload/cluster.h"

namespace epto::workload {
namespace {

ExperimentConfig tinyConfig() {
  ExperimentConfig config;
  config.systemSize = 40;
  config.broadcastRounds = 8;
  config.seed = 5;
  return config;
}

TEST(LatencyDecomposition, PhasesSumExactlyToEndToEndPerDelivery) {
  SimCluster cluster(tinyConfig());

  struct Seen {
    ProcessId node;
    EventId id;
    obs::LatencySample sample;
  };
  util::Mutex mutex;
  std::vector<Seen> samples;
  cluster.latencyRecorder().setHook(
      [&](ProcessId node, const EventId& id, const obs::LatencySample& sample) {
        const util::MutexLock lock(mutex);
        samples.push_back(Seen{node, id, sample});
      });

  cluster.run();
  const auto result = cluster.result();
  ASSERT_TRUE(result.report.allPropertiesHold());
  ASSERT_GT(samples.size(), 0u);

  // One sample per ordered delivery, cluster-wide.
  EXPECT_EQ(samples.size(), result.report.deliveries);
  EXPECT_EQ(cluster.latencyRecorder().observed(), result.report.deliveries);

  for (const Seen& seen : samples) {
    // The construction guarantee: no residue, no negative phase.
    EXPECT_EQ(seen.sample.dissemination + seen.sample.stabilityWait +
                  seen.sample.orderingWait,
              seen.sample.endToEnd)
        << "node " << seen.node << " event " << seen.id.source << ":"
        << seen.id.sequence;
  }

  // The stability wait dominates on a healthy network: EpTO pays the TTL
  // horizon (Alg. 2) on every delivery, while dissemination to the first
  // copy takes O(log n) rounds.
  std::uint64_t totalStability = 0;
  std::uint64_t totalEndToEnd = 0;
  for (const Seen& seen : samples) {
    totalStability += seen.sample.stabilityWait;
    totalEndToEnd += seen.sample.endToEnd;
  }
  EXPECT_GT(totalStability * 2, totalEndToEnd);
}

TEST(LatencyDecomposition, HistogramsSurfaceInExperimentMetrics) {
  auto config = tinyConfig();
  const auto result = runExperiment(config);
  ASSERT_TRUE(result.report.allPropertiesHold());

  const std::vector<std::string> wanted{
      "epto_latency_end_to_end", "epto_latency_dissemination",
      "epto_latency_stability_wait", "epto_latency_ordering_wait"};
  std::uint64_t endToEndCount = 0;
  std::size_t found = 0;
  for (const auto& sample : result.metrics) {
    for (const auto& name : wanted) {
      if (sample.name != name) continue;
      ++found;
      EXPECT_EQ(sample.kind, obs::Kind::Histogram) << name;
      EXPECT_EQ(sample.count, result.report.deliveries) << name;
      if (name == "epto_latency_end_to_end") endToEndCount = sample.count;
    }
  }
  EXPECT_EQ(found, wanted.size());
  EXPECT_GT(endToEndCount, 0u);
}

TEST(LatencyDecomposition, DroppedTraceCounterExported) {
  // The cluster publishes the global tracer's dropped count so truncated
  // traces are visible in the same scrape as everything else.
  SimCluster cluster(tinyConfig());
  cluster.run();
  (void)cluster.result();
  bool found = false;
  for (const auto& sample : cluster.metricsRegistry().snapshot()) {
    if (sample.name == "epto_trace_dropped_total") found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace epto::workload

// Byzantine runs of the simulated deployment: honest processes must keep
// every Table 1 property while f Byzantine members flood junk, equivocate
// timestamps, forge lineage, replay stale balls and poison PSS exchanges
// (ISSUE 7 tentpole). Also pins the contract checks around the adversary
// configuration and determinism of an attacked run.
#include <gtest/gtest.h>

#include "fault/adversary.h"
#include "util/ensure.h"
#include "workload/experiment.h"

namespace epto::workload {
namespace {

ExperimentConfig attackedConfig(const fault::AdversaryPlan& plan) {
  ExperimentConfig config;
  config.systemSize = 50;
  config.broadcastProbability = 0.05;
  config.broadcastRounds = 15;
  config.adversaryPlan = &plan;
  config.seed = 11;
  return config;
}

TEST(ByzantineSim, HonestNodesKeepAllPropertiesUnderFullAttackWithBasalt) {
  fault::AdversaryPlan plan;
  plan.fraction(0.10).seed(3);

  ExperimentConfig config = attackedConfig(plan);
  config.pss = PssKind::Basalt;
  const ExperimentResult result = runExperiment(config);

  EXPECT_EQ(result.byzantineCount, 5u);
  // Every attack behaviour actually ran.
  EXPECT_GT(result.adversaryStats.floodBallsSent, 0u);
  EXPECT_GT(result.adversaryStats.junkEventsSent, 0u);
  EXPECT_GT(result.adversaryStats.equivocations, 0u);
  EXPECT_GT(result.adversaryStats.lineageForgeries, 0u);
  EXPECT_GT(result.adversaryStats.pssPoisonSent, 0u);
  // The guard caught provable forgeries at honest ingress.
  EXPECT_GT(result.ingressStats.ballsRejectedLineage, 0u);
  EXPECT_GT(result.ingressStats.eventsFilteredEquivocation, 0u);
  // Junk authored by attackers never reaches the tracker's books but is
  // measured as filtered deliveries.
  EXPECT_GT(result.adversaryDeliveriesFiltered, 0u);
  // The honest majority still agrees on one total order with no holes.
  EXPECT_TRUE(result.report.allPropertiesHold())
      << "order=" << result.report.orderViolations
      << " integrity=" << result.report.integrityViolations
      << " validity=" << result.report.validityViolations
      << " holes=" << result.report.holes;
}

TEST(ByzantineSim, BasaltResistsViewPoisoningBetterThanCyclon) {
  fault::AdversaryPlan plan;
  plan.fraction(0.10).seed(5);

  ExperimentConfig cyclonConfig = attackedConfig(plan);
  cyclonConfig.pss = PssKind::Cyclon;
  const ExperimentResult cyclon = runExperiment(cyclonConfig);

  ExperimentConfig basaltConfig = attackedConfig(plan);
  basaltConfig.pss = PssKind::Basalt;
  const ExperimentResult basalt = runExperiment(basaltConfig);

  EXPECT_GT(cyclon.viewPoisonFraction, 0.0);
  EXPECT_LT(basalt.viewPoisonFraction, cyclon.viewPoisonFraction)
      << "cyclon=" << cyclon.viewPoisonFraction
      << " basalt=" << basalt.viewPoisonFraction;
}

TEST(ByzantineSim, OracleViewPoisoningReflectsMembershipShare) {
  // The oracle PSS samples the raw membership, so its poison fraction is
  // exactly the Byzantine share of the other processes.
  fault::AdversaryPlan plan;
  plan.members({1, 2, 3, 4, 5});

  ExperimentConfig config = attackedConfig(plan);
  config.pss = PssKind::UniformOracle;
  const ExperimentResult result = runExperiment(config);
  EXPECT_NEAR(result.viewPoisonFraction, 5.0 / 49.0, 1e-9);
}

TEST(ByzantineSim, ConcentratedFloodIsShedByTheRateCap) {
  fault::AdversaryPlan plan;
  plan.members({0, 1})
      .behaviors(fault::AdversaryBehaviors{.poisonPss = false,
                                           .equivocate = false,
                                           .forgeLineage = false,
                                           .replayStale = false,
                                           .flood = true})
      .floodBallsPerRound(40)
      .floodEventsPerBall(4);

  ExperimentConfig config = attackedConfig(plan);
  config.ingressRateCap = 8;
  const ExperimentResult result = runExperiment(config);

  EXPECT_GT(result.ingressStats.ballsRejectedRate, 0u);
  EXPECT_TRUE(result.report.allPropertiesHold());
}

TEST(ByzantineSim, HardenedIngressIsInertOnAnHonestRun) {
  ExperimentConfig config;
  config.systemSize = 30;
  config.broadcastProbability = 0.05;
  config.broadcastRounds = 10;
  config.hardenIngress = true;
  config.seed = 13;
  const ExperimentResult result = runExperiment(config);

  // Honest traffic passes untouched: everything inspected, nothing cut.
  EXPECT_GT(result.ingressStats.ballsInspected, 0u);
  EXPECT_EQ(result.ingressStats.ballsRejected(), 0u);
  EXPECT_EQ(result.ingressStats.eventsFiltered(), 0u);
  EXPECT_TRUE(result.report.allPropertiesHold());
}

TEST(ByzantineSim, AdversaryRequiresCompatibleConfiguration) {
  fault::AdversaryPlan plan;
  plan.fraction(0.1);

  ExperimentConfig baseline = attackedConfig(plan);
  baseline.protocol = Protocol::BallsBinsBaseline;
  EXPECT_THROW((void)runExperiment(baseline), util::ContractViolation);

  ExperimentConfig logical = attackedConfig(plan);
  logical.clockMode = ClockMode::Logical;
  EXPECT_THROW((void)runExperiment(logical), util::ContractViolation);

  ExperimentConfig churned = attackedConfig(plan);
  churned.churnRate = 0.02;
  EXPECT_THROW((void)runExperiment(churned), util::ContractViolation);
}

TEST(ByzantineSim, AttackedRunIsDeterministicInTheSeed) {
  fault::AdversaryPlan plan;
  plan.fraction(0.10).seed(7);

  ExperimentConfig config = attackedConfig(plan);
  config.pss = PssKind::Basalt;
  const ExperimentResult a = runExperiment(config);
  const ExperimentResult b = runExperiment(config);

  EXPECT_EQ(a.report.broadcasts, b.report.broadcasts);
  EXPECT_EQ(a.report.deliveries, b.report.deliveries);
  EXPECT_EQ(a.report.delays.total(), b.report.delays.total());
  EXPECT_EQ(a.roundsExecuted, b.roundsExecuted);
  EXPECT_EQ(a.adversaryStats.floodBallsSent, b.adversaryStats.floodBallsSent);
  EXPECT_EQ(a.adversaryStats.equivocations, b.adversaryStats.equivocations);
  EXPECT_EQ(a.adversaryStats.ballsReplayed, b.adversaryStats.ballsReplayed);
  EXPECT_EQ(a.ingressStats.ballsRejectedLineage,
            b.ingressStats.ballsRejectedLineage);
  EXPECT_EQ(a.ingressStats.eventsFilteredEquivocation,
            b.ingressStats.eventsFilteredEquivocation);
  EXPECT_EQ(a.viewPoisonFraction, b.viewPoisonFraction);
  EXPECT_EQ(a.adversaryDeliveriesFiltered, b.adversaryDeliveriesFiltered);
}

}  // namespace
}  // namespace epto::workload

// Tests of the hashed timer wheel driving per-shard round schedules.
// The wheel is deterministic given explicit time points, so everything
// here runs without sleeping.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <vector>

#include "runtime/timer_wheel.h"
#include "util/ensure.h"

namespace epto::runtime {
namespace {

using namespace std::chrono_literals;

using TimePoint = TimerWheel::TimePoint;

TimePoint epoch() {
  // Any fixed anchor works; the wheel only looks at differences.
  return TimePoint{} + std::chrono::hours(1);
}

TEST(TimerWheel, RejectsInvalidConfiguration) {
  EXPECT_THROW(TimerWheel(0us, 8, epoch()), util::ContractViolation);
  EXPECT_THROW(TimerWheel(1ms, 0, epoch()), util::ContractViolation);
}

TEST(TimerWheel, FiresAtTheDueTickNotBefore) {
  TimerWheel wheel(1ms, 16, epoch());
  wheel.schedule(7, epoch() + 5ms);
  std::vector<std::uint32_t> out;
  EXPECT_EQ(wheel.expire(epoch() + 4ms, out), 0u);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(wheel.expire(epoch() + 5ms, out), 1u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 7u);
  EXPECT_TRUE(wheel.empty());
}

TEST(TimerWheel, SubGranularityDeadlinesDegradeToTheirSlot) {
  TimerWheel wheel(1ms, 16, epoch());
  // 5.3ms lives in tick 5; it fires once now reaches tick 5.
  wheel.schedule(1, epoch() + 5300us);
  std::vector<std::uint32_t> out;
  EXPECT_EQ(wheel.expire(epoch() + 5ms, out), 1u);
}

TEST(TimerWheel, PastDeadlinesFireOnTheNextExpire) {
  TimerWheel wheel(1ms, 16, epoch());
  std::vector<std::uint32_t> out;
  // Move the cursor forward first.
  wheel.expire(epoch() + 10ms, out);
  // A deadline behind the cursor (already-swept tick) must still fire.
  wheel.schedule(3, epoch() + 2ms);
  EXPECT_EQ(wheel.expire(epoch() + 10ms, out), 1u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 3u);
}

TEST(TimerWheel, FutureLapEntriesSurviveTheCursorPass) {
  TimerWheel wheel(1ms, 4, epoch());  // one lap = 4ms
  // Tick 1 and tick 5 share a slot (5 % 4 == 1).
  wheel.schedule(10, epoch() + 1ms);
  wheel.schedule(50, epoch() + 5ms);
  std::vector<std::uint32_t> out;
  EXPECT_EQ(wheel.expire(epoch() + 1ms, out), 1u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 10u);
  EXPECT_EQ(wheel.size(), 1u);  // the future-lap entry stayed armed
  EXPECT_EQ(wheel.expire(epoch() + 5ms, out), 1u);
  EXPECT_EQ(out.back(), 50u);
}

TEST(TimerWheel, FullLapSleepSweepsEverySlotOnce) {
  TimerWheel wheel(1ms, 4, epoch());
  for (std::uint32_t id = 0; id < 4; ++id) {
    wheel.schedule(id, epoch() + std::chrono::milliseconds(id + 1));
  }
  std::vector<std::uint32_t> out;
  // Jump far past a full lap in one step: all four must fire, each once.
  EXPECT_EQ(wheel.expire(epoch() + 100ms, out), 4u);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<std::uint32_t>{0, 1, 2, 3}));
  EXPECT_TRUE(wheel.empty());
  // And the cursor landed at `now`: re-arming works normally after.
  wheel.schedule(9, epoch() + 101ms);
  out.clear();
  EXPECT_EQ(wheel.expire(epoch() + 101ms, out), 1u);
  EXPECT_EQ(out[0], 9u);
}

TEST(TimerWheel, NextDueReportsTheEarliestArmedTimer) {
  TimerWheel wheel(1ms, 16, epoch());
  EXPECT_FALSE(wheel.nextDue().has_value());
  wheel.schedule(1, epoch() + 9ms);
  wheel.schedule(2, epoch() + 3ms);
  wheel.schedule(3, epoch() + 12ms);
  const auto due = wheel.nextDue();
  ASSERT_TRUE(due.has_value());
  EXPECT_EQ(*due, epoch() + 3ms);
  std::vector<std::uint32_t> out;
  wheel.expire(epoch() + 3ms, out);
  const auto next = wheel.nextDue();
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(*next, epoch() + 9ms);
}

TEST(TimerWheel, PreEpochDeadlinesClampToTickZero) {
  TimerWheel wheel(1ms, 16, epoch());
  wheel.schedule(4, epoch() - 5ms);
  std::vector<std::uint32_t> out;
  EXPECT_EQ(wheel.expire(epoch(), out), 1u);
  EXPECT_EQ(out[0], 4u);
}

TEST(TimerWheel, ManyTimersAcrossManyLapsAllFireExactlyOnce) {
  TimerWheel wheel(1ms, 8, epoch());  // deliberately tiny: heavy lap reuse
  constexpr std::uint32_t kTimers = 200;
  for (std::uint32_t id = 0; id < kTimers; ++id) {
    wheel.schedule(id, epoch() + std::chrono::milliseconds(1 + (id * 7) % 97));
  }
  std::vector<std::uint32_t> out;
  for (int step = 1; step <= 100; ++step) {
    wheel.expire(epoch() + std::chrono::milliseconds(step), out);
  }
  EXPECT_TRUE(wheel.empty());
  std::sort(out.begin(), out.end());
  ASSERT_EQ(out.size(), kTimers);
  for (std::uint32_t id = 0; id < kTimers; ++id) EXPECT_EQ(out[id], id);
}

}  // namespace
}  // namespace epto::runtime

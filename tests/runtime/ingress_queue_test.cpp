// Tests of the overload primitives of the UDP node loop: the bounded
// ingress queue and the stall watchdog (DESIGN.md §10).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>

#include "runtime/ingress_queue.h"
#include "runtime/stall_watchdog.h"
#include "util/ensure.h"

namespace epto::runtime {
namespace {

using namespace std::chrono_literals;

Ball makeBall(std::uint32_t seq) {
  Ball ball;
  Event e;
  e.id = EventId{1, seq};
  e.ts = seq;
  ball.push_back(e);
  return ball;
}

TEST(IngressQueue, FifoWithinCapacity) {
  IngressQueue queue(4);
  for (std::uint32_t i = 0; i < 3; ++i) EXPECT_EQ(queue.push(makeBall(i)), 0u);
  EXPECT_EQ(queue.size(), 3u);
  for (std::uint32_t i = 0; i < 3; ++i) {
    const auto ball = queue.pop();
    ASSERT_TRUE(ball.has_value());
    EXPECT_EQ((*ball)[0].id.sequence, i);
  }
  EXPECT_FALSE(queue.pop().has_value());
}

// The flood test of the overload contract: the queue never exceeds its
// bound, sheds oldest-first, and what survives is the newest suffix of
// the flood, still in FIFO order.
TEST(IngressQueue, FloodShedsOldestAndNeverExceedsBound) {
  constexpr std::size_t kCapacity = 8;
  constexpr std::uint32_t kFlood = 100;
  IngressQueue queue(kCapacity);
  std::size_t shed = 0;
  for (std::uint32_t i = 0; i < kFlood; ++i) {
    shed += queue.push(makeBall(i));
    EXPECT_LE(queue.size(), kCapacity);
  }
  EXPECT_EQ(shed, kFlood - kCapacity);
  EXPECT_EQ(queue.shedTotal(), kFlood - kCapacity);
  EXPECT_EQ(queue.highWater(), kCapacity);

  // Oldest-first shedding leaves exactly the newest kCapacity balls.
  for (std::uint32_t i = kFlood - kCapacity; i < kFlood; ++i) {
    const auto ball = queue.pop();
    ASSERT_TRUE(ball.has_value());
    EXPECT_EQ((*ball)[0].id.sequence, i);
  }
  EXPECT_TRUE(queue.empty());
}

// recvmmsg hands the node loop a *chunk* of datagrams at once, so the
// queue sees multi-ball bursts between drains instead of the one-push-
// one-drain cadence of the blocking receive path. The overload contract
// must hold per burst: the bound is never exceeded mid-burst, shedding
// stays oldest-first, and a drain budget interleaved per datagram (PR 3
// invariant: a send burst never starves receiving) keeps a burst no
// larger than capacity + budget lossless.
TEST(IngressQueue, MultiDatagramBurstsRespectTheBoundBetweenDrains) {
  constexpr std::size_t kCapacity = 4;
  constexpr std::size_t kBurst = 7;       // one recvmmsg chunk
  constexpr std::size_t kBursts = 20;
  IngressQueue queue(kCapacity);
  std::uint32_t seq = 0;
  std::size_t drained = 0;
  for (std::size_t burst = 0; burst < kBursts; ++burst) {
    for (std::size_t i = 0; i < kBurst; ++i) {
      queue.push(makeBall(seq++));
      EXPECT_LE(queue.size(), kCapacity);  // bound holds mid-burst
      // Budgeted per-datagram drain, exactly like batchIngest().
      if (queue.pop().has_value()) ++drained;
    }
  }
  // Budget >= arrival rate: nothing ever queued long enough to shed.
  EXPECT_EQ(queue.shedTotal(), 0u);
  EXPECT_EQ(drained + queue.size(), kBurst * kBursts);
}

// The same chunked arrivals with the drain deferred to the end of each
// burst — the cadence a naive "ingest the whole chunk, then drain"
// loop would produce. The bound still holds, but every burst sheds its
// oldest overflow: the queue keeps only the newest suffix. This is the
// regression test for the correlated-loss failure mode that budgeted
// per-datagram draining exists to prevent.
TEST(IngressQueue, DeferredDrainShedsTheOldestOfEveryBurst) {
  constexpr std::size_t kCapacity = 4;
  constexpr std::uint32_t kBurst = 7;
  IngressQueue queue(kCapacity);
  std::uint32_t seq = 0;
  for (std::uint32_t i = 0; i < kBurst; ++i) {
    queue.push(makeBall(seq++));
    EXPECT_LE(queue.size(), kCapacity);
  }
  EXPECT_EQ(queue.shedTotal(), kBurst - kCapacity);
  // The survivors are the newest kCapacity balls of the burst, in order.
  for (std::uint32_t i = kBurst - kCapacity; i < kBurst; ++i) {
    const auto ball = queue.pop();
    ASSERT_TRUE(ball.has_value());
    EXPECT_EQ((*ball)[0].id.sequence, i);
  }
  EXPECT_EQ(queue.highWater(), kCapacity);
}

TEST(IngressQueue, ClearReportsDiscardedCount) {
  IngressQueue queue(4);
  for (std::uint32_t i = 0; i < 3; ++i) queue.push(makeBall(i));
  EXPECT_EQ(queue.clear(), 3u);
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.shedTotal(), 0u);  // clear() is not shedding
}

TEST(IngressQueue, RejectsZeroCapacity) {
  EXPECT_THROW(IngressQueue{0}, util::ContractViolation);
}

TEST(StallWatchdog, TriggersAfterConsecutiveMisses) {
  StallWatchdog watchdog(3);
  const auto period = 4ms;
  EXPECT_FALSE(watchdog.onRoundBoundary(10ms, period));
  EXPECT_FALSE(watchdog.onRoundBoundary(10ms, period));
  EXPECT_TRUE(watchdog.onRoundBoundary(10ms, period));
  EXPECT_EQ(watchdog.recoveries(), 1u);
  // Edge-triggered: the streak restarts after a recovery.
  EXPECT_FALSE(watchdog.onRoundBoundary(10ms, period));
  EXPECT_EQ(watchdog.consecutiveMisses(), 1u);
}

TEST(StallWatchdog, OnTimeRoundResetsTheStreak) {
  StallWatchdog watchdog(2);
  const auto period = 4ms;
  EXPECT_FALSE(watchdog.onRoundBoundary(10ms, period));
  EXPECT_FALSE(watchdog.onRoundBoundary(1ms, period));  // on time: reset
  EXPECT_FALSE(watchdog.onRoundBoundary(10ms, period));
  EXPECT_TRUE(watchdog.onRoundBoundary(10ms, period));
  EXPECT_EQ(watchdog.recoveries(), 1u);
}

TEST(StallWatchdog, LatenessWithinOnePeriodIsNotAMiss) {
  StallWatchdog watchdog(1);
  EXPECT_FALSE(watchdog.onRoundBoundary(4ms, 4ms));  // exactly one period: ok
  EXPECT_TRUE(watchdog.onRoundBoundary(4ms + 1us, 4ms));
}

TEST(StallWatchdog, ZeroThresholdDisables) {
  StallWatchdog watchdog(0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(watchdog.onRoundBoundary(1s, 1ms));
  }
  EXPECT_EQ(watchdog.recoveries(), 0u);
}

}  // namespace
}  // namespace epto::runtime

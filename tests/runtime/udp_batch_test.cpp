// Tests of the batched UDP I/O paths (recvmmsg/sendmmsg) and the
// sharded executor mode of UdpCluster (DESIGN.md §16): batch receive
// semantics, per-message backoff classification in batch sends, and a
// thread-per-node vs sharded differential over the full protocol.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "codec/ball_codec.h"
#include "runtime/udp_cluster.h"
#include "runtime/udp_transport.h"
#include "util/rng.h"

namespace epto::runtime {
namespace {

using namespace std::chrono_literals;

Ball makeBall(std::uint32_t seq) {
  Ball ball;
  Event e;
  e.id = EventId{1, seq};
  e.ts = 10 + seq;
  e.ttl = 2;
  ball.push_back(e);
  return ball;
}

std::vector<std::byte> frameOf(std::uint32_t seq) {
  return codec::encodeBall(makeBall(seq));
}

TEST(UdpBatchReceive, DrainsQueuedDatagramsInOneCall) {
  UdpSocket sender;
  UdpSocket receiver;
  std::vector<std::vector<std::byte>> frames;
  for (std::uint32_t i = 0; i < 10; ++i) {
    frames.push_back(frameOf(i));
    ASSERT_TRUE(sender.sendTo(receiver.port(), frames.back()));
  }
  // Give loopback a moment to queue everything.
  std::vector<UdpSocket::Datagram> out;
  std::size_t got = 0;
  const auto deadline = std::chrono::steady_clock::now() + 2s;
  while (got < 10 && std::chrono::steady_clock::now() < deadline) {
    got += receiver.receiveBatch(out, 10 - got, /*timeoutMillis=*/100);
  }
  ASSERT_EQ(got, 10u);
  ASSERT_EQ(out.size(), 10u);
  for (std::uint32_t i = 0; i < 10; ++i) {
    EXPECT_EQ(out[i].fromPort, sender.port());
    EXPECT_FALSE(out[i].truncated);
    const auto decoded = codec::decodeBall(out[i].bytes);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.ball[0].id.sequence, i);
  }
}

TEST(UdpBatchReceive, RespectsMaxBatchAndAppends) {
  UdpSocket sender;
  UdpSocket receiver;
  std::vector<std::vector<std::byte>> frames;
  for (std::uint32_t i = 0; i < 6; ++i) {
    frames.push_back(frameOf(i));
    ASSERT_TRUE(sender.sendTo(receiver.port(), frames.back()));
  }
  std::vector<UdpSocket::Datagram> out;
  const auto deadline = std::chrono::steady_clock::now() + 2s;
  while (out.size() < 6 && std::chrono::steady_clock::now() < deadline) {
    const std::size_t got = receiver.receiveBatch(out, 2, /*timeoutMillis=*/100);
    EXPECT_LE(got, 2u);  // maxBatch caps every call
  }
  ASSERT_EQ(out.size(), 6u);  // appended across calls, nothing replaced
}

TEST(UdpBatchReceive, EmptySocketReturnsZeroWithoutBlocking) {
  UdpSocket receiver;
  std::vector<UdpSocket::Datagram> out;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(receiver.receiveBatch(out, 32, /*timeoutMillis=*/0), 0u);
  EXPECT_LT(std::chrono::steady_clock::now() - start, 100ms);
  EXPECT_TRUE(out.empty());
}

TEST(UdpBatchReceive, TruncationIsFlaggedPerDatagram) {
  UdpSocket sender;
  UdpSocket receiver(/*receiveBufferBytes=*/128);
  const auto small = frameOf(1);
  ASSERT_LE(small.size(), 128u);
  ASSERT_TRUE(sender.sendTo(receiver.port(), small));
  ASSERT_TRUE(sender.sendTo(receiver.port(), std::vector<std::byte>(512)));
  ASSERT_TRUE(sender.sendTo(receiver.port(), small));
  std::vector<UdpSocket::Datagram> out;
  const auto deadline = std::chrono::steady_clock::now() + 2s;
  while (out.size() < 3 && std::chrono::steady_clock::now() < deadline) {
    receiver.receiveBatch(out, 3 - out.size(), /*timeoutMillis=*/100);
  }
  ASSERT_EQ(out.size(), 3u);
  EXPECT_FALSE(out[0].truncated);
  EXPECT_TRUE(out[1].truncated);
  EXPECT_EQ(out[1].bytes.size(), 128u);  // surviving prefix only
  EXPECT_FALSE(out[2].truncated);
}

TEST(UdpBatchSend, WholeBatchArrivesAtItsTargets) {
  UdpSocket sender;
  UdpSocket receiverA;
  UdpSocket receiverB;
  std::vector<std::vector<std::byte>> frames;
  for (std::uint32_t i = 0; i < 8; ++i) frames.push_back(frameOf(i));
  std::vector<OutgoingDatagram> batch;
  for (std::uint32_t i = 0; i < 8; ++i) {
    batch.push_back(OutgoingDatagram{i % 2 == 0 ? receiverA.port() : receiverB.port(),
                                     &frames[i], false});
  }
  util::Rng rng(7);
  const BatchSendOutcome outcome =
      sendBatchWithBackoff(sender, batch, SendBackoffPolicy{}, rng);
  EXPECT_EQ(outcome.sent, 8u);
  EXPECT_EQ(outcome.transientLost, 0u);
  EXPECT_EQ(outcome.hardLost, 0u);
  EXPECT_GE(outcome.syscalls, 1u);
  std::vector<UdpSocket::Datagram> atA;
  std::vector<UdpSocket::Datagram> atB;
  const auto deadline = std::chrono::steady_clock::now() + 2s;
  while ((atA.size() < 4 || atB.size() < 4) &&
         std::chrono::steady_clock::now() < deadline) {
    receiverA.receiveBatch(atA, 8, /*timeoutMillis=*/50);
    receiverB.receiveBatch(atB, 8, /*timeoutMillis=*/50);
  }
  ASSERT_EQ(atA.size(), 4u);
  ASSERT_EQ(atB.size(), 4u);
  // Interleaving split the batch by target but preserved per-target order.
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(codec::decodeBall(atA[i].bytes).ball[0].id.sequence, 2 * i);
    EXPECT_EQ(codec::decodeBall(atB[i].bytes).ball[0].id.sequence, 2 * i + 1);
  }
}

TEST(UdpBatchSend, HardFailureSkipsTheMessageAndContinues) {
  UdpSocket sender;
  UdpSocket receiver;
  const auto good = frameOf(1);
  // Beyond the UDP payload limit: EMSGSIZE, a hard per-message failure.
  const std::vector<std::byte> oversized(kMaxUdpDatagramBytes + 1000);
  std::vector<OutgoingDatagram> batch{
      OutgoingDatagram{receiver.port(), &good, false},
      OutgoingDatagram{receiver.port(), &oversized, true},
      OutgoingDatagram{receiver.port(), &good, false},
  };
  util::Rng rng(11);
  const BatchSendOutcome outcome =
      sendBatchWithBackoff(sender, batch, SendBackoffPolicy{}, rng);
  EXPECT_EQ(outcome.sent, 2u);
  EXPECT_EQ(outcome.hardLost, 1u);
  EXPECT_EQ(outcome.transientLost, 0u);
  EXPECT_EQ(outcome.fragmentsSent, 0u);  // the only fragment was the lost one
  std::vector<UdpSocket::Datagram> got;
  const auto deadline = std::chrono::steady_clock::now() + 2s;
  while (got.size() < 2 && std::chrono::steady_clock::now() < deadline) {
    receiver.receiveBatch(got, 2, /*timeoutMillis=*/100);
  }
  EXPECT_EQ(got.size(), 2u);
}

TEST(UdpBatchSend, EmptyBatchIsANoOp) {
  UdpSocket sender;
  util::Rng rng(3);
  const BatchSendOutcome outcome =
      sendBatchWithBackoff(sender, {}, SendBackoffPolicy{}, rng);
  EXPECT_EQ(outcome.sent, 0u);
  EXPECT_EQ(outcome.syscalls, 0u);
}

// The tentpole acceptance test at protocol level: the sharded executor
// must be a drop-in replacement — same broadcasts, same total order,
// same verdicts as thread-per-node, over real sockets.
TEST(UdpShardedCluster, DeliversTotalOrderLikeThreadPerNode) {
  for (const ExecutorMode mode : {ExecutorMode::ThreadPerNode, ExecutorMode::Sharded}) {
    UdpClusterOptions options;
    options.nodeCount = 5;
    options.roundPeriod = 3ms;
    options.seed = 99;
    options.executor = mode;
    options.shardCount = 2;
    UdpCluster cluster(options);
    cluster.start();
    for (std::size_t i = 0; i < 5; ++i) cluster.broadcast(i);
    ASSERT_TRUE(cluster.awaitQuiescence(30s)) << cluster.lastQuiescenceReport();
    cluster.stop();
    const auto report = cluster.report();
    EXPECT_EQ(report.deliveries, 25u);
    EXPECT_TRUE(report.allPropertiesHold());
    if (mode == ExecutorMode::Sharded) {
      EXPECT_EQ(cluster.shardCountUsed(), 2u);
    } else {
      EXPECT_EQ(cluster.shardCountUsed(), 0u);
    }
  }
}

TEST(UdpShardedCluster, ManyNodesPerShardStillQuiesce) {
  UdpClusterOptions options;
  options.nodeCount = 12;
  options.roundPeriod = 4ms;
  options.seed = 101;
  options.executor = ExecutorMode::Sharded;
  options.shardCount = 2;  // 6 nodes per shard
  UdpCluster cluster(options);
  cluster.start();
  for (std::size_t i = 0; i < 12; ++i) cluster.broadcast(i % 12);
  ASSERT_TRUE(cluster.awaitQuiescence(60s)) << cluster.lastQuiescenceReport();
  cluster.stop();
  const auto report = cluster.report();
  EXPECT_EQ(report.deliveries, 144u);
  EXPECT_TRUE(report.allPropertiesHold());
}

TEST(UdpShardedCluster, BatchHistogramsAreObserved) {
  UdpClusterOptions options;
  options.nodeCount = 4;
  options.roundPeriod = 3ms;
  options.seed = 55;
  options.executor = ExecutorMode::Sharded;
  options.shardCount = 1;
  UdpCluster cluster(options);
  cluster.start();
  for (std::size_t i = 0; i < 4; ++i) cluster.broadcast(i);
  ASSERT_TRUE(cluster.awaitQuiescence(30s)) << cluster.lastQuiescenceReport();
  cluster.stop();
  const std::string text = cluster.prometheusSnapshot();
  // The batched-I/O instruments and shard gauges are exported.
  EXPECT_NE(text.find("epto_udp_recv_batch_size_count"), std::string::npos);
  EXPECT_NE(text.find("epto_udp_send_batch_size_count"), std::string::npos);
  EXPECT_NE(text.find("epto_shard_queue_depth{shard=\"0\"}"), std::string::npos);
  EXPECT_NE(text.find("epto_shard_post_rejections_total"), std::string::npos);
  // Every ball this run sent went through the send aggregator.
  EXPECT_EQ(text.find("epto_udp_send_batch_size_count 0\n"), std::string::npos);
}

TEST(UdpShardedCluster, BroadcastSurvivesAFullMailbox) {
  UdpClusterOptions options;
  options.nodeCount = 2;
  options.roundPeriod = 3ms;
  options.seed = 77;
  options.executor = ExecutorMode::Sharded;
  options.mailboxCapacity = 1;  // every burst overflows
  UdpCluster cluster(options);
  cluster.start();
  for (int i = 0; i < 50; ++i) cluster.broadcast(static_cast<std::size_t>(i % 2));
  ASSERT_TRUE(cluster.awaitQuiescence(60s)) << cluster.lastQuiescenceReport();
  cluster.stop();
  const auto report = cluster.report();
  EXPECT_EQ(report.deliveries, 100u);
  EXPECT_TRUE(report.allPropertiesHold());
}

}  // namespace
}  // namespace epto::runtime

// Tests of the TTL/capacity-bounded reassembly buffer (DESIGN.md §10).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "codec/fragment_codec.h"
#include "runtime/reassembly.h"
#include "util/ensure.h"
#include "util/rng.h"

namespace epto::runtime {
namespace {

std::vector<std::byte> randomFrame(std::size_t size, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::byte> frame(size);
  for (auto& b : frame) b = static_cast<std::byte>(rng.below(256));
  return frame;
}

codec::FragmentFrame decodeOrDie(const std::vector<std::byte>& datagram) {
  const auto decoded = codec::decodeFragment(datagram);
  EPTO_ENSURE_MSG(decoded.ok(), "test datagram must decode");
  return decoded.fragment;
}

TEST(Reassembler, InOrderFragmentsCompleteTheFrame) {
  const auto frame = randomFrame(5'000, 1);
  const auto datagrams = codec::fragmentFrame(frame, 512, /*ballId=*/1);
  ASSERT_GT(datagrams.size(), 1u);

  Reassembler reassembler(ReassemblyOptions{});
  for (std::size_t i = 0; i + 1 < datagrams.size(); ++i) {
    EXPECT_FALSE(reassembler.accept(decodeOrDie(datagrams[i]), /*round=*/1).has_value());
  }
  const auto completed = reassembler.accept(decodeOrDie(datagrams.back()), 1);
  ASSERT_TRUE(completed.has_value());
  EXPECT_EQ(*completed, frame);
  EXPECT_EQ(reassembler.partialCount(), 0u);
  EXPECT_EQ(reassembler.bufferedBytes(), 0u);
  EXPECT_EQ(reassembler.stats().framesCompleted, 1u);
}

// Property-style: any arrival order, with duplicated fragments mixed in,
// reassembles the original frame exactly once.
TEST(Reassembler, RandomizedArrivalOrdersAndDuplicatesRoundTrip) {
  for (std::uint64_t trial = 0; trial < 25; ++trial) {
    util::Rng rng(1000 + trial);
    const std::size_t size = 1'000 + rng.below(20'000);
    const auto frame = randomFrame(size, 2000 + trial);
    const auto datagrams = codec::fragmentFrame(frame, 512, trial);
    if (datagrams.size() < 2) continue;

    // Shuffle the arrival order and sprinkle in duplicates.
    std::vector<std::size_t> arrivals(datagrams.size());
    std::iota(arrivals.begin(), arrivals.end(), std::size_t{0});
    for (std::size_t i = arrivals.size(); i > 1; --i) {
      std::swap(arrivals[i - 1], arrivals[rng.below(i)]);
    }
    const std::size_t duplicates = rng.below(datagrams.size());
    for (std::size_t i = 0; i < duplicates; ++i) {
      arrivals.insert(arrivals.begin() + static_cast<std::ptrdiff_t>(
                          rng.below(arrivals.size())),
                      rng.below(datagrams.size()));
    }

    Reassembler reassembler(ReassemblyOptions{});
    std::size_t completions = 0;
    std::vector<std::byte> rebuilt;
    for (const std::size_t index : arrivals) {
      auto completed = reassembler.accept(decodeOrDie(datagrams[index]), 1);
      if (completed.has_value()) {
        ++completions;
        rebuilt = std::move(*completed);
      }
    }
    // Duplicates can never cause a second completion (completing again
    // would need all `count` distinct indices after the release), and
    // at most one re-opened partial can linger from post-completion
    // duplicates.
    EXPECT_EQ(completions, 1u) << "trial " << trial;
    EXPECT_EQ(rebuilt, frame) << "trial " << trial;
    EXPECT_LE(reassembler.partialCount(), 1u) << "trial " << trial;
    const auto& stats = reassembler.stats();
    EXPECT_EQ(stats.fragmentsAccepted + stats.duplicateFragments, arrivals.size())
        << "trial " << trial;
  }
}

TEST(Reassembler, GeometryMismatchRejectedPartialSurvives) {
  const auto frame = randomFrame(5'000, 3);
  const auto datagrams = codec::fragmentFrame(frame, 512, 1);
  ASSERT_GT(datagrams.size(), 2u);

  Reassembler reassembler(ReassemblyOptions{});
  ASSERT_FALSE(reassembler.accept(decodeOrDie(datagrams[0]), 1).has_value());

  // A forged sibling under the same ballId with a different geometry.
  auto forged = decodeOrDie(datagrams[1]);
  forged.totalLength += 1;
  EXPECT_FALSE(reassembler.accept(forged, 1).has_value());
  EXPECT_EQ(reassembler.stats().mismatchedFragments, 1u);

  // The genuine fragments still complete the frame.
  std::optional<std::vector<std::byte>> completed;
  for (std::size_t i = 1; i < datagrams.size(); ++i) {
    completed = reassembler.accept(decodeOrDie(datagrams[i]), 1);
  }
  ASSERT_TRUE(completed.has_value());
  EXPECT_EQ(*completed, frame);
}

TEST(Reassembler, OversizedDeclaredFrameRejectedBeforeAllocation) {
  ReassemblyOptions options;
  options.maxFrameBytes = 1024;
  Reassembler reassembler(options);

  const auto frame = randomFrame(5'000, 4);
  const auto datagrams = codec::fragmentFrame(frame, 512, 1);
  EXPECT_FALSE(reassembler.accept(decodeOrDie(datagrams[0]), 1).has_value());
  EXPECT_EQ(reassembler.stats().oversizedRejected, 1u);
  EXPECT_EQ(reassembler.partialCount(), 0u);
  EXPECT_EQ(reassembler.bufferedBytes(), 0u);
}

// Adversarial leak test: a peer spraying partial frames that never
// complete must not grow memory without bound — TTL eviction and the
// capacity bound together keep bufferedBytes finite and return it to
// zero once the spray stops.
TEST(Reassembler, PartialFrameSprayCannotLeakMemory) {
  ReassemblyOptions options;
  options.maxPartialFrames = 8;
  options.ttlRounds = 4;
  Reassembler reassembler(options);

  const auto frame = randomFrame(4'000, 5);
  std::size_t maxBuffered = 0;
  for (std::uint64_t round = 1; round <= 200; ++round) {
    // Two fresh never-completed partials per round (first fragment only).
    for (std::uint64_t i = 0; i < 2; ++i) {
      const auto datagrams = codec::fragmentFrame(frame, 512, round * 100 + i);
      EXPECT_FALSE(reassembler.accept(decodeOrDie(datagrams[0]), round).has_value());
    }
    reassembler.evictExpired(round);
    EXPECT_LE(reassembler.partialCount(), options.maxPartialFrames);
    maxBuffered = std::max(maxBuffered, reassembler.bufferedBytes());
  }
  EXPECT_LE(maxBuffered, options.maxPartialFrames * frame.size());
  EXPECT_GT(reassembler.stats().partialsShed, 0u);

  // Spray over: after a TTL's worth of quiet rounds, everything drains.
  reassembler.evictExpired(200 + options.ttlRounds + 1);
  EXPECT_EQ(reassembler.partialCount(), 0u);
  EXPECT_EQ(reassembler.bufferedBytes(), 0u);
}

TEST(Reassembler, TtlEvictsIdlePartials) {
  ReassemblyOptions options;
  options.ttlRounds = 3;
  Reassembler reassembler(options);

  const auto frame = randomFrame(4'000, 6);
  const auto datagrams = codec::fragmentFrame(frame, 512, 1);
  ASSERT_FALSE(reassembler.accept(decodeOrDie(datagrams[0]), /*round=*/10).has_value());
  reassembler.evictExpired(12);
  EXPECT_EQ(reassembler.partialCount(), 1u);  // touched at 10, not yet expired
  reassembler.evictExpired(13);
  EXPECT_EQ(reassembler.partialCount(), 0u);
  EXPECT_EQ(reassembler.stats().partialsExpired, 1u);
}

TEST(Reassembler, CapacityShedsStalestPartialFirst) {
  ReassemblyOptions options;
  options.maxPartialFrames = 2;
  Reassembler reassembler(options);

  const auto frame = randomFrame(4'000, 7);
  // Partials 1, 2, 3 started at rounds 1, 2, 3; admitting 3 sheds 1.
  for (std::uint64_t id = 1; id <= 3; ++id) {
    const auto datagrams = codec::fragmentFrame(frame, 512, id);
    ASSERT_FALSE(reassembler.accept(decodeOrDie(datagrams[0]), /*round=*/id).has_value());
  }
  EXPECT_EQ(reassembler.partialCount(), 2u);
  EXPECT_EQ(reassembler.stats().partialsShed, 1u);

  // Ball 2 survived: completing it still works.
  const auto datagrams = codec::fragmentFrame(frame, 512, 2);
  std::optional<std::vector<std::byte>> completed;
  for (std::size_t i = 1; i < datagrams.size(); ++i) {
    completed = reassembler.accept(decodeOrDie(datagrams[i]), 4);
  }
  ASSERT_TRUE(completed.has_value());
  EXPECT_EQ(*completed, frame);
}

TEST(Reassembler, ClearDropsEverything) {
  Reassembler reassembler(ReassemblyOptions{});
  const auto frame = randomFrame(4'000, 8);
  const auto datagrams = codec::fragmentFrame(frame, 512, 1);
  ASSERT_FALSE(reassembler.accept(decodeOrDie(datagrams[0]), 1).has_value());
  EXPECT_GT(reassembler.bufferedBytes(), 0u);
  reassembler.clear();
  EXPECT_EQ(reassembler.partialCount(), 0u);
  EXPECT_EQ(reassembler.bufferedBytes(), 0u);
}

TEST(Reassembler, RejectsDegenerateOptions) {
  ReassemblyOptions zeroCapacity;
  zeroCapacity.maxPartialFrames = 0;
  EXPECT_THROW(Reassembler{zeroCapacity}, util::ContractViolation);
  ReassemblyOptions zeroTtl;
  zeroTtl.ttlRounds = 0;
  EXPECT_THROW(Reassembler{zeroTtl}, util::ContractViolation);
}

}  // namespace
}  // namespace epto::runtime

// Fault injection in the threaded runtimes: crash/restart with graceful
// rejoin, partitions with a scheduled heal, GC-pause stalls, and the
// fault-aware quiescence bookkeeping — first over the in-memory
// transport, then over real UDP sockets.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "fault/fault_plan.h"
#include "runtime/runtime_cluster.h"
#include "runtime/transport.h"
#include "runtime/udp_cluster.h"
#include "util/ensure.h"
#include "util/rng.h"

namespace epto::runtime {
namespace {

using namespace std::chrono_literals;

RuntimeOptions fastOptions(std::size_t nodes) {
  RuntimeOptions options;
  options.nodeCount = nodes;
  options.roundPeriod = 2ms;
  options.clockMode = ClockMode::Logical;
  options.seed = 7;
  return options;
}

/// Spin until node `index` leaves its crash window (bounded).
template <typename Cluster>
void waitUntilUp(Cluster& cluster, std::size_t index) {
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (cluster.nodeDown(index)) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "node never rejoined";
    std::this_thread::sleep_for(1ms);
  }
}

TEST(RuntimeFault, PermanentlyCrashedNodeOwesNothing) {
  fault::FaultPlan plan;
  plan.crash(10'000, 3);  // down 10ms in, forever

  auto options = fastOptions(8);
  options.faultPlan = &plan;
  RuntimeCluster cluster(options);
  cluster.start();
  for (std::size_t i = 0; i < 8; ++i) {
    if (i != 3) cluster.broadcast(i);
  }
  std::this_thread::sleep_for(20ms);  // let the crash window engage
  cluster.broadcast(0);               // born after the crash
  ASSERT_TRUE(cluster.awaitQuiescence(20s)) << cluster.lastQuiescenceReport();
  EXPECT_TRUE(cluster.nodeDown(3));
  cluster.stop();

  ASSERT_NE(cluster.faultController(), nullptr);
  const fault::FaultStats stats = cluster.faultController()->stats();
  EXPECT_EQ(stats.crashes, 1u);
  EXPECT_EQ(stats.restarts, 0u);
  const auto report = cluster.report();
  EXPECT_EQ(report.orderViolations, 0u);
  EXPECT_EQ(report.integrityViolations, 0u);
  // Agreement/validity judged over the correct processes only.
  EXPECT_TRUE(report.allPropertiesHold());
}

TEST(RuntimeFault, RestartedNodeRejoinsAndReconverges) {
  fault::FaultPlan plan;
  plan.crash(10'000, 2, /*restartAt=*/60'000);

  auto options = fastOptions(8);
  options.faultPlan = &plan;
  RuntimeCluster cluster(options);
  cluster.start();
  for (std::size_t i = 0; i < 8; ++i) cluster.broadcast(i);
  ASSERT_TRUE(cluster.awaitQuiescence(20s)) << cluster.lastQuiescenceReport();

  waitUntilUp(cluster, 2);
  // Traffic from a survivor must reach the reborn node (it is up, so it
  // owes the delivery) — this also catches its logical clock up.
  cluster.broadcast(0);
  ASSERT_TRUE(cluster.awaitQuiescence(20s)) << cluster.lastQuiescenceReport();
  // And the reborn node itself can broadcast again.
  cluster.broadcast(2);
  ASSERT_TRUE(cluster.awaitQuiescence(20s)) << cluster.lastQuiescenceReport();
  cluster.stop();

  const fault::FaultStats stats = cluster.faultController()->stats();
  EXPECT_EQ(stats.crashes, 1u);
  EXPECT_EQ(stats.restarts, 1u);
  const auto report = cluster.report();
  EXPECT_EQ(report.broadcasts, 10u);
  EXPECT_EQ(report.restarts, 1u);
  EXPECT_TRUE(report.allPropertiesHold())
      << "order=" << report.orderViolations << " holes=" << report.holes;
}

TEST(RuntimeFault, PartitionHealsAndReconverges) {
  // Island {0,1,2} vs the rest for 40ms starting 100ms in. A trickle of
  // broadcasts keeps balls in flight so the split is observable through
  // the drop counters regardless of scheduler speed (sanitizers slow the
  // run down by an order of magnitude); once the split provably bites,
  // one event is born on each side and must cross after the heal.
  fault::FaultPlan plan;
  plan.partition(100'000, 140'000, {0, 1, 2});

  auto options = fastOptions(8);
  options.faultPlan = &plan;
  // Node rounds are unsynchronized, so an event's ttl advances roughly
  // once per *node* round boundary along its fastest relay chain (each
  // hop increments, copies merge to the max) — in the 3-node island the
  // mid-split event ages ~3 ttl per round period, not 1. TTL must cover
  // (partition remainder + crossing) at that inflated rate: 200 keeps
  // the island copy relayable for ~200/3 round periods (~130ms), well
  // past the 36ms left of the split when the event is born.
  options.ttlOverride = 200;
  options.fanoutOverride = 7;  // full mesh: the 3-node island cannot lose
                               // its epidemic to unlucky peer sampling
  RuntimeCluster cluster(options);
  cluster.start();
  cluster.broadcast(0);  // converges before the split
  ASSERT_TRUE(cluster.awaitQuiescence(20s)) << cluster.lastQuiescenceReport();

  const auto deadline = std::chrono::steady_clock::now() + 20s;
  std::size_t turn = 0;
  while (cluster.faultController()->stats().partitionDrops == 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "split never engaged";
    cluster.broadcast(++turn % 2 == 0 ? 1 : 5);
    std::this_thread::sleep_for(5ms);
  }
  cluster.broadcast(1);  // born mid-partition on the island side
  cluster.broadcast(5);  // born mid-partition on the majority side
  ASSERT_TRUE(cluster.awaitQuiescence(30s)) << cluster.lastQuiescenceReport();
  cluster.stop();

  EXPECT_GT(cluster.faultController()->stats().partitionDrops, 0u);
  EXPECT_GT(cluster.transportStats().faultDrops, 0u);
  const auto report = cluster.report();
  EXPECT_EQ(report.holes, 0u) << "partition did not re-converge";
  EXPECT_TRUE(report.allPropertiesHold());
}

TEST(RuntimeFault, StalledNodeCatchesUpFromItsMailbox) {
  fault::FaultPlan plan;
  plan.stall(5'000, 40'000, 4);  // ~17 rounds of GC pause

  auto options = fastOptions(8);
  options.faultPlan = &plan;
  RuntimeCluster cluster(options);
  cluster.start();
  for (std::size_t i = 0; i < 8; ++i) cluster.broadcast(i % 4);  // senders != 4
  ASSERT_TRUE(cluster.awaitQuiescence(30s)) << cluster.lastQuiescenceReport();
  cluster.stop();

  EXPECT_GE(cluster.faultController()->stats().stalls, 1u);
  EXPECT_EQ(cluster.faultController()->stats().crashes, 0u);
  const auto report = cluster.report();
  EXPECT_EQ(report.deliveries, 8u * 8u);  // the stalled node caught up
  EXPECT_TRUE(report.allPropertiesHold());
}

TEST(RuntimeFault, QuiescenceTimeoutNamesTheHoldouts) {
  // Node 1 is cut off from everyone for the whole run but stays up, so
  // it keeps owing every delivery — the wait must time out and say why.
  fault::FaultPlan plan;
  plan.partition(0, 3'600'000'000ULL, {1});

  auto options = fastOptions(4);
  options.faultPlan = &plan;
  RuntimeCluster cluster(options);
  cluster.start();
  cluster.broadcast(0);
  EXPECT_FALSE(cluster.awaitQuiescence(300ms));
  const std::string why = cluster.lastQuiescenceReport();
  EXPECT_NE(why.find("not yet delivered everywhere"), std::string::npos) << why;
  EXPECT_NE(why.find("missing at"), std::string::npos) << why;
  cluster.stop();
}

TEST(RuntimeFault, RejectsPlansReferencingUnknownNodes) {
  fault::FaultPlan plan;
  plan.crash(10, 9);  // node 9 of an 8-node cluster
  auto options = fastOptions(8);
  options.faultPlan = &plan;
  EXPECT_THROW(RuntimeCluster{options}, util::ContractViolation);
}

TEST(RuntimeFault, TransportValidatesItsOptions) {
  const auto make = [](InMemoryTransport::Options options) {
    InMemoryTransport transport{options, util::Rng{1}};
  };
  InMemoryTransport::Options bad;
  bad.lossRate = 1.0;
  EXPECT_THROW(make(bad), util::ContractViolation);
  bad = {};
  bad.corruptionRate = -0.1;
  EXPECT_THROW(make(bad), util::ContractViolation);
  bad = {};
  bad.minDelay = 5ms;
  bad.maxDelay = 1ms;  // inverted window
  EXPECT_THROW(make(bad), util::ContractViolation);
  bad = {};
  bad.minDelay = -1ms;
  EXPECT_THROW(make(bad), util::ContractViolation);

  InMemoryTransport::Options good;
  good.lossRate = 0.5;
  good.minDelay = 1ms;
  good.maxDelay = 1ms;  // degenerate but valid
  EXPECT_NO_THROW(make(good));
}

TEST(RuntimeFault, TransportNeedsAClockWithItsController) {
  InMemoryTransport transport{InMemoryTransport::Options{}, util::Rng{1}};
  fault::FaultController controller{fault::FaultPlan{}};
  EXPECT_THROW(transport.attachFaults(&controller, nullptr), util::ContractViolation);
  EXPECT_NO_THROW(transport.attachFaults(nullptr, nullptr));  // detach is fine
}

TEST(RuntimeFault, FaultCountersReachTheMetricsRegistry) {
  fault::FaultPlan plan;
  plan.crash(5'000, 1, /*restartAt=*/30'000);

  auto options = fastOptions(6);
  options.faultPlan = &plan;
  RuntimeCluster cluster(options);
  cluster.start();
  cluster.broadcast(0);
  ASSERT_TRUE(cluster.awaitQuiescence(20s));
  waitUntilUp(cluster, 1);
  cluster.stop();

  const std::string text = cluster.prometheusSnapshot();
  for (const char* family :
       {"epto_fault_crashes_total", "epto_fault_restarts_total",
        "epto_fault_stalls_total", "epto_fault_crash_drops_total",
        "epto_fault_partition_drops_total", "epto_fault_burst_drops_total",
        "epto_fault_delayed_messages_total", "epto_transport_fault_drops_total"}) {
    EXPECT_NE(text.find(family), std::string::npos) << "missing family: " << family;
  }
  EXPECT_NE(text.find("epto_fault_crashes_total 1"), std::string::npos);
}

// --- the same machinery over real UDP sockets ---------------------------

TEST(UdpFault, CrashRestartOverRealSockets) {
  fault::FaultPlan plan;
  plan.crash(15'000, 1, /*restartAt=*/80'000);

  UdpClusterOptions options;
  options.nodeCount = 5;
  options.roundPeriod = 3ms;
  options.seed = 7;
  options.faultPlan = &plan;
  UdpCluster cluster(options);
  cluster.start();
  for (std::size_t i = 0; i < 5; ++i) cluster.broadcast(i);
  ASSERT_TRUE(cluster.awaitQuiescence(30s)) << cluster.lastQuiescenceReport();

  waitUntilUp(cluster, 1);
  cluster.broadcast(0);  // the reborn node owes this one
  ASSERT_TRUE(cluster.awaitQuiescence(30s)) << cluster.lastQuiescenceReport();
  cluster.stop();

  ASSERT_NE(cluster.faultController(), nullptr);
  EXPECT_EQ(cluster.faultController()->stats().crashes, 1u);
  EXPECT_EQ(cluster.faultController()->stats().restarts, 1u);
  const auto report = cluster.report();
  EXPECT_EQ(report.restarts, 1u);
  EXPECT_TRUE(report.allPropertiesHold())
      << "order=" << report.orderViolations << " holes=" << report.holes;

  // Satellite: refused sendTo() calls are counted and exported instead of
  // being silently swallowed (zero on a healthy loopback run).
  const std::string text = cluster.prometheusSnapshot();
  EXPECT_NE(text.find("epto_udp_send_failures_total"), std::string::npos);
  EXPECT_EQ(cluster.sendFailures(), 0u);
}

TEST(UdpFault, DelaySpikesUseTheSenderHoldbackQueue) {
  // The spike covers the whole run (60s ≫ any sanitizer slowdown), so
  // every datagram goes through the sender's holdback queue.
  fault::FaultPlan plan;
  plan.delaySpike(0, 60'000'000, /*extraDelay=*/4'000);  // +4ms on every link

  UdpClusterOptions options;
  options.nodeCount = 5;
  options.roundPeriod = 3ms;
  options.seed = 7;
  options.faultPlan = &plan;
  UdpCluster cluster(options);
  cluster.start();
  for (std::size_t i = 0; i < 5; ++i) cluster.broadcast(i);
  ASSERT_TRUE(cluster.awaitQuiescence(30s)) << cluster.lastQuiescenceReport();
  cluster.stop();

  EXPECT_GT(cluster.faultController()->stats().delayedMessages, 0u);
  EXPECT_TRUE(cluster.report().allPropertiesHold());
}

TEST(UdpFault, RejectsPlansReferencingUnknownNodes) {
  fault::FaultPlan plan;
  plan.stall(10, 100, 7);
  UdpClusterOptions options;
  options.nodeCount = 4;
  options.faultPlan = &plan;
  EXPECT_THROW(UdpCluster{options}, util::ContractViolation);
}

}  // namespace
}  // namespace epto::runtime

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>

#include "runtime/transport.h"
#include "util/ensure.h"

namespace epto::runtime {
namespace {

using namespace std::chrono_literals;

BallPtr makeBall(std::uint32_t seq) {
  auto ball = std::make_shared<Ball>();
  Event e;
  e.id = EventId{1, seq};
  ball->push_back(e);
  return ball;
}

TEST(Mailbox, PushThenDrain) {
  Mailbox mailbox;
  mailbox.push(Envelope{.from = 1, .ball = makeBall(0), .frame = nullptr, .deliverAt = Clock::now()});
  const auto ready = mailbox.drainReady(Clock::now());
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0].from, 1u);
}

TEST(Mailbox, FutureEnvelopesAreNotReady) {
  Mailbox mailbox;
  mailbox.push(Envelope{.from = 1, .ball = makeBall(0), .frame = nullptr, .deliverAt = Clock::now() + 1h});
  EXPECT_TRUE(mailbox.drainReady(Clock::now()).empty());
}

TEST(Mailbox, DrainReturnsInDeliveryOrder) {
  Mailbox mailbox;
  const auto now = Clock::now();
  mailbox.push(Envelope{.from = 3, .ball = makeBall(3), .frame = nullptr, .deliverAt = now - 1ms});
  mailbox.push(Envelope{.from = 1, .ball = makeBall(1), .frame = nullptr, .deliverAt = now - 3ms});
  mailbox.push(Envelope{.from = 2, .ball = makeBall(2), .frame = nullptr, .deliverAt = now - 2ms});
  const auto ready = mailbox.drainReady(now);
  ASSERT_EQ(ready.size(), 3u);
  EXPECT_EQ(ready[0].from, 1u);
  EXPECT_EQ(ready[1].from, 2u);
  EXPECT_EQ(ready[2].from, 3u);
}

TEST(Mailbox, WaitReturnsAtDeadlineWithoutMessages) {
  Mailbox mailbox;
  const auto start = Clock::now();
  mailbox.waitReadyOrDeadline(start + 20ms);
  EXPECT_GE(Clock::now(), start + 19ms);
}

TEST(Mailbox, WaitWakesEarlyOnReadyMessage) {
  Mailbox mailbox;
  std::thread producer([&] {
    std::this_thread::sleep_for(10ms);
    mailbox.push(Envelope{.from = 1, .ball = makeBall(0), .frame = nullptr, .deliverAt = Clock::now()});
  });
  const auto start = Clock::now();
  mailbox.waitReadyOrDeadline(start + 5s);
  EXPECT_LT(Clock::now(), start + 2s);
  producer.join();
  EXPECT_EQ(mailbox.drainReady(Clock::now()).size(), 1u);
}

TEST(Transport, RegisteredEndpointsReceive) {
  InMemoryTransport transport({}, util::Rng(1));
  transport.registerEndpoint(1);
  transport.registerEndpoint(2);
  transport.send(1, 2, makeBall(7));
  const auto ready = transport.mailboxOf(2).drainReady(Clock::now());
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ((*ready[0].ball)[0].id.sequence, 7u);
  EXPECT_EQ(transport.stats().sent, 1u);
}

TEST(Transport, DuplicateRegistrationAndUnknownEndpointThrow) {
  InMemoryTransport transport({}, util::Rng(1));
  transport.registerEndpoint(1);
  EXPECT_THROW(transport.registerEndpoint(1), util::ContractViolation);
  EXPECT_THROW((void)transport.mailboxOf(9), util::ContractViolation);
}

TEST(Transport, LossRateDropsApproximately) {
  InMemoryTransport transport({.lossRate = 0.5}, util::Rng(3));
  transport.registerEndpoint(1);
  transport.registerEndpoint(2);
  for (int i = 0; i < 2000; ++i) transport.send(1, 2, makeBall(0));
  const auto stats = transport.stats();
  EXPECT_EQ(stats.sent, 2000u);
  EXPECT_NEAR(static_cast<double>(stats.dropped), 1000.0, 100.0);
}

TEST(Transport, DelayWindowRespected) {
  InMemoryTransport transport({.minDelay = 5ms, .maxDelay = 10ms}, util::Rng(5));
  transport.registerEndpoint(1);
  transport.registerEndpoint(2);
  transport.send(1, 2, makeBall(0));
  // Not ready immediately.
  EXPECT_TRUE(transport.mailboxOf(2).drainReady(Clock::now()).empty());
  std::this_thread::sleep_for(15ms);
  EXPECT_EQ(transport.mailboxOf(2).drainReady(Clock::now()).size(), 1u);
}

TEST(Transport, RejectsBadOptions) {
  EXPECT_THROW(InMemoryTransport({.lossRate = 1.0}, util::Rng(1)),
               util::ContractViolation);
  EXPECT_THROW(InMemoryTransport({.minDelay = 10ms, .maxDelay = 1ms}, util::Rng(1)),
               util::ContractViolation);
}

TEST(Transport, ConcurrentSendersDoNotRace) {
  InMemoryTransport transport({}, util::Rng(7));
  transport.registerEndpoint(0);
  for (ProcessId id = 1; id <= 4; ++id) transport.registerEndpoint(id);
  std::vector<std::thread> senders;
  for (ProcessId id = 1; id <= 4; ++id) {
    senders.emplace_back([&transport, id] {
      for (int i = 0; i < 500; ++i) transport.send(id, 0, makeBall(0));
    });
  }
  for (auto& t : senders) t.join();
  EXPECT_EQ(transport.stats().sent, 2000u);
  EXPECT_EQ(transport.mailboxOf(0).drainReady(Clock::now()).size(), 2000u);
}

}  // namespace
}  // namespace epto::runtime

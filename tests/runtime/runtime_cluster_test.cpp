// End-to-end tests of the threaded runtime (§8.5): real threads, steady
// clocks, loss/delay-injecting transport — the asynchrony the discrete
// simulator serializes away.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "runtime/runtime_cluster.h"

namespace epto::runtime {
namespace {

using namespace std::chrono_literals;

RuntimeOptions fastOptions(std::size_t nodes) {
  RuntimeOptions options;
  options.nodeCount = nodes;
  options.roundPeriod = 2ms;  // fast rounds keep tests quick
  options.clockMode = ClockMode::Logical;
  options.seed = 7;
  return options;
}

TEST(RuntimeCluster, DeliversEverythingEverywhereInOrder) {
  RuntimeCluster cluster(fastOptions(8));
  cluster.start();
  for (std::size_t i = 0; i < 8; ++i) cluster.broadcast(i);
  ASSERT_TRUE(cluster.awaitQuiescence(15s));
  cluster.stop();
  const auto report = cluster.report();
  EXPECT_EQ(report.broadcasts, 8u);
  EXPECT_EQ(report.deliveries, 8u * 8u);
  EXPECT_EQ(report.orderViolations, 0u);
  EXPECT_EQ(report.integrityViolations, 0u);
  EXPECT_EQ(report.validityViolations, 0u);
  EXPECT_EQ(report.holes, 0u);
}

TEST(RuntimeCluster, SurvivesMessageLossAndDelay) {
  auto options = fastOptions(8);
  options.lossRate = 0.10;
  options.minDelay = 200us;
  options.maxDelay = 2ms;
  RuntimeCluster cluster(options);
  cluster.start();
  for (std::size_t i = 0; i < 8; ++i) {
    cluster.broadcast(i % 8);
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_TRUE(cluster.awaitQuiescence(20s));
  cluster.stop();
  const auto report = cluster.report();
  EXPECT_EQ(report.orderViolations, 0u);
  EXPECT_EQ(report.integrityViolations, 0u);
  EXPECT_EQ(report.holes, 0u);
  EXPECT_GT(cluster.transportStats().dropped, 0u);
}

TEST(RuntimeCluster, GlobalClockModeWorksWithSharedSteadyClock) {
  auto options = fastOptions(6);
  options.clockMode = ClockMode::Global;
  RuntimeCluster cluster(options);
  cluster.start();
  for (std::size_t i = 0; i < 6; ++i) cluster.broadcast(i);
  ASSERT_TRUE(cluster.awaitQuiescence(15s));
  cluster.stop();
  const auto report = cluster.report();
  EXPECT_EQ(report.deliveries, 6u * 6u);
  EXPECT_EQ(report.orderViolations, 0u);
  EXPECT_EQ(report.holes, 0u);
}

TEST(RuntimeCluster, ConcurrentBroadcastersFromManyThreads) {
  RuntimeCluster cluster(fastOptions(6));
  cluster.start();
  std::vector<std::thread> apps;
  for (std::size_t node = 0; node < 6; ++node) {
    apps.emplace_back([&cluster, node] {
      for (int i = 0; i < 3; ++i) cluster.broadcast(node);
    });
  }
  for (auto& t : apps) t.join();
  ASSERT_TRUE(cluster.awaitQuiescence(20s));
  cluster.stop();
  const auto report = cluster.report();
  EXPECT_EQ(report.broadcasts, 18u);
  EXPECT_EQ(report.deliveries, 18u * 6u);
  EXPECT_EQ(report.orderViolations, 0u);
  EXPECT_EQ(report.integrityViolations, 0u);
}

TEST(RuntimeCluster, SerializedFramesRoundTripEndToEnd) {
  // Balls travel as wire-codec frames: serialize on send, CRC-validate
  // and decode on receive. Everything must still deliver in order.
  auto options = fastOptions(8);
  options.serializeFrames = true;
  RuntimeCluster cluster(options);
  cluster.start();
  for (std::size_t i = 0; i < 8; ++i) cluster.broadcast(i);
  ASSERT_TRUE(cluster.awaitQuiescence(15s));
  cluster.stop();
  const auto report = cluster.report();
  EXPECT_EQ(report.deliveries, 8u * 8u);
  EXPECT_TRUE(report.allPropertiesHold());
  EXPECT_GT(cluster.transportStats().bytesSent, 0u);
  EXPECT_EQ(cluster.transportStats().framesRejected, 0u);
}

TEST(RuntimeCluster, CorruptedFramesAreDetectedAndDropped) {
  auto options = fastOptions(8);
  options.serializeFrames = true;
  options.corruptionRate = 0.15;  // 15% of frames get a bit flipped
  RuntimeCluster cluster(options);
  cluster.start();
  for (std::size_t i = 0; i < 8; ++i) cluster.broadcast(i);
  ASSERT_TRUE(cluster.awaitQuiescence(20s));
  cluster.stop();
  const auto report = cluster.report();
  // Corruption behaves exactly like loss: detected, dropped, absorbed by
  // the protocol's redundancy — never an order or integrity violation.
  EXPECT_TRUE(report.allPropertiesHold());
  EXPECT_GT(cluster.transportStats().framesRejected, 0u);
}

TEST(RuntimeCluster, StopIsIdempotentAndDestructorSafe) {
  RuntimeCluster cluster(fastOptions(4));
  cluster.start();
  cluster.broadcast(0);
  cluster.stop();
  cluster.stop();  // no-op
  // Destructor runs stop() again — must not hang or crash.
}

TEST(RuntimeCluster, ReportBeforeAnyTrafficIsClean) {
  RuntimeCluster cluster(fastOptions(4));
  const auto report = cluster.report();
  EXPECT_EQ(report.broadcasts, 0u);
  EXPECT_TRUE(report.allPropertiesHold());
}

TEST(RuntimeCluster, DerivedParametersExposed) {
  RuntimeCluster cluster(fastOptions(8));
  EXPECT_GE(cluster.fanoutUsed(), 1u);
  EXPECT_LE(cluster.fanoutUsed(), 7u);
  EXPECT_GE(cluster.ttlUsed(), 1u);
}

TEST(RuntimeCluster, PrometheusSnapshotCoversEveryProtocolCounter) {
  RuntimeCluster cluster(fastOptions(4));
  cluster.start();
  for (std::size_t i = 0; i < 4; ++i) cluster.broadcast(i);
  ASSERT_TRUE(cluster.awaitQuiescence(15s));
  cluster.stop();

  const std::string text = cluster.prometheusSnapshot();
  // Every OrderingStats / DisseminationStats counter plus the transport
  // totals must appear as a Prometheus family (the acceptance bar).
  for (const char* family :
       {"epto_ordering_rounds_total", "epto_ordering_delivered_ordered_total",
        "epto_ordering_delivered_out_of_order_total",
        "epto_ordering_dropped_out_of_order_total",
        "epto_ordering_dropped_duplicates_total", "epto_ordering_ttl_merges_total",
        "epto_ordering_received_high_water", "epto_dissemination_broadcasts_total",
        "epto_dissemination_balls_received_total", "epto_dissemination_balls_sent_total",
        "epto_dissemination_events_relayed_total",
        "epto_dissemination_events_expired_total", "epto_dissemination_rounds_total",
        "epto_dissemination_max_ball_size", "epto_received_set_size",
        "epto_pending_relay_count", "epto_last_delivered_ts", "epto_last_delivered_lag",
        "epto_transport_sent_total", "epto_transport_bytes_sent_total"}) {
    EXPECT_NE(text.find(std::string("# TYPE ") + family + " "), std::string::npos)
        << "missing family: " << family;
  }
  // Per-node labeling: each of the four nodes reports its delivery count.
  for (int node = 0; node < 4; ++node) {
    const std::string line = "epto_ordering_delivered_ordered_total{node=\"" +
                             std::to_string(node) + "\"} 4";
    EXPECT_NE(text.find(line), std::string::npos) << "missing: " << line;
  }
}

TEST(RuntimeCluster, BackgroundScrapeWritesJsonlSeries) {
  const std::string path = ::testing::TempDir() + "epto_runtime_scrape_test.jsonl";
  std::remove(path.c_str());
  {
    auto options = fastOptions(4);
    options.scrapeInterval = 5ms;
    options.metricsOutPath = path;
    RuntimeCluster cluster(options);
    cluster.start();
    for (std::size_t i = 0; i < 4; ++i) cluster.broadcast(i);
    ASSERT_TRUE(cluster.awaitQuiescence(15s));
    cluster.stop();
    EXPECT_GE(cluster.scrapeCount(), 1u);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_FALSE(lines.empty());
  for (const std::string& line : lines) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"ts\":"), std::string::npos);
    EXPECT_NE(line.find("\"samples\":["), std::string::npos);
  }
  // The final scrape (written by stop()) carries the finished run: every
  // node delivered all four broadcasts.
  EXPECT_NE(lines.back().find("epto_ordering_delivered_ordered_total"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(RuntimeCluster, RejectsBadOptions) {
  RuntimeOptions options;
  options.nodeCount = 1;
  EXPECT_THROW(RuntimeCluster{options}, util::ContractViolation);
}

}  // namespace
}  // namespace epto::runtime

// Tests of the SPSC mailbox ring under the sharded executor's contract
// (DESIGN.md §16): single producer, single consumer, full ring rejects
// without consuming, FIFO order across wrap-around.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "runtime/spsc_ring.h"
#include "util/ensure.h"

namespace epto::runtime {
namespace {

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  SpscRing<int> ring(5);
  EXPECT_EQ(ring.capacity(), 8u);
  SpscRing<int> exact(16);
  EXPECT_EQ(exact.capacity(), 16u);
  SpscRing<int> one(1);
  EXPECT_EQ(one.capacity(), 1u);
}

TEST(SpscRing, RejectsZeroCapacity) {
  EXPECT_THROW(SpscRing<int>(0), util::ContractViolation);
}

TEST(SpscRing, FifoAcrossWrapAround) {
  SpscRing<int> ring(4);
  int next = 0;
  int expected = 0;
  // Push/pop far more than the capacity so head/tail wrap repeatedly.
  for (int cycle = 0; cycle < 10; ++cycle) {
    for (int i = 0; i < 3; ++i) {
      int value = next;
      ASSERT_TRUE(ring.tryPush(std::move(value)));
      ++next;
    }
    for (int i = 0; i < 3; ++i) {
      const auto value = ring.tryPop();
      ASSERT_TRUE(value.has_value());
      EXPECT_EQ(*value, expected);
      ++expected;
    }
  }
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, FullRingRejectsWithoutConsuming) {
  SpscRing<std::shared_ptr<int>> ring(2);
  ASSERT_TRUE(ring.tryPush(std::make_shared<int>(1)));
  ASSERT_TRUE(ring.tryPush(std::make_shared<int>(2)));

  // The rejected push must leave the caller's value intact — the
  // executor's broadcast path retries the SAME command object.
  auto kept = std::make_shared<int>(3);
  EXPECT_FALSE(ring.tryPush(std::move(kept)));
  ASSERT_NE(kept, nullptr);
  EXPECT_EQ(*kept, 3);

  // After one pop there is room again, and the retry succeeds.
  ASSERT_TRUE(ring.tryPop().has_value());
  EXPECT_TRUE(ring.tryPush(std::move(kept)));
  EXPECT_EQ(ring.size(), 2u);
}

TEST(SpscRing, PopReleasesPayloadEagerly) {
  SpscRing<std::shared_ptr<int>> ring(4);
  auto payload = std::make_shared<int>(7);
  std::weak_ptr<int> watch = payload;
  ASSERT_TRUE(ring.tryPush(std::move(payload)));
  {
    const auto popped = ring.tryPop();
    ASSERT_TRUE(popped.has_value());
    EXPECT_EQ(**popped, 7);
  }
  // The slot must not keep a hidden reference alive until overwrite.
  EXPECT_TRUE(watch.expired());
}

TEST(SpscRing, EmptyPopsReturnNullopt) {
  SpscRing<int> ring(4);
  EXPECT_FALSE(ring.tryPop().has_value());
  int v = 1;
  ASSERT_TRUE(ring.tryPush(std::move(v)));
  ASSERT_TRUE(ring.tryPop().has_value());
  EXPECT_FALSE(ring.tryPop().has_value());
}

// Cross-thread stress: one producer, one consumer, every value arrives
// exactly once and in order. Run under TSan in CI, this is the proof
// that the acquire/release pairing is sufficient.
TEST(SpscRing, ProducerConsumerThreadsPreserveOrder) {
  constexpr std::uint64_t kCount = 100000;
  SpscRing<std::uint64_t> ring(64);
  std::atomic<bool> done{false};
  std::vector<std::uint64_t> received;
  received.reserve(kCount);

  std::thread consumer([&] {
    while (received.size() < kCount) {
      if (auto value = ring.tryPop()) {
        received.push_back(*value);
      } else if (done.load(std::memory_order_acquire) && ring.empty()) {
        break;
      }
    }
  });
  for (std::uint64_t i = 0; i < kCount; ++i) {
    std::uint64_t value = i;
    while (!ring.tryPush(std::move(value))) {
      std::this_thread::yield();
    }
  }
  done.store(true, std::memory_order_release);
  consumer.join();

  ASSERT_EQ(received.size(), kCount);
  for (std::uint64_t i = 0; i < kCount; ++i) ASSERT_EQ(received[i], i);
}

}  // namespace
}  // namespace epto::runtime

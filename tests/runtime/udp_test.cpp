// Tests of EpTO over real UDP sockets on loopback (§8.5).
#include <gtest/gtest.h>

#include <chrono>

#include "codec/ball_codec.h"
#include "runtime/udp_cluster.h"
#include "runtime/udp_transport.h"

namespace epto::runtime {
namespace {

using namespace std::chrono_literals;

Ball makeBall(std::uint32_t seq) {
  Ball ball;
  Event e;
  e.id = EventId{1, seq};
  e.ts = 10 + seq;
  e.ttl = 2;
  ball.push_back(e);
  return ball;
}

TEST(UdpSocket, BindsToDistinctLoopbackPorts) {
  UdpSocket a;
  UdpSocket b;
  EXPECT_GT(a.port(), 0);
  EXPECT_GT(b.port(), 0);
  EXPECT_NE(a.port(), b.port());
}

TEST(UdpSocket, DatagramRoundTrip) {
  UdpSocket sender;
  UdpSocket receiver;
  ASSERT_TRUE(sendBall(sender, receiver.port(), makeBall(7)));
  const auto datagram = receiver.receive(2000);
  ASSERT_TRUE(datagram.has_value());
  const auto decoded = codec::decodeBall(*datagram);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded.ball.size(), 1u);
  EXPECT_EQ(decoded.ball[0].id.sequence, 7u);
  EXPECT_EQ(decoded.ball[0].ts, 17u);
}

TEST(UdpSocket, ReceiveTimesOutWhenQuiet) {
  UdpSocket socket;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(socket.receive(30).has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - start, 25ms);
}

TEST(UdpSocket, ManyDatagramsArrive) {
  UdpSocket sender;
  UdpSocket receiver;
  for (std::uint32_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(sendBall(sender, receiver.port(), makeBall(i)));
  }
  int received = 0;
  while (receiver.receive(100).has_value()) ++received;
  // Loopback UDP can drop under pressure, but most must land.
  EXPECT_GE(received, 40);
}

TEST(UdpSocket, GarbageDatagramFailsValidationNotCrash) {
  UdpSocket sender;
  UdpSocket receiver;
  ASSERT_TRUE(sender.sendTo(receiver.port(),
                            {std::byte{0xDE}, std::byte{0xAD}, std::byte{0xBE}}));
  const auto datagram = receiver.receive(2000);
  ASSERT_TRUE(datagram.has_value());
  EXPECT_FALSE(codec::decodeBall(*datagram).ok());
}

TEST(UdpCluster, TotalOrderOverRealSockets) {
  UdpClusterOptions options;
  options.nodeCount = 6;
  options.roundPeriod = 4ms;
  options.seed = 11;
  UdpCluster cluster(options);
  cluster.start();
  for (std::size_t i = 0; i < 6; ++i) cluster.broadcast(i);
  ASSERT_TRUE(cluster.awaitQuiescence(30s));
  cluster.stop();
  const auto report = cluster.report();
  EXPECT_EQ(report.broadcasts, 6u);
  EXPECT_EQ(report.deliveries, 36u);
  EXPECT_EQ(report.orderViolations, 0u);
  EXPECT_EQ(report.integrityViolations, 0u);
  EXPECT_EQ(report.holes, 0u);
  EXPECT_EQ(cluster.framesRejected(), 0u);
}

TEST(UdpCluster, GlobalClockModeOverSockets) {
  UdpClusterOptions options;
  options.nodeCount = 5;
  options.roundPeriod = 4ms;
  options.clockMode = ClockMode::Global;
  options.seed = 13;
  UdpCluster cluster(options);
  cluster.start();
  for (std::size_t i = 0; i < 5; ++i) cluster.broadcast(i % 5);
  ASSERT_TRUE(cluster.awaitQuiescence(30s));
  cluster.stop();
  const auto report = cluster.report();
  EXPECT_EQ(report.deliveries, 25u);
  EXPECT_TRUE(report.allPropertiesHold());
}

TEST(UdpCluster, StopIsIdempotent) {
  UdpClusterOptions options;
  options.nodeCount = 3;
  options.roundPeriod = 3ms;
  UdpCluster cluster(options);
  cluster.start();
  cluster.stop();
  cluster.stop();
}

TEST(UdpCluster, RejectsDegenerateOptions) {
  UdpClusterOptions options;
  options.nodeCount = 1;
  EXPECT_THROW(UdpCluster{options}, util::ContractViolation);
}

}  // namespace
}  // namespace epto::runtime

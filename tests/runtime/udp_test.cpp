// Tests of EpTO over real UDP sockets on loopback (§8.5), including the
// overload-hardening layer: fragmentation, truncation detection, send
// classification/backoff, bounded ingress, and the stall watchdog
// (DESIGN.md §10).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "codec/ball_codec.h"
#include "core/ingress_guard.h"
#include "codec/fragment_codec.h"
#include "runtime/udp_cluster.h"
#include "runtime/udp_transport.h"
#include "util/ensure.h"
#include "util/rng.h"

namespace epto::runtime {
namespace {

using namespace std::chrono_literals;

Ball makeBall(std::uint32_t seq) {
  Ball ball;
  Event e;
  e.id = EventId{1, seq};
  e.ts = 10 + seq;
  e.ttl = 2;
  ball.push_back(e);
  return ball;
}

PayloadPtr makePayload(std::size_t size, std::uint64_t seed) {
  util::Rng rng(seed);
  PayloadBytes bytes(size);
  for (auto& b : bytes) b = static_cast<std::byte>(rng.below(256));
  return std::make_shared<const PayloadBytes>(std::move(bytes));
}

TEST(UdpSocket, BindsToDistinctLoopbackPorts) {
  UdpSocket a;
  UdpSocket b;
  EXPECT_GT(a.port(), 0);
  EXPECT_GT(b.port(), 0);
  EXPECT_NE(a.port(), b.port());
}

TEST(UdpSocket, DatagramRoundTrip) {
  UdpSocket sender;
  UdpSocket receiver;
  ASSERT_TRUE(sendBall(sender, receiver.port(), makeBall(7)));
  const auto datagram = receiver.receive(2000);
  ASSERT_TRUE(datagram.has_value());
  EXPECT_FALSE(datagram->truncated);
  EXPECT_EQ(datagram->fromPort, sender.port());
  const auto decoded = codec::decodeBall(datagram->bytes);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded.ball.size(), 1u);
  EXPECT_EQ(decoded.ball[0].id.sequence, 7u);
  EXPECT_EQ(decoded.ball[0].ts, 17u);
}

TEST(UdpSocket, ReceiveTimesOutWhenQuiet) {
  UdpSocket socket;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(socket.receive(30).has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - start, 25ms);
}

TEST(UdpSocket, ManyDatagramsArrive) {
  UdpSocket sender;
  UdpSocket receiver;
  for (std::uint32_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(sendBall(sender, receiver.port(), makeBall(i)));
  }
  int received = 0;
  while (receiver.receive(100).has_value()) ++received;
  // Loopback UDP can drop under pressure, but most must land.
  EXPECT_GE(received, 40);
}

TEST(UdpSocket, GarbageDatagramFailsValidationNotCrash) {
  UdpSocket sender;
  UdpSocket receiver;
  ASSERT_TRUE(sender.sendTo(receiver.port(),
                            {std::byte{0xDE}, std::byte{0xAD}, std::byte{0xBE}}));
  const auto datagram = receiver.receive(2000);
  ASSERT_TRUE(datagram.has_value());
  EXPECT_FALSE(codec::decodeBall(datagram->bytes).ok());
}

TEST(UdpSocket, OversizedDatagramIsFlaggedTruncated) {
  UdpSocket sender;
  UdpSocket receiver(/*receiveBufferBytes=*/128);
  ASSERT_TRUE(sender.sendTo(receiver.port(), std::vector<std::byte>(512)));
  const auto datagram = receiver.receive(2000);
  ASSERT_TRUE(datagram.has_value());
  EXPECT_TRUE(datagram->truncated);
  EXPECT_EQ(datagram->bytes.size(), 128u);  // MSG_TRUNC keeps the prefix
}

TEST(UdpSocket, SendBeyondUdpLimitIsAHardFailure) {
  UdpSocket sender;
  UdpSocket receiver;
  // 70000 bytes exceed what a UDP datagram can carry: EMSGSIZE, which
  // no amount of retrying fixes.
  const std::vector<std::byte> frame(70'000);
  EXPECT_EQ(sender.trySendTo(receiver.port(), frame), SendStatus::Hard);
  EXPECT_FALSE(sender.sendTo(receiver.port(), frame));
}

TEST(UdpSocket, BackoffDoesNotRetryHardFailures) {
  UdpSocket sender;
  UdpSocket receiver;
  util::Rng rng(1);
  SendBackoffPolicy policy;
  policy.maxAttempts = 5;
  const auto outcome =
      sendWithBackoff(sender, receiver.port(), std::vector<std::byte>(70'000),
                      policy, rng);
  EXPECT_EQ(outcome.status, SendStatus::Hard);
  EXPECT_EQ(outcome.retries, 0);
}

TEST(UdpSocket, BackoffDeliversOrdinaryDatagrams) {
  UdpSocket sender;
  UdpSocket receiver;
  util::Rng rng(2);
  const auto outcome = sendWithBackoff(sender, receiver.port(),
                                       codec::encodeBall(makeBall(3)),
                                       SendBackoffPolicy{}, rng);
  EXPECT_EQ(outcome.status, SendStatus::Sent);
  EXPECT_TRUE(receiver.receive(2000).has_value());
}

TEST(UdpCluster, TotalOrderOverRealSockets) {
  UdpClusterOptions options;
  options.nodeCount = 6;
  options.roundPeriod = 4ms;
  options.seed = 11;
  UdpCluster cluster(options);
  cluster.start();
  for (std::size_t i = 0; i < 6; ++i) cluster.broadcast(i);
  ASSERT_TRUE(cluster.awaitQuiescence(30s));
  cluster.stop();
  const auto report = cluster.report();
  EXPECT_EQ(report.broadcasts, 6u);
  EXPECT_EQ(report.deliveries, 36u);
  EXPECT_EQ(report.orderViolations, 0u);
  EXPECT_EQ(report.integrityViolations, 0u);
  EXPECT_EQ(report.holes, 0u);
  EXPECT_EQ(cluster.framesRejected(), 0u);
}

TEST(UdpCluster, GlobalClockModeOverSockets) {
  UdpClusterOptions options;
  options.nodeCount = 5;
  options.roundPeriod = 4ms;
  options.clockMode = ClockMode::Global;
  options.seed = 13;
  UdpCluster cluster(options);
  cluster.start();
  for (std::size_t i = 0; i < 5; ++i) cluster.broadcast(i % 5);
  ASSERT_TRUE(cluster.awaitQuiescence(30s));
  cluster.stop();
  const auto report = cluster.report();
  EXPECT_EQ(report.deliveries, 25u);
  EXPECT_TRUE(report.allPropertiesHold());
}

// The tentpole end-to-end: balls far beyond the 64 KiB datagram limit
// must be fragmented, survive the wire, reassemble and deliver with
// every Table 1 verdict green.
TEST(UdpCluster, JumboBallsDeliverThroughFragmentation) {
  UdpClusterOptions options;
  options.nodeCount = 4;
  options.roundPeriod = 8ms;
  options.seed = 17;
  UdpCluster cluster(options);
  cluster.start();
  cluster.broadcast(0, makePayload(100'000, 170));
  cluster.broadcast(1, makePayload(100'000, 171));
  ASSERT_TRUE(cluster.awaitQuiescence(60s)) << cluster.lastQuiescenceReport();
  cluster.stop();
  const auto report = cluster.report();
  EXPECT_EQ(report.deliveries, 8u);
  EXPECT_TRUE(report.allPropertiesHold());
  EXPECT_GT(cluster.ballsFragmented(), 0u);
  EXPECT_GT(cluster.fragmentsSent(), 0u);
  EXPECT_GT(cluster.ballsReassembled(), 0u);
  EXPECT_EQ(cluster.framesRejected(), 0u);
  EXPECT_EQ(cluster.truncatedDatagrams(), 0u);
}

// Overload flood: a tight ingress bound with a tiny drain budget under
// all-to-all gossip. The queue must respect its bound and the protocol
// must still converge to green verdicts — shedding costs redundancy,
// not correctness.
TEST(UdpCluster, IngressBoundHoldsUnderFloodAndVerdictsStayGreen) {
  UdpClusterOptions options;
  options.nodeCount = 8;
  options.roundPeriod = 4ms;
  options.fanoutOverride = 7;
  options.ingressCapacity = 4;
  options.ingressDrainBudget = 1;
  options.seed = 19;
  UdpCluster cluster(options);
  cluster.start();
  for (std::size_t i = 0; i < 8; ++i) cluster.broadcast(i);
  ASSERT_TRUE(cluster.awaitQuiescence(60s)) << cluster.lastQuiescenceReport();
  cluster.stop();
  const auto report = cluster.report();
  EXPECT_EQ(report.deliveries, 64u);
  EXPECT_TRUE(report.allPropertiesHold());
  EXPECT_LE(cluster.ingressHighWater(), 4u);
}

// A round period far below what one loop iteration costs makes every
// round a miss; the watchdog must fire, force-drain, and the cluster
// must still deliver everything (recovery processes the backlog, it
// never discards it).
TEST(UdpCluster, WatchdogRecoversAnOverdrivenSchedule) {
  UdpClusterOptions options;
  options.nodeCount = 3;
  options.roundPeriod = std::chrono::microseconds{20};
  options.watchdogMissedRounds = 2;
  options.seed = 23;
  UdpCluster cluster(options);
  cluster.start();
  for (std::size_t i = 0; i < 3; ++i) cluster.broadcast(i);
  ASSERT_TRUE(cluster.awaitQuiescence(30s)) << cluster.lastQuiescenceReport();
  cluster.stop();
  const auto report = cluster.report();
  EXPECT_EQ(report.deliveries, 9u);
  EXPECT_TRUE(report.allPropertiesHold());
  EXPECT_GT(cluster.watchdogRecoveries(), 0u);
}

TEST(UdpCluster, ExportsLabeledTransportCounters) {
  UdpClusterOptions options;
  options.nodeCount = 3;
  options.roundPeriod = 4ms;
  options.seed = 29;
  UdpCluster cluster(options);
  cluster.start();
  cluster.broadcast(0);
  ASSERT_TRUE(cluster.awaitQuiescence(30s));
  cluster.stop();
  const std::string snapshot = cluster.prometheusSnapshot();
  EXPECT_NE(snapshot.find("epto_udp_send_failures_total{cause=\"transient\"}"),
            std::string::npos);
  EXPECT_NE(snapshot.find("epto_udp_send_failures_total{cause=\"hard\"}"),
            std::string::npos);
  EXPECT_NE(snapshot.find("epto_udp_truncated_total"), std::string::npos);
  EXPECT_NE(snapshot.find("epto_udp_ingress_shed_total"), std::string::npos);
  EXPECT_NE(snapshot.find("epto_udp_watchdog_recoveries_total"), std::string::npos);
  EXPECT_NE(snapshot.find("epto_ingress_rejected_total{cause=\"lineage\"}"),
            std::string::npos);
  EXPECT_NE(snapshot.find("epto_ingress_rejected_total{cause=\"equivocation\"}"),
            std::string::npos);
}

// --- hostile-frame injection (ISSUE 7: the runtime half of the ---------
// --- adversary model: a guard between decode and the protocol) ---------

/// Craft a v2 wire frame around `ball` and fire it at `port` from an
/// attacker-owned socket (a well-formed frame the codec will happily
/// decode — only the ingress guard stands between it and the protocol).
void injectFrame(UdpSocket& attacker, std::uint16_t port, const Ball& ball) {
  ASSERT_TRUE(attacker.sendTo(
      port, codec::encodeBall(ball, codec::EncodeOptions{.lineage = true})));
}

/// Poll the cluster's aggregated guard stats until `done` or deadline.
template <typename Predicate>
bool awaitGuardStats(const UdpCluster& cluster, Predicate done,
                     std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (done(cluster.ingressGuardStats())) return true;
    std::this_thread::sleep_for(2ms);
  }
  return done(cluster.ingressGuardStats());
}

TEST(UdpClusterByzantine, ForgedLineageAndUnknownSourcesAreRejectedWhole) {
  UdpClusterOptions options;
  options.nodeCount = 4;
  options.roundPeriod = 4ms;
  options.ttlOverride = 6;
  options.seed = 31;
  UdpCluster cluster(options);
  cluster.start();

  UdpSocket attacker;
  const std::uint16_t victim = cluster.nodePort(0);
  // hop > ttl: impossible for any honest relay chain.
  {
    Ball ball = makeBall(100);
    ball[0].ttl = 3;
    ball[0].hop = 9;
    injectFrame(attacker, victim, ball);
  }
  // ttl beyond the protocol TTL: forged aging.
  {
    Ball ball = makeBall(101);
    ball[0].ttl = 40;
    injectFrame(attacker, victim, ball);
  }
  // A source id outside the static membership.
  {
    Ball ball = makeBall(102);
    ball[0].id.source = 99;
    injectFrame(attacker, victim, ball);
  }
  EXPECT_TRUE(awaitGuardStats(
      cluster,
      [](const core::IngressStats& stats) {
        return stats.ballsRejectedLineage >= 2 &&
               stats.ballsRejectedUnknownSource >= 1;
      },
      5s))
      << "rejections never surfaced";

  // Honest traffic is untouched by the hostile noise.
  for (std::size_t i = 0; i < 4; ++i) cluster.broadcast(i);
  ASSERT_TRUE(cluster.awaitQuiescence(30s)) << cluster.lastQuiescenceReport();
  cluster.stop();
  const auto report = cluster.report();
  EXPECT_EQ(report.deliveries, 16u);
  EXPECT_TRUE(report.allPropertiesHold());
  // The frames parsed fine — they fell to the guard, not the codec.
  EXPECT_EQ(cluster.framesRejected(), 0u);
  EXPECT_GE(cluster.ingressRejected(), 3u);
}

TEST(UdpClusterByzantine, EquivocatingVariantsAreFilteredAtIngress) {
  UdpClusterOptions options;
  options.nodeCount = 3;
  options.roundPeriod = 4ms;
  options.ttlOverride = 6;
  options.seed = 37;
  UdpCluster cluster(options);
  cluster.start();

  UdpSocket attacker;
  const std::uint16_t victim = cluster.nodePort(0);
  // Two divergent payloads under one EventId and incarnation: the first
  // variant wins, every later divergent copy is filtered event-by-event.
  Ball variantA = makeBall(500);
  variantA.back().payload = makePayload(16, 1);
  Ball variantB = makeBall(500);
  variantB.back().payload = makePayload(16, 2);
  injectFrame(attacker, victim, variantA);
  for (int i = 0; i < 5; ++i) injectFrame(attacker, victim, variantB);

  EXPECT_TRUE(awaitGuardStats(
      cluster,
      [](const core::IngressStats& stats) {
        return stats.eventsFilteredEquivocation >= 1;
      },
      5s))
      << "equivocation filter never fired";
  cluster.stop();
}

TEST(UdpClusterByzantine, RateCapShedsAConcentratedFlood) {
  UdpClusterOptions options;
  options.nodeCount = 3;
  options.roundPeriod = 4ms;
  options.ttlOverride = 6;
  options.ingressRateCap = 4;
  options.seed = 41;
  UdpCluster cluster(options);
  cluster.start();

  UdpSocket attacker;
  const std::uint16_t victim = cluster.nodePort(0);
  // Every flood ball is also lineage-forged, so the ones under the cap
  // are rejected too — no junk is ever admitted to the protocol.
  for (std::uint32_t i = 0; i < 64; ++i) {
    Ball ball = makeBall(1000 + i);
    ball[0].ttl = 2;
    ball[0].hop = 7;
    injectFrame(attacker, victim, ball);
  }
  EXPECT_TRUE(awaitGuardStats(
      cluster,
      [](const core::IngressStats& stats) {
        return stats.ballsRejectedRate >= 1;
      },
      5s))
      << "rate cap never tripped";

  for (std::size_t i = 0; i < 3; ++i) cluster.broadcast(i);
  ASSERT_TRUE(cluster.awaitQuiescence(30s)) << cluster.lastQuiescenceReport();
  cluster.stop();
  EXPECT_TRUE(cluster.report().allPropertiesHold());
}

TEST(UdpClusterByzantine, GuardCanBeDisabledForMixedFleets) {
  UdpClusterOptions options;
  options.nodeCount = 3;
  options.roundPeriod = 4ms;
  options.hardenIngress = false;
  options.seed = 43;
  UdpCluster cluster(options);
  cluster.start();
  for (std::size_t i = 0; i < 3; ++i) cluster.broadcast(i);
  ASSERT_TRUE(cluster.awaitQuiescence(30s));
  cluster.stop();
  EXPECT_TRUE(cluster.report().allPropertiesHold());
  EXPECT_EQ(cluster.ingressGuardStats().ballsInspected, 0u);
}

TEST(UdpCluster, StopIsIdempotent) {
  UdpClusterOptions options;
  options.nodeCount = 3;
  options.roundPeriod = 3ms;
  UdpCluster cluster(options);
  cluster.start();
  cluster.stop();
  cluster.stop();
}

TEST(UdpCluster, RejectsDegenerateOptions) {
  {
    UdpClusterOptions options;
    options.nodeCount = 1;
    EXPECT_THROW(UdpCluster{options}, util::ContractViolation);
  }
  {
    UdpClusterOptions options;
    options.mtuBytes = codec::kMinFragmentMtu - 1;
    EXPECT_THROW(UdpCluster{options}, util::ContractViolation);
  }
  {
    UdpClusterOptions options;
    options.mtuBytes = kMaxUdpDatagramBytes + 1;
    EXPECT_THROW(UdpCluster{options}, util::ContractViolation);
  }
  {
    UdpClusterOptions options;
    options.ingressCapacity = 0;
    EXPECT_THROW(UdpCluster{options}, util::ContractViolation);
  }
  {
    UdpClusterOptions options;
    options.ingressDrainBudget = 0;
    EXPECT_THROW(UdpCluster{options}, util::ContractViolation);
  }
  {
    UdpClusterOptions options;
    options.reassemblyTtlRounds = 0;
    EXPECT_THROW(UdpCluster{options}, util::ContractViolation);
  }
  {
    UdpClusterOptions options;
    options.sendBackoff.maxAttempts = 0;
    EXPECT_THROW(UdpCluster{options}, util::ContractViolation);
  }
  {
    UdpClusterOptions options;
    options.sendBackoff.multiplier = 0.5;
    EXPECT_THROW(UdpCluster{options}, util::ContractViolation);
  }
}

}  // namespace
}  // namespace epto::runtime

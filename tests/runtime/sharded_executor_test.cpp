// Tests of the sharded executor mechanism: partitioning, mailbox
// routing, stop protocol, and the owning-shard-only command contract
// (DESIGN.md §16).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "runtime/sharded_executor.h"
#include "util/ensure.h"

namespace epto::runtime {
namespace {

using namespace std::chrono_literals;

TEST(ShardedExecutor, PartitionIsContiguousBalancedAndComplete) {
  ShardedExecutorOptions options;
  options.nodeCount = 10;
  options.shardCount = 3;
  ShardedExecutor executor(options, [](ShardedExecutor::ShardContext&) {});
  ASSERT_EQ(executor.shardCount(), 3u);
  std::size_t cursor = 0;
  for (std::size_t shard = 0; shard < 3; ++shard) {
    const auto [begin, end] = executor.nodeRange(shard);
    EXPECT_EQ(begin, cursor);  // contiguous, in order
    const std::size_t width = end - begin;
    EXPECT_TRUE(width == 3 || width == 4);  // balanced within one
    cursor = end;
  }
  EXPECT_EQ(cursor, 10u);
  // shardOf inverts the partition for every node.
  for (std::size_t node = 0; node < 10; ++node) {
    const auto [begin, end] = executor.nodeRange(executor.shardOf(node));
    EXPECT_GE(node, begin);
    EXPECT_LT(node, end);
  }
}

TEST(ShardedExecutor, ShardCountClampsToNodeCount) {
  ShardedExecutorOptions options;
  options.nodeCount = 2;
  options.shardCount = 16;
  ShardedExecutor executor(options, [](ShardedExecutor::ShardContext&) {});
  EXPECT_EQ(executor.shardCount(), 2u);
}

TEST(ShardedExecutor, RejectsInvalidConfiguration) {
  ShardedExecutorOptions none;
  none.nodeCount = 0;
  EXPECT_THROW(ShardedExecutor(none, [](ShardedExecutor::ShardContext&) {}),
               util::ContractViolation);
  ShardedExecutorOptions noBody;
  noBody.nodeCount = 1;
  EXPECT_THROW(ShardedExecutor(noBody, nullptr), util::ContractViolation);
}

TEST(ShardedExecutor, BodyRunsOncePerShardWithItsOwnContext) {
  ShardedExecutorOptions options;
  options.nodeCount = 6;
  options.shardCount = 2;
  std::atomic<std::uint32_t> seen{0};
  ShardedExecutor executor(options, [&](ShardedExecutor::ShardContext& ctx) {
    // Each shard observes exactly its own slice.
    EXPECT_LT(ctx.shardIndex(), 2u);
    EXPECT_EQ(ctx.nodeEnd() - ctx.nodeBegin(), 3u);
    seen.fetch_add(1, std::memory_order_relaxed);
    while (!ctx.stopRequested()) std::this_thread::sleep_for(100us);
  });
  executor.start();
  executor.stop();
  EXPECT_EQ(seen.load(), 2u);
}

TEST(ShardedExecutor, CommandsRouteToTheOwningShard) {
  ShardedExecutorOptions options;
  options.nodeCount = 4;
  options.shardCount = 2;
  std::atomic<std::uint32_t> ranOnShard0{0};
  std::atomic<std::uint32_t> ranOnShard1{0};
  ShardedExecutor executor(options, [&](ShardedExecutor::ShardContext& ctx) {
    while (!ctx.stopRequested()) {
      ctx.drainMailbox();
      std::this_thread::sleep_for(100us);
    }
    ctx.drainMailbox();
  });
  executor.start();
  // Nodes 0,1 live on shard 0; nodes 2,3 on shard 1.
  for (std::size_t node = 0; node < 4; ++node) {
    auto& cell = node < 2 ? ranOnShard0 : ranOnShard1;
    ASSERT_TRUE(executor.post(node, ShardedExecutor::Command([&cell] {
      cell.fetch_add(1, std::memory_order_relaxed);
    })));
  }
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while ((ranOnShard0.load() < 2 || ranOnShard1.load() < 2) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  executor.stop();
  EXPECT_EQ(ranOnShard0.load(), 2u);
  EXPECT_EQ(ranOnShard1.load(), 2u);
  EXPECT_EQ(executor.postRejections(), 0u);
}

TEST(ShardedExecutor, FullMailboxRejectsAndCounts) {
  ShardedExecutorOptions options;
  options.nodeCount = 1;
  options.shardCount = 1;
  options.mailboxCapacity = 2;
  // Body never drains, so the mailbox fills and stays full.
  ShardedExecutor executor(options, [](ShardedExecutor::ShardContext& ctx) {
    while (!ctx.stopRequested()) std::this_thread::sleep_for(100us);
  });
  executor.start();
  ASSERT_TRUE(executor.post(0, ShardedExecutor::Command([] {})));
  ASSERT_TRUE(executor.post(0, ShardedExecutor::Command([] {})));
  EXPECT_FALSE(executor.post(0, ShardedExecutor::Command([] {})));
  EXPECT_EQ(executor.postRejections(), 1u);
  EXPECT_EQ(executor.mailboxDepth(0), 2u);
  executor.stop();
}

TEST(ShardedExecutor, ConcurrentProducersSerializeOntoOneMailbox) {
  ShardedExecutorOptions options;
  options.nodeCount = 2;
  options.shardCount = 1;  // both nodes share one shard => one mailbox
  options.mailboxCapacity = 8;
  std::atomic<std::uint64_t> ran{0};
  ShardedExecutor executor(options, [&](ShardedExecutor::ShardContext& ctx) {
    while (!ctx.stopRequested()) ctx.drainMailbox();
    ctx.drainMailbox();
  });
  executor.start();
  constexpr std::uint64_t kPerProducer = 5000;
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < 2; ++p) {
    producers.emplace_back([&executor, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        ShardedExecutor::Command command([] {});
        // A full mailbox does not consume the command; retry it.
        while (!executor.post(p, std::move(command))) std::this_thread::yield();
      }
    });
  }
  for (auto& producer : producers) producer.join();
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  // Commands increment nothing themselves here; completion is "mailbox
  // empty", then stop() joins the drain loop.
  while (executor.mailboxDepth(0) > 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  executor.stop();
  EXPECT_EQ(executor.mailboxDepth(0), 0u);
  (void)ran;
}

TEST(ShardedExecutor, StopIsIdempotentAndDestructorStops) {
  ShardedExecutorOptions options;
  options.nodeCount = 1;
  ShardedExecutor executor(options, [](ShardedExecutor::ShardContext& ctx) {
    while (!ctx.stopRequested()) std::this_thread::sleep_for(100us);
  });
  executor.start();
  executor.stop();
  executor.stop();  // second stop is a no-op
  // Destructor running stop() again must also be safe (scope exit).
}

TEST(ShardedExecutor, WheelIsPerShardAndUsable) {
  ShardedExecutorOptions options;
  options.nodeCount = 2;
  options.shardCount = 2;
  options.wheelGranularity = std::chrono::microseconds(1000);
  std::atomic<std::uint32_t> fired{0};
  ShardedExecutor executor(options, [&](ShardedExecutor::ShardContext& ctx) {
    std::vector<std::uint32_t> due;
    ctx.wheel().schedule(static_cast<std::uint32_t>(ctx.nodeBegin()),
                         TimerWheel::Clock::now());
    while (!ctx.stopRequested()) {
      due.clear();
      if (ctx.wheel().expire(TimerWheel::Clock::now(), due) > 0) {
        fired.fetch_add(static_cast<std::uint32_t>(due.size()),
                        std::memory_order_relaxed);
      }
      std::this_thread::sleep_for(100us);
    }
  });
  executor.start();
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (fired.load() < 2 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  executor.stop();
  EXPECT_EQ(fired.load(), 2u);
}

}  // namespace
}  // namespace epto::runtime

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "pss/basalt.h"
#include "util/ensure.h"

namespace epto::pss {
namespace {

std::vector<ProcessId> seedRange(ProcessId first, ProcessId last) {
  std::vector<ProcessId> seeds;
  for (ProcessId id = first; id <= last; ++id) seeds.push_back(id);
  return seeds;
}

TEST(Basalt, RejectsBadOptions) {
  EXPECT_THROW(Basalt(1, {.viewSize = 0}, util::Rng(1)), util::ContractViolation);
  EXPECT_THROW(Basalt(1, {.viewSize = 4, .exchangeLength = 0}, util::Rng(1)),
               util::ContractViolation);
  EXPECT_THROW(Basalt(1, {.viewSize = 4, .exchangeLength = 5}, util::Rng(1)),
               util::ContractViolation);
  EXPECT_THROW(
      Basalt(1, {.viewSize = 4, .exchangeLength = 2, .rotationInterval = 0},
             util::Rng(1)),
      util::ContractViolation);
  EXPECT_THROW(Basalt(1,
                      {.viewSize = 4,
                       .exchangeLength = 2,
                       .rotationInterval = 10,
                       .hitThreshold = 0},
                      util::Rng(1)),
               util::ContractViolation);
}

TEST(Basalt, BootstrapNeverStoresSelfAndViewStaysBounded) {
  Basalt node(1, {.viewSize = 5, .exchangeLength = 3}, util::Rng(1));
  node.bootstrap(seedRange(1, 40));
  const auto view = node.view();
  EXPECT_LE(view.size(), 5u);
  EXPECT_FALSE(view.empty());
  EXPECT_EQ(std::count(view.begin(), view.end(), 1u), 0);
}

TEST(Basalt, EmptyViewProducesNoExchange) {
  Basalt node(1, {.viewSize = 5, .exchangeLength = 3}, util::Rng(1));
  EXPECT_FALSE(node.onExchangeTimer().has_value());
}

TEST(Basalt, ExchangeCandidatesIncludeSelfAndRespectLength) {
  Basalt node(1, {.viewSize = 8, .exchangeLength = 4}, util::Rng(3));
  node.bootstrap(seedRange(2, 30));
  const auto request = node.onExchangeTimer();
  ASSERT_TRUE(request.has_value());
  EXPECT_LE(request->candidates.size(), 5u);  // exchangeLength + self
  EXPECT_NE(std::find(request->candidates.begin(), request->candidates.end(), 1u),
            request->candidates.end());
  EXPECT_NE(request->target, 1u);
}

TEST(Basalt, RankingIsDeterministicInTheSeed) {
  const auto runOnce = [] {
    Basalt node(1, {.viewSize = 6, .exchangeLength = 3}, util::Rng(42));
    node.bootstrap(seedRange(2, 50));
    node.onExchangeReply(seedRange(51, 80));
    return node.view();
  };
  EXPECT_EQ(runOnce(), runOnce());
}

TEST(Basalt, ReProposingTheSameIdDoesNotImproveItsStanding) {
  // The core anti-flooding property: the view after one offer of an id
  // equals the view after a thousand offers of the same id — until the
  // hit counter fires and actively evicts it.
  Basalt node(1,
              {.viewSize = 6, .exchangeLength = 3, .hitThreshold = 1'000'000},
              util::Rng(5));
  node.bootstrap(seedRange(2, 40));
  node.onExchangeReply({99});
  const auto afterOne = node.view();
  for (int i = 0; i < 500; ++i) node.onExchangeReply({99});
  EXPECT_EQ(node.view(), afterOne);
}

TEST(Basalt, HitThresholdForcesSeedRenewal) {
  Basalt node(1, {.viewSize = 4, .exchangeLength = 2, .hitThreshold = 8},
              util::Rng(7));
  // Tiny overlay: the pushed id certainly occupies slots, so re-proposing
  // it runs the hit counters up and triggers forced seed renewal.
  node.bootstrap(std::vector<ProcessId>{2});
  for (int i = 0; i < 200; ++i) node.onExchangeReply({99});
  EXPECT_GT(node.stats().forcedRenewals, 0u);
}

TEST(Basalt, RotationRefreshesSeedsOnSchedule) {
  Basalt node(1, {.viewSize = 4, .exchangeLength = 2, .rotationInterval = 3},
              util::Rng(9));
  node.bootstrap(seedRange(2, 20));
  for (int i = 0; i < 12; ++i) (void)node.onExchangeTimer();
  EXPECT_EQ(node.stats().seedRotations, 4u);
  // Rotation must not empty the view: renewed slots re-fill from peers we
  // already know.
  EXPECT_FALSE(node.view().empty());
}

TEST(Basalt, OversizedCandidateListsAreTruncated) {
  Basalt flooded(1, {.viewSize = 4, .exchangeLength = 2}, util::Rng(11));
  flooded.bootstrap(seedRange(2, 5));
  // 100 candidates where honest exchanges carry at most 3 (l + sender).
  flooded.onExchangeReply(seedRange(10, 109));
  Basalt paced(1, {.viewSize = 4, .exchangeLength = 2}, util::Rng(11));
  paced.bootstrap(seedRange(2, 5));
  paced.onExchangeReply(seedRange(10, 12));
  EXPECT_EQ(flooded.view(), paced.view());
}

TEST(Basalt, SamplePeersDistinctFromViewNeverSelf) {
  Basalt node(1, {.viewSize = 10, .exchangeLength = 5}, util::Rng(13));
  node.bootstrap(seedRange(2, 60));
  for (int trial = 0; trial < 50; ++trial) {
    const auto peers = node.samplePeers(4);
    EXPECT_LE(peers.size(), 4u);
    const std::set<ProcessId> unique(peers.begin(), peers.end());
    EXPECT_EQ(unique.size(), peers.size());
    EXPECT_EQ(unique.count(1), 0u);
  }
}

/// Benign convergence: a ring-bootstrapped overlay spreads knowledge far
/// beyond the initial neighbors, like the Cyclon equivalent test.
TEST(Basalt, OverlayMixesBeyondBootstrapNeighbors) {
  constexpr std::size_t kN = 32;
  constexpr std::size_t kView = 6;
  std::vector<std::unique_ptr<Basalt>> nodes;
  util::Rng rng(23);
  for (ProcessId id = 0; id < kN; ++id) {
    nodes.push_back(std::make_unique<Basalt>(
        id, Basalt::Options{.viewSize = kView, .exchangeLength = 3},
        rng.split()));
    nodes.back()->bootstrap(
        std::vector<ProcessId>{static_cast<ProcessId>((id + 1) % kN),
                               static_cast<ProcessId>((id + 2) % kN)});
  }
  for (int round = 0; round < 60; ++round) {
    for (auto& node : nodes) {
      auto request = node->onExchangeTimer();
      if (!request.has_value()) continue;
      auto reply = nodes[request->target]->onExchangeRequest(
          node->self(), request->candidates);
      node->onExchangeReply(reply);
    }
  }
  std::set<ProcessId> referenced;
  int farLinks = 0;
  for (const auto& node : nodes) {
    EXPECT_GE(node->view().size(), kView / 2);
    for (const ProcessId peer : node->view()) {
      referenced.insert(peer);
      const auto distance = (peer + kN - node->self()) % kN;
      if (distance > 4 && distance < kN - 4) ++farLinks;
    }
  }
  EXPECT_GT(referenced.size(), kN / 2);
  EXPECT_GT(farLinks, static_cast<int>(kN));
}

/// The headline property: a flooding minority ends up with at most a
/// modest multiple of its fair share of honest view slots, where Cyclon
/// under the same attack gets eclipsed (tests/pss/hostile_views_test.cpp
/// shows the contrast).
TEST(Basalt, FloodingMinorityStaysNearItsFairShare) {
  constexpr std::size_t kN = 40;          // honest nodes 0..39
  constexpr ProcessId kByzFirst = 40;     // attackers 40..43 (9% of 44)
  constexpr std::size_t kByz = 4;
  constexpr std::size_t kView = 8;
  std::vector<std::unique_ptr<Basalt>> honest;
  util::Rng rng(31);
  for (ProcessId id = 0; id < kN; ++id) {
    honest.push_back(std::make_unique<Basalt>(
        id, Basalt::Options{.viewSize = kView, .exchangeLength = 4},
        rng.split()));
    std::vector<ProcessId> seeds;
    for (std::size_t k = 1; k <= 6; ++k) {
      seeds.push_back(static_cast<ProcessId>((id + k) % kN));
    }
    seeds.push_back(kByzFirst);  // attackers are known, as in a real join
    honest[id]->bootstrap(seeds);
  }
  std::vector<ProcessId> poison;
  for (std::size_t b = 0; b < kByz; ++b) {
    poison.push_back(static_cast<ProcessId>(kByzFirst + b));
  }
  for (int round = 0; round < 120; ++round) {
    for (auto& node : honest) {
      // Every attacker pushes its full accomplice list at every honest
      // node every round — far beyond any honest exchange rate.
      for (std::size_t b = 0; b < kByz; ++b) {
        (void)node->onExchangeRequest(poison[b], poison);
      }
      auto request = node->onExchangeTimer();
      if (!request.has_value()) continue;
      if (request->target >= kByzFirst) {
        // Exchange with an attacker: the reply is pure poison.
        node->onExchangeReply(poison);
        continue;
      }
      auto reply = honest[request->target]->onExchangeRequest(
          node->self(), request->candidates);
      node->onExchangeReply(reply);
    }
  }
  std::size_t poisonedSlots = 0;
  std::size_t totalSlots = 0;
  for (const auto& node : honest) {
    for (const ProcessId peer : node->view()) {
      ++totalSlots;
      if (peer >= kByzFirst) ++poisonedSlots;
    }
  }
  const double fraction =
      static_cast<double>(poisonedSlots) / static_cast<double>(totalSlots);
  const double fairShare = static_cast<double>(kByz) / (kN + kByz);  // ~0.09
  // The attack saturates every exchange, yet hash-ranked slots plus hit
  // counters keep the attacker near (a small multiple of) its id-space
  // share instead of eclipsing the views.
  EXPECT_LT(fraction, 2.5 * fairShare) << "poison fraction " << fraction;
}

}  // namespace
}  // namespace epto::pss

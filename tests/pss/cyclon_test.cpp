#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "pss/cyclon.h"
#include "util/ensure.h"

namespace epto::pss {
namespace {

std::vector<ProcessId> seedRange(ProcessId first, ProcessId last) {
  std::vector<ProcessId> seeds;
  for (ProcessId id = first; id <= last; ++id) seeds.push_back(id);
  return seeds;
}

bool viewContains(const CyclonView& view, ProcessId id) {
  return std::any_of(view.begin(), view.end(),
                     [&](const CyclonEntry& e) { return e.id == id; });
}

TEST(Cyclon, RejectsBadOptions) {
  EXPECT_THROW(Cyclon(1, {.viewSize = 0, .shuffleLength = 1}, util::Rng(1)),
               util::ContractViolation);
  EXPECT_THROW(Cyclon(1, {.viewSize = 4, .shuffleLength = 5}, util::Rng(1)),
               util::ContractViolation);
  EXPECT_THROW(Cyclon(1, {.viewSize = 4, .shuffleLength = 0}, util::Rng(1)),
               util::ContractViolation);
}

TEST(Cyclon, BootstrapFillsUpToViewSizeSkippingSelfAndDupes) {
  Cyclon node(1, {.viewSize = 5, .shuffleLength = 3}, util::Rng(1));
  const std::vector<ProcessId> seeds{1, 2, 2, 3, 4, 5, 6, 7};
  node.bootstrap(seeds);
  EXPECT_EQ(node.view().size(), 5u);
  EXPECT_FALSE(viewContains(node.view(), 1));  // never self
  std::set<ProcessId> unique;
  for (const auto& e : node.view()) unique.insert(e.id);
  EXPECT_EQ(unique.size(), 5u);
}

TEST(Cyclon, EmptyCacheProducesNoShuffle) {
  Cyclon node(1, {.viewSize = 5, .shuffleLength = 3}, util::Rng(1));
  EXPECT_FALSE(node.onShuffleTimer().has_value());
}

TEST(Cyclon, ShuffleTargetsTheOldestNeighbor) {
  Cyclon node(1, {.viewSize = 5, .shuffleLength = 3}, util::Rng(1));
  node.bootstrap(seedRange(2, 4));
  // First shuffle ages everyone to 1 and picks some neighbor; feed a
  // reply naming a new node so ages diverge.
  auto first = node.onShuffleTimer();
  ASSERT_TRUE(first.has_value());
  node.onShuffleReply({CyclonEntry{9, 0}});
  // 9 entered at age 0; the others are at age >= 1. The next shuffle must
  // pick one of the older originals, not 9.
  const auto second = node.onShuffleTimer();
  ASSERT_TRUE(second.has_value());
  EXPECT_NE(second->target, 9u);
}

TEST(Cyclon, OutgoingContainsSelfAtAgeZeroAndRespectsLength) {
  Cyclon node(1, {.viewSize = 8, .shuffleLength = 4}, util::Rng(3));
  node.bootstrap(seedRange(2, 9));
  const auto request = node.onShuffleTimer();
  ASSERT_TRUE(request.has_value());
  EXPECT_LE(request->entries.size(), 4u);
  ASSERT_FALSE(request->entries.empty());
  EXPECT_EQ(request->entries[0].id, 1u);
  EXPECT_EQ(request->entries[0].age, 0u);
}

TEST(Cyclon, ShuffleRemovesThePartnerFromTheCache) {
  // The partner's entry is sacrificed: if it is dead, it must not linger.
  Cyclon node(1, {.viewSize = 5, .shuffleLength = 3}, util::Rng(5));
  node.bootstrap(seedRange(2, 6));
  const auto request = node.onShuffleTimer();
  ASSERT_TRUE(request.has_value());
  EXPECT_FALSE(viewContains(node.view(), request->target));
}

TEST(Cyclon, RequestReplyExchangeTeachesBothSides) {
  Cyclon a(1, {.viewSize = 5, .shuffleLength = 3}, util::Rng(7));
  Cyclon b(2, {.viewSize = 5, .shuffleLength = 3}, util::Rng(8));
  a.bootstrap(std::vector<ProcessId>{2});
  b.bootstrap(std::vector<ProcessId>{3, 4, 5});
  const auto request = a.onShuffleTimer();
  ASSERT_TRUE(request.has_value());
  ASSERT_EQ(request->target, 2u);
  const auto reply = b.onShuffleRequest(1, request->entries);
  a.onShuffleReply(reply);
  // b learned about a (it was in the request at age 0).
  EXPECT_TRUE(viewContains(b.view(), 1));
  // a learned something from b's reply.
  EXPECT_FALSE(a.view().empty());
  for (const auto& e : a.view()) EXPECT_NE(e.id, 1u);  // never self
  EXPECT_EQ(a.stats().repliesIntegrated, 1u);
  EXPECT_EQ(b.stats().shufflesAnswered, 1u);
}

TEST(Cyclon, MergeNeverDuplicatesOrStoresSelf) {
  Cyclon node(1, {.viewSize = 10, .shuffleLength = 5}, util::Rng(9));
  node.bootstrap(seedRange(2, 5));
  node.onShuffleReply({CyclonEntry{1, 0}, CyclonEntry{2, 3}, CyclonEntry{6, 0}});
  std::map<ProcessId, int> counts;
  for (const auto& e : node.view()) ++counts[e.id];
  EXPECT_EQ(counts.count(1), 0u);
  for (const auto& [id, count] : counts) EXPECT_EQ(count, 1) << "id " << id;
  EXPECT_TRUE(viewContains(node.view(), 6));
}

TEST(Cyclon, CacheNeverExceedsViewSize) {
  Cyclon node(1, {.viewSize = 4, .shuffleLength = 2}, util::Rng(11));
  node.bootstrap(seedRange(2, 5));
  for (ProcessId id = 10; id < 40; ++id) {
    node.onShuffleReply({CyclonEntry{id, 0}});
    EXPECT_LE(node.view().size(), 4u);
  }
}

TEST(Cyclon, FullCacheReplacesOnlySentEntries) {
  Cyclon node(1, {.viewSize = 4, .shuffleLength = 2}, util::Rng(13));
  node.bootstrap(seedRange(2, 5));  // cache full: 2,3,4,5
  const auto request = node.onShuffleTimer();
  ASSERT_TRUE(request.has_value());
  // Reply with two unknown nodes; they may only displace shipped entries.
  node.onShuffleReply({CyclonEntry{20, 0}, CyclonEntry{21, 0}});
  EXPECT_LE(node.view().size(), 4u);
  // The entries never shipped must survive.
  std::set<ProcessId> shipped;
  for (const auto& e : request->entries) shipped.insert(e.id);
  for (ProcessId original = 2; original <= 5; ++original) {
    if (original == request->target || shipped.contains(original)) continue;
    EXPECT_TRUE(viewContains(node.view(), original)) << "lost " << original;
  }
}

TEST(Cyclon, SamplePeersDistinctAndFromView) {
  Cyclon node(1, {.viewSize = 10, .shuffleLength = 4}, util::Rng(15));
  node.bootstrap(seedRange(2, 11));
  for (int trial = 0; trial < 50; ++trial) {
    const auto peers = node.samplePeers(4);
    ASSERT_EQ(peers.size(), 4u);
    std::set<ProcessId> unique(peers.begin(), peers.end());
    EXPECT_EQ(unique.size(), 4u);
    for (const ProcessId p : peers) {
      EXPECT_GE(p, 2u);
      EXPECT_LE(p, 11u);
    }
  }
}

TEST(Cyclon, SamplePeersCapsAtViewSize) {
  Cyclon node(1, {.viewSize = 5, .shuffleLength = 2}, util::Rng(17));
  node.bootstrap(std::vector<ProcessId>{2, 3});
  EXPECT_EQ(node.samplePeers(10).size(), 2u);
}

TEST(Cyclon, AgesGrowForUnchosenEntriesAndPartnersDrainWithoutReplies) {
  Cyclon node(1, {.viewSize = 3, .shuffleLength = 2}, util::Rng(19));
  node.bootstrap(std::vector<ProcessId>{2, 3, 4});
  // Each unanswered shuffle ages the cache and sacrifices the oldest
  // partner entry: a node cut off from the network drains its view —
  // exactly the self-cleaning behaviour that flushes dead neighbors.
  (void)node.onShuffleTimer();
  ASSERT_EQ(node.view().size(), 2u);
  for (const auto& e : node.view()) EXPECT_EQ(e.age, 1u);
  (void)node.onShuffleTimer();
  ASSERT_EQ(node.view().size(), 1u);
  EXPECT_EQ(node.view()[0].age, 2u);
  (void)node.onShuffleTimer();
  EXPECT_TRUE(node.view().empty());
  EXPECT_FALSE(node.onShuffleTimer().has_value());
}

/// End-to-end mixing: a ring-bootstrapped overlay converges to views that
/// reach well beyond the initial neighbors.
TEST(Cyclon, OverlayMixesBeyondBootstrapNeighbors) {
  constexpr std::size_t kN = 32;
  constexpr std::size_t kView = 6;
  std::vector<std::unique_ptr<Cyclon>> nodes;
  util::Rng rng(23);
  for (ProcessId id = 0; id < kN; ++id) {
    nodes.push_back(std::make_unique<Cyclon>(
        id, Cyclon::Options{.viewSize = kView, .shuffleLength = 3}, rng.split()));
    // Ring bootstrap: each node knows only its 2 successors.
    nodes.back()->bootstrap(
        std::vector<ProcessId>{static_cast<ProcessId>((id + 1) % kN),
                               static_cast<ProcessId>((id + 2) % kN)});
  }
  for (int round = 0; round < 60; ++round) {
    for (auto& node : nodes) {
      auto request = node->onShuffleTimer();
      if (!request.has_value()) continue;
      auto reply = nodes[request->target]->onShuffleRequest(node->self(),
                                                            request->entries);
      node->onShuffleReply(reply);
    }
  }
  // Views filled and, across the overlay, referencing many distinct nodes.
  std::set<ProcessId> referenced;
  for (const auto& node : nodes) {
    EXPECT_EQ(node->view().size(), kView);
    for (const auto& e : node->view()) referenced.insert(e.id);
  }
  EXPECT_EQ(referenced.size(), kN);  // everyone is known to someone
  // Individual views escape the ring neighborhood.
  int farLinks = 0;
  for (const auto& node : nodes) {
    for (const auto& e : node->view()) {
      const auto distance =
          (e.id + kN - node->self()) % kN;
      if (distance > 4 && distance < kN - 4) ++farLinks;
    }
  }
  EXPECT_GT(farLinks, static_cast<int>(kN));
}

}  // namespace
}  // namespace epto::pss

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "pss/generic_pss.h"
#include "util/ensure.h"

namespace epto::pss {
namespace {

std::vector<ProcessId> seedRange(ProcessId first, ProcessId last) {
  std::vector<ProcessId> seeds;
  for (ProcessId id = first; id <= last; ++id) seeds.push_back(id);
  return seeds;
}

bool viewContains(const DescriptorView& view, ProcessId id) {
  return std::any_of(view.begin(), view.end(),
                     [&](const Descriptor& d) { return d.id == id; });
}

GenericPss::Options smallOptions() {
  GenericPss::Options options;
  options.viewSize = 8;
  options.gossipLength = 4;
  options.healing = 1;
  options.swap = 1;
  return options;
}

TEST(GenericPss, RejectsBadOptions) {
  GenericPss::Options bad = smallOptions();
  bad.viewSize = 0;
  EXPECT_THROW(GenericPss(1, bad, util::Rng(1)), util::ContractViolation);
  bad = smallOptions();
  bad.gossipLength = 9;  // > viewSize
  EXPECT_THROW(GenericPss(1, bad, util::Rng(1)), util::ContractViolation);
}

TEST(GenericPss, BootstrapSkipsSelfAndDuplicates) {
  GenericPss node(1, smallOptions(), util::Rng(1));
  const std::vector<ProcessId> seeds{1, 2, 2, 3};
  node.bootstrap(seeds);
  EXPECT_EQ(node.view().size(), 2u);
  EXPECT_FALSE(viewContains(node.view(), 1));
}

TEST(GenericPss, EmptyViewProducesNoGossip) {
  GenericPss node(1, smallOptions(), util::Rng(1));
  EXPECT_FALSE(node.onGossipTimer().has_value());
}

TEST(GenericPss, BufferLeadsWithFreshSelf) {
  GenericPss node(1, smallOptions(), util::Rng(3));
  node.bootstrap(seedRange(2, 9));
  const auto message = node.onGossipTimer();
  ASSERT_TRUE(message.has_value());
  ASSERT_FALSE(message->buffer.empty());
  EXPECT_EQ(message->buffer[0].id, 1u);
  EXPECT_EQ(message->buffer[0].age, 0u);
  EXPECT_LE(message->buffer.size(), 4u);
}

TEST(GenericPss, TailSelectionPicksOldestNeighbor) {
  auto options = smallOptions();
  options.peerSelection = PeerSelection::Tail;
  GenericPss node(1, options, util::Rng(5));
  node.bootstrap(seedRange(2, 4));
  (void)node.onGossipTimer();  // ages everyone to 1
  // Teach it a fresh entry.
  node.onGossipReply({Descriptor{9, 0}});
  const auto message = node.onGossipTimer();
  ASSERT_TRUE(message.has_value());
  EXPECT_NE(message->target, 9u);  // 9 is the youngest
}

TEST(GenericPss, CycleAgesTheView) {
  GenericPss node(1, smallOptions(), util::Rng(7));
  node.bootstrap(seedRange(2, 5));
  (void)node.onGossipTimer();
  (void)node.onGossipTimer();
  for (const auto& d : node.view()) EXPECT_GE(d.age, 2u);
}

TEST(GenericPss, PushPullAnswersWithBuffer) {
  GenericPss node(1, smallOptions(), util::Rng(9));
  node.bootstrap(seedRange(2, 5));
  const auto reply = node.onGossip(7, {Descriptor{7, 0}});
  ASSERT_TRUE(reply.has_value());
  EXPECT_FALSE(reply->empty());
  EXPECT_TRUE(viewContains(node.view(), 7));  // learned the pusher
}

TEST(GenericPss, PushOnlyModeDoesNotReply) {
  auto options = smallOptions();
  options.pull = false;
  GenericPss node(1, options, util::Rng(11));
  node.bootstrap(seedRange(2, 5));
  EXPECT_FALSE(node.onGossip(7, {Descriptor{7, 0}}).has_value());
  EXPECT_TRUE(viewContains(node.view(), 7));
}

TEST(GenericPss, MergeKeepsYoungestDuplicate) {
  GenericPss node(1, smallOptions(), util::Rng(13));
  node.bootstrap(seedRange(2, 5));
  (void)node.onGossipTimer();  // entry 2 now age 1
  node.onGossipReply({Descriptor{2, 0}});
  const auto it = std::find_if(node.view().begin(), node.view().end(),
                               [](const Descriptor& d) { return d.id == 2; });
  ASSERT_NE(it, node.view().end());
  EXPECT_EQ(it->age, 0u);
}

TEST(GenericPss, MergeNeverStoresSelfOrExceedsViewSize) {
  GenericPss node(1, smallOptions(), util::Rng(15));
  node.bootstrap(seedRange(2, 9));  // full view
  DescriptorView flood;
  for (ProcessId id = 20; id < 40; ++id) flood.push_back(Descriptor{id, 0});
  flood.push_back(Descriptor{1, 0});
  (void)node.onGossip(20, flood);
  EXPECT_LE(node.view().size(), 8u);
  EXPECT_FALSE(viewContains(node.view(), 1));
}

TEST(GenericPss, HealerDropsOldestOnOverflow) {
  auto options = smallOptions();
  options.viewSize = 4;
  options.gossipLength = 4;
  options.healing = 2;
  options.swap = 0;
  GenericPss node(1, options, util::Rng(17));
  node.bootstrap(seedRange(2, 5));
  // Age the originals, then flood with fresh entries: the old ones must
  // be the first casualties.
  (void)node.onGossipTimer();
  (void)node.onGossipTimer();
  (void)node.onGossip(30, {Descriptor{30, 0}, Descriptor{31, 0}});
  std::uint32_t maxAge = 0;
  for (const auto& d : node.view()) maxAge = std::max(maxAge, d.age);
  EXPECT_TRUE(viewContains(node.view(), 30));
  EXPECT_TRUE(viewContains(node.view(), 31));
  // With healing=2 and 2 fresh arrivals, the two oldest originals died.
  EXPECT_LE(std::count_if(node.view().begin(), node.view().end(),
                          [&](const Descriptor& d) { return d.age == maxAge; }),
            2);
}

TEST(GenericPss, SamplePeersDistinctAndFromView) {
  GenericPss node(1, smallOptions(), util::Rng(19));
  node.bootstrap(seedRange(2, 9));
  for (int trial = 0; trial < 50; ++trial) {
    const auto peers = node.samplePeers(4);
    ASSERT_EQ(peers.size(), 4u);
    std::set<ProcessId> unique(peers.begin(), peers.end());
    EXPECT_EQ(unique.size(), 4u);
    for (const ProcessId p : peers) EXPECT_TRUE(viewContains(node.view(), p));
  }
}

TEST(GenericPss, OverlayMixesFromRingBootstrap) {
  constexpr std::size_t kN = 24;
  std::vector<std::unique_ptr<GenericPss>> nodes;
  util::Rng rng(21);
  for (ProcessId id = 0; id < kN; ++id) {
    auto options = smallOptions();
    options.viewSize = 6;
    options.gossipLength = 3;
    nodes.push_back(std::make_unique<GenericPss>(id, options, rng.split()));
    nodes.back()->bootstrap(std::vector<ProcessId>{
        static_cast<ProcessId>((id + 1) % kN), static_cast<ProcessId>((id + 2) % kN)});
  }
  for (int round = 0; round < 50; ++round) {
    for (auto& node : nodes) {
      auto message = node->onGossipTimer();
      if (!message.has_value()) continue;
      auto reply = nodes[message->target]->onGossip(node->self(), message->buffer);
      if (reply.has_value()) node->onGossipReply(*reply);
    }
  }
  std::set<ProcessId> referenced;
  for (const auto& node : nodes) {
    EXPECT_GE(node->view().size(), 5u);
    for (const auto& d : node->view()) referenced.insert(d.id);
  }
  EXPECT_EQ(referenced.size(), kN);
}

}  // namespace
}  // namespace epto::pss

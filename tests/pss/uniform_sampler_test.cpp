#include <gtest/gtest.h>

#include <set>

#include "pss/uniform_sampler.h"

namespace epto::pss {
namespace {

TEST(UniformSampler, SamplesDistinctOthers) {
  sim::MembershipDirectory membership;
  for (ProcessId id = 0; id < 10; ++id) membership.add(id);
  UniformSampler sampler(3, membership, util::Rng(1));
  for (int trial = 0; trial < 100; ++trial) {
    const auto peers = sampler.samplePeers(4);
    ASSERT_EQ(peers.size(), 4u);
    std::set<ProcessId> unique(peers.begin(), peers.end());
    EXPECT_EQ(unique.size(), 4u);
    EXPECT_FALSE(unique.contains(3));
  }
}

TEST(UniformSampler, TracksMembershipChangesInstantly) {
  // The oracle PSS is always perfectly fresh — the §2 idealization that
  // Fig. 9 replaces with Cyclon.
  sim::MembershipDirectory membership;
  membership.add(0);
  membership.add(1);
  membership.add(2);
  UniformSampler sampler(0, membership, util::Rng(3));
  membership.remove(1);
  membership.add(7);
  for (int trial = 0; trial < 100; ++trial) {
    for (const ProcessId peer : sampler.samplePeers(2)) {
      EXPECT_NE(peer, 1u);
      EXPECT_TRUE(peer == 2 || peer == 7);
    }
  }
}

TEST(UniformSampler, ReturnsFewerWhenSystemIsSmall) {
  sim::MembershipDirectory membership;
  membership.add(0);
  membership.add(1);
  UniformSampler sampler(0, membership, util::Rng(5));
  EXPECT_EQ(sampler.samplePeers(17).size(), 1u);
}

}  // namespace
}  // namespace epto::pss

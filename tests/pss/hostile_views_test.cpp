// Hostile-view property tests (ISSUE 7 satellite): whatever a poisoned
// shuffle/gossip/exchange payload contains, a PSS view must never
//   * grow past its configured capacity,
//   * contain the node's own id,
//   * resurrect the just-evicted shuffle partner at age 0 (Cyclon's
//     aging-based eviction must not be undone by a forged reply).
// Exercised across Cyclon, GenericPss and Basalt with adversarial
// payloads far outside anything an honest peer would send.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "pss/basalt.h"
#include "pss/cyclon.h"
#include "pss/generic_pss.h"
#include "util/rng.h"

namespace epto::pss {
namespace {

std::vector<ProcessId> seedRange(ProcessId first, ProcessId last) {
  std::vector<ProcessId> seeds;
  for (ProcessId id = first; id <= last; ++id) seeds.push_back(id);
  return seeds;
}

/// A worst-case Cyclon payload: the victim's own id, the attacker id
/// repeated, and a long tail of fresh age-0 ids far beyond shuffleLength.
CyclonView poisonedCyclonView(ProcessId victim, ProcessId attacker,
                              std::size_t tail) {
  CyclonView view;
  view.push_back(CyclonEntry{victim, 0});
  for (std::size_t i = 0; i < 8; ++i) view.push_back(CyclonEntry{attacker, 0});
  for (std::size_t i = 0; i < tail; ++i) {
    view.push_back(CyclonEntry{static_cast<ProcessId>(1000 + i), 0});
  }
  return view;
}

TEST(HostileViews, CyclonPoisonedRequestNeverGrowsViewPastCapacityOrInsertsSelf) {
  util::Rng rng(3);
  Cyclon node(7, {.viewSize = 6, .shuffleLength = 3}, rng.split());
  node.bootstrap(seedRange(10, 15));
  for (int wave = 0; wave < 50; ++wave) {
    (void)node.onShuffleRequest(999, poisonedCyclonView(7, 999, 64));
    EXPECT_LE(node.view().size(), 6u);
    for (const CyclonEntry& entry : node.view()) EXPECT_NE(entry.id, 7u);
  }
  EXPECT_GT(node.stats().hostileEntriesDropped, 0u);
}

TEST(HostileViews, CyclonPoisonedReplyNeverGrowsViewPastCapacityOrInsertsSelf) {
  util::Rng rng(5);
  Cyclon node(7, {.viewSize = 6, .shuffleLength = 3}, rng.split());
  node.bootstrap(seedRange(10, 15));
  for (int wave = 0; wave < 50; ++wave) {
    (void)node.onShuffleTimer();
    node.onShuffleReply(poisonedCyclonView(7, 999, 64));
    EXPECT_LE(node.view().size(), 6u);
    for (const CyclonEntry& entry : node.view()) EXPECT_NE(entry.id, 7u);
  }
}

TEST(HostileViews, CyclonReplyCannotResurrectTheEvictedPartnerAtAgeZero) {
  util::Rng rng(7);
  Cyclon node(7, {.viewSize = 6, .shuffleLength = 3}, rng.split());
  node.bootstrap(seedRange(10, 15));
  const auto request = node.onShuffleTimer();
  ASSERT_TRUE(request.has_value());
  const ProcessId partner = request->target;
  ASSERT_FALSE(std::any_of(
      node.view().begin(), node.view().end(),
      [&](const CyclonEntry& e) { return e.id == partner; }));
  // A forged reply offering the partner back at age 0 (an honest reply
  // never contains its own sender).
  node.onShuffleReply({CyclonEntry{partner, 0}, CyclonEntry{50, 0}});
  EXPECT_FALSE(std::any_of(
      node.view().begin(), node.view().end(),
      [&](const CyclonEntry& e) { return e.id == partner; }));
  EXPECT_GT(node.stats().hostileEntriesDropped, 0u);
}

TEST(HostileViews, GenericPssPoisonedBufferNeverGrowsViewPastCapacityOrInsertsSelf) {
  util::Rng rng(9);
  GenericPss node(7, {.viewSize = 6, .gossipLength = 3}, rng.split());
  node.bootstrap(seedRange(10, 15));
  DescriptorView poison;
  poison.push_back(Descriptor{7, 0});
  for (std::size_t i = 0; i < 64; ++i) {
    poison.push_back(Descriptor{static_cast<ProcessId>(1000 + i), 0});
  }
  for (int wave = 0; wave < 50; ++wave) {
    (void)node.onGossip(999, poison);
    node.onGossipReply(poison);
    EXPECT_LE(node.view().size(), 6u);
    for (const Descriptor& descriptor : node.view()) {
      EXPECT_NE(descriptor.id, 7u);
    }
  }
  EXPECT_GT(node.stats().hostileEntriesDropped, 0u);
}

TEST(HostileViews, BasaltPoisonedCandidatesNeverGrowViewPastCapacityOrInsertSelf) {
  util::Rng rng(11);
  Basalt node(7, {.viewSize = 6, .exchangeLength = 3}, rng.split());
  node.bootstrap(seedRange(10, 15));
  std::vector<ProcessId> poison{7, 7, 7};
  for (std::size_t i = 0; i < 64; ++i) {
    poison.push_back(static_cast<ProcessId>(1000 + i));
  }
  for (int wave = 0; wave < 50; ++wave) {
    (void)node.onExchangeRequest(999, poison);
    node.onExchangeReply(poison);
    const auto view = node.view();
    EXPECT_LE(view.size(), 6u);
    EXPECT_EQ(std::count(view.begin(), view.end(), 7u), 0);
  }
}

/// The contrast behind the ablation: under an identical flooding attack,
/// Cyclon's accept-what-you-are-sent merge gets eclipsed while Basalt's
/// hash-ranked slots hold the attacker near its fair share.
TEST(HostileViews, FloodingEclipsesCyclonButNotBasalt) {
  constexpr ProcessId kAttacker = 900;  // ids 900..907 are attackers
  constexpr std::size_t kAttackers = 8;
  util::Rng rng(13);

  Cyclon cyclon(7, {.viewSize = 8, .shuffleLength = 4}, rng.split());
  cyclon.bootstrap(seedRange(10, 17));
  Basalt basalt(7, {.viewSize = 8, .exchangeLength = 4}, rng.split());
  basalt.bootstrap(seedRange(10, 17));

  std::vector<ProcessId> attackerIds;
  for (std::size_t i = 0; i < kAttackers; ++i) {
    attackerIds.push_back(static_cast<ProcessId>(kAttacker + i));
  }
  for (int wave = 0; wave < 200; ++wave) {
    CyclonView cyclonPoison;
    std::size_t which = static_cast<std::size_t>(wave) % kAttackers;
    for (std::size_t i = 0; i < 4; ++i) {
      cyclonPoison.push_back(
          CyclonEntry{attackerIds[(which + i) % kAttackers], 0});
    }
    (void)cyclon.onShuffleRequest(attackerIds[which], cyclonPoison);
    (void)basalt.onExchangeRequest(attackerIds[which], attackerIds);
  }

  const auto poisonShare = [&](const std::vector<ProcessId>& view) {
    std::size_t poisoned = 0;
    for (const ProcessId id : view) {
      if (id >= kAttacker) ++poisoned;
    }
    return view.empty() ? 0.0
                        : static_cast<double>(poisoned) /
                              static_cast<double>(view.size());
  };
  std::vector<ProcessId> cyclonIds;
  for (const CyclonEntry& entry : cyclon.view()) cyclonIds.push_back(entry.id);

  const double cyclonShare = poisonShare(cyclonIds);
  const double basaltShare = poisonShare(basalt.view());
  // Cyclon's free slots and sent-entry overwrites soak up attacker ids;
  // Basalt keeps most slots with honest minimizers.
  EXPECT_GT(cyclonShare, 0.4) << "cyclon " << cyclonShare;
  EXPECT_LT(basaltShare, cyclonShare) << "basalt " << basaltShare;
  EXPECT_LT(basaltShare, 0.75);
}

}  // namespace
}  // namespace epto::pss

#include <gtest/gtest.h>

#include "metrics/histogram.h"
#include "util/ensure.h"

namespace epto::metrics {
namespace {

TEST(Histogram, EmptyBehaviour) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.total(), 0u);
  EXPECT_THROW((void)h.percentile(0.5), util::ContractViolation);
  EXPECT_TRUE(h.rows(10).empty());
  EXPECT_EQ(h.summary().count, 0u);
}

TEST(Histogram, CountsAndPercentiles) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 100; ++v) h.add(v);
  EXPECT_EQ(h.total(), 100u);
  EXPECT_EQ(h.percentile(0.01), 1u);
  EXPECT_EQ(h.percentile(0.50), 50u);
  EXPECT_EQ(h.percentile(1.00), 100u);
}

TEST(Histogram, WeightedAdd) {
  Histogram h;
  h.add(5, 99);
  h.add(10, 1);
  EXPECT_EQ(h.total(), 100u);
  EXPECT_EQ(h.percentile(0.99), 5u);
  EXPECT_EQ(h.percentile(1.0), 10u);
}

TEST(Histogram, MatchesCdfOnSameData) {
  Histogram h;
  Cdf cdf;
  for (const std::uint64_t v : {7u, 3u, 3u, 9u, 1u, 7u, 7u}) {
    h.add(v);
    cdf.add(static_cast<double>(v));
  }
  for (const double p : {0.2, 0.5, 0.8, 1.0}) {
    EXPECT_DOUBLE_EQ(static_cast<double>(h.percentile(p)), cdf.percentile(p));
  }
  EXPECT_DOUBLE_EQ(h.summary().mean, cdf.summary().mean);
  EXPECT_NEAR(h.summary().stddev, cdf.summary().stddev, 1e-12);
}

TEST(Histogram, MergeAddsCounts) {
  Histogram a;
  Histogram b;
  a.add(1, 2);
  b.add(1, 3);
  b.add(5, 1);
  a.merge(b);
  EXPECT_EQ(a.total(), 6u);
  EXPECT_EQ(a.bins().at(1), 5u);
  EXPECT_EQ(a.bins().at(5), 1u);
}

TEST(Histogram, SummaryMoments) {
  Histogram h;
  h.add(2);
  h.add(4);
  h.add(6);
  const auto s = h.summary();
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 6.0);
  EXPECT_NEAR(s.stddev, 2.0, 1e-12);
}

TEST(Histogram, RowsMonotone) {
  Histogram h;
  for (std::uint64_t v = 0; v < 1000; v += 7) h.add(v);
  const auto rows = h.rows(20);
  ASSERT_EQ(rows.size(), 20u);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GE(rows[i].value, rows[i - 1].value);
    EXPECT_GT(rows[i].cumulative, rows[i - 1].cumulative);
  }
}

TEST(Histogram, FormatRowsShape) {
  Histogram h;
  h.add(10);
  h.add(20);
  const std::string text = h.formatRows("lbl", 2);
  EXPECT_NE(text.find("lbl p=50 value=10"), std::string::npos);
  EXPECT_NE(text.find("lbl p=100 value=20"), std::string::npos);
}

}  // namespace
}  // namespace epto::metrics

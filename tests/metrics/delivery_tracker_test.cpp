#include <gtest/gtest.h>

#include "metrics/delivery_tracker.h"
#include "util/ensure.h"

namespace epto::metrics {
namespace {

constexpr EventId kE1{1, 0};
constexpr EventId kE2{2, 0};
constexpr EventId kE3{1, 1};

OrderKey keyOf(const EventId& id, Timestamp ts) { return {ts, id.source, id.sequence}; }

std::unordered_map<ProcessId, ProcessLifetime> allAlive(std::initializer_list<ProcessId> ids) {
  std::unordered_map<ProcessId, ProcessLifetime> lifetimes;
  for (const ProcessId id : ids) lifetimes[id] = ProcessLifetime{0, std::nullopt};
  return lifetimes;
}

TEST(DeliveryTracker, CleanRunHasNoViolations) {
  DeliveryTracker tracker;
  tracker.onBroadcast(1, kE1, keyOf(kE1, 10), 100);
  tracker.onBroadcast(2, kE2, keyOf(kE2, 20), 110);
  for (const ProcessId p : {1u, 2u, 3u}) {
    tracker.onDeliver(p, kE1, 500);
    tracker.onDeliver(p, kE2, 600);
  }
  const auto report = tracker.finalize(allAlive({1, 2, 3}), 1000);
  EXPECT_TRUE(report.allPropertiesHold());
  EXPECT_EQ(report.broadcasts, 2u);
  EXPECT_EQ(report.deliveries, 6u);
  EXPECT_EQ(report.eventsMeasured, 2u);
  EXPECT_EQ(report.delays.total(), 6u);
  EXPECT_EQ(report.delays.percentile(1.0), 490u);  // kE2: 600 - 110
  EXPECT_EQ(report.delays.percentile(0.1), 400u);  // kE1: 500 - 100
}

TEST(DeliveryTracker, DetectsOrderViolation) {
  DeliveryTracker tracker;
  tracker.onBroadcast(1, kE1, keyOf(kE1, 10), 0);
  tracker.onBroadcast(2, kE2, keyOf(kE2, 20), 0);
  // Process 3 delivers the later-keyed event first.
  tracker.onDeliver(3, kE2, 100);
  tracker.onDeliver(3, kE1, 200);
  const auto report = tracker.finalize(allAlive({3}), 1000);
  EXPECT_EQ(report.orderViolations, 1u);
}

TEST(DeliveryTracker, OrderCheckCanBeDisabled) {
  DeliveryTracker tracker(/*checkTotalOrder=*/false);
  tracker.onBroadcast(1, kE1, keyOf(kE1, 10), 0);
  tracker.onBroadcast(2, kE2, keyOf(kE2, 20), 0);
  tracker.onDeliver(3, kE2, 100);
  tracker.onDeliver(3, kE1, 200);
  const auto report = tracker.finalize(allAlive({3}), 1000);
  EXPECT_EQ(report.orderViolations, 0u);
}

TEST(DeliveryTracker, DetectsDuplicateDelivery) {
  DeliveryTracker tracker(/*checkTotalOrder=*/false);
  tracker.onBroadcast(1, kE1, keyOf(kE1, 10), 0);
  tracker.onDeliver(2, kE1, 100);
  tracker.onDeliver(2, kE1, 150);
  const auto report = tracker.finalize(allAlive({2}), 1000);
  EXPECT_EQ(report.integrityViolations, 1u);
}

TEST(DeliveryTracker, DuplicateOrderedDeliveryAlsoTripsOrderCheck) {
  DeliveryTracker tracker;
  tracker.onBroadcast(1, kE1, keyOf(kE1, 10), 0);
  tracker.onDeliver(2, kE1, 100);
  tracker.onDeliver(2, kE1, 150);  // same key again: not strictly increasing
  const auto report = tracker.finalize(allAlive({2}), 1000);
  EXPECT_GE(report.orderViolations + report.integrityViolations, 2u);
}

TEST(DeliveryTracker, DetectsDeliveryOfUnknownEvent) {
  DeliveryTracker tracker;
  tracker.onDeliver(2, kE1, 100);
  const auto report = tracker.finalize(allAlive({2}), 1000);
  EXPECT_EQ(report.integrityViolations, 1u);
}

TEST(DeliveryTracker, DetectsHole) {
  DeliveryTracker tracker;
  tracker.onBroadcast(1, kE1, keyOf(kE1, 10), 0);
  tracker.onDeliver(1, kE1, 100);
  tracker.onDeliver(2, kE1, 100);
  // Process 3 is alive the whole run but never delivered kE1.
  const auto report = tracker.finalize(allAlive({1, 2, 3}), 1000);
  EXPECT_EQ(report.holes, 1u);
}

TEST(DeliveryTracker, UndeliveredEventFromDepartedSourceIsVacuouslyAgreed) {
  // Agreement is conditional on at least one delivery: an event whose
  // broadcaster died before relaying it (no process ever delivered it)
  // produces no holes and, because the source departed, no validity
  // violation either.
  DeliveryTracker tracker;
  tracker.onBroadcast(1, kE1, keyOf(kE1, 10), 0);
  auto lifetimes = allAlive({2, 3});
  lifetimes[1] = ProcessLifetime{0, 5};  // broadcaster churned out
  const auto report = tracker.finalize(lifetimes, 1000);
  EXPECT_EQ(report.holes, 0u);
  EXPECT_EQ(report.validityViolations, 0u);
}

TEST(DeliveryTracker, SingleDeliveryMakesAgreementBinding) {
  DeliveryTracker tracker;
  tracker.onBroadcast(1, kE1, keyOf(kE1, 10), 0);
  tracker.onDeliver(2, kE1, 50);
  auto lifetimes = allAlive({2, 3});
  lifetimes[1] = ProcessLifetime{0, 5};
  const auto report = tracker.finalize(lifetimes, 1000);
  EXPECT_EQ(report.holes, 1u);  // process 3 should have it now
}

TEST(DeliveryTracker, DepartedProcessIsNotJudgedForHoles) {
  DeliveryTracker tracker;
  tracker.onBroadcast(1, kE1, keyOf(kE1, 10), 0);
  tracker.onDeliver(1, kE1, 100);
  auto lifetimes = allAlive({1});
  lifetimes[9] = ProcessLifetime{0, 50};  // left before the event stabilized
  const auto report = tracker.finalize(lifetimes, 1000);
  EXPECT_EQ(report.holes, 0u);
}

TEST(DeliveryTracker, LateJoinerIsExemptForOlderEvents) {
  DeliveryTracker tracker;
  tracker.onBroadcast(1, kE1, keyOf(kE1, 10), 100);
  tracker.onBroadcast(1, kE3, keyOf(kE3, 30), 300);
  tracker.onDeliver(1, kE1, 400);
  tracker.onDeliver(1, kE3, 700);
  tracker.onDeliver(7, kE3, 700);  // joiner got the newer event only
  auto lifetimes = allAlive({1});
  lifetimes[7] = ProcessLifetime{200, std::nullopt};  // joined after kE1
  const auto report = tracker.finalize(lifetimes, 1000);
  EXPECT_EQ(report.holes, 0u);
}

TEST(DeliveryTracker, ValidityRequiresSourceDelivery) {
  DeliveryTracker tracker;
  tracker.onBroadcast(1, kE1, keyOf(kE1, 10), 0);
  tracker.onDeliver(2, kE1, 100);  // everyone but the broadcaster
  const auto report = tracker.finalize(allAlive({1, 2}), 1000);
  EXPECT_EQ(report.validityViolations, 1u);
  EXPECT_EQ(report.holes, 1u);  // and it is also a hole at process 1
}

TEST(DeliveryTracker, DepartedSourceIsExemptFromValidity) {
  DeliveryTracker tracker;
  tracker.onBroadcast(1, kE1, keyOf(kE1, 10), 0);
  tracker.onDeliver(2, kE1, 100);
  auto lifetimes = allAlive({2});
  lifetimes[1] = ProcessLifetime{0, 50};
  const auto report = tracker.finalize(lifetimes, 1000);
  EXPECT_EQ(report.validityViolations, 0u);
}

TEST(DeliveryTracker, EventsAfterCutoffAreNotJudged) {
  DeliveryTracker tracker;
  tracker.onBroadcast(1, kE1, keyOf(kE1, 10), 900);  // after cutoff
  const auto report = tracker.finalize(allAlive({1, 2}), 500);
  EXPECT_EQ(report.eventsMeasured, 0u);
  EXPECT_EQ(report.holes, 0u);
  EXPECT_EQ(report.validityViolations, 0u);
  EXPECT_TRUE(report.delays.empty());
}

TEST(DeliveryTracker, TaggedDeliveryCountsForAgreementButNotDelay) {
  DeliveryTracker tracker;
  tracker.onBroadcast(1, kE1, keyOf(kE1, 10), 0);
  tracker.onDeliver(1, kE1, 100, DeliveryTag::Ordered);
  tracker.onDeliver(2, kE1, 100, DeliveryTag::OutOfOrder);
  const auto report = tracker.finalize(allAlive({1, 2}), 1000);
  EXPECT_EQ(report.holes, 0u);
  EXPECT_EQ(report.taggedDeliveries, 1u);
  EXPECT_EQ(report.delays.total(), 1u);  // only the ordered one
}

TEST(DeliveryTracker, OrderedPlusTaggedAtSameProcessIsDuplicate) {
  DeliveryTracker tracker;
  tracker.onBroadcast(1, kE1, keyOf(kE1, 10), 0);
  tracker.onDeliver(2, kE1, 100, DeliveryTag::Ordered);
  tracker.onDeliver(2, kE1, 120, DeliveryTag::OutOfOrder);
  const auto report = tracker.finalize(allAlive({2}), 1000);
  EXPECT_EQ(report.integrityViolations, 1u);
}

TEST(DeliveryTracker, RejectsDoubleBroadcastOfSameId) {
  DeliveryTracker tracker;
  tracker.onBroadcast(1, kE1, keyOf(kE1, 10), 0);
  EXPECT_THROW(tracker.onBroadcast(1, kE1, keyOf(kE1, 11), 5), util::ContractViolation);
}

TEST(DeliveryTracker, DelayClampsToZeroForClockSkew) {
  DeliveryTracker tracker;
  tracker.onBroadcast(1, kE1, keyOf(kE1, 10), 100);
  tracker.onDeliver(1, kE1, 90);  // delivered "before" broadcast per local clock
  const auto report = tracker.finalize(allAlive({1}), 1000);
  EXPECT_EQ(report.delays.percentile(1.0), 0u);
}

TEST(DeliveryTracker, RedeliveryAfterRestartIsNotADuplicate) {
  // A node that crashes and rejoins with fresh state legitimately
  // re-delivers events it already saw in its previous life. Integrity
  // (Property 1) is per incarnation, not per process id.
  DeliveryTracker tracker;
  tracker.onBroadcast(1, kE1, keyOf(kE1, 10), 0);
  tracker.onDeliver(2, kE1, 100);
  tracker.onProcessCrash(2, 150);
  tracker.onProcessRestart(2, 300);
  tracker.onDeliver(2, kE1, 400);  // same event, new incarnation
  const auto report = tracker.finalize(allAlive({2}), 1000);
  EXPECT_EQ(report.integrityViolations, 0u);
  EXPECT_EQ(report.restarts, 1u);
  EXPECT_TRUE(report.allPropertiesHold());
}

TEST(DeliveryTracker, SameIncarnationDuplicateStillTrips) {
  DeliveryTracker tracker(/*checkTotalOrder=*/false);
  tracker.onBroadcast(1, kE1, keyOf(kE1, 10), 0);
  tracker.onProcessCrash(2, 10);
  tracker.onProcessRestart(2, 20);
  tracker.onDeliver(2, kE1, 100);
  tracker.onDeliver(2, kE1, 150);  // twice within the *same* incarnation
  const auto report = tracker.finalize(allAlive({2}), 1000);
  EXPECT_EQ(report.integrityViolations, 1u);
}

TEST(DeliveryTracker, RestartResetsTheOrderFrontier) {
  // The reborn node starts its delivery sequence from scratch, so
  // re-delivering an earlier-keyed event is not an order violation.
  DeliveryTracker tracker;
  tracker.onBroadcast(1, kE1, keyOf(kE1, 10), 0);
  tracker.onBroadcast(2, kE2, keyOf(kE2, 20), 0);
  tracker.onDeliver(3, kE1, 100);
  tracker.onDeliver(3, kE2, 120);
  tracker.onProcessCrash(3, 150);
  tracker.onProcessRestart(3, 300);
  tracker.onDeliver(3, kE1, 400);  // before kE2's key again — fresh frontier
  tracker.onDeliver(3, kE2, 420);
  const auto report = tracker.finalize(allAlive({3}), 1000);
  EXPECT_EQ(report.orderViolations, 0u);
}

TEST(DeliveryTracker, CrashAloneDoesNotBumpRestartCount) {
  DeliveryTracker tracker;
  tracker.onProcessCrash(3, 100);
  const auto report = tracker.finalize(allAlive({1, 2}), 1000);
  EXPECT_EQ(report.restarts, 0u);
}

TEST(DeliveryTracker, RestartedBroadcasterIsExemptFromValidity) {
  // The broadcaster crashed after sending and rejoined with empty state:
  // its final lifetime starts after the broadcast, so — like a departed
  // source — it is not required to deliver its own pre-crash event.
  DeliveryTracker tracker;
  tracker.onBroadcast(1, kE1, keyOf(kE1, 10), 0);
  tracker.onProcessCrash(1, 50);
  tracker.onProcessRestart(1, 500);
  tracker.onDeliver(2, kE1, 100);
  auto lifetimes = allAlive({2});
  lifetimes[1] = ProcessLifetime{500, std::nullopt};  // current incarnation only
  const auto report = tracker.finalize(lifetimes, 1000);
  EXPECT_EQ(report.validityViolations, 0u);
  EXPECT_EQ(report.holes, 0u);  // late-joiner exemption covers it too
}

}  // namespace
}  // namespace epto::metrics

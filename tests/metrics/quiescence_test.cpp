#include <gtest/gtest.h>

#include <string>

#include "metrics/quiescence.h"

namespace epto::metrics {
namespace {

TEST(QuiescenceLedgerTest, StartsQuiescentAndDrainsPerDelivery) {
  QuiescenceLedger ledger;
  EXPECT_TRUE(ledger.quiescent());
  EXPECT_EQ(ledger.pendingEvents(), 0u);

  const EventId id{/*source=*/1, /*sequence=*/7};
  ledger.onBroadcast(id, {0, 1, 2});
  EXPECT_FALSE(ledger.quiescent());
  EXPECT_EQ(ledger.pendingEvents(), 1u);

  ledger.onDeliver(0, id);
  ledger.onDeliver(2, id);
  EXPECT_FALSE(ledger.quiescent());
  ledger.onDeliver(1, id);
  EXPECT_TRUE(ledger.quiescent());
}

TEST(QuiescenceLedgerTest, IgnoresUnknownDeliveriesAndEmptyExpectations) {
  QuiescenceLedger ledger;
  ledger.onDeliver(0, EventId{9, 9});  // never broadcast — no-op
  EXPECT_TRUE(ledger.quiescent());
  ledger.onBroadcast(EventId{1, 1}, {});  // nobody owed — no debt
  EXPECT_TRUE(ledger.quiescent());
}

TEST(QuiescenceLedgerTest, CrashErasesDebtsEverywhere) {
  QuiescenceLedger ledger;
  ledger.onBroadcast(EventId{1, 1}, {0, 3});
  ledger.onBroadcast(EventId{2, 1}, {3});
  EXPECT_EQ(ledger.pendingEvents(), 2u);

  ledger.onCrash(3);
  // Event 2:1 was only owed to the crashed node — fully discharged;
  // event 1:1 still waits on node 0.
  EXPECT_EQ(ledger.pendingEvents(), 1u);
  ledger.onDeliver(0, EventId{1, 1});
  EXPECT_TRUE(ledger.quiescent());
}

TEST(QuiescenceLedgerTest, RestartDoesNotReinstateOldDebts) {
  QuiescenceLedger ledger;
  ledger.onBroadcast(EventId{1, 1}, {0, 3});
  ledger.onCrash(3);
  // A rejoined node 3 only appears in expectation sets of *later*
  // broadcasts; the old debt stays discharged.
  ledger.onBroadcast(EventId{1, 2}, {0, 3});
  ledger.onDeliver(0, EventId{1, 1});
  ledger.onDeliver(0, EventId{1, 2});
  EXPECT_FALSE(ledger.quiescent());
  ledger.onDeliver(3, EventId{1, 2});
  EXPECT_TRUE(ledger.quiescent());
}

TEST(QuiescenceLedgerTest, MissingReportNamesEventAndHoldouts) {
  QuiescenceLedger ledger;
  ledger.onBroadcast(EventId{4, 11}, {2, 5});
  ledger.onDeliver(2, EventId{4, 11});

  const std::string report = ledger.missingReport();
  EXPECT_NE(report.find("1 event(s) not yet delivered everywhere"), std::string::npos);
  EXPECT_NE(report.find("event 4:11 missing at {5}"), std::string::npos);
}

TEST(QuiescenceLedgerTest, MissingReportCapsListedEvents) {
  QuiescenceLedger ledger;
  for (std::uint32_t seq = 0; seq < 5; ++seq) {
    ledger.onBroadcast(EventId{1, seq}, {0});
  }
  const std::string report = ledger.missingReport(/*maxEvents=*/2);
  EXPECT_NE(report.find("5 event(s)"), std::string::npos);
  EXPECT_NE(report.find("; ..."), std::string::npos);
}

}  // namespace
}  // namespace epto::metrics

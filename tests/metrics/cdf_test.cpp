#include <gtest/gtest.h>

#include "metrics/cdf.h"
#include "util/ensure.h"

namespace epto::metrics {
namespace {

TEST(Cdf, EmptyBehaviour) {
  Cdf cdf;
  EXPECT_TRUE(cdf.empty());
  EXPECT_EQ(cdf.size(), 0u);
  EXPECT_THROW((void)cdf.percentile(0.5), util::ContractViolation);
  EXPECT_TRUE(cdf.rows(10).empty());
  EXPECT_EQ(cdf.summary().count, 0u);
}

TEST(Cdf, SingleSample) {
  Cdf cdf;
  cdf.add(42.0);
  EXPECT_DOUBLE_EQ(cdf.percentile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(cdf.percentile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(cdf.percentile(1.0), 42.0);
  const auto s = cdf.summary();
  EXPECT_DOUBLE_EQ(s.mean, 42.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Cdf, NearestRankPercentiles) {
  Cdf cdf;
  for (int i = 1; i <= 100; ++i) cdf.add(i);
  EXPECT_DOUBLE_EQ(cdf.percentile(0.01), 1.0);
  EXPECT_DOUBLE_EQ(cdf.percentile(0.50), 50.0);
  EXPECT_DOUBLE_EQ(cdf.percentile(0.95), 95.0);
  EXPECT_DOUBLE_EQ(cdf.percentile(1.00), 100.0);
}

TEST(Cdf, PercentileValidatesInput) {
  Cdf cdf;
  cdf.add(1.0);
  EXPECT_THROW((void)cdf.percentile(-0.1), util::ContractViolation);
  EXPECT_THROW((void)cdf.percentile(1.1), util::ContractViolation);
}

TEST(Cdf, UnsortedInsertionOrderDoesNotMatter) {
  Cdf a;
  Cdf b;
  for (const double v : {5.0, 1.0, 3.0, 2.0, 4.0}) a.add(v);
  for (const double v : {1.0, 2.0, 3.0, 4.0, 5.0}) b.add(v);
  for (const double p : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    EXPECT_DOUBLE_EQ(a.percentile(p), b.percentile(p));
  }
}

TEST(Cdf, MergeCombinesSamples) {
  Cdf a;
  Cdf b;
  a.add(1.0);
  a.add(2.0);
  b.add(3.0);
  b.add(4.0);
  a.merge(b);
  EXPECT_EQ(a.size(), 4u);
  EXPECT_DOUBLE_EQ(a.percentile(1.0), 4.0);
}

TEST(Cdf, RowsEndAtMax) {
  Cdf cdf;
  for (int i = 0; i < 50; ++i) cdf.add(i);
  const auto rows = cdf.rows(10);
  ASSERT_EQ(rows.size(), 10u);
  EXPECT_DOUBLE_EQ(rows.back().value, 49.0);
  EXPECT_DOUBLE_EQ(rows.back().cumulative, 1.0);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GE(rows[i].value, rows[i - 1].value);
  }
  EXPECT_THROW((void)cdf.rows(1), util::ContractViolation);
}

TEST(Cdf, FormatRowsShape) {
  Cdf cdf;
  cdf.add(10.0);
  cdf.add(20.0);
  const std::string text = cdf.formatRows("lbl", 2);
  EXPECT_NE(text.find("lbl p=50 value=10"), std::string::npos);
  EXPECT_NE(text.find("lbl p=100 value=20"), std::string::npos);
}

TEST(Summarize, MeanAndStddev) {
  const auto s = summarize({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_EQ(s.count, 8u);
}

}  // namespace
}  // namespace epto::metrics

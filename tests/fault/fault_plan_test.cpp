#include <gtest/gtest.h>

#include "fault/fault_plan.h"
#include "util/ensure.h"

namespace epto::fault {
namespace {

TEST(FaultPlanTest, BuilderRecordsSpecsInOrder) {
  FaultPlan plan;
  plan.crash(100, 3, /*restartAt=*/400)
      .stall(200, 300, 5)
      .partition(250, 350, {0, 1})
      .burstLoss(300, 500, 0.25, {2})
      .delaySpike(300, 500, 40);
  ASSERT_EQ(plan.specs().size(), 5u);
  EXPECT_EQ(plan.specs()[0].kind, FaultKind::Crash);
  EXPECT_EQ(plan.specs()[1].kind, FaultKind::Stall);
  EXPECT_EQ(plan.specs()[2].kind, FaultKind::Partition);
  EXPECT_EQ(plan.specs()[3].kind, FaultKind::BurstLoss);
  EXPECT_EQ(plan.specs()[4].kind, FaultKind::DelaySpike);
  EXPECT_EQ(plan.horizon(), 500u);
  EXPECT_EQ(plan.maxNode(), 5u);
  EXPECT_FALSE(plan.empty());
}

TEST(FaultPlanTest, ActiveWindowIsHalfOpen) {
  FaultPlan plan;
  plan.stall(100, 200, 1);
  const FaultSpec& spec = plan.specs()[0];
  EXPECT_FALSE(spec.activeAt(99));
  EXPECT_TRUE(spec.activeAt(100));   // inclusive start
  EXPECT_TRUE(spec.activeAt(199));
  EXPECT_FALSE(spec.activeAt(200));  // exclusive end
}

TEST(FaultPlanTest, CrashWithoutRestartIsForever) {
  FaultPlan plan;
  plan.crash(50, 0);
  const FaultSpec& spec = plan.specs()[0];
  EXPECT_EQ(spec.until, kNever);
  EXPECT_FALSE(spec.activeAt(49));
  EXPECT_TRUE(spec.activeAt(50));
  EXPECT_TRUE(spec.activeAt(1'000'000));
}

TEST(FaultPlanTest, PartitionCutsOnlyCrossIslandLinks) {
  FaultPlan plan;
  plan.partition(0, 100, {0, 1, 2});
  const FaultSpec& spec = plan.specs()[0];
  EXPECT_TRUE(spec.matchesLink(0, 5));   // island -> rest
  EXPECT_TRUE(spec.matchesLink(5, 2));   // rest -> island
  EXPECT_FALSE(spec.matchesLink(0, 1));  // within the island
  EXPECT_FALSE(spec.matchesLink(5, 6));  // within the rest
}

TEST(FaultPlanTest, LinkFaultsMatchTouchingLinksOrEverything) {
  FaultPlan plan;
  plan.burstLoss(0, 100, 0.5, {3}).delaySpike(0, 100, 10);
  const FaultSpec& burst = plan.specs()[0];
  EXPECT_TRUE(burst.matchesLink(3, 7));
  EXPECT_TRUE(burst.matchesLink(7, 3));
  EXPECT_FALSE(burst.matchesLink(6, 7));
  const FaultSpec& spike = plan.specs()[1];  // empty nodes = all links
  EXPECT_TRUE(spike.matchesLink(0, 1));
  EXPECT_TRUE(spike.matchesLink(8, 9));
}

TEST(FaultPlanTest, NodeFaultsNeverMatchLinks) {
  FaultPlan plan;
  plan.crash(0, 1, 10).stall(0, 10, 2);
  EXPECT_FALSE(plan.specs()[0].matchesLink(1, 2));
  EXPECT_FALSE(plan.specs()[1].matchesLink(2, 1));
}

TEST(FaultPlanTest, RejectsInvalidWindowsAndRates) {
  FaultPlan plan;
  EXPECT_THROW(plan.stall(200, 100, 0), util::ContractViolation);   // ends before start
  EXPECT_THROW(plan.stall(100, 100, 0), util::ContractViolation);   // empty window
  EXPECT_THROW(plan.crash(100, 0, 50), util::ContractViolation);    // restart before crash
  EXPECT_THROW(plan.partition(0, 100, {}), util::ContractViolation);
  EXPECT_THROW(plan.burstLoss(0, 100, 1.0), util::ContractViolation);
  EXPECT_THROW(plan.burstLoss(0, 100, -0.1), util::ContractViolation);
  EXPECT_THROW(plan.delaySpike(0, 100, 0), util::ContractViolation);
  EXPECT_TRUE(plan.empty());  // nothing slipped through
}

TEST(FaultPlanTest, SignatureIsCanonicalAndSeedDeterministic) {
  FaultPlan::RandomMixOptions options;
  options.nodeCount = 16;
  options.start = 100;
  options.horizon = 5000;
  options.minDuration = 50;
  options.maxDuration = 400;
  options.crashes = 2;
  options.stalls = 2;
  options.partitions = 1;
  options.bursts = 1;
  options.delaySpikes = 1;

  const FaultPlan a = FaultPlan::randomMix(7, options);
  const FaultPlan b = FaultPlan::randomMix(7, options);
  const FaultPlan c = FaultPlan::randomMix(8, options);
  EXPECT_FALSE(a.signature().empty());
  EXPECT_EQ(a.signature(), b.signature());   // same seed -> identical schedule
  EXPECT_NE(a.signature(), c.signature());   // different seed -> different
  EXPECT_EQ(a.specs().size(), 7u);
  for (const FaultSpec& spec : a.specs()) {
    EXPECT_GE(spec.at, options.start);
    EXPECT_LE(spec.until, options.horizon + options.maxDuration);
  }
  EXPECT_LT(a.maxNode(), 16u);
}

TEST(FaultPlanTest, RandomMixValidatesEnvelope) {
  FaultPlan::RandomMixOptions options;
  options.nodeCount = 1;
  EXPECT_THROW(FaultPlan::randomMix(1, options), util::ContractViolation);
  options.nodeCount = 4;
  options.horizon = 0;
  EXPECT_THROW(FaultPlan::randomMix(1, options), util::ContractViolation);
  options.horizon = 100;
  options.minDuration = 10;
  options.maxDuration = 5;
  EXPECT_THROW(FaultPlan::randomMix(1, options), util::ContractViolation);
}

}  // namespace
}  // namespace epto::fault

#include <gtest/gtest.h>

#include "fault/fault_controller.h"
#include "fault/fault_plan.h"
#include "obs/registry.h"

namespace epto::fault {
namespace {

TEST(FaultControllerTest, CrashAndStallWindows) {
  FaultPlan plan;
  plan.crash(100, 3, /*restartAt=*/200).stall(150, 250, 5);
  FaultController controller{std::move(plan)};

  EXPECT_FALSE(controller.isCrashed(3, 99));
  EXPECT_TRUE(controller.isCrashed(3, 100));
  EXPECT_TRUE(controller.isCrashed(3, 199));
  EXPECT_FALSE(controller.isCrashed(3, 200));  // restart boundary exclusive
  EXPECT_FALSE(controller.isCrashed(5, 150));  // stalls are not crashes

  EXPECT_FALSE(controller.isStalled(5, 149));
  EXPECT_TRUE(controller.isStalled(5, 150));
  EXPECT_FALSE(controller.isStalled(5, 250));
  EXPECT_FALSE(controller.isStalled(3, 150));  // crashed node, not stalled
}

TEST(FaultControllerTest, CrashedEndpointCutsEveryLink) {
  FaultPlan plan;
  plan.crash(100, 2, 300);
  FaultController controller{std::move(plan)};

  const auto out = controller.linkFate(2, 7, 150);
  EXPECT_TRUE(out.cut);
  EXPECT_EQ(out.cutBy, FaultKind::Crash);
  const auto in = controller.linkFate(7, 2, 150);
  EXPECT_TRUE(in.cut);
  EXPECT_EQ(in.cutBy, FaultKind::Crash);

  EXPECT_FALSE(controller.linkFate(2, 7, 99).cut);   // before the crash
  EXPECT_FALSE(controller.linkFate(2, 7, 300).cut);  // after the restart
  EXPECT_FALSE(controller.linkFate(5, 7, 150).cut);  // unrelated link
}

TEST(FaultControllerTest, PartitionCutsCrossIslandLinksOnly) {
  FaultPlan plan;
  plan.partition(100, 200, {0, 1});
  FaultController controller{std::move(plan)};

  const auto cross = controller.linkFate(0, 5, 150);
  EXPECT_TRUE(cross.cut);
  EXPECT_EQ(cross.cutBy, FaultKind::Partition);
  EXPECT_FALSE(controller.linkFate(0, 1, 150).cut);  // inside the island
  EXPECT_FALSE(controller.linkFate(4, 5, 150).cut);  // inside the rest
  EXPECT_FALSE(controller.linkFate(0, 5, 200).cut);  // healed
}

TEST(FaultControllerTest, OverlappingBurstsCompoundAndSpikesAdd) {
  FaultPlan plan;
  plan.burstLoss(100, 200, 0.5)
      .burstLoss(100, 200, 0.5, {3})
      .delaySpike(100, 200, 40)
      .delaySpike(100, 200, 60, {3});
  FaultController controller{std::move(plan)};

  // Link 3->9 is inside both bursts and both spikes.
  const auto both = controller.linkFate(3, 9, 150);
  EXPECT_FALSE(both.cut);
  EXPECT_DOUBLE_EQ(both.extraLossRate, 0.75);  // 1 - 0.5 * 0.5
  EXPECT_EQ(both.extraDelay, 100u);

  // Link 8->9 only sees the all-links specs.
  const auto one = controller.linkFate(8, 9, 150);
  EXPECT_DOUBLE_EQ(one.extraLossRate, 0.5);
  EXPECT_EQ(one.extraDelay, 40u);

  // Outside the window there is no effect at all.
  const auto idle = controller.linkFate(3, 9, 250);
  EXPECT_DOUBLE_EQ(idle.extraLossRate, 0.0);
  EXPECT_EQ(idle.extraDelay, 0u);
}

TEST(FaultControllerTest, NoteHooksFeedStats) {
  FaultController controller{FaultPlan{}};
  controller.noteCrash(1, 10);
  controller.noteRestart(1, 20);
  controller.noteStall(2, 30);
  controller.noteStall(3, 30);
  controller.noteLinkDrop(1, 2, 40, FaultKind::Crash);
  controller.noteLinkDrop(1, 2, 41, FaultKind::Partition);
  controller.noteLinkDrop(1, 2, 42, FaultKind::Partition);
  controller.noteLinkDrop(1, 2, 43, FaultKind::BurstLoss);
  controller.noteDelayed(1, 2, 44);

  const FaultStats stats = controller.stats();
  EXPECT_EQ(stats.crashes, 1u);
  EXPECT_EQ(stats.restarts, 1u);
  EXPECT_EQ(stats.stalls, 2u);
  EXPECT_EQ(stats.crashDrops, 1u);
  EXPECT_EQ(stats.partitionDrops, 2u);
  EXPECT_EQ(stats.burstDrops, 1u);
  EXPECT_EQ(stats.delayedMessages, 1u);
}

TEST(FaultControllerTest, RecordToPublishesCounters) {
  FaultController controller{FaultPlan{}};
  controller.noteCrash(1, 10);
  controller.noteRestart(1, 20);
  controller.noteLinkDrop(0, 1, 30, FaultKind::BurstLoss);
  controller.noteDelayed(0, 1, 40);

  obs::Registry registry;
  controller.recordTo(registry);
  EXPECT_EQ(registry.counter("epto_fault_crashes_total").value(), 1u);
  EXPECT_EQ(registry.counter("epto_fault_restarts_total").value(), 1u);
  EXPECT_EQ(registry.counter("epto_fault_stalls_total").value(), 0u);
  EXPECT_EQ(registry.counter("epto_fault_crash_drops_total").value(), 0u);
  EXPECT_EQ(registry.counter("epto_fault_partition_drops_total").value(), 0u);
  EXPECT_EQ(registry.counter("epto_fault_burst_drops_total").value(), 1u);
  EXPECT_EQ(registry.counter("epto_fault_delayed_messages_total").value(), 1u);
}

TEST(FaultControllerTest, EmptyPlanIsInert) {
  FaultController controller{FaultPlan{}};
  EXPECT_FALSE(controller.isCrashed(0, 0));
  EXPECT_FALSE(controller.isStalled(0, 1'000'000));
  const auto fate = controller.linkFate(0, 1, 500);
  EXPECT_FALSE(fate.cut);
  EXPECT_DOUBLE_EQ(fate.extraLossRate, 0.0);
  EXPECT_EQ(fate.extraDelay, 0u);
}

}  // namespace
}  // namespace epto::fault

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "fault/adversary.h"
#include "obs/registry.h"
#include "util/ensure.h"

namespace epto::fault {
namespace {

TEST(AdversaryPlan, EmptyByDefault) {
  AdversaryPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_TRUE(plan.resolveMembers(100).empty());
}

TEST(AdversaryPlan, RejectsInvalidKnobs) {
  EXPECT_THROW(AdversaryPlan{}.fraction(-0.1), util::ContractViolation);
  EXPECT_THROW(AdversaryPlan{}.fraction(0.5), util::ContractViolation);
  EXPECT_THROW(AdversaryPlan{}.fraction(1.0), util::ContractViolation);
  EXPECT_THROW(AdversaryPlan{}.floodEventsPerBall(0), util::ContractViolation);
  EXPECT_THROW(AdversaryPlan{}.equivocationFanout(1), util::ContractViolation);
}

TEST(AdversaryPlan, ResolvesFloorOfFractionDeterministically) {
  AdversaryPlan plan;
  plan.fraction(0.1).seed(99);
  const auto first = plan.resolveMembers(100);
  const auto second = plan.resolveMembers(100);
  EXPECT_EQ(first, second);
  EXPECT_EQ(first.size(), 10u);
  EXPECT_TRUE(std::is_sorted(first.begin(), first.end()));
  const std::set<ProcessId> unique(first.begin(), first.end());
  EXPECT_EQ(unique.size(), first.size());
  for (const ProcessId id : first) EXPECT_LT(id, 100u);
}

TEST(AdversaryPlan, DifferentSeedsDrawDifferentMembers) {
  AdversaryPlan a;
  a.fraction(0.2).seed(1);
  AdversaryPlan b;
  b.fraction(0.2).seed(2);
  EXPECT_NE(a.resolveMembers(200), b.resolveMembers(200));
}

TEST(AdversaryPlan, ExplicitMembersUnionWithDrawnFraction) {
  AdversaryPlan plan;
  plan.fraction(0.05).seed(3).members({42, 17});
  const auto resolved = plan.resolveMembers(100);
  EXPECT_TRUE(std::binary_search(resolved.begin(), resolved.end(), 42u));
  EXPECT_TRUE(std::binary_search(resolved.begin(), resolved.end(), 17u));
  EXPECT_GE(resolved.size(), 5u);
}

TEST(AdversaryPlan, RejectsMembersOutsideTheMembership) {
  AdversaryPlan plan;
  plan.members({100});
  EXPECT_THROW(plan.resolveMembers(100), util::ContractViolation);
}

TEST(AdversaryPlan, RejectsPlansLeavingFewerThanTwoHonest) {
  AdversaryPlan plan;
  plan.members({0, 1, 2});
  EXPECT_THROW(plan.resolveMembers(4), util::ContractViolation);
  EXPECT_NO_THROW(plan.resolveMembers(5));
}

TEST(AdversaryPlan, SignatureCapturesEveryKnob) {
  AdversaryPlan plan;
  plan.fraction(0.1).seed(7).members({3}).floodBallsPerRound(9);
  const std::string sig = plan.signature();
  EXPECT_NE(sig.find("f=0.100000"), std::string::npos);
  EXPECT_NE(sig.find("seed=7"), std::string::npos);
  EXPECT_NE(sig.find("flood=9x"), std::string::npos);
  EXPECT_NE(sig.find("members=[3]"), std::string::npos);

  AdversaryPlan muted = plan;
  muted.behaviors(AdversaryBehaviors{.poisonPss = false});
  EXPECT_NE(plan.signature(), muted.signature());
}

TEST(AdversaryController, AnswersIsByzantineInConstantTimeTable) {
  AdversaryPlan plan;
  plan.members({2, 5});
  const AdversaryController controller(plan, 8);
  EXPECT_TRUE(controller.isByzantine(2));
  EXPECT_TRUE(controller.isByzantine(5));
  EXPECT_FALSE(controller.isByzantine(0));
  EXPECT_FALSE(controller.isByzantine(7));
  EXPECT_FALSE(controller.isByzantine(10'000));  // out of range, not UB
  EXPECT_EQ(controller.members(), (std::vector<ProcessId>{2, 5}));
}

TEST(AdversaryController, AccumulatesStatsAndPublishesThem) {
  AdversaryPlan plan;
  plan.members({1});
  AdversaryController controller(plan, 4);
  controller.noteFloodBall(8);
  controller.noteFloodBall(8);
  controller.noteEquivocation();
  controller.noteLineageForgery();
  controller.noteReplay();
  controller.notePssPoison(/*reply=*/false);
  controller.notePssPoison(/*reply=*/true);
  controller.noteHonestBallSunk();

  const AdversaryStats stats = controller.stats();
  EXPECT_EQ(stats.floodBallsSent, 2u);
  EXPECT_EQ(stats.junkEventsSent, 16u);
  EXPECT_EQ(stats.equivocations, 1u);
  EXPECT_EQ(stats.lineageForgeries, 1u);
  EXPECT_EQ(stats.ballsReplayed, 1u);
  EXPECT_EQ(stats.pssPoisonSent, 1u);
  EXPECT_EQ(stats.pssPoisonReplies, 1u);
  EXPECT_EQ(stats.honestBallsSunk, 1u);

  obs::Registry registry;
  controller.recordTo(registry);
  const obs::Snapshot snapshot = registry.snapshot();
  bool sawFlood = false;
  for (const obs::Sample& sample : snapshot) {
    if (sample.name == "epto_adversary_flood_balls_total") {
      sawFlood = true;
      EXPECT_EQ(sample.counter, 2u);
    }
  }
  EXPECT_TRUE(sawFlood);
}

}  // namespace
}  // namespace epto::fault

#include <gtest/gtest.h>

#include <set>

#include "sim/churn.h"
#include "util/ensure.h"

namespace epto::sim {
namespace {

class ChurnTest : public ::testing::Test {
 protected:
  void build(double rate, Timestamp period, Timestamp stopAfter = 0,
             std::size_t initial = 100) {
    for (ProcessId id = 0; id < initial; ++id) {
      membership_.add(id);
      nextId_ = id + 1;
    }
    driver_ = std::make_unique<ChurnDriver>(
        sim_, membership_, ChurnDriver::Options{rate, period, stopAfter},
        [this](ProcessId id) {
          membership_.remove(id);
          killed_.insert(id);
        },
        [this](std::size_t count) {
          for (std::size_t i = 0; i < count; ++i) membership_.add(nextId_++);
        },
        util::Rng(31));
  }

  Simulator sim_;
  MembershipDirectory membership_;
  std::unique_ptr<ChurnDriver> driver_;
  std::set<ProcessId> killed_;
  ProcessId nextId_ = 0;
};

TEST_F(ChurnTest, ReplacesTheConfiguredFractionEachPulse) {
  build(0.1, 125);
  driver_->start();
  sim_.runUntil(125);
  EXPECT_EQ(driver_->stats().pulses, 1u);
  EXPECT_EQ(driver_->stats().removed, 10u);
  EXPECT_EQ(driver_->stats().added, 10u);
  EXPECT_EQ(membership_.size(), 100u);  // size constant across a pulse
}

TEST_F(ChurnTest, PulsesRepeatEveryPeriod) {
  build(0.05, 100);
  driver_->start();
  sim_.runUntil(1000);
  EXPECT_EQ(driver_->stats().pulses, 10u);
  EXPECT_EQ(driver_->stats().removed, 50u);
  EXPECT_EQ(membership_.size(), 100u);
}

TEST_F(ChurnTest, StopAfterEndsTheChurn) {
  build(0.1, 100, /*stopAfter=*/350);
  driver_->start();
  sim_.runUntil(2000);
  EXPECT_EQ(driver_->stats().pulses, 3u);  // pulses at 100, 200, 300
}

TEST_F(ChurnTest, StopAfterExactlyOnAPulseBoundarySuppressesThatPulse) {
  // The cutoff check is `now >= stopAfter`, so a pulse scheduled exactly
  // at the boundary is the first one *not* to fire.
  build(0.1, 100, /*stopAfter=*/300);
  driver_->start();
  sim_.runUntil(2000);
  EXPECT_EQ(driver_->stats().pulses, 2u);  // pulses at 100 and 200 only
  EXPECT_EQ(driver_->stats().removed, 20u);
}

TEST_F(ChurnTest, StopAfterEqualToPeriodMeansNoPulsesAtAll) {
  build(0.1, 100, /*stopAfter=*/100);
  driver_->start();
  sim_.runUntil(2000);
  EXPECT_EQ(driver_->stats().pulses, 0u);
  EXPECT_TRUE(killed_.empty());
  EXPECT_EQ(membership_.size(), 100u);
}

TEST_F(ChurnTest, ZeroRateNeverPulses) {
  build(0.0, 100);
  driver_->start();
  sim_.runUntil(1000);
  EXPECT_EQ(driver_->stats().pulses, 0u);
  EXPECT_TRUE(killed_.empty());
}

TEST_F(ChurnTest, VictimsAreActuallyRemovedAndNewIdsAdded) {
  build(0.2, 50);
  driver_->start();
  sim_.runUntil(50);
  EXPECT_EQ(killed_.size(), 20u);
  for (const ProcessId id : killed_) EXPECT_FALSE(membership_.isAlive(id));
  // Replacements got fresh ids beyond the initial range.
  EXPECT_GE(nextId_, 120u);
}

TEST_F(ChurnTest, RejectsBadOptions) {
  MembershipDirectory membership;
  Simulator sim;
  const auto kill = [](ProcessId) {};
  const auto spawn = [](std::size_t) {};
  EXPECT_THROW(
      ChurnDriver(sim, membership, {1.0, 100, 0}, kill, spawn, util::Rng(1)),
      util::ContractViolation);
  EXPECT_THROW(
      ChurnDriver(sim, membership, {0.1, 0, 0}, kill, spawn, util::Rng(1)),
      util::ContractViolation);
  EXPECT_THROW(ChurnDriver(sim, membership, {0.1, 100, 0}, nullptr, spawn, util::Rng(1)),
               util::ContractViolation);
}

}  // namespace
}  // namespace epto::sim

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "sim/membership.h"
#include "util/ensure.h"

namespace epto::sim {
namespace {

TEST(Membership, AddRemoveIsAliveSize) {
  MembershipDirectory directory;
  directory.add(1);
  directory.add(2);
  EXPECT_TRUE(directory.isAlive(1));
  EXPECT_FALSE(directory.isAlive(3));
  EXPECT_EQ(directory.size(), 2u);
  directory.remove(1);
  EXPECT_FALSE(directory.isAlive(1));
  EXPECT_EQ(directory.size(), 1u);
}

TEST(Membership, DoubleAddAndGhostRemoveThrow) {
  MembershipDirectory directory;
  directory.add(1);
  EXPECT_THROW(directory.add(1), util::ContractViolation);
  EXPECT_THROW(directory.remove(9), util::ContractViolation);
}

TEST(Membership, SwapRemoveKeepsIndexConsistent) {
  MembershipDirectory directory;
  for (ProcessId id = 0; id < 10; ++id) directory.add(id);
  directory.remove(0);  // swaps the last element into slot 0
  directory.remove(9);
  directory.remove(4);
  std::set<ProcessId> expected{1, 2, 3, 5, 6, 7, 8};
  std::set<ProcessId> actual(directory.aliveIds().begin(), directory.aliveIds().end());
  EXPECT_EQ(actual, expected);
  for (const ProcessId id : expected) EXPECT_TRUE(directory.isAlive(id));
}

TEST(Membership, SampleOtherNeverReturnsSelf) {
  MembershipDirectory directory;
  directory.add(1);
  directory.add(2);
  util::Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(directory.sampleOther(1, rng), 2u);
}

TEST(Membership, SampleOthersDistinctAndExcludesSelf) {
  MembershipDirectory directory;
  for (ProcessId id = 0; id < 20; ++id) directory.add(id);
  util::Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const auto sample = directory.sampleOthers(7, 5, rng);
    ASSERT_EQ(sample.size(), 5u);
    std::set<ProcessId> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 5u);
    EXPECT_FALSE(unique.contains(7));
  }
}

TEST(Membership, SampleOthersCapsAtAvailablePeers) {
  MembershipDirectory directory;
  directory.add(1);
  directory.add(2);
  directory.add(3);
  util::Rng rng(7);
  const auto sample = directory.sampleOthers(1, 10, rng);
  std::set<ProcessId> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique, (std::set<ProcessId>{2, 3}));
}

TEST(Membership, SampleOthersZeroOrEmpty) {
  MembershipDirectory directory;
  util::Rng rng(9);
  directory.add(1);
  EXPECT_TRUE(directory.sampleOthers(1, 3, rng).empty());
  directory.add(2);
  EXPECT_TRUE(directory.sampleOthers(1, 0, rng).empty());
}

TEST(Membership, SampleOthersWorksForNonMemberSelf) {
  // A caller that is not (or no longer) in the directory can still sample.
  MembershipDirectory directory;
  directory.add(1);
  directory.add(2);
  util::Rng rng(11);
  const auto sample = directory.sampleOthers(99, 2, rng);
  EXPECT_EQ(sample.size(), 2u);
}

TEST(Membership, SamplingIsApproximatelyUniform) {
  MembershipDirectory directory;
  for (ProcessId id = 0; id < 10; ++id) directory.add(id);
  util::Rng rng(13);
  std::map<ProcessId, int> counts;
  const int trials = 90000;
  for (int i = 0; i < trials; ++i) ++counts[directory.sampleOther(0, rng)];
  for (ProcessId id = 1; id < 10; ++id) {
    EXPECT_NEAR(counts[id], trials / 9, trials / 90) << "id " << id;
  }
}

TEST(Membership, SubsetSamplingIsApproximatelyUniform) {
  MembershipDirectory directory;
  for (ProcessId id = 0; id < 10; ++id) directory.add(id);
  util::Rng rng(17);
  std::map<ProcessId, int> counts;
  const int trials = 30000;
  for (int i = 0; i < trials; ++i) {
    for (const ProcessId id : directory.sampleOthers(0, 3, rng)) ++counts[id];
  }
  for (ProcessId id = 1; id < 10; ++id) {
    EXPECT_NEAR(counts[id], trials / 3, trials / 30) << "id " << id;
  }
}

}  // namespace
}  // namespace epto::sim

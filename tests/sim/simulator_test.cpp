#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"
#include "util/ensure.h"

namespace epto::sim {
namespace {

TEST(Simulator, StartsAtTickZeroEmpty) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0u);
  EXPECT_EQ(sim.pendingActions(), 0u);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(30, [&] { order.push_back(3); });
  sim.schedule(10, [&] { order.push_back(1); });
  sim.schedule(20, [&] { order.push_back(2); });
  while (sim.step()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30u);
}

TEST(Simulator, SameTickRunsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule(10, [&order, i] { order.push_back(i); });
  }
  while (sim.step()) {
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, NowAdvancesOnlyToExecutedActions) {
  Simulator sim;
  sim.schedule(100, [] {});
  EXPECT_EQ(sim.now(), 0u);
  sim.step();
  EXPECT_EQ(sim.now(), 100u);
}

TEST(Simulator, ActionsCanScheduleMoreActions) {
  Simulator sim;
  int fired = 0;
  std::function<void()> recurring = [&] {
    if (++fired < 5) sim.schedule(10, recurring);
  };
  sim.schedule(10, recurring);
  sim.runUntil(1000);
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(sim.now(), 1000u);
}

TEST(Simulator, RunUntilStopsAtBoundaryInclusive) {
  Simulator sim;
  int fired = 0;
  sim.schedule(10, [&] { ++fired; });
  sim.schedule(20, [&] { ++fired; });
  sim.schedule(21, [&] { ++fired; });
  sim.runUntil(20);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 20u);
  EXPECT_EQ(sim.pendingActions(), 1u);
}

TEST(Simulator, RunForIsRelative) {
  Simulator sim;
  sim.schedule(5, [] {});
  sim.runFor(10);
  EXPECT_EQ(sim.now(), 10u);
  sim.runFor(10);
  EXPECT_EQ(sim.now(), 20u);
}

TEST(Simulator, ScheduleAtAbsoluteTime) {
  Simulator sim;
  bool fired = false;
  sim.scheduleAt(42, [&] { fired = true; });
  sim.runUntil(41);
  EXPECT_FALSE(fired);
  sim.runUntil(42);
  EXPECT_TRUE(fired);
}

TEST(Simulator, RejectsPastAndNull) {
  Simulator sim;
  sim.schedule(10, [] {});
  sim.runUntil(10);
  EXPECT_THROW(sim.scheduleAt(5, [] {}), util::ContractViolation);
  EXPECT_THROW(sim.schedule(1, nullptr), util::ContractViolation);
  EXPECT_THROW(sim.runUntil(5), util::ContractViolation);
}

TEST(Simulator, CountsExecutedActions) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule(static_cast<Timestamp>(i), [] {});
  sim.runUntil(100);
  EXPECT_EQ(sim.executedActions(), 7u);
}

TEST(Simulator, InterleavedSchedulingKeepsDeterministicOrder) {
  // Two runs with identical scheduling produce identical execution traces.
  const auto trace = [] {
    Simulator sim;
    std::vector<int> order;
    sim.schedule(10, [&] {
      order.push_back(1);
      sim.schedule(0, [&] { order.push_back(2); });
      sim.schedule(5, [&] { order.push_back(3); });
    });
    sim.schedule(10, [&] { order.push_back(4); });
    sim.runUntil(100);
    return order;
  };
  EXPECT_EQ(trace(), trace());
  EXPECT_EQ(trace(), (std::vector<int>{1, 4, 2, 3}));
}

}  // namespace
}  // namespace epto::sim

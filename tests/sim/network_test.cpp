#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/network.h"
#include "util/ensure.h"

namespace epto::sim {
namespace {

struct Received {
  ProcessId from;
  ProcessId to;
  std::string body;
  Timestamp at;
};

class NetworkTest : public ::testing::Test {
 protected:
  void build(double lossRate, util::EmpiricalDistribution latency) {
    latency_ = std::move(latency);
    network_ = std::make_unique<SimNetwork<std::string>>(
        sim_, SimNetwork<std::string>::Options{&latency_, lossRate}, util::Rng(21));
    network_->setReceiver([this](ProcessId from, ProcessId to, const std::string& body) {
      log_.push_back(Received{from, to, body, sim_.now()});
    });
  }

  Simulator sim_;
  util::EmpiricalDistribution latency_ = util::constantDistribution(10.0);
  std::unique_ptr<SimNetwork<std::string>> network_;
  std::vector<Received> log_;
};

TEST_F(NetworkTest, DeliversAfterSampledLatency) {
  build(0.0, util::constantDistribution(10.0));
  network_->send(1, 2, "hello");
  sim_.runUntil(9);
  EXPECT_TRUE(log_.empty());
  sim_.runUntil(10);
  ASSERT_EQ(log_.size(), 1u);
  EXPECT_EQ(log_[0].from, 1u);
  EXPECT_EQ(log_[0].to, 2u);
  EXPECT_EQ(log_[0].body, "hello");
  EXPECT_EQ(log_[0].at, 10u);
}

TEST_F(NetworkTest, IndependentLatenciesCanReorderMessages) {
  build(0.0, util::uniformDistribution(1.0, 200.0));
  for (int i = 0; i < 50; ++i) network_->send(1, 2, std::to_string(i));
  sim_.runUntil(1000);
  ASSERT_EQ(log_.size(), 50u);
  bool reordered = false;
  for (std::size_t i = 1; i < log_.size(); ++i) {
    if (std::stoi(log_[i].body) < std::stoi(log_[i - 1].body)) reordered = true;
  }
  EXPECT_TRUE(reordered);  // asynchrony: no FIFO guarantee
}

TEST_F(NetworkTest, LossDropsTheConfiguredFraction) {
  build(0.3, util::constantDistribution(1.0));
  const int sends = 20000;
  for (int i = 0; i < sends; ++i) network_->send(1, 2, "x");
  sim_.runUntil(10);
  EXPECT_NEAR(static_cast<double>(log_.size()), sends * 0.7, sends * 0.02);
  EXPECT_EQ(network_->stats().sent, static_cast<std::uint64_t>(sends));
  EXPECT_EQ(network_->stats().dropped + network_->stats().delivered,
            static_cast<std::uint64_t>(sends));
}

TEST_F(NetworkTest, ZeroLossDeliversEverything) {
  build(0.0, util::constantDistribution(1.0));
  for (int i = 0; i < 100; ++i) network_->send(1, 2, "x");
  sim_.runUntil(10);
  EXPECT_EQ(log_.size(), 100u);
  EXPECT_EQ(network_->stats().dropped, 0u);
}

TEST_F(NetworkTest, RejectsBadOptions) {
  EXPECT_THROW(SimNetwork<std::string>(
                   sim_, SimNetwork<std::string>::Options{nullptr, 0.0}, util::Rng(1)),
               util::ContractViolation);
  EXPECT_THROW(SimNetwork<std::string>(
                   sim_, SimNetwork<std::string>::Options{&latency_, 1.0}, util::Rng(1)),
               util::ContractViolation);
}

TEST_F(NetworkTest, SendWithoutReceiverThrows) {
  SimNetwork<std::string> net(sim_, SimNetwork<std::string>::Options{&latency_, 0.0},
                              util::Rng(1));
  EXPECT_THROW(net.send(1, 2, "x"), util::ContractViolation);
}

}  // namespace
}  // namespace epto::sim

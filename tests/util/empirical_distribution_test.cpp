#include <gtest/gtest.h>

#include <cmath>

#include "metrics/cdf.h"
#include "util/empirical_distribution.h"
#include "util/ensure.h"
#include "util/rng.h"

namespace epto::util {
namespace {

TEST(EmpiricalDistribution, RejectsDegenerateKnotSets) {
  EXPECT_THROW(EmpiricalDistribution({{1.0, 1.0}}), ContractViolation);
  // Non-increasing values.
  EXPECT_THROW(EmpiricalDistribution({{2.0, 0.0}, {1.0, 1.0}}), ContractViolation);
  // Decreasing probability.
  EXPECT_THROW(EmpiricalDistribution({{0.0, 0.5}, {1.0, 0.2}, {2.0, 1.0}}),
               ContractViolation);
  // Does not end at 1.
  EXPECT_THROW(EmpiricalDistribution({{0.0, 0.0}, {1.0, 0.9}}), ContractViolation);
}

TEST(EmpiricalDistribution, QuantileInterpolatesLinearly) {
  const EmpiricalDistribution d{{{0.0, 0.0}, {10.0, 1.0}}};
  EXPECT_DOUBLE_EQ(d.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(d.quantile(1.0), 10.0);
  EXPECT_THROW((void)d.quantile(-0.1), ContractViolation);
  EXPECT_THROW((void)d.quantile(1.1), ContractViolation);
}

TEST(EmpiricalDistribution, CdfIsInverseOfQuantile) {
  const auto& d = planetLabLatency();
  for (const double p : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    EXPECT_NEAR(d.cdf(d.quantile(p)), p, 1e-9);
  }
}

TEST(EmpiricalDistribution, CdfBoundaryBehaviour) {
  const EmpiricalDistribution d{{{5.0, 0.0}, {10.0, 1.0}}};
  EXPECT_DOUBLE_EQ(d.cdf(4.0), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(11.0), 1.0);
  EXPECT_DOUBLE_EQ(d.cdf(7.5), 0.5);
}

TEST(EmpiricalDistribution, UniformMoments) {
  const auto d = uniformDistribution(0.0, 12.0);
  EXPECT_NEAR(d.mean(), 6.0, 1e-9);
  EXPECT_NEAR(d.stddev(), 12.0 / std::sqrt(12.0), 1e-9);
}

TEST(EmpiricalDistribution, ConstantDistributionIsAnAtom) {
  const auto d = constantDistribution(125.0);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_NEAR(d.sample(rng), 125.0, 1e-6);
    EXPECT_EQ(d.sampleTicks(rng), 125u);
  }
  EXPECT_NEAR(d.mean(), 125.0, 1e-6);
  EXPECT_NEAR(d.stddev(), 0.0, 1e-3);
}

TEST(EmpiricalDistribution, SampleTicksNeverNegative) {
  const auto d = uniformDistribution(-5.0, 5.0);
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LE(d.sampleTicks(rng), 5u);
  }
}

TEST(PlanetLabLatency, MatchesPaperStatistics) {
  // Paper Fig. 5: mean ~157, sigma ~119, p5 = 15, p50 = 125, p95 = 366.
  const auto& d = planetLabLatency();
  EXPECT_NEAR(d.mean(), 157.0, 157.0 * 0.08);
  EXPECT_NEAR(d.stddev(), 119.0, 119.0 * 0.08);
  EXPECT_NEAR(d.quantile(0.05), 15.0, 1.0);
  EXPECT_NEAR(d.quantile(0.50), 125.0, 1.0);
  EXPECT_NEAR(d.quantile(0.95), 366.0, 1.0);
}

TEST(PlanetLabLatency, WorstCaseIsAboutSixRoundDurations) {
  // "some processes have a very large latency, up to six times the round
  // duration" with delta = 125.
  const auto& d = planetLabLatency();
  EXPECT_GE(d.maxValue(), 5.0 * 125.0);
  EXPECT_LE(d.maxValue(), 7.0 * 125.0);
}

TEST(PlanetLabLatency, SampledMomentsAgreeWithAnalytic) {
  const auto& d = planetLabLatency();
  Rng rng(11);
  metrics::Cdf cdf;
  for (int i = 0; i < 100000; ++i) cdf.add(d.sample(rng));
  const auto s = cdf.summary();
  EXPECT_NEAR(s.mean, d.mean(), d.mean() * 0.02);
  EXPECT_NEAR(s.stddev, d.stddev(), d.stddev() * 0.03);
}

}  // namespace
}  // namespace epto::util

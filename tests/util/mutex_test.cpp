#include "util/mutex.h"

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <thread>
#include <vector>

namespace epto::util {
namespace {

TEST(MutexTest, MutexLockProvidesMutualExclusion) {
  // 8 threads hammer an int guarded by the annotated mutex; any lost
  // update means the wrapper failed to forward to the underlying lock
  // (TSan CI would also flag it).
  constexpr int kThreads = 8;
  constexpr int kIncrementsPerThread = 20000;
  Mutex mutex;
  int counter = 0;  // guarded by `mutex` (locals cannot carry the attribute)

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrementsPerThread; ++i) {
        const MutexLock lock(mutex);
        ++counter;
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const MutexLock lock(mutex);
  EXPECT_EQ(counter, kThreads * kIncrementsPerThread);
}

TEST(MutexTest, CondVarLockTimesOutWhenNotNotified) {
  Mutex mutex;
  std::condition_variable cv;
  CondVarLock lock(mutex);
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(5);
  EXPECT_EQ(lock.waitUntil(cv, deadline), std::cv_status::timeout);
}

TEST(MutexTest, CondVarLockWakesOnNotify) {
  Mutex mutex;
  std::condition_variable cv;
  bool ready = false;  // guarded by `mutex` (locals cannot carry the attribute)

  std::thread notifier([&] {
    const MutexLock lock(mutex);
    ready = true;
    cv.notify_one();
  });

  bool observed = false;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  {
    CondVarLock lock(mutex);
    // waitUntil releases the mutex while blocked — the notifier above can
    // only make progress if it does.
    while (!ready) {
      if (lock.waitUntil(cv, deadline) == std::cv_status::timeout) break;
    }
    observed = ready;
  }
  notifier.join();
  EXPECT_TRUE(observed);
}

}  // namespace
}  // namespace epto::util

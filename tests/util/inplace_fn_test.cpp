// InplaceFn — the simulator's small-buffer scheduling callable. The
// properties the simulator depends on: inline storage for closures that
// fit (no allocation on the scheduling hot path), transparent heap
// fallback for those that don't, move-only ownership with exactly one
// destruction, and callability through moves.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <utility>

#include "util/inplace_fn.h"

namespace epto::util {
namespace {

using Fn = InplaceFn<64>;

TEST(InplaceFnTest, SmallCallableIsStoredInlineAndInvokes) {
  int hits = 0;
  Fn fn([&hits] { ++hits; });
  ASSERT_TRUE(static_cast<bool>(fn));
  EXPECT_TRUE(fn.isInline());
  fn();
  fn();
  EXPECT_EQ(hits, 2);
}

TEST(InplaceFnTest, OversizedCallableFallsBackToHeapAndStillWorks) {
  std::array<std::uint64_t, 16> big{};  // 128 bytes > 64-byte capacity
  big[0] = 41;
  std::uint64_t out = 0;
  Fn fn([big, &out] { out = big[0] + 1; });
  ASSERT_TRUE(static_cast<bool>(fn));
  EXPECT_FALSE(fn.isInline());
  fn();
  EXPECT_EQ(out, 42u);
}

TEST(InplaceFnTest, DefaultAndNullptrConstructedAreEmpty) {
  Fn empty;
  Fn null = nullptr;
  EXPECT_FALSE(static_cast<bool>(empty));
  EXPECT_TRUE(empty == nullptr);
  EXPECT_TRUE(null == nullptr);
  Fn set([] {});
  EXPECT_TRUE(set != nullptr);
}

TEST(InplaceFnTest, MoveTransfersOwnershipAndEmptiesSource) {
  int hits = 0;
  Fn a([&hits] { ++hits; });
  Fn b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);

  Fn c;
  c = std::move(b);
  EXPECT_FALSE(static_cast<bool>(b));  // NOLINT(bugprone-use-after-move)
  c();
  EXPECT_EQ(hits, 2);
}

TEST(InplaceFnTest, WrappedStateIsDestroyedExactlyOnce) {
  // The shared_ptr's use count observes construction/destruction of the
  // closure through moves and reassignment.
  auto tracker = std::make_shared<int>(0);
  {
    Fn a([tracker] { (void)tracker; });
    EXPECT_EQ(tracker.use_count(), 2);
    Fn b(std::move(a));
    EXPECT_EQ(tracker.use_count(), 2);  // moved, not copied
    b = Fn([] {});                      // reassignment destroys the closure
    EXPECT_EQ(tracker.use_count(), 1);
  }
  EXPECT_EQ(tracker.use_count(), 1);
}

TEST(InplaceFnTest, HeapFallbackDestroysExactlyOnce) {
  auto tracker = std::make_shared<int>(0);
  std::array<std::uint64_t, 16> padding{};
  {
    Fn a([tracker, padding] { (void)padding; });
    EXPECT_FALSE(a.isInline());
    EXPECT_EQ(tracker.use_count(), 2);
    Fn b(std::move(a));
    EXPECT_EQ(tracker.use_count(), 2);
  }
  EXPECT_EQ(tracker.use_count(), 1);
}

}  // namespace
}  // namespace epto::util

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <set>
#include <vector>

#include "util/ensure.h"
#include "util/rng.h"

namespace epto::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ReseedRestartsTheStream) {
  Rng rng(77);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(rng());
  rng.reseed(77);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng(), first[static_cast<std::size_t>(i)]);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(5);
  Rng child = parent.split();
  // The child must differ from a fresh copy of the parent's continuation.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent() == child()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, SplitsAreMutuallyDistinct) {
  Rng parent(5);
  Rng a = parent.split();
  Rng b = parent.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(7), 7u);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowZeroThrows) {
  Rng rng(9);
  EXPECT_THROW((void)rng.below(0), ContractViolation);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(13);
  std::array<int, 10> counts{};
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) ++counts[rng.below(10)];
  for (const int count : counts) {
    EXPECT_NEAR(count, draws / 10, draws / 100);  // within 10% relative
  }
}

TEST(Rng, BetweenCoversClosedInterval) {
  Rng rng(17);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.between(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, BetweenRejectsInvertedBounds) {
  Rng rng(17);
  EXPECT_THROW((void)rng.between(3, 2), ContractViolation);
}

TEST(Rng, Uniform01InRangeAndWellSpread) {
  Rng rng(21);
  double sum = 0.0;
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / draws, 0.5, 0.01);
}

TEST(Rng, ChanceEdgeCases) {
  Rng rng(25);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-0.5));
    EXPECT_TRUE(rng.chance(1.5));
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(29);
  int hits = 0;
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(hits, draws * 0.3, draws * 0.01);
}

TEST(Rng, Mix64IsDeterministicAndSpreads) {
  EXPECT_EQ(mix64(42), mix64(42));
  EXPECT_NE(mix64(42), mix64(43));
  // Avalanche sanity: flipping one input bit flips many output bits.
  const std::uint64_t d = mix64(1) ^ mix64(0);
  EXPECT_GT(std::popcount(d), 16);
}

}  // namespace
}  // namespace epto::util

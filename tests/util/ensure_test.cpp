#include <gtest/gtest.h>

#include <string>

#include "util/ensure.h"

namespace epto::util {
namespace {

TEST(Ensure, PassingConditionIsSilent) {
  EXPECT_NO_THROW(EPTO_ENSURE(1 + 1 == 2));
  EXPECT_NO_THROW(EPTO_ENSURE_MSG(true, "never shown"));
}

TEST(Ensure, FailingConditionThrowsContractViolation) {
  EXPECT_THROW(EPTO_ENSURE(false), ContractViolation);
  EXPECT_THROW(EPTO_ENSURE_MSG(false, "boom"), ContractViolation);
}

TEST(Ensure, ViolationIsALogicError) {
  try {
    EPTO_ENSURE_MSG(false, "details here");
    FAIL() << "should have thrown";
  } catch (const std::logic_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("contract violation"), std::string::npos);
    EXPECT_NE(what.find("details here"), std::string::npos);
    EXPECT_NE(what.find("ensure_test.cpp"), std::string::npos);
  }
}

TEST(Ensure, MessageIncludesTheExpression) {
  try {
    EPTO_ENSURE(2 > 3);
    FAIL() << "should have thrown";
  } catch (const ContractViolation& error) {
    EXPECT_NE(std::string(error.what()).find("2 > 3"), std::string::npos);
  }
}

TEST(Ensure, ConditionEvaluatedExactlyOnce) {
  int evaluations = 0;
  const auto check = [&] {
    ++evaluations;
    return true;
  };
  EPTO_ENSURE(check());
  EXPECT_EQ(evaluations, 1);
}

}  // namespace
}  // namespace epto::util

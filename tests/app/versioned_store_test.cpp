#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "app/versioned_store.h"
#include "util/ensure.h"

namespace epto::app {
namespace {

class EveryoneSampler final : public PeerSampler {
 public:
  EveryoneSampler(ProcessId self, std::size_t n) {
    for (ProcessId id = 0; id < n; ++id) {
      if (id != self) others_.push_back(id);
    }
  }
  std::vector<ProcessId> samplePeers(std::size_t k) override {
    // Rotate so every peer is targeted over time even when k < n-1.
    std::vector<ProcessId> out;
    for (std::size_t i = 0; i < k && i < others_.size(); ++i) {
      out.push_back(others_[(cursor_ + i) % others_.size()]);
    }
    if (!others_.empty()) cursor_ = (cursor_ + 1) % others_.size();
    return out;
  }

 private:
  std::vector<ProcessId> others_;
  std::size_t cursor_ = 0;
};

Config tinyConfig() {
  Config config;
  config.fanout = 3;
  config.ttl = 4;
  config.clockMode = ClockMode::Logical;
  return config;
}

std::vector<std::unique_ptr<VersionedStore>> makeCluster(
    std::size_t n, VersionedStore::Options options = {}) {
  std::vector<std::unique_ptr<VersionedStore>> stores;
  for (ProcessId id = 0; id < n; ++id) {
    stores.push_back(std::make_unique<VersionedStore>(
        id, tinyConfig(), std::make_shared<EveryoneSampler>(id, n), options));
  }
  return stores;
}

void pump(std::vector<std::unique_ptr<VersionedStore>>& stores, int rounds) {
  for (int round = 0; round < rounds; ++round) {
    std::vector<std::pair<std::size_t, Process::RoundOutput>> outputs;
    for (std::size_t i = 0; i < stores.size(); ++i) {
      outputs.emplace_back(i, stores[i]->process().onRound());
    }
    for (auto& [from, out] : outputs) {
      if (out.ball == nullptr) continue;
      for (const ProcessId target : out.targets) {
        stores[target]->process().onBall(*out.ball);
      }
    }
  }
}

TEST(VersionedStore, PutThenGetEverywhere) {
  auto stores = makeCluster(4);
  stores[0]->put("city", "neuchatel");
  pump(stores, 12);
  for (const auto& store : stores) {
    const auto value = store->get("city");
    ASSERT_TRUE(value.has_value());
    EXPECT_EQ(value->value, "neuchatel");
    EXPECT_EQ(value->version, 1u);
  }
}

TEST(VersionedStore, MissingKeyIsEmpty) {
  auto stores = makeCluster(2);
  EXPECT_FALSE(stores[0]->get("nothing").has_value());
  EXPECT_TRUE(stores[0]->history("nothing").empty());
  EXPECT_FALSE(stores[0]->getVersion("nothing", 1).has_value());
}

TEST(VersionedStore, VersionsIncreasePerKey) {
  auto stores = makeCluster(3);
  stores[0]->put("k", "v1");
  pump(stores, 10);
  stores[1]->put("k", "v2");
  stores[2]->put("other", "x");
  pump(stores, 10);
  for (const auto& store : stores) {
    EXPECT_EQ(store->get("k")->version, 2u);
    EXPECT_EQ(store->get("k")->value, "v2");
    EXPECT_EQ(store->get("other")->version, 1u);
  }
}

TEST(VersionedStore, ConcurrentConflictingPutsResolveIdentically) {
  // The DataFlasks problem: three replicas write the same key at once.
  // Total order picks one winner — the same one everywhere — and the
  // losers become earlier versions, not lost writes.
  auto stores = makeCluster(5);
  stores[1]->put("leader", "r1");
  stores[3]->put("leader", "r3");
  stores[4]->put("leader", "r4");
  pump(stores, 14);
  const auto reference = stores[0]->get("leader");
  ASSERT_TRUE(reference.has_value());
  EXPECT_EQ(reference->version, 3u);  // all three writes applied
  for (const auto& store : stores) {
    EXPECT_EQ(store->get("leader")->value, reference->value);
    EXPECT_EQ(store->digest(), stores[0]->digest());
    EXPECT_EQ(store->history("leader").size(), 3u);
  }
}

TEST(VersionedStore, HistoryRetainsBoundedVersions) {
  auto stores = makeCluster(2, VersionedStore::Options{.historyDepth = 2});
  for (int i = 1; i <= 4; ++i) {
    stores[0]->put("k", "v" + std::to_string(i));
    pump(stores, 8);
  }
  const auto history = stores[1]->history("k");
  ASSERT_EQ(history.size(), 2u);
  EXPECT_EQ(history[0].version, 3u);
  EXPECT_EQ(history[1].version, 4u);
  // Evicted versions are gone; retained ones resolvable.
  EXPECT_FALSE(stores[1]->getVersion("k", 1).has_value());
  EXPECT_EQ(stores[1]->getVersion("k", 3)->value, "v3");
}

TEST(VersionedStore, CommitCountTracksLog) {
  auto stores = makeCluster(2);
  stores[0]->put("a", "1");
  stores[1]->put("b", "2");
  pump(stores, 10);
  EXPECT_EQ(stores[0]->commitCount(), 2u);
  EXPECT_EQ(stores[0]->keyCount(), 2u);
}

TEST(VersionedStore, EncodeDecodeRoundTrip) {
  const auto payload = VersionedStore::encodePut("key with spaces", "value\0x");
  const auto decoded = VersionedStore::decodePut(payload);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->first, "key with spaces");
  EXPECT_EQ(decoded->second, "value\0x");
}

TEST(VersionedStore, DecodeRejectsGarbage) {
  EXPECT_FALSE(VersionedStore::decodePut(nullptr).has_value());
  auto junk = std::make_shared<PayloadBytes>(PayloadBytes{std::byte{0xFF}});
  EXPECT_FALSE(VersionedStore::decodePut(junk).has_value());
  // Valid put plus trailing garbage must also be rejected.
  auto padded = std::make_shared<PayloadBytes>(*VersionedStore::encodePut("a", "b"));
  padded->push_back(std::byte{0});
  EXPECT_FALSE(VersionedStore::decodePut(padded).has_value());
}

TEST(VersionedStore, EmptyKeyAndValueAreLegal) {
  auto stores = makeCluster(2);
  stores[0]->put("", "");
  pump(stores, 10);
  const auto value = stores[1]->get("");
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->value, "");
}

TEST(VersionedStore, RejectsZeroHistoryDepth) {
  EXPECT_THROW(VersionedStore(0, tinyConfig(), std::make_shared<EveryoneSampler>(0, 2),
                              VersionedStore::Options{.historyDepth = 0}),
               util::ContractViolation);
}

}  // namespace
}  // namespace epto::app

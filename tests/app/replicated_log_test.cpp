#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "app/replicated_log.h"

namespace epto::app {
namespace {

class EveryoneSampler final : public PeerSampler {
 public:
  EveryoneSampler(ProcessId self, std::size_t n) {
    for (ProcessId id = 0; id < n; ++id) {
      if (id != self) others_.push_back(id);
    }
  }
  std::vector<ProcessId> samplePeers(std::size_t k) override {
    // Rotate so every peer is targeted over time even when k < n-1.
    std::vector<ProcessId> out;
    for (std::size_t i = 0; i < k && i < others_.size(); ++i) {
      out.push_back(others_[(cursor_ + i) % others_.size()]);
    }
    if (!others_.empty()) cursor_ = (cursor_ + 1) % others_.size();
    return out;
  }

 private:
  std::vector<ProcessId> others_;
  std::size_t cursor_ = 0;
};

Config tinyConfig(std::uint32_t ttl = 4, std::size_t fanout = 3) {
  Config config;
  config.fanout = fanout;
  config.ttl = ttl;
  config.clockMode = ClockMode::Logical;
  return config;
}

PayloadPtr bytesOf(std::initializer_list<int> values) {
  auto payload = std::make_shared<PayloadBytes>();
  for (const int v : values) payload->push_back(static_cast<std::byte>(v));
  return payload;
}

/// Drive a set of logs with a synchronous hand network.
void pump(std::vector<std::unique_ptr<ReplicatedLog>>& logs, int rounds) {
  for (int round = 0; round < rounds; ++round) {
    std::vector<std::pair<std::size_t, Process::RoundOutput>> outputs;
    for (std::size_t i = 0; i < logs.size(); ++i) {
      outputs.emplace_back(i, logs[i]->process().onRound());
    }
    for (auto& [from, out] : outputs) {
      if (out.ball == nullptr) continue;
      for (const ProcessId target : out.targets) logs[target]->process().onBall(*out.ball);
    }
  }
}

std::vector<std::unique_ptr<ReplicatedLog>> makeCluster(std::size_t n,
                                                        ReplicatedLog::CommitFn commit = {}) {
  std::vector<std::unique_ptr<ReplicatedLog>> logs;
  for (ProcessId id = 0; id < n; ++id) {
    logs.push_back(std::make_unique<ReplicatedLog>(
        id, tinyConfig(), std::make_shared<EveryoneSampler>(id, n), commit));
  }
  return logs;
}

TEST(ReplicatedLog, EntriesGetConsecutiveIndices) {
  auto logs = makeCluster(4);
  logs[0]->append(bytesOf({1}));
  logs[1]->append(bytesOf({2}));
  logs[2]->append(bytesOf({3}));
  pump(logs, 12);
  for (const auto& log : logs) {
    ASSERT_EQ(log->size(), 3u);
    for (std::uint64_t i = 0; i < 3; ++i) EXPECT_EQ(log->entries()[i].index, i);
  }
}

TEST(ReplicatedLog, AllReplicasConvergeToSameDigest) {
  auto logs = makeCluster(5);
  for (std::size_t i = 0; i < 5; ++i) logs[i]->append(bytesOf({static_cast<int>(i)}));
  pump(logs, 14);
  for (const auto& log : logs) {
    EXPECT_EQ(log->size(), 5u);
    EXPECT_EQ(log->digest(), logs[0]->digest());
  }
}

TEST(ReplicatedLog, DigestDetectsDivergence) {
  auto a = makeCluster(2);
  auto b = makeCluster(2);
  a[0]->append(bytesOf({1}));
  b[0]->append(bytesOf({2}));  // different payload
  pump(a, 10);
  pump(b, 10);
  ASSERT_EQ(a[0]->size(), 1u);
  ASSERT_EQ(b[0]->size(), 1u);
  EXPECT_NE(a[0]->digest(), b[0]->digest());
}

TEST(ReplicatedLog, CommitCallbackFiresInOrder) {
  std::map<ProcessId, std::vector<std::uint64_t>> seen;
  std::vector<std::unique_ptr<ReplicatedLog>> logs;
  constexpr std::size_t kN = 3;
  for (ProcessId id = 0; id < kN; ++id) {
    logs.push_back(std::make_unique<ReplicatedLog>(
        id, tinyConfig(), std::make_shared<EveryoneSampler>(id, kN),
        [&seen, id](const LogEntry& entry) { seen[id].push_back(entry.index); }));
  }
  logs[0]->append(bytesOf({1}));
  logs[2]->append(bytesOf({2}));
  pump(logs, 12);
  for (const auto& [id, indices] : seen) {
    EXPECT_EQ(indices, (std::vector<std::uint64_t>{0, 1})) << "process " << id;
  }
}

TEST(ReplicatedLog, EntriesKeepPayloadAndKey) {
  auto logs = makeCluster(2);
  const Event event = logs[0]->append(bytesOf({42}));
  pump(logs, 10);
  ASSERT_EQ(logs[1]->size(), 1u);
  const LogEntry& entry = logs[1]->entries()[0];
  EXPECT_EQ(entry.id, event.id);
  EXPECT_EQ(entry.key, event.orderKey());
  ASSERT_NE(entry.payload, nullptr);
  EXPECT_EQ((*entry.payload)[0], std::byte{42});
}

TEST(ReplicatedLog, EmptyLogDigestIsStableBasis) {
  auto logs = makeCluster(2);
  EXPECT_EQ(logs[0]->digest(), logs[1]->digest());
  EXPECT_EQ(logs[0]->size(), 0u);
}

}  // namespace
}  // namespace epto::app

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/parameters.h"
#include "util/ensure.h"

namespace epto::analysis {
namespace {

TEST(BaseFanout, MatchesTheorem2Formula) {
  // K = ceil(2e ln n / ln ln n).
  for (const std::size_t n : {100u, 500u, 1000u, 10000u}) {
    const double lnN = std::log(static_cast<double>(n));
    const double expected = std::ceil(2.0 * std::exp(1.0) * lnN / std::log(lnN));
    EXPECT_EQ(baseFanout(n), static_cast<std::size_t>(expected)) << "n=" << n;
  }
}

TEST(BaseFanout, KnownValues) {
  EXPECT_EQ(baseFanout(100), 17u);   // 2e*4.605/1.527 = 16.4 -> 17
  EXPECT_EQ(baseFanout(1000), 20u);  // 2e*6.908/1.933 = 19.4 -> 20
}

TEST(BaseFanout, TinySystemsGossipToEveryone) {
  EXPECT_EQ(baseFanout(2), 1u);
  EXPECT_EQ(baseFanout(3), 2u);
  EXPECT_EQ(baseFanout(10), 9u);
}

TEST(BaseFanout, ClampedToSystemSize) {
  for (std::size_t n = 2; n <= 64; ++n) {
    EXPECT_LE(baseFanout(n), n - 1) << "n=" << n;
    EXPECT_GE(baseFanout(n), 1u);
  }
}

TEST(BaseFanout, GrowsSublinearly) {
  // The whole point of the fanout formula: 100x more processes needs only
  // a slightly larger K.
  EXPECT_LE(baseFanout(10000), baseFanout(100) + 6);
}

TEST(BaseFanout, RejectsDegenerateSystem) {
  EXPECT_THROW((void)baseFanout(0), util::ContractViolation);
  EXPECT_THROW((void)baseFanout(1), util::ContractViolation);
}

TEST(BaseTtl, MatchesLemma3Formula) {
  // TTL = ceil((c+1) log2 n).
  EXPECT_EQ(baseTtl(100, 1.25), 15u);  // the paper's "theoretical TTL=15"
  EXPECT_EQ(baseTtl(100, 2.0), 20u);
  EXPECT_EQ(baseTtl(1024, 2.0), 30u);
}

TEST(BaseTtl, RejectsBadInputs) {
  EXPECT_THROW((void)baseTtl(1, 2.0), util::ContractViolation);
  EXPECT_THROW((void)baseTtl(100, 1.0), util::ContractViolation);  // needs c > 1
  EXPECT_THROW((void)baseTtl(100, 0.5), util::ContractViolation);
}

TEST(ComputeParameters, IdealConditionsMatchBaseFormulas) {
  const auto params = computeParameters({.systemSize = 100, .c = 2.0});
  EXPECT_EQ(params.fanout, baseFanout(100));
  EXPECT_EQ(params.ttl, baseTtl(100, 2.0));
}

TEST(ComputeParameters, LogicalTimeDoublesTtl) {
  // Lemma 4.
  const auto global = computeParameters({.systemSize = 100, .c = 2.0});
  const auto logical =
      computeParameters({.systemSize = 100, .c = 2.0, .logicalTime = true});
  EXPECT_EQ(logical.ttl, 2 * global.ttl);
  EXPECT_EQ(logical.fanout, global.fanout);
}

TEST(ComputeParameters, ChurnInflatesFanout) {
  // Lemma 7: K' = K * n/(n - alpha).
  const auto base = computeParameters({.systemSize = 1000, .c = 2.0});
  const auto churned =
      computeParameters({.systemSize = 1000, .c = 2.0, .churnPerRound = 500.0});
  EXPECT_GE(churned.fanout, 2 * base.fanout - 1);  // n/(n-alpha) = 2
  EXPECT_EQ(churned.ttl, base.ttl);
}

TEST(ComputeParameters, LossInflatesFanout) {
  // Lemma 7: K' = K / (1 - eps).
  const auto base = computeParameters({.systemSize = 1000, .c = 2.0});
  const auto lossy =
      computeParameters({.systemSize = 1000, .c = 2.0, .messageLossRate = 0.5});
  EXPECT_GE(lossy.fanout, 2 * base.fanout - 1);
}

TEST(ComputeParameters, FanoutNeverExceedsSystem) {
  const auto params = computeParameters(
      {.systemSize = 20, .c = 2.0, .churnPerRound = 10.0, .messageLossRate = 0.9});
  EXPECT_LE(params.fanout, 19u);
}

TEST(ComputeParameters, DriftStretchesTtl) {
  // Lemma 5: TTL * delta_max/delta_min.
  const auto base = computeParameters({.systemSize = 100, .c = 2.0});
  const auto drifted =
      computeParameters({.systemSize = 100, .c = 2.0, .driftRatio = 2.0});
  EXPECT_EQ(drifted.ttl, 2 * base.ttl);
}

TEST(ComputeParameters, LatencyAddsOneRound) {
  // Lemma 6.
  const auto base = computeParameters({.systemSize = 100, .c = 2.0});
  const auto latent =
      computeParameters({.systemSize = 100, .c = 2.0, .latencyBelowRound = true});
  EXPECT_EQ(latent.ttl, base.ttl + 1);
}

TEST(ComputeParameters, CompositionOfAllLemmas) {
  // Logical time + drift + latency: TTL = (2 * base) * drift + 1.
  const auto base = computeParameters({.systemSize = 100, .c = 2.0});
  const auto all = computeParameters({.systemSize = 100,
                                      .c = 2.0,
                                      .logicalTime = true,
                                      .driftRatio = 1.5,
                                      .latencyBelowRound = true});
  EXPECT_EQ(all.ttl, static_cast<std::uint32_t>(std::ceil(2.0 * base.ttl * 1.5)) + 1);
}

TEST(ComputeParameters, RejectsBadEnvironments) {
  EXPECT_THROW((void)computeParameters({.systemSize = 1}), util::ContractViolation);
  EXPECT_THROW((void)computeParameters({.systemSize = 100, .c = 0.9}),
               util::ContractViolation);
  EXPECT_THROW((void)computeParameters({.systemSize = 100, .messageLossRate = 1.0}),
               util::ContractViolation);
  EXPECT_THROW((void)computeParameters({.systemSize = 100, .churnPerRound = 100.0}),
               util::ContractViolation);
  EXPECT_THROW((void)computeParameters({.systemSize = 100, .driftRatio = 0.5}),
               util::ContractViolation);
}

}  // namespace
}  // namespace epto::analysis

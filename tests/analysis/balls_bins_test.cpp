#include <gtest/gtest.h>

#include <cmath>

#include "analysis/balls_bins.h"
#include "util/ensure.h"
#include "util/rng.h"

namespace epto::analysis {
namespace {

TEST(BallsGuaranteed, Formula) {
  EXPECT_NEAR(ballsGuaranteed(1024, 2.0), 2.0 * 1024 * 10.0, 1e-6);
  EXPECT_THROW((void)ballsGuaranteed(1, 2.0), util::ContractViolation);
  EXPECT_THROW((void)ballsGuaranteed(100, 0.0), util::ContractViolation);
}

TEST(MissProbability, ZeroBallsMeansCertainMiss) {
  EXPECT_DOUBLE_EQ(missProbabilityFixedProcess(100, 0.0), 1.0);
}

TEST(MissProbability, MatchesDirectPower) {
  const double direct = std::pow(1.0 - 1.0 / 100.0, 500.0);
  EXPECT_NEAR(missProbabilityFixedProcess(100, 500.0), direct, 1e-12);
}

TEST(MissProbability, DecreasesWithMoreBalls) {
  double previous = 1.0;
  for (double balls = 100; balls <= 3200; balls *= 2) {
    const double p = missProbabilityFixedProcess(100, balls);
    EXPECT_LT(p, previous);
    previous = p;
  }
}

TEST(HoleProbabilityFixedProcess, Figure3aMagnitudes) {
  // Paper Fig. 3a: at n = 1000 the bound for a fixed process is below
  // 1e-8 for c=2 and plunges further as c grows.
  EXPECT_LT(holeProbabilityFixedProcess(1000, 2.0), 1e-8);
  EXPECT_LT(holeProbabilityFixedProcess(1000, 3.0), 1e-12);
  EXPECT_LT(holeProbabilityFixedProcess(1000, 4.0), 1e-16);
}

TEST(HoleProbabilityFixedProcess, MonotoneInC) {
  for (std::size_t n = 100; n <= 1000; n += 300) {
    EXPECT_GT(holeProbabilityFixedProcess(n, 2.0), holeProbabilityFixedProcess(n, 3.0));
    EXPECT_GT(holeProbabilityFixedProcess(n, 3.0), holeProbabilityFixedProcess(n, 4.0));
  }
}

TEST(HoleProbabilityFixedProcess, DecreasesWithSystemSize) {
  // The defining property of the c n log2 n ball count: bigger systems
  // get *stronger* per-process guarantees.
  EXPECT_GT(holeProbabilityFixedProcess(100, 2.0), holeProbabilityFixedProcess(1000, 2.0));
}

TEST(HoleProbabilityAnyProcess, IsUnionBound) {
  const std::size_t n = 500;
  EXPECT_NEAR(holeProbabilityAnyProcess(n, 2.0),
              static_cast<double>(n) * holeProbabilityFixedProcess(n, 2.0), 1e-15);
}

TEST(HoleProbabilityAnyProcess, CappedAtOne) {
  // With c tiny the union bound exceeds 1 and must be clamped.
  EXPECT_LE(holeProbabilityAnyProcess(2, 0.1), 1.0);
}

TEST(EstimatedBalls, GrowsGeometricallyThenSaturates) {
  const std::size_t n = 100;
  const std::size_t k = 5;
  // Round 1: K balls. Round 2: K + K^2 ...
  EXPECT_DOUBLE_EQ(estimatedBalls(n, k, 1), 5.0);
  EXPECT_DOUBLE_EQ(estimatedBalls(n, k, 2), 5.0 + 25.0);
  // After saturation each round adds n*K.
  const double atTen = estimatedBalls(n, k, 10);
  const double atEleven = estimatedBalls(n, k, 11);
  EXPECT_NEAR(atEleven - atTen, static_cast<double>(n * k), 1e-6);
}

TEST(EstimatedStability, MonotoneInAgeAndApproachesOne) {
  const std::size_t n = 100;
  const std::size_t k = 17;
  double previous = -1.0;
  for (std::uint32_t rounds = 1; rounds <= 8; ++rounds) {
    const double p = estimatedStability(n, k, rounds);
    EXPECT_GE(p, previous);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    previous = p;
  }
  EXPECT_GT(estimatedStability(n, k, 8), 0.999);
}

TEST(EstimatedStability, FreshEventIsUnstable) {
  EXPECT_LT(estimatedStability(1000, 20, 1), 0.01);
}

/// Monte-Carlo cross-check of the closed form: throw B balls into n bins
/// and compare the empirical fixed-bin miss rate with the bound.
TEST(MissProbability, AgreesWithMonteCarlo) {
  const std::size_t n = 50;
  const double balls = 150;
  util::Rng rng(99);
  const int trials = 20000;
  int misses = 0;
  for (int t = 0; t < trials; ++t) {
    bool hit = false;
    for (int b = 0; b < static_cast<int>(balls); ++b) {
      if (rng.below(n) == 0) {
        hit = true;
        break;
      }
    }
    if (!hit) ++misses;
  }
  const double empirical = static_cast<double>(misses) / trials;
  const double analytic = missProbabilityFixedProcess(n, balls);
  EXPECT_NEAR(empirical, analytic, 0.25 * analytic + 0.002);
}

}  // namespace
}  // namespace epto::analysis

// Stress coverage for analysis::parameters: Lemma 3-7 composition under
// combined nonzero loss x churn x drift, monotonicity of TTL/K in every
// input, the lemmaSafeBounds envelope, and the §8.4 stability estimate.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "analysis/parameters.h"

namespace epto::analysis {
namespace {

constexpr std::size_t kSystem = 100;

ParameterInputs stress(double loss, double churn, double drift) {
  return {.systemSize = kSystem,
          .c = 2.0,
          .churnPerRound = churn,
          .messageLossRate = loss,
          .driftRatio = drift};
}

TEST(ParametersStress, CombinedTransientsStayWithinDomain) {
  // Every loss x churn x drift combination must compose into parameters
  // that are usable (K in [1, n-1], TTL >= the loss-free floor) — no
  // combination may silently overflow or collapse.
  const Parameters floor = computeParameters(stress(0.0, 0.0, 1.0));
  for (const double loss : {0.01, 0.1, 0.3, 0.6}) {
    for (const double churn : {1.0, 10.0, 25.0}) {
      for (const double drift : {1.0, 1.5, 3.0}) {
        const Parameters params = computeParameters(stress(loss, churn, drift));
        EXPECT_GE(params.fanout, floor.fanout)
            << "loss=" << loss << " churn=" << churn << " drift=" << drift;
        EXPECT_LE(params.fanout, kSystem - 1);
        EXPECT_GE(params.ttl, floor.ttl);
        EXPECT_LT(params.ttl, 10000u);  // sane even at the stress corner
      }
    }
  }
}

TEST(ParametersStress, FanoutMonotoneInLossUnderCombinedStress) {
  // Monotonicity must survive the other transients being nonzero, not
  // just the isolated single-lemma cases.
  Parameters previous = computeParameters(stress(0.0, 5.0, 1.5));
  for (const double loss : {0.05, 0.1, 0.2, 0.4, 0.6, 0.8}) {
    const Parameters params = computeParameters(stress(loss, 5.0, 1.5));
    EXPECT_GE(params.fanout, previous.fanout) << "loss=" << loss;
    EXPECT_EQ(params.ttl, previous.ttl) << "loss feeds K (Lemma 7), not TTL";
    previous = params;
  }
}

TEST(ParametersStress, FanoutMonotoneInChurnUnderCombinedStress) {
  Parameters previous = computeParameters(stress(0.1, 0.0, 1.5));
  for (const double churn : {1.0, 5.0, 10.0, 25.0, 50.0}) {
    const Parameters params = computeParameters(stress(0.1, churn, 1.5));
    EXPECT_GE(params.fanout, previous.fanout) << "churn=" << churn;
    EXPECT_EQ(params.ttl, previous.ttl) << "churn feeds K (Lemma 7), not TTL";
    previous = params;
  }
}

TEST(ParametersStress, TtlMonotoneInDriftUnderCombinedStress) {
  Parameters previous = computeParameters(stress(0.1, 5.0, 1.0));
  for (const double drift : {1.25, 1.5, 2.0, 3.0, 5.0}) {
    const Parameters params = computeParameters(stress(0.1, 5.0, drift));
    EXPECT_GE(params.ttl, previous.ttl) << "drift=" << drift;
    EXPECT_EQ(params.fanout, previous.fanout) << "drift feeds TTL (Lemma 5), not K";
    previous = params;
  }
}

TEST(ParametersStress, BothKnobsMonotoneInSystemSize) {
  Parameters previous = computeParameters(
      {.systemSize = 16, .c = 2.0, .churnPerRound = 2.0, .messageLossRate = 0.1});
  for (const std::size_t n : {32u, 64u, 128u, 1024u, 16384u}) {
    const Parameters params = computeParameters(
        {.systemSize = n, .c = 2.0, .churnPerRound = 2.0, .messageLossRate = 0.1});
    EXPECT_GE(params.fanout, previous.fanout) << "n=" << n;
    EXPECT_GE(params.ttl, previous.ttl) << "n=" << n;
    previous = params;
  }
}

TEST(ParametersStress, TtlMonotoneInC) {
  Parameters previous = computeParameters(stress(0.1, 5.0, 1.5));
  for (const double c : {2.5, 3.0, 4.0}) {
    ParameterInputs inputs = stress(0.1, 5.0, 1.5);
    inputs.c = c;
    const Parameters params = computeParameters(inputs);
    EXPECT_GE(params.ttl, previous.ttl) << "c=" << c;
    previous = params;
  }
}

TEST(LemmaSafeBounds, EnvelopeEndsAreTheZeroedAndWorstCasePoints) {
  const ParameterInputs worst = stress(0.15, 3.0, 1.5);
  const ParameterBounds bounds = lemmaSafeBounds(worst);
  // The ceiling is the worst case exactly as given...
  const Parameters ceiling = computeParameters(worst);
  EXPECT_EQ(bounds.upper.ttl, ceiling.ttl);
  EXPECT_EQ(bounds.upper.fanout, ceiling.fanout);
  // ...and the floor relaxes only the transient terms, keeping the
  // structural inputs (n, c, clock mode, latency) intact.
  ParameterInputs healthy = worst;
  healthy.messageLossRate = 0.0;
  healthy.churnPerRound = 0.0;
  healthy.driftRatio = 1.0;
  const Parameters floor = computeParameters(healthy);
  EXPECT_EQ(bounds.lower.ttl, floor.ttl);
  EXPECT_EQ(bounds.lower.fanout, floor.fanout);
  EXPECT_LE(bounds.lower.ttl, bounds.upper.ttl);
  EXPECT_LE(bounds.lower.fanout, bounds.upper.fanout);
}

TEST(LemmaSafeBounds, EveryIntermediateEnvironmentLandsInsideTheEnvelope) {
  // Round-trip with the adaptive controller's contract: any environment
  // between healthy and worst-case must derive parameters inside the
  // envelope, so online retuning toward the live estimate can never
  // leave it.
  const ParameterInputs worst = stress(0.15, 3.0, 1.5);
  const ParameterBounds bounds = lemmaSafeBounds(worst);
  for (const double f : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const Parameters mid = computeParameters(
        stress(0.15 * f, 3.0 * f, 1.0 + 0.5 * f));
    EXPECT_GE(mid.ttl, bounds.lower.ttl) << "f=" << f;
    EXPECT_LE(mid.ttl, bounds.upper.ttl) << "f=" << f;
    EXPECT_GE(mid.fanout, bounds.lower.fanout) << "f=" << f;
    EXPECT_LE(mid.fanout, bounds.upper.fanout) << "f=" << f;
  }
}

TEST(StabilityEstimate, MonotoneInAgeAndReachesOneByTheHorizon) {
  StabilityInputs inputs{.systemSize = kSystem, .fanout = 17, .age = 0};
  double previous = -1.0;
  for (std::uint32_t age = 0; age <= 20; ++age) {
    inputs.age = age;
    const double estimate = stabilityEstimate(inputs);
    EXPECT_GE(estimate, 0.0);
    EXPECT_LE(estimate, 1.0);
    EXPECT_GE(estimate, previous) << "age=" << age;
    previous = estimate;
  }
  // By the Lemma 3 TTL the epidemic has saturated whp — the recursion
  // must agree with the bound it was derived from.
  inputs.age = baseTtl(kSystem, 2.0);
  EXPECT_GT(stabilityEstimate(inputs), 0.999);
}

TEST(StabilityEstimate, MonotoneInRedundancyFanoutAndLoss) {
  StabilityInputs base{
      .systemSize = kSystem, .fanout = 17, .messageLossRate = 0.1, .age = 3,
      .copiesSeen = 1};
  const double reference = stabilityEstimate(base);
  StabilityInputs redundant = base;
  redundant.copiesSeen = 8;
  EXPECT_GT(stabilityEstimate(redundant), reference);
  StabilityInputs wider = base;
  wider.fanout = 25;
  EXPECT_GT(stabilityEstimate(wider), reference);
  StabilityInputs lossier = base;
  lossier.messageLossRate = 0.4;
  EXPECT_LT(stabilityEstimate(lossier), reference);
}

TEST(StabilityEstimate, FreshSingletonIsUncertain) {
  // One copy, zero relay rounds: the estimate must not claim stability.
  const StabilityInputs inputs{
      .systemSize = kSystem, .fanout = 17, .age = 0, .copiesSeen = 1};
  EXPECT_LT(stabilityEstimate(inputs), 0.1);
}

}  // namespace
}  // namespace epto::analysis

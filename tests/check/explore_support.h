// Shared plumbing for the schedule-exploration suite (DESIGN.md §17).
//
// Every test in tests/check funnels through exploreOrReplay(): normally
// it searches the schedule space, but with EPTO_SCHED_REPLAY=<seed> in
// the environment it re-runs exactly that one failing schedule — the
// loop printed by EXPECT_SCHEDULES_CLEAN on failure:
//
//   EPTO_SCHED_REPLAY='x:0,1,2' ./epto_check_tests --gtest_filter=<test>
#pragma once

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "check/schedule.h"

namespace epto::test {

inline check::ExploreReport exploreOrReplay(const check::TestFactory& factory,
                                            const check::ExploreOptions& options = {}) {
  const char* replay = std::getenv("EPTO_SCHED_REPLAY");
  if (replay != nullptr && replay[0] != '\0') {
    return check::replaySeed(factory, replay, options);
  }
  return check::explore(factory, options);
}

inline std::string failureText(const check::ExploreReport& report) {
  std::string text = report.message;
  text += "\n  replay with EPTO_SCHED_REPLAY='" + report.seed + "'";
  text += "\n  failing schedule:";
  for (const auto& name : report.schedule) {
    text += ' ';
    text += name;
  }
  return text;
}

}  // namespace epto::test

#define EXPECT_SCHEDULES_CLEAN(report_) \
  EXPECT_FALSE((report_).failed) << ::epto::test::failureText(report_)

// Schedule exploration of the FlightRecorder seqlock (obs/
// flight_recorder.*): a capacity-1 ring maximizes writer-laps-reader
// contention, and every interleaving of the claim/stamp/word stores
// against a concurrent snapshot must yield only internally consistent
// records. A negative fixture (a seqlock with no recheck) proves torn
// reads are actually observable under this exploration — i.e. the
// invariant is load-bearing, not vacuous.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "check/schedule.h"
#include "check/schedule_point.h"
#include "explore_support.h"
#include "obs/flight_recorder.h"

namespace epto {
namespace {

using check::ExploreOptions;
using check::ScheduledTask;
using check::TestRun;
using obs::FlightRecord;
using obs::FlightRecorder;
using obs::TraceEvent;
using obs::TraceType;

/// Event #i with every payload field derived from i — a snapshot record
/// mixing fields of two different writes can't go unnoticed.
TraceEvent patterned(std::uint64_t i) {
  TraceEvent event;
  event.type = TraceType::Broadcast;
  event.node = static_cast<ProcessId>(10 + i);
  event.round = 1000 + i;
  event.event = EventId{static_cast<ProcessId>(20 + i), static_cast<std::uint32_t>(30 + i)};
  event.ts = 2000 + i;
  event.ttl = static_cast<std::uint32_t>(40 + i);
  event.size = 3000 + i;
  event.aux = 4000 + i;
  return event;
}

std::optional<std::string> consistent(const FlightRecord& record) {
  const std::uint64_t i = record.claim;
  const TraceEvent expected = patterned(i);
  const TraceEvent& got = record.event;
  if (got.node != expected.node || got.round != expected.round ||
      got.event.packed() != expected.event.packed() || got.ts != expected.ts ||
      got.ttl != expected.ttl || got.size != expected.size || got.aux != expected.aux) {
    return "snapshot returned a torn record for claim " + std::to_string(i) +
           " (round=" + std::to_string(got.round) + " ts=" + std::to_string(got.ts) + ")";
  }
  return std::nullopt;
}

TEST(FlightSchedule, SeqlockSnapshotNeverObservesTornRecordsCapacity1) {
  auto factory = [] {
    struct State {
      FlightRecorder recorder{1};  // every record overwrites the one slot
      std::vector<std::vector<FlightRecord>> snapshots;
    };
    auto state = std::make_shared<State>();
    TestRun run;
    run.tasks.push_back(ScheduledTask{"writer", [state] {
      state->recorder.record(patterned(0));
      state->recorder.record(patterned(1));
    }});
    run.tasks.push_back(ScheduledTask{"reader", [state] {
      state->snapshots.push_back(state->recorder.snapshot());
    }});
    run.verify = [state]() -> std::optional<std::string> {
      for (const auto& snapshot : state->snapshots) {
        for (const FlightRecord& record : snapshot) {
          if (auto error = consistent(record)) return error;
        }
      }
      // Post-quiescence snapshot must surface the last write intact.
      const auto final = state->recorder.snapshot();
      if (final.size() != 1) return "capacity-1 ring must expose exactly one record";
      if (final[0].claim != 1) return "final snapshot lost the lapping write";
      return consistent(final[0]);
    };
    return run;
  };
  auto report = test::exploreOrReplay(factory);
  EXPECT_SCHEDULES_CLEAN(report);
  EXPECT_TRUE(report.exhausted);
}

/// Negative fixture: two payload words guarded by NO stamp protocol at
/// all — the reader just loads both words around a schedule point. Some
/// schedule must observe word0 from the new write and word1 from the
/// old one; the checker has to find it and hand back a seed.
struct TornPair {
  std::atomic<std::uint64_t> word0{0};
  std::atomic<std::uint64_t> word1{0};

  void write(std::uint64_t value) {
    EPTO_SCHEDULE_POINT("torn.write.w0");
    word0.store(value, std::memory_order_relaxed);
    EPTO_SCHEDULE_POINT("torn.write.w1");
    word1.store(value, std::memory_order_relaxed);
  }

  [[nodiscard]] std::pair<std::uint64_t, std::uint64_t> read() {
    EPTO_SCHEDULE_POINT("torn.read.w0");
    const std::uint64_t r0 = word0.load(std::memory_order_relaxed);
    EPTO_SCHEDULE_POINT("torn.read.w1");
    const std::uint64_t r1 = word1.load(std::memory_order_relaxed);
    return {r0, r1};
  }
};

TEST(FlightSchedule, NegativeFixtureUnstampedPairTearsAndIsCaught) {
  auto factory = [] {
    struct State {
      TornPair pair;
      std::pair<std::uint64_t, std::uint64_t> seen{0, 0};
    };
    auto state = std::make_shared<State>();
    TestRun run;
    run.tasks.push_back(ScheduledTask{"writer", [state] { state->pair.write(7); }});
    run.tasks.push_back(ScheduledTask{"reader", [state] { state->seen = state->pair.read(); }});
    run.verify = [state]() -> std::optional<std::string> {
      if (state->seen.first != state->seen.second) {
        return "reader observed a torn pair: " + std::to_string(state->seen.first) + "/" +
               std::to_string(state->seen.second);
      }
      return std::nullopt;
    };
    return run;
  };

  auto report = check::explore(factory, ExploreOptions{});
  ASSERT_TRUE(report.failed) << "the unstamped pair never tore — instrumentation is vacuous";
  EXPECT_NE(report.message.find("torn pair"), std::string::npos);
  ASSERT_FALSE(report.seed.empty());

  auto replay = check::replaySeed(factory, report.seed);
  EXPECT_TRUE(replay.failed);
  EXPECT_EQ(replay.schedule, report.schedule);
}

}  // namespace
}  // namespace epto

// Schedule exploration of SpscRing (runtime/spsc_ring.h): every
// interleaving of the push/pop atomics at the full and empty edges, the
// two-producer serialization the executor relies on, and a negative
// fixture proving the harness actually catches a publish-before-write
// bug with a replayable seed.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "check/schedule.h"
#include "check/schedule_point.h"
#include "explore_support.h"
#include "runtime/spsc_ring.h"

namespace epto {
namespace {

using check::ExploreMode;
using check::ExploreOptions;
using check::ScheduledTask;
using check::TestRun;
using runtime::SpscRing;

/// Shared fixture state: which pushes were accepted, what got popped.
struct RingState {
  explicit RingState(std::size_t capacity) : ring(capacity) {}
  SpscRing<int> ring;
  std::vector<int> accepted;
  std::vector<int> popped;
};

/// FIFO invariant: the popped sequence must be exactly the accepted
/// sequence's prefix — any reorder, duplicate, or invented value fails.
std::optional<std::string> fifoPrefix(const RingState& state) {
  if (state.popped.size() > state.accepted.size()) {
    return "popped more values than were accepted";
  }
  for (std::size_t i = 0; i < state.popped.size(); ++i) {
    if (state.popped[i] != state.accepted[i]) {
      return "pop #" + std::to_string(i) + " returned " + std::to_string(state.popped[i]) +
             ", accepted order says " + std::to_string(state.accepted[i]);
    }
  }
  return std::nullopt;
}

TEST(SpscSchedule, ProducerConsumerFifoAcrossFullAndEmptyEdgesCapacity1) {
  auto factory = [] {
    auto state = std::make_shared<RingState>(1);
    TestRun run;
    run.tasks.push_back(ScheduledTask{"producer", [state] {
      for (int value = 1; value <= 2; ++value) {
        // Bounded attempts, no retry loop: a full ring is a legitimate
        // outcome of the schedule, recorded, never spun on.
        if (state->ring.tryPush(int{value})) state->accepted.push_back(value);
      }
    }});
    run.tasks.push_back(ScheduledTask{"consumer", [state] {
      for (int attempt = 0; attempt < 2; ++attempt) {
        if (auto value = state->ring.tryPop()) state->popped.push_back(*value);
      }
    }});
    run.verify = [state]() -> std::optional<std::string> {
      if (auto error = fifoPrefix(*state)) return error;
      // Drain the remainder on the controller thread: everything
      // accepted must still come out, in order.
      while (auto value = state->ring.tryPop()) state->popped.push_back(*value);
      if (state->popped != state->accepted) return "drained ring lost or reordered values";
      if (!state->ring.empty()) return "ring reports non-empty after full drain";
      return std::nullopt;
    };
    return run;
  };
  auto report = test::exploreOrReplay(factory);
  EXPECT_SCHEDULES_CLEAN(report);
  EXPECT_TRUE(report.exhausted);
  EXPECT_GE(report.runs, 50U);  // the edge interplay is a real tree, not a line
}

TEST(SpscSchedule, TwoProducersSerializedByModelMutexAtTheFullEdge) {
  // The executor serializes external posters onto the producer role with
  // a mutex; model exactly that with two producer tasks contending a
  // ModelMutex for a capacity-1 ring: one push lands, one bounces off
  // the full edge, and the drain must match the accepted order exactly.
  // (The consumer-in-parallel variant is the PCT test below — adding a
  // third task here would blow the exhaustive tree into the millions.)
  auto factory = [] {
    auto state = std::make_shared<RingState>(1);
    auto producerMutex = std::make_shared<check::ModelMutex>();
    TestRun run;
    for (int producer = 1; producer <= 2; ++producer) {
      run.tasks.push_back(
          ScheduledTask{"producer" + std::to_string(producer), [state, producerMutex, producer] {
            const int value = producer * 100;
            producerMutex->lock();
            if (state->ring.tryPush(int{value})) state->accepted.push_back(value);
            producerMutex->unlock();
          }});
    }
    run.verify = [state]() -> std::optional<std::string> {
      if (state->accepted.empty()) return "both pushes rejected by a capacity-1 ring";
      while (auto value = state->ring.tryPop()) state->popped.push_back(*value);
      if (state->popped != state->accepted) return "drained ring lost or reordered values";
      return std::nullopt;
    };
    return run;
  };
  auto report = test::exploreOrReplay(factory);
  EXPECT_SCHEDULES_CLEAN(report);
  EXPECT_TRUE(report.exhausted);
}

TEST(SpscSchedule, PctCoversTheLargerTwoProducerCase) {
  // Two values per producer blows the exhaustive tree up; this is the
  // randomized-priority regime. Same invariant, bigger space.
  auto factory = [] {
    auto state = std::make_shared<RingState>(2);
    auto producerMutex = std::make_shared<check::ModelMutex>();
    TestRun run;
    for (int producer = 1; producer <= 2; ++producer) {
      run.tasks.push_back(
          ScheduledTask{"producer" + std::to_string(producer), [state, producerMutex, producer] {
            for (int i = 0; i < 2; ++i) {
              const int value = producer * 100 + i;
              producerMutex->lock();
              if (state->ring.tryPush(int{value})) state->accepted.push_back(value);
              producerMutex->unlock();
            }
          }});
    }
    run.tasks.push_back(ScheduledTask{"consumer", [state] {
      for (int attempt = 0; attempt < 4; ++attempt) {
        if (auto value = state->ring.tryPop()) state->popped.push_back(*value);
      }
    }});
    run.verify = [state]() -> std::optional<std::string> {
      if (auto error = fifoPrefix(*state)) return error;
      while (auto value = state->ring.tryPop()) state->popped.push_back(*value);
      if (state->popped != state->accepted) return "drained ring lost or reordered values";
      return std::nullopt;
    };
    return run;
  };
  ExploreOptions options;
  options.mode = ExploreMode::RandomPct;
  options.runs = 128;
  auto report = test::exploreOrReplay(factory, options);
  EXPECT_SCHEDULES_CLEAN(report);
  EXPECT_EQ(report.runs, 128U);
}

/// Negative fixture: an SPSC ring that publishes the tail BEFORE writing
/// the slot — the classic torn-publish bug the real ring's store order
/// exists to prevent. The checker must catch it and hand back a seed.
class BuggyRing {
 public:
  explicit BuggyRing(std::size_t capacity) {
    std::size_t rounded = 1;
    while (rounded < capacity) rounded <<= 1U;
    mask_ = rounded - 1;
    slots_.assign(rounded, 0);
  }

  [[nodiscard]] bool tryPush(int value) {
    EPTO_SCHEDULE_POINT("buggy.push.enter");
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    if (tail - head > mask_) return false;
    EPTO_SCHEDULE_POINT("buggy.push.publish");
    tail_.store(tail + 1, std::memory_order_release);  // BUG: slot not written yet
    EPTO_SCHEDULE_POINT("buggy.push.slot");
    slots_[tail & mask_] = value;
    return true;
  }

  [[nodiscard]] std::optional<int> tryPop() {
    EPTO_SCHEDULE_POINT("buggy.pop.enter");
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head == tail) return std::nullopt;
    EPTO_SCHEDULE_POINT("buggy.pop.slot");
    const int value = slots_[head & mask_];
    EPTO_SCHEDULE_POINT("buggy.pop.retire");
    head_.store(head + 1, std::memory_order_release);
    return value;
  }

 private:
  std::vector<int> slots_;
  std::size_t mask_ = 0;
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> tail_{0};
};

TEST(SpscSchedule, NegativeFixtureTornPublishIsCaughtWithReplayableSeed) {
  auto factory = [] {
    struct State {
      BuggyRing ring{1};
      std::vector<int> accepted;
      std::vector<int> popped;
    };
    auto state = std::make_shared<State>();
    TestRun run;
    run.tasks.push_back(ScheduledTask{"producer", [state] {
      if (state->ring.tryPush(42)) state->accepted.push_back(42);
    }});
    run.tasks.push_back(ScheduledTask{"consumer", [state] {
      if (auto value = state->ring.tryPop()) state->popped.push_back(*value);
    }});
    run.verify = [state]() -> std::optional<std::string> {
      for (std::size_t i = 0; i < state->popped.size(); ++i) {
        if (i >= state->accepted.size() || state->popped[i] != state->accepted[i]) {
          return "consumer observed a value the producer never finished writing";
        }
      }
      return std::nullopt;
    };
    return run;
  };

  auto report = check::explore(factory, ExploreOptions{});
  ASSERT_TRUE(report.failed) << "the seeded torn-publish bug went undetected";
  EXPECT_NE(report.message.find("never finished writing"), std::string::npos);
  ASSERT_FALSE(report.seed.empty());

  // The printed seed must reproduce the exact failing schedule.
  auto replay = check::replaySeed(factory, report.seed);
  EXPECT_TRUE(replay.failed);
  EXPECT_EQ(replay.schedule, report.schedule);
  EXPECT_EQ(replay.message, report.message);
}

}  // namespace
}  // namespace epto

// Explorer self-tests: the controller itself is the trusted base of the
// whole schedule-checking story, so its mechanics — enumeration counts,
// replayable seeds, failure plumbing, deadlock detection, budgets — get
// checked before any component test leans on them.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "check/schedule.h"
#include "check/schedule_point.h"
#include "explore_support.h"

namespace epto {
namespace {

using check::ExploreMode;
using check::ExploreOptions;
using check::ExploreReport;
using check::ScheduledTask;
using check::TestRun;

/// Two tasks of `points` schedule points each; pure counting, no state.
check::TestFactory twoCounters(int points) {
  return [points] {
    TestRun run;
    for (const char* name : {"a", "b"}) {
      run.tasks.push_back(ScheduledTask{name, [points] {
        for (int i = 0; i < points; ++i) EPTO_SCHEDULE_POINT("tick");
      }});
    }
    return run;
  };
}

TEST(Explorer, ExhaustiveCountsInterleavingsOfTwoTasks) {
  // A task with p points is p+1 atomic segments; interleavings of two
  // order-preserved segment sequences = C(2p+2, p+1).
  ExploreOptions options;
  auto one = check::explore(twoCounters(1), options);
  EXPECT_FALSE(one.failed);
  EXPECT_TRUE(one.exhausted);
  EXPECT_EQ(one.runs, 6U);  // C(4,2)

  auto two = check::explore(twoCounters(2), options);
  EXPECT_TRUE(two.exhausted);
  EXPECT_EQ(two.runs, 20U);  // C(6,3)
}

TEST(Explorer, MaxRunsStopsSearchWithoutExhausting) {
  ExploreOptions options;
  options.maxRuns = 5;
  auto report = check::explore(twoCounters(2), options);
  EXPECT_FALSE(report.failed);
  EXPECT_FALSE(report.exhausted);
  EXPECT_EQ(report.runs, 5U);
}

/// Classic lost update: A writes then re-reads around a schedule point;
/// B's write landing in between is the bug schedule.
check::TestFactory lostUpdate() {
  return [] {
    auto x = std::make_shared<int>(0);
    TestRun run;
    run.tasks.push_back(ScheduledTask{"writerA", [x] {
      *x = 1;
      EPTO_SCHEDULE_POINT("between");
      check::expect(*x == 1, "writerA's value was overwritten mid-section");
    }});
    run.tasks.push_back(ScheduledTask{"writerB", [x] { *x = 2; }});
    return run;
  };
}

TEST(Explorer, FindsSeededBugAndReplaySeedReproducesIt) {
  auto report = check::explore(lostUpdate(), ExploreOptions{});
  ASSERT_TRUE(report.failed);
  EXPECT_NE(report.message.find("overwritten"), std::string::npos);
  ASSERT_FALSE(report.seed.empty());
  EXPECT_EQ(report.seed.rfind("x:", 0), 0U);
  ASSERT_FALSE(report.schedule.empty());

  auto replay = check::replaySeed(lostUpdate(), report.seed);
  EXPECT_TRUE(replay.failed);
  EXPECT_EQ(replay.message, report.message);
  EXPECT_EQ(replay.schedule, report.schedule);
  EXPECT_EQ(replay.runs, 1U);
}

TEST(Explorer, PctModeFindsTheBugDeterministically) {
  ExploreOptions options;
  options.mode = ExploreMode::RandomPct;
  options.runs = 64;
  options.seed = 7;
  auto first = check::explore(lostUpdate(), options);
  ASSERT_TRUE(first.failed);
  EXPECT_EQ(first.seed.rfind("p:", 0), 0U);

  auto second = check::explore(lostUpdate(), options);
  EXPECT_EQ(second.seed, first.seed);
  EXPECT_EQ(second.runs, first.runs);
  EXPECT_EQ(second.schedule, first.schedule);

  auto replay = check::replaySeed(lostUpdate(), first.seed);
  EXPECT_TRUE(replay.failed);
  EXPECT_EQ(replay.schedule, first.schedule);
}

TEST(Explorer, VerifyRejectionFailsTheSchedule) {
  auto factory = [] {
    TestRun run;
    run.tasks.push_back(ScheduledTask{"noop", [] {}});
    run.verify = [] { return std::optional<std::string>("invariant broken"); };
    return run;
  };
  auto report = check::explore(factory, ExploreOptions{});
  ASSERT_TRUE(report.failed);
  EXPECT_EQ(report.message, "invariant broken");
}

TEST(Explorer, TaskExceptionIsReportedWithTaskName) {
  auto factory = [] {
    TestRun run;
    run.tasks.push_back(ScheduledTask{"thrower", [] {
      throw std::runtime_error("boom");
    }});
    return run;
  };
  auto report = check::explore(factory, ExploreOptions{});
  ASSERT_TRUE(report.failed);
  EXPECT_NE(report.message.find("thrower"), std::string::npos);
  EXPECT_NE(report.message.find("boom"), std::string::npos);
}

TEST(Explorer, AbBaModelMutexDeadlockIsDetected) {
  auto factory = [] {
    auto a = std::make_shared<check::ModelMutex>();
    auto b = std::make_shared<check::ModelMutex>();
    TestRun run;
    run.tasks.push_back(ScheduledTask{"ab", [a, b] {
      a->lock();
      EPTO_SCHEDULE_POINT("holding-a");
      b->lock();
      b->unlock();
      a->unlock();
    }});
    run.tasks.push_back(ScheduledTask{"ba", [a, b] {
      b->lock();
      EPTO_SCHEDULE_POINT("holding-b");
      a->lock();
      a->unlock();
      b->unlock();
    }});
    return run;
  };
  auto report = check::explore(factory, ExploreOptions{});
  ASSERT_TRUE(report.failed);
  EXPECT_NE(report.message.find("deadlock"), std::string::npos);
  ASSERT_FALSE(report.seed.empty());

  auto replay = check::replaySeed(factory, report.seed);
  EXPECT_TRUE(replay.failed);
  EXPECT_NE(replay.message.find("deadlock"), std::string::npos);
}

TEST(Explorer, PointBudgetFlagsLivelock) {
  auto factory = [] {
    TestRun run;
    run.tasks.push_back(ScheduledTask{"spinner", [] {
      for (;;) EPTO_SCHEDULE_POINT("spin");
    }});
    return run;
  };
  ExploreOptions options;
  options.maxPointsPerRun = 50;
  auto report = check::explore(factory, options);
  ASSERT_TRUE(report.failed);
  EXPECT_NE(report.message.find("point budget"), std::string::npos);
}

TEST(Explorer, ReplayEnvVarRoutesToSingleScheduleReplay) {
  ::setenv("EPTO_SCHED_REPLAY", "x:", 1);
  auto report = test::exploreOrReplay(twoCounters(1), ExploreOptions{});
  ::unsetenv("EPTO_SCHED_REPLAY");
  EXPECT_FALSE(report.failed);
  EXPECT_EQ(report.runs, 1U);  // one replay, not a search
  EXPECT_EQ(report.seed, "x:");
}

}  // namespace
}  // namespace epto

// Schedule exploration of TimerWheel (runtime/timer_wheel.h) across lap
// boundaries. The wheel is single-threaded by contract — a shard owns
// it — so the model here is operation-order exploration: an arming
// stream and a sweeping stream serialized by a ModelMutex (the shard
// loop), with every op order enumerated. The interesting schedules are
// exactly the ones the cursor logic exists for: arming a tick the
// cursor already swept (parks in the cursor slot), and timers one full
// lap apart sharing a physical slot.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "check/schedule.h"
#include "explore_support.h"
#include "runtime/timer_wheel.h"

namespace epto {
namespace {

using check::ExploreOptions;
using check::ScheduledTask;
using check::TestRun;
using runtime::TimerWheel;
using std::chrono::milliseconds;

struct WheelState {
  // 4 slots x 1ms granularity: one lap is 4ms, so due times 1ms and 5ms
  // land in the same physical slot one lap apart.
  WheelState() : epoch(TimerWheel::TimePoint{}), wheel(milliseconds(1), 4, epoch) {}

  TimerWheel::TimePoint epoch;
  TimerWheel wheel;
  check::ModelMutex shardMutex;
  std::map<std::uint32_t, std::uint64_t> dueMs;      // id -> due offset
  std::vector<std::pair<std::uint32_t, std::uint64_t>> fired;  // id, expire offset

  void arm(std::uint32_t id, std::uint64_t ms) {
    shardMutex.lock();
    dueMs[id] = ms;
    wheel.schedule(id, epoch + milliseconds(ms));
    shardMutex.unlock();
  }

  void sweep(std::uint64_t ms) {
    shardMutex.lock();
    std::vector<std::uint32_t> out;
    wheel.expire(epoch + milliseconds(ms), out);
    for (const std::uint32_t id : out) fired.emplace_back(id, ms);
    shardMutex.unlock();
  }

  std::optional<std::string> verifyAll() {
    // Final sweep far past every deadline: everything armed must have
    // fired by now, exactly once, never before its due time.
    {
      std::vector<std::uint32_t> out;
      wheel.expire(epoch + milliseconds(100), out);
      for (const std::uint32_t id : out) fired.emplace_back(id, 100);
    }
    std::map<std::uint32_t, std::size_t> count;
    for (const auto& [id, atMs] : fired) {
      ++count[id];
      auto due = dueMs.find(id);
      if (due == dueMs.end()) return "fired an id that was never armed: " + std::to_string(id);
      if (atMs < due->second) {
        return "id " + std::to_string(id) + " fired at " + std::to_string(atMs) +
               "ms, before its due time " + std::to_string(due->second) + "ms";
      }
    }
    for (const auto& [id, dueAt] : dueMs) {
      (void)dueAt;
      auto it = count.find(id);
      if (it == count.end()) return "armed id never fired: " + std::to_string(id);
      if (it->second != 1) {
        return "id " + std::to_string(id) + " fired " + std::to_string(it->second) + " times";
      }
    }
    if (!wheel.empty()) return "wheel still reports armed timers after firing everything";
    return std::nullopt;
  }
};

TEST(TimerWheelSchedule, LapBoundaryArmAndSweepOrdersAllHoldInvariants) {
  // Armer: id 1 due 1ms, id 2 due 5ms (same slot, next lap). Sweeper:
  // expire at 2ms then 6ms. Orders where the sweeper runs first force
  // the swept-tick park path; orders where laps interleave force the
  // dueTick re-check in drainDue.
  auto factory = [] {
    auto state = std::make_shared<WheelState>();
    TestRun run;
    run.tasks.push_back(ScheduledTask{"armer", [state] {
      state->arm(1, 1);
      state->arm(2, 5);
    }});
    run.tasks.push_back(ScheduledTask{"sweeper", [state] {
      state->sweep(2);
      state->sweep(6);
    }});
    run.verify = [state] { return state->verifyAll(); };
    return run;
  };
  auto report = test::exploreOrReplay(factory);
  EXPECT_SCHEDULES_CLEAN(report);
  EXPECT_TRUE(report.exhausted);
}

TEST(TimerWheelSchedule, FullLapSkipAndCursorParkOrdersAllHoldInvariants) {
  // The sweeper's second expire jumps more than a full lap (2ms -> 9ms,
  // 7 ticks > 4 slots), driving the visit-every-slot path, while the
  // armer's second timer (due 1ms) may be armed after that tick was
  // already swept — the cursor-slot park. nextDue() is probed in
  // between to cover its scan while timers straddle laps.
  auto factory = [] {
    auto state = std::make_shared<WheelState>();
    TestRun run;
    run.tasks.push_back(ScheduledTask{"armer", [state] {
      state->arm(1, 3);
      state->arm(2, 1);  // may already be swept — must park, then fire
    }});
    run.tasks.push_back(ScheduledTask{"sweeper", [state] {
      state->sweep(2);
      state->shardMutex.lock();
      (void)state->wheel.nextDue();
      state->shardMutex.unlock();
      state->sweep(9);
    }});
    run.verify = [state] { return state->verifyAll(); };
    return run;
  };
  auto report = test::exploreOrReplay(factory);
  EXPECT_SCHEDULES_CLEAN(report);
  EXPECT_TRUE(report.exhausted);
}

}  // namespace
}  // namespace epto

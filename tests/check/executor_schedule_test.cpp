// Schedule exploration of ShardedExecutor's control-plane door
// (runtime/sharded_executor.*): post() under the real util::Mutex
// producer serialization — cooperative under exploration — against the
// consumer role played via drainMailboxOn(). This is the end-to-end
// check that the executor's mailbox keeps per-producer FIFO and exact
// rejection accounting under every explored interleaving.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "check/schedule.h"
#include "explore_support.h"
#include "runtime/sharded_executor.h"

namespace epto {
namespace {

using check::ExploreMode;
using check::ExploreOptions;
using check::ScheduledTask;
using check::TestRun;
using runtime::ShardedExecutor;
using runtime::ShardedExecutorOptions;

struct ExecutorState {
  explicit ExecutorState(std::size_t mailboxCapacity) {
    ShardedExecutorOptions options;
    options.nodeCount = 1;  // one shard: every producer contends one mailbox
    options.shardCount = 1;
    options.mailboxCapacity = mailboxCapacity;
    executor = std::make_unique<ShardedExecutor>(options, [](auto&) {});
  }

  std::unique_ptr<ShardedExecutor> executor;
  /// (producer, sequence) per accepted post, in acceptance order...
  std::vector<std::pair<int, int>> accepted;
  /// ...and in command-execution order, appended by the commands.
  std::vector<std::pair<int, int>> executed;
  int acceptedCount = 0;

  void post(int producer, int sequence) {
    const bool ok = executor->post(0, [this, producer, sequence] {
      executed.emplace_back(producer, sequence);
    });
    if (ok) {
      // Still racy-by-schedule against other producers' bookkeeping?
      // No: the vector push is outside the ring but tasks are
      // serialized between points, and accepted-order only needs to be
      // consistent per producer (checked below), not global.
      accepted.emplace_back(producer, sequence);
      ++acceptedCount;
    }
  }

  std::optional<std::string> verifyAccounting() {
    // Drain whatever the drainer task didn't get to.
    (void)executor->drainMailboxOn(0);
    if (executed.size() != accepted.size()) {
      return "executed " + std::to_string(executed.size()) + " commands, accepted " +
             std::to_string(accepted.size());
    }
    const auto rejections = static_cast<int>(executor->postRejections());
    if (acceptedCount + rejections != totalPosts) {
      return "accounting mismatch: accepted " + std::to_string(acceptedCount) + " + rejected " +
             std::to_string(rejections) + " != posted " + std::to_string(totalPosts);
    }
    // Per-producer FIFO: each producer's sequences appear in order in
    // the executed stream (the whole point of the mailbox contract).
    for (int producer = 1; producer <= 2; ++producer) {
      int last = -1;
      for (const auto& [who, sequence] : executed) {
        if (who != producer) continue;
        if (sequence <= last) {
          return "producer " + std::to_string(producer) + " commands reordered: " +
                 std::to_string(sequence) + " after " + std::to_string(last);
        }
        last = sequence;
      }
    }
    return std::nullopt;
  }

  int totalPosts = 0;
};

TEST(ExecutorSchedule, ExhaustiveTwoPostersAtTheFullEdge) {
  // Capacity 1: exactly one of the two posts lands, the other is
  // rejected and counted. Exercises the cooperative util::Mutex path
  // (producerMutex) under every interleaving.
  auto factory = [] {
    auto state = std::make_shared<ExecutorState>(1);
    state->totalPosts = 2;
    TestRun run;
    for (int producer = 1; producer <= 2; ++producer) {
      run.tasks.push_back(ScheduledTask{"poster" + std::to_string(producer),
                                        [state, producer] { state->post(producer, 0); }});
    }
    run.verify = [state]() -> std::optional<std::string> {
      if (auto error = state->verifyAccounting()) return error;
      if (state->acceptedCount != 1) {
        return "capacity-1 mailbox accepted " + std::to_string(state->acceptedCount) +
               " of 2 posts";
      }
      return std::nullopt;
    };
    return run;
  };
  auto report = test::exploreOrReplay(factory);
  EXPECT_SCHEDULES_CLEAN(report);
  EXPECT_TRUE(report.exhausted);
}

TEST(ExecutorSchedule, PctTwoPostersAgainstConcurrentDrainer) {
  // The bigger space: two posters x two commands against a drainer
  // playing the shard's consumer role mid-stream. Randomized priority
  // schedules; the verify drains the tail and checks global accounting
  // plus per-producer FIFO.
  auto factory = [] {
    auto state = std::make_shared<ExecutorState>(4);
    state->totalPosts = 4;
    TestRun run;
    for (int producer = 1; producer <= 2; ++producer) {
      run.tasks.push_back(ScheduledTask{"poster" + std::to_string(producer), [state, producer] {
        state->post(producer, 0);
        state->post(producer, 1);
      }});
    }
    run.tasks.push_back(ScheduledTask{"drainer", [state] {
      (void)state->executor->drainMailboxOn(0);
      (void)state->executor->drainMailboxOn(0);
    }});
    run.verify = [state] { return state->verifyAccounting(); };
    return run;
  };
  ExploreOptions options;
  options.mode = ExploreMode::RandomPct;
  options.runs = 128;
  auto report = test::exploreOrReplay(factory, options);
  EXPECT_SCHEDULES_CLEAN(report);
  EXPECT_EQ(report.runs, 128U);
}

}  // namespace
}  // namespace epto

// Replicated key-value store on top of EpTO — the paper's motivating
// application (§1.1: extending the DataFlasks epidemic store with total
// order so that version control no longer has to be delegated to the
// client).
//
// Every replica applies `put` operations in EpTO delivery order, so
// concurrent conflicting writes are resolved identically everywhere
// WITHOUT coordination, locks or a primary. The example runs 16 replicas
// over the discrete-event simulator with the PlanetLab-like latency
// distribution and 5% message loss, fires conflicting writes from many
// replicas, and proves byte-identical convergence.
//
// Build & run:   ./build/examples/replicated_kv
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/process.h"
#include "pss/uniform_sampler.h"
#include "sim/membership.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "util/empirical_distribution.h"

namespace {

using namespace epto;

PayloadPtr encodePut(const std::string& key, const std::string& value) {
  auto bytes = std::make_shared<PayloadBytes>();
  for (const char c : key + "=" + value) bytes->push_back(static_cast<std::byte>(c));
  return bytes;
}

std::pair<std::string, std::string> decodePut(const Event& event) {
  std::string text;
  for (const std::byte b : *event.payload) text.push_back(static_cast<char>(b));
  const auto eq = text.find('=');
  return {text.substr(0, eq), text.substr(eq + 1)};
}

/// One replica: an EpTO process plus the materialized map. Versions count
/// applied writes per key — identical everywhere because apply order is.
struct Replica {
  std::unique_ptr<Process> process;
  std::map<std::string, std::string> store;
  std::map<std::string, int> versions;

  void apply(const Event& event) {
    const auto [key, value] = decodePut(event);
    store[key] = value;
    ++versions[key];
  }

  [[nodiscard]] std::string fingerprint() const {
    std::string fp;
    for (const auto& [key, value] : store) {
      fp += key + "=" + value + "@v" + std::to_string(versions.at(key)) + ";";
    }
    return fp;
  }
};

}  // namespace

int main() {
  constexpr std::size_t kReplicas = 16;
  constexpr Timestamp kRound = 125;

  sim::Simulator simulator;
  sim::MembershipDirectory membership;
  util::Rng rng(2026);
  sim::SimNetwork<BallPtr> network(
      simulator,
      sim::SimNetwork<BallPtr>::Options{&util::planetLabLatency(), /*lossRate=*/0.05},
      rng.split());

  const Config config = Config::forSystemSize(kReplicas, ClockMode::Logical);
  std::printf("replicated_kv: %zu replicas, K=%zu, TTL=%u, 5%% loss, PlanetLab RTTs\n",
              kReplicas, config.fanout, config.ttl);

  std::vector<Replica> replicas(kReplicas);
  for (ProcessId id = 0; id < kReplicas; ++id) {
    membership.add(id);
    replicas[id].process = std::make_unique<Process>(
        id, config, std::make_shared<pss::UniformSampler>(id, membership, rng.split()),
        [&replicas, id](const Event& event, DeliveryTag) { replicas[id].apply(event); });
  }
  network.setReceiver([&](ProcessId, ProcessId to, const BallPtr& ball) {
    replicas[to].process->onBall(*ball);
  });

  // Periodic rounds with 1% drift, as in the paper's evaluation.
  std::function<void(ProcessId)> scheduleRound = [&](ProcessId id) {
    const Timestamp jitter = kRound / 100;
    const Timestamp period = kRound - jitter + rng.below(2 * jitter + 1);
    simulator.schedule(period, [&, id] {
      const auto out = replicas[id].process->onRound();
      if (out.ball != nullptr) {
        for (const ProcessId target : out.targets) network.send(id, target, out.ball);
      }
      scheduleRound(id);
    });
  };
  for (ProcessId id = 0; id < kReplicas; ++id) scheduleRound(id);

  // Conflicting writes: several replicas update the same keys while
  // others write disjoint data — all concurrently.
  simulator.schedule(100, [&] { replicas[1].process->broadcast(encodePut("leader", "r1")); });
  simulator.schedule(110, [&] { replicas[9].process->broadcast(encodePut("leader", "r9")); });
  simulator.schedule(112, [&] { replicas[4].process->broadcast(encodePut("leader", "r4")); });
  simulator.schedule(130, [&] { replicas[2].process->broadcast(encodePut("cfg/ttl", "15")); });
  simulator.schedule(500, [&] { replicas[7].process->broadcast(encodePut("leader", "r7")); });
  simulator.schedule(650, [&] { replicas[3].process->broadcast(encodePut("cfg/ttl", "5")); });

  simulator.runUntil(40 * kRound);

  const std::string reference = replicas[0].fingerprint();
  bool converged = true;
  for (const auto& replica : replicas) {
    if (replica.fingerprint() != reference) converged = false;
  }

  std::printf("\nfinal state at every replica: %s\n", reference.c_str());
  std::printf("conflicting writes to 'leader': 4 concurrent -> every replica kept '%s'\n",
              replicas[0].store.at("leader").c_str());
  std::printf("convergence: %s (%zu replicas byte-identical)\n",
              converged ? "OK" : "FAILED", kReplicas);
  return converged ? 0 : 1;
}

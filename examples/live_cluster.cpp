// A real multi-threaded EpTO cluster (§8.5) — no simulator.
//
// Ten nodes run on ten OS threads with steady-clock rounds, exchanging
// balls through an in-memory transport that injects 5% loss and up to
// 3 ms of delay. Application threads fire broadcasts concurrently; the
// run ends with the Table 1 verdict and throughput numbers.
//
// A background scrape thread appends the cluster's metric registry as
// JSONL to /tmp/live_cluster_metrics.jsonl while the run is in flight,
// and the run ends by printing an excerpt of the Prometheus snapshot.
//
// Build & run:   ./build/examples/live_cluster
#include <chrono>
#include <cstdio>
#include <sstream>
#include <thread>

#include "runtime/runtime_cluster.h"

int main() {
  using namespace epto;
  using namespace std::chrono_literals;

  runtime::RuntimeOptions options;
  options.nodeCount = 10;
  options.roundPeriod = 3ms;
  options.roundJitter = 0.10;
  options.clockMode = ClockMode::Logical;
  options.lossRate = 0.05;
  options.minDelay = 100us;
  options.maxDelay = 3ms;
  options.seed = 1234;
  options.scrapeInterval = 50ms;
  options.metricsOutPath = "/tmp/live_cluster_metrics.jsonl";

  runtime::RuntimeCluster cluster(options);
  std::printf("live_cluster: %zu threads, round=%lldus, K=%zu, TTL=%u, 5%% loss\n",
              options.nodeCount,
              static_cast<long long>(options.roundPeriod.count()),
              cluster.fanoutUsed(), cluster.ttlUsed());

  cluster.start();

  // Three concurrent application threads, each broadcasting through a
  // different subset of nodes.
  std::vector<std::thread> apps;
  for (int app = 0; app < 3; ++app) {
    apps.emplace_back([&cluster, app, &options] {
      for (int i = 0; i < 10; ++i) {
        cluster.broadcast(static_cast<std::size_t>(app * 3 + i) % options.nodeCount);
        std::this_thread::sleep_for(2ms);
      }
    });
  }
  for (auto& t : apps) t.join();

  const bool drained = cluster.awaitQuiescence(30s);
  cluster.stop();

  const auto report = cluster.report();
  const auto transport = cluster.transportStats();
  std::printf("\nbroadcasts=%llu deliveries=%llu (expected %llu)\n",
              static_cast<unsigned long long>(report.broadcasts),
              static_cast<unsigned long long>(report.deliveries),
              static_cast<unsigned long long>(report.broadcasts * options.nodeCount));
  std::printf("transport: %llu balls sent, %llu dropped by loss injection\n",
              static_cast<unsigned long long>(transport.sent),
              static_cast<unsigned long long>(transport.dropped));
  if (!report.delays.empty()) {
    std::printf("delivery delay: p50=%.1fms p99=%.1fms\n",
                static_cast<double>(report.delays.percentile(0.5)) / 1000.0,
                static_cast<double>(report.delays.percentile(0.99)) / 1000.0);
  }
  // Prometheus-text excerpt: the per-node delivery counters plus the
  // transport totals (full output is one line per node per metric).
  std::printf("\nmetrics (excerpt of the Prometheus snapshot; full JSONL series in\n"
              "%s, %llu scrapes):\n",
              options.metricsOutPath.c_str(),
              static_cast<unsigned long long>(cluster.scrapeCount()));
  std::istringstream snapshot(cluster.prometheusSnapshot());
  for (std::string line; std::getline(snapshot, line);) {
    if (line.find("epto_ordering_delivered_ordered_total") != std::string::npos ||
        line.find("epto_transport_") == 0 || line.rfind("# TYPE epto_transport", 0) == 0) {
      std::printf("  %s\n", line.c_str());
    }
  }

  std::printf("Table 1 verdict: integrity=%llu order=%llu validity=%llu holes=%llu\n",
              static_cast<unsigned long long>(report.integrityViolations),
              static_cast<unsigned long long>(report.orderViolations),
              static_cast<unsigned long long>(report.validityViolations),
              static_cast<unsigned long long>(report.holes));
  std::printf("result: %s\n",
              drained && report.allPropertiesHold() ? "OK — total order held on real "
                                                      "threads under loss and delay"
                                                    : "FAILED");
  return drained && report.allPropertiesHold() ? 0 : 1;
}

// Delivery tradeoffs (§8.4): peeking at not-yet-delivered events.
//
// EpTO holds events back until the stability oracle is confident everyone
// has them. Some applications can act earlier on weaker guarantees — the
// paper sketches exposing, per pending event, the probability that it is
// already stable. This example runs a small cluster, and at a fixed
// observation point prints every pending event at one process together
// with analysis::estimatedStability — the quantified "how safe is it to
// act on this now?" — then compares the optimistic order against the
// final delivered order.
//
// Build & run:   ./build/examples/stability_peek
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "analysis/balls_bins.h"
#include "core/process.h"
#include "pss/uniform_sampler.h"
#include "sim/membership.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "util/empirical_distribution.h"

namespace {
using namespace epto;
}

int main() {
  constexpr std::size_t kN = 64;
  constexpr Timestamp kRound = 125;

  sim::Simulator simulator;
  sim::MembershipDirectory membership;
  util::Rng rng(99);
  sim::SimNetwork<BallPtr> network(
      simulator, sim::SimNetwork<BallPtr>::Options{&util::planetLabLatency(), 0.0},
      rng.split());

  const Config config = Config::forSystemSize(kN, ClockMode::Logical);
  std::printf("stability_peek: n=%zu, K=%zu, TTL=%u\n\n", kN, config.fanout, config.ttl);

  std::vector<std::unique_ptr<Process>> processes;
  std::vector<std::vector<EventId>> delivered(kN);
  for (ProcessId id = 0; id < kN; ++id) {
    membership.add(id);
    processes.push_back(std::make_unique<Process>(
        id, config, std::make_shared<pss::UniformSampler>(id, membership, rng.split()),
        [&delivered, id](const Event& event, DeliveryTag) {
          delivered[id].push_back(event.id);
        }));
  }
  network.setReceiver([&](ProcessId, ProcessId to, const BallPtr& ball) {
    processes[to]->onBall(*ball);
  });
  std::function<void(ProcessId)> scheduleRound = [&](ProcessId id) {
    simulator.schedule(kRound + rng.below(3), [&, id] {
      const auto out = processes[id]->onRound();
      if (out.ball != nullptr) {
        for (const ProcessId target : out.targets) network.send(id, target, out.ball);
      }
      scheduleRound(id);
    });
  };
  for (ProcessId id = 0; id < kN; ++id) scheduleRound(id);

  // A burst of broadcasts at different moments, so that at observation
  // time the pending set holds events of very different ages.
  for (int i = 0; i < 8; ++i) {
    simulator.schedule(60 + static_cast<Timestamp>(i) * 190, [&, i] {
      processes[static_cast<std::size_t>(i * 7) % kN]->broadcast();
    });
  }
  // Two more right before the observation point, so the pending set also
  // contains barely-disseminated events with low stability estimates.
  simulator.schedule(1460, [&] { processes[11]->broadcast(); });
  simulator.schedule(1590, [&] { processes[23]->broadcast(); });

  // Observe process 0's pending events mid-run (§8.4 exposure).
  std::vector<EventId> optimisticOrder;
  simulator.schedule(1700, [&] {
    std::printf("pending events at process 0, tick %llu:\n",
                static_cast<unsigned long long>(simulator.now()));
    std::printf("  %-12s %-6s %-8s %s\n", "event", "age", "stable?", "P[stable] estimate");
    for (const Event& event : processes[0]->pendingEvents()) {
      const double stability =
          analysis::estimatedStability(kN, config.fanout, event.ttl);
      std::printf("  (%3u,%3u)    %-6u %-8s %.6f\n", event.id.source, event.id.sequence,
                  event.ttl, event.ttl > config.ttl ? "yes" : "no", stability);
      // An optimistic application might act once P[stable] > 99%.
      if (stability > 0.99) optimisticOrder.push_back(event.id);
    }
  });

  simulator.runUntil(45 * kRound);

  // The optimistic prefix must be a prefix-compatible subsequence of the
  // final total order at process 0 (it acted early, but never wrongly).
  const auto& finalOrder = delivered[0];
  bool optimisticWasSafe = true;
  std::size_t cursor = 0;
  for (const EventId& id : optimisticOrder) {
    const auto it = std::find(finalOrder.begin() + static_cast<std::ptrdiff_t>(cursor),
                              finalOrder.end(), id);
    if (it == finalOrder.end()) {
      optimisticWasSafe = false;
      break;
    }
    cursor = static_cast<std::size_t>(it - finalOrder.begin());
  }

  bool agree = true;
  for (ProcessId id = 1; id < kN; ++id) {
    if (delivered[id] != delivered[0]) agree = false;
  }
  std::printf("\nfinal: %zu events delivered, all %zu processes agree: %s\n",
              finalOrder.size(), kN, agree ? "yes" : "NO (bug!)");
  std::printf("optimistic (P>0.99) actions were order-consistent: %s\n",
              optimisticWasSafe ? "yes" : "NO");
  return agree && optimisticWasSafe && finalOrder.size() == 10 ? 0 : 1;
}

// DataFlasks extended with EpTO — the paper's §1.1 motivation, using the
// library's application layer (app::VersionedStore) instead of hand-rolled
// plumbing (compare examples/replicated_kv.cpp, which builds the same
// thing directly on the core API).
//
// 24 replicas of a versioned key-value store run over the discrete
// simulator with PlanetLab-like latency, 5% message loss, and a real
// Cyclon overlay as membership. Writers race on shared keys; the run
// verifies that every replica materializes identical version histories
// and that versioned reads (get at version v) agree everywhere.
//
// Build & run:   ./build/examples/versioned_datastore
#include <cstdio>
#include <memory>
#include <variant>
#include <vector>

#include "app/versioned_store.h"
#include "pss/cyclon.h"
#include "sim/membership.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "util/empirical_distribution.h"

namespace {
using namespace epto;

struct ShuffleReq {
  pss::CyclonView entries;
};
struct ShuffleRep {
  pss::CyclonView entries;
};
using Msg = std::variant<BallPtr, ShuffleReq, ShuffleRep>;
}  // namespace

int main() {
  constexpr std::size_t kN = 24;
  constexpr Timestamp kRound = 125;

  sim::Simulator simulator;
  sim::MembershipDirectory membership;
  util::Rng rng(31);
  sim::SimNetwork<Msg> network(
      simulator,
      sim::SimNetwork<Msg>::Options{&util::planetLabLatency(), /*lossRate=*/0.05},
      rng.split());

  const Config config = Config::forSystemSize(kN, ClockMode::Logical);
  std::printf("versioned_datastore: %zu replicas on a Cyclon overlay, K=%zu, TTL=%u, "
              "5%% loss\n\n",
              kN, config.fanout, config.ttl);

  std::vector<std::unique_ptr<app::VersionedStore>> stores;
  std::vector<std::shared_ptr<pss::Cyclon>> overlays;
  for (ProcessId id = 0; id < kN; ++id) {
    membership.add(id);
    auto cyclon = std::make_shared<pss::Cyclon>(
        id, pss::Cyclon::Options{.viewSize = 12, .shuffleLength = 5}, rng.split());
    overlays.push_back(cyclon);
    stores.push_back(std::make_unique<app::VersionedStore>(
        id, config, cyclon, app::StoreOptions{.historyDepth = 8}));
  }
  // Ring bootstrap: each replica initially knows only three successors.
  for (ProcessId id = 0; id < kN; ++id) {
    const std::vector<ProcessId> seeds{
        static_cast<ProcessId>((id + 1) % kN), static_cast<ProcessId>((id + 2) % kN),
        static_cast<ProcessId>((id + 3) % kN)};
    overlays[id]->bootstrap(seeds);
  }

  network.setReceiver([&](ProcessId from, ProcessId to, const Msg& message) {
    if (const auto* ball = std::get_if<BallPtr>(&message)) {
      stores[to]->process().onBall(**ball);
    } else if (const auto* req = std::get_if<ShuffleReq>(&message)) {
      network.send(to, from, ShuffleRep{overlays[to]->onShuffleRequest(from, req->entries)});
    } else if (const auto* rep = std::get_if<ShuffleRep>(&message)) {
      overlays[to]->onShuffleReply(rep->entries);
    }
  });

  std::function<void(ProcessId)> scheduleRound = [&](ProcessId id) {
    simulator.schedule(kRound + rng.below(3), [&, id] {
      if (auto shuffle = overlays[id]->onShuffleTimer(); shuffle.has_value()) {
        network.send(id, shuffle->target, ShuffleReq{std::move(shuffle->entries)});
      }
      const auto out = stores[id]->process().onRound();
      if (out.ball != nullptr) {
        for (const ProcessId target : out.targets) network.send(id, target, out.ball);
      }
      scheduleRound(id);
    });
  };
  for (ProcessId id = 0; id < kN; ++id) scheduleRound(id);

  // Racing writers: replicas 2, 9 and 17 fight over "config/mode" while
  // others write their own keys.
  simulator.schedule(3000, [&] { stores[2]->put("config/mode", "fast"); });
  simulator.schedule(3010, [&] { stores[9]->put("config/mode", "safe"); });
  simulator.schedule(3015, [&] { stores[17]->put("config/mode", "exact"); });
  simulator.schedule(3100, [&] { stores[5]->put("shard/5", "owner=r5"); });
  simulator.schedule(4200, [&] { stores[9]->put("config/mode", "final"); });

  simulator.runUntil(80 * kRound);

  bool converged = true;
  for (const auto& store : stores) {
    if (store->digest() != stores[0]->digest()) converged = false;
  }

  const auto latest = stores[0]->get("config/mode");
  std::printf("version history of 'config/mode' (identical at all %zu replicas):\n", kN);
  for (const auto& version : stores[0]->history("config/mode")) {
    std::printf("  v%llu = %s\n", static_cast<unsigned long long>(version.version),
                version.value.c_str());
  }
  std::printf("\nversioned read get('config/mode', v2) = %s at every replica\n",
              stores[0]->getVersion("config/mode", 2)->value.c_str());
  std::printf("latest = v%llu '%s'; commits=%llu; convergence: %s\n",
              static_cast<unsigned long long>(latest->version), latest->value.c_str(),
              static_cast<unsigned long long>(stores[0]->commitCount()),
              converged ? "OK" : "FAILED");
  return converged && latest.has_value() && latest->version == 4 ? 0 : 1;
}

// Quickstart: the smallest complete EpTO deployment.
//
// Eight processes exchange balls over an idealized synchronous network
// (this file drives the sans-io core by hand — no simulator, no threads —
// so every moving part of the protocol is visible). Three events are
// broadcast concurrently; every process delivers all of them in the same
// total order.
//
// Build & run:   ./build/examples/quickstart
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/process.h"

namespace {

using namespace epto;

/// The §2 peer-sampling assumption, trivially satisfied for a static
/// eight-process membership.
class EveryoneSampler final : public PeerSampler {
 public:
  EveryoneSampler(ProcessId self, std::size_t n) {
    for (ProcessId id = 0; id < n; ++id) {
      if (id != self) others_.push_back(id);
    }
  }
  std::vector<ProcessId> samplePeers(std::size_t k) override {
    auto out = others_;
    if (out.size() > k) out.resize(k);
    return out;
  }

 private:
  std::vector<ProcessId> others_;
};

PayloadPtr textPayload(const std::string& text) {
  auto bytes = std::make_shared<PayloadBytes>();
  for (const char c : text) bytes->push_back(static_cast<std::byte>(c));
  return bytes;
}

std::string textOf(const Event& event) {
  std::string out;
  if (event.payload != nullptr) {
    for (const std::byte b : *event.payload) out.push_back(static_cast<char>(b));
  }
  return out;
}

}  // namespace

int main() {
  constexpr std::size_t kProcesses = 8;

  // 1. Derive protocol parameters from the system size (Lemmas 3-4).
  const Config config = Config::forSystemSize(kProcesses, ClockMode::Logical);
  std::printf("EpTO quickstart: n=%zu  fanout K=%zu  TTL=%u (logical clocks)\n\n",
              kProcesses, config.fanout, config.ttl);

  // 2. One Process per participant; deliveries land in per-process logs.
  std::map<ProcessId, std::vector<std::string>> logs;
  std::vector<std::unique_ptr<Process>> processes;
  for (ProcessId id = 0; id < kProcesses; ++id) {
    processes.push_back(std::make_unique<Process>(
        id, config, std::make_shared<EveryoneSampler>(id, kProcesses),
        [&logs, id](const Event& event, DeliveryTag) {
          logs[id].push_back(textOf(event));
        }));
  }

  // 3. Concurrent broadcasts from three different processes.
  processes[3]->broadcast(textPayload("transfer $42 from A to B"));
  processes[5]->broadcast(textPayload("open account C"));
  processes[0]->broadcast(textPayload("audit log snapshot"));

  // 4. Drive rounds: collect each process's ball, then deliver it to the
  //    K chosen targets. (A real deployment calls onRound from a timer
  //    and onBall from its transport; see examples/live_cluster.cpp.)
  for (int round = 0; round < 2 * static_cast<int>(config.ttl) + 4; ++round) {
    std::vector<std::pair<Process*, Process::RoundOutput>> outputs;
    for (auto& p : processes) outputs.emplace_back(p.get(), p->onRound());
    for (auto& [from, out] : outputs) {
      if (out.ball == nullptr) continue;
      for (const ProcessId target : out.targets) processes[target]->onBall(*out.ball);
    }
  }

  // 5. Every process delivered the same sequence.
  std::printf("delivery order at every process:\n");
  for (std::size_t i = 0; i < logs[0].size(); ++i) {
    std::printf("  %zu. %s\n", i + 1, logs[0][i].c_str());
  }
  bool identical = true;
  for (const auto& [id, log] : logs) {
    if (log != logs[0]) identical = false;
  }
  std::printf("\nall %zu processes delivered %zu events in the %s order\n", kProcesses,
              logs[0].size(), identical ? "SAME" : "DIFFERENT (bug!)");
  return identical && logs[0].size() == 3 ? 0 : 1;
}

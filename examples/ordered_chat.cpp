// Totally ordered chat under adversarial network conditions.
//
// Twelve participants chat over a network with PlanetLab-like latency,
// 10% message loss AND churn-like silence (two participants stop relaying
// mid-run). Despite balls being lost and reordered in flight, every
// remaining participant renders the exact same transcript — no central
// server, no sequencer, no acknowledgments.
//
// Build & run:   ./build/examples/ordered_chat
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/process.h"
#include "pss/uniform_sampler.h"
#include "sim/membership.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "util/empirical_distribution.h"

namespace {

using namespace epto;

PayloadPtr say(const std::string& text) {
  auto bytes = std::make_shared<PayloadBytes>();
  for (const char c : text) bytes->push_back(static_cast<std::byte>(c));
  return bytes;
}

std::string textOf(const Event& event) {
  std::string out;
  for (const std::byte b : *event.payload) out.push_back(static_cast<char>(b));
  return out;
}

}  // namespace

int main() {
  constexpr std::size_t kUsers = 12;
  constexpr Timestamp kRound = 125;

  sim::Simulator simulator;
  sim::MembershipDirectory membership;
  util::Rng rng(7);
  sim::SimNetwork<BallPtr> network(
      simulator,
      sim::SimNetwork<BallPtr>::Options{&util::planetLabLatency(), /*lossRate=*/0.10},
      rng.split());

  const Config config = Config::forSystemSize(kUsers, ClockMode::Logical);
  std::printf("ordered_chat: %zu users, 10%% loss, K=%zu, TTL=%u\n\n", kUsers,
              config.fanout, config.ttl);

  std::vector<std::vector<std::string>> transcripts(kUsers);
  std::vector<std::unique_ptr<Process>> users;
  std::vector<bool> muted(kUsers, false);  // "crashed" participants

  for (ProcessId id = 0; id < kUsers; ++id) {
    membership.add(id);
    users.push_back(std::make_unique<Process>(
        id, config, std::make_shared<pss::UniformSampler>(id, membership, rng.split()),
        [&transcripts, id](const Event& event, DeliveryTag) {
          transcripts[id].push_back(textOf(event));
        }));
  }
  network.setReceiver([&](ProcessId, ProcessId to, const BallPtr& ball) {
    if (!muted[to]) users[to]->onBall(*ball);
  });

  std::function<void(ProcessId)> scheduleRound = [&](ProcessId id) {
    simulator.schedule(kRound + rng.below(3), [&, id] {
      if (!muted[id]) {
        const auto out = users[id]->onRound();
        if (out.ball != nullptr) {
          for (const ProcessId target : out.targets) network.send(id, target, out.ball);
        }
      }
      scheduleRound(id);
    });
  };
  for (ProcessId id = 0; id < kUsers; ++id) scheduleRound(id);

  // The conversation — concurrent messages from different users.
  simulator.schedule(50, [&] { users[0]->broadcast(say("alice: anyone up for lunch?")); });
  simulator.schedule(55, [&] { users[4]->broadcast(say("edgar: yes! the usual place?")); });
  simulator.schedule(56, [&] { users[7]->broadcast(say("hana: I vote sushi")); });
  simulator.schedule(300, [&] { users[2]->broadcast(say("carol: sushi +1")); });
  simulator.schedule(310, [&] { users[0]->broadcast(say("alice: sushi it is, 12:30")); });
  // Two users drop off the grid mid-conversation (crash / partition).
  simulator.schedule(400, [&] {
    muted[5] = true;
    muted[11] = true;
    membership.remove(5);
    membership.remove(11);
    std::printf("(users 5 and 11 crashed at tick 400)\n\n");
  });
  simulator.schedule(700, [&] { users[9]->broadcast(say("jay: save me a seat")); });

  simulator.runUntil(40 * kRound);

  std::printf("transcript (identical at every live user):\n");
  for (const auto& line : transcripts[0]) std::printf("  %s\n", line.c_str());

  bool identical = true;
  std::size_t liveUsers = 0;
  for (ProcessId id = 0; id < kUsers; ++id) {
    if (muted[id]) continue;
    ++liveUsers;
    if (transcripts[id] != transcripts[0]) identical = false;
  }
  std::printf("\n%zu live users, transcripts %s, %zu/6 messages delivered\n", liveUsers,
              identical ? "IDENTICAL" : "DIVERGED (bug!)", transcripts[0].size());
  return identical && transcripts[0].size() == 6 ? 0 : 1;
}

// VersionedStore — a DataFlasks-style replicated key-value store.
//
// The paper's closing motivation (§1.1): "DataFlasks is a very large
// scale data store maintained exclusively with epidemic algorithms
// which, due to the absence of ordering, delegates important tasks such
// as version control to the client. Extending DataFlasks with EpTO would
// allow stronger ordering properties." This class is that extension:
// puts flow through a ReplicatedLog, so every replica assigns the same
// version numbers to the same writes and conflicting concurrent puts
// resolve identically everywhere — version control without clients and
// without coordination.
//
// Each key keeps a bounded history of (version, value) pairs, mirroring
// DataFlasks' versioned reads.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "app/replicated_log.h"

namespace epto::app {

struct VersionedValue {
  std::uint64_t version = 0;  ///< per-key, starts at 1 with the first put.
  std::string value;
};

struct StoreOptions {
  std::size_t historyDepth = 4;  ///< versions retained per key (>= 1).
};

class VersionedStore {
 public:
  using Options = StoreOptions;

  VersionedStore(ProcessId id, const Config& config,
                 std::shared_ptr<PeerSampler> sampler, Options options = {},
                 GlobalClockOracle::TimeSource globalTime = {});

  /// Asynchronous replicated put. The write takes effect — with the same
  /// version number at every replica — when EpTO commits it.
  /// Returns the event carrying the command.
  Event put(std::string_view key, std::string_view value);

  /// Latest committed value, if the key exists.
  [[nodiscard]] std::optional<VersionedValue> get(std::string_view key) const;

  /// Specific committed version (if still within the history window).
  [[nodiscard]] std::optional<VersionedValue> getVersion(std::string_view key,
                                                         std::uint64_t version) const;

  /// Retained history, oldest first.
  [[nodiscard]] std::vector<VersionedValue> history(std::string_view key) const;

  [[nodiscard]] std::size_t keyCount() const noexcept { return table_.size(); }
  [[nodiscard]] std::uint64_t commitCount() const noexcept { return log_.size(); }
  /// Convergence fingerprint: equal digests <=> identical committed state.
  [[nodiscard]] std::uint64_t digest() const noexcept { return log_.digest(); }

  [[nodiscard]] ReplicatedLog& log() noexcept { return log_; }
  [[nodiscard]] Process& process() noexcept { return log_.process(); }

  /// Command wire helpers, exposed for tests and interoperating tools.
  [[nodiscard]] static PayloadPtr encodePut(std::string_view key, std::string_view value);
  [[nodiscard]] static std::optional<std::pair<std::string, std::string>> decodePut(
      const PayloadPtr& payload);

 private:
  void apply(const LogEntry& entry);

  Options options_;
  std::map<std::string, std::deque<VersionedValue>, std::less<>> table_;
  ReplicatedLog log_;  // declared last: its callback touches table_
};

}  // namespace epto::app

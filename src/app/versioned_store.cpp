#include "app/versioned_store.h"

#include "codec/varint.h"
#include "util/ensure.h"

namespace epto::app {

VersionedStore::VersionedStore(ProcessId id, const Config& config,
                               std::shared_ptr<PeerSampler> sampler, Options options,
                               GlobalClockOracle::TimeSource globalTime)
    : options_(options),
      log_(id, config, std::move(sampler),
           [this](const LogEntry& entry) { apply(entry); },
           /*onOutOfOrder=*/{}, std::move(globalTime)) {
  EPTO_ENSURE_MSG(options_.historyDepth >= 1, "history depth must be at least 1");
}

PayloadPtr VersionedStore::encodePut(std::string_view key, std::string_view value) {
  auto bytes = std::make_shared<PayloadBytes>();
  codec::putVarint(*bytes, key.size());
  for (const char c : key) bytes->push_back(static_cast<std::byte>(c));
  codec::putVarint(*bytes, value.size());
  for (const char c : value) bytes->push_back(static_cast<std::byte>(c));
  return bytes;
}

std::optional<std::pair<std::string, std::string>> VersionedStore::decodePut(
    const PayloadPtr& payload) {
  if (payload == nullptr) return std::nullopt;
  codec::ByteReader reader(*payload);
  const auto readString = [&reader]() -> std::optional<std::string> {
    const auto length = reader.readVarint();
    if (!length.has_value()) return std::nullopt;
    const auto bytes = reader.readBytes(static_cast<std::size_t>(*length));
    if (!bytes.has_value()) return std::nullopt;
    std::string out;
    out.reserve(bytes->size());
    for (const std::byte b : *bytes) out.push_back(static_cast<char>(b));
    return out;
  };
  auto key = readString();
  auto value = readString();
  if (!key.has_value() || !value.has_value() || !reader.exhausted()) return std::nullopt;
  return std::make_pair(std::move(*key), std::move(*value));
}

Event VersionedStore::put(std::string_view key, std::string_view value) {
  return log_.append(encodePut(key, value));
}

void VersionedStore::apply(const LogEntry& entry) {
  const auto command = decodePut(entry.payload);
  if (!command.has_value()) return;  // foreign entry in the log: ignore
  auto& history = table_[command->first];
  const std::uint64_t version = history.empty() ? 1 : history.back().version + 1;
  history.push_back(VersionedValue{version, command->second});
  while (history.size() > options_.historyDepth) history.pop_front();
}

std::optional<VersionedValue> VersionedStore::get(std::string_view key) const {
  const auto it = table_.find(key);
  if (it == table_.end() || it->second.empty()) return std::nullopt;
  return it->second.back();
}

std::optional<VersionedValue> VersionedStore::getVersion(std::string_view key,
                                                         std::uint64_t version) const {
  const auto it = table_.find(key);
  if (it == table_.end()) return std::nullopt;
  for (const VersionedValue& entry : it->second) {
    if (entry.version == version) return entry;
  }
  return std::nullopt;  // never written or already evicted from history
}

std::vector<VersionedValue> VersionedStore::history(std::string_view key) const {
  const auto it = table_.find(key);
  if (it == table_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

}  // namespace epto::app

// ReplicatedLog — uniform totally-ordered log on top of EpTO.
//
// The canonical use of total order (and the paper's motivation, §1.1):
// every replica appends the same sequence of entries, so deterministic
// state machines replayed over the log converge without coordination.
// The log wraps one epto::Process, numbers ordered deliveries with
// consecutive indices, and maintains a rolling FNV-1a digest that two
// replicas can compare to prove (probabilistically) identical prefixes.
//
// Out-of-order (tagged, §8.2) deliveries never enter the log — they are
// surfaced through a separate callback so the application can compensate.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/process.h"
#include "core/types.h"

namespace epto::app {

struct LogEntry {
  std::uint64_t index = 0;  ///< consecutive position in the log, from 0.
  EventId id;
  OrderKey key;
  PayloadPtr payload;
};

class ReplicatedLog {
 public:
  using CommitFn = std::function<void(const LogEntry&)>;
  using OutOfOrderFn = std::function<void(const Event&)>;

  /// The driving contract is inherited from epto::Process: the owner
  /// calls process().onBall / process().onRound.
  ReplicatedLog(ProcessId id, const Config& config, std::shared_ptr<PeerSampler> sampler,
                CommitFn onCommit = {}, OutOfOrderFn onOutOfOrder = {},
                GlobalClockOracle::TimeSource globalTime = {});

  /// Append asynchronously: the entry commits — at every replica, at the
  /// same index — once EpTO delivers it. Returns the event created.
  Event append(PayloadPtr payload);

  [[nodiscard]] Process& process() noexcept { return *process_; }
  [[nodiscard]] const std::vector<LogEntry>& entries() const noexcept { return entries_; }
  [[nodiscard]] std::uint64_t size() const noexcept { return entries_.size(); }

  /// FNV-1a digest over (id, payload) of every committed entry, in order.
  /// Equal digests <=> (w.h.p.) identical logs.
  [[nodiscard]] std::uint64_t digest() const noexcept { return digest_; }

 private:
  void onDeliver(const Event& event, DeliveryTag tag);
  void fold(const Event& event);

  CommitFn onCommit_;
  OutOfOrderFn onOutOfOrder_;
  std::vector<LogEntry> entries_;
  std::uint64_t digest_ = 0xCBF29CE484222325ULL;  // FNV-1a offset basis
  std::unique_ptr<Process> process_;              // constructed last: callback uses fields
};

}  // namespace epto::app

#include "app/replicated_log.h"

namespace epto::app {

ReplicatedLog::ReplicatedLog(ProcessId id, const Config& config,
                             std::shared_ptr<PeerSampler> sampler, CommitFn onCommit,
                             OutOfOrderFn onOutOfOrder,
                             GlobalClockOracle::TimeSource globalTime)
    : onCommit_(std::move(onCommit)), onOutOfOrder_(std::move(onOutOfOrder)) {
  process_ = std::make_unique<Process>(
      id, config, std::move(sampler),
      [this](const Event& event, DeliveryTag tag) { onDeliver(event, tag); },
      std::move(globalTime));
}

Event ReplicatedLog::append(PayloadPtr payload) {
  return process_->broadcast(std::move(payload));
}

void ReplicatedLog::fold(const Event& event) {
  constexpr std::uint64_t kPrime = 0x100000001B3ULL;
  const auto foldByte = [&](std::uint8_t byte) {
    digest_ ^= byte;
    digest_ *= kPrime;
  };
  const std::uint64_t packed = event.id.packed();
  for (int shift = 0; shift < 64; shift += 8) {
    foldByte(static_cast<std::uint8_t>(packed >> shift));
  }
  if (event.payload != nullptr) {
    for (const std::byte b : *event.payload) foldByte(static_cast<std::uint8_t>(b));
  }
}

void ReplicatedLog::onDeliver(const Event& event, DeliveryTag tag) {
  if (tag == DeliveryTag::OutOfOrder) {
    if (onOutOfOrder_) onOutOfOrder_(event);
    return;
  }
  LogEntry entry;
  entry.index = entries_.size();
  entry.id = event.id;
  entry.key = event.orderKey();
  entry.payload = event.payload;
  fold(event);
  entries_.push_back(entry);
  if (onCommit_) onCommit_(entries_.back());
}

}  // namespace epto::app

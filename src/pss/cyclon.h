// Cyclon — inexpensive membership management for unstructured P2P
// overlays (Voulgaris, Gavidia, van Steen, JNSM 2005; paper reference
// [28], used for Figure 9).
//
// Each node keeps a small partial view (the "cache") of (neighbor, age)
// entries. Periodically it shuffles: it picks its *oldest* neighbor Q,
// sends Q a random subset of its view with itself inserted at age 0, and
// integrates Q's reply, preferring to overwrite the entries it just sent.
// Aging guarantees dead neighbors are eventually shuffled out.
//
// The implementation is sans-io like the EpTO core: the driver owns
// timers and the network, and moves ShuffleRequest/reply views around.
// The class implements epto::PeerSampler so an EpTO process can gossip
// straight out of its Cyclon view.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/types.h"
#include "util/rng.h"

namespace epto::pss {

struct CyclonEntry {
  ProcessId id = 0;
  std::uint32_t age = 0;
};

using CyclonView = std::vector<CyclonEntry>;

struct CyclonStats {
  std::uint64_t shufflesStarted = 0;
  std::uint64_t shufflesAnswered = 0;
  std::uint64_t repliesIntegrated = 0;
  std::uint64_t entriesLearned = 0;
  /// Entries dropped by ingress sanitation: oversize shuffle payloads
  /// (more than shuffleLength entries — no honest peer sends that) and
  /// reply entries resurrecting the just-evicted shuffle partner.
  std::uint64_t hostileEntriesDropped = 0;
};

class Cyclon final : public PeerSampler {
 public:
  struct Options {
    std::size_t viewSize = 20;       ///< cache size c.
    std::size_t shuffleLength = 8;   ///< entries exchanged per shuffle, l <= c.
  };

  Cyclon(ProcessId self, Options options, util::Rng rng);

  /// Seed the cache with bootstrap neighbors (age 0). Typically the ids a
  /// joining node learned from its introducer.
  void bootstrap(std::span<const ProcessId> seeds);

  /// What one shuffle period produces: a request to ship to `target`.
  struct ShuffleRequest {
    ProcessId target = 0;
    CyclonView entries;
  };

  /// Periodic shuffle initiation. Increments all ages, picks the oldest
  /// neighbor and assembles the outgoing subset. Returns nothing when the
  /// cache is empty. At most one shuffle is outstanding: starting a new
  /// one abandons a lost earlier exchange (its reply, if it still
  /// arrives, is integrated on a best-effort basis).
  [[nodiscard]] std::optional<ShuffleRequest> onShuffleTimer();

  /// Handle a shuffle request from `from`; returns the reply view to send
  /// back (a random subset of the local cache, never containing self).
  [[nodiscard]] CyclonView onShuffleRequest(ProcessId from, const CyclonView& received);

  /// Handle the reply to this node's own pending shuffle.
  void onShuffleReply(const CyclonView& received);

  // PeerSampler: k distinct uniformly random neighbors from the cache.
  [[nodiscard]] std::vector<ProcessId> samplePeers(std::size_t k) override;

  [[nodiscard]] const CyclonView& view() const noexcept { return cache_; }
  [[nodiscard]] const CyclonStats& stats() const noexcept { return stats_; }
  [[nodiscard]] ProcessId self() const noexcept { return self_; }

 private:
  /// Integrate `received` into the cache: skip self and duplicates, fill
  /// free slots, then overwrite the slots whose entries were in `sent`.
  void merge(const CyclonView& received, const CyclonView& sent);
  /// Defensive copy of an incoming view: truncated to shuffleLength and,
  /// when `evicted` is set, with entries for that id removed (an honest
  /// reply never contains its own sender, so a reply echoing the partner
  /// we just evicted is forged and must not undo aging-based eviction).
  [[nodiscard]] CyclonView sanitize(const CyclonView& received,
                                    std::optional<ProcessId> evicted);
  [[nodiscard]] bool contains(ProcessId id) const;
  void removeEntry(ProcessId id);

  ProcessId self_;
  Options options_;
  util::Rng rng_;
  CyclonView cache_;
  /// Entries shipped in the pending self-initiated shuffle (replacement
  /// candidates for the reply), plus the peer they went to.
  std::optional<ShuffleRequest> pending_;
  CyclonStats stats_;
};

}  // namespace epto::pss

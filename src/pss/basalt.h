// BASALT — Byzantine-resilient peer sampling (Auvolat, Frey, Raynal,
// Taïani: "BASALT: A Rock-Solid Foundation for Epidemic Consensus
// Algorithms in Very Large, Very Open Networks"; PAPERS.md).
//
// Classic shuffling PSSes (Cyclon, the Jelasity framework) accept
// whatever a shuffle partner offers, so a Byzantine minority that floods
// exchanges with its own ids at forged age 0 progressively eclipses
// honest views. BASALT removes the attacker's lever by making each view slot
// the *minimizer of a random hash function the attacker cannot predict*:
//
//   * each of the v view slots carries a private random seed; a candidate
//     peer p is ranked by H(seed_i, p), and the slot keeps whichever peer
//     it has ever been offered with the lowest rank ("stubborn
//     chaotic search"). Proposing an id more often does not improve its
//     rank, so flooding buys the adversary nothing beyond its fair
//     representation in the id space (≈ f of the slots);
//   * a per-slot hit counter tracks how often the current occupant is
//     re-proposed; an occupant re-proposed past the hit threshold is
//     being pushed by someone — the slot's seed is re-rolled, forcing the
//     occupant to re-win a fresh lottery (flooding becomes actively
//     counter-productive);
//   * slot seeds are additionally rotated round-robin every
//     rotationInterval exchanges so the view keeps refreshing and no
//     occupant is permanent (the paper's freshness mechanism).
//
// Sans-io like Cyclon/GenericPss: the driver owns timers and the network
// and moves candidate-id lists around; implements epto::PeerSampler so
// an EpTO process can draw its gossip targets straight from the
// hardened view.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/types.h"
#include "util/rng.h"

namespace epto::pss {

struct BasaltStats {
  std::uint64_t exchangesStarted = 0;
  std::uint64_t exchangesAnswered = 0;
  std::uint64_t repliesIntegrated = 0;
  std::uint64_t candidatesAccepted = 0;  ///< slot occupant replaced by a lower rank.
  std::uint64_t forcedRenewals = 0;      ///< hit-threshold seed re-rolls.
  std::uint64_t seedRotations = 0;       ///< scheduled round-robin re-rolls.
};

class Basalt final : public PeerSampler {
 public:
  struct Options {
    std::size_t viewSize = 20;        ///< view slots v.
    std::size_t exchangeLength = 8;   ///< candidate ids per exchange, <= v.
    /// Exchanges between round-robin seed rotations (one slot per due
    /// rotation). Smaller = fresher view, more churn in the sample.
    std::uint32_t rotationInterval = 10;
    /// Re-proposals of a slot's current occupant before its seed is
    /// force-renewed (the anti-flooding counter).
    std::uint32_t hitThreshold = 16;
  };

  Basalt(ProcessId self, Options options, util::Rng rng);

  /// Seed the slots from bootstrap candidates (the ids a joining node
  /// learned from its introducer). Ranked like any other candidate.
  void bootstrap(std::span<const ProcessId> seeds);

  struct ExchangeRequest {
    ProcessId target = 0;
    std::vector<ProcessId> candidates;
  };

  /// Periodic exchange initiation: advance the rotation schedule, pick a
  /// uniformly random view peer and assemble the outgoing candidate list
  /// (current view slots + self). Returns nothing while the view is empty.
  [[nodiscard]] std::optional<ExchangeRequest> onExchangeTimer();

  /// Passive side: rank the incoming candidates (plus the sender), reply
  /// with this node's own candidate list.
  [[nodiscard]] std::vector<ProcessId> onExchangeRequest(
      ProcessId from, const std::vector<ProcessId>& candidates);

  /// Active side: rank the reply's candidates.
  void onExchangeReply(const std::vector<ProcessId>& candidates);

  // PeerSampler: k distinct uniformly random occupants of the view slots.
  [[nodiscard]] std::vector<ProcessId> samplePeers(std::size_t k) override;

  /// Current slot occupants (distinct ids, unspecified order); the
  /// poisoning-measurement surface.
  [[nodiscard]] std::vector<ProcessId> view() const;
  [[nodiscard]] const BasaltStats& stats() const noexcept { return stats_; }
  [[nodiscard]] ProcessId self() const noexcept { return self_; }

 private:
  struct Slot {
    std::uint64_t seed = 0;
    std::uint64_t rank = 0;       ///< rank of the occupant under `seed`.
    ProcessId peer = 0;
    std::uint32_t hits = 0;
    bool filled = false;
  };

  [[nodiscard]] std::uint64_t rankOf(std::uint64_t seed, ProcessId id) const noexcept;
  void updateSample(ProcessId id);
  void renewSlot(Slot& slot);
  [[nodiscard]] std::vector<ProcessId> buildCandidates();
  /// Distinct filled occupants, in slot order.
  [[nodiscard]] std::vector<ProcessId> distinctPeers() const;

  ProcessId self_;
  Options options_;
  util::Rng rng_;
  std::vector<Slot> slots_;
  std::uint64_t exchanges_ = 0;     ///< onExchangeTimer() calls, drives rotation.
  std::size_t rotationCursor_ = 0;  ///< next slot to rotate.
  BasaltStats stats_;
};

}  // namespace epto::pss

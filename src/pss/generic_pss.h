// Generic gossip-based peer sampling — the framework of Jelasity,
// Voulgaris, Guerraoui, Kermarrec & van Steen (ACM TOCS 2007), the
// paper's reference [17] for the PSS assumption and for "adjusting the
// PSS properties to favour freshness" (§6, discussion of Fig. 9).
//
// The framework spans a design space with three axes:
//   * peer selection  — who to gossip with: a random neighbor or the
//                       oldest one (tail);
//   * view propagation — push only, or push-pull;
//   * view selection  — how to merge views: keep random entries (blind),
//                       drop the H oldest first (healer, favours
//                       freshness), or drop the S entries just sent
//                       (swapper, favours balance).
// Cyclon (pss/cyclon.h) is one point in this space (tail, push-pull,
// swapper); this class exposes the whole space so the ablation bench can
// measure how PSS freshness policies affect EpTO under churn.
//
// Sans-io: the driver owns timers and the network and moves view buffers
// around, exactly like the Cyclon driver contract.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/types.h"
#include "util/rng.h"

namespace epto::pss {

/// A view entry: a peer plus its age in gossip cycles.
struct Descriptor {
  ProcessId id = 0;
  std::uint32_t age = 0;
};

using DescriptorView = std::vector<Descriptor>;

enum class PeerSelection : std::uint8_t {
  Random,  ///< uniform neighbor
  Tail,    ///< oldest neighbor (the paper's best-under-churn choice)
};

enum class ViewSelection : std::uint8_t {
  Blind,    ///< random truncation
  Healer,   ///< drop oldest entries first (favours freshness)
  Swapper,  ///< drop the entries just shipped (favours balance)
};

struct GenericPssStats {
  std::uint64_t cyclesStarted = 0;
  std::uint64_t gossipsAnswered = 0;
  std::uint64_t repliesIntegrated = 0;
  /// Entries beyond gossipLength in an incoming buffer; no honest peer
  /// ships an oversized buffer, so the surplus is dropped unread.
  std::uint64_t hostileEntriesDropped = 0;
};

class GenericPss final : public PeerSampler {
 public:
  struct Options {
    std::size_t viewSize = 20;      ///< c
    std::size_t gossipLength = 10;  ///< entries exchanged per cycle (<= c)
    bool pull = true;               ///< push-pull (true) or push-only
    PeerSelection peerSelection = PeerSelection::Tail;
    ViewSelection viewSelection = ViewSelection::Healer;
    /// healing parameter H and swap parameter S of the framework; both
    /// are clamped to gossipLength/2 internally per the paper.
    std::size_t healing = 3;
    std::size_t swap = 2;
  };

  GenericPss(ProcessId self, Options options, util::Rng rng);

  void bootstrap(std::span<const ProcessId> seeds);

  struct GossipMessage {
    ProcessId target = 0;
    DescriptorView buffer;
  };

  /// Active cycle: pick a peer, assemble the push buffer. nullopt when
  /// the view is empty.
  [[nodiscard]] std::optional<GossipMessage> onGossipTimer();

  /// Passive side: merge the pushed buffer; with pull enabled, returns
  /// the reply buffer to ship back.
  [[nodiscard]] std::optional<DescriptorView> onGossip(ProcessId from,
                                                       const DescriptorView& buffer);

  /// Active side: merge the pull reply.
  void onGossipReply(const DescriptorView& buffer);

  // PeerSampler: k distinct uniformly random neighbors from the view.
  [[nodiscard]] std::vector<ProcessId> samplePeers(std::size_t k) override;

  [[nodiscard]] const DescriptorView& view() const noexcept { return view_; }
  [[nodiscard]] const GenericPssStats& stats() const noexcept { return stats_; }
  [[nodiscard]] ProcessId self() const noexcept { return self_; }

 private:
  [[nodiscard]] DescriptorView buildBuffer();
  void select(const DescriptorView& received, const DescriptorView& sent);
  [[nodiscard]] bool contains(ProcessId id) const;

  ProcessId self_;
  Options options_;
  util::Rng rng_;
  DescriptorView view_;
  /// Entries shipped in the pending self-initiated exchange (swap
  /// candidates when the reply arrives).
  DescriptorView pendingSent_;
  GenericPssStats stats_;
};

}  // namespace epto::pss

#include "pss/basalt.h"

#include <algorithm>

#include "util/ensure.h"

namespace epto::pss {

Basalt::Basalt(ProcessId self, Options options, util::Rng rng)
    : self_(self), options_(options), rng_(rng) {
  EPTO_ENSURE_MSG(options_.viewSize >= 1, "Basalt view must hold at least one slot");
  EPTO_ENSURE_MSG(options_.exchangeLength >= 1,
                  "Basalt exchanges must carry at least one candidate");
  EPTO_ENSURE_MSG(options_.exchangeLength <= options_.viewSize,
                  "Basalt exchangeLength must not exceed viewSize");
  EPTO_ENSURE_MSG(options_.rotationInterval >= 1,
                  "Basalt rotationInterval must be at least one exchange");
  EPTO_ENSURE_MSG(options_.hitThreshold >= 1,
                  "Basalt hitThreshold must be at least one re-proposal");
  slots_.resize(options_.viewSize);
  for (auto& slot : slots_) slot.seed = rng_();
}

std::uint64_t Basalt::rankOf(std::uint64_t seed, ProcessId id) const noexcept {
  // H(seed, id): mix the id first so consecutive ids don't get
  // correlated ranks under the same seed.
  return util::mix64(seed ^ util::mix64(static_cast<std::uint64_t>(id)));
}

void Basalt::updateSample(ProcessId id) {
  if (id == self_) return;
  for (auto& slot : slots_) {
    if (slot.filled && slot.peer == id) {
      // Re-proposal of the current occupant: someone is pushing this id.
      // Past the threshold, re-roll the slot's lottery so the pusher has
      // to win it again under a seed it never saw.
      if (++slot.hits >= options_.hitThreshold) {
        renewSlot(slot);
        stats_.forcedRenewals++;
        // The incumbent still competes under the fresh seed — but so does
        // every future candidate, on equal footing.
        const std::uint64_t rank = rankOf(slot.seed, id);
        if (!slot.filled || rank < slot.rank) {
          slot.peer = id;
          slot.rank = rank;
          slot.filled = true;
        }
      }
      continue;
    }
    const std::uint64_t rank = rankOf(slot.seed, id);
    if (!slot.filled || rank < slot.rank) {
      slot.peer = id;
      slot.rank = rank;
      slot.hits = 0;
      slot.filled = true;
      stats_.candidatesAccepted++;
    }
  }
}

void Basalt::renewSlot(Slot& slot) {
  slot.seed = rng_();
  slot.hits = 0;
  slot.filled = false;
  slot.rank = 0;
}

void Basalt::bootstrap(std::span<const ProcessId> seeds) {
  for (const ProcessId id : seeds) updateSample(id);
}

std::vector<ProcessId> Basalt::distinctPeers() const {
  std::vector<ProcessId> out;
  out.reserve(slots_.size());
  for (const auto& slot : slots_) {
    if (slot.filled) out.push_back(slot.peer);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<ProcessId> Basalt::buildCandidates() {
  // Up to exchangeLength distinct view occupants plus self (the exchange
  // is also how this node advertises itself, like Cyclon's self@age-0).
  std::vector<ProcessId> candidates = distinctPeers();
  for (std::size_t i = 0; i + 1 < candidates.size(); ++i) {
    const std::size_t j = i + rng_.below(candidates.size() - i);
    std::swap(candidates[i], candidates[j]);
  }
  if (candidates.size() > options_.exchangeLength) {
    candidates.resize(options_.exchangeLength);
  }
  candidates.push_back(self_);
  return candidates;
}

std::optional<Basalt::ExchangeRequest> Basalt::onExchangeTimer() {
  exchanges_++;
  if (exchanges_ % options_.rotationInterval == 0) {
    // Round-robin freshness: retire one slot's lottery per due interval.
    renewSlot(slots_[rotationCursor_]);
    rotationCursor_ = (rotationCursor_ + 1) % slots_.size();
    stats_.seedRotations++;
    // Refill the renewed slot from the peers we already know so the view
    // never shrinks just because time passed.
    for (const ProcessId id : distinctPeers()) updateSample(id);
  }
  const std::vector<ProcessId> peers = distinctPeers();
  if (peers.empty()) return std::nullopt;
  stats_.exchangesStarted++;
  ExchangeRequest request;
  request.target = peers[rng_.below(peers.size())];
  request.candidates = buildCandidates();
  return request;
}

std::vector<ProcessId> Basalt::onExchangeRequest(
    ProcessId from, const std::vector<ProcessId>& candidates) {
  stats_.exchangesAnswered++;
  std::vector<ProcessId> reply = buildCandidates();
  // Rank the sender and at most exchangeLength+1 offered candidates; a
  // flooder gains nothing from oversized lists.
  updateSample(from);
  const std::size_t limit =
      std::min(candidates.size(), options_.exchangeLength + 1);
  for (std::size_t i = 0; i < limit; ++i) updateSample(candidates[i]);
  return reply;
}

void Basalt::onExchangeReply(const std::vector<ProcessId>& candidates) {
  stats_.repliesIntegrated++;
  const std::size_t limit =
      std::min(candidates.size(), options_.exchangeLength + 1);
  for (std::size_t i = 0; i < limit; ++i) updateSample(candidates[i]);
}

std::vector<ProcessId> Basalt::samplePeers(std::size_t k) {
  std::vector<ProcessId> pool = distinctPeers();
  for (std::size_t i = 0; i + 1 < pool.size(); ++i) {
    const std::size_t j = i + rng_.below(pool.size() - i);
    std::swap(pool[i], pool[j]);
  }
  if (pool.size() > k) pool.resize(k);
  return pool;
}

std::vector<ProcessId> Basalt::view() const { return distinctPeers(); }

}  // namespace epto::pss

#include "pss/cyclon.h"

#include <algorithm>

#include "util/ensure.h"

namespace epto::pss {

Cyclon::Cyclon(ProcessId self, Options options, util::Rng rng)
    : self_(self), options_(options), rng_(rng) {
  EPTO_ENSURE_MSG(options_.viewSize >= 1, "Cyclon view size must be positive");
  EPTO_ENSURE_MSG(options_.shuffleLength >= 1 && options_.shuffleLength <= options_.viewSize,
                  "shuffle length must be in [1, viewSize]");
  cache_.reserve(options_.viewSize);
}

bool Cyclon::contains(ProcessId id) const {
  return std::any_of(cache_.begin(), cache_.end(),
                     [&](const CyclonEntry& e) { return e.id == id; });
}

void Cyclon::removeEntry(ProcessId id) {
  std::erase_if(cache_, [&](const CyclonEntry& e) { return e.id == id; });
}

void Cyclon::bootstrap(std::span<const ProcessId> seeds) {
  for (const ProcessId seed : seeds) {
    if (cache_.size() >= options_.viewSize) break;
    if (seed == self_ || contains(seed)) continue;
    cache_.push_back(CyclonEntry{seed, 0});
  }
}

std::optional<Cyclon::ShuffleRequest> Cyclon::onShuffleTimer() {
  if (cache_.empty()) return std::nullopt;
  ++stats_.shufflesStarted;

  // Step 1: age the whole cache.
  for (CyclonEntry& e : cache_) ++e.age;

  // Step 2: the exchange partner is the oldest neighbor.
  const auto oldest = std::max_element(
      cache_.begin(), cache_.end(),
      [](const CyclonEntry& a, const CyclonEntry& b) { return a.age < b.age; });
  const ProcessId target = oldest->id;

  // Step 3-4: random subset of l-1 other entries, plus (self, 0). The
  // partner's own entry is removed — it is replaced by what the reply
  // teaches us, and a failed partner must not linger in the cache.
  cache_.erase(oldest);
  CyclonView outgoing;
  outgoing.push_back(CyclonEntry{self_, 0});
  // Partial Fisher-Yates to draw l-1 distinct entries.
  const std::size_t want = std::min(options_.shuffleLength - 1, cache_.size());
  for (std::size_t i = 0; i < want; ++i) {
    const std::size_t j = i + rng_.below(cache_.size() - i);
    std::swap(cache_[i], cache_[j]);
    outgoing.push_back(cache_[i]);
  }

  pending_ = ShuffleRequest{target, outgoing};
  return pending_;
}

CyclonView Cyclon::onShuffleRequest(ProcessId from, const CyclonView& received) {
  ++stats_.shufflesAnswered;

  // Reply with a random subset of at most l entries (self never included;
  // the requester knows about us already).
  CyclonView reply;
  const std::size_t want = std::min(options_.shuffleLength, cache_.size());
  for (std::size_t i = 0; i < want; ++i) {
    const std::size_t j = i + rng_.below(cache_.size() - i);
    std::swap(cache_[i], cache_[j]);
    reply.push_back(cache_[i]);
  }

  // The requester identified itself in the received view with age 0; the
  // entries we shipped in `reply` are the replacement candidates.
  merge(sanitize(received, std::nullopt), reply);
  (void)from;
  return reply;
}

void Cyclon::onShuffleReply(const CyclonView& received) {
  if (!pending_.has_value()) {
    // Late reply to an abandoned shuffle: integrate entries into free
    // slots only (sent-set is unknown by now).
    merge(sanitize(received, std::nullopt), CyclonView{});
    return;
  }
  ++stats_.repliesIntegrated;
  const ProcessId partner = pending_->target;
  const CyclonView sent = std::move(pending_->entries);
  pending_.reset();
  merge(sanitize(received, partner), sent);
}

CyclonView Cyclon::sanitize(const CyclonView& received,
                            std::optional<ProcessId> evicted) {
  CyclonView out;
  out.reserve(std::min(received.size(), options_.shuffleLength));
  for (const CyclonEntry& entry : received) {
    if (out.size() >= options_.shuffleLength ||
        (evicted.has_value() && entry.id == *evicted)) {
      ++stats_.hostileEntriesDropped;
      continue;
    }
    out.push_back(entry);
  }
  return out;
}

void Cyclon::merge(const CyclonView& received, const CyclonView& sent) {
  // Replacement candidates: positions of entries we shipped out (they are
  // redundant — the other side knows them now).
  for (const CyclonEntry& incoming : received) {
    if (incoming.id == self_ || contains(incoming.id)) continue;

    if (cache_.size() < options_.viewSize) {
      cache_.push_back(incoming);
      ++stats_.entriesLearned;
      continue;
    }
    // Cache full: overwrite one of the entries that was in `sent` and is
    // still present; otherwise drop the incoming entry (standard Cyclon).
    bool placed = false;
    for (const CyclonEntry& candidate : sent) {
      const auto slot = std::find_if(cache_.begin(), cache_.end(), [&](const CyclonEntry& e) {
        return e.id == candidate.id;
      });
      if (slot != cache_.end()) {
        *slot = incoming;
        placed = true;
        ++stats_.entriesLearned;
        break;
      }
    }
    if (!placed) continue;
  }
}

std::vector<ProcessId> Cyclon::samplePeers(std::size_t k) {
  std::vector<ProcessId> out;
  const std::size_t want = std::min(k, cache_.size());
  out.reserve(want);
  for (std::size_t i = 0; i < want; ++i) {
    const std::size_t j = i + rng_.below(cache_.size() - i);
    std::swap(cache_[i], cache_[j]);
    out.push_back(cache_[i].id);
  }
  return out;
}

}  // namespace epto::pss

// Idealized peer-sampling service.
//
// The paper's base assumption (§2) is a PSS that returns a uniform random
// sample of correct processes. In simulation this is realized by sampling
// the membership directory directly — the "oracle" view. Figure 9 replaces
// this oracle with the real Cyclon protocol (pss/cyclon.h) to measure the
// cost of an imperfect view.
#pragma once

#include "core/types.h"
#include "sim/membership.h"
#include "util/rng.h"

namespace epto::pss {

class UniformSampler final : public PeerSampler {
 public:
  /// The directory must outlive the sampler.
  UniformSampler(ProcessId self, const sim::MembershipDirectory& membership, util::Rng rng)
      : self_(self), membership_(membership), rng_(rng) {}

  [[nodiscard]] std::vector<ProcessId> samplePeers(std::size_t k) override {
    return membership_.sampleOthers(self_, k, rng_);
  }

 private:
  ProcessId self_;
  const sim::MembershipDirectory& membership_;
  util::Rng rng_;
};

}  // namespace epto::pss

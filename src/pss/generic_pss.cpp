#include "pss/generic_pss.h"

#include <algorithm>

#include "util/ensure.h"

namespace epto::pss {

GenericPss::GenericPss(ProcessId self, Options options, util::Rng rng)
    : self_(self), options_(options), rng_(rng) {
  EPTO_ENSURE_MSG(options_.viewSize >= 1, "view size must be positive");
  EPTO_ENSURE_MSG(options_.gossipLength >= 1 && options_.gossipLength <= options_.viewSize,
                  "gossip length must be in [1, viewSize]");
  // The framework requires H, S <= gossipLength / 2.
  options_.healing = std::min(options_.healing, options_.gossipLength / 2);
  options_.swap = std::min(options_.swap, options_.gossipLength / 2);
  view_.reserve(options_.viewSize);
}

bool GenericPss::contains(ProcessId id) const {
  return std::any_of(view_.begin(), view_.end(),
                     [&](const Descriptor& d) { return d.id == id; });
}

void GenericPss::bootstrap(std::span<const ProcessId> seeds) {
  for (const ProcessId seed : seeds) {
    if (view_.size() >= options_.viewSize) break;
    if (seed == self_ || contains(seed)) continue;
    view_.push_back(Descriptor{seed, 0});
  }
}

DescriptorView GenericPss::buildBuffer() {
  // Framework: buffer <- ((self, 0)); shuffle the view; move the H
  // oldest to the end (so they are least likely to be shipped); append
  // the first gossipLength - 1 entries.
  DescriptorView buffer;
  buffer.push_back(Descriptor{self_, 0});

  DescriptorView shuffled = view_;
  for (std::size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rng_.below(i)]);
  }
  if (options_.healing > 0 && shuffled.size() > options_.healing) {
    std::partial_sort(shuffled.begin(),
                      shuffled.begin() + static_cast<std::ptrdiff_t>(shuffled.size() -
                                                                     options_.healing),
                      shuffled.end(),
                      [](const Descriptor& a, const Descriptor& b) { return a.age < b.age; });
  }
  const std::size_t want = std::min(options_.gossipLength - 1, shuffled.size());
  buffer.insert(buffer.end(), shuffled.begin(),
                shuffled.begin() + static_cast<std::ptrdiff_t>(want));
  return buffer;
}

std::optional<GenericPss::GossipMessage> GenericPss::onGossipTimer() {
  if (view_.empty()) return std::nullopt;
  ++stats_.cyclesStarted;

  // Peer selection.
  std::size_t peerIndex = 0;
  if (options_.peerSelection == PeerSelection::Random) {
    peerIndex = rng_.below(view_.size());
  } else {
    peerIndex = static_cast<std::size_t>(
        std::max_element(view_.begin(), view_.end(),
                         [](const Descriptor& a, const Descriptor& b) {
                           return a.age < b.age;
                         }) -
        view_.begin());
  }
  const ProcessId target = view_[peerIndex].id;

  GossipMessage message;
  message.target = target;
  message.buffer = buildBuffer();
  pendingSent_ = message.buffer;

  // Age the whole view at the end of the cycle.
  for (Descriptor& d : view_) ++d.age;
  return message;
}

std::optional<DescriptorView> GenericPss::onGossip(ProcessId /*from*/,
                                                   const DescriptorView& buffer) {
  ++stats_.gossipsAnswered;
  std::optional<DescriptorView> reply;
  if (options_.pull) reply = buildBuffer();
  select(buffer, reply.has_value() ? *reply : DescriptorView{});
  return reply;
}

void GenericPss::onGossipReply(const DescriptorView& buffer) {
  ++stats_.repliesIntegrated;
  select(buffer, pendingSent_);
  pendingSent_.clear();
}

void GenericPss::select(const DescriptorView& received, const DescriptorView& sent) {
  // Framework view selection:
  //   view <- view ++ received, deduplicated keeping the youngest copy;
  //   remove min(H, size - c) oldest;
  //   remove min(S, size - c) of the entries just sent;
  //   remove random entries until |view| == c.
  // An honest buffer holds at most gossipLength entries; the surplus of
  // an oversized (hostile) buffer is dropped unread.
  std::size_t budget = options_.gossipLength;
  for (const Descriptor& incoming : received) {
    if (budget == 0) {
      ++stats_.hostileEntriesDropped;
      continue;
    }
    --budget;
    if (incoming.id == self_) continue;
    const auto it = std::find_if(view_.begin(), view_.end(), [&](const Descriptor& d) {
      return d.id == incoming.id;
    });
    if (it == view_.end()) {
      view_.push_back(incoming);
    } else if (incoming.age < it->age) {
      it->age = incoming.age;
    }
  }

  const std::size_t c = options_.viewSize;
  // Healer: drop the oldest surplus entries.
  if (view_.size() > c) {
    const std::size_t toDrop = std::min(options_.healing, view_.size() - c);
    if (toDrop > 0) {
      std::partial_sort(view_.begin(), view_.begin() + static_cast<std::ptrdiff_t>(toDrop),
                        view_.end(), [](const Descriptor& a, const Descriptor& b) {
                          return a.age > b.age;
                        });
      view_.erase(view_.begin(), view_.begin() + static_cast<std::ptrdiff_t>(toDrop));
    }
  }
  // Swapper: drop entries that were just shipped (the other side knows
  // them now).
  if (view_.size() > c) {
    std::size_t toDrop = std::min(options_.swap, view_.size() - c);
    for (const Descriptor& shipped : sent) {
      if (toDrop == 0) break;
      if (shipped.id == self_) continue;
      const auto it = std::find_if(view_.begin(), view_.end(), [&](const Descriptor& d) {
        return d.id == shipped.id;
      });
      if (it != view_.end()) {
        view_.erase(it);
        --toDrop;
      }
    }
  }
  // Random truncation to c.
  while (view_.size() > c) {
    view_.erase(view_.begin() + static_cast<std::ptrdiff_t>(rng_.below(view_.size())));
  }
}

std::vector<ProcessId> GenericPss::samplePeers(std::size_t k) {
  std::vector<ProcessId> out;
  const std::size_t want = std::min(k, view_.size());
  out.reserve(want);
  for (std::size_t i = 0; i < want; ++i) {
    const std::size_t j = i + rng_.below(view_.size() - i);
    std::swap(view_[i], view_[j]);
    out.push_back(view_[i].id);
  }
  return out;
}

}  // namespace epto::pss

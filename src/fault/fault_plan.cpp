#include "fault/fault_plan.h"

#include <algorithm>

#include "util/ensure.h"

namespace epto::fault {

const char* faultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::Crash: return "crash";
    case FaultKind::Stall: return "stall";
    case FaultKind::Partition: return "partition";
    case FaultKind::BurstLoss: return "burst_loss";
    case FaultKind::DelaySpike: return "delay_spike";
  }
  return "unknown";
}

bool FaultSpec::involves(ProcessId node) const noexcept {
  return std::find(nodes.begin(), nodes.end(), node) != nodes.end();
}

bool FaultSpec::matchesLink(ProcessId from, ProcessId to) const noexcept {
  switch (kind) {
    case FaultKind::Partition:
      // Cut iff the endpoints sit on different sides of the split.
      return involves(from) != involves(to);
    case FaultKind::BurstLoss:
    case FaultKind::DelaySpike:
      return nodes.empty() || involves(from) || involves(to);
    case FaultKind::Crash:
    case FaultKind::Stall:
      return false;  // node faults, not link faults
  }
  return false;
}

void FaultPlan::push(FaultSpec spec) {
  EPTO_ENSURE_MSG(spec.until == kNever || spec.until > spec.at,
                  "fault window must end after it starts");
  EPTO_ENSURE_MSG(spec.until != kNever || spec.kind == FaultKind::Crash,
                  "only crashes may last forever");
  specs_.push_back(std::move(spec));
}

FaultPlan& FaultPlan::crash(Timestamp at, ProcessId node, Timestamp restartAt) {
  FaultSpec spec;
  spec.kind = FaultKind::Crash;
  spec.at = at;
  spec.until = restartAt;
  spec.nodes = {node};
  push(std::move(spec));
  return *this;
}

FaultPlan& FaultPlan::stall(Timestamp at, Timestamp until, ProcessId node) {
  FaultSpec spec;
  spec.kind = FaultKind::Stall;
  spec.at = at;
  spec.until = until;
  spec.nodes = {node};
  push(std::move(spec));
  return *this;
}

FaultPlan& FaultPlan::partition(Timestamp at, Timestamp until,
                                std::vector<ProcessId> island) {
  EPTO_ENSURE_MSG(!island.empty(), "a partition needs a non-empty island");
  FaultSpec spec;
  spec.kind = FaultKind::Partition;
  spec.at = at;
  spec.until = until;
  spec.nodes = std::move(island);
  push(std::move(spec));
  return *this;
}

FaultPlan& FaultPlan::burstLoss(Timestamp at, Timestamp until, double lossRate,
                                std::vector<ProcessId> nodes) {
  EPTO_ENSURE_MSG(lossRate >= 0.0 && lossRate < 1.0,
                  "burst loss rate must be in [0, 1)");
  FaultSpec spec;
  spec.kind = FaultKind::BurstLoss;
  spec.at = at;
  spec.until = until;
  spec.nodes = std::move(nodes);
  spec.lossRate = lossRate;
  push(std::move(spec));
  return *this;
}

FaultPlan& FaultPlan::delaySpike(Timestamp at, Timestamp until, Timestamp extraDelay,
                                 std::vector<ProcessId> nodes) {
  EPTO_ENSURE_MSG(extraDelay > 0, "a delay spike needs a positive extra delay");
  FaultSpec spec;
  spec.kind = FaultKind::DelaySpike;
  spec.at = at;
  spec.until = until;
  spec.nodes = std::move(nodes);
  spec.extraDelay = extraDelay;
  push(std::move(spec));
  return *this;
}

Timestamp FaultPlan::horizon() const noexcept {
  Timestamp horizon = 0;
  for (const FaultSpec& spec : specs_) {
    horizon = std::max(horizon, std::max(spec.at, spec.until));
  }
  return horizon;
}

ProcessId FaultPlan::maxNode() const noexcept {
  ProcessId max = 0;
  for (const FaultSpec& spec : specs_) {
    for (const ProcessId node : spec.nodes) max = std::max(max, node);
  }
  return max;
}

std::string FaultPlan::signature() const {
  std::string out;
  for (const FaultSpec& spec : specs_) {
    out += faultKindName(spec.kind);
    out += " at=" + std::to_string(spec.at);
    out += " until=" + std::to_string(spec.until);
    out += " nodes=[";
    for (std::size_t i = 0; i < spec.nodes.size(); ++i) {
      if (i != 0) out += ',';
      out += std::to_string(spec.nodes[i]);
    }
    out += ']';
    if (spec.kind == FaultKind::BurstLoss) {
      out += " loss=" + std::to_string(spec.lossRate);
    }
    if (spec.kind == FaultKind::DelaySpike) {
      out += " delay=" + std::to_string(spec.extraDelay);
    }
    out += '\n';
  }
  return out;
}

FaultPlan FaultPlan::randomMix(std::uint64_t seed, const RandomMixOptions& options) {
  EPTO_ENSURE_MSG(options.nodeCount >= 2, "randomMix needs at least two nodes");
  EPTO_ENSURE_MSG(options.horizon > options.start, "horizon must exceed start");
  EPTO_ENSURE_MSG(options.minDuration >= 1 && options.maxDuration >= options.minDuration,
                  "duration bounds must satisfy 1 <= min <= max");

  util::Rng rng(seed);
  FaultPlan plan;
  const auto onset = [&]() {
    return options.start + rng.below(options.horizon - options.start);
  };
  const auto duration = [&]() {
    return options.minDuration +
           rng.below(options.maxDuration - options.minDuration + 1);
  };
  const auto victim = [&]() {
    return static_cast<ProcessId>(rng.below(options.nodeCount));
  };

  for (std::size_t i = 0; i < options.crashes; ++i) {
    const Timestamp at = onset();
    plan.crash(at, victim(), at + duration());
  }
  for (std::size_t i = 0; i < options.stalls; ++i) {
    const Timestamp at = onset();
    plan.stall(at, at + duration(), victim());
  }
  for (std::size_t i = 0; i < options.partitions; ++i) {
    const Timestamp at = onset();
    // Island of 1..nodeCount-1 distinct nodes, drawn without replacement.
    std::vector<ProcessId> all(options.nodeCount);
    for (std::size_t n = 0; n < options.nodeCount; ++n) {
      all[n] = static_cast<ProcessId>(n);
    }
    const std::size_t islandSize = 1 + rng.below(options.nodeCount - 1);
    for (std::size_t n = 0; n < islandSize; ++n) {
      std::swap(all[n], all[n + rng.below(all.size() - n)]);
    }
    all.resize(islandSize);
    plan.partition(at, at + duration(), std::move(all));
  }
  for (std::size_t i = 0; i < options.bursts; ++i) {
    const Timestamp at = onset();
    plan.burstLoss(at, at + duration(), options.burstLossRate);
  }
  for (std::size_t i = 0; i < options.delaySpikes; ++i) {
    const Timestamp at = onset();
    plan.delaySpike(at, at + duration(), options.spikeDelay);
  }
  return plan;
}

}  // namespace epto::fault

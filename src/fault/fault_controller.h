// FaultController — the shared interpreter of a FaultPlan.
//
// State is a pure function of (plan, now): the controller is immutable
// after construction apart from relaxed atomic statistics, so node
// threads, transports and the discrete simulator can all query it
// concurrently without coordination, and a run remains deterministic.
//
// Division of labour: the controller answers "is this node down/stalled
// at `now`?" and "what happens to a message on this link at `now`?";
// the host (SimCluster, RuntimeCluster, UdpCluster) enforces the answer
// — tearing node loops down, skipping rounds, dropping or delaying
// messages — and reports what it did through the note*() hooks, which
// feed the fault statistics, the obs metrics registry and the protocol
// tracer.
#pragma once

#include <atomic>
#include <cstdint>

#include "core/types.h"
#include "fault/fault_plan.h"
#include "obs/registry.h"

namespace epto::fault {

/// What happened, cumulatively, across the injected faultscape.
struct FaultStats {
  std::uint64_t crashes = 0;         ///< crash windows entered.
  std::uint64_t restarts = 0;        ///< nodes that rejoined after a crash.
  std::uint64_t stalls = 0;          ///< stall windows entered.
  std::uint64_t crashDrops = 0;      ///< messages dropped: endpoint was down.
  std::uint64_t partitionDrops = 0;  ///< messages dropped: link cut by a split.
  std::uint64_t burstDrops = 0;      ///< messages dropped: burst-loss trial.
  std::uint64_t fragmentDrops = 0;   ///< fragments dropped: per-fragment burst trial.
  std::uint64_t delayedMessages = 0; ///< messages stretched by a delay spike.
};

class FaultController {
 public:
  explicit FaultController(FaultPlan plan) : plan_(std::move(plan)) {}

  FaultController(const FaultController&) = delete;
  FaultController& operator=(const FaultController&) = delete;

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

  /// Node state at `now`. A node inside any Crash window is down; inside
  /// any Stall window (and not down) it executes no rounds.
  [[nodiscard]] bool isCrashed(ProcessId node, Timestamp now) const noexcept;
  [[nodiscard]] bool isStalled(ProcessId node, Timestamp now) const noexcept;

  /// Fate of a message sent from -> to at `now`. Crashed endpoints and
  /// active partitions cut the link outright; burst-loss windows add an
  /// independent loss probability (compounded across overlapping bursts);
  /// delay spikes add up.
  struct LinkFate {
    bool cut = false;
    FaultKind cutBy = FaultKind::Partition;  ///< valid when cut.
    double extraLossRate = 0.0;
    Timestamp extraDelay = 0;
  };
  [[nodiscard]] LinkFate linkFate(ProcessId from, ProcessId to,
                                  Timestamp now) const noexcept;

  // --- enforcement hooks (thread-safe; also emit Fault trace events) ----
  void noteCrash(ProcessId node, Timestamp now) noexcept;
  void noteRestart(ProcessId node, Timestamp now) noexcept;
  void noteStall(ProcessId node, Timestamp now) noexcept;
  void noteLinkDrop(ProcessId from, ProcessId to, Timestamp now,
                    FaultKind cause) noexcept;
  /// A burst-loss trial applied at *fragment* granularity (datagram
  /// transports fragment large balls; each fragment rolls the link's
  /// loss rate independently, so one lost fragment kills one ball copy
  /// without touching its siblings).
  void noteFragmentDrop(ProcessId from, ProcessId to, Timestamp now) noexcept;
  void noteDelayed(ProcessId from, ProcessId to, Timestamp now) noexcept;

  [[nodiscard]] FaultStats stats() const noexcept;

  /// Publish the counters as epto_fault_* instruments.
  void recordTo(obs::Registry& registry) const;

 private:
  // Concurrency contract (DESIGN.md §12): deliberately capability-free.
  // plan_ is immutable after construction (every query is const over
  // const data) and the statistics are relaxed atomics, so queries and
  // note*() hooks are safe from any thread without a lock — which is the
  // point: fault checks sit on round/send hot paths of every substrate.
  FaultPlan plan_;
  std::atomic<std::uint64_t> crashes_{0};
  std::atomic<std::uint64_t> restarts_{0};
  std::atomic<std::uint64_t> stalls_{0};
  std::atomic<std::uint64_t> crashDrops_{0};
  std::atomic<std::uint64_t> partitionDrops_{0};
  std::atomic<std::uint64_t> burstDrops_{0};
  std::atomic<std::uint64_t> fragmentDrops_{0};
  std::atomic<std::uint64_t> delayedMessages_{0};
};

}  // namespace epto::fault

// Deterministic fault schedules — the "faultscape" the paper's evaluation
// stresses (§5.4 churn, Fig. 10 loss) generalized into one declarative
// format shared by the simulator and both real runtimes.
//
// A FaultPlan is a list of timed FaultSpecs: node crashes (with optional
// restart), process stalls (the GC-pause scenario the logical clock is
// designed to survive, §5.3/§8.2), network partitions with a scheduled
// heal, and burst loss / delay spikes on selected links. Times are in the
// host's tick domain — simulator ticks for the sim, microseconds since
// cluster epoch for the threaded/UDP runtimes — so the same plan shape
// drives every deployment.
//
// Determinism: a plan is a value; building the same plan (or calling
// randomMix with the same seed and envelope) always yields the identical
// schedule, checkable via signature(). Interpretation is left to
// FaultController (fault_controller.h).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.h"
#include "util/rng.h"

namespace epto::fault {

/// Sentinel for a crash that never restarts ("until" of a Crash spec).
inline constexpr Timestamp kNever = 0;

enum class FaultKind : std::uint8_t {
  Crash,       ///< node torn down at [at, until); until == kNever: forever.
  Stall,       ///< node executes no rounds during [at, until); traffic buffers.
  Partition,   ///< links between `nodes` and the rest cut during [at, until).
  BurstLoss,   ///< extra per-message loss on matching links during [at, until).
  DelaySpike,  ///< extra one-way delay on matching links during [at, until).
};

[[nodiscard]] const char* faultKindName(FaultKind kind);

/// One scheduled fault. Which fields matter depends on `kind`:
///   Crash/Stall   — `nodes` are the victims;
///   Partition     — `nodes` are one island, cut off from everyone else;
///   BurstLoss     — `lossRate` applies to links touching `nodes`
///                   (empty = every link);
///   DelaySpike    — `extraDelay` likewise.
struct FaultSpec {
  FaultKind kind = FaultKind::Crash;
  Timestamp at = 0;
  Timestamp until = 0;  ///< exclusive end; kNever only valid for Crash.
  std::vector<ProcessId> nodes;
  double lossRate = 0.0;
  Timestamp extraDelay = 0;

  /// Whether the fault window covers `now`.
  [[nodiscard]] bool activeAt(Timestamp now) const noexcept {
    return now >= at && (until == kNever || now < until);
  }
  [[nodiscard]] bool involves(ProcessId node) const noexcept;
  /// Link faults: does this spec apply to a message from -> to?
  [[nodiscard]] bool matchesLink(ProcessId from, ProcessId to) const noexcept;
};

class FaultPlan {
 public:
  /// Node `node` is torn down at `at`; with `restartAt` != kNever it
  /// rejoins at that time with completely fresh state.
  FaultPlan& crash(Timestamp at, ProcessId node, Timestamp restartAt = kNever);

  /// Node `node` stops executing rounds during [at, until) — a stalled
  /// scheduler / GC pause. Incoming traffic keeps buffering.
  FaultPlan& stall(Timestamp at, Timestamp until, ProcessId node);

  /// Links between `island` and every other process are cut during
  /// [at, until); the heal at `until` is part of the schedule.
  FaultPlan& partition(Timestamp at, Timestamp until, std::vector<ProcessId> island);

  /// Extra independent per-message loss on links touching `nodes`
  /// (empty = all links) during [at, until). Compounds with the
  /// transport's base loss rate.
  FaultPlan& burstLoss(Timestamp at, Timestamp until, double lossRate,
                       std::vector<ProcessId> nodes = {});

  /// Extra one-way delay on links touching `nodes` (empty = all links)
  /// during [at, until).
  FaultPlan& delaySpike(Timestamp at, Timestamp until, Timestamp extraDelay,
                        std::vector<ProcessId> nodes = {});

  [[nodiscard]] const std::vector<FaultSpec>& specs() const noexcept { return specs_; }
  [[nodiscard]] bool empty() const noexcept { return specs_.empty(); }
  /// Largest schedule time referenced (start or end of any window).
  [[nodiscard]] Timestamp horizon() const noexcept;
  /// Largest node id referenced (0 when the plan names no node).
  [[nodiscard]] ProcessId maxNode() const noexcept;

  /// Canonical textual form of the schedule, one spec per line. Two plans
  /// with equal signatures inject identical fault schedules — the
  /// determinism acceptance check.
  [[nodiscard]] std::string signature() const;

  /// Envelope for the seeded scenario generator.
  struct RandomMixOptions {
    std::size_t nodeCount = 8;    ///< victims drawn from [0, nodeCount).
    Timestamp start = 0;          ///< earliest fault onset.
    Timestamp horizon = 1;        ///< latest window end (> start).
    Timestamp minDuration = 1;    ///< per-window length bounds.
    Timestamp maxDuration = 1;
    std::size_t crashes = 0;      ///< crash+restart pairs.
    std::size_t stalls = 0;
    std::size_t partitions = 0;
    std::size_t bursts = 0;
    std::size_t delaySpikes = 0;
    double burstLossRate = 0.5;
    Timestamp spikeDelay = 1;
  };

  /// Deterministic scenario generator: the same (seed, options) pair
  /// always produces the identical plan (same signature()).
  [[nodiscard]] static FaultPlan randomMix(std::uint64_t seed,
                                           const RandomMixOptions& options);

 private:
  void push(FaultSpec spec);

  std::vector<FaultSpec> specs_;
};

}  // namespace epto::fault

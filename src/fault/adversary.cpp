#include "fault/adversary.h"

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "util/ensure.h"
#include "util/rng.h"

namespace epto::fault {

AdversaryPlan& AdversaryPlan::fraction(double f) {
  EPTO_ENSURE_MSG(f >= 0.0 && f < 0.5,
                  "Byzantine fraction must be in [0, 0.5) — a Byzantine "
                  "majority defeats any sampler");
  fraction_ = f;
  return *this;
}

AdversaryPlan& AdversaryPlan::members(std::vector<ProcessId> ids) {
  members_ = std::move(ids);
  return *this;
}

AdversaryPlan& AdversaryPlan::behaviors(AdversaryBehaviors b) {
  behaviors_ = b;
  return *this;
}

AdversaryPlan& AdversaryPlan::seed(std::uint64_t s) {
  seed_ = s;
  return *this;
}

AdversaryPlan& AdversaryPlan::floodBallsPerRound(std::size_t n) {
  floodBallsPerRound_ = n;
  return *this;
}

AdversaryPlan& AdversaryPlan::floodEventsPerBall(std::size_t n) {
  EPTO_ENSURE_MSG(n >= 1, "a flood ball carries at least one event");
  floodEventsPerBall_ = n;
  return *this;
}

AdversaryPlan& AdversaryPlan::pssPushesPerRound(std::size_t n) {
  pssPushesPerRound_ = n;
  return *this;
}

AdversaryPlan& AdversaryPlan::equivocationFanout(std::size_t n) {
  EPTO_ENSURE_MSG(n >= 2, "equivocation needs at least two recipients");
  equivocationFanout_ = n;
  return *this;
}

AdversaryPlan& AdversaryPlan::replayAfterRounds(std::uint64_t n) {
  replayAfterRounds_ = n;
  return *this;
}

std::vector<ProcessId> AdversaryPlan::resolveMembers(std::size_t systemSize) const {
  EPTO_ENSURE_MSG(systemSize >= 2, "need at least two processes");
  const auto drawn =
      static_cast<std::size_t>(fraction_ * static_cast<double>(systemSize));
  std::vector<ProcessId> pool(systemSize);
  std::iota(pool.begin(), pool.end(), ProcessId{0});
  util::Rng rng(seed_);
  // Partial Fisher-Yates: the first `drawn` slots are the members.
  for (std::size_t i = 0; i < drawn; ++i) {
    const std::size_t j = i + rng.below(pool.size() - i);
    std::swap(pool[i], pool[j]);
  }
  std::vector<ProcessId> out(pool.begin(),
                             pool.begin() + static_cast<std::ptrdiff_t>(drawn));
  for (const ProcessId id : members_) {
    EPTO_ENSURE_MSG(static_cast<std::size_t>(id) < systemSize,
                    "explicit Byzantine member outside the initial membership");
    out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  EPTO_ENSURE_MSG(out.size() + 2 <= systemSize,
                  "adversary plan leaves fewer than two honest processes");
  return out;
}

std::string AdversaryPlan::signature() const {
  std::string sig = "adversary f=";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6f", fraction_);
  sig += buf;
  sig += " seed=" + std::to_string(seed_);
  sig += " behaviors=";
  sig += behaviors_.poisonPss ? 'P' : '-';
  sig += behaviors_.equivocate ? 'E' : '-';
  sig += behaviors_.forgeLineage ? 'L' : '-';
  sig += behaviors_.replayStale ? 'R' : '-';
  sig += behaviors_.flood ? 'F' : '-';
  sig += " flood=" + std::to_string(floodBallsPerRound_) + "x" +
         std::to_string(floodEventsPerBall_);
  sig += " pssPushes=" + std::to_string(pssPushesPerRound_);
  sig += " equivFanout=" + std::to_string(equivocationFanout_);
  sig += " replayAfter=" + std::to_string(replayAfterRounds_);
  sig += " members=[";
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (i != 0) sig += ',';
    sig += std::to_string(members_[i]);
  }
  sig += ']';
  return sig;
}

AdversaryController::AdversaryController(AdversaryPlan plan, std::size_t systemSize)
    : plan_(std::move(plan)), members_(plan_.resolveMembers(systemSize)) {
  isByzantine_.assign(systemSize, 0);
  for (const ProcessId id : members_) isByzantine_[id] = 1;
}

void AdversaryController::noteFloodBall(std::size_t junkEvents) noexcept {
  floodBallsSent_.fetch_add(1, std::memory_order_relaxed);
  junkEventsSent_.fetch_add(junkEvents, std::memory_order_relaxed);
}

void AdversaryController::noteEquivocation() noexcept {
  equivocations_.fetch_add(1, std::memory_order_relaxed);
}

void AdversaryController::noteLineageForgery() noexcept {
  lineageForgeries_.fetch_add(1, std::memory_order_relaxed);
}

void AdversaryController::noteReplay() noexcept {
  ballsReplayed_.fetch_add(1, std::memory_order_relaxed);
}

void AdversaryController::notePssPoison(bool reply) noexcept {
  if (reply) {
    pssPoisonReplies_.fetch_add(1, std::memory_order_relaxed);
  } else {
    pssPoisonSent_.fetch_add(1, std::memory_order_relaxed);
  }
}

void AdversaryController::noteHonestBallSunk() noexcept {
  honestBallsSunk_.fetch_add(1, std::memory_order_relaxed);
}

AdversaryStats AdversaryController::stats() const noexcept {
  AdversaryStats out;
  out.floodBallsSent = floodBallsSent_.load(std::memory_order_relaxed);
  out.junkEventsSent = junkEventsSent_.load(std::memory_order_relaxed);
  out.equivocations = equivocations_.load(std::memory_order_relaxed);
  out.lineageForgeries = lineageForgeries_.load(std::memory_order_relaxed);
  out.ballsReplayed = ballsReplayed_.load(std::memory_order_relaxed);
  out.pssPoisonSent = pssPoisonSent_.load(std::memory_order_relaxed);
  out.pssPoisonReplies = pssPoisonReplies_.load(std::memory_order_relaxed);
  out.honestBallsSunk = honestBallsSunk_.load(std::memory_order_relaxed);
  return out;
}

void AdversaryController::recordTo(obs::Registry& registry) const {
  const AdversaryStats s = stats();
  registry.counter("epto_adversary_flood_balls_total").set(s.floodBallsSent);
  registry.counter("epto_adversary_junk_events_total").set(s.junkEventsSent);
  registry.counter("epto_adversary_equivocations_total").set(s.equivocations);
  registry.counter("epto_adversary_lineage_forgeries_total").set(s.lineageForgeries);
  registry.counter("epto_adversary_balls_replayed_total").set(s.ballsReplayed);
  registry.counter("epto_adversary_pss_poison_total", {{"kind", "push"}})
      .set(s.pssPoisonSent);
  registry.counter("epto_adversary_pss_poison_total", {{"kind", "reply"}})
      .set(s.pssPoisonReplies);
  registry.counter("epto_adversary_honest_balls_sunk_total").set(s.honestBallsSunk);
  registry.gauge("epto_adversary_members")
      .set(static_cast<std::int64_t>(members_.size()));
}

}  // namespace epto::fault

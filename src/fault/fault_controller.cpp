#include "fault/fault_controller.h"

#include "obs/trace.h"

namespace epto::fault {

bool FaultController::isCrashed(ProcessId node, Timestamp now) const noexcept {
  for (const FaultSpec& spec : plan_.specs()) {
    if (spec.kind == FaultKind::Crash && spec.activeAt(now) && spec.involves(node)) {
      return true;
    }
  }
  return false;
}

bool FaultController::isStalled(ProcessId node, Timestamp now) const noexcept {
  for (const FaultSpec& spec : plan_.specs()) {
    if (spec.kind == FaultKind::Stall && spec.activeAt(now) && spec.involves(node)) {
      return true;
    }
  }
  return false;
}

FaultController::LinkFate FaultController::linkFate(ProcessId from, ProcessId to,
                                                    Timestamp now) const noexcept {
  LinkFate fate;
  if (isCrashed(from, now) || isCrashed(to, now)) {
    fate.cut = true;
    fate.cutBy = FaultKind::Crash;
    return fate;
  }
  double passRate = 1.0;
  for (const FaultSpec& spec : plan_.specs()) {
    if (!spec.activeAt(now) || !spec.matchesLink(from, to)) continue;
    switch (spec.kind) {
      case FaultKind::Partition:
        fate.cut = true;
        fate.cutBy = FaultKind::Partition;
        return fate;
      case FaultKind::BurstLoss:
        passRate *= 1.0 - spec.lossRate;
        break;
      case FaultKind::DelaySpike:
        fate.extraDelay += spec.extraDelay;
        break;
      case FaultKind::Crash:
      case FaultKind::Stall:
        break;
    }
  }
  fate.extraLossRate = 1.0 - passRate;
  return fate;
}

namespace {

void traceFault(FaultKind kind, ProcessId node, std::uint64_t aux, Timestamp now) {
  EPTO_TRACE_EVENT(Fault, .node = node, .ts = now, .aux = aux,
                   .detail = static_cast<std::uint8_t>(kind));
  (void)kind; (void)node; (void)aux; (void)now;  // EPTO_TRACE=OFF builds
}

}  // namespace

void FaultController::noteCrash(ProcessId node, Timestamp now) noexcept {
  crashes_.fetch_add(1, std::memory_order_relaxed);
  traceFault(FaultKind::Crash, node, /*aux=*/0, now);
}

void FaultController::noteRestart(ProcessId node, Timestamp now) noexcept {
  restarts_.fetch_add(1, std::memory_order_relaxed);
  traceFault(FaultKind::Crash, node, /*aux=*/1, now);
}

void FaultController::noteStall(ProcessId node, Timestamp now) noexcept {
  stalls_.fetch_add(1, std::memory_order_relaxed);
  traceFault(FaultKind::Stall, node, /*aux=*/0, now);
}

void FaultController::noteLinkDrop(ProcessId from, ProcessId to, Timestamp now,
                                   FaultKind cause) noexcept {
  switch (cause) {
    case FaultKind::Crash: crashDrops_.fetch_add(1, std::memory_order_relaxed); break;
    case FaultKind::Partition:
      partitionDrops_.fetch_add(1, std::memory_order_relaxed);
      break;
    case FaultKind::BurstLoss:
      burstDrops_.fetch_add(1, std::memory_order_relaxed);
      break;
    case FaultKind::Stall:
    case FaultKind::DelaySpike:
      break;  // not drop causes
  }
  traceFault(cause, from, to, now);
}

void FaultController::noteFragmentDrop(ProcessId from, ProcessId to,
                                       Timestamp now) noexcept {
  fragmentDrops_.fetch_add(1, std::memory_order_relaxed);
  traceFault(FaultKind::BurstLoss, from, to, now);
}

void FaultController::noteDelayed(ProcessId from, ProcessId to, Timestamp now) noexcept {
  delayedMessages_.fetch_add(1, std::memory_order_relaxed);
  traceFault(FaultKind::DelaySpike, from, to, now);
}

FaultStats FaultController::stats() const noexcept {
  FaultStats stats;
  stats.crashes = crashes_.load(std::memory_order_relaxed);
  stats.restarts = restarts_.load(std::memory_order_relaxed);
  stats.stalls = stalls_.load(std::memory_order_relaxed);
  stats.crashDrops = crashDrops_.load(std::memory_order_relaxed);
  stats.partitionDrops = partitionDrops_.load(std::memory_order_relaxed);
  stats.burstDrops = burstDrops_.load(std::memory_order_relaxed);
  stats.fragmentDrops = fragmentDrops_.load(std::memory_order_relaxed);
  stats.delayedMessages = delayedMessages_.load(std::memory_order_relaxed);
  return stats;
}

void FaultController::recordTo(obs::Registry& registry) const {
  const FaultStats s = stats();
  registry.counter("epto_fault_crashes_total").set(s.crashes);
  registry.counter("epto_fault_restarts_total").set(s.restarts);
  registry.counter("epto_fault_stalls_total").set(s.stalls);
  registry.counter("epto_fault_crash_drops_total").set(s.crashDrops);
  registry.counter("epto_fault_partition_drops_total").set(s.partitionDrops);
  registry.counter("epto_fault_burst_drops_total").set(s.burstDrops);
  registry.counter("epto_fault_fragment_drops_total").set(s.fragmentDrops);
  registry.counter("epto_fault_delayed_messages_total").set(s.delayedMessages);
}

}  // namespace epto::fault

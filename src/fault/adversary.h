// Byzantine adversary model — the arbitrary-fault extension of the
// fault layer (fault_plan.h covers crash/omission; this file covers
// malice).
//
// The paper assumes a benign crash/omission model backed by a uniform
// PSS (§2/§3); EpTO's probabilistic agreement rests on the sampler's
// resistance to view poisoning. An AdversaryPlan declares which members
// of the initial membership are Byzantine and which attack behaviours
// they run; the AdversaryController resolves the member set
// deterministically and keeps relaxed-atomic statistics of what the
// attackers actually did. Enforcement follows the FaultController
// division of labour: the host (SimCluster, or a hostile-frame injector
// against the UDP runtime) performs the attacks and reports them through
// the note*() hooks.
//
// Attack surface (per BASALT, Auvolat et al., and Malkhi/Mansour/Reiter
// "On Diffusing Updates in a Byzantine Environment"):
//   * PSS view poisoning — flooding shuffle exchanges with Byzantine
//     ids at forged age 0, both actively (unsolicited requests) and
//     passively (poisoned replies);
//   * equivocation — the same EventId shipped with divergent
//     timestamps/payloads to different recipients;
//   * lineage forgery — hop/ttl/originRound fields inflated beyond any
//     honest emission;
//   * stale-ball replay — verbatim re-injection of recorded old balls;
//   * flooding — junk events at a rate no honest broadcaster reaches;
//   * omission — Byzantine members never relay honest events (pure sink).
//
// Out of scope (DESIGN.md §14): source spoofing (we assume authenticated
// point-to-point channels, so a Byzantine member can only equivocate
// events carrying its *own* id) and logical-clock poisoning (the
// adversary experiments run under the global clock mode).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "core/types.h"
#include "obs/registry.h"

namespace epto::fault {

/// Which attack behaviours the Byzantine members run. All on by default;
/// ablations toggle individual vectors off.
struct AdversaryBehaviors {
  bool poisonPss = true;     ///< flood shuffles/exchanges with Byzantine ids.
  bool equivocate = true;    ///< divergent ts/payload per recipient, same id.
  bool forgeLineage = true;  ///< hop > ttl, absurd ttl / originRound.
  bool replayStale = true;   ///< re-inject recorded old balls verbatim.
  bool flood = true;         ///< junk-event balls at attacker rate.
};

/// Declarative description of the Byzantine membership and its attack
/// intensity. A plan is a value: resolving the same plan against the
/// same system size always yields the identical member set
/// (checkable via signature()), so adversary runs stay deterministic.
class AdversaryPlan {
 public:
  /// Fraction f of the initial membership that is Byzantine (members
  /// drawn deterministically from the plan seed). In [0, 0.5).
  AdversaryPlan& fraction(double f);
  /// Explicit Byzantine members, unioned with the drawn fraction.
  AdversaryPlan& members(std::vector<ProcessId> ids);
  AdversaryPlan& behaviors(AdversaryBehaviors b);
  /// Seed for the deterministic member draw (independent of the
  /// experiment seed so the same attack hits different workloads).
  AdversaryPlan& seed(std::uint64_t s);

  // --- attack intensity knobs (per Byzantine member, per round) --------
  AdversaryPlan& floodBallsPerRound(std::size_t n);
  AdversaryPlan& floodEventsPerBall(std::size_t n);
  AdversaryPlan& pssPushesPerRound(std::size_t n);
  AdversaryPlan& equivocationFanout(std::size_t n);
  AdversaryPlan& replayAfterRounds(std::uint64_t n);

  [[nodiscard]] double fraction() const noexcept { return fraction_; }
  [[nodiscard]] const std::vector<ProcessId>& explicitMembers() const noexcept {
    return members_;
  }
  [[nodiscard]] const AdversaryBehaviors& behaviors() const noexcept {
    return behaviors_;
  }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] std::size_t floodBallsPerRound() const noexcept {
    return floodBallsPerRound_;
  }
  [[nodiscard]] std::size_t floodEventsPerBall() const noexcept {
    return floodEventsPerBall_;
  }
  [[nodiscard]] std::size_t pssPushesPerRound() const noexcept {
    return pssPushesPerRound_;
  }
  [[nodiscard]] std::size_t equivocationFanout() const noexcept {
    return equivocationFanout_;
  }
  [[nodiscard]] std::uint64_t replayAfterRounds() const noexcept {
    return replayAfterRounds_;
  }

  /// True when the plan describes no Byzantine member at all.
  [[nodiscard]] bool empty() const noexcept {
    return fraction_ <= 0.0 && members_.empty();
  }

  /// The Byzantine member set for a system of `systemSize` initial
  /// processes: floor(fraction * systemSize) ids drawn without
  /// replacement from [0, systemSize) via the plan seed, unioned with
  /// the explicit members. Sorted, deduplicated, deterministic.
  [[nodiscard]] std::vector<ProcessId> resolveMembers(std::size_t systemSize) const;

  /// Canonical textual form (behaviours, knobs, seed, fraction, explicit
  /// members). Equal signatures mean identical attacks — the determinism
  /// acceptance check, mirroring FaultPlan::signature().
  [[nodiscard]] std::string signature() const;

 private:
  double fraction_ = 0.0;
  std::vector<ProcessId> members_;
  AdversaryBehaviors behaviors_{};
  std::uint64_t seed_ = 7;
  std::size_t floodBallsPerRound_ = 4;
  std::size_t floodEventsPerBall_ = 8;
  std::size_t pssPushesPerRound_ = 2;
  std::size_t equivocationFanout_ = 6;
  std::uint64_t replayAfterRounds_ = 12;
};

/// What the attackers actually did, cumulatively.
struct AdversaryStats {
  std::uint64_t floodBallsSent = 0;     ///< junk balls emitted.
  std::uint64_t junkEventsSent = 0;     ///< junk events inside them.
  std::uint64_t equivocations = 0;      ///< equivocating id pairs emitted.
  std::uint64_t lineageForgeries = 0;   ///< balls with forged lineage sent.
  std::uint64_t ballsReplayed = 0;      ///< stale balls re-injected.
  std::uint64_t pssPoisonSent = 0;      ///< unsolicited poisoned exchanges.
  std::uint64_t pssPoisonReplies = 0;   ///< poisoned replies to honest shuffles.
  std::uint64_t honestBallsSunk = 0;    ///< honest balls received and never relayed.
};

/// Shared interpreter of an AdversaryPlan: answers "is this process
/// Byzantine?" in O(1) and aggregates attack statistics. Immutable after
/// construction apart from relaxed atomics, like FaultController.
class AdversaryController {
 public:
  AdversaryController(AdversaryPlan plan, std::size_t systemSize);

  AdversaryController(const AdversaryController&) = delete;
  AdversaryController& operator=(const AdversaryController&) = delete;

  [[nodiscard]] const AdversaryPlan& plan() const noexcept { return plan_; }
  /// The resolved Byzantine member set, sorted ascending.
  [[nodiscard]] const std::vector<ProcessId>& members() const noexcept {
    return members_;
  }
  [[nodiscard]] bool isByzantine(ProcessId id) const noexcept {
    return id < isByzantine_.size() && isByzantine_[id] != 0;
  }

  // --- enforcement hooks (thread-safe) ---------------------------------
  void noteFloodBall(std::size_t junkEvents) noexcept;
  void noteEquivocation() noexcept;
  void noteLineageForgery() noexcept;
  void noteReplay() noexcept;
  void notePssPoison(bool reply) noexcept;
  void noteHonestBallSunk() noexcept;

  [[nodiscard]] AdversaryStats stats() const noexcept;

  /// Publish the counters as epto_adversary_* instruments.
  void recordTo(obs::Registry& registry) const;

 private:
  AdversaryPlan plan_;
  std::vector<ProcessId> members_;
  std::vector<std::uint8_t> isByzantine_;  ///< indexed by ProcessId.
  std::atomic<std::uint64_t> floodBallsSent_{0};
  std::atomic<std::uint64_t> junkEventsSent_{0};
  std::atomic<std::uint64_t> equivocations_{0};
  std::atomic<std::uint64_t> lineageForgeries_{0};
  std::atomic<std::uint64_t> ballsReplayed_{0};
  std::atomic<std::uint64_t> pssPoisonSent_{0};
  std::atomic<std::uint64_t> pssPoisonReplies_{0};
  std::atomic<std::uint64_t> honestBallsSunk_{0};
};

}  // namespace epto::fault

#include "core/ordering.h"

#include <algorithm>

#include "core/speculation.h"
#include "obs/latency.h"
#include "obs/trace.h"
#include "util/ensure.h"

namespace epto {

OrderingComponent::OrderingComponent(Options options, const StabilityOracle& oracle,
                                     DeliverFn deliver)
    : options_(options), oracle_(oracle), deliver_(std::move(deliver)) {
  EPTO_ENSURE_MSG(deliver_ != nullptr, "ordering component needs a delivery callback");
}

void OrderingComponent::orderEvents(const Ball& ball) {
  // Alg. 2 lines 6-7: a new round started, every known event is one round
  // older. Epoch-based aging makes this free: advancing the round counter
  // advances every derived ttl at once (DESIGN.md §11).
  ++stats_.rounds;

  // Latency decomposition bookkeeping (DESIGN.md §13): one clock read
  // per round, remembered for the last kRoundClockWindow rounds so a
  // delivery can recover the clock at the round any recent event crossed
  // the stability horizon.
  currentRoundClock_ = oracle_.peekClock();
  roundClocks_[stats_.rounds % kRoundClockWindow] = currentRoundClock_;

  // Alg. 2 lines 8-14: absorb the ball into `received`.
  for (const Event& event : ball) {
    absorb(event);
  }
  stats_.maxReceivedSize = std::max(stats_.maxReceivedSize, received_.size());

  // Alg. 2 lines 15-30: deliver what is stable and unobstructed.
  deliverBatch();

  // §8.4: after the committed frontier settled for the round, emit what
  // the epidemic model already trusts. Strictly additive — nothing the
  // speculative scan does feeds back into the structures above.
  if (options_.speculation != nullptr) speculateAhead();

  if (options_.tagOutOfOrder && options_.deliveredRetentionRounds != 0) {
    pruneDeliveredMemory();
  }
}

Event OrderingComponent::materialize(const OrderKey& key, const Pending& pending) const {
  Event event;
  event.id = EventId{key.source, key.sequence};
  event.ts = key.ts;
  event.ttl = derivedTtl(pending.birthRound);
  event.qos = pending.qos;
  event.payload = pending.payload;
  return event;
}

void OrderingComponent::absorb(const Event& event) {
  // Duplicate fast path: a queued repeat is by invariant past the
  // delivery frontier, so only the birth-round merge (Alg. 2 lines 10-14)
  // can apply — resolved through the hash index without touching the tree.
  const auto birth = static_cast<std::int64_t>(stats_.rounds) -
                     static_cast<std::int64_t>(event.ttl);
  if (const auto hit = receivedIndex_.find(event.id.packed());
      hit != receivedIndex_.end()) {
    Pending& pending = *hit->second;
    ++pending.copies;
    if (birth < pending.birthRound) {
      EPTO_TRACE_EVENT(TtlMerge, .node = options_.self, .round = stats_.rounds,
                       .event = event.id, .ts = event.ts, .ttl = event.ttl,
                       .aux = derivedTtl(pending.birthRound));
      pending.birthRound = birth;
      ++stats_.ttlMerges;
    }
    return;
  }

  const OrderKey key = event.orderKey();

  // Alg. 2 line 9 (strengthened to full keys): an event sorting at or
  // before the delivery frontier can never be delivered in order.
  if (lastDelivered_.has_value() && key <= *lastDelivered_) {
    if (alreadyDelivered(event.id)) {
      ++stats_.droppedDuplicates;
      EPTO_TRACE_EVENT(Drop, .node = options_.self, .round = stats_.rounds,
                       .event = event.id, .ts = event.ts, .ttl = event.ttl,
                       .detail = static_cast<std::uint8_t>(obs::DropReason::Duplicate));
      return;
    }
    if (options_.tagOutOfOrder) {
      // §8.2: surface the event to the application, explicitly tagged,
      // instead of dropping it. rememberDelivered() suppresses the
      // further copies that are still circulating.
      rememberDelivered(event.id);
      ++stats_.deliveredOutOfOrder;
      EPTO_TRACE_EVENT(Deliver, .node = options_.self, .round = stats_.rounds,
                       .event = event.id, .ts = event.ts, .ttl = event.ttl,
                       .size = currentRoundClock_,
                       .detail = static_cast<std::uint8_t>(DeliveryTag::OutOfOrder));
      deliver_(event, DeliveryTag::OutOfOrder);
    } else {
      ++stats_.droppedOutOfOrder;
      EPTO_TRACE_EVENT(Drop, .node = options_.self, .round = stats_.rounds,
                       .event = event.id, .ts = event.ts, .ttl = event.ttl,
                       .detail = static_cast<std::uint8_t>(obs::DropReason::OutOfOrder));
    }
    return;
  }

  // Alg. 2 lines 10-14, first copy: the index miss above proved the id is
  // not queued, so this insert cannot collide.
  const auto [it, inserted] =
      received_.try_emplace(key, Pending{birth, currentRoundClock_, 0, event.qos,
                                         event.payload});
  EPTO_ENSURE_MSG(inserted, "received index out of sync with the ordered map");
  receivedIndex_.emplace(event.id.packed(), &it->second);

  // §8.4: a fresh key behind the speculation frontier falsifies the
  // projection that speculated past it — revoke the displaced suffix at
  // the earliest knowable moment.
  if (options_.speculation != nullptr) {
    options_.speculation->onFreshEvent(key, stats_.rounds);
  }
}

void OrderingComponent::deliverBatch() {
#if defined(EPTO_TRACE_ENABLED)
  // The optimized delivery below never learns how many deliverable events
  // are blocked behind an unstable smaller key, but the stability trace
  // reports exactly that. Reconstruct it with a full scan only when a
  // trace consumer is attached; the hot path stays sublinear.
  if (obs::detail::tracerOn()) {
    std::size_t stableCount = 0;
    std::size_t unblocked = 0;
    std::optional<OrderKey> minQueued;
    for (const auto& [key, pending] : received_) {
      if (oracle_.isDeliverable(materialize(key, pending))) {
        ++stableCount;
        if (!minQueued.has_value()) ++unblocked;
      } else if (!minQueued.has_value()) {
        minQueued = key;
      }
    }
    if (stableCount != 0) {
      EPTO_TRACE_EVENT(StabilityDecision, .node = options_.self, .round = stats_.rounds,
                       .ts = minQueued.has_value() ? minQueued->ts : 0,
                       .size = unblocked, .aux = stableCount - unblocked);
    }
  }
#endif

  // Alg. 2 lines 15-30, collapsed into one ordered walk: the index sorts
  // `received` by OrderKey, so the deliverable events that no queued
  // event can precede are exactly the deliverable prefix — the first
  // non-deliverable entry is the minQueued bound of lines 22-26, and
  // everything before it is delivered in total order as it is popped.
  // Hoisted trace gate: the loop fires two trace points per delivered
  // event; skip both with one check when nobody is listening.
  const bool traceDelivery =
      EPTO_TRACE_WANTS(BecameDeliverable) || EPTO_TRACE_WANTS(Deliver);
  while (!received_.empty()) {
    const auto it = received_.begin();
    // Deliverability is a function of the event's age and timestamp, not
    // its payload (StabilityOracle contract), so the payload pointer is
    // only moved out once the event is actually delivered.
    Event event;
    event.id = EventId{it->first.source, it->first.sequence};
    event.ts = it->first.ts;
    event.ttl = derivedTtl(it->second.birthRound);
    if (!oracle_.isDeliverable(event)) break;

    event.qos = it->second.qos;
    event.payload = std::move(it->second.payload);
    const Timestamp firstSeen = it->second.firstSeenClock;
    const std::int64_t birth = it->second.birthRound;
    receivedIndex_.erase(event.id.packed());
    received_.erase(it);
    lastDelivered_ = event.orderKey();
    if (options_.speculation != nullptr) {
      options_.speculation->onCommit(*lastDelivered_, stats_.rounds);
    }
    if (options_.tagOutOfOrder) rememberDelivered(event.id);
    ++stats_.deliveredOrdered;
    if (traceDelivery) {
      EPTO_TRACE_EVENT(BecameDeliverable, .node = options_.self,
                       .round = stats_.rounds, .event = event.id,
                       .ts = stableClockAt(birth, firstSeen), .ttl = event.ttl,
                       .size = firstSeen,
                       .aux = static_cast<std::uint64_t>(
                           birth + oracle_.stabilityHorizon() + 1));
      EPTO_TRACE_EVENT(Deliver, .node = options_.self, .round = stats_.rounds,
                       .event = event.id, .ts = event.ts, .ttl = event.ttl,
                       .size = currentRoundClock_,
                       .detail = static_cast<std::uint8_t>(DeliveryTag::Ordered));
    }
    if (options_.latency != nullptr) {
      // Phase construction (DESIGN.md §13): clamp each boundary into
      // [broadcast, now] so the three phases always sum exactly to the
      // end-to-end latency, even when a clock fell out of the window.
      const Timestamp now = currentRoundClock_;
      const Timestamp born = event.ts;
      const std::uint64_t endToEnd = now > born ? now - born : 0;
      std::uint64_t dissemination = firstSeen > born ? firstSeen - born : 0;
      if (dissemination > endToEnd) dissemination = endToEnd;
      const Timestamp stableClock = stableClockAt(birth, firstSeen);
      std::uint64_t stableOffset = stableClock > born ? stableClock - born : 0;
      stableOffset = std::clamp(stableOffset, dissemination, endToEnd);
      obs::LatencySample sample;
      sample.endToEnd = endToEnd;
      sample.dissemination = dissemination;
      sample.stabilityWait = stableOffset - dissemination;
      sample.orderingWait = endToEnd - stableOffset;
      options_.latency->observe(options_.self, event.id, sample);
    }
    deliver_(event, DeliveryTag::Ordered);
  }
}

void OrderingComponent::speculateAhead() {
  SpeculationChannel& spec = *options_.speculation;
  // Resume the key-order scan beyond what is already speculated; with an
  // empty window the scan starts right past the committed frontier.
  auto it = received_.begin();
  if (const auto frontier = spec.frontier(); frontier.has_value()) {
    it = received_.upper_bound(*frontier);
  }
  while (it != received_.end() && spec.hasCapacity()) {
    // Only Fast-class events may jump the committed frontier, and the
    // speculative stream is emitted in key order, so the first event
    // that cannot be emitted — Safe class or not yet confident enough —
    // ends the round's scan.
    if (it->second.qos != QosClass::Fast) break;
    const Event event = materialize(it->first, it->second);
    const double confidence = oracle_.stabilityEstimate(event, it->second.copies);
    if (!spec.offer(event, confidence, it->second.copies, stats_.rounds)) break;
    ++it;
  }
}

Timestamp OrderingComponent::stableClockAt(std::int64_t birthRound,
                                           Timestamp fallback) const noexcept {
  // The event crossed the stability horizon at the first round r with
  // r - birthRound > horizon, i.e. r = birthRound + horizon + 1.
  const std::int64_t stableRound =
      birthRound + static_cast<std::int64_t>(oracle_.stabilityHorizon()) + 1;
  const auto now = static_cast<std::int64_t>(stats_.rounds);
  if (stableRound < 0 || stableRound > now ||
      stableRound <= now - static_cast<std::int64_t>(kRoundClockWindow)) {
    return fallback;
  }
  return roundClocks_[static_cast<std::uint64_t>(stableRound) % kRoundClockWindow];
}

void OrderingComponent::rememberDelivered(const EventId& id) {
  deliveredMemory_.emplace(id, stats_.rounds);
}

bool OrderingComponent::alreadyDelivered(const EventId& id) const {
  return options_.tagOutOfOrder && deliveredMemory_.contains(id);
}

void OrderingComponent::pruneDeliveredMemory() {
  const std::uint64_t now = stats_.rounds;
  const std::uint64_t retention = options_.deliveredRetentionRounds;
  if (now < retention) return;
  const std::uint64_t horizon = now - retention;
  std::erase_if(deliveredMemory_,
                [&](const auto& entry) { return entry.second < horizon; });
}

std::vector<Event> OrderingComponent::pendingEvents() const {
  std::vector<Event> pending;
  pending.reserve(received_.size());
  // The index iterates in OrderKey order, so the snapshot needs no sort.
  for (const auto& [key, entry] : received_) pending.push_back(materialize(key, entry));
  return pending;
}

bool OrderingComponent::checkInvariants() const {
  if (receivedIndex_.size() != received_.size()) return false;
  if (!lastDelivered_.has_value() || received_.empty()) return true;
  return received_.begin()->first > *lastDelivered_;
}

}  // namespace epto

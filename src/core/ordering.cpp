#include "core/ordering.h"

#include <algorithm>

#include "obs/trace.h"
#include "util/ensure.h"

namespace epto {

OrderingComponent::OrderingComponent(Options options, const StabilityOracle& oracle,
                                     DeliverFn deliver)
    : options_(options), oracle_(oracle), deliver_(std::move(deliver)) {
  EPTO_ENSURE_MSG(deliver_ != nullptr, "ordering component needs a delivery callback");
}

void OrderingComponent::orderEvents(const Ball& ball) {
  ++stats_.rounds;

  // Alg. 2 lines 6-7: a new round started, age every known event.
  for (auto& [id, event] : received_) {
    ++event.ttl;
  }

  // Alg. 2 lines 8-14: absorb the ball into `received`.
  for (const Event& event : ball) {
    absorb(event);
  }
  stats_.maxReceivedSize = std::max(stats_.maxReceivedSize, received_.size());

  // Alg. 2 lines 15-30: deliver what is stable and unobstructed.
  deliverBatch();

  if (options_.tagOutOfOrder && options_.deliveredRetentionRounds != 0) {
    pruneDeliveredMemory();
  }
}

void OrderingComponent::absorb(const Event& event) {
  const OrderKey key = event.orderKey();

  // Alg. 2 line 9 (strengthened to full keys): an event sorting at or
  // before the delivery frontier can never be delivered in order.
  if (lastDelivered_.has_value() && key <= *lastDelivered_) {
    if (alreadyDelivered(event.id)) {
      ++stats_.droppedDuplicates;
      EPTO_TRACE_EVENT(.type = obs::TraceType::Drop, .node = options_.self,
                       .round = stats_.rounds, .event = event.id, .ts = event.ts,
                       .ttl = event.ttl,
                       .detail = static_cast<std::uint8_t>(obs::DropReason::Duplicate));
      return;
    }
    if (options_.tagOutOfOrder) {
      // §8.2: surface the event to the application, explicitly tagged,
      // instead of dropping it. rememberDelivered() suppresses the
      // further copies that are still circulating.
      rememberDelivered(event.id);
      ++stats_.deliveredOutOfOrder;
      EPTO_TRACE_EVENT(.type = obs::TraceType::Deliver, .node = options_.self,
                       .round = stats_.rounds, .event = event.id, .ts = event.ts,
                       .ttl = event.ttl,
                       .detail = static_cast<std::uint8_t>(DeliveryTag::OutOfOrder));
      deliver_(event, DeliveryTag::OutOfOrder);
    } else {
      ++stats_.droppedOutOfOrder;
      EPTO_TRACE_EVENT(.type = obs::TraceType::Drop, .node = options_.self,
                       .round = stats_.rounds, .event = event.id, .ts = event.ts,
                       .ttl = event.ttl,
                       .detail = static_cast<std::uint8_t>(obs::DropReason::OutOfOrder));
    }
    return;
  }

  // Alg. 2 lines 10-14: insert, or keep the larger ttl of both copies.
  auto [it, inserted] = received_.try_emplace(event.id, event);
  if (!inserted) {
    if (it->second.ttl < event.ttl) {
      EPTO_TRACE_EVENT(.type = obs::TraceType::TtlMerge, .node = options_.self,
                       .round = stats_.rounds, .event = event.id, .ts = event.ts,
                       .ttl = event.ttl, .aux = it->second.ttl);
      it->second.ttl = event.ttl;
      ++stats_.ttlMerges;
    }
  }
}

void OrderingComponent::deliverBatch() {
  // Alg. 2 lines 15-21: split `received` into deliverable events and the
  // minimum key among events that must still age.
  std::optional<OrderKey> minQueued;
  std::vector<Event> deliverable;
  for (const auto& [id, event] : received_) {
    if (oracle_.isDeliverable(event)) {
      deliverable.push_back(event);
    } else {
      const OrderKey key = event.orderKey();
      if (!minQueued.has_value() || key < *minQueued) minQueued = key;
    }
  }

  // Alg. 2 lines 22-26: a deliverable event sorting after a queued event
  // cannot be delivered yet without risking an order violation.
  const std::size_t stableCount = deliverable.size();
  if (minQueued.has_value()) {
    std::erase_if(deliverable,
                  [&](const Event& e) { return e.orderKey() > *minQueued; });
  }
  if (stableCount != 0) {
    EPTO_TRACE_EVENT(.type = obs::TraceType::StabilityDecision, .node = options_.self,
                     .round = stats_.rounds,
                     .ts = minQueued.has_value() ? minQueued->ts : 0,
                     .size = deliverable.size(), .aux = stableCount - deliverable.size());
  }
  if (deliverable.empty()) return;

  // Alg. 2 lines 27-30: deliver in total order.
  std::sort(deliverable.begin(), deliverable.end(),
            [](const Event& a, const Event& b) { return a.orderKey() < b.orderKey(); });
  for (const Event& event : deliverable) {
    received_.erase(event.id);
    lastDelivered_ = event.orderKey();
    if (options_.tagOutOfOrder) rememberDelivered(event.id);
    ++stats_.deliveredOrdered;
    EPTO_TRACE_EVENT(.type = obs::TraceType::Deliver, .node = options_.self,
                     .round = stats_.rounds, .event = event.id, .ts = event.ts,
                     .ttl = event.ttl,
                     .detail = static_cast<std::uint8_t>(DeliveryTag::Ordered));
    deliver_(event, DeliveryTag::Ordered);
  }
}

void OrderingComponent::rememberDelivered(const EventId& id) {
  deliveredMemory_.emplace(id, stats_.rounds);
}

bool OrderingComponent::alreadyDelivered(const EventId& id) const {
  return options_.tagOutOfOrder && deliveredMemory_.contains(id);
}

void OrderingComponent::pruneDeliveredMemory() {
  const std::uint64_t now = stats_.rounds;
  const std::uint64_t retention = options_.deliveredRetentionRounds;
  if (now < retention) return;
  const std::uint64_t horizon = now - retention;
  std::erase_if(deliveredMemory_,
                [&](const auto& entry) { return entry.second < horizon; });
}

std::vector<Event> OrderingComponent::pendingEvents() const {
  std::vector<Event> pending;
  pending.reserve(received_.size());
  for (const auto& [id, event] : received_) pending.push_back(event);
  std::sort(pending.begin(), pending.end(),
            [](const Event& a, const Event& b) { return a.orderKey() < b.orderKey(); });
  return pending;
}

bool OrderingComponent::checkInvariants() const {
  if (!lastDelivered_.has_value()) return true;
  return std::all_of(received_.begin(), received_.end(), [&](const auto& entry) {
    return entry.second.orderKey() > *lastDelivered_;
  });
}

}  // namespace epto

// EpTO protocol configuration.
//
// A Config fully determines a process's protocol behaviour: fanout K,
// stability horizon TTL, clock discipline and the optional extensions.
// Config::forSystemSize derives K and TTL from the paper's Lemmas 3-7 via
// epto::analysis::computeParameters; every field can also be set by hand
// (the evaluation sweeps TTL manually, e.g. Fig. 6 contrasts the
// theoretical TTL=15 for n=100 against an empirical TTL=5).
#pragma once

#include <cstddef>
#include <cstdint>

#include "analysis/parameters.h"
#include "core/types.h"

namespace epto {

/// Which stability oracle a process runs (paper Alg. 3 vs Alg. 4).
enum class ClockMode : std::uint8_t {
  Global,   ///< synchronized physical time (GPS/atomic, or simulator ticks)
  Logical,  ///< scalar Lamport clock; no synchronization assumption
};

/// Environmental assumptions fed into Lemmas 3-7 when deriving K and TTL.
struct Robustness {
  double c = 2.0;                  ///< Theorem 2 constant, must be > 1.
  double churnPerRound = 0.0;      ///< Lemma 7 alpha.
  double messageLossRate = 0.0;    ///< Lemma 7 epsilon.
  double driftRatio = 1.0;         ///< Lemma 5 delta_max/delta_min.
  bool latencyBelowRound = false;  ///< Lemma 6 extra round.
};

/// §8.4 speculative delivery (core/speculation.h, DESIGN.md §15).
struct Speculation {
  /// Off by default: with speculation disabled the Process contains no
  /// speculative state and its committed output is byte-identical to a
  /// pre-speculation build.
  bool enabled = false;
  /// Minimum stability confidence to emit a Fast-class event early.
  double confidenceThreshold = 0.9;
  /// Speculated-but-unresolved events held at once.
  std::size_t maxWindow = 64;
};

struct Config {
  std::size_t fanout = 0;   ///< K — gossip targets per round.
  std::uint32_t ttl = 0;    ///< TTL — relay rounds / stability age.
  ClockMode clockMode = ClockMode::Logical;

  /// §8.2 tagged delivery: surface order-violating events with
  /// DeliveryTag::OutOfOrder instead of dropping them.
  bool tagOutOfOrder = false;
  /// Retention (in rounds) of delivered-event ids for tagged-delivery
  /// duplicate suppression; 0 = remember forever. Ignored unless
  /// tagOutOfOrder is set.
  std::uint32_t deliveredRetentionRounds = 0;

  /// §8.4 speculative-delivery channel.
  Speculation speculation;

  /// Environment model behind StabilityOracle::stabilityEstimate.
  /// forSystemSize fills systemSize/fanout/messageLossRate; drivers add
  /// ticksPerRound for global-clock deployments. An unset model (all
  /// zeros) keeps the estimate on its age/horizon fallback.
  StabilityModel stabilityModel;

  /// Derive K and TTL for a system of (up to) `systemSize` processes.
  [[nodiscard]] static Config forSystemSize(std::size_t systemSize, ClockMode mode,
                                            const Robustness& robustness = Robustness{});

  /// Throws util::ContractViolation when the configuration is unusable.
  void validate() const;
};

}  // namespace epto

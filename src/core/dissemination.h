// EpTO dissemination component — paper Algorithm 1.
//
// The component is sans-io: it never touches a socket or a timer. The
// driver (discrete-event simulator, threaded runtime, or an application's
// own event loop) calls
//   * broadcast()  when the application EpTO-broadcasts (Alg. 1 l.6-10),
//   * onBall()     when a ball arrives from the network (Alg. 1 l.11-19),
//   * onRound()    every delta time units (Alg. 1 l.20-28); the returned
//                  RoundOutput carries the ball to transmit and the K
//                  gossip targets drawn from the peer-sampling service.
// The three entry points must be called from one logical thread of
// control, matching the paper's "procedures executed atomically".
//
// Hot-path engineering (DESIGN.md §11): `nextBall` is a vector kept
// sorted by EventId at all times — incoming balls are themselves sorted
// (every sender emits sorted balls), so onBall() is one linear merge and
// onRound() emits the ball without the former per-event hash insert and
// per-round sort. Balls received later in a round mostly repeat what
// earlier balls carried, so the merge runs an in-place phase first
// (duplicate ttl-maxing writes nothing unless the ttl actually grows)
// and only rewrites the suffix — backward, one write per element — after
// the first genuine insertion. The
// round then moves the events (and their payload refcounts) straight
// into a pooled Ball buffer, so a steady-state round performs no
// allocation and no payload shared_ptr churn beyond the copies
// receivers genuinely keep.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/ordering.h"
#include "core/stability_oracle.h"
#include "core/types.h"

namespace epto {

/// Counters exposed for tests, benches and operational visibility.
struct DisseminationStats {
  std::uint64_t broadcasts = 0;      ///< local EpTO-broadcast calls.
  std::uint64_t ballsReceived = 0;   ///< onBall invocations.
  std::uint64_t ballsSent = 0;       ///< ball transmissions (one per target).
  std::uint64_t eventsRelayed = 0;   ///< event copies placed in outgoing balls.
  std::uint64_t eventsExpired = 0;   ///< received events dropped, ttl >= TTL.
  std::uint64_t rounds = 0;          ///< onRound invocations.
  std::size_t maxBallSize = 0;       ///< high-water mark of events per ball.
};

class DisseminationComponent {
 public:
  struct Options {
    std::size_t fanout = 0;  ///< K — gossip targets per round.
    std::uint32_t ttl = 0;   ///< TTL — rounds each event is relayed.
  };

  /// What one round produced. When `ball` is null the round was idle and
  /// nothing is transmitted (Alg. 1 line 23's emptiness check).
  struct RoundOutput {
    BallPtr ball;
    std::vector<ProcessId> targets;
  };

  /// The oracle and sampler must outlive the component; `ordering` is the
  /// same process's ordering component (Alg. 1 line 27 hands it the ball).
  DisseminationComponent(ProcessId self, Options options, StabilityOracle& oracle,
                         PeerSampler& sampler, OrderingComponent& ordering);

  /// EpTO-broadcast: timestamp the payload with the oracle clock and
  /// queue it for relaying. Returns the newly created event (ttl = 0) so
  /// the caller knows its id, timestamp and order key. The QoS class
  /// rides along unexamined — dissemination treats Fast and Safe events
  /// identically.
  Event broadcast(PayloadPtr payload, QosClass qos = QosClass::Safe);

  /// Move fanout and TTL online (Process::retune). Takes effect from the
  /// next round; events already queued keep their accumulated ttl, so a
  /// TTL reduction simply expires them sooner at the receivers.
  void retune(std::size_t fanout, std::uint32_t ttl);

  /// Network receive callback for one incoming ball.
  void onBall(const Ball& ball);

  /// Fast-forward the broadcast sequence counter. A restarted process
  /// reusing its ProcessId must never reissue an EventId its previous
  /// incarnation used; the driver moves the fresh instance into a
  /// disjoint sequence range. Only valid before the first broadcast.
  void startSequenceAt(std::uint32_t first);

  /// Incarnation stamped into every event this process broadcasts
  /// (lineage only — the protocol never reads it; codec v2 carries it on
  /// the wire so trace analysis can tell a restarted process's events
  /// from its predecessor's). Like startSequenceAt, only valid before
  /// the first broadcast. Simulation drivers leave it 0.
  void setIncarnation(std::uint16_t incarnation);

  /// The periodic relay task; call every delta time units.
  RoundOutput onRound();

  [[nodiscard]] ProcessId self() const noexcept { return self_; }
  [[nodiscard]] const Options& options() const noexcept { return options_; }
  [[nodiscard]] const DisseminationStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t pendingRelayCount() const noexcept { return nextBall_.size(); }

 private:
  // Concurrency contract (DESIGN.md §12): capability-free by design. The
  // sans-io core is confined to one logical thread of control (the
  // paper's "procedures executed atomically"); drivers serialize
  // broadcast()/onBall()/onRound() per process, so a lock here would
  // only hide a driver bug. Cross-thread ingress belongs in the driver
  // (Mailbox/IngressQueue), never in this class.

  /// Merge one id-sorted run of events into nextBall_ (duplicates keep
  /// the existing copy with the max ttl of both; expired run entries are
  /// skipped).
  void mergeSortedRun(const Event* run, std::size_t count);
  /// A cleared Ball buffer, reusing a pooled one when every previous
  /// consumer has released it.
  [[nodiscard]] std::shared_ptr<Ball> acquireBall();

  ProcessId self_;
  Options options_;
  StabilityOracle& oracle_;
  PeerSampler& sampler_;
  OrderingComponent& ordering_;

  /// Alg. 1 `nextBall`: events to relay in the next round, sorted by id.
  std::vector<Event> nextBall_;
  /// Copy of an incoming ball used only when it arrives unsorted.
  std::vector<Event> sortScratch_;
  /// Recycled Ball buffers (see acquireBall).
  std::vector<std::shared_ptr<Ball>> ballPool_;
  std::uint32_t nextSequence_ = 0;
  /// See setIncarnation.
  std::uint16_t incarnation_ = 0;
  /// Balls absorbed since the last onRound — the fan-in figure carried
  /// by BallReceived trace events. Reset each round.
  std::uint64_t ballsThisRound_ = 0;

  DisseminationStats stats_;
};

}  // namespace epto

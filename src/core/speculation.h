// Speculative delivery channel — paper §8.4 ("trading certainty for
// latency"), DESIGN.md §15.
//
// The committed EpTO path waits a full stability horizon before
// delivering; most of that wait is insurance against stragglers that
// almost never materialize on a healthy network. The speculative channel
// lets the application see Fast-class events early: the ordering
// component offers it, in total-order key order, events beyond the
// committed frontier together with a stability confidence (the Theorem 2
// epidemic estimate, StabilityOracle::stabilityEstimate). Events at or
// above the configured threshold are emitted through onSpeculate with
// their confidence attached, and every speculation is later resolved
// exactly once:
//   * onConfirm — the event committed at the head of the speculation
//     window, i.e. the speculative emission agreed with the total order;
//   * onRevoke  — a fresh event with a smaller order key was absorbed
//     after the speculation, so the emission jumped an event the
//     projection did not know about. Revocation happens at absorb time
//     (the earliest moment the mistake is knowable), and revokes the
//     whole displaced suffix of the window, deepest key first.
//
// The channel only ever *observes* ordering state: it holds no reference
// to the committed structures and cannot move the committed frontier
// (enforced by construction here and by the `speculative-frontier-write`
// lint rule). With no channel configured the ordering component contains
// no speculative code on its hot path and its output is byte-identical
// to the non-speculative build.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>

#include "core/types.h"

namespace epto {

/// Application-facing notifications. All three are invoked synchronously
/// from inside OrderingComponent::orderEvents, on the protocol thread.
struct SpeculationCallbacks {
  /// Event emitted ahead of the committed frontier with its stability
  /// confidence in [threshold, 1].
  std::function<void(const Event&, double confidence)> onSpeculate;
  /// The speculated event committed at its projected position.
  std::function<void(const EventId&)> onConfirm;
  /// The speculated event was displaced before committing; the
  /// application must treat the earlier emission as a mistake.
  std::function<void(const EventId&)> onRevoke;
};

class SpeculationChannel {
 public:
  struct Options {
    /// Minimum stability confidence to emit an event speculatively.
    double confidenceThreshold = 0.9;
    /// Maximum speculated-but-unresolved events held; bounds both the
    /// application's rollback exposure and the per-round scan.
    std::size_t maxWindow = 64;
    /// Owning process id, used only to label trace events.
    ProcessId self = 0;
  };

  struct Stats {
    std::uint64_t speculated = 0;
    std::uint64_t confirmed = 0;
    std::uint64_t revoked = 0;
  };

  SpeculationChannel(Options options, SpeculationCallbacks callbacks);

  /// Replace the application callbacks; only valid while nothing is
  /// speculated (install them before the first round).
  void setCallbacks(SpeculationCallbacks callbacks);

  /// Largest speculated key still unresolved — the speculation frontier
  /// the ordering component resumes its key-order scan beyond.
  [[nodiscard]] std::optional<OrderKey> frontier() const;

  [[nodiscard]] bool hasCapacity() const noexcept {
    return window_.size() < options_.maxWindow;
  }

  /// Offer the next key-order candidate beyond the frontier. Emits and
  /// records the event when its confidence clears the threshold and the
  /// window has room; returns false when the caller must stop scanning
  /// (speculative emissions are in key order, so the first refusal ends
  /// the round's scan).
  bool offer(const Event& event, double confidence, std::uint64_t redundantCopies,
             std::uint64_t round);

  /// A fresh event was absorbed at `key`: revoke every speculated event
  /// with a greater key (the displaced suffix), deepest first.
  void onFreshEvent(const OrderKey& key, std::uint64_t round);

  /// The committed path delivered `key`. Confirms the window head when
  /// it matches; a non-matching head (committed event never speculated)
  /// is left untouched.
  void onCommit(const OrderKey& key, std::uint64_t round);

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t windowSize() const noexcept { return window_.size(); }
  [[nodiscard]] double threshold() const noexcept { return options_.confidenceThreshold; }

 private:
  struct Slot {
    OrderKey key;
    EventId id;
  };

  Options options_;
  SpeculationCallbacks callbacks_;
  /// Unresolved speculations in strictly increasing key order.
  std::deque<Slot> window_;
  Stats stats_;
};

}  // namespace epto

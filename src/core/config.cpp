#include "core/config.h"

#include "util/ensure.h"

namespace epto {

Config Config::forSystemSize(std::size_t systemSize, ClockMode mode,
                             const Robustness& robustness) {
  analysis::ParameterInputs inputs;
  inputs.systemSize = systemSize;
  inputs.c = robustness.c;
  inputs.logicalTime = (mode == ClockMode::Logical);
  inputs.churnPerRound = robustness.churnPerRound;
  inputs.messageLossRate = robustness.messageLossRate;
  inputs.driftRatio = robustness.driftRatio;
  inputs.latencyBelowRound = robustness.latencyBelowRound;

  const analysis::Parameters params = analysis::computeParameters(inputs);
  Config config;
  config.fanout = params.fanout;
  config.ttl = params.ttl;
  config.clockMode = mode;
  config.stabilityModel.systemSize = systemSize;
  config.stabilityModel.fanout = params.fanout;
  config.stabilityModel.messageLossRate = robustness.messageLossRate;
  return config;
}

void Config::validate() const {
  EPTO_ENSURE_MSG(fanout >= 1, "Config.fanout must be at least 1");
  EPTO_ENSURE_MSG(ttl >= 1, "Config.ttl must be at least 1");
  if (speculation.enabled) {
    EPTO_ENSURE_MSG(speculation.confidenceThreshold > 0.0 &&
                        speculation.confidenceThreshold <= 1.0,
                    "Config.speculation.confidenceThreshold must be in (0, 1]");
    EPTO_ENSURE_MSG(speculation.maxWindow >= 1,
                    "Config.speculation.maxWindow must be at least 1");
  }
}

}  // namespace epto

// Stability oracles — paper Algorithms 3 (global clock) and 4 (logical
// clock).
//
// The oracle answers one question for the ordering component — "has this
// event been in the system long enough that, with high probability, every
// process knows it?" — and supplies the clock used to timestamp broadcasts.
// With a global clock the answer is purely TTL-based and the clock is
// external (GPS/atomic time a la Spanner, or the simulator's tick counter).
// With logical time the clock is a standard scalar Lamport clock advanced
// on every broadcast and on every event reception; Lemma 4 doubles TTL to
// absorb the concurrency holes of Figure 4.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>

#include "core/types.h"
#include "util/ensure.h"

namespace epto {

/// Interface between the EpTO components and time/stability decisions.
/// One oracle instance belongs to one process; calls are not synchronized.
class StabilityOracle {
 public:
  virtual ~StabilityOracle() = default;

  /// True when the event has aged past the stability horizon (ttl > TTL)
  /// and can be considered known system-wide w.h.p. (Lemmas 3-7).
  /// Contract: the answer is a function of the event's age (ttl) and
  /// timestamp only — never its payload. The ordering component relies
  /// on this to test deliverability without materializing the payload
  /// (DESIGN.md §11).
  [[nodiscard]] virtual bool isDeliverable(const Event& event) const = 0;

  /// Timestamp for a fresh broadcast (Alg. 3/4 `getClock`). May advance
  /// internal state (the logical clock increments on every call).
  [[nodiscard]] virtual Timestamp getClock() = 0;

  /// Observe the timestamp of a received event (Alg. 3/4 `updateClock`).
  /// Contract: observing every timestamp of a batch one by one and
  /// observing only the batch maximum must be equivalent (the update is
  /// a max-fold). The dissemination component folds each incoming ball
  /// into a single call (DESIGN.md §11).
  virtual void updateClock(Timestamp ts) = 0;

  /// Current clock value without advancing it — observability reads
  /// (e.g. the last-delivered-lag gauge) must not disturb the logical
  /// clock the way getClock() does.
  [[nodiscard]] virtual Timestamp peekClock() const = 0;

  /// The age (in rounds) past which isDeliverable says yes: an event
  /// absorbed with birth round b becomes deliverable exactly when the
  /// ordering round counter passes b + stabilityHorizon(). Observability
  /// only — the latency decomposition reconstructs *when* an event
  /// crossed the horizon without re-asking isDeliverable per round.
  [[nodiscard]] virtual std::uint32_t stabilityHorizon() const = 0;
};

/// Algorithm 3: global (a.k.a. physical/synchronized) clock oracle.
/// The time source is injected so the same oracle runs against the
/// discrete simulator's tick counter or a real clock.
class GlobalClockOracle final : public StabilityOracle {
 public:
  using TimeSource = std::function<Timestamp()>;

  GlobalClockOracle(std::uint32_t ttl, TimeSource timeSource)
      : ttl_(ttl), timeSource_(std::move(timeSource)) {
    EPTO_ENSURE_MSG(timeSource_ != nullptr, "global clock oracle needs a time source");
  }

  [[nodiscard]] bool isDeliverable(const Event& event) const override {
    return event.ttl > ttl_;
  }

  [[nodiscard]] Timestamp getClock() override { return timeSource_(); }

  void updateClock(Timestamp /*ts*/) override {
    // Nothing to do: global time advances on its own (Alg. 3).
  }

  [[nodiscard]] Timestamp peekClock() const override { return timeSource_(); }

  [[nodiscard]] std::uint32_t stabilityHorizon() const override { return ttl_; }

 private:
  std::uint32_t ttl_;
  TimeSource timeSource_;
};

/// Algorithm 4: scalar logical clock oracle.
class LogicalClockOracle final : public StabilityOracle {
 public:
  explicit LogicalClockOracle(std::uint32_t ttl, Timestamp initialClock = 0)
      : ttl_(ttl), clock_(initialClock) {}

  [[nodiscard]] bool isDeliverable(const Event& event) const override {
    return event.ttl > ttl_;
  }

  [[nodiscard]] Timestamp getClock() override { return ++clock_; }

  void updateClock(Timestamp ts) override { clock_ = std::max(clock_, ts); }

  [[nodiscard]] Timestamp peekClock() const override { return clock_; }

  [[nodiscard]] std::uint32_t stabilityHorizon() const override { return ttl_; }

  /// Current clock value, for inspection and tests.
  [[nodiscard]] Timestamp current() const noexcept { return clock_; }

 private:
  std::uint32_t ttl_;
  Timestamp clock_;
};

}  // namespace epto

// Stability oracles — paper Algorithms 3 (global clock) and 4 (logical
// clock).
//
// The oracle answers one question for the ordering component — "has this
// event been in the system long enough that, with high probability, every
// process knows it?" — and supplies the clock used to timestamp broadcasts.
// With a global clock the answer is purely TTL-based and the clock is
// external (GPS/atomic time a la Spanner, or the simulator's tick counter).
// With logical time the clock is a standard scalar Lamport clock advanced
// on every broadcast and on every event reception; Lemma 4 doubles TTL to
// absorb the concurrency holes of Figure 4.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>

#include "analysis/parameters.h"
#include "core/types.h"
#include "util/ensure.h"

namespace epto {

/// Interface between the EpTO components and time/stability decisions.
/// One oracle instance belongs to one process; calls are not synchronized.
class StabilityOracle {
 public:
  virtual ~StabilityOracle() = default;

  /// True when the event has aged past the stability horizon (ttl > TTL)
  /// and can be considered known system-wide w.h.p. (Lemmas 3-7).
  /// Contract: the answer is a function of the event's age (ttl) and
  /// timestamp only — never its payload. The ordering component relies
  /// on this to test deliverability without materializing the payload
  /// (DESIGN.md §11).
  [[nodiscard]] virtual bool isDeliverable(const Event& event) const = 0;

  /// Timestamp for a fresh broadcast (Alg. 3/4 `getClock`). May advance
  /// internal state (the logical clock increments on every call).
  [[nodiscard]] virtual Timestamp getClock() = 0;

  /// Observe the timestamp of a received event (Alg. 3/4 `updateClock`).
  /// Contract: observing every timestamp of a batch one by one and
  /// observing only the batch maximum must be equivalent (the update is
  /// a max-fold). The dissemination component folds each incoming ball
  /// into a single call (DESIGN.md §11).
  virtual void updateClock(Timestamp ts) = 0;

  /// Current clock value without advancing it — observability reads
  /// (e.g. the last-delivered-lag gauge) must not disturb the logical
  /// clock the way getClock() does.
  [[nodiscard]] virtual Timestamp peekClock() const = 0;

  /// The age (in rounds) past which isDeliverable says yes: an event
  /// absorbed with birth round b becomes deliverable exactly when the
  /// ordering round counter passes b + stabilityHorizon(). Observability
  /// only — the latency decomposition reconstructs *when* an event
  /// crossed the horizon without re-asking isDeliverable per round.
  [[nodiscard]] virtual std::uint32_t stabilityHorizon() const = 0;

  /// Move the stability horizon online (adapt::FeedbackController). The
  /// new horizon applies from the next isDeliverable call; events
  /// already past it deliver on the next round like any other.
  virtual void setHorizon(std::uint32_t ttl) = 0;

  /// §8.4: per-event delivery confidence in [0, 1] — the estimated
  /// probability that the event is already stable, i.e. that committing
  /// it now would agree with the eventual total order. 1.0 exactly when
  /// isDeliverable would say yes. Grounded in the Theorem 2 epidemic
  /// recursion (analysis::stabilityEstimate): confidence grows with the
  /// event's relay age, with observed redundancy (`redundantCopies` =
  /// duplicate copies absorbed beyond the first), and — under a global
  /// clock with a configured ticksPerRound — with raw clock progress
  /// since the event's timestamp. Same contract as isDeliverable: a
  /// function of age/ts/redundancy, never the payload.
  [[nodiscard]] double stabilityEstimate(const Event& event,
                                         std::uint64_t redundantCopies = 0) const {
    const std::uint32_t horizon = stabilityHorizon();
    if (event.ttl > horizon) return 1.0;
    std::uint32_t age = event.ttl;
    if (model_.ticksPerRound != 0) {
      const Timestamp now = peekClock();
      const Timestamp clockAge =
          now > event.ts ? (now - event.ts) / model_.ticksPerRound : 0;
      age = std::max(age, static_cast<std::uint32_t>(
                              std::min<Timestamp>(clockAge, horizon)));
    }
    if (model_.systemSize < 2 || model_.fanout < 1) {
      return static_cast<double>(age) / static_cast<double>(horizon + 1);
    }
    analysis::StabilityInputs inputs;
    inputs.systemSize = model_.systemSize;
    inputs.fanout = model_.fanout;
    inputs.messageLossRate = model_.messageLossRate;
    inputs.age = age;
    inputs.copiesSeen = 1 + redundantCopies;
    return analysis::stabilityEstimate(inputs);
  }

  void setStabilityModel(const StabilityModel& model) { model_ = model; }
  [[nodiscard]] const StabilityModel& stabilityModel() const noexcept { return model_; }

 private:
  StabilityModel model_;
};

/// Algorithm 3: global (a.k.a. physical/synchronized) clock oracle.
/// The time source is injected so the same oracle runs against the
/// discrete simulator's tick counter or a real clock.
class GlobalClockOracle final : public StabilityOracle {
 public:
  using TimeSource = std::function<Timestamp()>;

  GlobalClockOracle(std::uint32_t ttl, TimeSource timeSource)
      : ttl_(ttl), timeSource_(std::move(timeSource)) {
    EPTO_ENSURE_MSG(timeSource_ != nullptr, "global clock oracle needs a time source");
  }

  [[nodiscard]] bool isDeliverable(const Event& event) const override {
    return event.ttl > ttl_;
  }

  [[nodiscard]] Timestamp getClock() override { return timeSource_(); }

  void updateClock(Timestamp /*ts*/) override {
    // Nothing to do: global time advances on its own (Alg. 3).
  }

  [[nodiscard]] Timestamp peekClock() const override { return timeSource_(); }

  [[nodiscard]] std::uint32_t stabilityHorizon() const override { return ttl_; }

  void setHorizon(std::uint32_t ttl) override {
    EPTO_ENSURE_MSG(ttl >= 1, "stability horizon must be at least 1");
    ttl_ = ttl;
  }

 private:
  std::uint32_t ttl_;
  TimeSource timeSource_;
};

/// Algorithm 4: scalar logical clock oracle.
class LogicalClockOracle final : public StabilityOracle {
 public:
  explicit LogicalClockOracle(std::uint32_t ttl, Timestamp initialClock = 0)
      : ttl_(ttl), clock_(initialClock) {}

  [[nodiscard]] bool isDeliverable(const Event& event) const override {
    return event.ttl > ttl_;
  }

  [[nodiscard]] Timestamp getClock() override { return ++clock_; }

  void updateClock(Timestamp ts) override { clock_ = std::max(clock_, ts); }

  [[nodiscard]] Timestamp peekClock() const override { return clock_; }

  [[nodiscard]] std::uint32_t stabilityHorizon() const override { return ttl_; }

  void setHorizon(std::uint32_t ttl) override {
    EPTO_ENSURE_MSG(ttl >= 1, "stability horizon must be at least 1");
    ttl_ = ttl;
  }

  /// Current clock value, for inspection and tests.
  [[nodiscard]] Timestamp current() const noexcept { return clock_; }

 private:
  std::uint32_t ttl_;
  Timestamp clock_;
};

}  // namespace epto

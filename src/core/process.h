// epto::Process — the public facade of the EpTO protocol.
//
// One Process instance embodies one participant: it owns the stability
// oracle matching the configured clock mode, the ordering component and
// the dissemination component, and wires them together per Figure 2 of
// the paper. It remains sans-io; see DisseminationComponent for the
// driving contract.
//
// Typical use:
//
//   auto cfg = epto::Config::forSystemSize(1000, epto::ClockMode::Logical);
//   epto::Process p(myId, cfg, sampler,
//                   [](const epto::Event& e, epto::DeliveryTag) { apply(e); });
//   p.broadcast(payload);                   // when the application sends
//   p.onBall(ball);                         // when the network delivers
//   auto out = p.onRound();                 // every delta time units
//   if (out.ball) for (auto q : out.targets) transport.send(q, out.ball);
#pragma once

#include <memory>

#include "core/config.h"
#include "core/dissemination.h"
#include "core/ordering.h"
#include "core/speculation.h"
#include "core/stability_oracle.h"
#include "core/types.h"
#include "obs/registry.h"

namespace epto {

/// One process's complete metrics surface: the two component counter
/// structs unified with the instantaneous gauges an operator watches
/// (buffer occupancy, relay backlog, delivery frontier lag). Cheap to
/// take — a handful of loads — so every substrate samples it per round.
struct MetricsSnapshot {
  ProcessId node = 0;
  OrderingStats ordering;
  DisseminationStats dissemination;
  std::size_t receivedSetSize = 0;    ///< Alg. 2 `received` occupancy.
  std::size_t pendingRelayCount = 0;  ///< Alg. 1 `nextBall` backlog.
  Timestamp clock = 0;                ///< oracle clock, not advanced.
  Timestamp lastDeliveredTs = 0;      ///< 0 until the first delivery.
  /// clock - lastDeliveredTs, saturating at 0: how far the delivery
  /// frontier trails the process's own notion of now. A growing lag on
  /// one node is the signature of a stalled/perturbed process (§8.2).
  Timestamp lastDeliveredLag = 0;
  std::uint32_t currentTtl = 0;     ///< TTL in force (moves under adaptation).
  std::size_t currentFanout = 0;    ///< K in force (moves under adaptation).
  /// §8.4 speculative-channel counters; all zero with speculation off.
  SpeculationChannel::Stats speculation;

  /// Publish into a registry under `epto_*` instruments labelled
  /// node="<id>". Counters mirror via Counter::set (monotonic per node),
  /// so repeated calls from the owning thread are race-free against a
  /// concurrent scrape. See README "Observability" for the name list.
  void recordTo(obs::Registry& registry) const;
};

class Process {
 public:
  using RoundOutput = DisseminationComponent::RoundOutput;

  /// `sampler` is shared with the driver (e.g. a Cyclon instance that the
  /// driver also pumps); `globalTime` is required for ClockMode::Global
  /// and ignored for ClockMode::Logical. `latency`, when non-null, must
  /// outlive the process and receives the per-delivery latency
  /// decomposition (obs/latency.h); drivers typically share one recorder
  /// across a cluster.
  Process(ProcessId id, const Config& config, std::shared_ptr<PeerSampler> sampler,
          DeliverFn deliver, GlobalClockOracle::TimeSource globalTime = {},
          obs::LatencyRecorder* latency = nullptr);

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  /// EpTO-broadcast. The payload may be null (pure ordering signal).
  /// Returns the created event (id, timestamp, order key). Fast-class
  /// events are additionally eligible for speculative delivery when
  /// Config::speculation is enabled.
  Event broadcast(PayloadPtr payload = {}, QosClass qos = QosClass::Safe);

  /// Install the application's speculative-delivery callbacks. Requires
  /// Config::speculation.enabled; call before the first round.
  void setSpeculationCallbacks(SpeculationCallbacks callbacks);

  /// The speculative channel, or null when speculation is off.
  [[nodiscard]] const SpeculationChannel* speculation() const noexcept {
    return speculation_.get();
  }

  /// Move TTL and fanout online (adapt::FeedbackController). The caller
  /// is responsible for staying inside analysis::lemmaSafeBounds; the
  /// new values take effect from the next round.
  void retune(std::uint32_t ttl, std::size_t fanout);

  /// See DisseminationComponent::startSequenceAt — used when a restarted
  /// incarnation reuses this ProcessId and must not reuse EventIds.
  void startSequenceAt(std::uint32_t first) { dissemination_.startSequenceAt(first); }

  /// See DisseminationComponent::setIncarnation — lineage stamp carried
  /// by every event this process broadcasts.
  void setIncarnation(std::uint16_t incarnation) {
    dissemination_.setIncarnation(incarnation);
  }

  /// Network receive callback.
  void onBall(const Ball& ball) { dissemination_.onBall(ball); }

  /// The periodic round task; call every delta time units.
  RoundOutput onRound() { return dissemination_.onRound(); }

  [[nodiscard]] ProcessId id() const noexcept { return id_; }
  [[nodiscard]] const Config& config() const noexcept { return config_; }
  [[nodiscard]] const OrderingStats& orderingStats() const noexcept {
    return ordering_.stats();
  }
  [[nodiscard]] const DisseminationStats& disseminationStats() const noexcept {
    return dissemination_.stats();
  }
  /// Unified observability snapshot (stats structs + live gauges).
  [[nodiscard]] MetricsSnapshot metricsSnapshot() const;
  /// §8.4: known-but-undelivered events, sorted by order key.
  [[nodiscard]] std::vector<Event> pendingEvents() const { return ordering_.pendingEvents(); }
  [[nodiscard]] std::optional<OrderKey> lastDelivered() const {
    return ordering_.lastDelivered();
  }
  [[nodiscard]] const StabilityOracle& oracle() const noexcept { return *oracle_; }
  [[nodiscard]] bool checkInvariants() const { return ordering_.checkInvariants(); }

 private:
  static std::unique_ptr<StabilityOracle> makeOracle(const Config& config,
                                                     GlobalClockOracle::TimeSource globalTime);

  ProcessId id_;
  Config config_;
  std::shared_ptr<PeerSampler> sampler_;
  std::unique_ptr<StabilityOracle> oracle_;
  /// Constructed before ordering_, which holds a pointer to it.
  std::unique_ptr<SpeculationChannel> speculation_;
  OrderingComponent ordering_;
  DisseminationComponent dissemination_;
};

}  // namespace epto

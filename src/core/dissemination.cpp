#include "core/dissemination.h"

#include <algorithm>
#include <atomic>
#include <iterator>
#include <memory>

#include "obs/trace.h"
#include "util/ensure.h"

namespace epto {

namespace {

/// Pooled Ball buffers kept per component. Small: a slot is only held
/// while some consumer (network in flight, runtime mailbox) retains the
/// ball, and one round produces one ball.
constexpr std::size_t kBallPoolSlots = 4;

}  // namespace

DisseminationComponent::DisseminationComponent(ProcessId self, Options options,
                                               StabilityOracle& oracle, PeerSampler& sampler,
                                               OrderingComponent& ordering)
    : self_(self), options_(options), oracle_(oracle), sampler_(sampler), ordering_(ordering) {
  EPTO_ENSURE_MSG(options_.fanout >= 1, "fanout K must be at least 1");
  EPTO_ENSURE_MSG(options_.ttl >= 1, "TTL must be at least 1");
}

void DisseminationComponent::startSequenceAt(std::uint32_t first) {
  EPTO_ENSURE_MSG(stats_.broadcasts == 0,
                  "sequence fast-forward only valid before the first broadcast");
  EPTO_ENSURE_MSG(first >= nextSequence_, "sequence counter cannot move backwards");
  nextSequence_ = first;
}

void DisseminationComponent::retune(std::size_t fanout, std::uint32_t ttl) {
  EPTO_ENSURE_MSG(fanout >= 1, "fanout K must be at least 1");
  EPTO_ENSURE_MSG(ttl >= 1, "TTL must be at least 1");
  options_.fanout = fanout;
  options_.ttl = ttl;
}

void DisseminationComponent::setIncarnation(std::uint16_t incarnation) {
  EPTO_ENSURE_MSG(stats_.broadcasts == 0,
                  "incarnation only settable before the first broadcast");
  incarnation_ = incarnation;
}

Event DisseminationComponent::broadcast(PayloadPtr payload, QosClass qos) {
  // Alg. 1 lines 6-10.
  Event event;
  event.ts = oracle_.getClock();
  event.ttl = 0;
  event.id = EventId{self_, nextSequence_++};
  event.originRound = static_cast<std::uint32_t>(stats_.rounds);
  event.hop = 0;
  event.incarnation = incarnation_;
  event.qos = qos;
  event.payload = std::move(payload);
  // Own sequence numbers ascend, so the insertion point is almost always
  // the tail; the id-equal branch mirrors the former insert_or_assign
  // (unreachable unless an id is reissued, which startSequenceAt forbids).
  const auto pos = std::lower_bound(
      nextBall_.begin(), nextBall_.end(), event.id,
      [](const Event& e, const EventId& id) { return e.id < id; });
  if (pos != nextBall_.end() && pos->id == event.id) {
    *pos = event;
  } else {
    nextBall_.insert(pos, event);
  }
  ++stats_.broadcasts;
  EPTO_TRACE_EVENT(Broadcast, .node = self_, .round = stats_.rounds,
                   .event = event.id, .ts = event.ts);
  return event;
}

void DisseminationComponent::onBall(const Ball& ball) {
  // Alg. 1 lines 11-19.
  ++stats_.ballsReceived;
  ++ballsThisRound_;
  bool sorted = true;
  Timestamp maxTs = 0;
  std::uint16_t maxHop = 0;
  for (std::size_t i = 0; i < ball.size(); ++i) {
    const Event& event = ball[i];
    if (i != 0 && event.id < ball[i - 1].id) sorted = false;
    if (event.ts > maxTs) maxTs = event.ts;
    if (event.hop > maxHop) maxHop = event.hop;
    if (event.ttl >= options_.ttl) {
      // A copy at the end of its relay life; it is neither relayed nor
      // ordered (see DESIGN.md: faithful to the pseudocode, and exactly
      // the loss the Theorem 2 ball-count analysis already absorbs).
      ++stats_.eventsExpired;
      EPTO_TRACE_EVENT(Drop, .node = self_, .round = stats_.rounds,
                       .event = event.id, .ts = event.ts, .ttl = event.ttl,
                       .detail = static_cast<std::uint8_t>(obs::DropReason::Expired));
    }
  }
  EPTO_TRACE_EVENT(BallReceived, .node = self_, .round = stats_.rounds,
                   .ttl = maxHop, .size = ball.size(), .aux = ballsThisRound_);
  // The clock update is a max-fold (StabilityOracle contract), so one
  // virtual call per ball replaces one per event.
  if (!ball.empty()) oracle_.updateClock(maxTs);

  // Every sender emits id-sorted balls, so absorption is one linear
  // merge. Arbitrary callers (tests and fuzzers feed hand-built balls)
  // hit the sort fallback instead; stable_sort keeps the first copy of a
  // duplicated id first, matching the former hash-map try_emplace
  // semantics.
  if (sorted) {
    mergeSortedRun(ball.data(), ball.size());
  } else {
    sortScratch_.assign(ball.begin(), ball.end());
    std::stable_sort(sortScratch_.begin(), sortScratch_.end(),
                     [](const Event& a, const Event& b) { return a.id < b.id; });
    mergeSortedRun(sortScratch_.data(), sortScratch_.size());
    sortScratch_.clear();
  }
}

void DisseminationComponent::mergeSortedRun(const Event* run, std::size_t count) {
  // Duplicates keep the existing copy with the max ttl of both (Alg. 1
  // l.15-18: the oldest copy needs the fewest further relays); expired
  // run entries (already counted by onBall) are skipped. Ids compare as
  // one packed 64-bit word throughout.
  const std::uint32_t ttlLimit = options_.ttl;
  std::size_t j = 0;
  while (j < count && run[j].ttl >= ttlLimit) ++j;
  if (j >= count) return;

  // Phase 1 — in place. Balls received later in a round mostly repeat
  // what earlier balls carried, with the same ttl: then this loop only
  // reads, and the merge costs no moves at all. It exits at the first
  // id the run genuinely inserts.
  std::size_t i = 0;
  const std::size_t n = nextBall_.size();
  std::uint64_t runId = run[j].id.packed();
  while (true) {
    while (i < n && nextBall_[i].id.packed() < runId) ++i;
    if (i == n || runId < nextBall_[i].id.packed()) break;
    if (run[j].ttl > nextBall_[i].ttl) nextBall_[i].ttl = run[j].ttl;
    do {
      ++j;
    } while (j < count && run[j].ttl >= ttlLimit);
    if (j >= count) return;
    runId = run[j].id.packed();
  }

  if (i == n) {
    // Pure append: every remaining live id sorts after the current tail
    // (run-internal duplicates fold via the back check).
    for (; j < count; ++j) {
      if (run[j].ttl >= ttlLimit) continue;
      if (!nextBall_.empty() && nextBall_.back().id == run[j].id) {
        if (run[j].ttl > nextBall_.back().ttl) nextBall_.back().ttl = run[j].ttl;
      } else {
        nextBall_.push_back(run[j]);
        EPTO_TRACE_EVENT(FirstSeen, .node = self_, .round = stats_.rounds,
                         .event = run[j].id, .ts = run[j].ts, .ttl = run[j].ttl,
                         .size = oracle_.peekClock(), .aux = run[j].hop);
      }
    }
    return;
  }

  // Phase 2 — merge backward in place. Count the distinct live new ids
  // first (reads only), grow the buffer by exactly that, then write each
  // surviving element once from the top; the prefix [0, i) is never
  // touched and no scratch copy is made.
  std::size_t extra = 0;
  {
    std::size_t a = i;
    std::size_t jj = j;
    std::uint64_t prev = 0;
    bool havePrev = false;
    while (jj < count) {
      if (run[jj].ttl < ttlLimit) {
        const std::uint64_t id = run[jj].id.packed();
        while (a < n && nextBall_[a].id.packed() < id) ++a;
        const bool dupExisting = a < n && nextBall_[a].id.packed() == id;
        if (!dupExisting && !(havePrev && prev == id)) ++extra;
        prev = id;
        havePrev = true;
      }
      ++jj;
    }
  }
  nextBall_.resize(n + extra);
  std::size_t w = n + extra;  // one past the write position
  std::size_t a = n;          // one past the existing cursor (floor i)
  std::size_t jj = count;     // one past the run cursor (floor j)
  while (true) {
    while (jj > j && run[jj - 1].ttl >= ttlLimit) --jj;
    if (jj == j) break;
    // Gather the run's group of copies of one id: max ttl of the live
    // copies, represented by the earliest (first-arrived) copy.
    const std::uint64_t id = run[jj - 1].id.packed();
    std::uint32_t groupTtl = run[jj - 1].ttl;
    std::size_t firstCopy = jj - 1;
    --jj;
    while (jj > j && run[jj - 1].id.packed() == id) {
      if (run[jj - 1].ttl < ttlLimit) {
        groupTtl = std::max(groupTtl, run[jj - 1].ttl);
        firstCopy = jj - 1;
      }
      --jj;
    }
    // Flush existing events above the group's id, then resolve the group
    // against a matching existing event or insert it fresh.
    while (a > i && nextBall_[a - 1].id.packed() > id) {
      nextBall_[--w] = std::move(nextBall_[--a]);
    }
    if (a > i && nextBall_[a - 1].id.packed() == id) {
      --a;
      if (groupTtl > nextBall_[a].ttl) nextBall_[a].ttl = groupTtl;
      nextBall_[--w] = std::move(nextBall_[a]);
    } else {
      Event fresh = run[firstCopy];
      fresh.ttl = groupTtl;
      EPTO_TRACE_EVENT(FirstSeen, .node = self_, .round = stats_.rounds,
                       .event = fresh.id, .ts = fresh.ts, .ttl = fresh.ttl,
                       .size = oracle_.peekClock(), .aux = fresh.hop);
      nextBall_[--w] = std::move(fresh);
    }
  }
  // Every new id is written at or above its insertion point, so the
  // remaining existing events [i, a) already sit in their final slots.
}

std::shared_ptr<Ball> DisseminationComponent::acquireBall() {
  for (auto& slot : ballPool_) {
    if (slot.use_count() == 1) {
      // Only the pool still references this buffer. The consumers'
      // release decrements are ordered before the count we just read;
      // the acquire fence orders our reuse after them.
      std::atomic_thread_fence(std::memory_order_acquire);
      slot->clear();
      return slot;
    }
  }
  if (ballPool_.size() < kBallPoolSlots) {
    ballPool_.push_back(std::make_shared<Ball>());
    return ballPool_.back();
  }
  return std::make_shared<Ball>();  // every slot still in flight
}

DisseminationComponent::RoundOutput DisseminationComponent::onRound() {
  // Alg. 1 lines 20-28.
  ++stats_.rounds;
  ballsThisRound_ = 0;
  RoundOutput out;

  if (!nextBall_.empty()) {
    auto ball = acquireBall();
    ball->reserve(nextBall_.size());
    // nextBall is maintained id-sorted and duplicate-free, so the
    // emitted ball needs no sort; moving the events hands each payload
    // refcount straight to the ball instead of copy+destroy churn.
    for (Event& event : nextBall_) {
      ++event.ttl;
      // hop counts relay emissions the same way ttl counts rounds, but
      // is never max-merged across copies, so hop <= ttl always holds.
      ++event.hop;
      ball->push_back(std::move(event));
    }
    nextBall_.clear();

    out.targets = sampler_.samplePeers(options_.fanout);
    out.ball = ball;
    stats_.ballsSent += out.targets.size();
    stats_.eventsRelayed += ball->size() * out.targets.size();
    stats_.maxBallSize = std::max(stats_.maxBallSize, ball->size());
    EPTO_TRACE_EVENT(BallSent, .node = self_, .round = stats_.rounds,
                     .size = ball->size(), .aux = out.targets.size());

    // Alg. 1 line 27: hand the round's ball to the ordering component.
    ordering_.orderEvents(*ball);
  } else {
    // The pseudocode skips orderEvents for empty rounds, but received
    // events must age every round for validity/liveness in quiescent
    // systems (DESIGN.md §3); an empty ball makes the call a pure
    // aging-and-delivery step.
    ordering_.orderEvents(Ball{});
  }
  return out;
}

}  // namespace epto

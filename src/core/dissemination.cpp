#include "core/dissemination.h"

#include <algorithm>
#include <memory>

#include "obs/trace.h"
#include "util/ensure.h"

namespace epto {

DisseminationComponent::DisseminationComponent(ProcessId self, Options options,
                                               StabilityOracle& oracle, PeerSampler& sampler,
                                               OrderingComponent& ordering)
    : self_(self), options_(options), oracle_(oracle), sampler_(sampler), ordering_(ordering) {
  EPTO_ENSURE_MSG(options_.fanout >= 1, "fanout K must be at least 1");
  EPTO_ENSURE_MSG(options_.ttl >= 1, "TTL must be at least 1");
}

void DisseminationComponent::startSequenceAt(std::uint32_t first) {
  EPTO_ENSURE_MSG(stats_.broadcasts == 0,
                  "sequence fast-forward only valid before the first broadcast");
  EPTO_ENSURE_MSG(first >= nextSequence_, "sequence counter cannot move backwards");
  nextSequence_ = first;
}

Event DisseminationComponent::broadcast(PayloadPtr payload) {
  // Alg. 1 lines 6-10.
  Event event;
  event.ts = oracle_.getClock();
  event.ttl = 0;
  event.id = EventId{self_, nextSequence_++};
  event.payload = std::move(payload);
  nextBall_.insert_or_assign(event.id, event);
  ++stats_.broadcasts;
  EPTO_TRACE_EVENT(.type = obs::TraceType::Broadcast, .node = self_,
                   .round = stats_.rounds, .event = event.id, .ts = event.ts);
  return event;
}

void DisseminationComponent::onBall(const Ball& ball) {
  // Alg. 1 lines 11-19.
  ++stats_.ballsReceived;
  EPTO_TRACE_EVENT(.type = obs::TraceType::BallReceived, .node = self_,
                   .round = stats_.rounds, .size = ball.size());
  for (const Event& event : ball) {
    if (event.ttl < options_.ttl) {
      auto [it, inserted] = nextBall_.try_emplace(event.id, event);
      if (!inserted && it->second.ttl < event.ttl) {
        it->second.ttl = event.ttl;  // keep the oldest copy, fewer relays
      }
    } else {
      // A copy at the end of its relay life; it is neither relayed nor
      // ordered (see DESIGN.md: faithful to the pseudocode, and exactly
      // the loss the Theorem 2 ball-count analysis already absorbs).
      ++stats_.eventsExpired;
      EPTO_TRACE_EVENT(.type = obs::TraceType::Drop, .node = self_,
                       .round = stats_.rounds, .event = event.id, .ts = event.ts,
                       .ttl = event.ttl,
                       .detail = static_cast<std::uint8_t>(obs::DropReason::Expired));
    }
    oracle_.updateClock(event.ts);  // only meaningful with logical time
  }
}

DisseminationComponent::RoundOutput DisseminationComponent::onRound() {
  // Alg. 1 lines 20-28.
  ++stats_.rounds;
  RoundOutput out;

  if (!nextBall_.empty()) {
    auto ball = std::make_shared<Ball>();
    ball->reserve(nextBall_.size());
    for (auto& [id, event] : nextBall_) {
      ++event.ttl;
      ball->push_back(event);
    }
    // Deterministic ball contents regardless of hash-map iteration order,
    // so simulations replay identically across platforms.
    std::sort(ball->begin(), ball->end(),
              [](const Event& a, const Event& b) { return a.id < b.id; });

    out.targets = sampler_.samplePeers(options_.fanout);
    out.ball = std::move(ball);
    stats_.ballsSent += out.targets.size();
    stats_.eventsRelayed += out.ball->size() * out.targets.size();
    stats_.maxBallSize = std::max(stats_.maxBallSize, out.ball->size());
    EPTO_TRACE_EVENT(.type = obs::TraceType::BallSent, .node = self_,
                     .round = stats_.rounds, .size = out.ball->size(),
                     .aux = out.targets.size());

    // Alg. 1 line 27: hand the round's ball to the ordering component.
    ordering_.orderEvents(*out.ball);
    nextBall_.clear();
  } else {
    // The pseudocode skips orderEvents for empty rounds, but received
    // events must age every round for validity/liveness in quiescent
    // systems (DESIGN.md §3); an empty ball makes the call a pure
    // aging-and-delivery step.
    ordering_.orderEvents(Ball{});
  }
  return out;
}

}  // namespace epto

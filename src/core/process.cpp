#include "core/process.h"

#include "util/ensure.h"

namespace epto {

namespace {
std::shared_ptr<PeerSampler> requireSampler(std::shared_ptr<PeerSampler> sampler) {
  EPTO_ENSURE_MSG(sampler != nullptr, "Process requires a peer sampler");
  return sampler;
}
}  // namespace

std::unique_ptr<StabilityOracle> Process::makeOracle(const Config& config,
                                                     GlobalClockOracle::TimeSource globalTime) {
  if (config.clockMode == ClockMode::Global) {
    EPTO_ENSURE_MSG(globalTime != nullptr,
                    "ClockMode::Global requires a global time source");
    return std::make_unique<GlobalClockOracle>(config.ttl, std::move(globalTime));
  }
  return std::make_unique<LogicalClockOracle>(config.ttl);
}

Process::Process(ProcessId id, const Config& config, std::shared_ptr<PeerSampler> sampler,
                 DeliverFn deliver, GlobalClockOracle::TimeSource globalTime)
    : id_(id),
      config_(config),
      sampler_(requireSampler(std::move(sampler))),
      oracle_(makeOracle(config_, std::move(globalTime))),
      ordering_(
          OrderingComponent::Options{
              .ttl = config_.ttl,
              .tagOutOfOrder = config_.tagOutOfOrder,
              .deliveredRetentionRounds = config_.deliveredRetentionRounds,
          },
          *oracle_, std::move(deliver)),
      dissemination_(id_,
                     DisseminationComponent::Options{
                         .fanout = config_.fanout,
                         .ttl = config_.ttl,
                     },
                     *oracle_, *sampler_, ordering_) {
  config_.validate();
}

Event Process::broadcast(PayloadPtr payload) {
  return dissemination_.broadcast(std::move(payload));
}

}  // namespace epto

#include "core/process.h"

#include <string>

#include "util/ensure.h"

namespace epto {

void MetricsSnapshot::recordTo(obs::Registry& registry) const {
  const obs::Labels labels{{"node", std::to_string(node)}};
  const auto counter = [&](const char* name, std::uint64_t value) {
    registry.counter(name, labels).set(value);
  };
  const auto gauge = [&](const char* name, std::int64_t value) {
    registry.gauge(name, labels).set(value);
  };

  counter("epto_ordering_rounds_total", ordering.rounds);
  counter("epto_ordering_delivered_ordered_total", ordering.deliveredOrdered);
  counter("epto_ordering_delivered_out_of_order_total", ordering.deliveredOutOfOrder);
  counter("epto_ordering_dropped_out_of_order_total", ordering.droppedOutOfOrder);
  counter("epto_ordering_dropped_duplicates_total", ordering.droppedDuplicates);
  counter("epto_ordering_ttl_merges_total", ordering.ttlMerges);
  gauge("epto_ordering_received_high_water", static_cast<std::int64_t>(ordering.maxReceivedSize));

  counter("epto_dissemination_broadcasts_total", dissemination.broadcasts);
  counter("epto_dissemination_balls_received_total", dissemination.ballsReceived);
  counter("epto_dissemination_balls_sent_total", dissemination.ballsSent);
  counter("epto_dissemination_events_relayed_total", dissemination.eventsRelayed);
  counter("epto_dissemination_events_expired_total", dissemination.eventsExpired);
  counter("epto_dissemination_rounds_total", dissemination.rounds);
  gauge("epto_dissemination_max_ball_size", static_cast<std::int64_t>(dissemination.maxBallSize));

  gauge("epto_received_set_size", static_cast<std::int64_t>(receivedSetSize));
  gauge("epto_pending_relay_count", static_cast<std::int64_t>(pendingRelayCount));
  gauge("epto_last_delivered_ts", static_cast<std::int64_t>(lastDeliveredTs));
  gauge("epto_last_delivered_lag", static_cast<std::int64_t>(lastDeliveredLag));

  gauge("epto_adapt_ttl", static_cast<std::int64_t>(currentTtl));
  gauge("epto_adapt_k", static_cast<std::int64_t>(currentFanout));
  counter("epto_spec_speculated_total", speculation.speculated);
  counter("epto_spec_confirmed_total", speculation.confirmed);
  counter("epto_spec_revoked_total", speculation.revoked);
}

namespace {
std::shared_ptr<PeerSampler> requireSampler(std::shared_ptr<PeerSampler> sampler) {
  EPTO_ENSURE_MSG(sampler != nullptr, "Process requires a peer sampler");
  return sampler;
}
}  // namespace

std::unique_ptr<StabilityOracle> Process::makeOracle(const Config& config,
                                                     GlobalClockOracle::TimeSource globalTime) {
  if (config.clockMode == ClockMode::Global) {
    EPTO_ENSURE_MSG(globalTime != nullptr,
                    "ClockMode::Global requires a global time source");
    return std::make_unique<GlobalClockOracle>(config.ttl, std::move(globalTime));
  }
  return std::make_unique<LogicalClockOracle>(config.ttl);
}

Process::Process(ProcessId id, const Config& config, std::shared_ptr<PeerSampler> sampler,
                 DeliverFn deliver, GlobalClockOracle::TimeSource globalTime,
                 obs::LatencyRecorder* latency)
    : id_(id),
      config_(config),
      sampler_(requireSampler(std::move(sampler))),
      oracle_(makeOracle(config_, std::move(globalTime))),
      speculation_(config_.speculation.enabled
                       ? std::make_unique<SpeculationChannel>(
                             SpeculationChannel::Options{
                                 .confidenceThreshold =
                                     config_.speculation.confidenceThreshold,
                                 .maxWindow = config_.speculation.maxWindow,
                                 .self = id,
                             },
                             SpeculationCallbacks{})
                       : nullptr),
      ordering_(
          OrderingComponent::Options{
              .ttl = config_.ttl,
              .tagOutOfOrder = config_.tagOutOfOrder,
              .deliveredRetentionRounds = config_.deliveredRetentionRounds,
              .self = id_,
              .latency = latency,
              .speculation = speculation_.get(),
          },
          *oracle_, std::move(deliver)),
      dissemination_(id_,
                     DisseminationComponent::Options{
                         .fanout = config_.fanout,
                         .ttl = config_.ttl,
                     },
                     *oracle_, *sampler_, ordering_) {
  config_.validate();
  // The estimate's K defaults to the configured fanout when the caller
  // supplied a model without one (hand-built Configs).
  StabilityModel model = config_.stabilityModel;
  if (model.fanout == 0) model.fanout = config_.fanout;
  oracle_->setStabilityModel(model);
}

Event Process::broadcast(PayloadPtr payload, QosClass qos) {
  return dissemination_.broadcast(std::move(payload), qos);
}

void Process::setSpeculationCallbacks(SpeculationCallbacks callbacks) {
  EPTO_ENSURE_MSG(speculation_ != nullptr,
                  "speculation callbacks need Config::speculation.enabled");
  speculation_->setCallbacks(std::move(callbacks));
}

void Process::retune(std::uint32_t ttl, std::size_t fanout) {
  EPTO_ENSURE_MSG(ttl >= 1 && fanout >= 1, "retune needs ttl >= 1 and fanout >= 1");
  config_.ttl = ttl;
  config_.fanout = fanout;
  oracle_->setHorizon(ttl);
  dissemination_.retune(fanout, ttl);
  StabilityModel model = oracle_->stabilityModel();
  model.fanout = fanout;
  oracle_->setStabilityModel(model);
}

MetricsSnapshot Process::metricsSnapshot() const {
  MetricsSnapshot snap;
  snap.node = id_;
  snap.ordering = ordering_.stats();
  snap.dissemination = dissemination_.stats();
  snap.receivedSetSize = ordering_.receivedSize();
  snap.pendingRelayCount = dissemination_.pendingRelayCount();
  snap.clock = oracle_->peekClock();
  if (const auto last = ordering_.lastDelivered(); last.has_value()) {
    snap.lastDeliveredTs = last->ts;
    snap.lastDeliveredLag = snap.clock > last->ts ? snap.clock - last->ts : 0;
  }
  snap.currentTtl = config_.ttl;
  snap.currentFanout = config_.fanout;
  if (speculation_ != nullptr) snap.speculation = speculation_->stats();
  return snap;
}

}  // namespace epto

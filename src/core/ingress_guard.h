// Ingress hardening for decoded balls — the honest-node half of the
// adversary model (src/fault/adversary.h is the attacker half).
//
// A decoded ball is attacker-controlled input: the codec only guarantees
// the frame parsed, not that its fields describe anything an honest
// process could have emitted. The guard sits between decode and the
// protocol (sim: SimCluster's onMessage; runtime: UdpCluster's
// enqueueBallFrame) and applies cheap structural checks:
//
//   Ball-level rejection — the whole ball is dropped. These causes can
//   only arise from a faulty or malicious sender, never from an honest
//   relay in a uniformly guarded cluster:
//     * lineage   — some event has hop > ttl (hop counts emissions along
//                   this copy's path, so it can never exceed the relay
//                   round count) or ttl beyond the configured protocol
//                   TTL;
//     * origin_round — an originRound far beyond any round the cluster
//                   could have reached;
//     * rate      — the sender exceeded the per-round ball budget
//                   (honest processes send O(1) balls per round);
//     * unknown_source — an event claims a source id outside the known
//                   membership (static-membership deployments only).
//
//   Event-level filtering — the offending event is removed, the rest of
//   the ball survives. These causes are observational, not provable
//   sender misbehaviour: an honest relay that accepted variant A of an
//   equivocated event legitimately forwards it, so rejecting its whole
//   ball would punish the honest path:
//     * equivocation — an EventId reappearing with a different
//                   (timestamp, payload-hash) fingerprint than first
//                   seen; first variant wins, later divergents drop;
//     * incarnation — an EventId reappearing with a lower incarnation
//                   than already recorded (a restarted source supersedes
//                   its pre-restart duplicates, never the reverse).
//
// Deliberately NOT per-source incarnation watermarks: a crash/restart
// leaves legitimate pre-restart events circulating (exactly the
// udp_crash_restart chaos scenario), and a watermark would destroy their
// liveness. See DESIGN.md §14 for the full defended/not-defended table.
//
// The guard is single-threaded (one per node, used on that node's
// thread/strand) and bounded-memory: the equivocation fingerprint table
// uses two rotating generations, so memory is O(capacity) regardless of
// run length.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "core/types.h"
#include "obs/registry.h"

namespace epto::core {

struct IngressGuardOptions {
  /// Protocol TTL; events claiming ttl beyond this are forged. 0 disables
  /// the ttl ceiling (hop <= ttl is always enforced).
  std::uint32_t maxTtl = 0;
  /// Upper bound on plausible originRound values. Generous by default:
  /// no experiment in this repo runs remotely close to 2^20 rounds.
  std::uint32_t maxOriginRound = 1u << 20;
  /// Balls accepted per sender per round window; 0 disables rate caps.
  /// Honest EpTO senders emit one ball per round, but relays plus
  /// retransmission jitter make a small multiple the safe floor.
  std::uint32_t maxBallsPerSenderPerRound = 64;
  /// Known membership size for the unknown_source check; 0 disables it
  /// (dynamic-membership deployments cannot enumerate valid sources).
  std::size_t knownSources = 0;
  /// Fingerprint entries per generation; two generations are live at
  /// once, so worst-case memory is 2x this.
  std::size_t fingerprintCapacity = 1u << 16;
};

/// Why ingress dropped a ball or filtered an event.
enum class IngressCause : std::uint8_t {
  None,
  Lineage,
  OriginRound,
  Rate,
  UnknownSource,
  Equivocation,
  Incarnation,
};

[[nodiscard]] const char* ingressCauseLabel(IngressCause cause) noexcept;

struct IngressStats {
  std::uint64_t ballsInspected = 0;
  std::uint64_t ballsRejectedLineage = 0;
  std::uint64_t ballsRejectedOriginRound = 0;
  std::uint64_t ballsRejectedRate = 0;
  std::uint64_t ballsRejectedUnknownSource = 0;
  std::uint64_t eventsFilteredEquivocation = 0;
  std::uint64_t eventsFilteredIncarnation = 0;
  std::uint64_t fingerprintRotations = 0;

  [[nodiscard]] std::uint64_t ballsRejected() const noexcept {
    return ballsRejectedLineage + ballsRejectedOriginRound + ballsRejectedRate +
           ballsRejectedUnknownSource;
  }
  [[nodiscard]] std::uint64_t eventsFiltered() const noexcept {
    return eventsFilteredEquivocation + eventsFilteredIncarnation;
  }
};

class IngressGuard {
 public:
  explicit IngressGuard(IngressGuardOptions options);

  struct Result {
    /// False → drop the whole ball; `cause` says why.
    bool admitted = true;
    IngressCause cause = IngressCause::None;
    /// Events removed by event-level filtering (admitted balls only).
    std::size_t filtered = 0;
    /// Engaged only when filtered > 0: the surviving events. The common
    /// clean path leaves this empty so admitted balls are zero-copy.
    std::optional<Ball> kept;
  };

  /// Screen one decoded ball from `senderKey` (ProcessId in the sim, UDP
  /// source port in the runtime — any stable per-channel identity works).
  [[nodiscard]] Result inspect(std::uint64_t senderKey, const Ball& ball);

  /// Advance the rate window; call once per protocol round.
  void onRound();

  [[nodiscard]] const IngressStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const IngressGuardOptions& options() const noexcept {
    return options_;
  }

  /// Publish `epto_ingress_rejected_total{cause=...}` — ball counts for
  /// the ball-level causes, event counts for the event-level ones.
  void recordTo(obs::Registry& registry) const;

 private:
  struct Fingerprint {
    std::uint64_t digest = 0;      ///< mix of ts and payload hash.
    std::uint16_t incarnation = 0;
  };
  using FingerprintMap =
      std::unordered_map<EventId, Fingerprint, EventIdHash>;

  /// Ball-level screen; returns the first provable-misbehaviour cause.
  [[nodiscard]] IngressCause screenBall(std::uint64_t senderKey, const Ball& ball);
  /// Event-level filter; IngressCause::None admits the event.
  [[nodiscard]] IngressCause filterEvent(const Event& event);
  [[nodiscard]] Fingerprint* findFingerprint(const EventId& id);
  void recordFingerprint(const EventId& id, Fingerprint fp);

  IngressGuardOptions options_;
  IngressStats stats_;
  FingerprintMap current_;
  FingerprintMap previous_;
  std::unordered_map<std::uint64_t, std::uint32_t> ballsThisRound_;
};

/// FNV-1a over the payload bytes; the cheap content digest used by the
/// equivocation fingerprint (not collision-resistant against an adaptive
/// attacker — acceptable, a collision only suppresses detection of one
/// equivocation pair, it cannot forge a rejection of honest traffic).
[[nodiscard]] std::uint64_t payloadDigest(const PayloadPtr& payload) noexcept;

/// Publish guard verdicts (this guard's, or an aggregate across guards)
/// as `epto_ingress_rejected_total{cause=...}` plus the inspected total.
void recordIngressStats(const IngressStats& stats, obs::Registry& registry);

}  // namespace epto::core

// EpTO ordering component — paper Algorithm 2, plus the tagged-delivery
// (§8.2) and delivery-tradeoff (§8.4) extensions.
//
// The ordering component receives, once per round, the ball assembled by
// the dissemination component. It ages known events, absorbs the new ones,
// and delivers to the application every event that (a) the stability
// oracle declares deliverable and (b) cannot be preceded by any event
// still queued — all in strict total order by OrderKey.
//
// Deviations from the pseudocode, argued in DESIGN.md §3:
//   * comparisons use the full OrderKey (ts, source, seq) instead of the
//     bare timestamp, which removes an ordering corner case under
//     timestamp ties and is otherwise identical;
//   * orderEvents() must be invoked every round even when the ball is
//     empty — Alg. 1 line 27 only calls it when nextBall is non-empty,
//     but the validity proof (and liveness in a quiescent system)
//     requires received events to age every round;
//   * the `delivered` set is only materialized when tagged delivery is
//     enabled, and is pruned after a configurable retention window. For
//     plain EpTO the `key <= lastDelivered` filter already rejects every
//     duplicate, so the set the paper carries is redundant.
//
// Hot-path engineering (DESIGN.md §11): the pseudocode's per-round work
// is O(|received|) three times over — age every event, scan every event
// for deliverability, sort the deliverable set. This implementation is
// sublinear in the steady-state buffer:
//   * epoch-based aging — each event stores the round it was (virtually)
//     born in (birthRound = currentRound - ttl at absorption) and its
//     current ttl is derived as currentRound - birthRound, so a new round
//     ages every event at once for free;
//   * order-statistics index — `received` is a std::map keyed by
//     OrderKey. Walking from begin() visits events in delivery order, and
//     the first non-deliverable event IS Alg. 2's minQueued bound, so
//     deliverBatch pops exactly the deliverable prefix in
//     O((delivered + 1) · log n) with no scan and no sort. The OrderKey
//     embeds the EventId, and an event's key never changes between copies
//     (§2 non-Byzantine fault model: content is a function of the id), so
//     the same index also answers duplicate lookups;
//   * duplicate fast path — a hash index keyed by the packed 64-bit
//     EventId shadows the ordered map. Most absorbed events are repeats
//     (each event arrives ~K times per relay round); a repeat resolves to
//     its Pending entry in O(1) and, being still queued, is by invariant
//     past the delivery frontier — no OrderKey comparison, no tree walk.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/stability_oracle.h"
#include "core/types.h"

namespace epto::obs {
class LatencyRecorder;
}  // namespace epto::obs

namespace epto {

class SpeculationChannel;

/// Counters exposed for tests, benches and operational visibility.
struct OrderingStats {
  std::uint64_t rounds = 0;               ///< orderEvents invocations.
  std::uint64_t deliveredOrdered = 0;     ///< normal EpTO-deliver count.
  std::uint64_t deliveredOutOfOrder = 0;  ///< §8.2 tagged deliveries.
  std::uint64_t droppedOutOfOrder = 0;    ///< late events dropped (no tagging).
  std::uint64_t droppedDuplicates = 0;    ///< duplicates of past deliveries.
  std::uint64_t ttlMerges = 0;            ///< max-merge of a known event's ttl.
  std::size_t maxReceivedSize = 0;        ///< high-water mark of `received`.
};

class OrderingComponent {
 public:
  struct Options {
    /// Stability horizon; events become deliverable once ttl > ttl.
    std::uint32_t ttl = 0;
    /// §8.2: deliver late events tagged DeliveryTag::OutOfOrder instead
    /// of silently dropping them.
    bool tagOutOfOrder = false;
    /// Rounds a delivered event id is remembered for duplicate
    /// suppression of tagged deliveries; 0 keeps ids forever. Only used
    /// when tagOutOfOrder is set — see header comment. The window must
    /// cover the longest possible copy lifetime: a relay chain has at
    /// most TTL+1 hops, and each hop can add up to one round of queueing
    /// plus the network's full latency tail, so use roughly
    /// (TTL + 2) * (ceil(maxLatency / delta) + 1) rounds.
    std::uint32_t deliveredRetentionRounds = 0;
    /// Owning process id, used only to label trace events.
    ProcessId self = 0;
    /// Optional latency-decomposition sink: every ordered delivery
    /// reports its dissemination/stability-wait/ordering-wait split
    /// (obs/latency.h). Null costs one predictable branch per delivery.
    obs::LatencyRecorder* latency = nullptr;
    /// §8.4 speculative-delivery channel (core/speculation.h); null =
    /// off. When set, each round additionally offers Fast-class events
    /// beyond the committed frontier, in key order, to the channel with
    /// their stability confidence, and notifies it of fresh absorptions
    /// (revocation) and committed deliveries (confirmation). The
    /// committed total-order path is identical either way.
    SpeculationChannel* speculation = nullptr;
  };

  /// The oracle must outlive the component. Deliveries are synchronous,
  /// from inside orderEvents().
  OrderingComponent(Options options, const StabilityOracle& oracle, DeliverFn deliver);

  /// One round of Algorithm 2. `ball` may be empty (idle round).
  void orderEvents(const Ball& ball);

  /// §8.4 delivery-tradeoff exposure: snapshot of known-but-undelivered
  /// events (their ttl is the age in rounds; feed it to
  /// analysis::estimatedStability for a deliverability probability).
  [[nodiscard]] std::vector<Event> pendingEvents() const;

  [[nodiscard]] const OrderingStats& stats() const noexcept { return stats_; }

  /// Current `received`-set size (the buffer-occupancy gauge).
  [[nodiscard]] std::size_t receivedSize() const noexcept { return received_.size(); }

  /// Key of the most recently delivered event, if any.
  [[nodiscard]] std::optional<OrderKey> lastDelivered() const noexcept {
    return lastDelivered_;
  }

  /// Internal-invariant check used by tests: every queued event must sort
  /// after the last delivered event. Returns false on violation. O(1):
  /// the index is ordered, so only the smallest key needs checking.
  [[nodiscard]] bool checkInvariants() const;

 private:
  /// One known-but-undelivered event. The id/ts live in the map key; the
  /// ttl is derived from birthRound, so only the payload is carried.
  struct Pending {
    std::int64_t birthRound = 0;  ///< currentRound - ttl at absorption.
    /// Oracle clock at the round this node first absorbed the event —
    /// the boundary between dissemination time and stability wait.
    Timestamp firstSeenClock = 0;
    /// Duplicate copies absorbed beyond the first — the relay-redundancy
    /// evidence behind the per-event stability estimate.
    std::uint32_t copies = 0;
    QosClass qos = QosClass::Safe;
    PayloadPtr payload;
  };

  /// Round-start oracle clocks for the last kRoundClockWindow rounds
  /// (indexed round % window). Lets the latency decomposition look up
  /// the clock at the round an event crossed the stability horizon
  /// without any per-round bookkeeping beyond one store.
  static constexpr std::size_t kRoundClockWindow = 512;

  void absorb(const Event& event);
  void deliverBatch();
  /// Offer Fast-class events beyond the speculation frontier to the
  /// channel, in key order, until the first refusal. Only called when
  /// Options::speculation is set.
  void speculateAhead();
  /// Clock at the round `birthRound + horizon + 1` (when the event
  /// became deliverable); falls back to `fallback` when that round has
  /// already left the clock window.
  [[nodiscard]] Timestamp stableClockAt(std::int64_t birthRound,
                                        Timestamp fallback) const noexcept;
  /// Reconstruct the wire Event for a map entry at the current round.
  [[nodiscard]] Event materialize(const OrderKey& key, const Pending& pending) const;
  [[nodiscard]] std::uint32_t derivedTtl(std::int64_t birthRound) const noexcept {
    return static_cast<std::uint32_t>(static_cast<std::int64_t>(stats_.rounds) - birthRound);
  }
  void rememberDelivered(const EventId& id);
  [[nodiscard]] bool alreadyDelivered(const EventId& id) const;
  void pruneDeliveredMemory();

  Options options_;
  const StabilityOracle& oracle_;
  DeliverFn deliver_;

  /// Alg. 2 `received`: known but not yet delivered events, indexed by
  /// their total-order key (see header comment).
  std::map<OrderKey, Pending> received_;
  /// Duplicate fast path: packed EventId -> the entry in received_.
  /// std::map nodes are stable, so the pointer survives other mutations;
  /// absorb() and deliverBatch() keep the two containers in lock step.
  std::unordered_map<std::uint64_t, Pending*> receivedIndex_;
  /// Alg. 2 `lastDeliveredTs`, strengthened to the full order key.
  std::optional<OrderKey> lastDelivered_;
  /// Delivered-id memory (only populated when tagging): id -> round
  /// at which it was delivered, for retention-window pruning.
  std::unordered_map<EventId, std::uint64_t, EventIdHash> deliveredMemory_;

  /// See kRoundClockWindow. Entry r % window is valid iff round r is
  /// within the last window rounds; orderEvents refreshes the current
  /// round's slot unconditionally (one peekClock + one store per round).
  std::array<Timestamp, kRoundClockWindow> roundClocks_{};
  /// roundClocks_ entry for the round in progress (the absorb loop reads
  /// it once per fresh event instead of re-asking the oracle).
  Timestamp currentRoundClock_ = 0;

  OrderingStats stats_;
};

}  // namespace epto

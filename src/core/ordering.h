// EpTO ordering component — paper Algorithm 2, plus the tagged-delivery
// (§8.2) and delivery-tradeoff (§8.4) extensions.
//
// The ordering component receives, once per round, the ball assembled by
// the dissemination component. It ages known events, absorbs the new ones,
// and delivers to the application every event that (a) the stability
// oracle declares deliverable and (b) cannot be preceded by any event
// still queued — all in strict total order by OrderKey.
//
// Deviations from the pseudocode, argued in DESIGN.md §3:
//   * comparisons use the full OrderKey (ts, source, seq) instead of the
//     bare timestamp, which removes an ordering corner case under
//     timestamp ties and is otherwise identical;
//   * orderEvents() must be invoked every round even when the ball is
//     empty — Alg. 1 line 27 only calls it when nextBall is non-empty,
//     but the validity proof (and liveness in a quiescent system)
//     requires received events to age every round;
//   * the `delivered` set is only materialized when tagged delivery is
//     enabled, and is pruned after a configurable retention window. For
//     plain EpTO the `key <= lastDelivered` filter already rejects every
//     duplicate, so the set the paper carries is redundant.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/stability_oracle.h"
#include "core/types.h"

namespace epto {

/// Counters exposed for tests, benches and operational visibility.
struct OrderingStats {
  std::uint64_t rounds = 0;               ///< orderEvents invocations.
  std::uint64_t deliveredOrdered = 0;     ///< normal EpTO-deliver count.
  std::uint64_t deliveredOutOfOrder = 0;  ///< §8.2 tagged deliveries.
  std::uint64_t droppedOutOfOrder = 0;    ///< late events dropped (no tagging).
  std::uint64_t droppedDuplicates = 0;    ///< duplicates of past deliveries.
  std::uint64_t ttlMerges = 0;            ///< max-merge of a known event's ttl.
  std::size_t maxReceivedSize = 0;        ///< high-water mark of `received`.
};

class OrderingComponent {
 public:
  struct Options {
    /// Stability horizon; events become deliverable once ttl > ttl.
    std::uint32_t ttl = 0;
    /// §8.2: deliver late events tagged DeliveryTag::OutOfOrder instead
    /// of silently dropping them.
    bool tagOutOfOrder = false;
    /// Rounds a delivered event id is remembered for duplicate
    /// suppression of tagged deliveries; 0 keeps ids forever. Only used
    /// when tagOutOfOrder is set — see header comment. The window must
    /// cover the longest possible copy lifetime: a relay chain has at
    /// most TTL+1 hops, and each hop can add up to one round of queueing
    /// plus the network's full latency tail, so use roughly
    /// (TTL + 2) * (ceil(maxLatency / delta) + 1) rounds.
    std::uint32_t deliveredRetentionRounds = 0;
    /// Owning process id, used only to label trace events.
    ProcessId self = 0;
  };

  /// The oracle must outlive the component. Deliveries are synchronous,
  /// from inside orderEvents().
  OrderingComponent(Options options, const StabilityOracle& oracle, DeliverFn deliver);

  /// One round of Algorithm 2. `ball` may be empty (idle round).
  void orderEvents(const Ball& ball);

  /// §8.4 delivery-tradeoff exposure: snapshot of known-but-undelivered
  /// events (their ttl is the age in rounds; feed it to
  /// analysis::estimatedStability for a deliverability probability).
  [[nodiscard]] std::vector<Event> pendingEvents() const;

  [[nodiscard]] const OrderingStats& stats() const noexcept { return stats_; }

  /// Current `received`-set size (the buffer-occupancy gauge).
  [[nodiscard]] std::size_t receivedSize() const noexcept { return received_.size(); }

  /// Key of the most recently delivered event, if any.
  [[nodiscard]] std::optional<OrderKey> lastDelivered() const noexcept {
    return lastDelivered_;
  }

  /// Internal-invariant check used by tests: every queued event must sort
  /// after the last delivered event. Returns false on violation.
  [[nodiscard]] bool checkInvariants() const;

 private:
  void absorb(const Event& event);
  void deliverBatch();
  void rememberDelivered(const EventId& id);
  [[nodiscard]] bool alreadyDelivered(const EventId& id) const;
  void pruneDeliveredMemory();

  Options options_;
  const StabilityOracle& oracle_;
  DeliverFn deliver_;

  /// Alg. 2 `received`: known but not yet delivered events, by id.
  std::unordered_map<EventId, Event, EventIdHash> received_;
  /// Alg. 2 `lastDeliveredTs`, strengthened to the full order key.
  std::optional<OrderKey> lastDelivered_;
  /// Delivered-id memory (only populated when tagging): id -> round
  /// at which it was delivered, for retention-window pruning.
  std::unordered_map<EventId, std::uint64_t, EventIdHash> deliveredMemory_;

  OrderingStats stats_;
};

}  // namespace epto

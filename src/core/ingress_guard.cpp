#include "core/ingress_guard.h"

#include "util/ensure.h"
#include "util/rng.h"

namespace epto::core {

const char* ingressCauseLabel(IngressCause cause) noexcept {
  switch (cause) {
    case IngressCause::None: return "none";
    case IngressCause::Lineage: return "lineage";
    case IngressCause::OriginRound: return "origin_round";
    case IngressCause::Rate: return "rate";
    case IngressCause::UnknownSource: return "unknown_source";
    case IngressCause::Equivocation: return "equivocation";
    case IngressCause::Incarnation: return "incarnation";
  }
  return "unknown";
}

std::uint64_t payloadDigest(const PayloadPtr& payload) noexcept {
  std::uint64_t hash = 0xCBF29CE484222325ULL;  // FNV-1a offset basis.
  if (payload) {
    for (const std::byte b : *payload) {
      hash ^= static_cast<std::uint64_t>(b);
      hash *= 0x100000001B3ULL;  // FNV prime.
    }
  }
  return hash;
}

IngressGuard::IngressGuard(IngressGuardOptions options) : options_(options) {
  EPTO_ENSURE_MSG(options_.fingerprintCapacity >= 1,
                  "IngressGuard needs at least one fingerprint slot");
}

IngressGuard::Fingerprint* IngressGuard::findFingerprint(const EventId& id) {
  if (auto it = current_.find(id); it != current_.end()) return &it->second;
  if (auto it = previous_.find(id); it != previous_.end()) {
    // Promote so a hot id survives the next rotation.
    return &current_.emplace(id, it->second).first->second;
  }
  return nullptr;
}

void IngressGuard::recordFingerprint(const EventId& id, Fingerprint fp) {
  if (current_.size() >= options_.fingerprintCapacity) {
    previous_ = std::move(current_);
    current_.clear();
    stats_.fingerprintRotations++;
  }
  current_[id] = fp;
}

IngressCause IngressGuard::screenBall(std::uint64_t senderKey, const Ball& ball) {
  if (options_.maxBallsPerSenderPerRound > 0) {
    const std::uint32_t count = ++ballsThisRound_[senderKey];
    if (count > options_.maxBallsPerSenderPerRound) return IngressCause::Rate;
  }
  for (const Event& event : ball) {
    const bool ttlForged =
        options_.maxTtl > 0 && event.ttl > options_.maxTtl;
    if (event.hop > event.ttl || ttlForged) return IngressCause::Lineage;
    if (event.originRound > options_.maxOriginRound) {
      return IngressCause::OriginRound;
    }
    if (options_.knownSources > 0 &&
        static_cast<std::size_t>(event.id.source) >= options_.knownSources) {
      return IngressCause::UnknownSource;
    }
  }
  return IngressCause::None;
}

IngressCause IngressGuard::filterEvent(const Event& event) {
  const Fingerprint incoming{
      util::mix64(event.ts) ^ payloadDigest(event.payload),
      event.incarnation};
  Fingerprint* recorded = findFingerprint(event.id);
  if (recorded == nullptr) {
    recordFingerprint(event.id, incoming);
    return IngressCause::None;
  }
  if (event.incarnation < recorded->incarnation) return IngressCause::Incarnation;
  if (event.incarnation > recorded->incarnation) {
    // A restarted source supersedes its pre-restart record.
    *recorded = incoming;
    return IngressCause::None;
  }
  if (incoming.digest != recorded->digest) return IngressCause::Equivocation;
  return IngressCause::None;
}

IngressGuard::Result IngressGuard::inspect(std::uint64_t senderKey,
                                           const Ball& ball) {
  stats_.ballsInspected++;
  Result result;
  switch (screenBall(senderKey, ball)) {
    case IngressCause::Rate:
      stats_.ballsRejectedRate++;
      result.admitted = false;
      result.cause = IngressCause::Rate;
      return result;
    case IngressCause::Lineage:
      stats_.ballsRejectedLineage++;
      result.admitted = false;
      result.cause = IngressCause::Lineage;
      return result;
    case IngressCause::OriginRound:
      stats_.ballsRejectedOriginRound++;
      result.admitted = false;
      result.cause = IngressCause::OriginRound;
      return result;
    case IngressCause::UnknownSource:
      stats_.ballsRejectedUnknownSource++;
      result.admitted = false;
      result.cause = IngressCause::UnknownSource;
      return result;
    default:
      break;
  }
  // Event-level pass. The first filtered event triggers a copy of the
  // survivors so far; the clean path never allocates.
  for (std::size_t i = 0; i < ball.size(); ++i) {
    const IngressCause cause = filterEvent(ball[i]);
    if (cause == IngressCause::None) {
      if (result.kept) result.kept->push_back(ball[i]);
      continue;
    }
    if (cause == IngressCause::Equivocation) {
      stats_.eventsFilteredEquivocation++;
    } else {
      stats_.eventsFilteredIncarnation++;
    }
    result.filtered++;
    result.cause = cause;
    if (!result.kept) {
      result.kept.emplace(ball.begin(),
                          ball.begin() + static_cast<std::ptrdiff_t>(i));
    }
  }
  return result;
}

void IngressGuard::onRound() { ballsThisRound_.clear(); }

void IngressGuard::recordTo(obs::Registry& registry) const {
  recordIngressStats(stats_, registry);
}

void recordIngressStats(const IngressStats& stats, obs::Registry& registry) {
  const auto record = [&](IngressCause cause, std::uint64_t value) {
    registry.counter("epto_ingress_rejected_total",
                     {{"cause", ingressCauseLabel(cause)}})
        .set(value);
  };
  record(IngressCause::Lineage, stats.ballsRejectedLineage);
  record(IngressCause::OriginRound, stats.ballsRejectedOriginRound);
  record(IngressCause::Rate, stats.ballsRejectedRate);
  record(IngressCause::UnknownSource, stats.ballsRejectedUnknownSource);
  record(IngressCause::Equivocation, stats.eventsFilteredEquivocation);
  record(IngressCause::Incarnation, stats.eventsFilteredIncarnation);
  registry.counter("epto_ingress_inspected_total").set(stats.ballsInspected);
}

}  // namespace epto::core

#include "core/speculation.h"

#include <utility>

#include "obs/trace.h"
#include "util/ensure.h"

namespace epto {

SpeculationChannel::SpeculationChannel(Options options, SpeculationCallbacks callbacks)
    : options_(options), callbacks_(std::move(callbacks)) {
  EPTO_ENSURE_MSG(options_.confidenceThreshold > 0.0 && options_.confidenceThreshold <= 1.0,
                  "speculation confidence threshold must be in (0, 1]");
  EPTO_ENSURE_MSG(options_.maxWindow >= 1, "speculation window must hold at least 1 event");
}

void SpeculationChannel::setCallbacks(SpeculationCallbacks callbacks) {
  EPTO_ENSURE_MSG(window_.empty() && stats_.speculated == 0,
                  "speculation callbacks must be installed before the first round");
  callbacks_ = std::move(callbacks);
}

std::optional<OrderKey> SpeculationChannel::frontier() const {
  if (window_.empty()) return std::nullopt;
  return window_.back().key;
}

bool SpeculationChannel::offer(const Event& event, double confidence,
                               [[maybe_unused]] std::uint64_t redundantCopies,
                               [[maybe_unused]] std::uint64_t round) {
  if (!hasCapacity() || confidence < options_.confidenceThreshold) return false;
  const OrderKey key = event.orderKey();
  EPTO_ENSURE_MSG(window_.empty() || window_.back().key < key,
                  "speculation offers must arrive in ascending key order");
  window_.push_back(Slot{key, event.id});
  ++stats_.speculated;
  EPTO_TRACE_EVENT(Speculate, .node = options_.self, .round = round,
                   .event = event.id, .ts = event.ts, .ttl = event.ttl,
                   .size = static_cast<std::uint64_t>(confidence * 1e6),
                   .aux = redundantCopies);
  if (callbacks_.onSpeculate) callbacks_.onSpeculate(event, confidence);
  return true;
}

void SpeculationChannel::onFreshEvent(const OrderKey& key,
                                      [[maybe_unused]] std::uint64_t round) {
  // Deepest-first so the application unwinds its optimistic state in
  // reverse emission order.
  while (!window_.empty() && window_.back().key > key) {
    const Slot slot = window_.back();
    window_.pop_back();
    ++stats_.revoked;
    EPTO_TRACE_EVENT(SpecRevoke, .node = options_.self, .round = round,
                     .event = slot.id, .ts = slot.key.ts);
    if (callbacks_.onRevoke) callbacks_.onRevoke(slot.id);
  }
}

void SpeculationChannel::onCommit(const OrderKey& key,
                                  [[maybe_unused]] std::uint64_t round) {
  if (!window_.empty() && window_.front().key == key) {
    const Slot slot = window_.front();
    window_.pop_front();
    ++stats_.confirmed;
    EPTO_TRACE_EVENT(SpecConfirm, .node = options_.self, .round = round,
                     .event = slot.id, .ts = slot.key.ts);
    if (callbacks_.onConfirm) callbacks_.onConfirm(slot.id);
  }
  // Commits walk keys in ascending order and absorb-time revocation has
  // already evicted anything the committed event displaced, so a
  // non-matching head can only sort after the committed key.
  EPTO_ENSURE_MSG(window_.empty() || window_.front().key > key,
                  "speculation window fell behind the committed frontier");
}

}  // namespace epto

// Fundamental protocol types shared across the EpTO library.
//
// Terminology follows the paper (Matos et al., Middleware 2015):
//   * an *event* is the unit an application EpTO-broadcasts and
//     EpTO-delivers (paper Alg. 1/2);
//   * a *ball* is the batch of events a process relays to its K gossip
//     targets once per round (the balls-and-bins abstraction of §4.1).
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "util/rng.h"

namespace epto {

/// Unique identifier of a process. The paper assumes "each process has a
/// unique id" (§2); ids also break ordering ties between concurrent events.
using ProcessId = std::uint32_t;

/// Logical or global clock value, and simulation time, in ticks.
using Timestamp = std::uint64_t;

/// Application payload. Shared immutably so that the many copies of an
/// Event created during dissemination never duplicate payload bytes
/// (mirrors serialize-once transmission in a real deployment).
using PayloadBytes = std::vector<std::byte>;
using PayloadPtr = std::shared_ptr<const PayloadBytes>;

/// Globally unique event identifier: broadcasting process + per-source
/// sequence number. Identity never changes as the event is relayed.
struct EventId {
  ProcessId source = 0;
  std::uint32_t sequence = 0;

  friend auto operator<=>(const EventId&, const EventId&) = default;

  [[nodiscard]] std::uint64_t packed() const noexcept {
    return (static_cast<std::uint64_t>(source) << 32) | sequence;
  }
};

struct EventIdHash {
  std::size_t operator()(const EventId& id) const noexcept {
    return static_cast<std::size_t>(util::mix64(id.packed()));
  }
};

/// The total-order key: events are delivered sorted by timestamp, ties
/// broken by the broadcaster id (paper §2). The sequence number is a
/// repository-level strengthening: with a global clock a process may
/// broadcast twice at the same tick, and the sequence disambiguates
/// deterministically (see DESIGN.md §3.1). Lexicographic comparison.
struct OrderKey {
  Timestamp ts = 0;
  ProcessId source = 0;
  std::uint32_t sequence = 0;

  friend auto operator<=>(const OrderKey&, const OrderKey&) = default;
};

/// Environment description behind StabilityOracle::stabilityEstimate
/// (DESIGN.md §15). Unset (systemSize < 2 or fanout < 1) degrades the
/// estimate to a pure age/horizon ratio, which is still monotone and in
/// [0, 1].
struct StabilityModel {
  std::size_t systemSize = 0;    ///< n (or the n_max bound).
  std::size_t fanout = 0;        ///< K in use.
  double messageLossRate = 0.0;  ///< epsilon assumed.
  /// Global-clock deployments: clock ticks per protocol round, letting
  /// clock progress stand in for rounds when an event's relay age lags
  /// its wall age (e.g. it sat in flight). 0 = no clock/round mapping
  /// (logical clocks), only the relay age counts.
  Timestamp ticksPerRound = 0;
};

/// Per-event quality-of-service class (§8.4, DESIGN.md §15). Safe events
/// only ever surface through the committed total-order channel; Fast
/// events may additionally be delivered speculatively, ahead of the
/// committed frontier, tagged with a confidence and subject to
/// confirm/revoke. The class never affects dissemination or the
/// committed order — it only widens what the application may observe.
enum class QosClass : std::uint8_t {
  Safe = 0,
  Fast = 1,
};

/// An EpTO event as it travels inside balls. `ttl` counts how many rounds
/// the event has been relayed (Alg. 1) and, at the ordering component, how
/// many rounds it has aged (Alg. 2); `hop` counts relay emissions along
/// this copy's own path. The protocol never reads the lineage fields —
/// they exist so traces can reconstruct per-event journeys across nodes
/// (DESIGN.md §13); codec v2 carries them on the wire. All other fields
/// are immutable after broadcast.
struct Event {
  EventId id;
  Timestamp ts = 0;
  std::uint32_t ttl = 0;
  /// Lineage: the broadcaster's round counter at EpTO-broadcast.
  std::uint32_t originRound = 0;
  /// Lineage: network hops this copy has taken (0 at the origin). Unlike
  /// ttl it is never max-merged, so it measures the first-arrived copy's
  /// true relay-chain length; hop <= ttl always holds.
  std::uint16_t hop = 0;
  /// Lineage: the broadcaster's incarnation (restart count); 0 for a
  /// process that never restarted and everywhere in the simulator.
  std::uint16_t incarnation = 0;
  /// §8.4 QoS class; Safe by default. Carried on the wire only by codec
  /// v2 frames that contain at least one Fast event, so all-Safe traffic
  /// is byte-identical to pre-QoS frames.
  QosClass qos = QosClass::Safe;
  PayloadPtr payload;

  [[nodiscard]] OrderKey orderKey() const noexcept { return {ts, id.source, id.sequence}; }
};

/// A ball: the set of events a process relays in one round. Transmitted
/// as an immutable shared snapshot; receivers never mutate it.
using Ball = std::vector<Event>;
using BallPtr = std::shared_ptr<const Ball>;

/// How an event reached the application (paper §8.2, "tagged delivery").
/// Ordered deliveries are the normal EpTO-deliver; OutOfOrder deliveries
/// are events the paper's baseline algorithm would silently drop because
/// delivering them in sequence is no longer possible.
enum class DeliveryTag : std::uint8_t {
  Ordered,
  OutOfOrder,
};

/// Delivery callback invoked by the ordering component.
using DeliverFn = std::function<void(const Event&, DeliveryTag)>;

/// Peer-sampling service interface (paper §2). Implementations return a
/// uniformly random sample of *other* processes believed correct; the
/// fanout-K gossip targets of each round are drawn from it. Inaccurate
/// views under churn behave like message loss (§2) — implementations need
/// not be perfect.
class PeerSampler {
 public:
  virtual ~PeerSampler() = default;

  /// Up to `k` peer ids, chosen uniformly at random, never containing the
  /// calling process. Fewer than `k` may be returned if the view is small.
  [[nodiscard]] virtual std::vector<ProcessId> samplePeers(std::size_t k) = 0;
};

}  // namespace epto

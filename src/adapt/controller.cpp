#include "adapt/controller.h"

#include <algorithm>
#include <cmath>

#include "obs/trace.h"
#include "util/ensure.h"

namespace epto::adapt {

namespace {

/// Pack a [lower, upper] pair into one trace word (lower in the low 32
/// bits, upper in the high 32). tools/epto_trace.py unpacks these to
/// check every retune against the Lemma-safe envelope. maybe_unused:
/// with EPTO_TRACE=OFF the only call site compiles away.
[[maybe_unused]] std::uint64_t packBounds(std::uint64_t lower, std::uint64_t upper) {
  return (upper << 32) | (lower & 0xffffffffULL);
}

/// The worst environment the controller plans for: the provisioned
/// inputs with the loss rate folded into drift (Lemma 5 equivalence —
/// relay rounds that fail with probability eps stretch effective round
/// duration by 1/(1-eps), which is exactly what driftRatio models).
analysis::ParameterInputs effectiveWorstCase(const analysis::ParameterInputs& worstCase) {
  analysis::ParameterInputs effective = worstCase;
  effective.driftRatio = worstCase.driftRatio / (1.0 - worstCase.messageLossRate);
  return effective;
}

}  // namespace

FeedbackController::FeedbackController(const ControllerConfig& config)
    : config_(config), bounds_(analysis::lemmaSafeBounds(effectiveWorstCase(config.worstCase))) {
  EPTO_ENSURE_MSG(config_.hysteresisRounds >= 1, "hysteresis must cover at least 1 round");
  EPTO_ENSURE_MSG(config_.smoothing > 0.0 && config_.smoothing <= 1.0,
                  "EWMA smoothing factor must be in (0, 1]");
  EPTO_ENSURE_MSG(config_.initialLossRate >= 0.0 &&
                      config_.initialLossRate <= config_.worstCase.messageLossRate,
                  "initial loss assumption must sit inside the provisioned envelope");
  ewmaLoss_ = config_.initialLossRate;
  const analysis::Parameters start = targetFor(ewmaLoss_);
  ttl_ = config_.initialTtl != 0
             ? std::clamp(config_.initialTtl, bounds_.lower.ttl, bounds_.upper.ttl)
             : start.ttl;
  fanout_ = config_.initialFanout != 0
                ? std::clamp(config_.initialFanout, bounds_.lower.fanout, bounds_.upper.fanout)
                : start.fanout;
}

analysis::Parameters FeedbackController::targetFor(double lossRate) const {
  const double loss = std::clamp(lossRate, 0.0, config_.worstCase.messageLossRate);
  analysis::ParameterInputs inputs = config_.worstCase;
  inputs.messageLossRate = loss;
  inputs.driftRatio = config_.worstCase.driftRatio / (1.0 - loss);
  analysis::Parameters target = analysis::computeParameters(inputs);
  target.ttl = std::clamp(target.ttl, bounds_.lower.ttl, bounds_.upper.ttl);
  target.fanout = std::clamp(target.fanout, bounds_.lower.fanout, bounds_.upper.fanout);
  return target;
}

Decision FeedbackController::onRound(const RoundSignals& signals) {
  ++rounds_;

  // 1. Sense: fold this round's loss sample into the EWMA. Idle rounds
  //    (no balls, no hint) leave the estimate untouched.
  bool haveSample = false;
  double sample = 0.0;
  if (signals.lossHint >= 0.0) {
    sample = std::clamp(signals.lossHint, 0.0, 0.95);
    haveSample = true;
  } else if (signals.ballsReceived > 0.0 && fanout_ >= 1) {
    // Deliberately NOT floored at zero: ball arrivals are noisy
    // (~Poisson around K(1-eps)), so surplus rounds must be allowed to
    // pull the EWMA down by as much as shortfall rounds pull it up —
    // flooring the sample would bias the estimate above the true loss
    // and wind the knobs to the ceiling. targetFor() clamps the
    // *estimate* into [0, worstCase] where it matters.
    const double shortfall =
        std::max(-1.0, 1.0 - signals.ballsReceived / static_cast<double>(fanout_));
    // A shortfall far beyond the provisioned envelope cannot be link
    // loss (the controller never compensates past worstCase anyway); it
    // is traffic starvation — a drain tail, a quiescent workload — and
    // folding it in would wind the estimate to the ceiling and keep it
    // there. Reject the sample instead.
    if (shortfall <= std::min(0.95, 3.0 * config_.worstCase.messageLossRate)) {
      sample = shortfall;
      haveSample = true;
    }
  }
  if (haveSample) {
    ewmaLoss_ = (1.0 - config_.smoothing) * ewmaLoss_ + config_.smoothing * sample;
  }

  // 2. Decide: where the analysis says we should be at the current
  //    estimate, clamped into the Lemma-safe envelope.
  const analysis::Parameters target = targetFor(ewmaLoss_);

  // 3. Actuate: one +-1 step per knob per round, and only after the
  //    target has pulled the same way for hysteresisRounds in a row.
  const auto step = [&](auto& value, const auto target_value, std::uint32_t& up,
                        std::uint32_t& down) -> bool {
    if (target_value > value) {
      down = 0;
      if (++up >= config_.hysteresisRounds) {
        up = 0;
        ++value;
        return true;
      }
    } else if (target_value + 1 < value) {
      // Shrink reluctantly: growing is a safety move, shrinking only
      // saves bandwidth, so a knob sits one notch above a noisy target
      // rather than oscillating across its boundary.
      up = 0;
      if (++down >= config_.hysteresisRounds) {
        down = 0;
        --value;
        return true;
      }
    } else {
      up = 0;
      down = 0;
    }
    return false;
  };

  bool changed = step(ttl_, target.ttl, ttlUp_, ttlDown_);
  changed = step(fanout_, target.fanout, fanoutUp_, fanoutDown_) || changed;
  if (changed) {
    ++retunes_;
    EPTO_TRACE_EVENT(Retune, .node = config_.self, .round = rounds_, .ttl = ttl_,
                     .size = packBounds(bounds_.lower.ttl, bounds_.upper.ttl),
                     .aux = packBounds(bounds_.lower.fanout, bounds_.upper.fanout),
                     .detail = static_cast<std::uint8_t>(std::min<std::size_t>(fanout_, 0xff)));
  }
  return Decision{ttl_, fanout_, changed};
}

}  // namespace epto::adapt

// Online TTL/K feedback control — ROADMAP item 3, DESIGN.md §15.
//
// The paper derives K and TTL once, at provisioning time, from an assumed
// environment (Lemmas 3-7). A deployment tuned for 1% loss silently
// sheds its probabilistic guarantee when loss spikes to 10% — and
// overpays fanout bandwidth whenever the network is healthier than
// assumed. The FeedbackController closes that loop per process, each
// round, with no coordination:
//
//   signal    balls received per round. Every correct process relays one
//             ball to K peers per active round, so a node expects K
//             arrivals; the shortfall is an unbiased per-round estimate
//             of the effective loss rate (smoothed by an EWMA, idle
//             rounds skipped). A substrate that measures loss directly
//             may pass it as lossHint instead.
//   target    analysis::computeParameters at the observed loss. Loss is
//             fed in twice: as the Lemma 7 epsilon for K, and as a
//             Lemma 5 drift equivalence for TTL — a process whose relay
//             transmissions fail with probability eps makes epidemic
//             progress as if its round duration were delta/(1-eps), so
//             the TTL budget stretches by the same 1/(1-eps) factor.
//   actuate   one +-1 step per knob at most, only after the target has
//             pointed the same way for `hysteresisRounds` consecutive
//             rounds, and always clamped inside analysis::lemmaSafeBounds
//             of the provisioned worst case. The controller is therefore
//             deterministic (same signal sequence -> same decisions),
//             oscillation-damped, and can never leave the Lemma-safe
//             envelope no matter how wild the signals get.
//
// The current values are exported as `epto_adapt_ttl` / `epto_adapt_k`
// gauges via MetricsSnapshot, and every actuation emits a Retune trace
// record carrying the new values and the packed bounds, which
// tools/epto_trace.py checks retunes against.
#pragma once

#include <cstdint>

#include "analysis/parameters.h"
#include "core/types.h"

namespace epto::adapt {

struct ControllerConfig {
  /// Worst-case environment the deployment is provisioned for; defines
  /// the Lemma-safe envelope the controller may move within. Its
  /// messageLossRate is the worst loss adaptation will compensate.
  analysis::ParameterInputs worstCase;
  /// Loss rate assumed at startup (the static tuning point the
  /// controller starts from), in [0, worstCase.messageLossRate].
  double initialLossRate = 0.0;
  /// Explicit starting values (0 = derive both from initialLossRate).
  /// Clamped into the Lemma-safe bounds, so a manual override outside
  /// the envelope starts at the nearest safe point.
  std::uint32_t initialTtl = 0;
  std::size_t initialFanout = 0;
  /// Consecutive rounds the target must disagree with the current value,
  /// in the same direction, before a +-1 step is taken.
  std::uint32_t hysteresisRounds = 3;
  /// EWMA factor applied to each round's loss sample, in (0, 1].
  double smoothing = 0.2;
  /// Owning process id, used only to label Retune trace events.
  ProcessId self = 0;
};

/// One round of observed signals. Defaults mean "nothing observed".
struct RoundSignals {
  /// Balls received this round (the redundancy signal). Rounds with zero
  /// arrivals are treated as idle and do not update the loss estimate —
  /// a quiescent system is indistinguishable from total loss by this
  /// signal alone, and raising K on quiescence would be wrong.
  double ballsReceived = 0.0;
  /// Direct loss estimate in [0, 1) when the substrate has one
  /// (e.g. counted send failures); negative = unknown, derive the
  /// estimate from ballsReceived.
  double lossHint = -1.0;
};

struct Decision {
  std::uint32_t ttl = 0;
  std::size_t fanout = 0;
  bool changed = false;  ///< true when this round stepped either knob.
};

class FeedbackController {
 public:
  explicit FeedbackController(const ControllerConfig& config);

  /// Ingest one round of signals; returns the parameters to run with
  /// from the next round on. Call Process::retune when `changed`.
  Decision onRound(const RoundSignals& signals);

  [[nodiscard]] const analysis::ParameterBounds& bounds() const noexcept {
    return bounds_;
  }
  /// Smoothed loss estimate. May dip below zero (surplus rounds are
  /// folded in unfloored to keep the EWMA unbiased); targetFor() clamps.
  [[nodiscard]] double lossEstimate() const noexcept { return ewmaLoss_; }
  [[nodiscard]] std::uint32_t ttl() const noexcept { return ttl_; }
  [[nodiscard]] std::size_t fanout() const noexcept { return fanout_; }
  [[nodiscard]] std::uint64_t retunes() const noexcept { return retunes_; }

  /// The per-round target for a given loss estimate, already clamped
  /// into the Lemma-safe bounds. Exposed for tests (round-trip agreement
  /// between controller steps and the analysis envelope).
  [[nodiscard]] analysis::Parameters targetFor(double lossRate) const;

 private:
  ControllerConfig config_;
  analysis::ParameterBounds bounds_;
  double ewmaLoss_ = 0.0;
  std::uint64_t rounds_ = 0;
  std::uint32_t ttl_ = 0;
  std::size_t fanout_ = 0;
  /// Consecutive rounds the target has pointed up/down per knob.
  std::uint32_t ttlUp_ = 0;
  std::uint32_t ttlDown_ = 0;
  std::uint32_t fanoutUp_ = 0;
  std::uint32_t fanoutDown_ = 0;
  std::uint64_t retunes_ = 0;
};

}  // namespace epto::adapt

#include "codec/ball_codec.h"

#include <limits>

#include "codec/checksum.h"
#include "codec/varint.h"

namespace epto::codec {

std::string_view toString(DecodeError error) noexcept {
  switch (error) {
    case DecodeError::None:
      return "none";
    case DecodeError::Truncated:
      return "truncated frame";
    case DecodeError::BadMagic:
      return "bad magic";
    case DecodeError::BadVersion:
      return "unsupported version";
    case DecodeError::BadVarint:
      return "malformed varint";
    case DecodeError::LengthOverflow:
      return "length exceeds frame";
    case DecodeError::ChecksumMismatch:
      return "checksum mismatch";
    case DecodeError::TrailingGarbage:
      return "trailing garbage";
  }
  return "unknown";
}

std::vector<std::byte> encodeBall(const Ball& ball) { return encodeBall(ball, {}); }

std::vector<std::byte> encodeBall(const Ball& ball, EncodeOptions options) {
  std::vector<std::byte> out;
  // Rough reservation: header + ~12 bytes per event (+ lineage) + payloads.
  std::size_t payloadTotal = 0;
  bool anyFast = false;
  for (const Event& event : ball) {
    if (event.payload != nullptr) payloadTotal += event.payload->size();
    if (event.qos == QosClass::Fast) anyFast = true;
  }
  // The qos flag bit is demand-driven: a Safe-only ball encodes exactly
  // as it would with qos disabled (see kFlagQos).
  const bool carryQos = options.qos && anyFast;
  const bool v2 = options.lineage || carryQos;
  out.reserve(9 + ball.size() * (options.lineage ? 19 : 13) + payloadTotal);

  out.push_back(static_cast<std::byte>(kMagic & 0xFF));
  out.push_back(static_cast<std::byte>(kMagic >> 8));
  out.push_back(static_cast<std::byte>(v2 ? kVersionLineage : kVersion));
  if (v2) {
    std::uint8_t flags = 0;
    if (options.lineage) flags |= kFlagLineage;
    if (carryQos) flags |= kFlagQos;
    out.push_back(static_cast<std::byte>(flags));
  }
  putVarint(out, ball.size());
  for (const Event& event : ball) {
    putVarint(out, event.id.source);
    putVarint(out, event.id.sequence);
    putVarint(out, event.ts);
    putVarint(out, event.ttl);
    if (options.lineage) {
      putVarint(out, event.hop);
      putVarint(out, event.originRound);
      putVarint(out, event.incarnation);
    }
    if (carryQos) {
      out.push_back(static_cast<std::byte>(static_cast<std::uint8_t>(event.qos)));
    }
    if (event.payload != nullptr) {
      putVarint(out, event.payload->size());
      out.insert(out.end(), event.payload->begin(), event.payload->end());
    } else {
      putVarint(out, 0);
    }
  }
  const std::uint32_t crc = crc32c(out);
  out.push_back(static_cast<std::byte>(crc & 0xFF));
  out.push_back(static_cast<std::byte>((crc >> 8) & 0xFF));
  out.push_back(static_cast<std::byte>((crc >> 16) & 0xFF));
  out.push_back(static_cast<std::byte>((crc >> 24) & 0xFF));
  return out;
}

namespace {

DecodeResult fail(DecodeError error) {
  DecodeResult result;
  result.error = error;
  return result;
}

}  // namespace

DecodeResult decodeBall(std::span<const std::byte> frame) {
  // The CRC trailer is fixed-width; split it off first.
  if (frame.size() < 4) return fail(DecodeError::Truncated);
  const std::span<const std::byte> body = frame.first(frame.size() - 4);
  const std::span<const std::byte> trailer = frame.last(4);
  std::uint32_t storedCrc = 0;
  for (int i = 3; i >= 0; --i) {
    storedCrc = (storedCrc << 8) | static_cast<std::uint32_t>(trailer[static_cast<std::size_t>(i)]);
  }
  if (crc32c(body) != storedCrc) return fail(DecodeError::ChecksumMismatch);

  ByteReader reader(body);
  const auto magicLo = reader.readByte();
  const auto magicHi = reader.readByte();
  if (!magicLo.has_value() || !magicHi.has_value()) return fail(DecodeError::Truncated);
  if ((static_cast<std::uint16_t>(*magicHi) << 8 | *magicLo) != kMagic) {
    return fail(DecodeError::BadMagic);
  }
  const auto version = reader.readByte();
  if (!version.has_value()) return fail(DecodeError::Truncated);
  if (*version != kVersion && *version != kVersionLineage) {
    return fail(DecodeError::BadVersion);
  }
  bool lineage = false;
  bool qos = false;
  if (*version == kVersionLineage) {
    const auto flags = reader.readByte();
    if (!flags.has_value()) return fail(DecodeError::Truncated);
    // Unknown flag bits change the per-event layout, so they cannot be
    // skipped over — reject rather than misparse.
    if ((static_cast<std::uint8_t>(*flags) & ~(kFlagLineage | kFlagQos)) != 0) {
      return fail(DecodeError::BadVersion);
    }
    lineage = (static_cast<std::uint8_t>(*flags) & kFlagLineage) != 0;
    qos = (static_cast<std::uint8_t>(*flags) & kFlagQos) != 0;
  }

  const auto count = reader.readVarint();
  if (!count.has_value()) return fail(DecodeError::BadVarint);
  // A non-empty event costs at least 5 body bytes; reject counts that a
  // frame of this size cannot possibly hold before allocating.
  if (*count > reader.remaining()) return fail(DecodeError::LengthOverflow);

  DecodeResult result;
  result.ball.reserve(static_cast<std::size_t>(*count));
  for (std::uint64_t i = 0; i < *count; ++i) {
    Event event;
    const auto source = reader.readVarint();
    const auto sequence = reader.readVarint();
    const auto ts = reader.readVarint();
    const auto ttl = reader.readVarint();
    if (!source.has_value() || !sequence.has_value() || !ts.has_value() ||
        !ttl.has_value()) {
      return fail(DecodeError::BadVarint);
    }
    if (*source > std::numeric_limits<ProcessId>::max() ||
        *sequence > std::numeric_limits<std::uint32_t>::max() ||
        *ttl > std::numeric_limits<std::uint32_t>::max()) {
      return fail(DecodeError::LengthOverflow);
    }
    event.id = EventId{static_cast<ProcessId>(*source),
                       static_cast<std::uint32_t>(*sequence)};
    event.ts = *ts;
    event.ttl = static_cast<std::uint32_t>(*ttl);
    if (lineage) {
      const auto hop = reader.readVarint();
      const auto originRound = reader.readVarint();
      const auto incarnation = reader.readVarint();
      if (!hop.has_value() || !originRound.has_value() || !incarnation.has_value()) {
        return fail(DecodeError::BadVarint);
      }
      if (*hop > std::numeric_limits<std::uint16_t>::max() ||
          *originRound > std::numeric_limits<std::uint32_t>::max() ||
          *incarnation > std::numeric_limits<std::uint16_t>::max()) {
        return fail(DecodeError::LengthOverflow);
      }
      event.hop = static_cast<std::uint16_t>(*hop);
      event.originRound = static_cast<std::uint32_t>(*originRound);
      event.incarnation = static_cast<std::uint16_t>(*incarnation);
    }
    if (qos) {
      const auto qosByte = reader.readByte();
      if (!qosByte.has_value()) return fail(DecodeError::Truncated);
      // Only the two defined classes are valid; anything else is a
      // layout we do not understand, not data to be clamped.
      if (static_cast<std::uint8_t>(*qosByte) > static_cast<std::uint8_t>(QosClass::Fast)) {
        return fail(DecodeError::BadVersion);
      }
      event.qos = static_cast<QosClass>(*qosByte);
    }
    const auto payloadLen = reader.readVarint();
    if (!payloadLen.has_value()) return fail(DecodeError::BadVarint);
    if (*payloadLen > 0) {
      const auto payload = reader.readBytes(static_cast<std::size_t>(*payloadLen));
      if (!payload.has_value()) return fail(DecodeError::LengthOverflow);
      event.payload =
          std::make_shared<PayloadBytes>(payload->begin(), payload->end());
    }
    result.ball.push_back(std::move(event));
  }
  if (!reader.exhausted()) return fail(DecodeError::TrailingGarbage);
  return result;
}

}  // namespace epto::codec

#include "codec/fragment_codec.h"

#include <limits>

#include "codec/checksum.h"
#include "codec/varint.h"
#include "util/ensure.h"

namespace epto::codec {

bool isFragmentFrame(std::span<const std::byte> frame) noexcept {
  if (frame.size() < 2) return false;
  const auto magic = static_cast<std::uint16_t>(
      static_cast<std::uint16_t>(frame[1]) << 8 | static_cast<std::uint16_t>(frame[0]));
  return magic == kFragmentMagic;
}

namespace {

FragmentDecodeResult fail(DecodeError error) {
  FragmentDecodeResult result;
  result.error = error;
  return result;
}

void appendCrc(std::vector<std::byte>& out) {
  const std::uint32_t crc = crc32c(out);
  out.push_back(static_cast<std::byte>(crc & 0xFF));
  out.push_back(static_cast<std::byte>((crc >> 8) & 0xFF));
  out.push_back(static_cast<std::byte>((crc >> 16) & 0xFF));
  out.push_back(static_cast<std::byte>((crc >> 24) & 0xFF));
}

}  // namespace

FragmentDecodeResult decodeFragment(std::span<const std::byte> frame) {
  if (frame.size() < 4) return fail(DecodeError::Truncated);
  const std::span<const std::byte> body = frame.first(frame.size() - 4);
  const std::span<const std::byte> trailer = frame.last(4);
  std::uint32_t storedCrc = 0;
  for (int i = 3; i >= 0; --i) {
    storedCrc =
        (storedCrc << 8) | static_cast<std::uint32_t>(trailer[static_cast<std::size_t>(i)]);
  }
  if (crc32c(body) != storedCrc) return fail(DecodeError::ChecksumMismatch);

  ByteReader reader(body);
  const auto magicLo = reader.readByte();
  const auto magicHi = reader.readByte();
  if (!magicLo.has_value() || !magicHi.has_value()) return fail(DecodeError::Truncated);
  if ((static_cast<std::uint16_t>(*magicHi) << 8 | *magicLo) != kFragmentMagic) {
    return fail(DecodeError::BadMagic);
  }
  const auto version = reader.readByte();
  if (!version.has_value()) return fail(DecodeError::Truncated);
  if (*version != kFragmentVersion) return fail(DecodeError::BadVersion);

  const auto ballId = reader.readVarint();
  const auto index = reader.readVarint();
  const auto count = reader.readVarint();
  const auto totalLength = reader.readVarint();
  const auto offset = reader.readVarint();
  const auto chunkLength = reader.readVarint();
  if (!ballId.has_value() || !index.has_value() || !count.has_value() ||
      !totalLength.has_value() || !offset.has_value() || !chunkLength.has_value()) {
    return fail(DecodeError::BadVarint);
  }
  // Header consistency: the fragment must describe a chunk that actually
  // fits inside the frame it claims to be part of.
  if (*count == 0 || *count > std::numeric_limits<std::uint32_t>::max() ||
      *index >= *count) {
    return fail(DecodeError::LengthOverflow);
  }
  if (*totalLength == 0 || *offset > *totalLength ||
      *chunkLength > *totalLength - *offset) {
    return fail(DecodeError::LengthOverflow);
  }
  if (*chunkLength != reader.remaining()) return fail(DecodeError::LengthOverflow);

  FragmentDecodeResult result;
  result.fragment.ballId = *ballId;
  result.fragment.index = static_cast<std::uint32_t>(*index);
  result.fragment.count = static_cast<std::uint32_t>(*count);
  result.fragment.totalLength = *totalLength;
  result.fragment.offset = *offset;
  const auto payload = reader.readBytes(static_cast<std::size_t>(*chunkLength));
  if (!payload.has_value()) return fail(DecodeError::Truncated);
  result.fragment.payload = *payload;
  if (!reader.exhausted()) return fail(DecodeError::TrailingGarbage);
  return result;
}

std::vector<std::vector<std::byte>> fragmentFrame(std::span<const std::byte> frame,
                                                  std::size_t mtu,
                                                  std::uint64_t ballId) {
  EPTO_ENSURE_MSG(mtu >= kMinFragmentMtu, "mtu below kMinFragmentMtu");
  EPTO_ENSURE_MSG(!frame.empty(), "cannot fragment an empty frame");

  std::vector<std::vector<std::byte>> out;
  if (frame.size() <= mtu) {
    out.emplace_back(frame.begin(), frame.end());
    return out;
  }

  const std::size_t chunk = mtu - kFragmentOverhead;
  const std::size_t count = (frame.size() + chunk - 1) / chunk;
  out.reserve(count);
  for (std::size_t index = 0; index < count; ++index) {
    const std::size_t offset = index * chunk;
    const std::size_t length = std::min(chunk, frame.size() - offset);
    std::vector<std::byte> datagram;
    datagram.reserve(length + kFragmentOverhead);
    datagram.push_back(static_cast<std::byte>(kFragmentMagic & 0xFF));
    datagram.push_back(static_cast<std::byte>(kFragmentMagic >> 8));
    datagram.push_back(static_cast<std::byte>(kFragmentVersion));
    putVarint(datagram, ballId);
    putVarint(datagram, index);
    putVarint(datagram, count);
    putVarint(datagram, frame.size());
    putVarint(datagram, offset);
    putVarint(datagram, length);
    datagram.insert(datagram.end(), frame.begin() + static_cast<std::ptrdiff_t>(offset),
                    frame.begin() + static_cast<std::ptrdiff_t>(offset + length));
    appendCrc(datagram);
    out.push_back(std::move(datagram));
  }
  return out;
}

}  // namespace epto::codec

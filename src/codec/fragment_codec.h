// Fragmentation layer of the EpTO wire format.
//
// UDP bounds a datagram at 64 KiB, and practical MTUs are far smaller;
// EpTO balls grow with the event rate, so a transport that maps one ball
// to one datagram stops delivering exactly when traffic grows. This
// codec splits one encoded ball frame (codec/ball_codec.h) into
// self-contained fragment datagrams that a receiver reassembles
// (runtime/reassembly.h) before handing the original frame to the ball
// decoder.
//
// Fragment frame layout (multi-byte integers are varints unless noted):
//
//   magic      u16-LE     0xE971 (ball frames start 0xE970 — the first
//                         two bytes route a datagram to the right decoder)
//   version    u8         1
//   ballId     varint     sender-unique id of the fragmented frame;
//                         reassembly groups fragments by it
//   index      varint     fragment position, in [0, count)
//   count      varint     total fragments of this frame (>= 1)
//   totalLen   varint     byte length of the reassembled frame
//   offset     varint     byte offset of this chunk within the frame
//   chunkLen   varint     payload bytes carried by this fragment
//   payload    chunkLen raw bytes
//   crc32c     u32-LE     over everything above
//
// Fragments are validated as defensively as ball frames: every length
// and offset is checked against the frame before any allocation, and the
// CRC trailer rejects in-flight corruption per fragment, so a mangled
// fragment behaves exactly like a lost one. The reassembled frame still
// carries the ball codec's own CRC — corruption that somehow survives
// fragment validation is caught again at ball decode.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "codec/ball_codec.h"

namespace epto::codec {

inline constexpr std::uint16_t kFragmentMagic = 0xE971;
inline constexpr std::uint8_t kFragmentVersion = 1;

/// Worst-case header + trailer bytes of one fragment frame (magic 2 +
/// version 1 + five 10-byte varints + one 5-byte varint + crc 4, rounded
/// up). fragmentFrame() sizes chunks so header + chunk <= mtu.
inline constexpr std::size_t kFragmentOverhead = 64;

/// Smallest MTU fragmentFrame() accepts: enough for the worst-case
/// header plus a useful chunk.
inline constexpr std::size_t kMinFragmentMtu = 128;

/// True when `frame` starts with the fragment magic — the cheap routing
/// check a receiver applies before choosing a decoder.
[[nodiscard]] bool isFragmentFrame(std::span<const std::byte> frame) noexcept;

/// One decoded fragment. `payload` points into the input frame — copy it
/// before the datagram buffer is reused.
struct FragmentFrame {
  std::uint64_t ballId = 0;
  std::uint32_t index = 0;
  std::uint32_t count = 1;
  std::uint64_t totalLength = 0;
  std::uint64_t offset = 0;
  std::span<const std::byte> payload;
};

struct FragmentDecodeResult {
  FragmentFrame fragment;
  DecodeError error = DecodeError::None;

  [[nodiscard]] bool ok() const noexcept { return error == DecodeError::None; }
};

/// Parse one fragment datagram. Rejects malformed headers, inconsistent
/// index/count/offset/length combinations and checksum mismatches.
[[nodiscard]] FragmentDecodeResult decodeFragment(std::span<const std::byte> frame);

/// Split an encoded ball frame into datagrams no larger than `mtu`.
/// Frames that already fit in `mtu` are returned unchanged as a single
/// datagram (no fragment header — receivers route on the magic), so the
/// common small-ball case costs nothing. `mtu` must be at least
/// kMinFragmentMtu; `ballId` must be unique per sender per frame.
[[nodiscard]] std::vector<std::vector<std::byte>> fragmentFrame(
    std::span<const std::byte> frame, std::size_t mtu, std::uint64_t ballId);

}  // namespace epto::codec

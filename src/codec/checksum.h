// CRC32C (Castagnoli) — corruption detection for the EpTO wire format.
//
// Balls traverse lossy, possibly-mangling transports; the codec trailer
// carries a CRC32C over the frame body so that a corrupted ball is
// rejected instead of poisoning the ordering state. Software
// table-driven implementation (the usual 8-bit-slice variant), no
// hardware dependency.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace epto::codec {

/// CRC32C of `data` (initial value per the standard: all-ones, reflected).
[[nodiscard]] std::uint32_t crc32c(std::span<const std::byte> data) noexcept;

}  // namespace epto::codec

// LEB128 variable-length integer encoding.
//
// The EpTO wire format (codec/ball_codec.h) encodes timestamps, ttls and
// lengths as varints: balls carry many small integers (a fresh event has
// ttl <= TTL ~ tens; round-trip clock values grow slowly), so LEB128
// roughly halves ball sizes compared to fixed-width fields.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace epto::codec {

/// Append `value` to `out` as LEB128 (1-10 bytes).
inline void putVarint(std::vector<std::byte>& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::byte>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<std::byte>(value));
}

/// Cursor-based reader over an immutable buffer. All reads are bounds-
/// checked; a failed read returns nullopt and leaves the cursor where
/// the failure occurred (decoding aborts anyway).
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) : data_(data) {}

  [[nodiscard]] std::size_t position() const noexcept { return position_; }
  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - position_; }
  [[nodiscard]] bool exhausted() const noexcept { return position_ >= data_.size(); }

  [[nodiscard]] std::optional<std::uint8_t> readByte() {
    if (position_ >= data_.size()) return std::nullopt;
    return static_cast<std::uint8_t>(data_[position_++]);
  }

  /// LEB128 decode, rejecting encodings longer than 10 bytes and
  /// non-canonical overlong final bytes that overflow 64 bits.
  [[nodiscard]] std::optional<std::uint64_t> readVarint() {
    std::uint64_t value = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      const auto byte = readByte();
      if (!byte.has_value()) return std::nullopt;
      const std::uint64_t chunk = *byte & 0x7F;
      if (shift == 63 && chunk > 1) return std::nullopt;  // would overflow
      value |= chunk << shift;
      if ((*byte & 0x80) == 0) return value;
    }
    return std::nullopt;  // continuation bit never cleared
  }

  /// Raw byte run of exactly `length`.
  [[nodiscard]] std::optional<std::span<const std::byte>> readBytes(std::size_t length) {
    if (remaining() < length) return std::nullopt;
    const auto out = data_.subspan(position_, length);
    position_ += length;
    return out;
  }

 private:
  std::span<const std::byte> data_;
  std::size_t position_ = 0;
};

}  // namespace epto::codec

#include "codec/checksum.h"

#include <array>

namespace epto::codec {

namespace {

/// Table for the reflected CRC32C polynomial 0x82F63B78.
constexpr std::array<std::uint32_t, 256> makeTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) != 0 ? (crc >> 1) ^ 0x82F63B78u : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = makeTable();

}  // namespace

std::uint32_t crc32c(std::span<const std::byte> data) noexcept {
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const std::byte b : data) {
    crc = kTable[(crc ^ static_cast<std::uint32_t>(b)) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace epto::codec

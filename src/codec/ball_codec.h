// EpTO wire format: serialization of balls for real transports.
//
// Frame layout (all multi-byte integers are varints unless noted):
//
//   magic      u16-LE     0xE970 ("EpTO")
//   version    u8         1
//   count      varint     number of events
//   events     count x {
//     source     varint
//     sequence   varint
//     ts         varint
//     ttl        varint
//     payloadLen varint
//     payload    payloadLen raw bytes
//   }
//   crc32c     u32-LE     over everything above
//
// Decoding is fully defensive: truncated frames, bad magic, unsupported
// versions, overflowing varints, lying length fields and checksum
// mismatches are all rejected with a precise error code — network input
// is never trusted. A decode allocates at most `count` events and the
// declared payload bytes, both bounded by the frame size itself.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "core/types.h"

namespace epto::codec {

inline constexpr std::uint16_t kMagic = 0xE970;
inline constexpr std::uint8_t kVersion = 1;

enum class DecodeError : std::uint8_t {
  None,
  Truncated,        ///< frame ends mid-field
  BadMagic,         ///< first two bytes are not kMagic
  BadVersion,       ///< version byte unsupported
  BadVarint,        ///< malformed or overflowing varint
  LengthOverflow,   ///< a declared length exceeds the remaining frame
  ChecksumMismatch, ///< CRC32C trailer does not match the body
  TrailingGarbage,  ///< bytes left after the checksum
};

[[nodiscard]] std::string_view toString(DecodeError error) noexcept;

/// Serialize a ball into a self-contained frame.
[[nodiscard]] std::vector<std::byte> encodeBall(const Ball& ball);

struct DecodeResult {
  Ball ball;
  DecodeError error = DecodeError::None;

  [[nodiscard]] bool ok() const noexcept { return error == DecodeError::None; }
};

/// Parse one frame. On failure, `ball` is empty and `error` says why.
[[nodiscard]] DecodeResult decodeBall(std::span<const std::byte> frame);

}  // namespace epto::codec

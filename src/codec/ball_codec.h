// EpTO wire format: serialization of balls for real transports.
//
// Frame layout (all multi-byte integers are varints unless noted):
//
//   magic      u16-LE     0xE970 ("EpTO")
//   version    u8         1 or 2
//   flags      u8         version 2 only; bit 0 = per-event lineage,
//                         bit 1 = per-event QoS class
//   count      varint     number of events
//   events     count x {
//     source      varint
//     sequence    varint
//     ts          varint
//     ttl         varint
//     hop         varint   only with the lineage flag
//     originRound varint   only with the lineage flag
//     incarnation varint   only with the lineage flag
//     qos         u8       only with the qos flag; 0 = Safe, 1 = Fast
//     payloadLen  varint
//     payload     payloadLen raw bytes
//   }
//   crc32c     u32-LE     over everything above
//
// Versioning: version 1 is the original frame and is still emitted by
// encodeBall(ball) byte-for-byte, so a fleet mixing old and new nodes
// interoperates — a new decoder accepts both versions (v1 events carry
// zeroed lineage), an old decoder rejects v2 frames as BadVersion and
// the sender falls back by disabling wireLineage. The flags byte keeps
// future extensions orthogonal; unknown flag bits are rejected because
// they change the per-event layout. The lineage flag is independent of
// EPTO_TRACE: wire lineage is protocol data, not trace plumbing, so an
// EPTO_TRACE=OFF build still relays it intact.
//
// Decoding is fully defensive: truncated frames, bad magic, unsupported
// versions, overflowing varints, lying length fields and checksum
// mismatches are all rejected with a precise error code — network input
// is never trusted. A decode allocates at most `count` events and the
// declared payload bytes, both bounded by the frame size itself.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "core/types.h"

namespace epto::codec {

inline constexpr std::uint16_t kMagic = 0xE970;
inline constexpr std::uint8_t kVersion = 1;
inline constexpr std::uint8_t kVersionLineage = 2;
/// Version-2 flags byte, bit 0: events carry {hop, originRound,
/// incarnation} varints between ttl and payloadLen.
inline constexpr std::uint8_t kFlagLineage = 0x01;
/// Version-2 flags byte, bit 1: events carry a QoS class byte just
/// before payloadLen. The encoder sets this bit only when the ball
/// actually contains a Fast-class event, so all-Safe traffic stays
/// byte-identical whether or not the sender has QoS enabled.
inline constexpr std::uint8_t kFlagQos = 0x02;

enum class DecodeError : std::uint8_t {
  None,
  Truncated,        ///< frame ends mid-field
  BadMagic,         ///< first two bytes are not kMagic
  BadVersion,       ///< version byte unsupported
  BadVarint,        ///< malformed or overflowing varint
  LengthOverflow,   ///< a declared length exceeds the remaining frame
  ChecksumMismatch, ///< CRC32C trailer does not match the body
  TrailingGarbage,  ///< bytes left after the checksum
};

[[nodiscard]] std::string_view toString(DecodeError error) noexcept;

struct EncodeOptions {
  /// Emit a version-2 frame carrying per-event lineage. Off emits the
  /// version-1 frame older decoders understand.
  bool lineage = false;
  /// Allow the frame to carry per-event QoS classes. Even when on, the
  /// qos flag bit (and the per-event byte) appears only in frames that
  /// contain at least one Fast event — a ball of Safe events encodes
  /// byte-identically with qos on or off, so enabling speculation on a
  /// sender does not perturb the wire traffic of Safe-only workloads.
  bool qos = false;
};

/// Serialize a ball into a self-contained frame. The single-argument
/// overload emits version 1, byte-identical to what it always produced.
[[nodiscard]] std::vector<std::byte> encodeBall(const Ball& ball);
[[nodiscard]] std::vector<std::byte> encodeBall(const Ball& ball, EncodeOptions options);

struct DecodeResult {
  Ball ball;
  DecodeError error = DecodeError::None;

  [[nodiscard]] bool ok() const noexcept { return error == DecodeError::None; }
};

/// Parse one frame. On failure, `ball` is empty and `error` says why.
[[nodiscard]] DecodeResult decodeBall(std::span<const std::byte> frame);

}  // namespace epto::codec

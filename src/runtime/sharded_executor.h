// ShardedExecutor — a fixed pool of worker shards, each owning a
// contiguous slice of protocol nodes.
//
// The thread-per-node runtime stops scaling long before the protocol
// does: at hundreds of nodes the machine spends its time context-
// switching between threads that each wake for one datagram, run a few
// microseconds of protocol, and sleep again. This executor inverts the
// shape — `shardCount` long-lived workers (default: one per hardware
// thread, optionally pinned to cores) each drive *many* nodes, so node
// state stays hot in one core's cache and the per-node cost collapses
// to a timer-wheel entry plus a pollfd slot.
//
// Ownership model (DESIGN.md §16): every node belongs to exactly one
// shard for the executor's lifetime, and ALL access to a node's
// mutable state happens on its owning shard's thread. The old runtime's
// "node-thread only" invariants carry over verbatim as "owning-shard
// only". The control plane reaches in through exactly one door: post()
// enqueues a Command onto the owning shard's SPSC mailbox (external
// producers serialize on a producer-side mutex; the shard consumes
// lock-free), and the shard runs it at the top of its next loop
// iteration — so a command observes node state quiesced between loop
// iterations, never mid-round.
//
// The executor owns the mechanism (threads, mailboxes, per-shard timer
// wheels, core pinning, stop protocol); the host supplies the policy as
// a ShardBody — the actual poll/ingest/round loop. UdpCluster is the
// host here; the body contract is to check ctx.stopRequested() at least
// once per bounded amount of work and to return when it is set.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "runtime/spsc_ring.h"
#include "runtime/timer_wheel.h"
#include "util/inplace_fn.h"
#include "util/mutex.h"

namespace epto::runtime {

struct ShardedExecutorOptions {
  /// Nodes to partition across shards (contiguous slices, sizes within
  /// one of each other). Must be positive.
  std::size_t nodeCount = 0;
  /// Worker shards; 0 means hardware_concurrency (min 1). Clamped to
  /// nodeCount — a shard with no nodes would be a parked thread.
  std::size_t shardCount = 0;
  /// Best-effort pthread affinity: shard i -> core i % cores. Failure is
  /// ignored (containers often mask CPUs); pinnedShards() reports how
  /// many pins took.
  bool pinCores = false;
  /// Per-shard mailbox capacity (rounded up to a power of two).
  std::size_t mailboxCapacity = 1024;
  /// Timer-wheel slot width and count (one lap = granularity * slots).
  std::chrono::microseconds wheelGranularity{1000};
  std::size_t wheelSlots = 512;
};

class ShardedExecutor {
 public:
  /// Cross-shard command. 104 inline bytes fits every control-plane
  /// closure in the repo (a broadcast captures cluster + node + payload
  /// handle + qos ≈ 40 bytes); bigger closures still work via the
  /// InplaceFn heap fallback.
  using Command = util::InplaceFn<104>;

  /// The slice of executor state one shard's body may touch. Only ever
  /// handed to the owning shard's thread.
  class ShardContext {
   public:
    [[nodiscard]] std::size_t shardIndex() const noexcept { return index_; }
    /// Owned node range [nodeBegin, nodeEnd).
    [[nodiscard]] std::size_t nodeBegin() const noexcept { return begin_; }
    [[nodiscard]] std::size_t nodeEnd() const noexcept { return end_; }
    [[nodiscard]] TimerWheel& wheel() noexcept { return *wheel_; }

    /// Run every queued command (consumer side of the mailbox — owning
    /// shard only). Returns how many ran.
    std::size_t drainMailbox();

    [[nodiscard]] bool stopRequested() const noexcept {
      return owner_->stopRequested_.load(std::memory_order_acquire);
    }

   private:
    friend class ShardedExecutor;
    ShardedExecutor* owner_ = nullptr;
    std::size_t index_ = 0;
    std::size_t begin_ = 0;
    std::size_t end_ = 0;
    std::unique_ptr<TimerWheel> wheel_;
  };

  using ShardBody = std::function<void(ShardContext&)>;

  ShardedExecutor(ShardedExecutorOptions options, ShardBody body);
  ~ShardedExecutor();

  ShardedExecutor(const ShardedExecutor&) = delete;
  ShardedExecutor& operator=(const ShardedExecutor&) = delete;

  /// Launch one thread per shard, each running the body once.
  void start();
  /// Request stop and join every shard. Idempotent.
  void stop();

  /// Enqueue a command for `node`'s owning shard (any thread). False
  /// when the mailbox is full — the command is NOT consumed then (the
  /// caller keeps it for retry or inline execution); rejections are
  /// counted.
  [[nodiscard]] bool post(std::size_t node, Command&& command);

  /// Consume `shard`'s mailbox from the calling thread. The SPSC
  /// single-consumer role belongs to the shard thread while the executor
  /// runs, so this is only legal when the executor is NOT started —
  /// tests and the schedule-exploration suite (tests/check) use it to
  /// play the consumer role deterministically; enforced with EPTO_ENSURE.
  std::size_t drainMailboxOn(std::size_t shard);

  [[nodiscard]] std::size_t shardCount() const noexcept { return shards_.size(); }
  [[nodiscard]] std::size_t shardOf(std::size_t node) const;
  /// Node range [first, second) owned by `shard`.
  [[nodiscard]] std::pair<std::size_t, std::size_t> nodeRange(std::size_t shard) const;
  /// Commands currently queued for `shard` (racy estimate — the gauge).
  [[nodiscard]] std::size_t mailboxDepth(std::size_t shard) const;
  /// post() calls refused by a full mailbox since construction.
  [[nodiscard]] std::uint64_t postRejections() const noexcept {
    return postRejections_.load(std::memory_order_relaxed);
  }
  /// Shards whose core-affinity request succeeded (0 unless pinCores).
  [[nodiscard]] std::size_t pinnedShards() const noexcept {
    return pinnedShards_.load(std::memory_order_relaxed);
  }

 private:
  struct Shard {
    explicit Shard(std::size_t mailboxCapacity) : mailbox(mailboxCapacity) {}
    ShardContext context;
    SpscRing<Command> mailbox;
    /// Serializes external post() callers onto the ring's single-
    /// producer role; the consuming shard never takes it.
    util::Mutex producerMutex;
    std::thread thread;
  };

  ShardedExecutorOptions options_;
  ShardBody body_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopRequested_{false};
  std::atomic<std::uint64_t> postRejections_{0};
  std::atomic<std::size_t> pinnedShards_{0};
};

}  // namespace epto::runtime

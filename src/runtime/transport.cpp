#include "runtime/transport.h"

#include "codec/ball_codec.h"
#include "util/ensure.h"

namespace epto::runtime {

void Mailbox::push(Envelope envelope) {
  {
    const util::MutexLock lock(mutex_);
    queue_.push(std::move(envelope));
  }
  cv_.notify_one();
}

std::vector<Envelope> Mailbox::drainReady(Clock::time_point now) {
  std::vector<Envelope> ready;
  const util::MutexLock lock(mutex_);
  while (!queue_.empty() && queue_.top().deliverAt <= now) {
    ready.push_back(queue_.top());
    queue_.pop();
  }
  return ready;
}

void Mailbox::waitReadyOrDeadline(Clock::time_point deadline) {
  util::CondVarLock lock(mutex_);
  for (;;) {
    const auto now = Clock::now();
    if (now >= deadline) return;
    if (!queue_.empty()) {
      if (queue_.top().deliverAt <= now) return;
      // Sleep until the earliest in-flight message lands (or the round
      // boundary, whichever is first).
      const auto wake = std::min(deadline, queue_.top().deliverAt);
      lock.waitUntil(cv_, wake);
    } else {
      lock.waitUntil(cv_, deadline);
    }
    // Spurious wakeups and interrupt() both land here; the loop
    // re-evaluates the condition and the deadline.
    if (Clock::now() >= deadline) return;
  }
}

void Mailbox::interrupt() { cv_.notify_all(); }

InMemoryTransport::InMemoryTransport(Options options, util::Rng rng)
    : options_(options), rng_(rng) {
  EPTO_ENSURE_MSG(options_.lossRate >= 0.0 && options_.lossRate < 1.0,
                  "loss rate must be in [0, 1)");
  EPTO_ENSURE_MSG(options_.corruptionRate >= 0.0 && options_.corruptionRate < 1.0,
                  "corruption rate must be in [0, 1)");
  EPTO_ENSURE_MSG(options_.minDelay.count() >= 0, "minDelay must not be negative");
  EPTO_ENSURE_MSG(options_.minDelay <= options_.maxDelay,
                  "minDelay must not exceed maxDelay");
}

void InMemoryTransport::attachFaults(fault::FaultController* faults,
                                     std::function<Timestamp()> now) {
  EPTO_ENSURE_MSG(faults == nullptr || now != nullptr,
                  "fault controller needs a clock");
  faults_ = faults;
  faultNow_ = std::move(now);
}

void InMemoryTransport::registerEndpoint(ProcessId id) {
  const auto [it, inserted] = mailboxes_.emplace(id, std::make_unique<Mailbox>());
  EPTO_ENSURE_MSG(inserted, "endpoint registered twice");
}

Mailbox& InMemoryTransport::mailboxOf(ProcessId id) {
  const auto it = mailboxes_.find(id);
  EPTO_ENSURE_MSG(it != mailboxes_.end(), "unknown endpoint");
  return *it->second;
}

void InMemoryTransport::send(ProcessId from, ProcessId to, BallPtr ball) {
  bool dropped = false;
  bool faultDropped = false;
  bool corrupt = false;
  std::size_t corruptOffsetSeed = 0;
  std::chrono::microseconds delay{0};
  std::chrono::microseconds faultDelay{0};

  if (faults_ != nullptr) {
    const Timestamp now = faultNow_();
    const fault::FaultController::LinkFate fate = faults_->linkFate(from, to, now);
    if (fate.cut) {
      faults_->noteLinkDrop(from, to, now, fate.cutBy);
      dropped = faultDropped = true;
    } else {
      if (fate.extraLossRate > 0.0) {
        const util::MutexLock lock(rngMutex_);
        if (rng_.chance(fate.extraLossRate)) {
          dropped = faultDropped = true;
        }
      }
      if (faultDropped) {
        faults_->noteLinkDrop(from, to, now, fault::FaultKind::BurstLoss);
      } else if (fate.extraDelay > 0) {
        faultDelay = std::chrono::microseconds(static_cast<std::int64_t>(fate.extraDelay));
        faults_->noteDelayed(from, to, now);
      }
    }
  }

  {
    const util::MutexLock lock(rngMutex_);
    if (!dropped) dropped = rng_.chance(options_.lossRate);
    if (!dropped && options_.maxDelay > options_.minDelay) {
      const auto span =
          static_cast<std::uint64_t>((options_.maxDelay - options_.minDelay).count());
      delay = options_.minDelay + std::chrono::microseconds(rng_.below(span + 1));
    } else {
      delay = options_.minDelay;
    }
    if (!dropped && options_.serializeFrames) {
      corrupt = rng_.chance(options_.corruptionRate);
      if (corrupt) corruptOffsetSeed = static_cast<std::size_t>(rng_());
    }
  }

  Envelope envelope;
  envelope.from = from;
  envelope.deliverAt = Clock::now() + delay + faultDelay;
  std::size_t bytes = 0;
  if (!dropped) {
    if (options_.serializeFrames) {
      auto frame = codec::encodeBall(
          *ball, codec::EncodeOptions{.lineage = options_.wireLineage,
                                      .qos = options_.wireQos});
      if (corrupt && !frame.empty()) {
        // Flip one bit of one byte — the classic in-flight mangling.
        frame[corruptOffsetSeed % frame.size()] ^= std::byte{0x10};
      }
      bytes = frame.size();
      envelope.frame =
          std::make_shared<const std::vector<std::byte>>(std::move(frame));
    } else {
      envelope.ball = std::move(ball);
    }
  }

  {
    const util::MutexLock lock(statsMutex_);
    ++stats_.sent;
    stats_.bytesSent += bytes;
    if (dropped) ++stats_.dropped;
    if (faultDropped) ++stats_.faultDrops;
  }
  if (dropped) return;
  mailboxOf(to).push(std::move(envelope));
}

BallPtr InMemoryTransport::openEnvelope(const Envelope& envelope) {
  if (envelope.ball != nullptr) return envelope.ball;
  EPTO_ENSURE_MSG(envelope.frame != nullptr, "envelope carries neither ball nor frame");
  auto decoded = codec::decodeBall(*envelope.frame);
  if (!decoded.ok()) {
    const util::MutexLock lock(statsMutex_);
    ++stats_.framesRejected;
    return nullptr;
  }
  return std::make_shared<const Ball>(std::move(decoded.ball));
}

InMemoryTransport::Stats InMemoryTransport::stats() const {
  const util::MutexLock lock(statsMutex_);
  return stats_;
}

}  // namespace epto::runtime

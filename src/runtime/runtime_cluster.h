// RuntimeCluster — a real multi-threaded EpTO deployment in one address
// space (the §8.5 "real system implementation" the paper leaves as future
// work).
//
// Each node runs on its own thread: it blocks on its mailbox until the
// next (steady-clock) round boundary, feeds arriving balls to its
// sans-io epto::Process, injects application broadcasts, executes the
// round and ships the resulting ball through the loss/delay-injecting
// InMemoryTransport. Nothing is synchronized across nodes — rounds drift
// and interleave like real processes — which exercises exactly the
// asynchrony the discrete simulator serializes away.
//
// The protocol core itself is only ever touched from its owning node
// thread; cross-thread interaction happens through the mailbox, the
// broadcast queue and the mutex-guarded tracker.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include <string>

#include <unordered_map>

#include "adapt/controller.h"
#include "core/process.h"
#include "fault/fault_controller.h"
#include "fault/fault_plan.h"
#include "metrics/delivery_tracker.h"
#include "metrics/quiescence.h"
#include "obs/latency.h"
#include "obs/registry.h"
#include "obs/scrape.h"
#include "runtime/transport.h"
#include "util/mutex.h"
#include "util/rng.h"
#include "util/thread_annotations.h"

namespace epto::runtime {

struct RuntimeOptions {
  std::size_t nodeCount = 8;
  /// Round period delta; jittered per round by +- roundJitter.
  std::chrono::microseconds roundPeriod{3000};
  double roundJitter = 0.05;
  ClockMode clockMode = ClockMode::Logical;
  double c = 2.0;
  std::optional<std::size_t> fanoutOverride;
  std::optional<std::uint32_t> ttlOverride;
  /// Transport adversity.
  double lossRate = 0.0;
  std::chrono::microseconds minDelay{0};
  std::chrono::microseconds maxDelay{0};
  /// Ship balls as wire-codec frames (serialize/deserialize end-to-end)
  /// instead of shared pointers; see codec/ball_codec.h.
  bool serializeFrames = false;
  /// With serializeFrames: per-frame probability of a flipped bit in
  /// flight; corrupted frames must be detected and dropped by CRC.
  double corruptionRate = 0.0;
  /// With serializeFrames: ship version-2 frames carrying per-event
  /// lineage (hop, origin round, incarnation). Default on — the runtime
  /// is homogeneous; turn off to emulate a mixed fleet with v1 decoders.
  bool wireLineage = true;
  /// With serializeFrames: let frames carry per-event QoS classes. The
  /// codec only actually emits the flag (and the per-event byte) for
  /// balls containing a Fast event, so this is wire-neutral for
  /// Safe-only traffic. Off emulates a fleet whose decoders predate QoS.
  bool wireQos = true;
  /// Speculative delivery (core/speculation.h): Fast-class broadcasts
  /// are surfaced ahead of the committed frontier with confirm/revoke
  /// notifications. Committed delivery is unaffected.
  bool speculation = false;
  double speculationThreshold = 0.9;
  std::size_t speculationWindow = 64;
  /// Online TTL/K feedback control (adapt/controller.h): each node runs
  /// a FeedbackController off its observed ball-arrival shortfall and
  /// retunes its Process within the Lemma-safe envelope.
  bool adaptive = false;
  /// Ceiling of the adaptation envelope (worst loss compensated).
  double adaptiveWorstCaseLoss = 0.15;
  /// Loss rate the cluster starts tuned for.
  double adaptiveInitialLoss = 0.0;
  /// When non-empty, the flight recorder (obs/flight_recorder.h) is
  /// dumped to this JSONL file whenever a fault-plan crash takes a node
  /// down (and on demand via dumpFlightRecorder()).
  std::string flightDumpPath;
  /// Scheduled fault injection (fault/fault_plan.h). Timestamps are in
  /// microseconds since the cluster epoch (start()). Null = fault-free.
  /// Must outlive the cluster. A crashed node's loop tears its Process
  /// down and idles; at the restart time it rejoins with fresh state (a
  /// new incarnation of the same ProcessId) and must re-converge.
  const fault::FaultPlan* faultPlan = nullptr;
  std::uint64_t seed = 42;
  /// Background metrics scrape. 0 disables the thread unless
  /// metricsOutPath is set (then a 100ms default applies). Every node
  /// publishes its MetricsSnapshot into the cluster registry after each
  /// round; the scrape thread snapshots the registry run-wide.
  std::chrono::milliseconds scrapeInterval{0};
  /// JSONL time-series destination; empty = no file output.
  std::string metricsOutPath;
};

class RuntimeCluster {
 public:
  explicit RuntimeCluster(RuntimeOptions options);
  ~RuntimeCluster();

  RuntimeCluster(const RuntimeCluster&) = delete;
  RuntimeCluster& operator=(const RuntimeCluster&) = delete;

  /// Launch all node threads.
  void start();

  /// Ask node `index` to broadcast; the event is created on the node's
  /// thread before its next round. Callable from any thread. Fast-class
  /// broadcasts are eligible for speculative delivery (no-op unless
  /// options.speculation is on).
  void broadcast(std::size_t index, PayloadPtr payload = {},
                 QosClass qos = QosClass::Safe);

  /// Signal and join all node threads. Idempotent.
  void stop();

  /// Block until every broadcast so far has been delivered by every node
  /// that still owes it — crashed nodes owe nothing, restarted nodes only
  /// owe events broadcast after they rejoined — or `timeout` elapsed.
  /// Returns true when fully drained; on timeout, lastQuiescenceReport()
  /// names the outstanding (event, nodes) pairs.
  bool awaitQuiescence(std::chrono::milliseconds timeout) EPTO_EXCLUDES(trackerMutex_);

  /// Diagnosis of the most recent awaitQuiescence() timeout ("" after a
  /// successful wait).
  [[nodiscard]] std::string lastQuiescenceReport() const EPTO_EXCLUDES(trackerMutex_);

  /// Judge the run so far (normally called after stop()).
  [[nodiscard]] metrics::TrackerReport report() const EPTO_EXCLUDES(trackerMutex_);

  [[nodiscard]] std::size_t fanoutUsed() const noexcept { return fanout_; }
  [[nodiscard]] std::uint32_t ttlUsed() const noexcept { return ttl_; }
  [[nodiscard]] InMemoryTransport::Stats transportStats() const {
    return transport_.stats();
  }
  [[nodiscard]] std::uint64_t broadcastCount() const;
  /// Null when the cluster has no fault plan.
  [[nodiscard]] const fault::FaultController* faultController() const noexcept {
    return faults_.get();
  }
  /// True while node `index` is inside a fault-injected crash window.
  [[nodiscard]] bool nodeDown(std::size_t index) const;

  /// The run-wide metrics registry (per-node epto_* instruments plus the
  /// transport counters). Safe to snapshot from any thread at any time.
  [[nodiscard]] obs::Registry& metricsRegistry() noexcept { return registry_; }
  /// Prometheus text exposition of the registry, covering every
  /// OrderingStats/DisseminationStats counter of every node.
  [[nodiscard]] std::string prometheusSnapshot();
  /// Scrapes performed by the background loop (0 when disabled).
  [[nodiscard]] std::uint64_t scrapeCount() const noexcept {
    return scrape_ != nullptr ? scrape_->scrapeCount() : 0;
  }
  /// The cluster-wide latency decomposition sink (obs/latency.h); install
  /// hooks before start().
  [[nodiscard]] obs::LatencyRecorder& latencyRecorder() noexcept {
    return latencyRecorder_;
  }
  /// Dump the process-global flight recorder to `path` (JSONL, append),
  /// tagged with `reason`. Returns records written. Callable any time —
  /// the operator's "what just happened" lever.
  std::size_t dumpFlightRecorder(const std::string& path,
                                 const std::string& reason = "manual");

 private:
  struct PendingBroadcast {
    PayloadPtr payload;
    QosClass qos = QosClass::Safe;
  };

  struct NodeState {
    ProcessId id = 0;
    std::unique_ptr<Process> process;  ///< node-thread only.
    /// Feedback controller (node-thread only; null unless adaptive).
    std::unique_ptr<adapt::FeedbackController> controller;
    std::uint64_t lastBallsReceived = 0;  ///< node-thread only.
    std::thread thread;
    /// Leaf lock: never held together with trackerMutex_ (DESIGN.md §12).
    util::Mutex broadcastMutex;
    std::vector<PendingBroadcast> pendingBroadcasts EPTO_GUARDED_BY(broadcastMutex);
    /// False while inside a crash window. Written by the node thread,
    /// read by broadcast() and the quiescence bookkeeping.
    std::atomic<bool> up{true};
    std::uint32_t incarnation = 0;  ///< node-thread only.
  };

  void nodeLoop(NodeState& node);
  [[nodiscard]] std::unique_ptr<Process> makeProcess(ProcessId id,
                                                     std::uint32_t incarnation);
  /// Fresh controller starting at the cluster's static tuning (null when
  /// adaptation is off). Re-created on restart with the Process it steers.
  [[nodiscard]] std::unique_ptr<adapt::FeedbackController> makeController(
      ProcessId id) const;
  /// Enter/leave a crash window (node thread). Handles tracker, ledger,
  /// lifetime and controller bookkeeping.
  void enterCrash(NodeState& node) EPTO_EXCLUDES(trackerMutex_);
  void leaveCrash(NodeState& node) EPTO_EXCLUDES(trackerMutex_);
  [[nodiscard]] std::vector<ProcessId> upNodes() const;
  void syncTransportMetrics();
  [[nodiscard]] Timestamp ticksNow() const;

  RuntimeOptions options_;
  std::size_t fanout_ = 0;
  std::uint32_t ttl_ = 0;
  Clock::time_point epoch_;

  util::Rng masterRng_;
  /// Constructed before transport_ (which stores a pointer to it).
  std::unique_ptr<fault::FaultController> faults_;
  InMemoryTransport transport_;
  std::vector<std::unique_ptr<NodeState>> nodes_;

  obs::Registry registry_;
  /// Constructed after registry_ (it registers its histograms there).
  obs::LatencyRecorder latencyRecorder_{registry_};
  std::unique_ptr<obs::ScrapeLoop> scrape_;

  /// Correctness-accounting capability: tracker, ledger, lifetimes and
  /// the quiescence diagnosis move together. Leaf lock — nothing else is
  /// ever acquired while it is held.
  mutable util::Mutex trackerMutex_;
  metrics::DeliveryTracker tracker_ EPTO_GUARDED_BY(trackerMutex_);
  /// Who still owes which event (fault-aware quiescence).
  metrics::QuiescenceLedger ledger_ EPTO_GUARDED_BY(trackerMutex_);
  /// Final-incarnation lifetimes for report().
  std::unordered_map<ProcessId, metrics::ProcessLifetime> lifetimes_
      EPTO_GUARDED_BY(trackerMutex_);
  std::string quiescenceReport_ EPTO_GUARDED_BY(trackerMutex_);
  /// broadcast() requests not yet injected by node threads; quiescence
  /// requires the queue drained AND every owed delivery performed.
  std::atomic<std::uint64_t> requestedBroadcasts_{0};
  /// Requests discarded because the target node was crashed.
  std::atomic<std::uint64_t> discardedBroadcasts_{0};

  std::atomic<bool> running_{false};
  std::atomic<bool> stopRequested_{false};
};

}  // namespace epto::runtime

// RuntimeCluster — a real multi-threaded EpTO deployment in one address
// space (the §8.5 "real system implementation" the paper leaves as future
// work).
//
// Each node runs on its own thread: it blocks on its mailbox until the
// next (steady-clock) round boundary, feeds arriving balls to its
// sans-io epto::Process, injects application broadcasts, executes the
// round and ships the resulting ball through the loss/delay-injecting
// InMemoryTransport. Nothing is synchronized across nodes — rounds drift
// and interleave like real processes — which exercises exactly the
// asynchrony the discrete simulator serializes away.
//
// The protocol core itself is only ever touched from its owning node
// thread; cross-thread interaction happens through the mailbox, the
// broadcast queue and the mutex-guarded tracker.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include <string>

#include "core/process.h"
#include "metrics/delivery_tracker.h"
#include "obs/registry.h"
#include "obs/scrape.h"
#include "runtime/transport.h"
#include "util/rng.h"

namespace epto::runtime {

struct RuntimeOptions {
  std::size_t nodeCount = 8;
  /// Round period delta; jittered per round by +- roundJitter.
  std::chrono::microseconds roundPeriod{3000};
  double roundJitter = 0.05;
  ClockMode clockMode = ClockMode::Logical;
  double c = 2.0;
  std::optional<std::size_t> fanoutOverride;
  std::optional<std::uint32_t> ttlOverride;
  /// Transport adversity.
  double lossRate = 0.0;
  std::chrono::microseconds minDelay{0};
  std::chrono::microseconds maxDelay{0};
  /// Ship balls as wire-codec frames (serialize/deserialize end-to-end)
  /// instead of shared pointers; see codec/ball_codec.h.
  bool serializeFrames = false;
  /// With serializeFrames: per-frame probability of a flipped bit in
  /// flight; corrupted frames must be detected and dropped by CRC.
  double corruptionRate = 0.0;
  std::uint64_t seed = 42;
  /// Background metrics scrape. 0 disables the thread unless
  /// metricsOutPath is set (then a 100ms default applies). Every node
  /// publishes its MetricsSnapshot into the cluster registry after each
  /// round; the scrape thread snapshots the registry run-wide.
  std::chrono::milliseconds scrapeInterval{0};
  /// JSONL time-series destination; empty = no file output.
  std::string metricsOutPath;
};

class RuntimeCluster {
 public:
  explicit RuntimeCluster(RuntimeOptions options);
  ~RuntimeCluster();

  RuntimeCluster(const RuntimeCluster&) = delete;
  RuntimeCluster& operator=(const RuntimeCluster&) = delete;

  /// Launch all node threads.
  void start();

  /// Ask node `index` to broadcast; the event is created on the node's
  /// thread before its next round. Callable from any thread.
  void broadcast(std::size_t index, PayloadPtr payload = {});

  /// Signal and join all node threads. Idempotent.
  void stop();

  /// Block until every broadcast so far has been delivered everywhere or
  /// `timeout` elapsed. Returns true when fully drained.
  bool awaitQuiescence(std::chrono::milliseconds timeout);

  /// Judge the run so far (normally called after stop()).
  [[nodiscard]] metrics::TrackerReport report() const;

  [[nodiscard]] std::size_t fanoutUsed() const noexcept { return fanout_; }
  [[nodiscard]] std::uint32_t ttlUsed() const noexcept { return ttl_; }
  [[nodiscard]] InMemoryTransport::Stats transportStats() const {
    return transport_.stats();
  }
  [[nodiscard]] std::uint64_t broadcastCount() const;

  /// The run-wide metrics registry (per-node epto_* instruments plus the
  /// transport counters). Safe to snapshot from any thread at any time.
  [[nodiscard]] obs::Registry& metricsRegistry() noexcept { return registry_; }
  /// Prometheus text exposition of the registry, covering every
  /// OrderingStats/DisseminationStats counter of every node.
  [[nodiscard]] std::string prometheusSnapshot();
  /// Scrapes performed by the background loop (0 when disabled).
  [[nodiscard]] std::uint64_t scrapeCount() const noexcept {
    return scrape_ != nullptr ? scrape_->scrapeCount() : 0;
  }

 private:
  struct NodeState {
    ProcessId id = 0;
    std::unique_ptr<Process> process;
    std::thread thread;
    std::mutex broadcastMutex;
    std::vector<PayloadPtr> pendingBroadcasts;
  };

  void nodeLoop(NodeState& node);
  void syncTransportMetrics();
  [[nodiscard]] Timestamp ticksNow() const;

  RuntimeOptions options_;
  std::size_t fanout_ = 0;
  std::uint32_t ttl_ = 0;
  Clock::time_point epoch_;

  util::Rng masterRng_;
  InMemoryTransport transport_;
  std::vector<std::unique_ptr<NodeState>> nodes_;

  obs::Registry registry_;
  std::unique_ptr<obs::ScrapeLoop> scrape_;

  mutable std::mutex trackerMutex_;
  metrics::DeliveryTracker tracker_;
  std::uint64_t expectedDeliveries_ = 0;  // broadcasts * nodeCount, under trackerMutex_
  /// broadcast() requests not yet injected by node threads; quiescence
  /// requires the queue drained AND every event delivered everywhere.
  std::atomic<std::uint64_t> requestedBroadcasts_{0};

  std::atomic<bool> running_{false};
  std::atomic<bool> stopRequested_{false};
};

}  // namespace epto::runtime

// Hashed timer wheel — the per-shard round scheduler.
//
// A shard owns many EpTO nodes, each with its own jittered round
// deadline. The thread-per-node runtime got scheduling for free (every
// node slept on its own socket until its own deadline); a shard thread
// needs one structure answering two questions cheaply on every loop
// iteration: "how long may I block in poll()?" (nextDue) and "which
// nodes' rounds are due now?" (expire). A hashed wheel gives both at
// O(1) amortized per timer: slots of `granularity` width, a timer lives
// in the slot of its due tick, and the cursor sweeps slots as time
// advances. Entries hashed into a visited slot from a future lap are
// simply left in place — the cursor re-checks the due tick each pass.
//
// Owned and driven by exactly one shard thread (like IngressQueue and
// Reassembler, thread-safety lives one level up); deterministic given
// the time points fed in, so it is unit-testable without sleeping.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <vector>

#include "check/schedule_point.h"
#include "util/ensure.h"

namespace epto::runtime {

class TimerWheel {
 public:
  using Clock = std::chrono::steady_clock;
  using TimePoint = Clock::time_point;

  /// `granularity` is the slot width (timers within one slot fire
  /// together once the cursor passes them — sub-granularity deadlines
  /// degrade gracefully because expire() fires anything with due <= now,
  /// including the current slot). `slotCount` trades memory for fewer
  /// future-lap collisions; one lap spans granularity * slotCount.
  TimerWheel(std::chrono::microseconds granularity, std::size_t slotCount,
             TimePoint epoch)
      : granularity_(granularity), epoch_(epoch), slots_(slotCount) {
    EPTO_ENSURE_MSG(granularity_.count() > 0, "wheel granularity must be positive");
    EPTO_ENSURE_MSG(slotCount > 0, "wheel needs at least one slot");
  }

  /// Arm a timer. Ids are caller-scoped (node indices here); the wheel
  /// does not deduplicate — schedule once per expire, like the node loop
  /// re-arms its next round after running one.
  void schedule(std::uint32_t id, TimePoint due) {
    // Single-threaded component: points at op entry only — interleaving
    // *within* an op would model schedules the owning shard cannot run.
    EPTO_SCHEDULE_POINT("wheel.schedule");
    const std::uint64_t dueTick = tickOf(due);
    // A due tick the cursor already swept would never be visited again
    // this lap; park it in the cursor's slot so the next expire() call
    // (which always re-checks the cursor slot) fires it immediately.
    const std::uint64_t insertTick = dueTick > cursorTick_ ? dueTick : cursorTick_;
    slots_[insertTick % slots_.size()].push_back(Entry{dueTick, id});
    ++armed_;
  }

  /// Fire every timer with due <= now, appending ids to `out` (order
  /// within a call is unspecified — callers needing fairness shuffle or
  /// rotate). Returns the number fired.
  std::size_t expire(TimePoint now, std::vector<std::uint32_t>& out) {
    EPTO_SCHEDULE_POINT("wheel.expire");
    const std::uint64_t nowTick = tickOf(now);
    std::size_t fired = 0;
    if (nowTick - cursorTick_ >= slots_.size()) {
      // The wheel slept through at least one full lap: every slot is in
      // the sweep window, so visit each physical slot exactly once.
      for (auto& slot : slots_) fired += drainDue(slot, nowTick, out);
      cursorTick_ = nowTick;
      return fired;
    }
    for (;; ++cursorTick_) {
      fired += drainDue(slots_[cursorTick_ % slots_.size()], nowTick, out);
      if (cursorTick_ == nowTick) break;
    }
    return fired;
  }

  /// Earliest armed due time, or nullopt when the wheel is empty — the
  /// shard's poll() timeout. Linear in armed timers (a shard owns at
  /// most a few thousand nodes; this is nanoseconds against a syscall).
  [[nodiscard]] std::optional<TimePoint> nextDue() const {
    EPTO_SCHEDULE_POINT("wheel.nextDue");
    if (armed_ == 0) return std::nullopt;
    std::uint64_t best = UINT64_MAX;
    for (const auto& slot : slots_) {
      for (const Entry& entry : slot) best = entry.dueTick < best ? entry.dueTick : best;
    }
    return epoch_ + granularity_ * static_cast<std::int64_t>(best);
  }

  [[nodiscard]] std::size_t size() const noexcept { return armed_; }
  [[nodiscard]] bool empty() const noexcept { return armed_ == 0; }

 private:
  struct Entry {
    std::uint64_t dueTick = 0;
    std::uint32_t id = 0;
  };

  [[nodiscard]] std::uint64_t tickOf(TimePoint tp) const {
    if (tp <= epoch_) return 0;
    return static_cast<std::uint64_t>((tp - epoch_) / granularity_);
  }

  std::size_t drainDue(std::vector<Entry>& slot, std::uint64_t nowTick,
                       std::vector<std::uint32_t>& out) {
    std::size_t fired = 0;
    for (std::size_t i = 0; i < slot.size();) {
      if (slot[i].dueTick <= nowTick) {
        out.push_back(slot[i].id);
        slot[i] = slot.back();
        slot.pop_back();
        ++fired;
      } else {
        ++i;  // future lap — stays for a later pass
      }
    }
    armed_ -= fired;
    return fired;
  }

  std::chrono::microseconds granularity_;
  TimePoint epoch_;
  std::vector<std::vector<Entry>> slots_;
  std::uint64_t cursorTick_ = 0;
  std::size_t armed_ = 0;
};

}  // namespace epto::runtime

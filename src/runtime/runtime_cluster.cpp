#include "runtime/runtime_cluster.h"

#include <algorithm>
#include <numeric>

#include "obs/exporters.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "util/ensure.h"

namespace epto::runtime {

namespace {

/// Uniform sampler over a static membership 0..count-1 (the runtime
/// cluster has fixed membership; a deployment would plug a real PSS in).
class StaticUniformSampler final : public PeerSampler {
 public:
  StaticUniformSampler(ProcessId self, std::size_t count, util::Rng rng)
      : self_(self), rng_(rng) {
    others_.reserve(count - 1);
    for (std::size_t id = 0; id < count; ++id) {
      if (static_cast<ProcessId>(id) != self) others_.push_back(static_cast<ProcessId>(id));
    }
  }

  std::vector<ProcessId> samplePeers(std::size_t k) override {
    const std::size_t want = std::min(k, others_.size());
    for (std::size_t i = 0; i < want; ++i) {
      const std::size_t j = i + rng_.below(others_.size() - i);
      std::swap(others_[i], others_[j]);
    }
    return {others_.begin(), others_.begin() + static_cast<std::ptrdiff_t>(want)};
  }

 private:
  ProcessId self_;
  util::Rng rng_;
  std::vector<ProcessId> others_;
};

}  // namespace

RuntimeCluster::RuntimeCluster(RuntimeOptions options)
    : options_(options),
      epoch_(Clock::now()),
      masterRng_(options.seed),
      faults_(options.faultPlan != nullptr
                  ? std::make_unique<fault::FaultController>(*options.faultPlan)
                  : nullptr),
      transport_(InMemoryTransport::Options{options.lossRate, options.minDelay,
                                            options.maxDelay, options.serializeFrames,
                                            options.corruptionRate, options.wireLineage,
                                            options.wireQos},
                 masterRng_.split()) {
  EPTO_ENSURE_MSG(options_.nodeCount >= 2, "need at least two nodes");
  EPTO_ENSURE_MSG(options_.roundPeriod.count() > 0, "round period must be positive");
  if (faults_ != nullptr) {
    EPTO_ENSURE_MSG(faults_->plan().maxNode() < options_.nodeCount,
                    "fault plan targets a node beyond the cluster size");
    transport_.attachFaults(faults_.get(), [this] { return ticksNow(); });
  }

  const Config derived = Config::forSystemSize(options_.nodeCount, options_.clockMode,
                                               Robustness{.c = options_.c});
  fanout_ = options_.fanoutOverride.value_or(derived.fanout);
  ttl_ = options_.ttlOverride.value_or(derived.ttl);

  nodes_.reserve(options_.nodeCount);
  for (std::size_t i = 0; i < options_.nodeCount; ++i) {
    const auto id = static_cast<ProcessId>(i);
    transport_.registerEndpoint(id);

    auto node = std::make_unique<NodeState>();
    node->id = id;
    node->process = makeProcess(id, /*incarnation=*/0);
    node->controller = makeController(id);
    nodes_.push_back(std::move(node));
    lifetimes_[id] = metrics::ProcessLifetime{0, std::nullopt};
  }

  // Register every node's instruments (at their zero values) before any
  // thread runs, so a scrape or Prometheus exposition taken at any point
  // of the run already covers the full metric surface.
  for (const auto& node : nodes_) node->process->metricsSnapshot().recordTo(registry_);
  syncTransportMetrics();

  auto scrapeInterval = options_.scrapeInterval;
  if (scrapeInterval.count() == 0 && !options_.metricsOutPath.empty()) {
    scrapeInterval = std::chrono::milliseconds(100);
  }
  if (scrapeInterval.count() > 0) {
    scrape_ = std::make_unique<obs::ScrapeLoop>(
        registry_,
        obs::ScrapeLoop::Options{scrapeInterval, options_.metricsOutPath},
        [this] { return ticksNow(); }, [this] { syncTransportMetrics(); });
  }
}

RuntimeCluster::~RuntimeCluster() { stop(); }

std::unique_ptr<Process> RuntimeCluster::makeProcess(ProcessId id,
                                                     std::uint32_t incarnation) {
  Config cfg;
  cfg.fanout = fanout_;
  cfg.ttl = ttl_;
  cfg.clockMode = options_.clockMode;
  cfg.speculation.enabled = options_.speculation;
  cfg.speculation.confidenceThreshold = options_.speculationThreshold;
  cfg.speculation.maxWindow = options_.speculationWindow;
  cfg.stabilityModel.systemSize = options_.nodeCount;
  cfg.stabilityModel.fanout = fanout_;
  cfg.stabilityModel.messageLossRate = options_.lossRate;
  if (options_.clockMode == ClockMode::Global) {
    // Global clocks here are microsecond ticks since the epoch.
    cfg.stabilityModel.ticksPerRound =
        static_cast<Timestamp>(options_.roundPeriod.count());
  }
  // Deterministic per-(node, incarnation) sampler stream, so a restart
  // does not depend on masterRng_ (only touched on the ctor thread).
  util::Rng samplerRng(
      util::mix64(options_.seed + 0x9E3779B97F4A7C15ULL * (incarnation + 1)) ^ id);
  auto sampler =
      std::make_shared<StaticUniformSampler>(id, options_.nodeCount, samplerRng);
  auto process = std::make_unique<Process>(
      id, cfg, std::move(sampler),
      [this, id](const Event& event, DeliveryTag tag) {
        const util::MutexLock lock(trackerMutex_);
        tracker_.onDeliver(id, event.id, ticksNow(), tag);
        ledger_.onDeliver(id, event.id);
      },
      [this]() { return ticksNow(); }, &latencyRecorder_);
  process->setIncarnation(static_cast<std::uint16_t>(incarnation));
  if (incarnation > 0) {
    // Disjoint EventId range per incarnation (~1M broadcasts each).
    process->startSequenceAt(incarnation << 20U);
  }
  return process;
}

std::unique_ptr<adapt::FeedbackController> RuntimeCluster::makeController(
    ProcessId id) const {
  if (!options_.adaptive) return nullptr;
  adapt::ControllerConfig config;
  config.worstCase.systemSize = options_.nodeCount;
  config.worstCase.c = options_.c;
  config.worstCase.logicalTime = options_.clockMode == ClockMode::Logical;
  config.worstCase.messageLossRate = options_.adaptiveWorstCaseLoss;
  config.initialLossRate = options_.adaptiveInitialLoss;
  config.initialTtl = ttl_;
  config.initialFanout = fanout_;
  config.self = id;
  return std::make_unique<adapt::FeedbackController>(config);
}

Timestamp RuntimeCluster::ticksNow() const {
  return static_cast<Timestamp>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - epoch_).count());
}

void RuntimeCluster::start() {
  EPTO_ENSURE_MSG(!running_.exchange(true), "cluster already started");
  stopRequested_ = false;
  // Fault-plan timestamps are relative to start(), not construction.
  epoch_ = Clock::now();
  for (auto& node : nodes_) {
    node->thread = std::thread([this, raw = node.get()] { nodeLoop(*raw); });
  }
  if (scrape_ != nullptr) scrape_->start();
}

void RuntimeCluster::broadcast(std::size_t index, PayloadPtr payload, QosClass qos) {
  EPTO_ENSURE_MSG(index < nodes_.size(), "node index out of range");
  NodeState& node = *nodes_[index];
  if (!node.up.load(std::memory_order_acquire)) {
    // Crashed application node: the broadcast never happens. (A request
    // racing with the crash is discarded by the node loop instead.)
    discardedBroadcasts_.fetch_add(1, std::memory_order_relaxed);
    requestedBroadcasts_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  {
    const util::MutexLock lock(node.broadcastMutex);
    node.pendingBroadcasts.push_back(PendingBroadcast{std::move(payload), qos});
  }
  requestedBroadcasts_.fetch_add(1, std::memory_order_relaxed);
}

bool RuntimeCluster::nodeDown(std::size_t index) const {
  EPTO_ENSURE_MSG(index < nodes_.size(), "node index out of range");
  return !nodes_[index]->up.load(std::memory_order_acquire);
}

std::vector<ProcessId> RuntimeCluster::upNodes() const {
  std::vector<ProcessId> ids;
  ids.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    if (node->up.load(std::memory_order_acquire)) ids.push_back(node->id);
  }
  return ids;
}

void RuntimeCluster::enterCrash(NodeState& node) {
  const Timestamp now = ticksNow();
  faults_->noteCrash(node.id, now);
  if (!options_.flightDumpPath.empty()) {
    (void)obs::FlightRecorder::global().dumpTo(
        options_.flightDumpPath, "crash node=" + std::to_string(node.id));
  }
  node.process.reset();  // fresh state on rejoin — the crash loses everything
  node.up.store(false, std::memory_order_release);
  // Broadcast requests parked at this node die with it.
  std::vector<PendingBroadcast> discarded;
  {
    const util::MutexLock lock(node.broadcastMutex);
    discarded.swap(node.pendingBroadcasts);
  }
  discardedBroadcasts_.fetch_add(discarded.size(), std::memory_order_relaxed);
  {
    const util::MutexLock lock(trackerMutex_);
    tracker_.onProcessCrash(node.id, now);
    ledger_.onCrash(node.id);
    lifetimes_[node.id].leftAt = now;
  }
}

void RuntimeCluster::leaveCrash(NodeState& node) {
  const Timestamp now = ticksNow();
  // Whatever landed in the mailbox while we were dead is lost.
  (void)transport_.mailboxOf(node.id).drainReady(Clock::time_point::max());
  ++node.incarnation;
  node.process = makeProcess(node.id, node.incarnation);
  // The fresh incarnation starts from the static tuning again; whatever
  // the old controller had learned died with the old process state.
  node.controller = makeController(node.id);
  node.lastBallsReceived = 0;
  {
    const util::MutexLock lock(trackerMutex_);
    tracker_.onProcessRestart(node.id, now);
    lifetimes_[node.id] = metrics::ProcessLifetime{now, std::nullopt};
  }
  faults_->noteRestart(node.id, now);
  node.up.store(true, std::memory_order_release);
}

void RuntimeCluster::nodeLoop(NodeState& node) {
  util::Rng rng(util::mix64(options_.seed) ^ node.id);
  const auto jitteredPeriod = [&]() {
    const double factor = 1.0 + options_.roundJitter * (2.0 * rng.uniform01() - 1.0);
    return std::chrono::microseconds(static_cast<std::int64_t>(
        std::max(1.0, static_cast<double>(options_.roundPeriod.count()) * factor)));
  };

  Mailbox& mailbox = transport_.mailboxOf(node.id);
  auto nextRound = Clock::now() + jitteredPeriod();
  bool stallNoted = false;

  while (!stopRequested_.load(std::memory_order_relaxed)) {
    if (faults_ != nullptr) {
      const Timestamp now = ticksNow();
      if (faults_->isCrashed(node.id, now)) {
        if (node.up.load(std::memory_order_relaxed)) enterCrash(node);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        continue;
      }
      if (!node.up.load(std::memory_order_relaxed)) {
        leaveCrash(node);
        nextRound = Clock::now() + jitteredPeriod();
      }
      if (faults_->isStalled(node.id, now)) {
        // GC-pause model: no rounds, no mailbox drain — incoming traffic
        // piles up and the node must catch up when it resumes.
        if (!stallNoted) {
          stallNoted = true;
          faults_->noteStall(node.id, now);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        nextRound = Clock::now() + jitteredPeriod();
        continue;
      }
      stallNoted = false;
    }

    mailbox.waitReadyOrDeadline(nextRound);

    for (Envelope& envelope : mailbox.drainReady(Clock::now())) {
      if (const BallPtr ball = transport_.openEnvelope(envelope); ball != nullptr) {
        node.process->onBall(*ball);
      }
    }

    if (Clock::now() < nextRound) continue;

    // Inject application broadcasts at the round boundary.
    std::vector<PendingBroadcast> pending;
    {
      const util::MutexLock lock(node.broadcastMutex);
      pending.swap(node.pendingBroadcasts);
    }
    for (PendingBroadcast& request : pending) {
      const Event event =
          node.process->broadcast(std::move(request.payload), request.qos);
      const std::vector<ProcessId> expected = upNodes();
      const util::MutexLock lock(trackerMutex_);
      tracker_.onBroadcast(node.id, event.id, event.orderKey(), ticksNow());
      ledger_.onBroadcast(event.id, expected);
    }

    const auto out = node.process->onRound();
    if (out.ball != nullptr) {
      for (const ProcessId target : out.targets) {
        transport_.send(node.id, target, out.ball);
      }
    }
    if (node.controller != nullptr) {
      // Close the feedback loop on this node's own observations.
      const std::uint64_t ballsReceived =
          node.process->disseminationStats().ballsReceived;
      adapt::RoundSignals signals;
      signals.ballsReceived =
          static_cast<double>(ballsReceived - node.lastBallsReceived);
      node.lastBallsReceived = ballsReceived;
      const adapt::Decision decision = node.controller->onRound(signals);
      if (decision.changed) node.process->retune(decision.ttl, decision.fanout);
    }
    // Publish this node's stats into the shared registry: a handful of
    // relaxed atomic stores, so the scrape thread never touches the
    // Process and the node thread never blocks on the scrape.
    node.process->metricsSnapshot().recordTo(registry_);
    nextRound += jitteredPeriod();
  }
}

bool RuntimeCluster::awaitQuiescence(std::chrono::milliseconds timeout) {
  const auto deadline = Clock::now() + timeout;
  for (;;) {
    {
      const util::MutexLock lock(trackerMutex_);
      const bool allInjected =
          tracker_.broadcastCount() + discardedBroadcasts_.load(std::memory_order_relaxed) >=
          requestedBroadcasts_.load(std::memory_order_relaxed);
      if (allInjected && ledger_.quiescent()) {
        quiescenceReport_.clear();
        return true;
      }
      if (Clock::now() >= deadline) {
        quiescenceReport_ = allInjected
                                ? ledger_.missingReport()
                                : "broadcast requests still queued at node threads; " +
                                      ledger_.missingReport();
        return false;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

std::string RuntimeCluster::lastQuiescenceReport() const {
  const util::MutexLock lock(trackerMutex_);
  return quiescenceReport_;
}

void RuntimeCluster::stop() {
  if (!running_.exchange(false)) return;
  stopRequested_ = true;
  for (auto& node : nodes_) transport_.mailboxOf(node->id).interrupt();
  for (auto& node : nodes_) {
    if (node->thread.joinable()) node->thread.join();
  }
  if (scrape_ != nullptr) scrape_->stop();  // final post-run sample
}

void RuntimeCluster::syncTransportMetrics() {
  const InMemoryTransport::Stats stats = transport_.stats();
  registry_.counter("epto_transport_sent_total").set(stats.sent);
  registry_.counter("epto_transport_dropped_total").set(stats.dropped);
  registry_.counter("epto_transport_fault_drops_total").set(stats.faultDrops);
  registry_.counter("epto_transport_bytes_sent_total").set(stats.bytesSent);
  registry_.counter("epto_transport_frames_rejected_total").set(stats.framesRejected);
  registry_.counter("epto_trace_dropped_total").set(obs::Tracer::global().dropped());
  registry_.counter("epto_flight_dropped_total")
      .set(obs::FlightRecorder::global().dropped());
  if (faults_ != nullptr) faults_->recordTo(registry_);
}

std::size_t RuntimeCluster::dumpFlightRecorder(const std::string& path,
                                               const std::string& reason) {
  return obs::FlightRecorder::global().dumpTo(path, reason);
}

std::string RuntimeCluster::prometheusSnapshot() {
  syncTransportMetrics();
  return obs::prometheusText(registry_.snapshot());
}

metrics::TrackerReport RuntimeCluster::report() const {
  const util::MutexLock lock(trackerMutex_);
  return tracker_.finalize(lifetimes_, ticksNow());
}

std::uint64_t RuntimeCluster::broadcastCount() const {
  const util::MutexLock lock(trackerMutex_);
  return tracker_.broadcastCount();
}

}  // namespace epto::runtime

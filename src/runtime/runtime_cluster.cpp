#include "runtime/runtime_cluster.h"

#include <algorithm>
#include <numeric>

#include "obs/exporters.h"
#include "util/ensure.h"

namespace epto::runtime {

namespace {

/// Uniform sampler over a static membership 0..count-1 (the runtime
/// cluster has fixed membership; a deployment would plug a real PSS in).
class StaticUniformSampler final : public PeerSampler {
 public:
  StaticUniformSampler(ProcessId self, std::size_t count, util::Rng rng)
      : self_(self), rng_(rng) {
    others_.reserve(count - 1);
    for (std::size_t id = 0; id < count; ++id) {
      if (static_cast<ProcessId>(id) != self) others_.push_back(static_cast<ProcessId>(id));
    }
  }

  std::vector<ProcessId> samplePeers(std::size_t k) override {
    const std::size_t want = std::min(k, others_.size());
    for (std::size_t i = 0; i < want; ++i) {
      const std::size_t j = i + rng_.below(others_.size() - i);
      std::swap(others_[i], others_[j]);
    }
    return {others_.begin(), others_.begin() + static_cast<std::ptrdiff_t>(want)};
  }

 private:
  ProcessId self_;
  util::Rng rng_;
  std::vector<ProcessId> others_;
};

}  // namespace

RuntimeCluster::RuntimeCluster(RuntimeOptions options)
    : options_(options),
      epoch_(Clock::now()),
      masterRng_(options.seed),
      transport_(InMemoryTransport::Options{options.lossRate, options.minDelay,
                                            options.maxDelay, options.serializeFrames,
                                            options.corruptionRate},
                 masterRng_.split()) {
  EPTO_ENSURE_MSG(options_.nodeCount >= 2, "need at least two nodes");
  EPTO_ENSURE_MSG(options_.roundPeriod.count() > 0, "round period must be positive");

  const Config derived = Config::forSystemSize(options_.nodeCount, options_.clockMode,
                                               Robustness{.c = options_.c});
  fanout_ = options_.fanoutOverride.value_or(derived.fanout);
  ttl_ = options_.ttlOverride.value_or(derived.ttl);

  nodes_.reserve(options_.nodeCount);
  for (std::size_t i = 0; i < options_.nodeCount; ++i) {
    const auto id = static_cast<ProcessId>(i);
    transport_.registerEndpoint(id);

    auto node = std::make_unique<NodeState>();
    node->id = id;

    Config cfg;
    cfg.fanout = fanout_;
    cfg.ttl = ttl_;
    cfg.clockMode = options_.clockMode;
    auto sampler = std::make_shared<StaticUniformSampler>(id, options_.nodeCount,
                                                          masterRng_.split());
    node->process = std::make_unique<Process>(
        id, cfg, std::move(sampler),
        [this, id](const Event& event, DeliveryTag tag) {
          const std::scoped_lock lock(trackerMutex_);
          tracker_.onDeliver(id, event.id, ticksNow(), tag);
        },
        [this]() { return ticksNow(); });
    nodes_.push_back(std::move(node));
  }

  // Register every node's instruments (at their zero values) before any
  // thread runs, so a scrape or Prometheus exposition taken at any point
  // of the run already covers the full metric surface.
  for (const auto& node : nodes_) node->process->metricsSnapshot().recordTo(registry_);
  syncTransportMetrics();

  auto scrapeInterval = options_.scrapeInterval;
  if (scrapeInterval.count() == 0 && !options_.metricsOutPath.empty()) {
    scrapeInterval = std::chrono::milliseconds(100);
  }
  if (scrapeInterval.count() > 0) {
    scrape_ = std::make_unique<obs::ScrapeLoop>(
        registry_,
        obs::ScrapeLoop::Options{scrapeInterval, options_.metricsOutPath},
        [this] { return ticksNow(); }, [this] { syncTransportMetrics(); });
  }
}

RuntimeCluster::~RuntimeCluster() { stop(); }

Timestamp RuntimeCluster::ticksNow() const {
  return static_cast<Timestamp>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - epoch_).count());
}

void RuntimeCluster::start() {
  EPTO_ENSURE_MSG(!running_.exchange(true), "cluster already started");
  stopRequested_ = false;
  for (auto& node : nodes_) {
    node->thread = std::thread([this, raw = node.get()] { nodeLoop(*raw); });
  }
  if (scrape_ != nullptr) scrape_->start();
}

void RuntimeCluster::broadcast(std::size_t index, PayloadPtr payload) {
  EPTO_ENSURE_MSG(index < nodes_.size(), "node index out of range");
  NodeState& node = *nodes_[index];
  {
    const std::scoped_lock lock(node.broadcastMutex);
    node.pendingBroadcasts.push_back(std::move(payload));
  }
  requestedBroadcasts_.fetch_add(1, std::memory_order_relaxed);
}

void RuntimeCluster::nodeLoop(NodeState& node) {
  util::Rng rng(util::mix64(options_.seed) ^ node.id);
  const auto jitteredPeriod = [&]() {
    const double factor = 1.0 + options_.roundJitter * (2.0 * rng.uniform01() - 1.0);
    return std::chrono::microseconds(static_cast<std::int64_t>(
        std::max(1.0, static_cast<double>(options_.roundPeriod.count()) * factor)));
  };

  Mailbox& mailbox = transport_.mailboxOf(node.id);
  auto nextRound = Clock::now() + jitteredPeriod();

  while (!stopRequested_.load(std::memory_order_relaxed)) {
    mailbox.waitReadyOrDeadline(nextRound);

    for (Envelope& envelope : mailbox.drainReady(Clock::now())) {
      if (const BallPtr ball = transport_.openEnvelope(envelope); ball != nullptr) {
        node.process->onBall(*ball);
      }
    }

    if (Clock::now() < nextRound) continue;

    // Inject application broadcasts at the round boundary.
    std::vector<PayloadPtr> pending;
    {
      const std::scoped_lock lock(node.broadcastMutex);
      pending.swap(node.pendingBroadcasts);
    }
    for (PayloadPtr& payload : pending) {
      const Event event = node.process->broadcast(std::move(payload));
      const std::scoped_lock lock(trackerMutex_);
      tracker_.onBroadcast(node.id, event.id, event.orderKey(), ticksNow());
      expectedDeliveries_ += nodes_.size();
    }

    const auto out = node.process->onRound();
    if (out.ball != nullptr) {
      for (const ProcessId target : out.targets) {
        transport_.send(node.id, target, out.ball);
      }
    }
    // Publish this node's stats into the shared registry: a handful of
    // relaxed atomic stores, so the scrape thread never touches the
    // Process and the node thread never blocks on the scrape.
    node.process->metricsSnapshot().recordTo(registry_);
    nextRound += jitteredPeriod();
  }
}

bool RuntimeCluster::awaitQuiescence(std::chrono::milliseconds timeout) {
  const auto deadline = Clock::now() + timeout;
  for (;;) {
    {
      const std::scoped_lock lock(trackerMutex_);
      const bool allInjected =
          tracker_.broadcastCount() >= requestedBroadcasts_.load(std::memory_order_relaxed);
      if (allInjected && tracker_.deliveryCount() >= expectedDeliveries_) return true;
    }
    if (Clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

void RuntimeCluster::stop() {
  if (!running_.exchange(false)) return;
  stopRequested_ = true;
  for (auto& node : nodes_) transport_.mailboxOf(node->id).interrupt();
  for (auto& node : nodes_) {
    if (node->thread.joinable()) node->thread.join();
  }
  if (scrape_ != nullptr) scrape_->stop();  // final post-run sample
}

void RuntimeCluster::syncTransportMetrics() {
  const InMemoryTransport::Stats stats = transport_.stats();
  registry_.counter("epto_transport_sent_total").set(stats.sent);
  registry_.counter("epto_transport_dropped_total").set(stats.dropped);
  registry_.counter("epto_transport_bytes_sent_total").set(stats.bytesSent);
  registry_.counter("epto_transport_frames_rejected_total").set(stats.framesRejected);
}

std::string RuntimeCluster::prometheusSnapshot() {
  syncTransportMetrics();
  return obs::prometheusText(registry_.snapshot());
}

metrics::TrackerReport RuntimeCluster::report() const {
  std::unordered_map<ProcessId, metrics::ProcessLifetime> lifetimes;
  for (const auto& node : nodes_) {
    lifetimes[node->id] = metrics::ProcessLifetime{0, std::nullopt};
  }
  const std::scoped_lock lock(trackerMutex_);
  return tracker_.finalize(lifetimes, ticksNow());
}

std::uint64_t RuntimeCluster::broadcastCount() const {
  const std::scoped_lock lock(trackerMutex_);
  return tracker_.broadcastCount();
}

}  // namespace epto::runtime

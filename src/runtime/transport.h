// In-memory transport for the threaded runtime (paper §8.5).
//
// The real-system counterpart of sim::SimNetwork: every node owns a
// mailbox; send() applies an independent loss trial and a uniformly
// random delivery delay, then enqueues the ball into the target's
// mailbox. Node threads block on their mailbox with a deadline (the next
// round boundary), which gives the runtime real asynchrony — messages
// arrive whenever they arrive, rounds fire on the node's own steady
// clock, and nothing is globally synchronized.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "core/types.h"
#include "fault/fault_controller.h"
#include "util/mutex.h"
#include "util/rng.h"
#include "util/thread_annotations.h"

namespace epto::runtime {

using Clock = std::chrono::steady_clock;

struct Envelope {
  ProcessId from = 0;
  /// Exactly one of `ball` (in-memory mode) or `frame` (serialized mode)
  /// is set; see InMemoryTransport::Options::serializeFrames.
  BallPtr ball;
  std::shared_ptr<const std::vector<std::byte>> frame;
  Clock::time_point deliverAt;
};

/// One node's inbox. Thread-safe; a single consumer (the node thread)
/// and many producers.
class Mailbox {
 public:
  void push(Envelope envelope) EPTO_EXCLUDES(mutex_);

  /// All envelopes whose delivery time has passed, in delivery order.
  [[nodiscard]] std::vector<Envelope> drainReady(Clock::time_point now)
      EPTO_EXCLUDES(mutex_);

  /// Block until an envelope is (or becomes) ready, or until `deadline`.
  void waitReadyOrDeadline(Clock::time_point deadline) EPTO_EXCLUDES(mutex_);

  /// Wake a blocked consumer (used on shutdown).
  void interrupt();

 private:
  struct Later {
    bool operator()(const Envelope& a, const Envelope& b) const {
      return a.deliverAt > b.deliverAt;
    }
  };

  util::Mutex mutex_;
  std::condition_variable cv_;
  std::priority_queue<Envelope, std::vector<Envelope>, Later> queue_ EPTO_GUARDED_BY(mutex_);
};

/// Shared loss/delay-injecting fabric connecting the mailboxes.
class InMemoryTransport {
 public:
  struct Options {
    double lossRate = 0.0;
    std::chrono::microseconds minDelay{0};
    std::chrono::microseconds maxDelay{0};
    /// Encode every ball through the wire codec (codec/ball_codec.h) and
    /// ship bytes instead of a shared pointer — what a datagram transport
    /// would do. Receivers decode via openEnvelope().
    bool serializeFrames = false;
    /// With serializeFrames: probability that one random byte of a frame
    /// is flipped in flight. Receivers must detect and drop (CRC32C).
    double corruptionRate = 0.0;
    /// With serializeFrames: emit version-2 frames carrying per-event
    /// lineage (codec/ball_codec.h). Off keeps the version-1 frames an
    /// older decoder understands — the mixed-fleet fallback.
    bool wireLineage = false;
    /// With serializeFrames: let frames carry per-event QoS classes
    /// (only emitted for balls that contain a Fast event; Safe-only
    /// traffic is wire-identical either way).
    bool wireQos = false;
  };

  InMemoryTransport(Options options, util::Rng rng);

  /// Route every subsequent send() through the fault controller's link
  /// fate (partition cuts, burst loss, delay spikes, crashed endpoints).
  /// `now` maps wall time onto the controller's Timestamp domain
  /// (microseconds since the cluster epoch). Call before any sender runs;
  /// the controller must outlive the transport.
  void attachFaults(fault::FaultController* faults, std::function<Timestamp()> now);

  /// Create the mailbox for `id`. Must happen before anyone sends to it.
  void registerEndpoint(ProcessId id);

  /// Fire-and-forget transmission; callable from any thread.
  void send(ProcessId from, ProcessId to, BallPtr ball)
      EPTO_EXCLUDES(rngMutex_, statsMutex_);

  [[nodiscard]] Mailbox& mailboxOf(ProcessId id);

  struct Stats {
    std::uint64_t sent = 0;
    std::uint64_t dropped = 0;
    std::uint64_t faultDrops = 0;       ///< of dropped: cut/burst-lost by faults.
    std::uint64_t bytesSent = 0;        ///< serialized mode only.
    std::uint64_t framesRejected = 0;   ///< corrupted frames caught by decode.
  };
  [[nodiscard]] Stats stats() const EPTO_EXCLUDES(statsMutex_);

  /// Extract the ball from an envelope: returns the shared ball directly
  /// in in-memory mode, or decodes the frame in serialized mode. Returns
  /// nullptr (and counts a rejection) when the frame fails validation —
  /// a corrupted datagram behaves exactly like a lost one.
  [[nodiscard]] BallPtr openEnvelope(const Envelope& envelope) EPTO_EXCLUDES(statsMutex_);

 private:
  Options options_;
  /// Set once by attachFaults() before threads start; read-only afterwards
  /// (no capability — const-after-init, like mailboxes_ below).
  fault::FaultController* faults_ = nullptr;
  std::function<Timestamp()> faultNow_;
  /// rngMutex_ and statsMutex_ are independent leaf locks; send() takes
  /// each in turn and never holds both (see DESIGN.md §12 hierarchy).
  mutable util::Mutex rngMutex_;
  util::Rng rng_ EPTO_GUARDED_BY(rngMutex_);
  /// Populated by registerEndpoint() before any sender thread exists;
  /// structurally immutable afterwards (mailboxes are themselves
  /// thread-safe), so lookups are deliberately lock-free.
  std::unordered_map<ProcessId, std::unique_ptr<Mailbox>> mailboxes_;
  mutable util::Mutex statsMutex_;
  Stats stats_ EPTO_GUARDED_BY(statsMutex_);
};

}  // namespace epto::runtime

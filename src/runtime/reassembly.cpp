#include "runtime/reassembly.h"

#include <algorithm>

#include "util/ensure.h"

namespace epto::runtime {

Reassembler::Reassembler(ReassemblyOptions options) : options_(options) {
  EPTO_ENSURE_MSG(options_.maxPartialFrames > 0, "maxPartialFrames must be positive");
  EPTO_ENSURE_MSG(options_.ttlRounds > 0, "ttlRounds must be positive");
  EPTO_ENSURE_MSG(options_.maxFrameBytes > 0, "maxFrameBytes must be positive");
}

void Reassembler::erase(std::uint64_t ballId) {
  const auto it = partials_.find(ballId);
  if (it == partials_.end()) return;
  bufferedBytes_ -= it->second.bytes.size();
  partials_.erase(it);
}

void Reassembler::shedStalest() {
  auto stalest = partials_.begin();
  for (auto it = partials_.begin(); it != partials_.end(); ++it) {
    if (it->second.lastTouchRound < stalest->second.lastTouchRound) stalest = it;
  }
  bufferedBytes_ -= stalest->second.bytes.size();
  partials_.erase(stalest);
  ++stats_.partialsShed;
}

std::optional<std::vector<std::byte>> Reassembler::accept(
    const codec::FragmentFrame& fragment, std::uint64_t round) {
  if (fragment.totalLength > options_.maxFrameBytes) {
    ++stats_.oversizedRejected;
    return std::nullopt;
  }

  auto it = partials_.find(fragment.ballId);
  if (it == partials_.end()) {
    if (partials_.size() >= options_.maxPartialFrames) shedStalest();
    Partial partial;
    partial.count = fragment.count;
    partial.totalLength = fragment.totalLength;
    partial.seen.assign(fragment.count, false);
    partial.bytes.resize(static_cast<std::size_t>(fragment.totalLength));
    bufferedBytes_ += partial.bytes.size();
    it = partials_.emplace(fragment.ballId, std::move(partial)).first;
  }

  Partial& partial = it->second;
  // A fragment disagreeing with the first-seen geometry of its ballId is
  // either corruption that slipped the CRC or a forged header — drop the
  // fragment, keep the partial.
  if (fragment.count != partial.count || fragment.totalLength != partial.totalLength) {
    ++stats_.mismatchedFragments;
    return std::nullopt;
  }
  partial.lastTouchRound = round;
  if (partial.seen[fragment.index]) {
    ++stats_.duplicateFragments;
    return std::nullopt;
  }
  // Chunk bounds were validated at decode (offset + len <= totalLength).
  std::copy(fragment.payload.begin(), fragment.payload.end(),
            partial.bytes.begin() + static_cast<std::ptrdiff_t>(fragment.offset));
  partial.seen[fragment.index] = true;
  ++partial.receivedCount;
  partial.receivedBytes += fragment.payload.size();
  ++stats_.fragmentsAccepted;

  // Complete only when every index arrived AND the chunks tile the whole
  // frame — a forged index set with holes cannot pass both.
  if (partial.receivedCount == partial.count &&
      partial.receivedBytes == partial.totalLength) {
    std::vector<std::byte> frame = std::move(partial.bytes);
    bufferedBytes_ -= frame.size();
    partials_.erase(it);
    ++stats_.framesCompleted;
    return frame;
  }
  return std::nullopt;
}

void Reassembler::evictExpired(std::uint64_t round) {
  if (round < options_.ttlRounds) return;
  const std::uint64_t cutoff = round - options_.ttlRounds;
  for (auto it = partials_.begin(); it != partials_.end();) {
    if (it->second.lastTouchRound <= cutoff) {
      bufferedBytes_ -= it->second.bytes.size();
      it = partials_.erase(it);
      ++stats_.partialsExpired;
    } else {
      ++it;
    }
  }
}

void Reassembler::clear() {
  partials_.clear();
  bufferedBytes_ = 0;
}

}  // namespace epto::runtime

#include "runtime/sharded_executor.h"

#include <pthread.h>
#include <sched.h>

#include <chrono>

#include "check/schedule_point.h"
#include "util/ensure.h"

namespace epto::runtime {

std::size_t ShardedExecutor::ShardContext::drainMailbox() {
  auto& ring = owner_->shards_[index_]->mailbox;
  std::size_t ran = 0;
  while (auto command = ring.tryPop()) {
    (*command)();
    ++ran;
  }
  return ran;
}

ShardedExecutor::ShardedExecutor(ShardedExecutorOptions options, ShardBody body)
    : options_(options), body_(std::move(body)) {
  EPTO_ENSURE_MSG(options_.nodeCount > 0, "executor needs at least one node");
  EPTO_ENSURE_MSG(options_.mailboxCapacity > 0, "mailbox capacity must be positive");
  EPTO_ENSURE_MSG(body_ != nullptr, "executor needs a shard body");

  std::size_t shardCount = options_.shardCount;
  if (shardCount == 0) {
    shardCount = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  shardCount = std::min(shardCount, options_.nodeCount);

  // Contiguous, balanced slices: the first `extra` shards own one node
  // more, so slice sizes differ by at most one.
  const std::size_t base = options_.nodeCount / shardCount;
  const std::size_t extra = options_.nodeCount % shardCount;
  const auto epoch = TimerWheel::Clock::now();
  std::size_t cursor = 0;
  shards_.reserve(shardCount);
  for (std::size_t i = 0; i < shardCount; ++i) {
    auto shard = std::make_unique<Shard>(options_.mailboxCapacity);
    shard->context.owner_ = this;
    shard->context.index_ = i;
    shard->context.begin_ = cursor;
    cursor += base + (i < extra ? 1 : 0);
    shard->context.end_ = cursor;
    shard->context.wheel_ = std::make_unique<TimerWheel>(
        options_.wheelGranularity, options_.wheelSlots, epoch);
    shards_.push_back(std::move(shard));
  }
}

ShardedExecutor::~ShardedExecutor() { stop(); }

void ShardedExecutor::start() {
  EPTO_ENSURE_MSG(!running_.exchange(true), "executor already started");
  stopRequested_.store(false, std::memory_order_release);
  const unsigned cores = std::max(1U, std::thread::hardware_concurrency());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard* shard = shards_[i].get();
    const bool pin = options_.pinCores;
    shard->thread = std::thread([this, shard, i, pin, cores] {
      if (pin) {
        cpu_set_t cpus;
        CPU_ZERO(&cpus);
        CPU_SET(static_cast<int>(i % cores), &cpus);
        if (::pthread_setaffinity_np(::pthread_self(), sizeof cpus, &cpus) == 0) {
          pinnedShards_.fetch_add(1, std::memory_order_relaxed);
        }
      }
      body_(shard->context);
    });
  }
}

void ShardedExecutor::stop() {
  if (!running_.exchange(false)) return;
  stopRequested_.store(true, std::memory_order_release);
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
}

bool ShardedExecutor::post(std::size_t node, Command&& command) {
  Shard& shard = *shards_[shardOf(node)];
  EPTO_SCHEDULE_POINT("executor.post");
  bool accepted = false;
  {
    const util::MutexLock lock(shard.producerMutex);
    accepted = shard.mailbox.tryPush(std::move(command));
  }
  if (!accepted) postRejections_.fetch_add(1, std::memory_order_relaxed);
  return accepted;
}

std::size_t ShardedExecutor::drainMailboxOn(std::size_t shard) {
  EPTO_ENSURE_MSG(shard < shards_.size(), "shard index out of range");
  EPTO_ENSURE_MSG(!running_.load(std::memory_order_acquire),
                  "drainMailboxOn while shard threads run would add a second consumer");
  return shards_[shard]->context.drainMailbox();
}

std::size_t ShardedExecutor::shardOf(std::size_t node) const {
  EPTO_ENSURE_MSG(node < options_.nodeCount, "node index out of range");
  // Invert the balanced partition: the first `extra` shards are one
  // node wider than the rest.
  const std::size_t shardCount = shards_.size();
  const std::size_t base = options_.nodeCount / shardCount;
  const std::size_t extra = options_.nodeCount % shardCount;
  const std::size_t wideSpan = (base + 1) * extra;
  if (node < wideSpan) return node / (base + 1);
  return extra + (node - wideSpan) / base;
}

std::pair<std::size_t, std::size_t> ShardedExecutor::nodeRange(std::size_t shard) const {
  EPTO_ENSURE_MSG(shard < shards_.size(), "shard index out of range");
  const ShardContext& ctx = shards_[shard]->context;
  return {ctx.begin_, ctx.end_};
}

std::size_t ShardedExecutor::mailboxDepth(std::size_t shard) const {
  EPTO_ENSURE_MSG(shard < shards_.size(), "shard index out of range");
  return shards_[shard]->mailbox.size();
}

}  // namespace epto::runtime

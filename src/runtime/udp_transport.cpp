#include "runtime/udp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <thread>

#include "codec/ball_codec.h"
#include "util/ensure.h"

namespace epto::runtime {

UdpSocket::UdpSocket(std::size_t receiveBufferBytes)
    : receiveBufferBytes_(receiveBufferBytes) {
  EPTO_ENSURE_MSG(receiveBufferBytes_ > 0, "receive buffer must be positive");
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  EPTO_ENSURE_MSG(fd_ >= 0, "socket() failed");

  // Best-effort: the kernel clamps to rmem_max/wmem_max silently, and a
  // smaller buffer only degrades to more loss, which EpTO absorbs.
  const int bufferBytes = kSocketBufferBytes;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &bufferBytes, sizeof bufferBytes);
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDBUF, &bufferBytes, sizeof bufferBytes);

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = 0;  // OS-assigned
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&address), sizeof address) != 0) {
    ::close(fd_);
    fd_ = -1;
    EPTO_ENSURE_MSG(false, "bind() failed");
  }

  sockaddr_in bound{};
  socklen_t length = sizeof bound;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &length) != 0) {
    ::close(fd_);
    fd_ = -1;
    EPTO_ENSURE_MSG(false, "getsockname() failed");
  }
  port_ = ntohs(bound.sin_port);
}

UdpSocket::~UdpSocket() {
  if (fd_ >= 0) ::close(fd_);
}

UdpSocket::UdpSocket(UdpSocket&& other) noexcept
    : fd_(other.fd_), port_(other.port_), receiveBufferBytes_(other.receiveBufferBytes_) {
  other.fd_ = -1;
  other.port_ = 0;
}

SendStatus UdpSocket::trySendTo(std::uint16_t port, const std::vector<std::byte>& frame) {
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(port);
  const auto sent =
      ::sendto(fd_, frame.data(), frame.size(), 0,
               reinterpret_cast<const sockaddr*>(&address), sizeof address);
  if (sent == static_cast<ssize_t>(frame.size())) return SendStatus::Sent;
  switch (errno) {
    // Momentary resource exhaustion: the socket buffer (or kernel memory)
    // is full right now but will drain. Worth a short backoff.
    case EAGAIN:
#if EWOULDBLOCK != EAGAIN
    case EWOULDBLOCK:
#endif
    case ENOBUFS:
    case ENOMEM:
    case EINTR:
      return SendStatus::Transient;
    default:
      // EMSGSIZE, EACCES, network down, ... — retrying cannot help.
      return SendStatus::Hard;
  }
}

std::optional<UdpSocket::Datagram> UdpSocket::receive(int timeoutMillis) {
  pollfd pfd{};
  pfd.fd = fd_;
  pfd.events = POLLIN;
  const int ready = ::poll(&pfd, 1, timeoutMillis);
  if (ready <= 0 || (pfd.revents & POLLIN) == 0) return std::nullopt;

  Datagram datagram;
  datagram.bytes.resize(receiveBufferBytes_);
  // MSG_TRUNC makes recvfrom return the datagram's real length even when
  // it exceeds the buffer, so truncation is detected here instead of as
  // a downstream frame-validation failure.
  sockaddr_in from{};
  socklen_t fromLength = sizeof from;
  const auto received = ::recvfrom(fd_, datagram.bytes.data(), datagram.bytes.size(),
                                   MSG_TRUNC, reinterpret_cast<sockaddr*>(&from),
                                   &fromLength);
  if (received < 0) return std::nullopt;
  if (from.sin_family == AF_INET) datagram.fromPort = ntohs(from.sin_port);
  const auto receivedBytes = static_cast<std::size_t>(received);
  datagram.truncated = receivedBytes > datagram.bytes.size();
  datagram.bytes.resize(std::min(receivedBytes, datagram.bytes.size()));
  return datagram;
}

SendOutcome sendWithBackoff(UdpSocket& socket, std::uint16_t port,
                            const std::vector<std::byte>& frame,
                            const SendBackoffPolicy& policy, util::Rng& rng) {
  EPTO_ENSURE_MSG(policy.maxAttempts >= 1, "backoff needs at least one attempt");
  SendOutcome outcome;
  auto delay = policy.initialDelay;
  for (int attempt = 1;; ++attempt) {
    outcome.status = socket.trySendTo(port, frame);
    if (outcome.status != SendStatus::Transient || attempt >= policy.maxAttempts) {
      return outcome;
    }
    // ±50% jitter de-synchronizes nodes that hit a shared buffer limit
    // together — retrying in lockstep would refill it in lockstep.
    const double jitter = 0.5 + rng.uniform01();
    const auto sleep = std::chrono::microseconds(static_cast<std::int64_t>(
        std::max(1.0, static_cast<double>(delay.count()) * jitter)));
    std::this_thread::sleep_for(sleep);
    delay = std::chrono::microseconds(static_cast<std::int64_t>(
        std::max(1.0, static_cast<double>(delay.count()) * policy.multiplier)));
    ++outcome.retries;
  }
}

bool sendBall(UdpSocket& socket, std::uint16_t port, const Ball& ball) {
  return socket.sendTo(port, codec::encodeBall(ball));
}

}  // namespace epto::runtime

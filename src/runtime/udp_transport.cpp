#include "runtime/udp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>
#include <thread>

#include "codec/ball_codec.h"
#include "util/ensure.h"

namespace epto::runtime {

UdpSocket::UdpSocket(std::size_t receiveBufferBytes)
    : receiveBufferBytes_(receiveBufferBytes) {
  EPTO_ENSURE_MSG(receiveBufferBytes_ > 0, "receive buffer must be positive");
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  EPTO_ENSURE_MSG(fd_ >= 0, "socket() failed");

  // Best-effort: the kernel clamps to rmem_max/wmem_max silently, and a
  // smaller buffer only degrades to more loss, which EpTO absorbs.
  const int bufferBytes = kSocketBufferBytes;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &bufferBytes, sizeof bufferBytes);
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDBUF, &bufferBytes, sizeof bufferBytes);

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = 0;  // OS-assigned
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&address), sizeof address) != 0) {
    ::close(fd_);
    fd_ = -1;
    EPTO_ENSURE_MSG(false, "bind() failed");
  }

  sockaddr_in bound{};
  socklen_t length = sizeof bound;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &length) != 0) {
    ::close(fd_);
    fd_ = -1;
    EPTO_ENSURE_MSG(false, "getsockname() failed");
  }
  port_ = ntohs(bound.sin_port);
}

UdpSocket::~UdpSocket() {
  if (fd_ >= 0) ::close(fd_);
}

UdpSocket::UdpSocket(UdpSocket&& other) noexcept
    : fd_(other.fd_), port_(other.port_), receiveBufferBytes_(other.receiveBufferBytes_) {
  other.fd_ = -1;
  other.port_ = 0;
}

namespace {

/// Classify a failed send's errno. EINTR must never reach here — it is
/// retried at the syscall, not treated as a socket condition.
SendStatus classifySendErrno(int error) {
  switch (error) {
    // Momentary resource exhaustion: the socket buffer (or kernel memory)
    // is full right now but will drain. Worth a short backoff.
    case EAGAIN:
#if EWOULDBLOCK != EAGAIN
    case EWOULDBLOCK:
#endif
    case ENOBUFS:
    case ENOMEM:
      return SendStatus::Transient;
    default:
      // EMSGSIZE, EACCES, network down, ... — retrying cannot help.
      return SendStatus::Hard;
  }
}

}  // namespace

SendStatus UdpSocket::trySendTo(std::uint16_t port, const std::vector<std::byte>& frame) {
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(port);
  ssize_t sent = 0;
  // EINTR means a signal landed mid-syscall, not that the socket refused
  // anything — re-issue immediately instead of burning a backoff slot.
  do {
    sent = ::sendto(fd_, frame.data(), frame.size(), 0,
                    reinterpret_cast<const sockaddr*>(&address), sizeof address);
  } while (sent < 0 && errno == EINTR);
  if (sent == static_cast<ssize_t>(frame.size())) return SendStatus::Sent;
  return classifySendErrno(errno);
}

std::optional<UdpSocket::Datagram> UdpSocket::receive(int timeoutMillis) {
  pollfd pfd{};
  pfd.fd = fd_;
  pfd.events = POLLIN;
  const int ready = ::poll(&pfd, 1, timeoutMillis);
  if (ready <= 0 || (pfd.revents & POLLIN) == 0) return std::nullopt;

  Datagram datagram;
  datagram.bytes.resize(receiveBufferBytes_);
  // MSG_TRUNC makes recvfrom return the datagram's real length even when
  // it exceeds the buffer, so truncation is detected here instead of as
  // a downstream frame-validation failure.
  sockaddr_in from{};
  socklen_t fromLength = sizeof from;
  const auto received = ::recvfrom(fd_, datagram.bytes.data(), datagram.bytes.size(),
                                   MSG_TRUNC, reinterpret_cast<sockaddr*>(&from),
                                   &fromLength);
  if (received < 0) return std::nullopt;
  if (from.sin_family == AF_INET) datagram.fromPort = ntohs(from.sin_port);
  const auto receivedBytes = static_cast<std::size_t>(received);
  datagram.truncated = receivedBytes > datagram.bytes.size();
  datagram.bytes.resize(std::min(receivedBytes, datagram.bytes.size()));
  return datagram;
}

std::size_t UdpSocket::receiveBatch(std::vector<Datagram>& out, std::size_t maxBatch,
                                    int timeoutMillis) {
  if (maxBatch == 0) return 0;
  if (timeoutMillis > 0) {
    pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, timeoutMillis);
    if (ready <= 0 || (pfd.revents & POLLIN) == 0) return 0;
  }

  // Bounded stack footprint: one recvmmsg() drains at most kMaxIoBatch
  // datagrams; callers wanting more loop (each extra lap is one syscall,
  // which is the whole point of batching).
  constexpr std::size_t kMaxIoBatch = 64;
  const std::size_t batch = std::min(maxBatch, kMaxIoBatch);

  std::vector<std::vector<std::byte>> buffers(batch);
  std::array<iovec, kMaxIoBatch> iovecs{};
  std::array<sockaddr_in, kMaxIoBatch> froms{};
  std::array<mmsghdr, kMaxIoBatch> messages{};
  for (std::size_t i = 0; i < batch; ++i) {
    buffers[i].resize(receiveBufferBytes_);
    iovecs[i] = {buffers[i].data(), buffers[i].size()};
    messages[i].msg_hdr.msg_iov = &iovecs[i];
    messages[i].msg_hdr.msg_iovlen = 1;
    messages[i].msg_hdr.msg_name = &froms[i];
    messages[i].msg_hdr.msg_namelen = sizeof froms[i];
  }

  int received = 0;
  do {
    received = ::recvmmsg(fd_, messages.data(), static_cast<unsigned>(batch),
                          MSG_DONTWAIT, nullptr);
  } while (received < 0 && errno == EINTR);
  if (received <= 0) return 0;

  for (int i = 0; i < received; ++i) {
    Datagram datagram;
    // MSG_TRUNC in msg_flags marks a datagram the kernel cut to the
    // buffer; msg_len is the surviving prefix length.
    datagram.truncated = (messages[i].msg_hdr.msg_flags & MSG_TRUNC) != 0;
    const auto index = static_cast<std::size_t>(i);
    if (froms[index].sin_family == AF_INET) {
      datagram.fromPort = ntohs(froms[index].sin_port);
    }
    buffers[index].resize(
        std::min<std::size_t>(messages[i].msg_len, receiveBufferBytes_));
    datagram.bytes = std::move(buffers[index]);
    out.push_back(std::move(datagram));
  }
  return static_cast<std::size_t>(received);
}

std::size_t UdpSocket::trySendBatch(std::span<const OutgoingDatagram> batch,
                                    std::size_t offset, SendStatus& headStatus) {
  headStatus = SendStatus::Sent;
  if (offset >= batch.size()) return 0;

  constexpr std::size_t kMaxIoBatch = 64;
  const std::size_t count = std::min(batch.size() - offset, kMaxIoBatch);
  std::array<sockaddr_in, kMaxIoBatch> addresses{};
  std::array<iovec, kMaxIoBatch> iovecs{};
  std::array<mmsghdr, kMaxIoBatch> messages{};
  for (std::size_t i = 0; i < count; ++i) {
    const OutgoingDatagram& out = batch[offset + i];
    addresses[i].sin_family = AF_INET;
    addresses[i].sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addresses[i].sin_port = htons(out.port);
    // sendmmsg never writes through msg_iov; the const_cast is the
    // price of the kernel sharing one struct for send and receive.
    iovecs[i] = {const_cast<std::byte*>(out.frame->data()), out.frame->size()};
    messages[i].msg_hdr.msg_iov = &iovecs[i];
    messages[i].msg_hdr.msg_iovlen = 1;
    messages[i].msg_hdr.msg_name = &addresses[i];
    messages[i].msg_hdr.msg_namelen = sizeof addresses[i];
  }

  int sent = 0;
  do {
    sent = ::sendmmsg(fd_, messages.data(), static_cast<unsigned>(count), 0);
  } while (sent < 0 && errno == EINTR);
  if (sent > 0) return static_cast<std::size_t>(sent);
  headStatus = classifySendErrno(errno);
  return 0;
}

SendOutcome sendWithBackoff(UdpSocket& socket, std::uint16_t port,
                            const std::vector<std::byte>& frame,
                            const SendBackoffPolicy& policy, util::Rng& rng) {
  EPTO_ENSURE_MSG(policy.maxAttempts >= 1, "backoff needs at least one attempt");
  SendOutcome outcome;
  auto delay = policy.initialDelay;
  for (int attempt = 1;; ++attempt) {
    outcome.status = socket.trySendTo(port, frame);
    if (outcome.status != SendStatus::Transient || attempt >= policy.maxAttempts) {
      return outcome;
    }
    // ±50% jitter de-synchronizes nodes that hit a shared buffer limit
    // together — retrying in lockstep would refill it in lockstep.
    const double jitter = 0.5 + rng.uniform01();
    const auto sleep = std::chrono::microseconds(static_cast<std::int64_t>(
        std::max(1.0, static_cast<double>(delay.count()) * jitter)));
    std::this_thread::sleep_for(sleep);
    delay = std::chrono::microseconds(static_cast<std::int64_t>(
        std::max(1.0, static_cast<double>(delay.count()) * policy.multiplier)));
    ++outcome.retries;
  }
}

BatchSendOutcome sendBatchWithBackoff(UdpSocket& socket,
                                      std::span<const OutgoingDatagram> batch,
                                      const SendBackoffPolicy& policy, util::Rng& rng) {
  EPTO_ENSURE_MSG(policy.maxAttempts >= 1, "backoff needs at least one attempt");
  BatchSendOutcome outcome;
  std::size_t offset = 0;
  // Per-message backoff state: attempts/delay reset whenever the head
  // message changes, so one congested stretch cannot starve the rest of
  // the batch of its full retry schedule.
  int headAttempts = 0;
  auto headDelay = policy.initialDelay;
  while (offset < batch.size()) {
    SendStatus headStatus = SendStatus::Sent;
    const std::size_t sent = socket.trySendBatch(batch, offset, headStatus);
    ++outcome.syscalls;
    if (sent > 0) {
      for (std::size_t i = offset; i < offset + sent; ++i) {
        if (batch[i].isFragment) ++outcome.fragmentsSent;
      }
      outcome.sent += sent;
      offset += sent;
      headAttempts = 0;
      headDelay = policy.initialDelay;
      continue;
    }
    if (headStatus == SendStatus::Hard) {
      ++outcome.hardLost;
      ++offset;
      headAttempts = 0;
      headDelay = policy.initialDelay;
      continue;
    }
    // Transient refusal of the head message: back off and re-attempt it,
    // exactly like the single-datagram schedule.
    if (++headAttempts >= policy.maxAttempts) {
      ++outcome.transientLost;
      ++offset;
      headAttempts = 0;
      headDelay = policy.initialDelay;
      continue;
    }
    const double jitter = 0.5 + rng.uniform01();
    const auto sleep = std::chrono::microseconds(static_cast<std::int64_t>(
        std::max(1.0, static_cast<double>(headDelay.count()) * jitter)));
    std::this_thread::sleep_for(sleep);
    headDelay = std::chrono::microseconds(static_cast<std::int64_t>(
        std::max(1.0, static_cast<double>(headDelay.count()) * policy.multiplier)));
    ++outcome.retries;
  }
  return outcome;
}

bool sendBall(UdpSocket& socket, std::uint16_t port, const Ball& ball) {
  return socket.sendTo(port, codec::encodeBall(ball));
}

}  // namespace epto::runtime

#include "runtime/udp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>

#include "codec/ball_codec.h"
#include "util/ensure.h"

namespace epto::runtime {

UdpSocket::UdpSocket() {
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  EPTO_ENSURE_MSG(fd_ >= 0, "socket() failed");

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = 0;  // OS-assigned
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&address), sizeof address) != 0) {
    ::close(fd_);
    fd_ = -1;
    EPTO_ENSURE_MSG(false, "bind() failed");
  }

  sockaddr_in bound{};
  socklen_t length = sizeof bound;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &length) != 0) {
    ::close(fd_);
    fd_ = -1;
    EPTO_ENSURE_MSG(false, "getsockname() failed");
  }
  port_ = ntohs(bound.sin_port);
}

UdpSocket::~UdpSocket() {
  if (fd_ >= 0) ::close(fd_);
}

UdpSocket::UdpSocket(UdpSocket&& other) noexcept : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
  other.port_ = 0;
}

bool UdpSocket::sendTo(std::uint16_t port, const std::vector<std::byte>& frame) {
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(port);
  const auto sent =
      ::sendto(fd_, frame.data(), frame.size(), 0,
               reinterpret_cast<const sockaddr*>(&address), sizeof address);
  return sent == static_cast<ssize_t>(frame.size());
}

std::optional<std::vector<std::byte>> UdpSocket::receive(int timeoutMillis) {
  pollfd pfd{};
  pfd.fd = fd_;
  pfd.events = POLLIN;
  const int ready = ::poll(&pfd, 1, timeoutMillis);
  if (ready <= 0 || (pfd.revents & POLLIN) == 0) return std::nullopt;

  std::array<std::byte, 65536> buffer;
  const auto received = ::recvfrom(fd_, buffer.data(), buffer.size(), 0, nullptr, nullptr);
  if (received < 0) return std::nullopt;
  return std::vector<std::byte>(buffer.begin(), buffer.begin() + received);
}

bool sendBall(UdpSocket& socket, std::uint16_t port, const Ball& ball) {
  return socket.sendTo(port, codec::encodeBall(ball));
}

}  // namespace epto::runtime

// UDP datagram transport — EpTO over real sockets (paper §8.5).
//
// Each node owns one UDP socket bound to 127.0.0.1; balls travel as
// wire-codec frames (codec/ball_codec.h), fragmented at a configurable
// MTU (codec/fragment_codec.h) when they outgrow a datagram. UDP's
// semantics are exactly EpTO's assumptions: unordered, unreliable,
// unacknowledged — the protocol needs nothing more. Frames that fail
// validation (truncated datagrams, corruption) are counted and dropped,
// indistinguishable from loss, which the dissemination redundancy
// absorbs.
//
// Send-side hardening: the OS refusing a send is not one condition.
// EAGAIN/ENOBUFS mean "socket buffer momentarily full" — a few hundred
// microseconds of jittered backoff usually clears it — while EMSGSIZE
// or a dead interface will never succeed on retry. trySendTo()
// classifies the two; sendWithBackoff() retries only the transient
// class before declaring the datagram lost.
//
// Receive-side hardening: receive() passes MSG_TRUNC so kernel
// truncation (a datagram larger than the receive buffer) is detected
// explicitly and reported on the returned Datagram, instead of
// surfacing later as a mysterious frame-validation failure.
//
// UdpSocket is a small RAII wrapper; UdpCluster (udp_cluster.h) builds a
// full multi-process-style deployment on top of it.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/types.h"
#include "util/rng.h"

namespace epto::runtime {

/// Largest payload a UDP/IPv4 datagram can carry; the default receive
/// buffer size.
inline constexpr std::size_t kMaxUdpDatagramBytes = 65536;

/// SO_RCVBUF/SO_SNDBUF requested at socket construction. A fragmented
/// jumbo ball is a burst of hundreds of datagrams; the kernel default
/// (net.core.rmem_default, typically ~208 KiB) cannot even hold one
/// such burst, so fragments of concurrent senders are silently dropped
/// whenever the receiver is momentarily busy. The kernel clamps the
/// request to rmem_max/wmem_max — best-effort by design.
inline constexpr int kSocketBufferBytes = 4 << 20;

/// Outcome of one datagram transmission attempt. EINTR is neither: a
/// signal interrupting the syscall says nothing about the socket, so the
/// send is simply re-issued without consuming a backoff slot.
enum class SendStatus : std::uint8_t {
  Sent,       ///< handed to the OS in full.
  Transient,  ///< momentary refusal (EAGAIN/ENOBUFS/...); retry may succeed.
  Hard,       ///< permanent refusal (EMSGSIZE/...); retrying is pointless.
};

/// One datagram queued in a send aggregator. `frame` is a non-owning
/// pointer: the referenced buffer must outlive the flush (the same ball
/// frame is typically shared, uncopied, across every fanout target).
struct OutgoingDatagram {
  std::uint16_t port = 0;
  const std::vector<std::byte>* frame = nullptr;
  bool isFragment = false;
};

/// RAII UDP/IPv4 socket bound to 127.0.0.1 on an OS-assigned port.
class UdpSocket {
 public:
  /// Binds immediately; throws util::ContractViolation on OS failure.
  /// `receiveBufferBytes` caps the datagram size receive() can return in
  /// full — anything larger is truncated by the kernel and flagged.
  explicit UdpSocket(std::size_t receiveBufferBytes = kMaxUdpDatagramBytes);
  ~UdpSocket();

  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;
  UdpSocket(UdpSocket&& other) noexcept;
  UdpSocket& operator=(UdpSocket&&) = delete;

  /// The locally bound port (the node's address).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// The OS file descriptor — for callers multiplexing many sockets in
  /// one poll() set (the sharded executor). Ownership stays here.
  [[nodiscard]] int nativeHandle() const noexcept { return fd_; }

  /// One transmission attempt to 127.0.0.1:`port`, classified.
  SendStatus trySendTo(std::uint16_t port, const std::vector<std::byte>& frame);

  /// Fire-and-forget single attempt. Returns false when the OS refused
  /// the send for any reason (treated as loss by callers).
  bool sendTo(std::uint16_t port, const std::vector<std::byte>& frame) {
    return trySendTo(port, frame) == SendStatus::Sent;
  }

  /// One received datagram. `truncated` means the kernel cut the payload
  /// to the receive buffer size — `bytes` is the surviving prefix, which
  /// can never validate as a frame. `fromPort` is the sender's bound
  /// loopback port — the per-channel identity ingress hardening keys its
  /// rate accounting on (spoofable on a real network, exact on loopback).
  struct Datagram {
    std::vector<std::byte> bytes;
    std::uint16_t fromPort = 0;
    bool truncated = false;
  };

  /// Blocking receive with a timeout. Returns the datagram, or nullopt
  /// on timeout.
  [[nodiscard]] std::optional<Datagram> receive(int timeoutMillis);

  /// Batched receive: drain up to `maxBatch` queued datagrams in one
  /// recvmmsg() syscall, appending to `out`. With timeoutMillis > 0,
  /// blocks in poll() first; with 0 it goes straight to a non-blocking
  /// recvmmsg (the caller already knows the fd is readable — the sharded
  /// executor's poll loop). Returns the number appended (0 when nothing
  /// was queued). Truncation is flagged per datagram exactly as in
  /// receive().
  std::size_t receiveBatch(std::vector<Datagram>& out, std::size_t maxBatch,
                           int timeoutMillis);

  /// One sendmmsg() attempt over batch[offset..): returns how many
  /// consecutive datagrams the OS accepted. On 0 with a non-empty range,
  /// `headStatus` is the classification for batch[offset] (never Sent;
  /// EINTR is retried internally and never surfaces).
  std::size_t trySendBatch(std::span<const OutgoingDatagram> batch, std::size_t offset,
                           SendStatus& headStatus);

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::size_t receiveBufferBytes_ = kMaxUdpDatagramBytes;
};

/// Retry schedule for transient send refusals: `maxAttempts` total
/// attempts, sleeping `initialDelay * multiplier^k` with ±50% jitter
/// between them.
struct SendBackoffPolicy {
  int maxAttempts = 4;
  std::chrono::microseconds initialDelay{200};
  double multiplier = 2.0;
};

/// Cumulative outcome of sendWithBackoff().
struct SendOutcome {
  SendStatus status = SendStatus::Sent;  ///< final classification.
  int retries = 0;                       ///< sleeps taken before the outcome.
};

/// Transmit `frame`, retrying transient refusals per `policy` with
/// jitter drawn from `rng`. Hard refusals return immediately; a
/// transient refusal surviving every attempt is returned as Transient
/// (the datagram is lost — EpTO treats it like any other loss).
SendOutcome sendWithBackoff(UdpSocket& socket, std::uint16_t port,
                            const std::vector<std::byte>& frame,
                            const SendBackoffPolicy& policy, util::Rng& rng);

/// Cumulative outcome of one sendBatchWithBackoff() flush. Every
/// datagram in the batch ends in exactly one of sent/transientLost/
/// hardLost; `syscalls` counts sendmmsg() invocations (batch-size
/// observability) and `retries` counts backoff sleeps.
struct BatchSendOutcome {
  std::size_t sent = 0;
  std::size_t transientLost = 0;  ///< lost after the whole backoff schedule.
  std::size_t hardLost = 0;
  std::size_t fragmentsSent = 0;  ///< subset of `sent` flagged isFragment.
  std::size_t syscalls = 0;
  int retries = 0;
};

/// Flush a whole batch through sendmmsg(), applying the PR 3 SendStatus
/// classification and jittered backoff *per message*: a transient
/// refusal backs off and re-attempts that message (the rest of the batch
/// waits behind it, preserving order); a message that exhausts the
/// schedule — or fails hard — is counted lost and skipped, and the flush
/// continues with the next one. EINTR re-issues immediately without
/// consuming a backoff slot, exactly like the single-datagram path.
BatchSendOutcome sendBatchWithBackoff(UdpSocket& socket,
                                      std::span<const OutgoingDatagram> batch,
                                      const SendBackoffPolicy& policy, util::Rng& rng);

/// Encode and transmit one ball as a single datagram (single attempt;
/// balls beyond the datagram limit need the fragmentation path in
/// UdpCluster).
bool sendBall(UdpSocket& socket, std::uint16_t port, const Ball& ball);

}  // namespace epto::runtime

// UDP datagram transport — EpTO over real sockets (paper §8.5).
//
// Each node owns one UDP socket bound to 127.0.0.1; balls travel as
// wire-codec frames (codec/ball_codec.h), one frame per datagram. UDP's
// semantics are exactly EpTO's assumptions: unordered, unreliable,
// unacknowledged — the protocol needs nothing more. Frames that fail
// validation (truncated datagrams, corruption) are counted and dropped,
// indistinguishable from loss, which the dissemination redundancy
// absorbs.
//
// UdpSocket is a small RAII wrapper; UdpCluster (udp_cluster.h) builds a
// full multi-process-style deployment on top of it.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/types.h"

namespace epto::runtime {

/// RAII UDP/IPv4 socket bound to 127.0.0.1 on an OS-assigned port.
class UdpSocket {
 public:
  /// Binds immediately; throws util::ContractViolation on OS failure.
  UdpSocket();
  ~UdpSocket();

  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;
  UdpSocket(UdpSocket&& other) noexcept;
  UdpSocket& operator=(UdpSocket&&) = delete;

  /// The locally bound port (the node's address).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Fire-and-forget datagram to 127.0.0.1:`port`. Returns false when
  /// the OS refused the send (treated as loss by callers).
  bool sendTo(std::uint16_t port, const std::vector<std::byte>& frame);

  /// Blocking receive with a timeout. Returns the datagram payload, or
  /// nullopt on timeout. Datagrams larger than 64 KiB are truncated by
  /// UDP itself and will fail frame validation downstream.
  [[nodiscard]] std::optional<std::vector<std::byte>> receive(int timeoutMillis);

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Encode and transmit one ball as a single datagram.
bool sendBall(UdpSocket& socket, std::uint16_t port, const Ball& ball);

}  // namespace epto::runtime

// Single-producer / single-consumer ring — the cross-shard mailbox cell.
//
// The sharded executor (runtime/sharded_executor.h) moves control-plane
// requests (broadcasts, inspection commands) into a shard without taking
// any lock on the shard's side: one producer thread appends at the tail,
// the owning shard consumes at the head, and the only synchronization is
// one release store / acquire load pair per transfer. That keeps the
// shard's drain loop wait-free — a stalled control plane can never block
// a round — and makes the mailbox TSan-provable rather than
// TSan-suppressed.
//
// The contract is exactly SPSC: ONE thread may call tryPush() and ONE
// thread may call tryPop() (they may be different threads, and either
// side may also read size()). The executor serializes external callers
// onto the producer role with a producer-side mutex; the ring itself
// never spins, never allocates after construction, and never blocks.
//
// Capacity is rounded up to a power of two so the head/tail indices can
// run free and wrap via masking (no modulo on the hot path). The ring
// holds capacity() live entries; a full ring rejects the push (the
// caller decides whether to retry, drop, or backpressure — policy lives
// one level up, like IngressQueue's shed policy).
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "check/schedule_point.h"
#include "util/ensure.h"

namespace epto::runtime {

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity) {
    EPTO_ENSURE_MSG(capacity > 0, "spsc ring capacity must be positive");
    std::size_t rounded = 1;
    while (rounded < capacity) rounded <<= 1U;
    mask_ = rounded - 1;
    slots_.resize(rounded);
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. False when the ring is full — `value` is NOT
  /// consumed then (the caller keeps it and owns the retry/drop
  /// decision); nothing queued is ever overwritten.
  [[nodiscard]] bool tryPush(T&& value) {
    EPTO_SCHEDULE_POINT("spsc.push.enter");
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    if (tail - head > mask_) return false;  // full
    EPTO_SCHEDULE_POINT("spsc.push.slot");
    slots_[tail & mask_] = std::move(value);
    EPTO_SCHEDULE_POINT("spsc.push.publish");
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. nullopt when empty.
  [[nodiscard]] std::optional<T> tryPop() {
    EPTO_SCHEDULE_POINT("spsc.pop.enter");
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head == tail) return std::nullopt;
    EPTO_SCHEDULE_POINT("spsc.pop.slot");
    std::optional<T> value(std::move(slots_[head & mask_]));
    slots_[head & mask_] = T{};  // release payload resources eagerly
    EPTO_SCHEDULE_POINT("spsc.pop.retire");
    head_.store(head + 1, std::memory_order_release);
    return value;
  }

  /// Entries currently queued. Callable from either side; a racing
  /// push/pop makes this an instantaneous estimate, which is all the
  /// queue-depth gauge needs.
  [[nodiscard]] std::size_t size() const noexcept {
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(tail - head);
  }

  [[nodiscard]] bool empty() const noexcept { return size() == 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  /// Monotonic (never masked) so full/empty are unambiguous without a
  /// sacrificial slot. Cache-line padding keeps the producer's tail
  /// store from false-sharing the consumer's head line.
  alignas(64) std::atomic<std::uint64_t> head_{0};
  alignas(64) std::atomic<std::uint64_t> tail_{0};
};

}  // namespace epto::runtime

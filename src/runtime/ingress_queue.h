// Bounded ingress queue — explicit backpressure for the UDP node loop.
//
// Datagrams can arrive much faster than the protocol can process them
// (a reassembly storm, a flood of relays, a wedged receiver catching
// up). An unbounded buffer turns that into unbounded memory and
// unbounded latency; the kernel socket buffer alone sheds silently and
// invisibly. IngressQueue is the explicit middle: a FIFO of decoded
// balls with a hard capacity that sheds the *oldest* entry when full —
// old balls carry the stalest events, the ones most likely already
// delivered or re-relayed by other peers — and counts every shed so
// overload is observable instead of silent.
//
// Single-threaded by design: owned and driven by the node's own loop,
// like the Reassembler. Thread-safety lives one level up (the socket).
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <optional>

#include "core/types.h"
#include "util/ensure.h"

namespace epto::runtime {

class IngressQueue {
 public:
  explicit IngressQueue(std::size_t capacity) : capacity_(capacity) {
    EPTO_ENSURE_MSG(capacity_ > 0, "ingress capacity must be positive");
  }

  /// Enqueue one ball; when full, the oldest queued ball is shed to make
  /// room (the new ball is always admitted). Returns the number of balls
  /// shed (0 or 1).
  std::size_t push(Ball ball) {
    std::size_t shed = 0;
    if (queue_.size() >= capacity_) {
      queue_.pop_front();
      ++shedTotal_;
      shed = 1;
    }
    queue_.push_back(std::move(ball));
    highWater_ = std::max(highWater_, queue_.size());
    return shed;
  }

  /// Oldest queued ball, or nullopt when empty.
  std::optional<Ball> pop() {
    if (queue_.empty()) return std::nullopt;
    Ball ball = std::move(queue_.front());
    queue_.pop_front();
    return ball;
  }

  /// Drop everything queued; returns how many balls were discarded.
  std::size_t clear() {
    const std::size_t n = queue_.size();
    queue_.clear();
    return n;
  }

  [[nodiscard]] std::size_t size() const noexcept { return queue_.size(); }
  [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Deepest the queue has ever been — never exceeds capacity().
  [[nodiscard]] std::size_t highWater() const noexcept { return highWater_; }
  /// Balls shed by push() since construction.
  [[nodiscard]] std::uint64_t shedTotal() const noexcept { return shedTotal_; }

 private:
  std::size_t capacity_;
  std::deque<Ball> queue_;
  std::size_t highWater_ = 0;
  std::uint64_t shedTotal_ = 0;
};

}  // namespace epto::runtime

// Stall watchdog — detects a node loop that keeps missing its round
// deadline and triggers a forced recovery.
//
// A healthy node finishes each round within its period; a node wedged
// behind a reassembly storm, an ingress backlog, or a slow receiver
// drifts ever further past its schedule, and EpTO's timing assumptions
// (paper §5.3) degrade silently. The watchdog is pure bookkeeping: the
// node loop reports how late each round fired, and after
// `missedRoundThreshold` *consecutive* rounds that were late by more
// than a full period, it signals recovery — the host then force-drains
// its backlog, resets its round schedule to now, and counts the event
// in the metrics registry so operators see the stall instead of
// debugging a mystery latency cliff.
//
// Pure and single-threaded (node-loop owned), so it is unit-testable
// without sockets or clocks.
#pragma once

#include <chrono>
#include <cstdint>

namespace epto::runtime {

class StallWatchdog {
 public:
  /// `missedRoundThreshold` consecutive late rounds trigger recovery;
  /// 0 disables the watchdog entirely.
  explicit StallWatchdog(std::uint32_t missedRoundThreshold)
      : threshold_(missedRoundThreshold) {}

  /// Report one round boundary: `lateness` is how far past the scheduled
  /// deadline the round actually fired, `period` the nominal round
  /// period. A round more than one full period late is a miss; an
  /// on-time round resets the streak. Returns true when the miss streak
  /// reaches the threshold — the caller must then recover (the streak
  /// resets so recovery is edge-triggered, not level-triggered).
  bool onRoundBoundary(std::chrono::steady_clock::duration lateness,
                       std::chrono::steady_clock::duration period) {
    if (threshold_ == 0) return false;
    if (lateness <= period) {
      consecutiveMisses_ = 0;
      return false;
    }
    ++consecutiveMisses_;
    if (consecutiveMisses_ < threshold_) return false;
    consecutiveMisses_ = 0;
    ++recoveries_;
    return true;
  }

  [[nodiscard]] std::uint32_t consecutiveMisses() const noexcept {
    return consecutiveMisses_;
  }
  [[nodiscard]] std::uint64_t recoveries() const noexcept { return recoveries_; }

 private:
  std::uint32_t threshold_;
  std::uint32_t consecutiveMisses_ = 0;
  std::uint64_t recoveries_ = 0;
};

}  // namespace epto::runtime

#include "runtime/udp_cluster.h"

#include <algorithm>

#include "codec/ball_codec.h"
#include "obs/exporters.h"
#include "util/ensure.h"

namespace epto::runtime {

namespace {

/// Uniform sampler over the static membership 0..count-1.
class StaticSampler final : public PeerSampler {
 public:
  StaticSampler(ProcessId self, std::size_t count, util::Rng rng) : rng_(rng) {
    others_.reserve(count - 1);
    for (std::size_t id = 0; id < count; ++id) {
      if (static_cast<ProcessId>(id) != self) others_.push_back(static_cast<ProcessId>(id));
    }
  }

  std::vector<ProcessId> samplePeers(std::size_t k) override {
    const std::size_t want = std::min(k, others_.size());
    for (std::size_t i = 0; i < want; ++i) {
      const std::size_t j = i + rng_.below(others_.size() - i);
      std::swap(others_[i], others_[j]);
    }
    return {others_.begin(), others_.begin() + static_cast<std::ptrdiff_t>(want)};
  }

 private:
  util::Rng rng_;
  std::vector<ProcessId> others_;
};

}  // namespace

UdpCluster::UdpCluster(UdpClusterOptions options)
    : options_(options),
      epoch_(std::chrono::steady_clock::now()),
      masterRng_(options.seed),
      faults_(options.faultPlan != nullptr
                  ? std::make_unique<fault::FaultController>(*options.faultPlan)
                  : nullptr) {
  EPTO_ENSURE_MSG(options_.nodeCount >= 2, "need at least two nodes");
  EPTO_ENSURE_MSG(options_.roundPeriod.count() > 0, "round period must be positive");
  if (faults_ != nullptr) {
    EPTO_ENSURE_MSG(faults_->plan().maxNode() < options_.nodeCount,
                    "fault plan targets a node beyond the cluster size");
  }

  const Config derived = Config::forSystemSize(options_.nodeCount, options_.clockMode,
                                               Robustness{.c = options_.c});
  fanout_ = options_.fanoutOverride.value_or(derived.fanout);
  ttl_ = options_.ttlOverride.value_or(derived.ttl);

  nodes_.reserve(options_.nodeCount);
  ports_.reserve(options_.nodeCount);
  for (std::size_t i = 0; i < options_.nodeCount; ++i) {
    const auto id = static_cast<ProcessId>(i);
    auto node = std::make_unique<NodeState>();  // socket binds here
    node->id = id;
    ports_.push_back(node->socket.port());
    node->process = makeProcess(id, /*incarnation=*/0);
    nodes_.push_back(std::move(node));
    lifetimes_[id] = metrics::ProcessLifetime{0, std::nullopt};
  }

  // Pre-register every node's instruments so any scrape covers the full
  // metric surface from the first sample.
  for (const auto& node : nodes_) node->process->metricsSnapshot().recordTo(registry_);

  auto scrapeInterval = options_.scrapeInterval;
  if (scrapeInterval.count() == 0 && !options_.metricsOutPath.empty()) {
    scrapeInterval = std::chrono::milliseconds(100);
  }
  if (scrapeInterval.count() > 0) {
    scrape_ = std::make_unique<obs::ScrapeLoop>(
        registry_,
        obs::ScrapeLoop::Options{scrapeInterval, options_.metricsOutPath},
        [this] { return ticksNow(); },
        [this] {
          registry_.counter("epto_udp_frames_rejected_total")
              .set(framesRejected_.load(std::memory_order_relaxed));
          registry_.counter("epto_udp_send_failures_total")
              .set(sendFailures_.load(std::memory_order_relaxed));
        });
  }
}

UdpCluster::~UdpCluster() { stop(); }

std::unique_ptr<Process> UdpCluster::makeProcess(ProcessId id, std::uint32_t incarnation) {
  Config cfg;
  cfg.fanout = fanout_;
  cfg.ttl = ttl_;
  cfg.clockMode = options_.clockMode;
  util::Rng samplerRng(
      util::mix64(options_.seed + 0xC2B2AE3D27D4EB4FULL * (incarnation + 1)) ^ id);
  auto process = std::make_unique<Process>(
      id, cfg, std::make_shared<StaticSampler>(id, options_.nodeCount, samplerRng),
      [this, id](const Event& event, DeliveryTag tag) {
        const std::scoped_lock lock(trackerMutex_);
        tracker_.onDeliver(id, event.id, ticksNow(), tag);
        ledger_.onDeliver(id, event.id);
      },
      [this]() { return ticksNow(); });
  if (incarnation > 0) {
    // Disjoint EventId range per incarnation (~1M broadcasts each).
    process->startSequenceAt(incarnation << 20U);
  }
  return process;
}

Timestamp UdpCluster::ticksNow() const {
  return static_cast<Timestamp>(std::chrono::duration_cast<std::chrono::microseconds>(
                                    std::chrono::steady_clock::now() - epoch_)
                                    .count());
}

void UdpCluster::start() {
  EPTO_ENSURE_MSG(!running_.exchange(true), "cluster already started");
  stopRequested_ = false;
  // Fault-plan timestamps are relative to start(), not construction.
  epoch_ = std::chrono::steady_clock::now();
  for (auto& node : nodes_) {
    node->thread = std::thread([this, raw = node.get()] { nodeLoop(*raw); });
  }
  if (scrape_ != nullptr) scrape_->start();
}

void UdpCluster::broadcast(std::size_t index, PayloadPtr payload) {
  EPTO_ENSURE_MSG(index < nodes_.size(), "node index out of range");
  NodeState& node = *nodes_[index];
  if (!node.up.load(std::memory_order_acquire)) {
    discardedBroadcasts_.fetch_add(1, std::memory_order_relaxed);
    requestedBroadcasts_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  {
    const std::scoped_lock lock(node.broadcastMutex);
    node.pendingBroadcasts.push_back(std::move(payload));
  }
  requestedBroadcasts_.fetch_add(1, std::memory_order_relaxed);
}

bool UdpCluster::nodeDown(std::size_t index) const {
  EPTO_ENSURE_MSG(index < nodes_.size(), "node index out of range");
  return !nodes_[index]->up.load(std::memory_order_acquire);
}

std::vector<ProcessId> UdpCluster::upNodes() const {
  std::vector<ProcessId> ids;
  ids.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    if (node->up.load(std::memory_order_acquire)) ids.push_back(node->id);
  }
  return ids;
}

void UdpCluster::enterCrash(NodeState& node) {
  const Timestamp now = ticksNow();
  faults_->noteCrash(node.id, now);
  node.process.reset();
  node.heldBack.clear();  // delayed datagrams die with the sender
  node.up.store(false, std::memory_order_release);
  std::vector<PayloadPtr> discarded;
  {
    const std::scoped_lock lock(node.broadcastMutex);
    discarded.swap(node.pendingBroadcasts);
  }
  discardedBroadcasts_.fetch_add(discarded.size(), std::memory_order_relaxed);
  {
    const std::scoped_lock lock(trackerMutex_);
    tracker_.onProcessCrash(node.id, now);
    ledger_.onCrash(node.id);
    lifetimes_[node.id].leftAt = now;
  }
}

void UdpCluster::leaveCrash(NodeState& node) {
  const Timestamp now = ticksNow();
  // Datagrams buffered by the OS while we were dead are lost state.
  while (node.socket.receive(0).has_value()) {
  }
  ++node.incarnation;
  node.process = makeProcess(node.id, node.incarnation);
  {
    const std::scoped_lock lock(trackerMutex_);
    tracker_.onProcessRestart(node.id, now);
    lifetimes_[node.id] = metrics::ProcessLifetime{now, std::nullopt};
  }
  faults_->noteRestart(node.id, now);
  node.up.store(true, std::memory_order_release);
}

void UdpCluster::sendFrame(NodeState& node, ProcessId target,
                           const std::vector<std::byte>& frame) {
  if (!node.socket.sendTo(ports_[target], frame)) {
    sendFailures_.fetch_add(1, std::memory_order_relaxed);
  }
}

void UdpCluster::flushHeldBack(NodeState& node) {
  if (node.heldBack.empty()) return;
  const auto now = std::chrono::steady_clock::now();
  auto due = std::partition(node.heldBack.begin(), node.heldBack.end(),
                            [now](const HeldDatagram& d) { return d.due > now; });
  for (auto it = due; it != node.heldBack.end(); ++it) {
    if (!node.socket.sendTo(it->port, it->frame)) {
      sendFailures_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  node.heldBack.erase(due, node.heldBack.end());
}

void UdpCluster::nodeLoop(NodeState& node) {
  using Clock = std::chrono::steady_clock;
  util::Rng rng(util::mix64(options_.seed ^ 0xDA7A6A4Dull) ^ node.id);
  const auto jitteredPeriod = [&]() {
    const double factor = 1.0 + options_.roundJitter * (2.0 * rng.uniform01() - 1.0);
    return std::chrono::microseconds(static_cast<std::int64_t>(
        std::max(1.0, static_cast<double>(options_.roundPeriod.count()) * factor)));
  };

  auto nextRound = Clock::now() + jitteredPeriod();
  bool stallNoted = false;
  while (!stopRequested_.load(std::memory_order_relaxed)) {
    if (faults_ != nullptr) {
      const Timestamp tnow = ticksNow();
      if (faults_->isCrashed(node.id, tnow)) {
        if (node.up.load(std::memory_order_relaxed)) enterCrash(node);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        continue;
      }
      if (!node.up.load(std::memory_order_relaxed)) {
        leaveCrash(node);
        nextRound = Clock::now() + jitteredPeriod();
      }
      if (faults_->isStalled(node.id, tnow)) {
        // GC-pause model: no receives, no rounds; the OS buffers traffic
        // and the node catches up afterwards.
        if (!stallNoted) {
          stallNoted = true;
          faults_->noteStall(node.id, tnow);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        nextRound = Clock::now() + jitteredPeriod();
        continue;
      }
      stallNoted = false;
      flushHeldBack(node);
    }

    // Receive until the round boundary; poll() granularity is 1ms, so
    // short remainders degrade to a non-blocking check.
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        nextRound - Clock::now());
    const int timeout = static_cast<int>(std::clamp<long>(remaining.count(), 0, 50));
    if (auto datagram = node.socket.receive(timeout); datagram.has_value()) {
      auto decoded = codec::decodeBall(*datagram);
      if (decoded.ok()) {
        node.process->onBall(decoded.ball);
      } else {
        framesRejected_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (Clock::now() < nextRound) continue;

    std::vector<PayloadPtr> pending;
    {
      const std::scoped_lock lock(node.broadcastMutex);
      pending.swap(node.pendingBroadcasts);
    }
    for (PayloadPtr& payload : pending) {
      const Event event = node.process->broadcast(std::move(payload));
      const std::vector<ProcessId> expected = upNodes();
      const std::scoped_lock lock(trackerMutex_);
      tracker_.onBroadcast(node.id, event.id, event.orderKey(), ticksNow());
      ledger_.onBroadcast(event.id, expected);
    }

    const auto out = node.process->onRound();
    if (out.ball != nullptr) {
      const auto frame = codec::encodeBall(*out.ball);
      const Timestamp tnow = ticksNow();
      for (const ProcessId target : out.targets) {
        if (faults_ != nullptr) {
          const fault::FaultController::LinkFate fate =
              faults_->linkFate(node.id, target, tnow);
          if (fate.cut) {
            faults_->noteLinkDrop(node.id, target, tnow, fate.cutBy);
            continue;
          }
          if (fate.extraLossRate > 0.0 && rng.chance(fate.extraLossRate)) {
            faults_->noteLinkDrop(node.id, target, tnow, fault::FaultKind::BurstLoss);
            continue;
          }
          if (fate.extraDelay > 0) {
            faults_->noteDelayed(node.id, target, tnow);
            node.heldBack.push_back(HeldDatagram{
                Clock::now() + std::chrono::microseconds(
                                   static_cast<std::int64_t>(fate.extraDelay)),
                ports_[target], frame});
            continue;
          }
        }
        sendFrame(node, target, frame);
      }
    }
    node.process->metricsSnapshot().recordTo(registry_);
    nextRound += jitteredPeriod();
  }
}

bool UdpCluster::awaitQuiescence(std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    {
      const std::scoped_lock lock(trackerMutex_);
      const bool allInjected =
          tracker_.broadcastCount() + discardedBroadcasts_.load(std::memory_order_relaxed) >=
          requestedBroadcasts_.load(std::memory_order_relaxed);
      if (allInjected && ledger_.quiescent()) {
        quiescenceReport_.clear();
        return true;
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        quiescenceReport_ = allInjected
                                ? ledger_.missingReport()
                                : "broadcast requests still queued at node threads; " +
                                      ledger_.missingReport();
        return false;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

std::string UdpCluster::lastQuiescenceReport() const {
  const std::scoped_lock lock(trackerMutex_);
  return quiescenceReport_;
}

void UdpCluster::stop() {
  if (!running_.exchange(false)) return;
  stopRequested_ = true;
  for (auto& node : nodes_) {
    if (node->thread.joinable()) node->thread.join();
  }
  if (scrape_ != nullptr) scrape_->stop();
}

std::string UdpCluster::prometheusSnapshot() {
  registry_.counter("epto_udp_frames_rejected_total")
      .set(framesRejected_.load(std::memory_order_relaxed));
  registry_.counter("epto_udp_send_failures_total")
      .set(sendFailures_.load(std::memory_order_relaxed));
  if (faults_ != nullptr) faults_->recordTo(registry_);
  return obs::prometheusText(registry_.snapshot());
}

metrics::TrackerReport UdpCluster::report() const {
  const std::scoped_lock lock(trackerMutex_);
  return tracker_.finalize(lifetimes_, ticksNow());
}

}  // namespace epto::runtime

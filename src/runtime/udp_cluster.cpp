#include "runtime/udp_cluster.h"

#include <poll.h>

#include <algorithm>
#include <thread>

#include "codec/ball_codec.h"
#include "codec/fragment_codec.h"
#include "obs/exporters.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "util/ensure.h"

namespace epto::runtime {

namespace {

/// Uniform sampler over the static membership 0..count-1.
class StaticSampler final : public PeerSampler {
 public:
  StaticSampler(ProcessId self, std::size_t count, util::Rng rng) : rng_(rng) {
    others_.reserve(count - 1);
    for (std::size_t id = 0; id < count; ++id) {
      if (static_cast<ProcessId>(id) != self) others_.push_back(static_cast<ProcessId>(id));
    }
  }

  std::vector<ProcessId> samplePeers(std::size_t k) override {
    const std::size_t want = std::min(k, others_.size());
    for (std::size_t i = 0; i < want; ++i) {
      const std::size_t j = i + rng_.below(others_.size() - i);
      std::swap(others_[i], others_[j]);
    }
    return {others_.begin(), others_.begin() + static_cast<std::ptrdiff_t>(want)};
  }

 private:
  util::Rng rng_;
  std::vector<ProcessId> others_;
};

/// Relaxed atomic max (for the ingress high-water gauge).
void storeMax(std::atomic<std::uint64_t>& cell, std::uint64_t value) {
  std::uint64_t seen = cell.load(std::memory_order_relaxed);
  while (seen < value &&
         !cell.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

UdpCluster::UdpCluster(UdpClusterOptions options)
    : options_(options),
      epoch_(std::chrono::steady_clock::now()),
      masterRng_(options.seed),
      faults_(options.faultPlan != nullptr
                  ? std::make_unique<fault::FaultController>(*options.faultPlan)
                  : nullptr) {
  EPTO_ENSURE_MSG(options_.nodeCount >= 2, "need at least two nodes");
  EPTO_ENSURE_MSG(options_.roundPeriod.count() > 0, "round period must be positive");
  EPTO_ENSURE_MSG(options_.mtuBytes >= codec::kMinFragmentMtu &&
                      options_.mtuBytes <= kMaxUdpDatagramBytes,
                  "mtuBytes outside [kMinFragmentMtu, kMaxUdpDatagramBytes]");
  EPTO_ENSURE_MSG(options_.ingressCapacity > 0, "ingressCapacity must be positive");
  EPTO_ENSURE_MSG(options_.ingressDrainBudget > 0, "ingressDrainBudget must be positive");
  EPTO_ENSURE_MSG(options_.maxDatagramsPerPoll > 0,
                  "maxDatagramsPerPoll must be positive");
  EPTO_ENSURE_MSG(options_.reassemblyCapacity > 0, "reassemblyCapacity must be positive");
  EPTO_ENSURE_MSG(options_.reassemblyTtlRounds > 0,
                  "reassemblyTtlRounds must be positive");
  EPTO_ENSURE_MSG(options_.sendBackoff.maxAttempts >= 1,
                  "sendBackoff needs at least one attempt");
  EPTO_ENSURE_MSG(options_.sendBackoff.initialDelay.count() >= 0,
                  "sendBackoff initialDelay must not be negative");
  EPTO_ENSURE_MSG(options_.sendBackoff.multiplier >= 1.0,
                  "sendBackoff multiplier must be at least 1");
  EPTO_ENSURE_MSG(options_.recvBatch > 0, "recvBatch must be positive");
  EPTO_ENSURE_MSG(options_.sendBatch > 0, "sendBatch must be positive");
  EPTO_ENSURE_MSG(options_.mailboxCapacity > 0, "mailboxCapacity must be positive");
  if (faults_ != nullptr) {
    EPTO_ENSURE_MSG(faults_->plan().maxNode() < options_.nodeCount,
                    "fault plan targets a node beyond the cluster size");
  }

  const Config derived = Config::forSystemSize(options_.nodeCount, options_.clockMode,
                                               Robustness{.c = options_.c});
  fanout_ = options_.fanoutOverride.value_or(derived.fanout);
  ttl_ = options_.ttlOverride.value_or(derived.ttl);

  const ReassemblyOptions reassembly{options_.reassemblyCapacity,
                                     options_.reassemblyTtlRounds,
                                     /*maxFrameBytes=*/std::size_t{8} << 20};
  nodes_.reserve(options_.nodeCount);
  ports_.reserve(options_.nodeCount);
  for (std::size_t i = 0; i < options_.nodeCount; ++i) {
    const auto id = static_cast<ProcessId>(i);
    // Receive buffer == MTU: every conforming datagram fits, and an
    // over-MTU datagram is counted as truncated instead of mis-parsed.
    auto node = std::make_unique<NodeState>(options_.mtuBytes, reassembly,
                                            options_.ingressCapacity,
                                            options_.watchdogMissedRounds);
    node->id = id;
    if (options_.hardenIngress) {
      core::IngressGuardOptions guardOptions;
      guardOptions.maxTtl = ttl_;
      guardOptions.maxBallsPerSenderPerRound = options_.ingressRateCap;
      // Membership is a static port table here, so a source id outside
      // [0, nodeCount) can only be forged.
      guardOptions.knownSources = options_.nodeCount;
      node->guard = std::make_unique<core::IngressGuard>(guardOptions);
    }
    ports_.push_back(node->socket.port());
    node->process = makeProcess(id, /*incarnation=*/0);
    node->controller = makeController(id);
    nodes_.push_back(std::move(node));
    lifetimes_[id] = metrics::ProcessLifetime{0, std::nullopt};
  }

  // Pre-register every node's instruments so any scrape covers the full
  // metric surface from the first sample.
  for (const auto& node : nodes_) node->process->metricsSnapshot().recordTo(registry_);

  // Batched-I/O histograms, registered once so shard hot paths observe
  // through a raw pointer instead of the registry's find-or-create lock.
  // Bounds 1,2,4,...,512: a batch of 1 is the degenerate (unbatched)
  // case, 512 the maxDatagramsPerPoll ceiling.
  recvBatchSize_ = &registry_.histogram("epto_udp_recv_batch_size", {},
                                        obs::Registry::exponentialBounds(1, 2, 10));
  sendBatchSize_ = &registry_.histogram("epto_udp_send_batch_size", {},
                                        obs::Registry::exponentialBounds(1, 2, 10));

  if (options_.executor == ExecutorMode::Sharded) {
    ShardedExecutorOptions exec;
    exec.nodeCount = options_.nodeCount;
    exec.shardCount = options_.shardCount;
    exec.pinCores = options_.pinShards;
    exec.mailboxCapacity = options_.mailboxCapacity;
    executor_ = std::make_unique<ShardedExecutor>(
        exec, [this](ShardedExecutor::ShardContext& ctx) { shardLoop(ctx); });
    // Pre-register the per-shard mailbox gauges too.
    for (std::size_t shard = 0; shard < executor_->shardCount(); ++shard) {
      registry_.gauge("epto_shard_queue_depth", {{"shard", std::to_string(shard)}});
    }
  }

  auto scrapeInterval = options_.scrapeInterval;
  if (scrapeInterval.count() == 0 && !options_.metricsOutPath.empty()) {
    scrapeInterval = std::chrono::milliseconds(100);
  }
  if (scrapeInterval.count() > 0) {
    scrape_ = std::make_unique<obs::ScrapeLoop>(
        registry_,
        obs::ScrapeLoop::Options{scrapeInterval, options_.metricsOutPath},
        [this] { return ticksNow(); }, [this] { publishTransportMetrics(); });
  }
}

UdpCluster::~UdpCluster() { stop(); }

std::unique_ptr<Process> UdpCluster::makeProcess(ProcessId id, std::uint32_t incarnation) {
  Config cfg;
  cfg.fanout = fanout_;
  cfg.ttl = ttl_;
  cfg.clockMode = options_.clockMode;
  cfg.speculation.enabled = options_.speculation;
  cfg.speculation.confidenceThreshold = options_.speculationThreshold;
  cfg.speculation.maxWindow = options_.speculationWindow;
  cfg.stabilityModel.systemSize = options_.nodeCount;
  cfg.stabilityModel.fanout = fanout_;
  cfg.stabilityModel.messageLossRate = 0.0;  // datagram loss is unobservable here
  if (options_.clockMode == ClockMode::Global) {
    // Global clocks here are microsecond ticks since the epoch.
    cfg.stabilityModel.ticksPerRound =
        static_cast<Timestamp>(options_.roundPeriod.count());
  }
  util::Rng samplerRng(
      util::mix64(options_.seed + 0xC2B2AE3D27D4EB4FULL * (incarnation + 1)) ^ id);
  auto process = std::make_unique<Process>(
      id, cfg, std::make_shared<StaticSampler>(id, options_.nodeCount, samplerRng),
      [this, id](const Event& event, DeliveryTag tag) {
        const util::MutexLock lock(trackerMutex_);
        tracker_.onDeliver(id, event.id, ticksNow(), tag);
        ledger_.onDeliver(id, event.id);
      },
      [this]() { return ticksNow(); }, &latencyRecorder_);
  process->setIncarnation(static_cast<std::uint16_t>(incarnation));
  if (incarnation > 0) {
    // Disjoint EventId range per incarnation (~1M broadcasts each).
    process->startSequenceAt(incarnation << 20U);
  }
  return process;
}

std::unique_ptr<adapt::FeedbackController> UdpCluster::makeController(
    ProcessId id) const {
  if (!options_.adaptive) return nullptr;
  adapt::ControllerConfig config;
  config.worstCase.systemSize = options_.nodeCount;
  config.worstCase.c = options_.c;
  config.worstCase.logicalTime = options_.clockMode == ClockMode::Logical;
  config.worstCase.messageLossRate = options_.adaptiveWorstCaseLoss;
  config.initialLossRate = options_.adaptiveInitialLoss;
  config.initialTtl = ttl_;
  config.initialFanout = fanout_;
  config.self = id;
  return std::make_unique<adapt::FeedbackController>(config);
}

Timestamp UdpCluster::ticksNow() const {
  return static_cast<Timestamp>(std::chrono::duration_cast<std::chrono::microseconds>(
                                    std::chrono::steady_clock::now() - epoch_)
                                    .count());
}

void UdpCluster::start() {
  EPTO_ENSURE_MSG(!running_.exchange(true), "cluster already started");
  stopRequested_ = false;
  // Fault-plan timestamps are relative to start(), not construction.
  epoch_ = std::chrono::steady_clock::now();
  if (executor_ != nullptr) {
    executor_->start();
  } else {
    for (auto& node : nodes_) {
      node->thread = std::thread([this, raw = node.get()] { nodeLoop(*raw); });
    }
  }
  if (scrape_ != nullptr) scrape_->start();
}

void UdpCluster::broadcast(std::size_t index, PayloadPtr payload, QosClass qos) {
  EPTO_ENSURE_MSG(index < nodes_.size(), "node index out of range");
  NodeState& node = *nodes_[index];
  if (!node.up.load(std::memory_order_acquire)) {
    discardedBroadcasts_.fetch_add(1, std::memory_order_relaxed);
    requestedBroadcasts_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (executor_ != nullptr) {
    // Mailbox protocol (DESIGN.md §16): the request crosses into the
    // owning shard as a command; the shard appends it to the pending
    // list between loop iterations. pendingBroadcasts stays mutex-
    // guarded so the annotation (and the not-yet-started / already-
    // stopped inline fallback below) remain sound.
    ShardedExecutor::Command command(
        [&node, payloadHeld = std::move(payload), qos]() mutable {
          const util::MutexLock lock(node.broadcastMutex);
          node.pendingBroadcasts.push_back(PendingBroadcast{std::move(payloadHeld), qos});
        });
    while (running_.load(std::memory_order_acquire)) {
      if (executor_->post(index, std::move(command))) {
        requestedBroadcasts_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      // Full mailbox: the shard drains every loop iteration, so this
      // clears within one poll timeout.
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    // No shard is consuming (cluster not started, or stopping): run the
    // command inline — still safe, the list is mutex-guarded.
    command();
    requestedBroadcasts_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  {
    const util::MutexLock lock(node.broadcastMutex);
    node.pendingBroadcasts.push_back(PendingBroadcast{std::move(payload), qos});
  }
  requestedBroadcasts_.fetch_add(1, std::memory_order_relaxed);
}

bool UdpCluster::nodeDown(std::size_t index) const {
  EPTO_ENSURE_MSG(index < nodes_.size(), "node index out of range");
  return !nodes_[index]->up.load(std::memory_order_acquire);
}

std::vector<ProcessId> UdpCluster::upNodes() const {
  std::vector<ProcessId> ids;
  ids.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    if (node->up.load(std::memory_order_acquire)) ids.push_back(node->id);
  }
  return ids;
}

void UdpCluster::enterCrash(NodeState& node) {
  const Timestamp now = ticksNow();
  faults_->noteCrash(node.id, now);
  if (!options_.flightDumpPath.empty()) {
    (void)obs::FlightRecorder::global().dumpTo(
        options_.flightDumpPath, "crash node=" + std::to_string(node.id));
  }
  node.process.reset();
  node.heldBack.clear();  // delayed datagrams die with the sender
  node.reassembler.clear();
  node.ingress.clear();
  node.up.store(false, std::memory_order_release);
  std::vector<PendingBroadcast> discarded;
  {
    const util::MutexLock lock(node.broadcastMutex);
    discarded.swap(node.pendingBroadcasts);
  }
  discardedBroadcasts_.fetch_add(discarded.size(), std::memory_order_relaxed);
  {
    const util::MutexLock lock(trackerMutex_);
    tracker_.onProcessCrash(node.id, now);
    ledger_.onCrash(node.id);
    lifetimes_[node.id].leftAt = now;
  }
}

void UdpCluster::leaveCrash(NodeState& node) {
  const Timestamp now = ticksNow();
  // Datagrams buffered by the OS while we were dead are lost state.
  while (node.socket.receive(0).has_value()) {
  }
  node.reassembler.clear();
  node.ingress.clear();
  ++node.incarnation;
  node.process = makeProcess(node.id, node.incarnation);
  // Fresh incarnation, fresh controller: it restarts from the static
  // tuning and re-learns current conditions alongside the new Process.
  node.controller = makeController(node.id);
  node.lastBallsReceived = 0;
  {
    const util::MutexLock lock(trackerMutex_);
    tracker_.onProcessRestart(node.id, now);
    lifetimes_[node.id] = metrics::ProcessLifetime{now, std::nullopt};
  }
  faults_->noteRestart(node.id, now);
  node.up.store(true, std::memory_order_release);
}

void UdpCluster::sendDatagram(NodeState& node, std::uint16_t port, bool isFragment,
                              const std::vector<std::byte>& frame, util::Rng& rng) {
  const SendOutcome outcome =
      sendWithBackoff(node.socket, port, frame, options_.sendBackoff, rng);
  if (outcome.retries > 0) {
    sendRetries_.fetch_add(static_cast<std::uint64_t>(outcome.retries),
                           std::memory_order_relaxed);
  }
  switch (outcome.status) {
    case SendStatus::Sent:
      if (isFragment) fragmentsSent_.fetch_add(1, std::memory_order_relaxed);
      break;
    case SendStatus::Transient:
      sendFailuresTransient_.fetch_add(1, std::memory_order_relaxed);
      break;
    case SendStatus::Hard:
      sendFailuresHard_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
}

void UdpCluster::flushHeldBack(NodeState& node, util::Rng& rng) {
  if (node.heldBack.empty()) return;
  const auto now = std::chrono::steady_clock::now();
  auto due = std::partition(node.heldBack.begin(), node.heldBack.end(),
                            [now](const HeldDatagram& d) { return d.due > now; });
  for (auto it = due; it != node.heldBack.end(); ++it) {
    sendDatagram(node, it->port, it->isFragment, it->frame, rng);
  }
  node.heldBack.erase(due, node.heldBack.end());
}

void UdpCluster::enqueueBallFrame(NodeState& node, std::span<const std::byte> frame,
                                  std::uint16_t fromPort) {
  auto decoded = codec::decodeBall(frame);
  if (!decoded.ok()) {
    framesRejected_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // A frame that parsed is still attacker-controlled input; only the
  // guard's verdict makes its fields safe for the protocol to trust.
  if (node.guard != nullptr) {
    auto verdict = node.guard->inspect(fromPort, decoded.ball);
    if (!verdict.admitted) return;
    if (verdict.kept.has_value()) {
      node.ingress.push(std::move(*verdict.kept));
      return;
    }
  }
  node.ingress.push(std::move(decoded.ball));
}

void UdpCluster::ingestDatagram(NodeState& node, const UdpSocket::Datagram& datagram) {
  if (datagram.truncated) {
    // The kernel cut the payload: the datagram exceeded the receive
    // buffer (i.e. the configured MTU). Counted here, not discovered as
    // a checksum failure downstream.
    truncatedDatagrams_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (codec::isFragmentFrame(datagram.bytes)) {
    fragmentsReceived_.fetch_add(1, std::memory_order_relaxed);
    const auto decoded = codec::decodeFragment(datagram.bytes);
    if (!decoded.ok()) {
      framesRejected_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    auto frame = node.reassembler.accept(decoded.fragment, node.roundCounter);
    if (!frame.has_value()) return;
    ballsReassembled_.fetch_add(1, std::memory_order_relaxed);
    enqueueBallFrame(node, *frame, datagram.fromPort);
    return;
  }
  enqueueBallFrame(node, datagram.bytes, datagram.fromPort);
}

void UdpCluster::publishNodeCounters(NodeState& node) {
  const ReassemblyStats& stats = node.reassembler.stats();
  if (stats.partialsExpired > node.publishedReassembly.partialsExpired) {
    reassemblyExpired_.fetch_add(
        stats.partialsExpired - node.publishedReassembly.partialsExpired,
        std::memory_order_relaxed);
  }
  if (stats.partialsShed > node.publishedReassembly.partialsShed) {
    reassemblyShed_.fetch_add(stats.partialsShed - node.publishedReassembly.partialsShed,
                              std::memory_order_relaxed);
  }
  node.publishedReassembly = stats;

  const std::uint64_t shed = node.ingress.shedTotal();
  if (shed > node.publishedIngressShed) {
    ingressShed_.fetch_add(shed - node.publishedIngressShed, std::memory_order_relaxed);
    node.publishedIngressShed = shed;
  }
  storeMax(ingressHighWater_, node.ingress.highWater());

  const std::uint64_t recoveries = node.watchdog.recoveries();
  if (recoveries > node.publishedWatchdogRecoveries) {
    watchdogRecoveries_.fetch_add(recoveries - node.publishedWatchdogRecoveries,
                                  std::memory_order_relaxed);
    node.publishedWatchdogRecoveries = recoveries;
  }

  if (node.guard != nullptr) {
    const core::IngressStats& guard = node.guard->stats();
    const auto mirror = [](std::atomic<std::uint64_t>& cell, std::uint64_t now,
                           std::uint64_t& published) {
      if (now > published) {
        cell.fetch_add(now - published, std::memory_order_relaxed);
        published = now;
      }
    };
    core::IngressStats& seen = node.publishedGuard;
    mirror(guardInspected_, guard.ballsInspected, seen.ballsInspected);
    mirror(guardRejectedLineage_, guard.ballsRejectedLineage,
           seen.ballsRejectedLineage);
    mirror(guardRejectedOriginRound_, guard.ballsRejectedOriginRound,
           seen.ballsRejectedOriginRound);
    mirror(guardRejectedRate_, guard.ballsRejectedRate, seen.ballsRejectedRate);
    mirror(guardRejectedUnknownSource_, guard.ballsRejectedUnknownSource,
           seen.ballsRejectedUnknownSource);
    mirror(guardFilteredEquivocation_, guard.eventsFilteredEquivocation,
           seen.eventsFilteredEquivocation);
    mirror(guardFilteredIncarnation_, guard.eventsFilteredIncarnation,
           seen.eventsFilteredIncarnation);
    mirror(guardFingerprintRotations_, guard.fingerprintRotations,
           seen.fingerprintRotations);
  }
}

core::IngressStats UdpCluster::ingressGuardStats() const noexcept {
  core::IngressStats stats;
  stats.ballsInspected = guardInspected_.load(std::memory_order_relaxed);
  stats.ballsRejectedLineage = guardRejectedLineage_.load(std::memory_order_relaxed);
  stats.ballsRejectedOriginRound =
      guardRejectedOriginRound_.load(std::memory_order_relaxed);
  stats.ballsRejectedRate = guardRejectedRate_.load(std::memory_order_relaxed);
  stats.ballsRejectedUnknownSource =
      guardRejectedUnknownSource_.load(std::memory_order_relaxed);
  stats.eventsFilteredEquivocation =
      guardFilteredEquivocation_.load(std::memory_order_relaxed);
  stats.eventsFilteredIncarnation =
      guardFilteredIncarnation_.load(std::memory_order_relaxed);
  stats.fingerprintRotations =
      guardFingerprintRotations_.load(std::memory_order_relaxed);
  return stats;
}

std::uint16_t UdpCluster::nodePort(std::size_t index) const {
  EPTO_ENSURE_MSG(index < ports_.size(), "node index out of range");
  return ports_[index];
}

void UdpCluster::publishTransportMetrics() {
  registry_.counter("epto_udp_frames_rejected_total")
      .set(framesRejected_.load(std::memory_order_relaxed));
  registry_.counter("epto_udp_truncated_total")
      .set(truncatedDatagrams_.load(std::memory_order_relaxed));
  registry_.counter("epto_udp_send_failures_total", {{"cause", "transient"}})
      .set(sendFailuresTransient_.load(std::memory_order_relaxed));
  registry_.counter("epto_udp_send_failures_total", {{"cause", "hard"}})
      .set(sendFailuresHard_.load(std::memory_order_relaxed));
  registry_.counter("epto_udp_send_retries_total")
      .set(sendRetries_.load(std::memory_order_relaxed));
  registry_.counter("epto_udp_balls_fragmented_total")
      .set(ballsFragmented_.load(std::memory_order_relaxed));
  registry_.counter("epto_udp_fragments_sent_total")
      .set(fragmentsSent_.load(std::memory_order_relaxed));
  registry_.counter("epto_udp_fragments_received_total")
      .set(fragmentsReceived_.load(std::memory_order_relaxed));
  registry_.counter("epto_udp_balls_reassembled_total")
      .set(ballsReassembled_.load(std::memory_order_relaxed));
  registry_.counter("epto_udp_reassembly_expired_total")
      .set(reassemblyExpired_.load(std::memory_order_relaxed));
  registry_.counter("epto_udp_reassembly_shed_total")
      .set(reassemblyShed_.load(std::memory_order_relaxed));
  registry_.counter("epto_udp_ingress_shed_total")
      .set(ingressShed_.load(std::memory_order_relaxed));
  registry_.gauge("epto_udp_ingress_high_water")
      .set(static_cast<std::int64_t>(ingressHighWater_.load(std::memory_order_relaxed)));
  registry_.counter("epto_udp_watchdog_recoveries_total")
      .set(watchdogRecoveries_.load(std::memory_order_relaxed));
  if (options_.hardenIngress) {
    core::recordIngressStats(ingressGuardStats(), registry_);
  }
  registry_.counter("epto_trace_dropped_total").set(obs::Tracer::global().dropped());
  registry_.counter("epto_flight_dropped_total")
      .set(obs::FlightRecorder::global().dropped());
  if (executor_ != nullptr) {
    for (std::size_t shard = 0; shard < executor_->shardCount(); ++shard) {
      registry_.gauge("epto_shard_queue_depth", {{"shard", std::to_string(shard)}})
          .set(static_cast<std::int64_t>(executor_->mailboxDepth(shard)));
    }
    registry_.counter("epto_shard_post_rejections_total")
        .set(executor_->postRejections());
  }
}

std::size_t UdpCluster::dumpFlightRecorder(const std::string& path,
                                           const std::string& reason) {
  return obs::FlightRecorder::global().dumpTo(path, reason);
}

std::chrono::microseconds UdpCluster::jitteredPeriod(util::Rng& rng) const {
  const double factor = 1.0 + options_.roundJitter * (2.0 * rng.uniform01() - 1.0);
  return std::chrono::microseconds(static_cast<std::int64_t>(
      std::max(1.0, static_cast<double>(options_.roundPeriod.count()) * factor)));
}

/// ThreadPerNode sink: one sendto() per datagram, exactly the PR 3 path.
/// A fragmented fanout is a long send burst (hundreds of syscalls); a
/// loop that ignores its socket that whole time lets concurrent bursts
/// from peers overflow the kernel receive buffer and lose fragments
/// every round. Interleave bounded drains so sending never starves
/// receiving.
class UdpCluster::ImmediateSink final : public UdpCluster::DatagramSink {
 public:
  explicit ImmediateSink(UdpCluster& cluster) : cluster_(cluster) {}

  void send(NodeState& node, std::uint16_t port, bool isFragment,
            const std::vector<std::byte>& frame, util::Rng& rng) override {
    cluster_.sendDatagram(node, port, isFragment, frame, rng);
    if (++sentSinceDrain_ < 32) return;
    sentSinceDrain_ = 0;
    for (std::size_t budget = 64; budget > 0; --budget) {
      auto datagram = node.socket.receive(0);
      if (!datagram.has_value()) break;
      cluster_.ingestDatagram(node, *datagram);
    }
  }

  void flush(NodeState& /*node*/, util::Rng& /*rng*/) override { sentSinceDrain_ = 0; }

 private:
  UdpCluster& cluster_;
  std::size_t sentSinceDrain_ = 0;
};

/// Sharded sink: aggregate the round's datagrams and flush them through
/// one (or a few) sendmmsg() syscalls on the node's socket. The PR 3
/// send/receive interleave invariant carries over at flush granularity:
/// every flush is followed by a bounded recvmmsg drain, so a jumbo
/// fanout still cannot starve ingress.
class UdpCluster::BatchSink final : public UdpCluster::DatagramSink {
 public:
  BatchSink(UdpCluster& cluster, std::size_t flushThreshold)
      : cluster_(cluster), flushThreshold_(flushThreshold) {}

  void send(NodeState& node, std::uint16_t port, bool isFragment,
            const std::vector<std::byte>& frame, util::Rng& rng) override {
    pending_.push_back(OutgoingDatagram{port, &frame, isFragment});
    if (pending_.size() >= flushThreshold_) flush(node, rng);
  }

  void flush(NodeState& node, util::Rng& rng) override {
    if (pending_.empty()) return;
    cluster_.sendBatchSize_->observe(static_cast<double>(pending_.size()));
    const BatchSendOutcome outcome =
        sendBatchWithBackoff(node.socket, pending_, cluster_.options_.sendBackoff, rng);
    pending_.clear();
    if (outcome.retries > 0) {
      cluster_.sendRetries_.fetch_add(static_cast<std::uint64_t>(outcome.retries),
                                      std::memory_order_relaxed);
    }
    if (outcome.fragmentsSent > 0) {
      cluster_.fragmentsSent_.fetch_add(outcome.fragmentsSent,
                                        std::memory_order_relaxed);
    }
    if (outcome.transientLost > 0) {
      cluster_.sendFailuresTransient_.fetch_add(outcome.transientLost,
                                                std::memory_order_relaxed);
    }
    if (outcome.hardLost > 0) {
      cluster_.sendFailuresHard_.fetch_add(outcome.hardLost, std::memory_order_relaxed);
    }
    // PR 3 invariant: a send burst never starves receiving. Bounded,
    // drain-interleaved ingest (same path as the poll loop, so a chunky
    // backlog cannot overflow the ingress bound mid-push).
    cluster_.batchIngest(node, drainScratch_);
  }

 private:
  UdpCluster& cluster_;
  std::size_t flushThreshold_;
  std::vector<OutgoingDatagram> pending_;
  std::vector<UdpSocket::Datagram> drainScratch_;
};

bool UdpCluster::runNodeRound(NodeState& node, util::Rng& rng,
                              std::chrono::steady_clock::duration lateness,
                              DatagramSink& sink) {
  using Clock = std::chrono::steady_clock;
  ++node.roundCounter;
  node.reassembler.evictExpired(node.roundCounter);
  if (node.guard != nullptr) node.guard->onRound();

  std::vector<PendingBroadcast> pending;
  {
    const util::MutexLock lock(node.broadcastMutex);
    pending.swap(node.pendingBroadcasts);
  }
  for (PendingBroadcast& request : pending) {
    const Event event = node.process->broadcast(std::move(request.payload), request.qos);
    const std::vector<ProcessId> expected = upNodes();
    const util::MutexLock lock(trackerMutex_);
    tracker_.onBroadcast(node.id, event.id, event.orderKey(), ticksNow());
    ledger_.onBroadcast(event.id, expected);
  }

  const auto out = node.process->onRound();
  if (out.ball != nullptr) {
    const auto frame = codec::encodeBall(
        *out.ball, codec::EncodeOptions{.lineage = options_.wireLineage,
                                        .qos = options_.wireQos});
    const std::uint64_t ballId =
        (static_cast<std::uint64_t>(node.id) << 32) | ++node.fragmentSeq;
    const auto datagrams = codec::fragmentFrame(frame, options_.mtuBytes, ballId);
    const bool fragmented = datagrams.size() > 1;
    if (fragmented) ballsFragmented_.fetch_add(1, std::memory_order_relaxed);
    const Timestamp tnow = ticksNow();
    for (const ProcessId target : out.targets) {
      fault::FaultController::LinkFate fate;
      if (faults_ != nullptr) {
        fate = faults_->linkFate(node.id, target, tnow);
        if (fate.cut) {
          faults_->noteLinkDrop(node.id, target, tnow, fate.cutBy);
          continue;
        }
        if (fate.extraDelay > 0) faults_->noteDelayed(node.id, target, tnow);
      }
      for (const auto& datagram : datagrams) {
        // Burst loss rolls per datagram — fragment granularity: one
        // lost fragment costs one ball copy, not the whole fanout.
        if (fate.extraLossRate > 0.0 && rng.chance(fate.extraLossRate)) {
          if (fragmented) {
            faults_->noteFragmentDrop(node.id, target, tnow);
          } else {
            faults_->noteLinkDrop(node.id, target, tnow, fault::FaultKind::BurstLoss);
          }
          continue;
        }
        if (fate.extraDelay > 0) {
          node.heldBack.push_back(HeldDatagram{
              Clock::now() + std::chrono::microseconds(
                                 static_cast<std::int64_t>(fate.extraDelay)),
              ports_[target], fragmented, datagram});
          continue;
        }
        sink.send(node, ports_[target], fragmented, datagram, rng);
      }
    }
    // Flush while `datagrams` is still alive — the batch sink holds
    // non-owning frame pointers into it.
    sink.flush(node, rng);
  } else {
    sink.flush(node, rng);
  }
  if (node.controller != nullptr) {
    // Close the feedback loop on this node's own observations.
    const std::uint64_t ballsReceived = node.process->disseminationStats().ballsReceived;
    adapt::RoundSignals signals;
    signals.ballsReceived = static_cast<double>(ballsReceived - node.lastBallsReceived);
    node.lastBallsReceived = ballsReceived;
    const adapt::Decision decision = node.controller->onRound(signals);
    if (decision.changed) node.process->retune(decision.ttl, decision.fanout);
  }
  node.process->metricsSnapshot().recordTo(registry_);
  publishNodeCounters(node);

  // Watchdog: a round more than a full period late, `watchdogMissedRounds`
  // times in a row, means the loop is wedged behind its backlog. Recover
  // by force-draining the ingress queue through the protocol (ignoring
  // the per-loop budget) and snapping the schedule to now —
  // metric-visible via watchdogRecoveries(). Reassembly partials are
  // deliberately left alone: they are already bounded by their own
  // TTL/capacity, and purging them here would reset in-progress jumbo
  // balls every recovery, turning an overload into event loss.
  if (node.watchdog.onRoundBoundary(lateness, options_.roundPeriod)) {
    // The flight recorder exists for this moment: capture the protocol
    // decisions leading into the stall before the recovery mutates
    // anything further.
    if (!options_.flightDumpPath.empty()) {
      (void)obs::FlightRecorder::global().dumpTo(
          options_.flightDumpPath, "stall_watchdog node=" + std::to_string(node.id));
    }
    while (auto ball = node.ingress.pop()) node.process->onBall(*ball);
    publishNodeCounters(node);
    return true;
  }
  return false;
}

void UdpCluster::nodeLoop(NodeState& node) {
  using Clock = std::chrono::steady_clock;
  node.rng = util::Rng(util::mix64(options_.seed ^ 0xDA7A6A4Dull) ^ node.id);
  node.stallNoted = false;
  node.nextRound = Clock::now() + jitteredPeriod(node.rng);
  ImmediateSink sink(*this);
  while (!stopRequested_.load(std::memory_order_relaxed)) {
    if (faults_ != nullptr) {
      const Timestamp tnow = ticksNow();
      if (faults_->isCrashed(node.id, tnow)) {
        if (node.up.load(std::memory_order_relaxed)) enterCrash(node);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        continue;
      }
      if (!node.up.load(std::memory_order_relaxed)) {
        leaveCrash(node);
        node.nextRound = Clock::now() + jitteredPeriod(node.rng);
      }
      if (faults_->isStalled(node.id, tnow)) {
        // GC-pause model: no receives, no rounds; the OS buffers traffic
        // and the node catches up afterwards.
        if (!node.stallNoted) {
          node.stallNoted = true;
          faults_->noteStall(node.id, tnow);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        node.nextRound = Clock::now() + jitteredPeriod(node.rng);
        continue;
      }
      node.stallNoted = false;
      flushHeldBack(node, node.rng);
    }

    // Receive until the round boundary; poll() granularity is 1ms, so
    // short remainders degrade to a non-blocking check. After the first
    // (possibly blocking) datagram, drain whatever else the kernel has
    // queued — bounded so a flood cannot hold the loop past its round.
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        node.nextRound - Clock::now());
    const int timeout = static_cast<int>(std::clamp<long>(remaining.count(), 0, 50));
    std::size_t polled = 0;
    for (auto datagram = node.socket.receive(timeout); datagram.has_value();
         datagram = node.socket.receive(0)) {
      ingestDatagram(node, *datagram);
      if (++polled >= options_.maxDatagramsPerPoll) break;
    }

    // Hand a bounded batch to the protocol; the rest stays queued (and
    // is shed oldest-first by the ingress bound if the backlog wins).
    for (std::size_t budget = options_.ingressDrainBudget; budget > 0; --budget) {
      auto ball = node.ingress.pop();
      if (!ball.has_value()) break;
      node.process->onBall(*ball);
    }

    const auto boundaryNow = Clock::now();
    if (boundaryNow < node.nextRound) continue;
    const auto lateness = boundaryNow - node.nextRound;
    const bool recovered = runNodeRound(node, node.rng, lateness, sink);
    node.nextRound = recovered ? Clock::now() + jitteredPeriod(node.rng)
                               : node.nextRound + jitteredPeriod(node.rng);
  }
  // Sheds/evictions from the final partial round still reach the
  // cluster counters.
  publishNodeCounters(node);
}

void UdpCluster::batchIngest(NodeState& node, std::vector<UdpSocket::Datagram>& scratch) {
  std::size_t polled = 0;
  while (polled < options_.maxDatagramsPerPoll) {
    scratch.clear();
    const std::size_t want =
        std::min(options_.recvBatch, options_.maxDatagramsPerPoll - polled);
    const std::size_t got = node.socket.receiveBatch(scratch, want, /*timeoutMillis=*/0);
    if (got == 0) break;
    recvBatchSize_->observe(static_cast<double>(got));
    // Drain interleaves per datagram, not per chunk. In thread mode
    // every arrival burst is its own poll wakeup and earns a full
    // ingressDrainBudget; one shard wakeup covers MANY senders' flushes
    // at once (a recvmmsg chunk can hold a whole cluster round), so a
    // flat per-wakeup budget would both drain too slowly and overflow
    // the ingress bound mid-push — and because one thread drives every
    // owned node on one schedule, the overflow pattern is IDENTICAL at
    // every peer: the oldest-first shed cuts the same sender's ball
    // everywhere, correlated first-hop loss that EpTO's relay
    // redundancy cannot repair (an origin sends its ball exactly once).
    // Interleaving a budget after each datagram restores the
    // thread-mode cadence, keeps the queue from overflowing on chunky
    // arrivals, and bounds the per-wakeup work by
    // maxDatagramsPerPoll * (decode + ingressDrainBudget).
    for (const auto& datagram : scratch) {
      ingestDatagram(node, datagram);
      for (std::size_t budget = options_.ingressDrainBudget; budget > 0; --budget) {
        auto ball = node.ingress.pop();
        if (!ball.has_value()) break;
        node.process->onBall(*ball);
      }
    }
    polled += got;
    if (got < want) break;  // socket drained
  }
}

void UdpCluster::serviceDueNode(std::size_t index, ShardedExecutor::ShardContext& ctx,
                                DatagramSink& sink) {
  using Clock = std::chrono::steady_clock;
  NodeState& node = *nodes_[index];
  const auto reschedule = [&](Clock::time_point at) {
    node.nextRound = at;
    ctx.wheel().schedule(static_cast<std::uint32_t>(index), at);
  };
  if (faults_ != nullptr) {
    const Timestamp tnow = ticksNow();
    if (faults_->isCrashed(node.id, tnow)) {
      if (node.up.load(std::memory_order_relaxed)) enterCrash(node);
      // Re-check at the thread loop's crash-poll cadence.
      reschedule(Clock::now() + std::chrono::milliseconds(1));
      return;
    }
    if (!node.up.load(std::memory_order_relaxed)) {
      leaveCrash(node);
      reschedule(Clock::now() + jitteredPeriod(node.rng));
      return;
    }
    if (faults_->isStalled(node.id, tnow)) {
      // GC-pause model: no receives (the poll set skips the node), no
      // rounds; the OS buffers traffic for the catch-up afterwards.
      if (!node.stallNoted) {
        node.stallNoted = true;
        faults_->noteStall(node.id, tnow);
      }
      reschedule(Clock::now() + std::chrono::milliseconds(1));
      return;
    }
    if (node.stallNoted) {
      // Stall just ended: mirror the thread loop, which re-anchors one
      // period out before running its next round.
      node.stallNoted = false;
      reschedule(Clock::now() + jitteredPeriod(node.rng));
      return;
    }
  }
  const auto lateness = Clock::now() - node.nextRound;
  const bool recovered = runNodeRound(node, node.rng, lateness, sink);
  reschedule(recovered ? Clock::now() + jitteredPeriod(node.rng)
                       : node.nextRound + jitteredPeriod(node.rng));
}

void UdpCluster::shardLoop(ShardedExecutor::ShardContext& ctx) {
  using Clock = std::chrono::steady_clock;
  const std::size_t begin = ctx.nodeBegin();
  const std::size_t end = ctx.nodeEnd();
  for (std::size_t i = begin; i < end; ++i) {
    NodeState& node = *nodes_[i];
    node.rng = util::Rng(util::mix64(options_.seed ^ 0xDA7A6A4Dull) ^ node.id);
    node.stallNoted = false;
    // Phase-stagger first rounds across the cluster (node i at phase
    // i/n of a period). Thread mode gets this desynchronization for
    // free from OS preemption; a shared wheel does not, and perfectly
    // synchronized rounds make every node's send burst land in every
    // ingress queue at once — under a tight ingress bound the oldest-
    // first shed then cuts the SAME sender's ball everywhere, which is
    // exactly the correlated loss EpTO's redundancy cannot absorb.
    const auto phase = options_.roundPeriod * i / nodes_.size();
    node.nextRound = Clock::now() + jitteredPeriod(node.rng) + phase;
    ctx.wheel().schedule(static_cast<std::uint32_t>(i), node.nextRound);
  }

  BatchSink sink(*this, options_.sendBatch);
  std::vector<UdpSocket::Datagram> scratch;
  std::vector<std::uint32_t> due;
  std::vector<pollfd> pollSet;
  std::vector<std::size_t> pollNode;  // pollSet slot -> node index

  while (!stopRequested_.load(std::memory_order_relaxed)) {
    // Control plane first: commands observe node state quiesced between
    // iterations, never mid-round.
    ctx.drainMailbox();

    if (faults_ != nullptr) {
      for (std::size_t i = begin; i < end; ++i) {
        NodeState& node = *nodes_[i];
        if (node.up.load(std::memory_order_relaxed) && !node.stallNoted) {
          flushHeldBack(node, node.rng);
        }
      }
    }

    // One poll() across every live owned socket, blocking until the
    // wheel's earliest deadline (the sharded analogue of the per-node
    // receive-until-boundary loop).
    pollSet.clear();
    pollNode.clear();
    for (std::size_t i = begin; i < end; ++i) {
      NodeState& node = *nodes_[i];
      if (!node.up.load(std::memory_order_relaxed) || node.stallNoted) continue;
      pollfd pfd{};
      pfd.fd = node.socket.nativeHandle();
      pfd.events = POLLIN;
      pollSet.push_back(pfd);
      pollNode.push_back(i);
    }
    int timeout = 1;
    if (const auto dueAt = ctx.wheel().nextDue()) {
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(*dueAt - Clock::now());
      timeout = static_cast<int>(std::clamp<long>(remaining.count(), 0, 50));
    }
    if (pollSet.empty()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(std::max(timeout, 1)));
    } else {
      const int ready = ::poll(pollSet.data(), pollSet.size(), timeout);
      if (ready > 0) {
        for (std::size_t slot = 0; slot < pollSet.size(); ++slot) {
          if ((pollSet[slot].revents & POLLIN) != 0) {
            batchIngest(*nodes_[pollNode[slot]], scratch);
          }
        }
      }
    }

    // Hand each node a bounded batch of decoded balls; the rest stays
    // queued behind the ingress bound, exactly as in thread mode.
    for (std::size_t i = begin; i < end; ++i) {
      NodeState& node = *nodes_[i];
      if (!node.up.load(std::memory_order_relaxed) || node.stallNoted) continue;
      for (std::size_t budget = options_.ingressDrainBudget; budget > 0; --budget) {
        auto ball = node.ingress.pop();
        if (!ball.has_value()) break;
        node.process->onBall(*ball);
      }
    }

    due.clear();
    ctx.wheel().expire(Clock::now(), due);
    for (const std::uint32_t index : due) serviceDueNode(index, ctx, sink);
  }
  // Sheds/evictions from the final partial rounds still reach the
  // cluster counters.
  for (std::size_t i = begin; i < end; ++i) publishNodeCounters(*nodes_[i]);
}

bool UdpCluster::awaitQuiescence(std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    {
      const util::MutexLock lock(trackerMutex_);
      const bool allInjected =
          tracker_.broadcastCount() + discardedBroadcasts_.load(std::memory_order_relaxed) >=
          requestedBroadcasts_.load(std::memory_order_relaxed);
      if (allInjected && ledger_.quiescent()) {
        quiescenceReport_.clear();
        return true;
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        quiescenceReport_ = allInjected
                                ? ledger_.missingReport()
                                : "broadcast requests still queued at node threads; " +
                                      ledger_.missingReport();
        return false;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

std::string UdpCluster::lastQuiescenceReport() const {
  const util::MutexLock lock(trackerMutex_);
  return quiescenceReport_;
}

void UdpCluster::stop() {
  if (!running_.exchange(false)) return;
  stopRequested_ = true;
  if (executor_ != nullptr) {
    executor_->stop();
  } else {
    for (auto& node : nodes_) {
      if (node->thread.joinable()) node->thread.join();
    }
  }
  if (scrape_ != nullptr) scrape_->stop();
}

std::string UdpCluster::prometheusSnapshot() {
  publishTransportMetrics();
  if (faults_ != nullptr) faults_->recordTo(registry_);
  return obs::prometheusText(registry_.snapshot());
}

metrics::TrackerReport UdpCluster::report() const {
  const util::MutexLock lock(trackerMutex_);
  return tracker_.finalize(lifetimes_, ticksNow());
}

}  // namespace epto::runtime

#include "runtime/udp_cluster.h"

#include <algorithm>

#include "codec/ball_codec.h"
#include "obs/exporters.h"
#include "util/ensure.h"

namespace epto::runtime {

namespace {

/// Uniform sampler over the static membership 0..count-1.
class StaticSampler final : public PeerSampler {
 public:
  StaticSampler(ProcessId self, std::size_t count, util::Rng rng) : rng_(rng) {
    others_.reserve(count - 1);
    for (std::size_t id = 0; id < count; ++id) {
      if (static_cast<ProcessId>(id) != self) others_.push_back(static_cast<ProcessId>(id));
    }
  }

  std::vector<ProcessId> samplePeers(std::size_t k) override {
    const std::size_t want = std::min(k, others_.size());
    for (std::size_t i = 0; i < want; ++i) {
      const std::size_t j = i + rng_.below(others_.size() - i);
      std::swap(others_[i], others_[j]);
    }
    return {others_.begin(), others_.begin() + static_cast<std::ptrdiff_t>(want)};
  }

 private:
  util::Rng rng_;
  std::vector<ProcessId> others_;
};

}  // namespace

UdpCluster::UdpCluster(UdpClusterOptions options)
    : options_(options),
      epoch_(std::chrono::steady_clock::now()),
      masterRng_(options.seed) {
  EPTO_ENSURE_MSG(options_.nodeCount >= 2, "need at least two nodes");
  EPTO_ENSURE_MSG(options_.roundPeriod.count() > 0, "round period must be positive");

  const Config derived = Config::forSystemSize(options_.nodeCount, options_.clockMode,
                                               Robustness{.c = options_.c});
  fanout_ = options_.fanoutOverride.value_or(derived.fanout);
  ttl_ = options_.ttlOverride.value_or(derived.ttl);

  nodes_.reserve(options_.nodeCount);
  ports_.reserve(options_.nodeCount);
  for (std::size_t i = 0; i < options_.nodeCount; ++i) {
    const auto id = static_cast<ProcessId>(i);
    auto node = std::make_unique<NodeState>();  // socket binds here
    node->id = id;
    ports_.push_back(node->socket.port());

    Config cfg;
    cfg.fanout = fanout_;
    cfg.ttl = ttl_;
    cfg.clockMode = options_.clockMode;
    node->process = std::make_unique<Process>(
        id, cfg, std::make_shared<StaticSampler>(id, options_.nodeCount, masterRng_.split()),
        [this, id](const Event& event, DeliveryTag tag) {
          const std::scoped_lock lock(trackerMutex_);
          tracker_.onDeliver(id, event.id, ticksNow(), tag);
        },
        [this]() { return ticksNow(); });
    nodes_.push_back(std::move(node));
  }

  // Pre-register every node's instruments so any scrape covers the full
  // metric surface from the first sample.
  for (const auto& node : nodes_) node->process->metricsSnapshot().recordTo(registry_);

  auto scrapeInterval = options_.scrapeInterval;
  if (scrapeInterval.count() == 0 && !options_.metricsOutPath.empty()) {
    scrapeInterval = std::chrono::milliseconds(100);
  }
  if (scrapeInterval.count() > 0) {
    scrape_ = std::make_unique<obs::ScrapeLoop>(
        registry_,
        obs::ScrapeLoop::Options{scrapeInterval, options_.metricsOutPath},
        [this] { return ticksNow(); },
        [this] {
          registry_.counter("epto_udp_frames_rejected_total")
              .set(framesRejected_.load(std::memory_order_relaxed));
        });
  }
}

UdpCluster::~UdpCluster() { stop(); }

Timestamp UdpCluster::ticksNow() const {
  return static_cast<Timestamp>(std::chrono::duration_cast<std::chrono::microseconds>(
                                    std::chrono::steady_clock::now() - epoch_)
                                    .count());
}

void UdpCluster::start() {
  EPTO_ENSURE_MSG(!running_.exchange(true), "cluster already started");
  stopRequested_ = false;
  for (auto& node : nodes_) {
    node->thread = std::thread([this, raw = node.get()] { nodeLoop(*raw); });
  }
  if (scrape_ != nullptr) scrape_->start();
}

void UdpCluster::broadcast(std::size_t index, PayloadPtr payload) {
  EPTO_ENSURE_MSG(index < nodes_.size(), "node index out of range");
  {
    const std::scoped_lock lock(nodes_[index]->broadcastMutex);
    nodes_[index]->pendingBroadcasts.push_back(std::move(payload));
  }
  requestedBroadcasts_.fetch_add(1, std::memory_order_relaxed);
}

void UdpCluster::nodeLoop(NodeState& node) {
  using Clock = std::chrono::steady_clock;
  util::Rng rng(util::mix64(options_.seed ^ 0xDA7A6A4Dull) ^ node.id);
  const auto jitteredPeriod = [&]() {
    const double factor = 1.0 + options_.roundJitter * (2.0 * rng.uniform01() - 1.0);
    return std::chrono::microseconds(static_cast<std::int64_t>(
        std::max(1.0, static_cast<double>(options_.roundPeriod.count()) * factor)));
  };

  auto nextRound = Clock::now() + jitteredPeriod();
  while (!stopRequested_.load(std::memory_order_relaxed)) {
    // Receive until the round boundary; poll() granularity is 1ms, so
    // short remainders degrade to a non-blocking check.
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        nextRound - Clock::now());
    const int timeout = static_cast<int>(std::clamp<long>(remaining.count(), 0, 50));
    if (auto datagram = node.socket.receive(timeout); datagram.has_value()) {
      auto decoded = codec::decodeBall(*datagram);
      if (decoded.ok()) {
        node.process->onBall(decoded.ball);
      } else {
        framesRejected_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (Clock::now() < nextRound) continue;

    std::vector<PayloadPtr> pending;
    {
      const std::scoped_lock lock(node.broadcastMutex);
      pending.swap(node.pendingBroadcasts);
    }
    for (PayloadPtr& payload : pending) {
      const Event event = node.process->broadcast(std::move(payload));
      const std::scoped_lock lock(trackerMutex_);
      tracker_.onBroadcast(node.id, event.id, event.orderKey(), ticksNow());
      expectedDeliveries_ += nodes_.size();
    }

    const auto out = node.process->onRound();
    if (out.ball != nullptr) {
      const auto frame = codec::encodeBall(*out.ball);
      for (const ProcessId target : out.targets) {
        (void)node.socket.sendTo(ports_[target], frame);  // drop = loss
      }
    }
    node.process->metricsSnapshot().recordTo(registry_);
    nextRound += jitteredPeriod();
  }
}

bool UdpCluster::awaitQuiescence(std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    {
      const std::scoped_lock lock(trackerMutex_);
      const bool allInjected =
          tracker_.broadcastCount() >= requestedBroadcasts_.load(std::memory_order_relaxed);
      if (allInjected && tracker_.deliveryCount() >= expectedDeliveries_) return true;
    }
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

void UdpCluster::stop() {
  if (!running_.exchange(false)) return;
  stopRequested_ = true;
  for (auto& node : nodes_) {
    if (node->thread.joinable()) node->thread.join();
  }
  if (scrape_ != nullptr) scrape_->stop();
}

std::string UdpCluster::prometheusSnapshot() {
  registry_.counter("epto_udp_frames_rejected_total")
      .set(framesRejected_.load(std::memory_order_relaxed));
  return obs::prometheusText(registry_.snapshot());
}

metrics::TrackerReport UdpCluster::report() const {
  std::unordered_map<ProcessId, metrics::ProcessLifetime> lifetimes;
  for (const auto& node : nodes_) {
    lifetimes[node->id] = metrics::ProcessLifetime{0, std::nullopt};
  }
  const std::scoped_lock lock(trackerMutex_);
  return tracker_.finalize(lifetimes, ticksNow());
}

}  // namespace epto::runtime

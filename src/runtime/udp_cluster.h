// UdpCluster — EpTO over real UDP sockets on loopback (paper §8.5).
//
// The strongest "real system" configuration in this repository: every
// node owns a UDP socket and a thread; balls are serialized through the
// wire codec into datagrams; nothing but the OS network stack sits
// between processes. The node loop is single-threaded per node (receive
// with a deadline, then run the round), so the sans-io core again needs
// no locks.
//
// Membership is a static port table exchanged at startup — a real
// deployment would gossip addresses through the PSS; the protocol logic
// is identical.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include <string>

#include "core/process.h"
#include "metrics/delivery_tracker.h"
#include "obs/registry.h"
#include "obs/scrape.h"
#include "runtime/udp_transport.h"
#include "util/rng.h"

namespace epto::runtime {

struct UdpClusterOptions {
  std::size_t nodeCount = 6;
  std::chrono::microseconds roundPeriod{4000};
  double roundJitter = 0.05;
  ClockMode clockMode = ClockMode::Logical;
  double c = 2.0;
  std::optional<std::size_t> fanoutOverride;
  std::optional<std::uint32_t> ttlOverride;
  std::uint64_t seed = 42;
  /// Background metrics scrape; same semantics as RuntimeOptions.
  std::chrono::milliseconds scrapeInterval{0};
  std::string metricsOutPath;
};

class UdpCluster {
 public:
  explicit UdpCluster(UdpClusterOptions options);
  ~UdpCluster();

  UdpCluster(const UdpCluster&) = delete;
  UdpCluster& operator=(const UdpCluster&) = delete;

  void start();

  /// Ask node `index` to broadcast before its next round (thread-safe).
  void broadcast(std::size_t index, PayloadPtr payload = {});

  /// Block until all requested broadcasts delivered everywhere, or timeout.
  bool awaitQuiescence(std::chrono::milliseconds timeout);

  /// Signal and join all node threads. Idempotent.
  void stop();

  [[nodiscard]] metrics::TrackerReport report() const;
  [[nodiscard]] std::size_t fanoutUsed() const noexcept { return fanout_; }
  [[nodiscard]] std::uint32_t ttlUsed() const noexcept { return ttl_; }
  /// Datagrams that arrived but failed frame validation.
  [[nodiscard]] std::uint64_t framesRejected() const noexcept {
    return framesRejected_.load();
  }

  [[nodiscard]] obs::Registry& metricsRegistry() noexcept { return registry_; }
  /// Prometheus text exposition of every node's protocol counters.
  [[nodiscard]] std::string prometheusSnapshot();

 private:
  struct NodeState {
    ProcessId id = 0;
    UdpSocket socket;
    std::unique_ptr<Process> process;
    std::thread thread;
    std::mutex broadcastMutex;
    std::vector<PayloadPtr> pendingBroadcasts;
  };

  void nodeLoop(NodeState& node);
  [[nodiscard]] Timestamp ticksNow() const;

  UdpClusterOptions options_;
  std::size_t fanout_ = 0;
  std::uint32_t ttl_ = 0;
  std::chrono::steady_clock::time_point epoch_;

  util::Rng masterRng_;
  std::vector<std::unique_ptr<NodeState>> nodes_;
  std::vector<std::uint16_t> ports_;  // ProcessId -> UDP port

  obs::Registry registry_;
  std::unique_ptr<obs::ScrapeLoop> scrape_;

  mutable std::mutex trackerMutex_;
  metrics::DeliveryTracker tracker_;
  std::uint64_t expectedDeliveries_ = 0;
  std::atomic<std::uint64_t> requestedBroadcasts_{0};
  std::atomic<std::uint64_t> framesRejected_{0};

  std::atomic<bool> running_{false};
  std::atomic<bool> stopRequested_{false};
};

}  // namespace epto::runtime

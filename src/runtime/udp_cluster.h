// UdpCluster — EpTO over real UDP sockets on loopback (paper §8.5).
//
// The strongest "real system" configuration in this repository: every
// node owns a UDP socket and a thread; balls are serialized through the
// wire codec into datagrams; nothing but the OS network stack sits
// between processes. The node loop is single-threaded per node (receive
// with a deadline, then run the round), so the sans-io core again needs
// no locks.
//
// Membership is a static port table exchanged at startup — a real
// deployment would gossip addresses through the PSS; the protocol logic
// is identical.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include <string>

#include <unordered_map>

#include "core/process.h"
#include "fault/fault_controller.h"
#include "fault/fault_plan.h"
#include "metrics/delivery_tracker.h"
#include "metrics/quiescence.h"
#include "obs/registry.h"
#include "obs/scrape.h"
#include "runtime/udp_transport.h"
#include "util/rng.h"

namespace epto::runtime {

struct UdpClusterOptions {
  std::size_t nodeCount = 6;
  std::chrono::microseconds roundPeriod{4000};
  double roundJitter = 0.05;
  ClockMode clockMode = ClockMode::Logical;
  double c = 2.0;
  std::optional<std::size_t> fanoutOverride;
  std::optional<std::uint32_t> ttlOverride;
  /// Scheduled fault injection; same schedule format and semantics as
  /// RuntimeOptions::faultPlan (timestamps in microseconds since
  /// start()). Crashed nodes stop receiving and sending; their socket
  /// stays bound, and the backlog is discarded when they rejoin with
  /// fresh state. Delay spikes are enforced by holding outgoing
  /// datagrams back at the sender. Must outlive the cluster.
  const fault::FaultPlan* faultPlan = nullptr;
  std::uint64_t seed = 42;
  /// Background metrics scrape; same semantics as RuntimeOptions.
  std::chrono::milliseconds scrapeInterval{0};
  std::string metricsOutPath;
};

class UdpCluster {
 public:
  explicit UdpCluster(UdpClusterOptions options);
  ~UdpCluster();

  UdpCluster(const UdpCluster&) = delete;
  UdpCluster& operator=(const UdpCluster&) = delete;

  void start();

  /// Ask node `index` to broadcast before its next round (thread-safe).
  void broadcast(std::size_t index, PayloadPtr payload = {});

  /// Block until every broadcast has been delivered by every node that
  /// still owes it (crashed nodes owe nothing; restarted nodes only owe
  /// events broadcast after they rejoined), or timeout.
  bool awaitQuiescence(std::chrono::milliseconds timeout);

  /// Diagnosis of the most recent awaitQuiescence() timeout ("" after a
  /// successful wait).
  [[nodiscard]] std::string lastQuiescenceReport() const;

  /// Signal and join all node threads. Idempotent.
  void stop();

  [[nodiscard]] metrics::TrackerReport report() const;
  [[nodiscard]] std::size_t fanoutUsed() const noexcept { return fanout_; }
  [[nodiscard]] std::uint32_t ttlUsed() const noexcept { return ttl_; }
  /// Datagrams that arrived but failed frame validation.
  [[nodiscard]] std::uint64_t framesRejected() const noexcept {
    return framesRejected_.load();
  }
  /// sendTo() calls the OS refused (e.g. full socket buffer). Previously
  /// swallowed; a real deployment alarms on this.
  [[nodiscard]] std::uint64_t sendFailures() const noexcept {
    return sendFailures_.load();
  }
  /// Null when the cluster has no fault plan.
  [[nodiscard]] const fault::FaultController* faultController() const noexcept {
    return faults_.get();
  }
  /// True while node `index` is inside a fault-injected crash window.
  [[nodiscard]] bool nodeDown(std::size_t index) const;

  [[nodiscard]] obs::Registry& metricsRegistry() noexcept { return registry_; }
  /// Prometheus text exposition of every node's protocol counters.
  [[nodiscard]] std::string prometheusSnapshot();

 private:
  /// A datagram held back by a delay-spike window, due at `due`.
  struct HeldDatagram {
    std::chrono::steady_clock::time_point due;
    std::uint16_t port = 0;
    std::vector<std::byte> frame;
  };

  struct NodeState {
    ProcessId id = 0;
    UdpSocket socket;
    std::unique_ptr<Process> process;
    std::thread thread;
    std::mutex broadcastMutex;
    std::vector<PayloadPtr> pendingBroadcasts;
    /// False while inside a crash window (node thread writes, others read).
    std::atomic<bool> up{true};
    std::uint32_t incarnation = 0;        // node-thread only
    std::vector<HeldDatagram> heldBack;   // node-thread only
  };

  void nodeLoop(NodeState& node);
  [[nodiscard]] std::unique_ptr<Process> makeProcess(ProcessId id,
                                                     std::uint32_t incarnation);
  void enterCrash(NodeState& node);
  void leaveCrash(NodeState& node);
  void sendFrame(NodeState& node, ProcessId target, const std::vector<std::byte>& frame);
  void flushHeldBack(NodeState& node);
  [[nodiscard]] std::vector<ProcessId> upNodes() const;
  [[nodiscard]] Timestamp ticksNow() const;

  UdpClusterOptions options_;
  std::size_t fanout_ = 0;
  std::uint32_t ttl_ = 0;
  std::chrono::steady_clock::time_point epoch_;

  util::Rng masterRng_;
  std::unique_ptr<fault::FaultController> faults_;
  std::vector<std::unique_ptr<NodeState>> nodes_;
  std::vector<std::uint16_t> ports_;  // ProcessId -> UDP port

  obs::Registry registry_;
  std::unique_ptr<obs::ScrapeLoop> scrape_;

  mutable std::mutex trackerMutex_;
  metrics::DeliveryTracker tracker_;
  metrics::QuiescenceLedger ledger_;  // under trackerMutex_
  std::unordered_map<ProcessId, metrics::ProcessLifetime> lifetimes_;  // under trackerMutex_
  std::string quiescenceReport_;      // under trackerMutex_
  std::atomic<std::uint64_t> requestedBroadcasts_{0};
  std::atomic<std::uint64_t> discardedBroadcasts_{0};
  std::atomic<std::uint64_t> framesRejected_{0};
  std::atomic<std::uint64_t> sendFailures_{0};

  std::atomic<bool> running_{false};
  std::atomic<bool> stopRequested_{false};
};

}  // namespace epto::runtime

// UdpCluster — EpTO over real UDP sockets on loopback (paper §8.5).
//
// The strongest "real system" configuration in this repository: every
// node owns a UDP socket and a thread; balls are serialized through the
// wire codec into datagrams; nothing but the OS network stack sits
// between processes. The node loop is single-threaded per node (receive
// with a deadline, then run the round), so the sans-io core again needs
// no locks.
//
// Overload hardening (DESIGN.md §10): balls larger than the MTU are
// fragmented (codec/fragment_codec.h) and reassembled per node with
// TTL/capacity-bounded partial state (runtime/reassembly.h); decoded
// balls pass through a bounded ingress queue that sheds oldest-first
// under flood (runtime/ingress_queue.h); transient send refusals are
// retried with jittered backoff (runtime/udp_transport.h); and a stall
// watchdog (runtime/stall_watchdog.h) force-drains a node that keeps
// missing its round deadline. Every shed, retry, truncation and
// recovery is counted and exported through epto_obs.
//
// Membership is a static port table exchanged at startup — a real
// deployment would gossip addresses through the PSS; the protocol logic
// is identical.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include <string>

#include <unordered_map>

#include "adapt/controller.h"
#include "core/ingress_guard.h"
#include "core/process.h"
#include "fault/fault_controller.h"
#include "fault/fault_plan.h"
#include "metrics/delivery_tracker.h"
#include "metrics/quiescence.h"
#include "obs/latency.h"
#include "obs/registry.h"
#include "obs/scrape.h"
#include "runtime/ingress_queue.h"
#include "runtime/reassembly.h"
#include "runtime/sharded_executor.h"
#include "runtime/stall_watchdog.h"
#include "runtime/udp_transport.h"
#include "util/mutex.h"
#include "util/rng.h"
#include "util/thread_annotations.h"

namespace epto::runtime {

/// How the cluster maps nodes onto OS threads.
enum class ExecutorMode : std::uint8_t {
  /// PR 3 model: one thread + one blocking receive loop per node, one
  /// syscall per datagram. Kept as the differential baseline —
  /// BM_RuntimeThroughput measures the sharded mode against it.
  ThreadPerNode,
  /// DESIGN.md §16 model: a fixed ShardedExecutor pool, each shard
  /// driving a contiguous slice of nodes off a timer wheel with
  /// recvmmsg/sendmmsg batched I/O. The default.
  Sharded,
};

struct UdpClusterOptions {
  std::size_t nodeCount = 6;
  std::chrono::microseconds roundPeriod{4000};
  double roundJitter = 0.05;
  ClockMode clockMode = ClockMode::Logical;
  double c = 2.0;
  std::optional<std::size_t> fanoutOverride;
  std::optional<std::uint32_t> ttlOverride;
  /// Scheduled fault injection; same schedule format and semantics as
  /// RuntimeOptions::faultPlan (timestamps in microseconds since
  /// start()). Crashed nodes stop receiving and sending; their socket
  /// stays bound, and the backlog is discarded when they rejoin with
  /// fresh state. Delay spikes are enforced by holding outgoing
  /// datagrams back at the sender. Burst-loss trials roll per datagram,
  /// i.e. at fragment granularity for fragmented balls. Must outlive
  /// the cluster.
  const fault::FaultPlan* faultPlan = nullptr;
  std::uint64_t seed = 42;
  /// Background metrics scrape; same semantics as RuntimeOptions.
  std::chrono::milliseconds scrapeInterval{0};
  std::string metricsOutPath;

  // --- transport hardening (all validated at construction) -------------
  /// Largest datagram the cluster emits; ball frames beyond it are
  /// fragmented. Also sizes the receive buffer, so an over-MTU datagram
  /// from a misconfigured peer is counted as truncated, not silently
  /// mis-parsed. In [codec::kMinFragmentMtu, kMaxUdpDatagramBytes].
  std::size_t mtuBytes = 1400;
  /// Decoded balls buffered per node before oldest-first shedding.
  std::size_t ingressCapacity = 1024;
  /// Balls handed to the protocol per loop iteration — bounds the time
  /// the node spends processing before it re-checks its round deadline.
  std::size_t ingressDrainBudget = 256;
  /// Datagrams pulled off the socket per loop iteration.
  std::size_t maxDatagramsPerPoll = 512;
  /// Partial (fragmented, incomplete) frames held per node.
  std::size_t reassemblyCapacity = 64;
  /// Rounds a partial frame may sit idle before eviction.
  std::uint32_t reassemblyTtlRounds = 8;
  /// Consecutive rounds late by more than a full period before the
  /// watchdog forces recovery (drain backlog, reset schedule). 0 = off.
  std::uint32_t watchdogMissedRounds = 3;
  /// Retry schedule for transient send refusals (EAGAIN/ENOBUFS).
  SendBackoffPolicy sendBackoff{};
  /// Emit version-2 wire frames carrying per-event lineage (hop, origin
  /// round, incarnation — codec/ball_codec.h). Default on; turn off to
  /// emulate a mixed fleet where some decoders only speak version 1.
  bool wireLineage = true;
  /// Let wire frames carry per-event QoS classes (codec kFlagQos). The
  /// flag byte is only emitted for balls containing a Fast event, so
  /// Safe-only traffic is wire-identical either way.
  bool wireQos = true;
  /// Speculative delivery (core/speculation.h): Fast-class broadcasts
  /// surface ahead of the committed frontier with confirm/revoke
  /// notifications; committed delivery is unaffected.
  bool speculation = false;
  double speculationThreshold = 0.9;
  std::size_t speculationWindow = 64;
  /// Online TTL/K feedback control (adapt/controller.h) per node, off
  /// the observed ball-arrival shortfall, within Lemma-safe bounds.
  bool adaptive = false;
  double adaptiveWorstCaseLoss = 0.15;
  double adaptiveInitialLoss = 0.0;
  /// Route every decoded ball through an IngressGuard before it reaches
  /// the ingress queue (core/ingress_guard.h): lineage sanity (hop <=
  /// ttl, ttl within the protocol TTL), plausible originRound, sources
  /// within the static membership, equivocation/incarnation filtering.
  /// A datagram that merely parsed is still attacker-controlled input;
  /// the guard is what makes its fields trustworthy.
  bool hardenIngress = true;
  /// Per-sender (UDP source port) balls admitted between round
  /// boundaries; 0 disables the rate cap. Off by default: a node
  /// catching up after a stall legitimately processes many rounds worth
  /// of backlog from each peer in one window, and the ingress queue
  /// already bounds total buffering.
  std::uint32_t ingressRateCap = 0;
  /// When non-empty, the flight recorder (obs/flight_recorder.h) is
  /// dumped to this JSONL file whenever the stall watchdog forces a
  /// recovery or a fault-plan crash takes a node down (and on demand via
  /// dumpFlightRecorder()).
  std::string flightDumpPath;

  // --- execution model (DESIGN.md §16) ---------------------------------
  ExecutorMode executor = ExecutorMode::Sharded;
  /// Worker shards in Sharded mode; 0 = hardware_concurrency (clamped to
  /// nodeCount). Ignored by ThreadPerNode.
  std::size_t shardCount = 0;
  /// Best-effort core pinning for shard threads (shard i -> core i).
  bool pinShards = false;
  /// Datagrams drained per recvmmsg() call in Sharded mode (the per-node
  /// maxDatagramsPerPoll budget still bounds a whole wakeup).
  std::size_t recvBatch = 32;
  /// Send-aggregator flush threshold: datagrams accumulated per node
  /// round before a sendmmsg() flush (the round end always flushes).
  std::size_t sendBatch = 64;
  /// Capacity of each shard's SPSC command mailbox (broadcast requests).
  std::size_t mailboxCapacity = 1024;
};

class UdpCluster {
 public:
  explicit UdpCluster(UdpClusterOptions options);
  ~UdpCluster();

  UdpCluster(const UdpCluster&) = delete;
  UdpCluster& operator=(const UdpCluster&) = delete;

  void start();

  /// Ask node `index` to broadcast before its next round (thread-safe).
  /// Fast-class broadcasts are eligible for speculative delivery (no-op
  /// unless options.speculation is on).
  void broadcast(std::size_t index, PayloadPtr payload = {},
                 QosClass qos = QosClass::Safe);

  /// Block until every broadcast has been delivered by every node that
  /// still owes it (crashed nodes owe nothing; restarted nodes only owe
  /// events broadcast after they rejoined), or timeout.
  bool awaitQuiescence(std::chrono::milliseconds timeout) EPTO_EXCLUDES(trackerMutex_);

  /// Diagnosis of the most recent awaitQuiescence() timeout ("" after a
  /// successful wait).
  [[nodiscard]] std::string lastQuiescenceReport() const EPTO_EXCLUDES(trackerMutex_);

  /// Signal and join all node threads. Idempotent.
  void stop();

  [[nodiscard]] metrics::TrackerReport report() const EPTO_EXCLUDES(trackerMutex_);
  [[nodiscard]] std::size_t fanoutUsed() const noexcept { return fanout_; }
  [[nodiscard]] std::uint32_t ttlUsed() const noexcept { return ttl_; }
  [[nodiscard]] ExecutorMode executorMode() const noexcept { return options_.executor; }
  /// Worker shards actually running (0 in ThreadPerNode mode).
  [[nodiscard]] std::size_t shardCountUsed() const noexcept {
    return executor_ != nullptr ? executor_->shardCount() : 0;
  }
  /// Broadcast commands refused by a full shard mailbox (each was
  /// retried until accepted; this counts the backpressure events).
  [[nodiscard]] std::uint64_t mailboxPostRejections() const noexcept {
    return executor_ != nullptr ? executor_->postRejections() : 0;
  }
  /// Datagrams that arrived but failed frame validation.
  [[nodiscard]] std::uint64_t framesRejected() const noexcept {
    return framesRejected_.load();
  }
  /// Datagrams the kernel truncated to the receive buffer (MSG_TRUNC).
  [[nodiscard]] std::uint64_t truncatedDatagrams() const noexcept {
    return truncatedDatagrams_.load();
  }
  /// Datagrams lost to the OS refusing the send: transient refusals that
  /// survived the whole backoff schedule, and hard refusals.
  [[nodiscard]] std::uint64_t sendFailures() const noexcept {
    return sendFailuresTransient_.load() + sendFailuresHard_.load();
  }
  [[nodiscard]] std::uint64_t sendFailuresTransient() const noexcept {
    return sendFailuresTransient_.load();
  }
  [[nodiscard]] std::uint64_t sendFailuresHard() const noexcept {
    return sendFailuresHard_.load();
  }
  /// Backoff sleeps taken for transient refusals (whether or not the
  /// retry eventually succeeded).
  [[nodiscard]] std::uint64_t sendRetries() const noexcept { return sendRetries_.load(); }
  /// Balls whose frame exceeded the MTU and was split into fragments.
  [[nodiscard]] std::uint64_t ballsFragmented() const noexcept {
    return ballsFragmented_.load();
  }
  [[nodiscard]] std::uint64_t fragmentsSent() const noexcept {
    return fragmentsSent_.load();
  }
  [[nodiscard]] std::uint64_t fragmentsReceived() const noexcept {
    return fragmentsReceived_.load();
  }
  /// Frames fully reassembled from fragments.
  [[nodiscard]] std::uint64_t ballsReassembled() const noexcept {
    return ballsReassembled_.load();
  }
  /// Partial frames evicted after sitting idle for the reassembly TTL.
  [[nodiscard]] std::uint64_t reassemblyExpired() const noexcept {
    return reassemblyExpired_.load();
  }
  /// Partial frames displaced by the reassembly capacity bound.
  [[nodiscard]] std::uint64_t reassemblyShed() const noexcept {
    return reassemblyShed_.load();
  }
  /// Balls shed oldest-first by a full ingress queue.
  [[nodiscard]] std::uint64_t ingressShed() const noexcept { return ingressShed_.load(); }
  /// Aggregate ingress-guard verdicts across all nodes (zeroes when
  /// hardenIngress is off). Published as
  /// `epto_ingress_rejected_total{cause=...}`.
  [[nodiscard]] core::IngressStats ingressGuardStats() const noexcept;
  /// Balls dropped whole by the ingress guard (lineage/origin_round/
  /// rate/unknown_source).
  [[nodiscard]] std::uint64_t ingressRejected() const noexcept {
    return ingressGuardStats().ballsRejected();
  }
  /// The loopback UDP port node `index` is bound to — where peers (and
  /// chaos tests injecting hostile frames) address it.
  [[nodiscard]] std::uint16_t nodePort(std::size_t index) const;
  /// Deepest any node's ingress queue has been — never exceeds
  /// UdpClusterOptions::ingressCapacity.
  [[nodiscard]] std::uint64_t ingressHighWater() const noexcept {
    return ingressHighWater_.load();
  }
  /// Forced recoveries by the stall watchdog.
  [[nodiscard]] std::uint64_t watchdogRecoveries() const noexcept {
    return watchdogRecoveries_.load();
  }
  /// Null when the cluster has no fault plan.
  [[nodiscard]] const fault::FaultController* faultController() const noexcept {
    return faults_.get();
  }
  /// True while node `index` is inside a fault-injected crash window.
  [[nodiscard]] bool nodeDown(std::size_t index) const;

  [[nodiscard]] obs::Registry& metricsRegistry() noexcept { return registry_; }
  /// Prometheus text exposition of every node's protocol counters.
  [[nodiscard]] std::string prometheusSnapshot();
  /// The cluster-wide latency decomposition sink (obs/latency.h); install
  /// hooks before start().
  [[nodiscard]] obs::LatencyRecorder& latencyRecorder() noexcept {
    return latencyRecorder_;
  }
  /// Dump the process-global flight recorder to `path` (JSONL, append),
  /// tagged with `reason`. Returns records written. Callable any time.
  std::size_t dumpFlightRecorder(const std::string& path,
                                 const std::string& reason = "manual");

 private:
  /// A datagram held back by a delay-spike window, due at `due`.
  struct HeldDatagram {
    std::chrono::steady_clock::time_point due;
    std::uint16_t port = 0;
    bool isFragment = false;
    std::vector<std::byte> frame;
  };

  struct PendingBroadcast {
    PayloadPtr payload;
    QosClass qos = QosClass::Safe;
  };

  struct NodeState {
    NodeState(std::size_t receiveBufferBytes, const ReassemblyOptions& reassembly,
              std::size_t ingressCapacity, std::uint32_t watchdogMissedRounds)
        : socket(receiveBufferBytes),
          reassembler(reassembly),
          ingress(ingressCapacity),
          watchdog(watchdogMissedRounds) {}

    ProcessId id = 0;
    UdpSocket socket;
    std::unique_ptr<Process> process;  ///< node-thread only.
    /// Feedback controller (node-thread only; null unless adaptive).
    std::unique_ptr<adapt::FeedbackController> controller;
    std::uint64_t lastBallsReceived = 0;  ///< node-thread only.
    std::thread thread;
    /// Leaf lock: never held together with trackerMutex_ (DESIGN.md §12).
    util::Mutex broadcastMutex;
    std::vector<PendingBroadcast> pendingBroadcasts EPTO_GUARDED_BY(broadcastMutex);
    /// False while inside a crash window (node thread writes, others read).
    std::atomic<bool> up{true};
    std::uint32_t incarnation = 0;        // node-thread only
    std::vector<HeldDatagram> heldBack;   // node-thread only
    Reassembler reassembler;              // node-thread only
    IngressQueue ingress;                 // node-thread only
    /// Null unless UdpClusterOptions::hardenIngress.
    std::unique_ptr<core::IngressGuard> guard;  // node-thread only
    StallWatchdog watchdog;               // node-thread only
    std::uint64_t roundCounter = 0;       // node-thread only
    std::uint32_t fragmentSeq = 0;        // node-thread only; ballId low bits
    /// Scheduling state, owned by whichever executor drives the node
    /// (its dedicated thread, or its owning shard — never both).
    util::Rng rng{0};
    std::chrono::steady_clock::time_point nextRound{};
    bool stallNoted = false;
    /// Last reassembly/ingress/watchdog figures mirrored into the
    /// cluster atomics (node-thread only; published once per round).
    ReassemblyStats publishedReassembly;
    std::uint64_t publishedIngressShed = 0;
    std::uint64_t publishedWatchdogRecoveries = 0;
    core::IngressStats publishedGuard;
  };

  /// Strategy for emitting one round's datagrams: the thread-per-node
  /// mode sends immediately (with interleaved drains every 32 sends);
  /// the sharded mode aggregates and flushes through sendmmsg.
  struct DatagramSink {
    virtual ~DatagramSink() = default;
    virtual void send(NodeState& node, std::uint16_t port, bool isFragment,
                      const std::vector<std::byte>& frame, util::Rng& rng) = 0;
    /// End of the round's send burst (queued frames die after this).
    virtual void flush(NodeState& node, util::Rng& rng) = 0;
  };
  class ImmediateSink;  // udp_cluster.cpp
  class BatchSink;      // udp_cluster.cpp

  void nodeLoop(NodeState& node);
  /// One shard's whole life: init owned nodes, then poll/ingest/round
  /// until stop (ShardedExecutor body).
  void shardLoop(ShardedExecutor::ShardContext& ctx);
  /// A node's wheel timer fired: fault gates, then the round, then
  /// re-arm.
  void serviceDueNode(std::size_t index, ShardedExecutor::ShardContext& ctx,
                      DatagramSink& sink);
  /// The round boundary body shared by both executor modes (broadcasts,
  /// onRound, fanout send via `sink`, controller feedback, metrics,
  /// watchdog). Returns true when the watchdog forced a recovery — the
  /// caller must re-anchor the schedule to now instead of advancing it.
  bool runNodeRound(NodeState& node, util::Rng& rng,
                    std::chrono::steady_clock::duration lateness, DatagramSink& sink);
  /// recvmmsg-drain one readable socket into the node's ingress queue,
  /// bounded by maxDatagramsPerPoll; observes the recv batch histogram.
  void batchIngest(NodeState& node, std::vector<UdpSocket::Datagram>& scratch);
  [[nodiscard]] std::chrono::microseconds jitteredPeriod(util::Rng& rng) const;
  [[nodiscard]] std::unique_ptr<Process> makeProcess(ProcessId id,
                                                     std::uint32_t incarnation);
  /// Fresh controller at the static tuning (null when adaptation is off).
  [[nodiscard]] std::unique_ptr<adapt::FeedbackController> makeController(
      ProcessId id) const;
  void enterCrash(NodeState& node) EPTO_EXCLUDES(trackerMutex_);
  void leaveCrash(NodeState& node) EPTO_EXCLUDES(trackerMutex_);
  void sendDatagram(NodeState& node, std::uint16_t port, bool isFragment,
                    const std::vector<std::byte>& frame, util::Rng& rng);
  void flushHeldBack(NodeState& node, util::Rng& rng);
  /// Route one received datagram: truncation check, fragment reassembly
  /// or direct decode, then ingress admission.
  void ingestDatagram(NodeState& node, const UdpSocket::Datagram& datagram);
  void enqueueBallFrame(NodeState& node, std::span<const std::byte> frame,
                        std::uint16_t fromPort);
  /// Mirror the node's local overload counters into the cluster atomics.
  void publishNodeCounters(NodeState& node);
  /// Copy the cluster-wide transport atomics into the registry.
  void publishTransportMetrics();
  [[nodiscard]] std::vector<ProcessId> upNodes() const;
  [[nodiscard]] Timestamp ticksNow() const;

  UdpClusterOptions options_;
  std::size_t fanout_ = 0;
  std::uint32_t ttl_ = 0;
  std::chrono::steady_clock::time_point epoch_;

  util::Rng masterRng_;
  std::unique_ptr<fault::FaultController> faults_;
  std::vector<std::unique_ptr<NodeState>> nodes_;
  std::vector<std::uint16_t> ports_;  // ProcessId -> UDP port
  /// Null in ThreadPerNode mode.
  std::unique_ptr<ShardedExecutor> executor_;

  obs::Registry registry_;
  /// Batched-I/O instruments, registered once at construction so hot
  /// paths never touch the registry lock (null histograms are never
  /// observed — ThreadPerNode mode has no batches).
  obs::Histogram* recvBatchSize_ = nullptr;
  obs::Histogram* sendBatchSize_ = nullptr;
  /// Constructed after registry_ (it registers its histograms there).
  obs::LatencyRecorder latencyRecorder_{registry_};
  std::unique_ptr<obs::ScrapeLoop> scrape_;

  /// Correctness-accounting capability (tracker + ledger + lifetimes +
  /// quiescence diagnosis). Leaf lock — nothing else is ever acquired
  /// while it is held.
  mutable util::Mutex trackerMutex_;
  metrics::DeliveryTracker tracker_ EPTO_GUARDED_BY(trackerMutex_);
  metrics::QuiescenceLedger ledger_ EPTO_GUARDED_BY(trackerMutex_);
  std::unordered_map<ProcessId, metrics::ProcessLifetime> lifetimes_
      EPTO_GUARDED_BY(trackerMutex_);
  std::string quiescenceReport_ EPTO_GUARDED_BY(trackerMutex_);
  std::atomic<std::uint64_t> requestedBroadcasts_{0};
  std::atomic<std::uint64_t> discardedBroadcasts_{0};
  std::atomic<std::uint64_t> framesRejected_{0};
  std::atomic<std::uint64_t> truncatedDatagrams_{0};
  std::atomic<std::uint64_t> sendFailuresTransient_{0};
  std::atomic<std::uint64_t> sendFailuresHard_{0};
  std::atomic<std::uint64_t> sendRetries_{0};
  std::atomic<std::uint64_t> ballsFragmented_{0};
  std::atomic<std::uint64_t> fragmentsSent_{0};
  std::atomic<std::uint64_t> fragmentsReceived_{0};
  std::atomic<std::uint64_t> ballsReassembled_{0};
  std::atomic<std::uint64_t> reassemblyExpired_{0};
  std::atomic<std::uint64_t> reassemblyShed_{0};
  std::atomic<std::uint64_t> ingressShed_{0};
  std::atomic<std::uint64_t> ingressHighWater_{0};
  std::atomic<std::uint64_t> watchdogRecoveries_{0};
  std::atomic<std::uint64_t> guardInspected_{0};
  std::atomic<std::uint64_t> guardRejectedLineage_{0};
  std::atomic<std::uint64_t> guardRejectedOriginRound_{0};
  std::atomic<std::uint64_t> guardRejectedRate_{0};
  std::atomic<std::uint64_t> guardRejectedUnknownSource_{0};
  std::atomic<std::uint64_t> guardFilteredEquivocation_{0};
  std::atomic<std::uint64_t> guardFilteredIncarnation_{0};
  std::atomic<std::uint64_t> guardFingerprintRotations_{0};

  std::atomic<bool> running_{false};
  std::atomic<bool> stopRequested_{false};
};

}  // namespace epto::runtime

// Reassembly buffer for fragmented ball frames (codec/fragment_codec.h).
//
// One Reassembler lives per node, owned and driven by the node's own
// thread (single-threaded, like the sans-io core). Fragments accumulate
// per ballId until the frame completes; partial frames from lossy or
// malicious peers are evicted on two independent bounds so the buffer
// can never leak memory:
//
//   * a TTL in rounds — a partial untouched for `ttlRounds` protocol
//     rounds is discarded (its remaining fragments were lost; EpTO's
//     dissemination redundancy re-delivers the events through other
//     balls);
//   * a capacity in partial frames — admitting a new ballId beyond
//     `maxPartialFrames` evicts the stalest partial first, so a peer
//     spraying fragments of never-completed frames displaces only
//     itself.
//
// Per-fragment validation (CRC, header consistency) already happened at
// decode; the reassembler additionally rejects fragments that contradict
// the first-seen geometry of their ballId (count/totalLength mismatch)
// and frames whose declared size exceeds `maxFrameBytes`.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "codec/fragment_codec.h"

namespace epto::runtime {

struct ReassemblyOptions {
  /// Partial frames held concurrently; admitting one more evicts the
  /// stalest. Must be positive.
  std::size_t maxPartialFrames = 64;
  /// Rounds a partial may sit untouched before evictExpired() drops it.
  /// Must be positive.
  std::uint32_t ttlRounds = 8;
  /// Largest reassembled frame accepted; fragments declaring more are
  /// rejected before any allocation. Must be positive.
  std::size_t maxFrameBytes = std::size_t{8} << 20;
};

struct ReassemblyStats {
  std::uint64_t fragmentsAccepted = 0;   ///< fragments merged into a partial.
  std::uint64_t duplicateFragments = 0;  ///< same (ballId, index) seen again.
  std::uint64_t mismatchedFragments = 0; ///< geometry contradicts first sight.
  std::uint64_t oversizedRejected = 0;   ///< declared frame > maxFrameBytes.
  std::uint64_t framesCompleted = 0;     ///< fully reassembled frames returned.
  std::uint64_t partialsExpired = 0;     ///< TTL evictions.
  std::uint64_t partialsShed = 0;        ///< capacity evictions.
};

class Reassembler {
 public:
  explicit Reassembler(ReassemblyOptions options);

  /// Merge one decoded fragment observed during protocol round `round`.
  /// Returns the reassembled ball frame when this fragment completes it
  /// (the entry is then released); nullopt otherwise.
  std::optional<std::vector<std::byte>> accept(const codec::FragmentFrame& fragment,
                                               std::uint64_t round);

  /// Drop partials untouched since before `round - ttlRounds`. Call once
  /// per protocol round.
  void evictExpired(std::uint64_t round);

  /// Drop every partial (watchdog recovery / node restart).
  void clear();

  [[nodiscard]] std::size_t partialCount() const noexcept { return partials_.size(); }
  /// Total bytes currently reserved by partial frames — the quantity the
  /// eviction bounds keep finite.
  [[nodiscard]] std::size_t bufferedBytes() const noexcept { return bufferedBytes_; }
  [[nodiscard]] const ReassemblyStats& stats() const noexcept { return stats_; }

 private:
  struct Partial {
    std::uint32_t count = 0;
    std::uint64_t totalLength = 0;
    std::uint32_t receivedCount = 0;
    std::uint64_t receivedBytes = 0;
    std::uint64_t lastTouchRound = 0;
    std::vector<bool> seen;        // per fragment index
    std::vector<std::byte> bytes;  // sized totalLength up front
  };

  void erase(std::uint64_t ballId);
  void shedStalest();

  ReassemblyOptions options_;
  std::unordered_map<std::uint64_t, Partial> partials_;
  std::size_t bufferedBytes_ = 0;
  ReassemblyStats stats_;
};

}  // namespace epto::runtime

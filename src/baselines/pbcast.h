// Pbcast-style probabilistic total order — modeled on Hayden & Birman's
// probabilistic broadcast (Cornell TR96-1606), the paper's reference [16]
// and the closest prior art to EpTO (§7: "like EpTO it waits for messages
// to become stable before delivering them. However, unlike EpTO, it is
// based on a fully synchronous model [and] the network is static").
//
// The protocol: processes advance through numbered, globally synchronized
// rounds. A broadcast is stamped with its origin round; every holder
// gossips it to `fanout` random peers for `relayRounds` rounds; at round
// r every process deterministically delivers the batch stamped r -
// stabilityRounds, ordered by (origin round, source, sequence). There are
// no acknowledgments and no aging: a copy arriving after its delivery
// round is USELESS and dropped — correctness leans entirely on the
// synchronized-rounds assumption.
//
// That assumption is the point of the comparison: driven by per-process
// local round counters (all a real system has), Pbcast silently loses
// events as soon as counters drift apart, while EpTO's ttl-based
// stability does not care whose round it is. bench/ablation_pbcast.cpp
// measures exactly this.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/types.h"

namespace epto::baselines {

struct PbcastStats {
  std::uint64_t broadcasts = 0;
  std::uint64_t delivered = 0;
  std::uint64_t lateDrops = 0;   ///< copies that arrived after their batch shipped.
  std::uint64_t duplicates = 0;
  std::uint64_t ballsSent = 0;
};

class PbcastProcess {
 public:
  struct Options {
    std::size_t fanout = 0;
    /// Rounds each message keeps being gossiped.
    std::uint32_t relayRounds = 0;
    /// Rounds between a message's origin and its delivery batch.
    std::uint32_t stabilityRounds = 0;
  };

  struct RoundOutput {
    BallPtr ball;
    std::vector<ProcessId> targets;
  };

  PbcastProcess(ProcessId self, Options options, PeerSampler& sampler, DeliverFn deliver);

  /// Stamp with the local round counter and queue for gossip. (Event.ts
  /// carries the origin round so the total order key is the Pbcast order.)
  Event broadcast(PayloadPtr payload);

  /// Gossip receive callback.
  void onGossip(const Ball& ball);

  /// Local round tick: advance the counter, deliver the due batch, emit
  /// this round's gossip.
  RoundOutput onRound();

  [[nodiscard]] std::uint64_t currentRound() const noexcept { return currentRound_; }
  [[nodiscard]] const PbcastStats& stats() const noexcept { return stats_; }

 private:
  void accept(const Event& event);
  void deliverDueBatches();

  ProcessId self_;
  Options options_;
  PeerSampler& sampler_;
  DeliverFn deliver_;

  std::uint64_t currentRound_ = 0;
  std::uint32_t nextSequence_ = 0;
  /// Messages still being gossiped, by id; Event.ttl counts relay rounds.
  std::unordered_map<EventId, Event, EventIdHash> relaying_;
  /// Held messages awaiting their delivery round, keyed by origin round.
  std::map<std::uint64_t, std::vector<Event>> pendingBatches_;
  std::unordered_set<EventId, EventIdHash> seen_;
  PbcastStats stats_;
};

}  // namespace epto::baselines

#include "baselines/pbcast.h"

#include <algorithm>
#include <memory>

#include "util/ensure.h"

namespace epto::baselines {

PbcastProcess::PbcastProcess(ProcessId self, Options options, PeerSampler& sampler,
                             DeliverFn deliver)
    : self_(self), options_(options), sampler_(sampler), deliver_(std::move(deliver)) {
  EPTO_ENSURE_MSG(options_.fanout >= 1, "fanout must be at least 1");
  EPTO_ENSURE_MSG(options_.relayRounds >= 1, "relayRounds must be at least 1");
  EPTO_ENSURE_MSG(options_.stabilityRounds >= options_.relayRounds,
                  "stability must cover the relay phase");
  EPTO_ENSURE_MSG(deliver_ != nullptr, "pbcast needs a delivery callback");
}

Event PbcastProcess::broadcast(PayloadPtr payload) {
  Event event;
  event.id = EventId{self_, nextSequence_++};
  event.ts = currentRound_;  // origin round IS the order timestamp
  event.ttl = 0;
  event.payload = std::move(payload);
  ++stats_.broadcasts;
  accept(event);
  return event;
}

void PbcastProcess::onGossip(const Ball& ball) {
  for (const Event& event : ball) accept(event);
}

void PbcastProcess::accept(const Event& event) {
  if (seen_.contains(event.id)) {
    ++stats_.duplicates;
    return;
  }
  // Synchronous-model fragility: a copy stamped for an already-shipped
  // batch cannot be delivered without breaking the deterministic batch
  // order — Pbcast just drops it (no recovery sub-protocol here; the
  // original bolts on anti-entropy in later work [2]).
  if (currentRound_ >= options_.stabilityRounds &&
      event.ts <= currentRound_ - options_.stabilityRounds) {
    ++stats_.lateDrops;
    return;
  }
  seen_.insert(event.id);
  pendingBatches_[event.ts].push_back(event);
  if (event.ttl < options_.relayRounds) relaying_.emplace(event.id, event);
}

PbcastProcess::RoundOutput PbcastProcess::onRound() {
  ++currentRound_;
  deliverDueBatches();

  RoundOutput out;
  if (relaying_.empty()) return out;
  auto ball = std::make_shared<Ball>();
  ball->reserve(relaying_.size());
  for (auto it = relaying_.begin(); it != relaying_.end();) {
    ++it->second.ttl;
    ball->push_back(it->second);
    it = it->second.ttl >= options_.relayRounds ? relaying_.erase(it) : ++it;
  }
  std::sort(ball->begin(), ball->end(),
            [](const Event& a, const Event& b) { return a.id < b.id; });
  out.targets = sampler_.samplePeers(options_.fanout);
  out.ball = std::move(ball);
  stats_.ballsSent += out.targets.size();
  return out;
}

void PbcastProcess::deliverDueBatches() {
  if (currentRound_ < options_.stabilityRounds) return;
  const std::uint64_t dueThrough = currentRound_ - options_.stabilityRounds;
  for (auto it = pendingBatches_.begin();
       it != pendingBatches_.end() && it->first <= dueThrough;) {
    std::sort(it->second.begin(), it->second.end(),
              [](const Event& a, const Event& b) { return a.orderKey() < b.orderKey(); });
    for (const Event& event : it->second) {
      ++stats_.delivered;
      deliver_(event, DeliveryTag::Ordered);
    }
    it = pendingBatches_.erase(it);
  }
}

}  // namespace epto::baselines

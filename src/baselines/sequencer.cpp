#include "baselines/sequencer.h"

#include <algorithm>

#include "util/ensure.h"

namespace epto::baselines {

SequencerProcess::SequencerProcess(ProcessId self, ProcessId sequencerId,
                                   std::vector<ProcessId> members, DeliverFn deliver)
    : self_(self),
      sequencerId_(sequencerId),
      members_(std::move(members)),
      deliver_(std::move(deliver)) {
  EPTO_ENSURE_MSG(deliver_ != nullptr, "sequencer baseline needs a delivery callback");
  EPTO_ENSURE_MSG(std::find(members_.begin(), members_.end(), sequencerId_) != members_.end(),
                  "sequencer must be a member");
}

std::vector<SequencerProcess::Outgoing> SequencerProcess::broadcast(PayloadPtr payload) {
  ++stats_.broadcasts;
  Event event;
  event.id = EventId{self_, nextEventSequence_++};
  event.ts = 0;  // ordering comes from the stamp, not a clock
  event.payload = std::move(payload);

  if (isSequencer()) {
    return stampAndFanOut(event);
  }
  std::vector<Outgoing> out;
  Outgoing submit;
  submit.to = sequencerId_;
  submit.submit = SubmitMessage{std::move(event)};
  out.push_back(std::move(submit));
  ++stats_.unicastsSent;
  return out;
}

std::vector<SequencerProcess::Outgoing> SequencerProcess::onSubmit(
    const SubmitMessage& message) {
  EPTO_ENSURE_MSG(isSequencer(), "only the sequencer handles submissions");
  return stampAndFanOut(message.event);
}

std::vector<SequencerProcess::Outgoing> SequencerProcess::stampAndFanOut(const Event& event) {
  const std::uint64_t sequence = nextStamp_++;
  ++stats_.stamped;

  std::vector<Outgoing> out;
  out.reserve(members_.size() - 1);
  for (const ProcessId member : members_) {
    if (member == self_) continue;
    Outgoing o;
    o.to = member;
    o.stamped = StampedMessage{sequence, event};
    out.push_back(std::move(o));
    ++stats_.unicastsSent;
  }
  // The sequencer delivers locally through the same contiguity gate.
  onStamped(StampedMessage{sequence, event});
  return out;
}

void SequencerProcess::onStamped(const StampedMessage& message) {
  if (message.sequence < nextToDeliver_) return;  // stale duplicate
  pending_.emplace(message.sequence, message.event);
  deliverReady();
  stats_.stalled = std::max<std::uint64_t>(stats_.stalled, pending_.size());
}

void SequencerProcess::deliverReady() {
  // Contiguous-prefix delivery: one lost stamp blocks everything after
  // it — deliberately so, to expose the baseline's fragility under loss.
  for (auto it = pending_.begin();
       it != pending_.end() && it->first == nextToDeliver_;) {
    deliver_(it->second, DeliveryTag::Ordered);
    ++stats_.delivered;
    ++nextToDeliver_;
    it = pending_.erase(it);
  }
}

}  // namespace epto::baselines

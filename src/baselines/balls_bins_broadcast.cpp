#include "baselines/balls_bins_broadcast.h"

#include <algorithm>
#include <memory>

#include "util/ensure.h"

namespace epto::baselines {

BallsBinsBroadcast::BallsBinsBroadcast(ProcessId self, Options options, PeerSampler& sampler,
                                       DeliverFn deliver)
    : self_(self), options_(options), sampler_(sampler), deliver_(std::move(deliver)) {
  EPTO_ENSURE_MSG(options_.fanout >= 1, "fanout must be at least 1");
  EPTO_ENSURE_MSG(options_.ttl >= 1, "TTL must be at least 1");
  EPTO_ENSURE_MSG(deliver_ != nullptr, "baseline needs a delivery callback");
}

void BallsBinsBroadcast::deliverOnce(const Event& event) {
  if (!seen_.insert(event.id).second) {
    ++stats_.duplicatesIgnored;
    return;
  }
  ++stats_.delivered;
  deliver_(event, DeliveryTag::Ordered);
}

Event BallsBinsBroadcast::broadcast(PayloadPtr payload) {
  Event event;
  event.ts = 0;  // no clock: the baseline has no ordering semantics
  event.ttl = 0;
  event.id = EventId{self_, nextSequence_++};
  event.payload = std::move(payload);
  ++stats_.broadcasts;
  deliverOnce(event);
  nextBall_.insert_or_assign(event.id, event);
  return event;
}

void BallsBinsBroadcast::onBall(const Ball& ball) {
  for (const Event& event : ball) {
    // Delivery happens on any sighting — even a copy at the end of its
    // relay life still infects this process.
    deliverOnce(event);
    if (event.ttl < options_.ttl) {
      auto [it, inserted] = nextBall_.try_emplace(event.id, event);
      if (!inserted && it->second.ttl < event.ttl) it->second.ttl = event.ttl;
    }
  }
}

BallsBinsBroadcast::RoundOutput BallsBinsBroadcast::onRound() {
  RoundOutput out;
  if (nextBall_.empty()) return out;

  auto ball = std::make_shared<Ball>();
  ball->reserve(nextBall_.size());
  for (auto& [id, event] : nextBall_) {
    ++event.ttl;
    ball->push_back(event);
  }
  std::sort(ball->begin(), ball->end(),
            [](const Event& a, const Event& b) { return a.id < b.id; });

  out.targets = sampler_.samplePeers(options_.fanout);
  out.ball = std::move(ball);
  stats_.ballsSent += out.targets.size();
  nextBall_.clear();
  return out;
}

}  // namespace epto::baselines

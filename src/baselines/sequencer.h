// Fixed-sequencer deterministic total order — the classical centralized
// baseline EpTO's introduction argues against.
//
// One distinguished process (the sequencer) stamps every event with a
// global sequence number and unicasts the stamped event to every member;
// receivers deliver in contiguous sequence order. This gives deterministic
// total order and agreement on a reliable network, but (a) the sequencer
// transmits O(n) messages per event — the scalability wall — and (b) a
// single lost stamped message stalls the receiver's delivery forever
// (real deployments bolt on retransmission sub-protocols; EpTO needs
// none, paper §1.1). The ablation bench contrasts both effects.
//
// Sans-io, same driving contract as the EpTO components.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/types.h"

namespace epto::baselines {

/// A client's submission travelling to the sequencer.
struct SubmitMessage {
  Event event;
};

/// A stamped event travelling from the sequencer to a member.
struct StampedMessage {
  std::uint64_t sequence = 0;
  Event event;
};

struct SequencerStats {
  std::uint64_t broadcasts = 0;
  std::uint64_t stamped = 0;     ///< events ordered (sequencer only).
  std::uint64_t delivered = 0;
  std::uint64_t unicastsSent = 0;
  std::uint64_t stalled = 0;     ///< deliveries blocked behind a gap (high-water).
};

class SequencerProcess {
 public:
  /// `members` is the full static membership (the centralized baseline
  /// has no PSS — it needs to know everyone, another scalability cost).
  SequencerProcess(ProcessId self, ProcessId sequencerId, std::vector<ProcessId> members,
                   DeliverFn deliver);

  struct Outgoing {
    ProcessId to = 0;
    std::optional<SubmitMessage> submit;
    std::optional<StampedMessage> stamped;
  };

  /// Application broadcast: returns the unicast(s) to transmit. A
  /// non-sequencer emits one submit; the sequencer stamps locally and
  /// emits n-1 stamped unicasts.
  [[nodiscard]] std::vector<Outgoing> broadcast(PayloadPtr payload);

  /// Sequencer-side: stamp a submission, fan out to all members.
  [[nodiscard]] std::vector<Outgoing> onSubmit(const SubmitMessage& message);

  /// Member-side: buffer and deliver in contiguous sequence order.
  void onStamped(const StampedMessage& message);

  [[nodiscard]] bool isSequencer() const noexcept { return self_ == sequencerId_; }
  [[nodiscard]] const SequencerStats& stats() const noexcept { return stats_; }
  /// Next sequence number this member is waiting for.
  [[nodiscard]] std::uint64_t expectedSequence() const noexcept { return nextToDeliver_; }
  /// Event sequence number the next broadcast() will use. Lets a harness
  /// pre-register the event id before broadcast() delivers it locally.
  [[nodiscard]] std::uint32_t nextEventSequence() const noexcept { return nextEventSequence_; }

 private:
  [[nodiscard]] std::vector<Outgoing> stampAndFanOut(const Event& event);
  void deliverReady();

  ProcessId self_;
  ProcessId sequencerId_;
  std::vector<ProcessId> members_;
  DeliverFn deliver_;

  std::uint64_t nextStamp_ = 0;      ///< sequencer: next sequence to assign.
  std::uint64_t nextToDeliver_ = 0;  ///< member: delivery frontier.
  std::map<std::uint64_t, Event> pending_;  ///< stamped but undeliverable yet.
  std::uint32_t nextEventSequence_ = 0;
  SequencerStats stats_;
};

}  // namespace epto::baselines

// Reliable (unordered) balls-and-bins broadcast — the baseline of Fig. 6.
//
// This is EpTO's dissemination component (paper Alg. 1) with the ordering
// component removed: an event is delivered to the application the first
// time any copy of it is received (or locally broadcast), which measures
// "the time required for an event to infect all processes" (§6). The gap
// between this baseline's delay CDF and EpTO's is the price of total
// order.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "core/types.h"

namespace epto::baselines {

struct BallsBinsStats {
  std::uint64_t broadcasts = 0;
  std::uint64_t delivered = 0;
  std::uint64_t duplicatesIgnored = 0;
  std::uint64_t ballsSent = 0;
};

class BallsBinsBroadcast {
 public:
  struct Options {
    std::size_t fanout = 0;
    std::uint32_t ttl = 0;
  };

  struct RoundOutput {
    BallPtr ball;
    std::vector<ProcessId> targets;
  };

  BallsBinsBroadcast(ProcessId self, Options options, PeerSampler& sampler,
                     DeliverFn deliver);

  /// Broadcast and immediately deliver locally (first sight).
  /// Returns the created event.
  Event broadcast(PayloadPtr payload);

  /// Deliver every first-seen event; relay copies with ttl < TTL.
  void onBall(const Ball& ball);

  /// Relay task; same shape as the EpTO round but with no ordering step.
  RoundOutput onRound();

  [[nodiscard]] const BallsBinsStats& stats() const noexcept { return stats_; }

  /// Sequence number the next broadcast() will use. Lets a harness
  /// pre-register the event id before broadcast() delivers it locally.
  [[nodiscard]] std::uint32_t nextSequence() const noexcept { return nextSequence_; }

 private:
  void deliverOnce(const Event& event);

  ProcessId self_;
  Options options_;
  PeerSampler& sampler_;
  DeliverFn deliver_;

  std::unordered_map<EventId, Event, EventIdHash> nextBall_;
  /// Events already delivered. Unbounded, which is fine for bounded
  /// experiment runs; a production deployment would prune below a
  /// TTL-derived horizon exactly as the EpTO ordering component does.
  std::unordered_set<EventId, EventIdHash> seen_;
  std::uint32_t nextSequence_ = 0;
  BallsBinsStats stats_;
};

}  // namespace epto::baselines

// Small-buffer move-only callable — the simulator's scheduling entry.
//
// std::function heap-allocates any closure beyond its tiny (16-byte on
// libstdc++) inline buffer, which puts one malloc/free on every scheduled
// simulator action — the dominant allocation of a discrete-event run (the
// network's in-flight closure captures a whole NetMessage variant). This
// type stores closures up to `Capacity` bytes inline inside the queue
// entry itself; larger or throwing-move closures transparently fall back
// to a single heap cell so correctness never depends on the capacity
// guess. Move-only (entries move through the binary heap; closures never
// need to be copied) and deliberately minimal: no target_type, no
// allocator, void() signature only.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace epto::util {

template <std::size_t Capacity>
class InplaceFn {
 public:
  InplaceFn() noexcept = default;
  InplaceFn(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  /// Wrap any callable f with signature void(). Stored inline when it
  /// fits and is nothrow-movable; otherwise in one heap cell.
  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InplaceFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  InplaceFn(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (sizeof(D) <= Capacity && alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buffer_)) D(std::forward<F>(f));
      vtable_ = &inlineVTable<D>;
    } else {
      ::new (static_cast<void*>(buffer_)) D*(new D(std::forward<F>(f)));
      vtable_ = &heapVTable<D>;
    }
  }

  InplaceFn(InplaceFn&& other) noexcept {
    if (other.vtable_ != nullptr) {
      other.vtable_->relocate(other.buffer_, buffer_);
      vtable_ = other.vtable_;
      other.vtable_ = nullptr;
    }
  }

  InplaceFn& operator=(InplaceFn&& other) noexcept {
    if (this != &other) {
      reset();
      if (other.vtable_ != nullptr) {
        other.vtable_->relocate(other.buffer_, buffer_);
        vtable_ = other.vtable_;
        other.vtable_ = nullptr;
      }
    }
    return *this;
  }

  InplaceFn(const InplaceFn&) = delete;
  InplaceFn& operator=(const InplaceFn&) = delete;

  ~InplaceFn() { reset(); }

  void operator()() { vtable_->invoke(buffer_); }

  [[nodiscard]] explicit operator bool() const noexcept { return vtable_ != nullptr; }
  [[nodiscard]] friend bool operator==(const InplaceFn& fn, std::nullptr_t) noexcept {
    return fn.vtable_ == nullptr;
  }
  [[nodiscard]] friend bool operator!=(const InplaceFn& fn, std::nullptr_t) noexcept {
    return fn.vtable_ != nullptr;
  }

  /// True when the wrapped callable lives inline (test/telemetry hook).
  [[nodiscard]] bool isInline() const noexcept {
    return vtable_ != nullptr && vtable_->inlineStorage;
  }

 private:
  struct VTable {
    void (*invoke)(std::byte*);
    /// Move-construct into dst from src, then destroy src.
    void (*relocate)(std::byte*, std::byte*) noexcept;
    void (*destroy)(std::byte*) noexcept;
    bool inlineStorage;
  };

  template <typename D>
  static constexpr VTable inlineVTable{
      [](std::byte* buf) { (*std::launder(reinterpret_cast<D*>(buf)))(); },
      [](std::byte* src, std::byte* dst) noexcept {
        D* from = std::launder(reinterpret_cast<D*>(src));
        ::new (static_cast<void*>(dst)) D(std::move(*from));
        from->~D();
      },
      [](std::byte* buf) noexcept { std::launder(reinterpret_cast<D*>(buf))->~D(); },
      true,
  };

  template <typename D>
  static constexpr VTable heapVTable{
      [](std::byte* buf) { (**std::launder(reinterpret_cast<D**>(buf)))(); },
      [](std::byte* src, std::byte* dst) noexcept {
        D** from = std::launder(reinterpret_cast<D**>(src));
        ::new (static_cast<void*>(dst)) D*(*from);
        // The pointer moved; nothing to destroy at the source.
      },
      [](std::byte* buf) noexcept { delete *std::launder(reinterpret_cast<D**>(buf)); },
      false,
  };

  void reset() noexcept {
    if (vtable_ != nullptr) {
      vtable_->destroy(buffer_);
      vtable_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte buffer_[Capacity];
  const VTable* vtable_ = nullptr;
};

}  // namespace epto::util

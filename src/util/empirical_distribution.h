// Empirical (piecewise-linear) distributions sampled by inverse transform.
//
// The EpTO evaluation (paper §6, Fig. 5) draws end-to-end latencies from a
// sample measured on 226 geographically dispersed PlanetLab nodes. That raw
// sample is not published, so this module provides:
//   * EmpiricalDistribution — a general piecewise-linear CDF defined by
//     (value, cumulative-probability) knots, sampled via inverse transform;
//   * planetLabLatency()   — a synthetic instance whose knots were fitted to
//     the statistics the paper does publish (mean ≈ 157, σ ≈ 119, p5 = 15,
//     p50 = 125, p95 = 366 simulator ticks, worst case ≈ 6× the δ = 125
//     round duration).
// See DESIGN.md §4 for the substitution rationale.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <vector>

#include "util/rng.h"

namespace epto::util {

/// A continuous distribution described by a piecewise-linear CDF.
///
/// Knots must have strictly increasing values and non-decreasing cumulative
/// probabilities; the first knot's probability is treated as the CDF at the
/// left edge and the final knot must have cumulative probability 1.0.
class EmpiricalDistribution {
 public:
  struct Knot {
    double value = 0.0;
    double cumulativeProbability = 0.0;
  };

  EmpiricalDistribution(std::initializer_list<Knot> knots)
      : EmpiricalDistribution(std::vector<Knot>(knots)) {}
  explicit EmpiricalDistribution(std::vector<Knot> knots);

  /// Inverse-transform sample: quantile(u) for u ~ U[0,1).
  [[nodiscard]] double sample(Rng& rng) const { return quantile(rng.uniform01()); }

  /// Sample rounded to a non-negative integer tick.
  [[nodiscard]] std::uint64_t sampleTicks(Rng& rng) const;

  /// The value below which a fraction p of the mass lies (0 <= p <= 1).
  [[nodiscard]] double quantile(double p) const;

  /// CDF evaluated at v (linear interpolation between knots).
  [[nodiscard]] double cdf(double v) const;

  /// Analytic mean of the piecewise-linear distribution.
  [[nodiscard]] double mean() const;

  /// Analytic standard deviation of the piecewise-linear distribution.
  [[nodiscard]] double stddev() const;

  [[nodiscard]] double minValue() const { return knots_.front().value; }
  [[nodiscard]] double maxValue() const { return knots_.back().value; }
  [[nodiscard]] const std::vector<Knot>& knots() const { return knots_; }

 private:
  [[nodiscard]] double rawMoment(int order) const;

  std::vector<Knot> knots_;
};

/// Synthetic stand-in for the paper's PlanetLab latency sample (Fig. 5),
/// in simulator ticks. Matches the published mean/σ/percentiles.
const EmpiricalDistribution& planetLabLatency();

/// Degenerate distribution: every sample equals `value`. Useful for tests
/// and for the idealized-synchrony analysis scenarios of paper §4.
EmpiricalDistribution constantDistribution(double value);

/// Uniform distribution on [lo, hi].
EmpiricalDistribution uniformDistribution(double lo, double hi);

}  // namespace epto::util

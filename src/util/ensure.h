// Lightweight contract checking for the EpTO library.
//
// EPTO_ENSURE is used for preconditions and invariants that guard the public
// API surface: violations indicate a caller bug or a broken internal
// invariant, so they throw (rather than abort) to keep the library usable
// inside long-lived processes and to make violations testable.
#pragma once

#include <stdexcept>
#include <string>

namespace epto::util {

/// Thrown when a contract annotated with EPTO_ENSURE is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] inline void raiseContractViolation(const char* expr, const char* file, int line,
                                                const char* msg) {
  throw ContractViolation(std::string("contract violation: ") + expr + " at " + file + ":" +
                          std::to_string(line) + (msg != nullptr ? std::string(": ") + msg : ""));
}

}  // namespace epto::util

#define EPTO_ENSURE(expr)                                                    \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::epto::util::raiseContractViolation(#expr, __FILE__, __LINE__, nullptr); \
    }                                                                        \
  } while (false)

#define EPTO_ENSURE_MSG(expr, msg)                                          \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::epto::util::raiseContractViolation(#expr, __FILE__, __LINE__, msg); \
    }                                                                       \
  } while (false)

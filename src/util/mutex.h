// Annotated lock primitives — the capability layer the thread-safety
// analysis hangs off.
//
// libstdc++'s std::mutex / std::scoped_lock carry no Clang capability
// attributes, so EPTO_GUARDED_BY(member) against a raw std::mutex makes
// the whole analysis vacuous (and trips -Wthread-safety-attributes).
// util::Mutex wraps std::mutex with the capability attribute and
// util::MutexLock / util::CondVarLock are the scoped acquisitions the
// analysis understands. Every lock in the concurrent surface (obs,
// fault, runtime, workload) is one of these; std::mutex must not appear
// outside this file (enforced by tools/epto_lint.py).
//
// The wrappers are zero-cost: each compiles to exactly the std::mutex /
// std::unique_lock code it replaces.
#pragma once

#include <condition_variable>
#include <mutex>

#include "check/schedule_point.h"
#include "util/thread_annotations.h"

namespace epto::util {

/// An annotated std::mutex. Prefer MutexLock/CondVarLock over calling
/// lock()/unlock() directly (RAII-only locking is an epto_lint rule).
class EPTO_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() EPTO_ACQUIRE() {
#if defined(EPTO_SCHEDCHECK_ENABLED)
    // Under schedule exploration (check/schedule.h) a task parked at a
    // schedule point may hold this mutex; a second task blocking inside
    // std::mutex::lock would deadlock the controller. Cooperative
    // acquisition deschedules the contending task instead. Outside
    // exploration this is one thread_local load and a not-taken branch.
    if (check::detail::underExploration()) {
      check::detail::cooperativeLock(
          this, [](void* self) { return static_cast<Mutex*>(self)->m_.try_lock(); }, this);
      return;
    }
#endif
    m_.lock();
  }
  void unlock() EPTO_RELEASE() {
    m_.unlock();
#if defined(EPTO_SCHEDCHECK_ENABLED)
    if (check::detail::underExploration()) check::detail::mutexReleased(this);
#endif
  }

 private:
  friend class CondVarLock;
  std::mutex m_;
};

/// RAII exclusive hold of a Mutex — the std::scoped_lock of this layer.
class EPTO_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) EPTO_ACQUIRE(mutex) : mutex_(mutex) { mutex_.lock(); }
  ~MutexLock() EPTO_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// RAII hold that can block on a std::condition_variable. Backed by a
/// std::unique_lock so cv waits release/reacquire the underlying mutex;
/// NOT cooperative under schedule exploration (a cv wait blocks the real
/// thread) — explorer tests drive components through their non-waiting
/// entry points; a task that waits here trips the controller's hang
/// detector rather than deadlocking silently.
/// the analysis sees the capability held for the whole scope, which is
/// the invariant that matters — the guarded state is only inspected
/// while the lock is genuinely held (waits hand it back before
/// blocking and retake it before returning).
class EPTO_SCOPED_CAPABILITY CondVarLock {
 public:
  explicit CondVarLock(Mutex& mutex) EPTO_ACQUIRE(mutex) : lock_(mutex.m_) {}
  ~CondVarLock() EPTO_RELEASE() {}

  CondVarLock(const CondVarLock&) = delete;
  CondVarLock& operator=(const CondVarLock&) = delete;

  template <typename Clock, typename Duration>
  std::cv_status waitUntil(std::condition_variable& cv,
                           const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv.wait_until(lock_, deadline);
  }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace epto::util

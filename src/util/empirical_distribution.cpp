#include "util/empirical_distribution.h"

#include <algorithm>
#include <cmath>

#include "util/ensure.h"

namespace epto::util {

EmpiricalDistribution::EmpiricalDistribution(std::vector<Knot> knots)
    : knots_(std::move(knots)) {
  EPTO_ENSURE_MSG(knots_.size() >= 2, "a distribution needs at least two knots");
  for (std::size_t i = 1; i < knots_.size(); ++i) {
    EPTO_ENSURE_MSG(knots_[i].value > knots_[i - 1].value, "knot values must strictly increase");
    EPTO_ENSURE_MSG(knots_[i].cumulativeProbability >= knots_[i - 1].cumulativeProbability,
                    "knot probabilities must be non-decreasing");
  }
  EPTO_ENSURE_MSG(knots_.front().cumulativeProbability >= 0.0, "CDF must start at >= 0");
  EPTO_ENSURE_MSG(std::abs(knots_.back().cumulativeProbability - 1.0) < 1e-12,
                  "CDF must end at 1.0");
}

double EmpiricalDistribution::quantile(double p) const {
  EPTO_ENSURE_MSG(p >= 0.0 && p <= 1.0, "quantile argument must be in [0,1]");
  if (p <= knots_.front().cumulativeProbability) return knots_.front().value;
  if (p >= 1.0) return knots_.back().value;
  const auto it = std::lower_bound(
      knots_.begin(), knots_.end(), p,
      [](const Knot& k, double prob) { return k.cumulativeProbability < prob; });
  const Knot& hi = *it;
  const Knot& lo = *(it - 1);
  const double span = hi.cumulativeProbability - lo.cumulativeProbability;
  if (span <= 0.0) return lo.value;  // vertical CDF step: atom at lo.value
  const double t = (p - lo.cumulativeProbability) / span;
  return lo.value + t * (hi.value - lo.value);
}

double EmpiricalDistribution::cdf(double v) const {
  if (v <= knots_.front().value) return v < knots_.front().value ? 0.0 : knots_.front().cumulativeProbability;
  if (v >= knots_.back().value) return 1.0;
  const auto it = std::lower_bound(knots_.begin(), knots_.end(), v,
                                   [](const Knot& k, double value) { return k.value < value; });
  const Knot& hi = *it;
  const Knot& lo = *(it - 1);
  const double t = (v - lo.value) / (hi.value - lo.value);
  return lo.cumulativeProbability + t * (hi.cumulativeProbability - lo.cumulativeProbability);
}

std::uint64_t EmpiricalDistribution::sampleTicks(Rng& rng) const {
  const double v = sample(rng);
  return v <= 0.0 ? 0 : static_cast<std::uint64_t>(std::llround(v));
}

double EmpiricalDistribution::rawMoment(int order) const {
  EPTO_ENSURE_MSG(order == 1 || order == 2, "only the first two moments are supported");
  // Integrate v^order over the piecewise density. Each CDF segment
  // [lo, hi] carries mass (hi.p - lo.p) uniformly over [lo.v, hi.v].
  // The closed forms below — (lo+hi)/2 and (lo^2 + lo*hi + hi^2)/3 — are
  // numerically stable even for epsilon-wide segments (atoms), unlike the
  // generic (hi^{k+1} - lo^{k+1}) / ((k+1)(hi - lo)) quotient.
  double total = knots_.front().cumulativeProbability *
                 std::pow(knots_.front().value, order);  // atom at the left edge
  for (std::size_t i = 1; i < knots_.size(); ++i) {
    const Knot& lo = knots_[i - 1];
    const Knot& hi = knots_[i];
    const double mass = hi.cumulativeProbability - lo.cumulativeProbability;
    if (mass <= 0.0) continue;
    const double segmentMoment =
        order == 1 ? 0.5 * (lo.value + hi.value)
                   : (lo.value * lo.value + lo.value * hi.value + hi.value * hi.value) / 3.0;
    total += mass * segmentMoment;
  }
  return total;
}

double EmpiricalDistribution::mean() const { return rawMoment(1); }

double EmpiricalDistribution::stddev() const {
  const double m = mean();
  const double variance = rawMoment(2) - m * m;
  return variance <= 0.0 ? 0.0 : std::sqrt(variance);
}

const EmpiricalDistribution& planetLabLatency() {
  // Knots fitted to the paper's published statistics for the 226-node
  // PlanetLab sample (Fig. 5): mean ~157, sigma ~119, p5 = 15, p50 = 125,
  // p95 = 366, with a heavy tail out to ~6x the round duration delta = 125.
  static const EmpiricalDistribution dist{{
      {5.0, 0.0},    {15.0, 0.05},  {60.0, 0.20},   {100.0, 0.35},
      {125.0, 0.50}, {170.0, 0.65}, {225.0, 0.80},  {300.0, 0.90},
      {366.0, 0.95}, {450.0, 0.98}, {560.0, 0.995}, {800.0, 1.0},
  }};
  return dist;
}

EmpiricalDistribution constantDistribution(double value) {
  // Represent an atom at `value` with an epsilon-wide segment.
  const double eps = std::max(1e-9, std::abs(value) * 1e-12);
  return EmpiricalDistribution{{{value - eps, 0.0}, {value + eps, 1.0}}};
}

EmpiricalDistribution uniformDistribution(double lo, double hi) {
  EPTO_ENSURE_MSG(lo < hi, "uniformDistribution requires lo < hi");
  return EmpiricalDistribution{{{lo, 0.0}, {hi, 1.0}}};
}

}  // namespace epto::util

// Clang thread-safety annotations (no-op on every other compiler).
//
// EpTO's correctness argument assumes a race-free substrate; the dynamic
// layer (TSan CI) only validates the schedules a run happens to explore.
// These macros make the locking discipline machine-checked on every Clang
// compile instead: members carry EPTO_GUARDED_BY(lock), lock-assuming
// helpers carry EPTO_REQUIRES(lock), and the static-analysis CI job builds
// the tree with `-Wthread-safety -Werror=thread-safety`, so a new access
// path that forgets the lock is a compile error, independent of luck.
//
// Conventions (DESIGN.md §12):
//   * every lock member that guards anything is a util::Mutex (the
//     annotated std::mutex wrapper in util/mutex.h — libstdc++'s
//     std::mutex carries no capability attribute, so annotating against
//     it directly would make the whole analysis vacuous); the members it
//     protects carry EPTO_GUARDED_BY(thatMutex_);
//   * private helpers called with the lock already held are annotated
//     EPTO_REQUIRES(thatMutex_) instead of re-locking;
//   * relaxed-atomic members are intentionally *not* guarded — atomics
//     are their own capability; mixing them into a mutex annotation
//     would claim an exclusion that the hot paths deliberately avoid;
//   * lock ordering is documented with EPTO_ACQUIRED_BEFORE/AFTER where
//     two capabilities can nest (checked under -Wthread-safety-beta).
//
// The macro set mirrors the canonical mutex.h example from the Clang
// documentation, under an EPTO_ prefix so non-Clang builds (GCC in this
// container) see clean no-ops and no foreign macro names.
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define EPTO_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define EPTO_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op
#endif

/// Marks a type as a capability (lockable); util::Mutex is the
/// repository's annotated lockable (libstdc++'s std::mutex is not one).
#define EPTO_CAPABILITY(x) EPTO_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases
/// a capability (util::MutexLock, util::CondVarLock).
#define EPTO_SCOPED_CAPABILITY EPTO_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Member is protected by the given capability: every read requires at
/// least a shared hold, every write an exclusive hold.
#define EPTO_GUARDED_BY(x) EPTO_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Pointer member whose *pointee* is protected by the capability.
#define EPTO_PT_GUARDED_BY(x) EPTO_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Function requires the capability to be held on entry (and does not
/// release it).
#define EPTO_REQUIRES(...) \
  EPTO_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// Function acquires the capability and holds it past return.
#define EPTO_ACQUIRE(...) \
  EPTO_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/// Function releases the capability.
#define EPTO_RELEASE(...) \
  EPTO_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

/// Function must NOT be called with the capability held (deadlock guard
/// for functions that acquire it themselves).
#define EPTO_EXCLUDES(...) EPTO_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Lock-ordering documentation: this capability is always acquired
/// before/after the named one. Violations surface under
/// -Wthread-safety-beta (advisory in the static-analysis CI job).
#define EPTO_ACQUIRED_BEFORE(...) \
  EPTO_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define EPTO_ACQUIRED_AFTER(...) \
  EPTO_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

/// Escape hatch: the function touches guarded state but is exempt from
/// analysis. Reserve for cases the analysis cannot model (documented at
/// the call site); prefer EPTO_REQUIRES wherever the lock relationship
/// is real.
#define EPTO_NO_THREAD_SAFETY_ANALYSIS \
  EPTO_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

/// Function returns a reference to a capability-guarded object without
/// holding the capability (accessors used before threads start).
#define EPTO_RETURN_CAPABILITY(x) EPTO_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

// Deterministic, splittable random number generation.
//
// Everything in this repository that needs randomness (peer selection,
// network latency sampling, workload generation, churn) draws from an
// epto::util::Rng so that every simulation and every test is reproducible
// from a single 64-bit seed. The generator is xoshiro256** seeded through
// SplitMix64, following the reference construction by Blackman & Vigna.
//
// Rng::split() derives an independent child stream; each simulated process
// and each subsystem gets its own stream so that adding randomness consumers
// in one component does not perturb the draws seen by another.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

#include "util/ensure.h"

namespace epto::util {

/// SplitMix64 step; used for seeding and for stateless hashing of ids.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// One-shot SplitMix64 hash of a 64-bit value (useful for deterministic
/// per-id derivations without carrying generator state).
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  std::uint64_t s = x;
  return splitmix64(s);
}

/// xoshiro256** — fast, high-quality, 256-bit state, deterministic.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Derive an independent child generator. The child is seeded from the
  /// parent's next output, so repeated splits yield distinct streams.
  Rng split() noexcept { return Rng((*this)() ^ 0xA5A5A5A5DEADBEEFULL); }

  /// Uniform integer in [0, bound). Uses Lemire-style rejection to avoid
  /// modulo bias. bound must be > 0.
  std::uint64_t below(std::uint64_t bound) {
    EPTO_ENSURE_MSG(bound > 0, "Rng::below requires a positive bound");
    // Rejection sampling on the top bits: unbiased and branch-cheap.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in the closed interval [lo, hi].
  std::int64_t between(std::int64_t lo, std::int64_t hi) {
    EPTO_ENSURE_MSG(lo <= hi, "Rng::between requires lo <= hi");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(span == 0 ? (*this)() : below(span));
  }

  /// Uniform double in [0, 1).
  double uniform01() noexcept {
    // 53 random mantissa bits, the standard (x >> 11) * 2^-53 construction.
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform01() < p;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace epto::util

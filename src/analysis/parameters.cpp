#include "analysis/parameters.h"

#include <algorithm>
#include <cmath>

#include "util/ensure.h"

namespace epto::analysis {

namespace {
constexpr double kE = 2.718281828459045;
}  // namespace

std::size_t baseFanout(std::size_t systemSize) {
  EPTO_ENSURE_MSG(systemSize >= 2, "fanout needs at least two processes");
  const double n = static_cast<double>(systemSize);
  const double lnN = std::log(n);
  const double lnLnN = std::log(lnN);
  std::size_t k;
  if (lnLnN <= 0.0) {
    // n <= e^e (~15 processes): the asymptotic formula degenerates; gossip
    // to everyone, which trivially satisfies Theorem 2 at this scale.
    k = systemSize - 1;
  } else {
    k = static_cast<std::size_t>(std::ceil(2.0 * kE * lnN / lnLnN));
  }
  return std::clamp<std::size_t>(k, 1, systemSize - 1);
}

std::uint32_t baseTtl(std::size_t systemSize, double c) {
  EPTO_ENSURE_MSG(systemSize >= 2, "TTL needs at least two processes");
  EPTO_ENSURE_MSG(c > 1.0, "Theorem 2 requires c > 1");
  const double rounds = (c + 1.0) * std::log2(static_cast<double>(systemSize));
  return static_cast<std::uint32_t>(std::max(1.0, std::ceil(rounds)));
}

Parameters computeParameters(const ParameterInputs& in) {
  EPTO_ENSURE_MSG(in.systemSize >= 2, "systemSize must be >= 2");
  EPTO_ENSURE_MSG(in.c > 1.0, "Theorem 2 requires c > 1");
  EPTO_ENSURE_MSG(in.messageLossRate >= 0.0 && in.messageLossRate < 1.0,
                  "message loss rate must be in [0, 1)");
  EPTO_ENSURE_MSG(in.churnPerRound >= 0.0 &&
                      in.churnPerRound < static_cast<double>(in.systemSize),
                  "churn per round must be in [0, n)");
  EPTO_ENSURE_MSG(in.driftRatio >= 1.0, "driftRatio is delta_max/delta_min >= 1");

  const double n = static_cast<double>(in.systemSize);

  // Lemma 7: churn and loss thin the ball supply; compensate with fanout.
  double fanout = static_cast<double>(baseFanout(in.systemSize));
  fanout *= n / (n - in.churnPerRound);
  fanout /= 1.0 - in.messageLossRate;
  const auto k = std::clamp<std::size_t>(static_cast<std::size_t>(std::ceil(fanout)), 1,
                                         in.systemSize - 1);

  // Lemma 3 base, Lemma 4 logical-time doubling, Lemma 5 drift stretch,
  // Lemma 6 latency slack.
  double ttl = static_cast<double>(baseTtl(in.systemSize, in.c));
  if (in.logicalTime) ttl *= 2.0;
  ttl *= in.driftRatio;
  ttl = std::ceil(ttl);
  if (in.latencyBelowRound) ttl += 1.0;

  return Parameters{k, static_cast<std::uint32_t>(ttl)};
}

double stabilityEstimate(const StabilityInputs& in) {
  EPTO_ENSURE_MSG(in.systemSize >= 2, "stability estimate needs at least two processes");
  EPTO_ENSURE_MSG(in.fanout >= 1, "stability estimate needs fanout >= 1");
  EPTO_ENSURE_MSG(in.messageLossRate >= 0.0 && in.messageLossRate < 1.0,
                  "message loss rate must be in [0, 1)");

  const double n = static_cast<double>(in.systemSize);
  // Effective per-round relay rate: each infected process pushes K
  // copies, each surviving the network with probability 1 - eps.
  const double rate =
      static_cast<double>(in.fanout) * (1.0 - in.messageLossRate);

  // Observed redundancy seeds the infected mass: the origin plus one
  // distinct relayer per duplicate copy absorbed.
  double f = std::min(1.0, static_cast<double>(std::max<std::uint64_t>(1, in.copiesSeen)) / n);
  for (std::uint32_t round = 0; round < in.age; ++round) {
    if (f >= 1.0) break;
    f += (1.0 - f) * (1.0 - std::exp(-rate * f));
  }
  return std::clamp(f, 0.0, 1.0);
}

ParameterBounds lemmaSafeBounds(const ParameterInputs& worstCase) {
  ParameterInputs healthy = worstCase;
  healthy.messageLossRate = 0.0;
  healthy.churnPerRound = 0.0;
  healthy.driftRatio = 1.0;
  ParameterBounds bounds{computeParameters(healthy), computeParameters(worstCase)};
  // Composition can only widen the parameters (every Lemma 4-7 factor is
  // >= 1), so the envelope is well-formed by construction.
  EPTO_ENSURE_MSG(bounds.lower.fanout <= bounds.upper.fanout &&
                      bounds.lower.ttl <= bounds.upper.ttl,
                  "Lemma-safe bounds must nest");
  return bounds;
}

}  // namespace epto::analysis

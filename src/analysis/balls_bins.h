// Balls-and-bins agreement analysis — paper §4 (Theorem 2, Figure 3) and
// the stability-exposure extension of §8.4.
//
// EpTO's probabilistic agreement reduces to the classic occupancy question:
// after throwing B balls uniformly at random into n bins, what is the
// probability that some bin stays empty? The paper plots upper bounds on
// this "hole" probability assuming each event generates exactly
// B = c * n * log2(n) balls (Figure 3a for a fixed process, Figure 3b for
// the union bound over all processes).
#pragma once

#include <cstddef>
#include <cstdint>

namespace epto::analysis {

/// Number of balls Theorem 2 guarantees per event: c * n * log2(n).
[[nodiscard]] double ballsGuaranteed(std::size_t systemSize, double c);

/// Pr[a fixed process p misses event e] after `balls` uniform throws into
/// `systemSize` bins: (1 - 1/n)^B. This is the quantity of Figure 3a when
/// balls = ballsGuaranteed(n, c).
[[nodiscard]] double missProbabilityFixedProcess(std::size_t systemSize, double balls);

/// Figure 3a series: Pr[fixed process has a hole for event e] for B = c n log2 n.
[[nodiscard]] double holeProbabilityFixedProcess(std::size_t systemSize, double c);

/// Figure 3b series: Pr[event e has a hole at >= 1 process], the union
/// bound n * (1 - 1/n)^B capped at 1.
[[nodiscard]] double holeProbabilityAnyProcess(std::size_t systemSize, double c);

/// Estimated number of balls generated for one event after it has been
/// relayed for `roundsAged` rounds with fanout K: the ball population
/// doubles-by-K until it saturates at n relayers, i.e.
/// sum_{i=1..r} min(K^i, n) * K-ish growth truncated at n*K per round.
/// Used by the §8.4 delivery-tradeoff extension to expose a stability
/// estimate for not-yet-delivered events.
[[nodiscard]] double estimatedBalls(std::size_t systemSize, std::size_t fanout,
                                    std::uint32_t roundsAged);

/// §8.4 exposure: estimated probability that *every* process has received
/// an event that has aged `roundsAged` rounds, 1 - n * (1 - 1/n)^B with
/// B = estimatedBalls(...), clamped to [0, 1].
[[nodiscard]] double estimatedStability(std::size_t systemSize, std::size_t fanout,
                                        std::uint32_t roundsAged);

}  // namespace epto::analysis
